#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "exec/operators.h"
#include "test_util.h"

namespace aggview {
namespace {

/// Batch-boundary tests for the vectorized execution engine: the batch size
/// is a pure throughput knob, so every query must compute the identical
/// result at size 1 (row-at-a-time degenerate), tiny odd sizes (rows straddle
/// batch boundaries everywhere), and the default 1024. Plus the protocol
/// edge cases: empty inputs, cardinalities that are exact multiples of the
/// batch size (no phantom empty tail batch), and post-EOS Next calls.

TEST(RowBatchTest, AppendPopClearReuseSlots) {
  RowBatch batch(3);
  EXPECT_EQ(batch.capacity(), 3);
  EXPECT_TRUE(batch.empty());
  EXPECT_FALSE(batch.full());

  batch.AppendRow() = {Value::Int(1)};
  batch.AppendRow() = {Value::Int(2), Value::Int(3)};
  EXPECT_EQ(batch.size(), 2);
  batch.PopRow();
  EXPECT_EQ(batch.size(), 1);
  EXPECT_EQ(batch.row(0)[0].AsInt(), 1);

  batch.AppendRow() = {Value::Int(4)};
  batch.AppendRow() = {Value::Int(5)};
  EXPECT_TRUE(batch.full());

  batch.Clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.capacity(), 3);
  // A reused slot comes back emptied, not carrying the old row.
  Row& slot = batch.AppendRow();
  EXPECT_TRUE(slot.empty());
}

TEST(RowBatchTest, NonPositiveCapacityClampsToOne) {
  RowBatch batch(0);
  EXPECT_EQ(batch.capacity(), 1);
  batch.AppendRow() = {Value::Int(7)};
  EXPECT_TRUE(batch.full());
}

/// Saves and restores one environment variable for the duration of a test
/// (CI runs the suite with AGGVIEW_TEST_* already set; the tests below must
/// observe only their own values).
class ScopedEnv {
 public:
  explicit ScopedEnv(const char* name) : name_(name) {
    const char* ambient = std::getenv(name);
    had_ = ambient != nullptr;
    saved_ = had_ ? ambient : "";
  }
  ~ScopedEnv() {
    if (had_) {
      setenv(name_, saved_.c_str(), /*overwrite=*/1);
    } else {
      unsetenv(name_);
    }
  }
  void Set(const char* value) { setenv(name_, value, /*overwrite=*/1); }
  void Unset() { unsetenv(name_); }

 private:
  const char* name_;
  bool had_ = false;
  std::string saved_;
};

TEST(ExecContextEnvTest, BatchSizeOverrideIsValidatedAndClamped) {
  ScopedEnv env("AGGVIEW_TEST_BATCH_SIZE");

  EXPECT_EQ(ExecContext{}.batch_size, kDefaultBatchSize);
  env.Set("7");
  EXPECT_EQ(ExecContext::Default().batch_size, 7);
  // Non-positive values are ignored, not honoured as batch size zero.
  env.Set("0");
  EXPECT_EQ(ExecContext::Default().batch_size, kDefaultBatchSize);
  env.Set("-16");
  EXPECT_EQ(ExecContext::Default().batch_size, kDefaultBatchSize);
  // Garbage falls back instead of atoi-ing to 0; so does trailing junk.
  env.Set("lots");
  EXPECT_EQ(ExecContext::Default().batch_size, kDefaultBatchSize);
  env.Set("64k");
  EXPECT_EQ(ExecContext::Default().batch_size, kDefaultBatchSize);
  env.Set("");
  EXPECT_EQ(ExecContext::Default().batch_size, kDefaultBatchSize);
  // Absurdly large values clamp to the documented ceiling rather than
  // overflowing int or allocating a terabyte batch.
  env.Set("99999999999999999999");
  EXPECT_EQ(ExecContext::Default().batch_size, kMaxEnvBatchSize);
  env.Set("2000000");
  EXPECT_EQ(ExecContext::Default().batch_size, kMaxEnvBatchSize);
  env.Unset();
  EXPECT_EQ(ExecContext::Default().batch_size, kDefaultBatchSize);
}

TEST(ExecContextEnvTest, ThreadsOverrideIsValidatedAndClamped) {
  ScopedEnv env("AGGVIEW_TEST_THREADS");

  env.Set("8");
  EXPECT_EQ(ExecContext::Default().threads, 8);
  env.Set("-2");
  EXPECT_EQ(ExecContext::Default().threads, 1);
  env.Set("all");
  EXPECT_EQ(ExecContext::Default().threads, 1);
  env.Set("4x");
  EXPECT_EQ(ExecContext::Default().threads, 1);
  env.Set("100000");
  EXPECT_EQ(ExecContext::Default().threads, kMaxEnvThreads);
  env.Unset();
  EXPECT_EQ(ExecContext::Default().threads, 1);
}

/// Ten-row table scanned through small batches, directly at the operator
/// protocol level where the boundary behaviour is observable.
class ScanBatchTest : public ::testing::Test {
 protected:
  ScanBatchTest() : table_(Schema({{"id", DataType::kInt64}})) {
    id_ = cat_.Add("t.id", DataType::kInt64);
    for (int i = 0; i < 10; ++i) table_.AppendUnchecked({Value::Int(i)});
  }

  ColumnCatalog cat_;
  Table table_;
  ColId id_ = -1;
};

TEST_F(ScanBatchTest, ExactMultipleCardinalityHasNoPhantomTailBatch) {
  // 10 rows through capacity-5 batches: exactly 2 batches, and the call
  // that discovers end-of-stream returns false instead of an empty batch.
  RowLayout layout({id_});
  IoAccountant io;
  TableScanOp scan(&table_, layout, {}, layout, &io, /*charge_io=*/true);
  OpStats stats;
  scan.set_stats(&stats);
  ASSERT_OK(scan.Open());

  RowBatch batch(5);
  int64_t rows = 0;
  while (true) {
    auto more = scan.Next(&batch);
    ASSERT_OK(more);
    if (!*more) break;
    EXPECT_FALSE(batch.empty()) << "mid-stream batches are never empty";
    rows += batch.size();
  }
  EXPECT_EQ(rows, 10);
  EXPECT_EQ(stats.batches_produced, 2);
  EXPECT_EQ(stats.next_calls, 3);  // two full batches + end-of-stream

  // Past end-of-stream the operator keeps answering false, safely.
  for (int i = 0; i < 3; ++i) {
    auto more = scan.Next(&batch);
    ASSERT_OK(more);
    EXPECT_FALSE(*more);
    EXPECT_TRUE(batch.empty());
  }
  scan.Close();
}

TEST_F(ScanBatchTest, EmptyInputAnswersFalseOnFirstNext) {
  RowLayout layout({id_});
  IoAccountant io;
  TableScanOp scan(&table_, layout,
                   {Cmp(Col(id_), CompareOp::kLt, LitInt(0))}, layout, &io,
                   /*charge_io=*/true);
  OpStats stats;
  scan.set_stats(&stats);
  ASSERT_OK(scan.Open());
  RowBatch batch(5);
  auto more = scan.Next(&batch);
  ASSERT_OK(more);
  EXPECT_FALSE(*more);
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(stats.batches_produced, 0);
  EXPECT_EQ(stats.rows_produced, 0);
  EXPECT_EQ(stats.input_rows, 10);  // the scan still examined every row
  scan.Close();
}

/// End-to-end: the same optimized plan executed at many batch sizes must
/// fingerprint identically, including sizes that divide the cardinalities
/// involved (boundary-aligned) and sizes that do not.
class BatchSizeInvarianceTest : public ::testing::Test {
 protected:
  BatchSizeInvarianceTest() : db_(MakeEmpDept()) {}

  void CheckInvariant(const std::string& sql) {
    auto query = ParseAndBind(*db_.catalog, sql);
    ASSERT_OK(query);
    auto optimized = OptimizeQueryWithAggViews(*query, OptimizerOptions{});
    ASSERT_OK(optimized);

    auto reference =
        ExecutePlan(optimized->plan, optimized->query,
                    ExecContext{}.WithBatchSize(kDefaultBatchSize));
    ASSERT_OK(reference);
    for (int batch_size : {1, 2, 3, 7, 64, 4096}) {
      auto rerun = ExecutePlan(optimized->plan, optimized->query,
                               ExecContext{}.WithBatchSize(batch_size));
      ASSERT_OK(rerun);
      EXPECT_EQ(rerun->Fingerprint(), reference->Fingerprint())
          << "batch_size=" << batch_size << " changed the result of:\n"
          << sql;
    }
  }

  EmpDeptFixture db_;
};

TEST_F(BatchSizeInvarianceTest, AggregateViewQuery) {
  CheckInvariant(Example1Sql());
}

TEST_F(BatchSizeInvarianceTest, InvariantGroupingQuery) {
  CheckInvariant(Example2Sql());
}

TEST_F(BatchSizeInvarianceTest, ScalarAggregateOverEmptyInput) {
  // The one synthesized row of a scalar aggregate over zero input must
  // appear exactly once at every batch size.
  CheckInvariant("select count(*), sum(e.sal) from emp e where e.sal < 0");
}

/// NULL join keys placed so they straddle batch boundaries at small batch
/// sizes: the skip-NULL-key logic runs at the boundary between pulling a new
/// probe batch and finishing the old one, where an off-by-one would either
/// drop a valid row or let NULL = NULL match.
class NullKeysAcrossBatchesTest : public ::testing::Test {
 protected:
  NullKeysAcrossBatchesTest() {
    auto tables = CreateEmpDeptSchema(&catalog_);
    EXPECT_OK(tables);
    tables_ = *tables;

    auto dept = std::make_shared<Table>(catalog_.table(tables_.dept).schema);
    dept->AppendUnchecked({Value::Int(1), Value::Real(100000.0)});
    dept->AppendUnchecked({Value::Null(), Value::Real(200000.0)});
    dept->AppendUnchecked({Value::Int(2), Value::Real(300000.0)});
    catalog_.mutable_table(tables_.dept).stats = ComputeStats(*dept);
    catalog_.mutable_table(tables_.dept).data = dept;

    // Every third employee has a NULL dno, so at batch sizes 2 and 3 the
    // NULL-keyed rows land at every position within a probe batch.
    auto emp = std::make_shared<Table>(catalog_.table(tables_.emp).schema);
    for (int i = 0; i < 18; ++i) {
      Value dno = (i % 3 == 2) ? Value::Null() : Value::Int(1 + i % 2);
      emp->AppendUnchecked({Value::Int(i), std::move(dno),
                            Value::Real(100.0 * i), Value::Int(25 + i % 10)});
    }
    catalog_.mutable_table(tables_.emp).stats = ComputeStats(*emp);
    catalog_.mutable_table(tables_.emp).data = emp;
  }

  Catalog catalog_;
  EmpDeptTables tables_;
};

TEST_F(NullKeysAcrossBatchesTest, AllJoinAlgorithmsAtAllBatchSizes) {
  Query q(&catalog_);
  int d = q.AddRangeVar(tables_.dept, "d");
  int e = q.AddRangeVar(tables_.emp, "e");
  q.base_rels() = {d, e};
  ColId d_dno = q.range_var(d).columns[0];
  ColId e_dno = q.range_var(e).columns[1];
  ColId eno = q.range_var(e).columns[0];
  q.select_list() = {d_dno, eno};
  PlanBuilder b(q);
  std::set<ColId> needed = {d_dno, e_dno, eno};

  // 12 non-NULL-keyed employees, each matching exactly one department.
  std::string reference;
  for (JoinAlgo algo :
       {JoinAlgo::kHash, JoinAlgo::kSortMerge, JoinAlgo::kBlockNestedLoop}) {
    PlanPtr join = b.Join(algo, b.Scan(d, {}, needed), b.Scan(e, {}, needed),
                          {EqCols(d_dno, e_dno)}, needed);
    PlanPtr plan = b.Project(join, q.select_list());
    for (int batch_size : {1, 2, 3, 1024}) {
      auto result = ExecutePlan(plan, q,
                                ExecContext{}.WithBatchSize(batch_size));
      ASSERT_OK(result);
      EXPECT_EQ(result->rows.size(), 12u)
          << JoinAlgoName(algo) << " batch_size=" << batch_size;
      for (const Row& row : result->rows) {
        EXPECT_FALSE(row[0].is_null()) << JoinAlgoName(algo);
      }
      if (reference.empty()) {
        reference = result->Fingerprint();
      } else {
        EXPECT_EQ(result->Fingerprint(), reference)
            << JoinAlgoName(algo) << " batch_size=" << batch_size;
      }
    }
  }
}

TEST_F(NullKeysAcrossBatchesTest, OuterJoinPadsNullKeyedRowsAtEverySize) {
  Query q(&catalog_);
  int e = q.AddRangeVar(tables_.emp, "e");
  int d = q.AddRangeVar(tables_.dept, "d");
  q.base_rels() = {e, d};
  ColId e_dno = q.range_var(e).columns[1];
  ColId eno = q.range_var(e).columns[0];
  ColId d_dno = q.range_var(d).columns[0];
  ColId budget = q.range_var(d).columns[1];
  q.select_list() = {eno, budget};
  PlanBuilder b(q);
  std::set<ColId> needed = {e_dno, eno, d_dno, budget};

  PlanPtr loj = b.LeftOuterJoin(b.Scan(e, {}, needed), b.Scan(d, {}, needed),
                                {EqCols(e_dno, d_dno)}, needed);
  PlanPtr plan = b.Project(loj, q.select_list());
  for (int batch_size : {1, 2, 3, 1024}) {
    auto result = ExecutePlan(plan, q,
                              ExecContext{}.WithBatchSize(batch_size));
    ASSERT_OK(result);
    // All 18 employees survive: 12 matched, 6 NULL-dno rows padded.
    ASSERT_EQ(result->rows.size(), 18u) << "batch_size=" << batch_size;
    int padded = 0;
    for (const Row& row : result->rows) {
      if (row[1].is_null()) ++padded;
    }
    EXPECT_EQ(padded, 6) << "batch_size=" << batch_size;
  }
}

/// A single group whose rows straddle many batch boundaries: the aggregate
/// must fold every input batch into the same accumulator rather than start a
/// fresh group per batch.
TEST(GroupAcrossBatchesTest, GroupSpanningManyBatchesAggregatesOnce) {
  Catalog catalog;
  auto tables = CreateEmpDeptSchema(&catalog);
  ASSERT_OK(tables);

  auto dept = std::make_shared<Table>(catalog.table(tables->dept).schema);
  dept->AppendUnchecked({Value::Int(1), Value::Real(100000.0)});
  catalog.mutable_table(tables->dept).stats = ComputeStats(*dept);
  catalog.mutable_table(tables->dept).data = dept;

  // One department, 100 employees with salaries 0..99: any batch size below
  // 100 splits the group across input batches.
  auto emp = std::make_shared<Table>(catalog.table(tables->emp).schema);
  for (int i = 0; i < 100; ++i) {
    emp->AppendUnchecked({Value::Int(i), Value::Int(1), Value::Real(i),
                          Value::Int(30)});
  }
  catalog.mutable_table(tables->emp).stats = ComputeStats(*emp);
  catalog.mutable_table(tables->emp).data = emp;

  auto query = ParseAndBind(
      catalog, "select e.dno, count(*), sum(e.sal), avg(e.sal) "
               "from emp e group by e.dno");
  ASSERT_OK(query);
  auto optimized = OptimizeQueryWithAggViews(*query, OptimizerOptions{});
  ASSERT_OK(optimized);

  for (int batch_size : {1, 3, 25, 100, 1024}) {
    auto result = ExecutePlan(optimized->plan, optimized->query,
                              ExecContext{}.WithBatchSize(batch_size));
    ASSERT_OK(result);
    ASSERT_EQ(result->rows.size(), 1u) << "batch_size=" << batch_size;
    const Row& row = result->rows[0];
    EXPECT_EQ(row[0].AsInt(), 1);
    EXPECT_EQ(row[1].AsInt(), 100);
    EXPECT_DOUBLE_EQ(row[2].AsDouble(), 4950.0);
    EXPECT_DOUBLE_EQ(row[3].AsDouble(), 49.5);
  }
}

}  // namespace
}  // namespace aggview
