#include <gtest/gtest.h>

#include "sql/binder.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "test_util.h"

namespace aggview {
namespace {

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("select e.sal, 42 3.5 'txt' <> <= >= < > = ( ) * ;");
  ASSERT_OK(tokens);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "select");
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kInteger);
  EXPECT_EQ((*tokens)[5].int_value, 42);
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kReal);
  EXPECT_DOUBLE_EQ((*tokens)[6].real_value, 3.5);
  EXPECT_EQ((*tokens)[7].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[7].text, "txt");
  EXPECT_EQ((*tokens)[8].text, "<>");
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
}

TEST(LexerTest, CaseInsensitiveIdentifiers) {
  auto tokens = Tokenize("SELECT Emp");
  ASSERT_OK(tokens);
  EXPECT_EQ((*tokens)[0].text, "select");
  EXPECT_EQ((*tokens)[1].text, "emp");
}

TEST(LexerTest, Comments) {
  auto tokens = Tokenize("select -- a comment\n x");
  ASSERT_OK(tokens);
  EXPECT_EQ((*tokens)[1].text, "x");
}

TEST(LexerTest, NotEqualsAlias) {
  auto tokens = Tokenize("a != b");
  ASSERT_OK(tokens);
  EXPECT_EQ((*tokens)[1].text, "<>");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("select 'unterminated").ok());
  EXPECT_FALSE(Tokenize("select @").ok());
}

TEST(ParserTest, SimpleSelect) {
  auto ast = ParseSelect("select e.sal from emp e where e.age < 22");
  ASSERT_OK(ast);
  ASSERT_EQ(ast->items.size(), 1u);
  EXPECT_EQ(ast->items[0].expr->ToString(), "e.sal");
  ASSERT_EQ(ast->from.size(), 1u);
  EXPECT_EQ(ast->from[0].table, "emp");
  EXPECT_EQ(ast->from[0].alias, "e");
  ASSERT_EQ(ast->where.size(), 1u);
  EXPECT_EQ(ast->where[0].op, CompareOp::kLt);
}

TEST(ParserTest, DefaultAliasIsTableName) {
  auto ast = ParseSelect("select sal from emp");
  ASSERT_OK(ast);
  EXPECT_EQ(ast->from[0].alias, "emp");
}

TEST(ParserTest, GroupByHaving) {
  auto ast = ParseSelect(
      "select e.dno, avg(e.sal) from emp e group by e.dno having avg(e.sal) > "
      "100 and count(*) > 2");
  ASSERT_OK(ast);
  ASSERT_EQ(ast->group_by.size(), 1u);
  ASSERT_EQ(ast->having.size(), 2u);
  EXPECT_TRUE(ast->having[0].lhs->ContainsAggregate());
  EXPECT_EQ(ast->having[1].lhs->agg_kind, AggKind::kCountStar);
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto ast = ParseSelect("select a from t where a < 1 + 2 * 3");
  ASSERT_OK(ast);
  EXPECT_EQ(ast->where[0].rhs->ToString(), "(1 + (2 * 3))");
}

TEST(ParserTest, Parentheses) {
  auto ast = ParseSelect("select a from t where a < (1 + 2) * 3");
  ASSERT_OK(ast);
  EXPECT_EQ(ast->where[0].rhs->ToString(), "((1 + 2) * 3)");
}

TEST(ParserTest, AggregateKinds) {
  auto ast = ParseSelect(
      "select sum(a), min(a), max(a), count(a), count(*), median(a), avg(a) "
      "from t group by b");
  ASSERT_OK(ast);
  EXPECT_EQ(ast->items[0].expr->agg_kind, AggKind::kSum);
  EXPECT_EQ(ast->items[1].expr->agg_kind, AggKind::kMin);
  EXPECT_EQ(ast->items[2].expr->agg_kind, AggKind::kMax);
  EXPECT_EQ(ast->items[3].expr->agg_kind, AggKind::kCount);
  EXPECT_EQ(ast->items[4].expr->agg_kind, AggKind::kCountStar);
  EXPECT_EQ(ast->items[5].expr->agg_kind, AggKind::kMedian);
  EXPECT_EQ(ast->items[6].expr->agg_kind, AggKind::kAvg);
}

TEST(ParserTest, CreateViewScript) {
  auto script = ParseScript(
      "create view v (a, b) as select t.x, sum(t.y) from t group by t.x;\n"
      "select v.a from v where v.b > 10");
  ASSERT_OK(script);
  ASSERT_EQ(script->views.size(), 1u);
  EXPECT_EQ(script->views[0].name, "v");
  EXPECT_EQ(script->views[0].column_names,
            (std::vector<std::string>{"a", "b"}));
}

TEST(ParserTest, SelectItemAliases) {
  auto ast = ParseSelect("select e.sal as salary, e.dno dept from emp e");
  ASSERT_OK(ast);
  EXPECT_EQ(ast->items[0].alias, "salary");
  EXPECT_EQ(ast->items[1].alias, "dept");
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSelect("select from t").ok());
  EXPECT_FALSE(ParseSelect("select a").ok());
  EXPECT_FALSE(ParseSelect("select a from t where").ok());
  EXPECT_FALSE(ParseSelect("select a from t group a").ok());
  EXPECT_FALSE(ParseSelect("select a from t; garbage").ok());
  EXPECT_FALSE(ParseSelect("select a from t where a ==").ok());
}

class BinderTest : public ::testing::Test {
 protected:
  BinderTest() : fixture_(MakeEmpDept()) {}
  EmpDeptFixture fixture_;
};

TEST_F(BinderTest, BindsExample1) {
  auto q = ParseAndBind(*fixture_.catalog, Example1Sql());
  ASSERT_OK(q);
  ASSERT_EQ(q->views().size(), 1u);
  const AggView& view = q->views()[0];
  EXPECT_EQ(view.name, "b");
  EXPECT_EQ(view.spj.rels.size(), 1u);
  EXPECT_EQ(view.group_by.grouping.size(), 1u);
  ASSERT_EQ(view.group_by.aggregates.size(), 1u);
  EXPECT_EQ(view.group_by.aggregates[0].kind, AggKind::kAvg);
  EXPECT_EQ(q->base_rels().size(), 1u);
  EXPECT_EQ(q->predicates().size(), 3u);
  EXPECT_FALSE(q->top_group_by().has_value());
  EXPECT_EQ(q->select_list().size(), 1u);
}

TEST_F(BinderTest, BindsExample2WithTopGroupBy) {
  auto q = ParseAndBind(*fixture_.catalog, Example2Sql());
  ASSERT_OK(q);
  EXPECT_TRUE(q->views().empty());
  EXPECT_EQ(q->base_rels().size(), 2u);
  ASSERT_TRUE(q->top_group_by().has_value());
  EXPECT_EQ(q->top_group_by()->grouping.size(), 1u);
  EXPECT_EQ(q->top_group_by()->aggregates.size(), 1u);
  EXPECT_EQ(q->select_list().size(), 2u);
}

TEST_F(BinderTest, SharedAggregateBetweenSelectAndHaving) {
  auto q = ParseAndBind(*fixture_.catalog,
                        "select e.dno, avg(e.sal) from emp e group by e.dno "
                        "having avg(e.sal) > 100");
  ASSERT_OK(q);
  // avg(e.sal) appears once, shared by SELECT and HAVING.
  EXPECT_EQ(q->top_group_by()->aggregates.size(), 1u);
  EXPECT_EQ(q->top_group_by()->having.size(), 1u);
}

TEST_F(BinderTest, ScalarAggregateWithoutGroupBy) {
  auto q = ParseAndBind(*fixture_.catalog, "select count(*) from emp e");
  ASSERT_OK(q);
  ASSERT_TRUE(q->top_group_by().has_value());
  EXPECT_TRUE(q->top_group_by()->grouping.empty());
}

TEST_F(BinderTest, UnqualifiedColumns) {
  auto q = ParseAndBind(*fixture_.catalog,
                        "select budget from dept where dno = 3");
  ASSERT_OK(q);
  EXPECT_EQ(q->select_list().size(), 1u);
}

TEST_F(BinderTest, AmbiguousUnqualifiedColumn) {
  auto q = ParseAndBind(*fixture_.catalog,
                        "select sal from emp e1, emp e2");
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kBindError);
}

TEST_F(BinderTest, DnoSharedByEmpAndDeptIsAmbiguous) {
  auto q = ParseAndBind(*fixture_.catalog, "select dno from emp e, dept d");
  EXPECT_FALSE(q.ok());
}

TEST_F(BinderTest, RejectsNonGroupingSelectItem) {
  auto q = ParseAndBind(*fixture_.catalog,
                        "select e.sal, count(*) from emp e group by e.dno");
  EXPECT_FALSE(q.ok());
}

TEST_F(BinderTest, RejectsAggregateInWhere) {
  auto q = ParseAndBind(*fixture_.catalog,
                        "select e.dno from emp e where avg(e.sal) > 10 group by e.dno");
  EXPECT_FALSE(q.ok());
}

TEST_F(BinderTest, RejectsViewWithoutGroupBy) {
  auto q = ParseAndBind(*fixture_.catalog,
                        "create view v (s) as select e.sal from emp e;\n"
                        "select v.s from v");
  EXPECT_FALSE(q.ok());
}

TEST_F(BinderTest, RejectsDuplicateAliases) {
  EXPECT_FALSE(ParseAndBind(*fixture_.catalog,
                            "select e.sal from emp e, dept e").ok());
  EXPECT_FALSE(ParseAndBind(*fixture_.catalog,
                            "create view v (a) as select e.dno from emp e, "
                            "dept e group by e.dno;\nselect v.a from v")
                   .ok());
  // Same table twice with distinct aliases is fine.
  EXPECT_TRUE(
      ParseAndBind(*fixture_.catalog,
                   "select e1.sal from emp e1, emp e2 where e1.eno = e2.eno")
          .ok());
}

TEST_F(BinderTest, RejectsUnknownTable) {
  EXPECT_FALSE(ParseAndBind(*fixture_.catalog, "select x from nope").ok());
}

TEST_F(BinderTest, RejectsUnknownColumn) {
  EXPECT_FALSE(ParseAndBind(*fixture_.catalog, "select e.nope from emp e").ok());
}

TEST_F(BinderTest, ViewUsedTwiceGetsSeparateInstances) {
  auto q = ParseAndBind(*fixture_.catalog,
                        "create view v (dno, asal) as select e.dno, avg(e.sal) "
                        "from emp e group by e.dno;\n"
                        "select a.asal from v a, v b "
                        "where a.dno = b.dno and a.asal > b.asal");
  ASSERT_OK(q);
  EXPECT_EQ(q->views().size(), 2u);
  EXPECT_EQ(q->num_range_vars(), 2);
}

TEST_F(BinderTest, ArithmeticOverViewOutput) {
  auto q = ParseAndBind(*fixture_.catalog,
                        "create view v (dno, asal) as select e.dno, avg(e.sal) "
                        "from emp e group by e.dno;\n"
                        "select e1.sal from emp e1, v "
                        "where e1.dno = v.dno and e1.sal > 0.5 * v.asal");
  ASSERT_OK(q);
  EXPECT_EQ(q->predicates().size(), 2u);
}

TEST_F(BinderTest, TpcdQueriesAllBind) {
  TpcdFixture tpcd = MakeTpcd(DbgenOptions{.scale_factor = 0.001});
  for (const auto& named : tpcd_queries::AllQueries()) {
    auto q = ParseAndBind(*tpcd.catalog, named.sql);
    EXPECT_TRUE(q.ok()) << named.name << ": " << q.status().ToString();
  }
}

}  // namespace
}  // namespace aggview
