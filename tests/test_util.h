#ifndef AGGVIEW_TESTS_TEST_UTIL_H_
#define AGGVIEW_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "aggview.h"

namespace aggview {

#define ASSERT_OK(expr)                                              \
  do {                                                               \
    const auto& _status_like = (expr);                               \
    ASSERT_TRUE(_status_like.ok()) << StatusString(_status_like);    \
  } while (false)

#define EXPECT_OK(expr)                                              \
  do {                                                               \
    const auto& _status_like = (expr);                               \
    EXPECT_TRUE(_status_like.ok()) << StatusString(_status_like);    \
  } while (false)

inline std::string StatusString(const Status& s) { return s.ToString(); }
template <typename T>
std::string StatusString(const Result<T>& r) {
  return r.status().ToString();
}

/// emp/dept catalog with generated data (the paper's running example).
struct EmpDeptFixture {
  std::unique_ptr<Catalog> catalog = std::make_unique<Catalog>();
  EmpDeptTables tables;
};

inline EmpDeptFixture MakeEmpDept(const EmpDeptOptions& options = {}) {
  EmpDeptFixture f;
  auto tables = CreateEmpDeptSchema(f.catalog.get());
  EXPECT_TRUE(tables.ok()) << tables.status().ToString();
  f.tables = *tables;
  Status st = GenerateEmpDeptData(f.catalog.get(), f.tables, options);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return f;
}

/// Example 1 of the paper: employees under 22 earning more than their
/// department's average salary, phrased with the aggregate view A1.
inline std::string Example1Sql() {
  return R"sql(
create view a1 (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
select e1.sal
from emp e1, a1 b
where e1.dno = b.dno and e1.age < 22 and e1.sal > b.asal
)sql";
}

/// Example 2 of the paper: average salary per department with budget < 1M,
/// as a single-block query (the invariant-grouping example).
inline std::string Example2Sql() {
  return R"sql(
select e.dno, avg(e.sal)
from emp e, dept d
where e.dno = d.dno and d.budget < 1000000
group by e.dno
)sql";
}

/// TPC-D catalog with generated data.
struct TpcdFixture {
  std::unique_ptr<Catalog> catalog = std::make_unique<Catalog>();
  TpcdTables tables;
};

inline TpcdFixture MakeTpcd(const DbgenOptions& options) {
  TpcdFixture f;
  auto tables = CreateTpcdSchema(f.catalog.get());
  EXPECT_TRUE(tables.ok()) << tables.status().ToString();
  f.tables = *tables;
  Status st = GenerateTpcdData(f.catalog.get(), f.tables, options);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return f;
}

/// Optimizes `sql` with both the traditional and the aggregate-view
/// optimizer, executes both plans, and checks result equivalence; returns
/// the two measured IO counts through the out-params.
inline void CheckOptimizersAgree(const Catalog& catalog,
                                 const std::string& sql,
                                 int64_t* traditional_io = nullptr,
                                 int64_t* extended_io = nullptr) {
  auto query = ParseAndBind(catalog, sql);
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  auto traditional = OptimizeTraditional(*query);
  ASSERT_TRUE(traditional.ok()) << traditional.status().ToString();
  auto extended = OptimizeQueryWithAggViews(*query, OptimizerOptions{});
  ASSERT_TRUE(extended.ok()) << extended.status().ToString();

  {
    Status v1 = ValidatePlan(traditional->plan, traditional->query);
    ASSERT_TRUE(v1.ok()) << v1.ToString();
    Status v2 = ValidatePlan(extended->plan, extended->query);
    ASSERT_TRUE(v2.ok()) << v2.ToString();
  }

  EXPECT_LE(extended->plan->cost, traditional->plan->cost)
      << "no-worse guarantee violated";

  IoAccountant io_t, io_e;
  auto result_t = ExecutePlan(traditional->plan, traditional->query,
                              ExecContext::Default().WithIo(&io_t));
  ASSERT_TRUE(result_t.ok()) << result_t.status().ToString();
  auto result_e = ExecutePlan(extended->plan, extended->query,
                              ExecContext::Default().WithIo(&io_e));
  ASSERT_TRUE(result_e.ok()) << result_e.status().ToString();

  EXPECT_EQ(result_t->Fingerprint(), result_e->Fingerprint())
      << "plans disagree on query results";
  if (traditional_io != nullptr) *traditional_io = io_t.total();
  if (extended_io != nullptr) *extended_io = io_e.total();
}

/// Executes `sql` twice — answered from materialized views (rewriter +
/// traditional optimizer) and straight from base tables — and expects
/// byte-identical results plus a verifying rewrite audit. Returns the
/// number of blocks the rewriter answered.
inline int CheckViewAnswersAgree(const Catalog& catalog,
                                 const std::string& sql) {
  auto base = ParseAndBind(catalog, sql);
  EXPECT_TRUE(base.ok()) << base.status().ToString();
  auto opt_base = OptimizeTraditional(*base);
  EXPECT_TRUE(opt_base.ok()) << opt_base.status().ToString();
  auto res_base = ExecutePlan(opt_base->plan, opt_base->query);
  EXPECT_TRUE(res_base.ok()) << res_base.status().ToString();

  auto rewritten = ParseAndBind(catalog, sql);
  EXPECT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  std::vector<ViewRewriteCertificate> certs;
  auto n = RewriteWithMaterializedViews(catalog, &*rewritten, &certs);
  EXPECT_TRUE(n.ok()) << n.status().ToString();
  auto opt_view = OptimizeTraditional(*rewritten);
  EXPECT_TRUE(opt_view.ok()) << opt_view.status().ToString();
  auto res_view = ExecutePlan(opt_view->plan, opt_view->query);
  EXPECT_TRUE(res_view.ok()) << res_view.status().ToString();

  EXPECT_EQ(res_base->Fingerprint(), res_view->Fingerprint())
      << "view-answered plan disagrees with the base plan for:\n"
      << sql;
  TransformationAudit audit;
  audit.view_rewrites = std::move(certs);
  Status verified = VerifyAudit(opt_view->query, audit);
  EXPECT_TRUE(verified.ok()) << verified.ToString();
  return *n;
}

}  // namespace aggview

#endif  // AGGVIEW_TESTS_TEST_UTIL_H_
