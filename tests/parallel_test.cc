#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "test_util.h"

namespace aggview {
namespace {

/// Morsel-driven parallelism must be invisible to query semantics: the same
/// plan executed at any thread count, any morsel size and any batch size
/// yields a byte-identical result fingerprint and charges exactly the same
/// number of IO pages as the serial run. These tests pin that contract on
/// the shapes where a parallel engine classically goes wrong: groups that
/// span morsel boundaries, NULL join keys, empty inputs, and a build side
/// skewed into a single partition.

/// Optimizes `sql` and executes the winning plan under `ctx` (with a fresh
/// IO accountant installed); returns the result, or asserts.
Result<QueryResult> RunUnder(const Catalog& catalog, const std::string& sql,
                             ExecContext ctx, int64_t* io_pages = nullptr) {
  auto query = ParseAndBind(catalog, sql);
  if (!query.ok()) return query.status();
  auto optimized = OptimizeQueryWithAggViews(*query, OptimizerOptions{});
  if (!optimized.ok()) return optimized.status();
  IoAccountant io;
  auto result = ExecutePlan(optimized->plan, optimized->query,
                            ctx.WithIo(&io));
  if (result.ok() && io_pages != nullptr) *io_pages = io.total();
  return result;
}

/// Executes `sql` serially as the reference, then re-executes it at every
/// (threads, morsel_rows, batch_size) combination given and asserts the
/// fingerprint and the charged IO pages never change.
void CheckDeterministicAcrossThreads(
    const Catalog& catalog, const std::string& sql,
    const std::vector<int>& thread_counts,
    const std::vector<int64_t>& morsel_sizes,
    const std::vector<int>& batch_sizes) {
  int64_t reference_io = -1;
  auto reference =
      RunUnder(catalog, sql, ExecContext{}.WithThreads(1), &reference_io);
  ASSERT_OK(reference);
  const std::string want = reference->Fingerprint();

  for (int threads : thread_counts) {
    for (int64_t morsel_rows : morsel_sizes) {
      for (int batch_size : batch_sizes) {
        int64_t io = -1;
        auto result = RunUnder(catalog, sql,
                               ExecContext{}
                                   .WithThreads(threads)
                                   .WithMorselRows(morsel_rows)
                                   .WithBatchSize(batch_size),
                               &io);
        ASSERT_OK(result);
        EXPECT_EQ(result->Fingerprint(), want)
            << "threads=" << threads << " morsel_rows=" << morsel_rows
            << " batch_size=" << batch_size;
        EXPECT_EQ(io, reference_io)
            << "IO charge diverged: threads=" << threads
            << " morsel_rows=" << morsel_rows << " batch_size=" << batch_size;
      }
    }
  }
}

/// Groups that span morsel boundaries: 40'000 employees over 100 departments
/// means every department's rows are spread across all three default-size
/// morsels, so thread-local partial aggregates *must* merge to be correct.
TEST(ParallelDeterminism, GroupsSpanningMorselBoundaries) {
  EmpDeptOptions data;
  data.num_employees = 40'000;
  data.num_departments = 100;
  EmpDeptFixture f = MakeEmpDept(data);
  CheckDeterministicAcrossThreads(*f.catalog, Example2Sql(), {1, 2, 8},
                                  {16'384}, {1024});
}

/// Tiny morsels (7 rows) over the paper's Example 1 force thousands of
/// dispenser claims and heavy interleaving between workers — a stress test
/// for the claim protocol at both degenerate and default batch sizes.
TEST(ParallelDeterminism, TinyMorselsManyClaims) {
  EmpDeptOptions data;
  data.num_employees = 600;
  data.num_departments = 12;
  data.young_fraction = 0.3;
  EmpDeptFixture f = MakeEmpDept(data);
  CheckDeterministicAcrossThreads(*f.catalog, Example1Sql(), {2, 8}, {7},
                                  {1, 1024});
}

/// NULL join keys: rows with a NULL key match nothing and must be dropped
/// identically by the serial build, the parallel spool-then-partition build,
/// and every probe worker. dept.dno has a NULL, emp.dno has two.
TEST(ParallelDeterminism, NullJoinKeys) {
  Catalog catalog;
  auto tables = CreateEmpDeptSchema(&catalog);
  ASSERT_OK(tables);

  auto dept = std::make_shared<Table>(catalog.table(tables->dept).schema);
  dept->AppendUnchecked({Value::Int(1), Value::Real(100000.0)});
  dept->AppendUnchecked({Value::Int(2), Value::Real(200000.0)});
  dept->AppendUnchecked({Value::Null(), Value::Real(300000.0)});
  catalog.mutable_table(tables->dept).stats = ComputeStats(*dept);
  catalog.mutable_table(tables->dept).data = dept;

  auto emp = std::make_shared<Table>(catalog.table(tables->emp).schema);
  auto add = [&](int64_t eno, Value dno, double sal) {
    emp->AppendUnchecked(
        {Value::Int(eno), std::move(dno), Value::Real(sal), Value::Int(30)});
  };
  add(1, Value::Int(1), 100);
  add(2, Value::Int(1), 200);
  add(3, Value::Int(2), 300);
  add(4, Value::Null(), 400);
  add(5, Value::Null(), 500);
  catalog.mutable_table(tables->emp).stats = ComputeStats(*emp);
  catalog.mutable_table(tables->emp).data = emp;

  const std::string sql =
      "select e.eno, d.budget from emp e, dept d where e.dno = d.dno";
  // Morsel size 1 maximizes the chance that the NULL-keyed rows land in
  // different workers than their neighbours.
  CheckDeterministicAcrossThreads(catalog, sql, {1, 2, 8}, {1, 16'384},
                                  {1, 1024});

  auto result = RunUnder(catalog, sql, ExecContext{}.WithThreads(8));
  ASSERT_OK(result);
  EXPECT_EQ(result->rows.size(), 3u);
}

/// Empty inputs: a scalar aggregate over zero rows still produces its one
/// synthesized row (COUNT = 0, AVG = NULL) on every thread count, and a join
/// of two empty tables produces zero rows without tripping the parallel
/// build or the morsel dispenser.
TEST(ParallelDeterminism, EmptyInputs) {
  Catalog catalog;
  auto tables = CreateEmpDeptSchema(&catalog);
  ASSERT_OK(tables);
  for (TableId id : {tables->emp, tables->dept}) {
    auto table = std::make_shared<Table>(catalog.table(id).schema);
    catalog.mutable_table(id).stats = ComputeStats(*table);
    catalog.mutable_table(id).data = table;
  }

  const std::string scalar = "select count(*), avg(e.sal) from emp e";
  CheckDeterministicAcrossThreads(catalog, scalar, {1, 2, 8}, {1, 16'384},
                                  {1, 1024});
  auto result = RunUnder(catalog, scalar, ExecContext{}.WithThreads(8));
  ASSERT_OK(result);
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], Value::Int(0));
  EXPECT_TRUE(result->rows[0][1].is_null());

  const std::string join =
      "select e.eno from emp e, dept d where e.dno = d.dno";
  CheckDeterministicAcrossThreads(catalog, join, {1, 2, 8}, {1, 16'384},
                                  {1, 1024});
}

/// Skewed build side: a single department means every build row hashes to
/// the same key (one partition does all the work) and the probe fans every
/// emp row into the same chain. Partitioning must not lose or duplicate.
TEST(ParallelDeterminism, SkewedBuildSide) {
  EmpDeptOptions data;
  data.num_employees = 5'000;
  data.num_departments = 1;
  data.young_fraction = 0.5;
  EmpDeptFixture f = MakeEmpDept(data);
  CheckDeterministicAcrossThreads(*f.catalog, Example1Sql(), {1, 2, 8},
                                  {1'000}, {1024});
}

/// The session facade: Sql() → PreparedQuery, identical results and IO
/// charges whether the session runs serial or with a shared 8-worker pool.
TEST(SessionApi, ParallelSessionMatchesSerialSession) {
  auto make_session = [](int threads) {
    SessionOptions options;
    options.threads = threads;
    auto session = std::make_unique<Session>(options);
    auto tables = CreateEmpDeptSchema(&session->catalog());
    EXPECT_OK(tables);
    EmpDeptOptions data;
    data.num_employees = 3'000;
    data.num_departments = 40;
    data.young_fraction = 0.3;
    EXPECT_OK(GenerateEmpDeptData(&session->catalog(), *tables, data));
    return session;
  };

  auto serial = make_session(1);
  auto parallel = make_session(8);
  EXPECT_EQ(parallel->options().threads, 8);

  auto q1 = serial->Sql(Example1Sql());
  ASSERT_OK(q1);
  auto q8 = parallel->Sql(Example1Sql());
  ASSERT_OK(q8);

  // Same catalog contents + same optimizer: same plan, same explanation.
  EXPECT_EQ(q1->description(), q8->description());
  EXPECT_EQ(q1->Explain(), q8->Explain());
  EXPECT_FALSE(q1->Explain().empty());
  EXPECT_FALSE(q1->alternatives().empty());

  // Before the first run there is no measured IO.
  EXPECT_EQ(q8->last_io_pages(), -1);

  auto r1 = q1->Execute();
  ASSERT_OK(r1);
  auto r8 = q8->Execute();
  ASSERT_OK(r8);
  EXPECT_EQ(r1->Fingerprint(), r8->Fingerprint());
  EXPECT_EQ(q1->last_io_pages(), q8->last_io_pages());
  EXPECT_GT(q8->last_io_pages(), 0);

  // A prepared query re-executes (optimize once, run many).
  auto again = q8->Execute();
  ASSERT_OK(again);
  EXPECT_EQ(again->Fingerprint(), r8->Fingerprint());
}

/// EXPLAIN ANALYZE through a parallel session reports the worker count on
/// morsel-parallel operators (aggregate-over-scan always parallelizes).
TEST(SessionApi, ExplainAnalyzeReportsWorkers) {
  SessionOptions options;
  options.threads = 8;
  Session session(options);
  auto tables = CreateEmpDeptSchema(&session.catalog());
  ASSERT_OK(tables);
  EmpDeptOptions data;
  data.num_employees = 2'000;
  ASSERT_OK(GenerateEmpDeptData(&session.catalog(), *tables, data));

  auto prepared = session.Sql("select count(*), sum(e.sal) from emp e");
  ASSERT_OK(prepared);
  auto analyzed = prepared->ExplainAnalyze();
  ASSERT_OK(analyzed);
  EXPECT_NE(analyzed->find("workers=8"), std::string::npos) << *analyzed;
  // ExplainAnalyze executed the plan, so IO is measured now.
  EXPECT_GT(prepared->last_io_pages(), 0);

  // A serial session never reports a workers= column.
  Session serial{SessionOptions{}};
  auto t2 = CreateEmpDeptSchema(&serial.catalog());
  ASSERT_OK(t2);
  ASSERT_OK(GenerateEmpDeptData(&serial.catalog(), *t2, data));
  auto p2 = serial.Sql("select count(*), sum(e.sal) from emp e");
  ASSERT_OK(p2);
  auto a2 = p2->ExplainAnalyze();
  ASSERT_OK(a2);
  EXPECT_EQ(a2->find("workers="), std::string::npos) << *a2;
}

/// Sql() surfaces binder errors instead of crashing, and the traditional
/// toggle switches the optimizer for subsequent statements.
TEST(SessionApi, ErrorsAndTraditionalToggle) {
  Session session;
  auto tables = CreateEmpDeptSchema(&session.catalog());
  ASSERT_OK(tables);
  ASSERT_OK(GenerateEmpDeptData(&session.catalog(), *tables, EmpDeptOptions{}));

  auto bad = session.Sql("select nope.x from emp e");
  EXPECT_FALSE(bad.ok());

  auto extended = session.Sql(Example1Sql());
  ASSERT_OK(extended);
  session.set_use_traditional(true);
  auto traditional = session.Sql(Example1Sql());
  ASSERT_OK(traditional);

  auto re = extended->Execute();
  ASSERT_OK(re);
  auto rt = traditional->Execute();
  ASSERT_OK(rt);
  EXPECT_EQ(re->Fingerprint(), rt->Fingerprint());
}

/// An explicitly-spelled default ExecContext and ExecContext::Default()
/// drive the executor identically (modulo the environment overrides, which
/// only change throughput, never results).
TEST(ExecContextApi, ExplicitContextMatchesDefaultForm) {
  EmpDeptFixture f = MakeEmpDept();
  auto query = ParseAndBind(*f.catalog, Example1Sql());
  ASSERT_OK(query);
  auto optimized = OptimizeQueryWithAggViews(*query, OptimizerOptions{});
  ASSERT_OK(optimized);

  IoAccountant io_explicit, io_default;
  auto via_explicit = ExecutePlan(optimized->plan, optimized->query,
                                  ExecContext{}.WithIo(&io_explicit));
  ASSERT_OK(via_explicit);
  auto via_default =
      ExecutePlan(optimized->plan, optimized->query,
                  ExecContext::Default().WithIo(&io_default));
  ASSERT_OK(via_default);
  EXPECT_EQ(via_explicit->Fingerprint(), via_default->Fingerprint());
  EXPECT_EQ(io_explicit.total(), io_default.total());

  // Defaults clamp: zero/negative knobs fall back to sane values.
  ExecContext ctx;
  ctx.WithThreads(0).WithMorselRows(-5).WithBatchSize(0);
  EXPECT_EQ(ctx.threads, 1);
  EXPECT_EQ(ctx.morsel_rows, 1);
  EXPECT_GE(ctx.batch_size, 1);
}

}  // namespace
}  // namespace aggview
