#include <gtest/gtest.h>

#include "test_util.h"

namespace aggview {
namespace {

/// Tests of the outer-join extension (the paper's footnote 3: flattening
/// nested subqueries "may introduce outerjoins"; generalizations deferred to
/// [CS96]). NULL values, COALESCE, and left-outer hash / nested-loop joins.

TEST(NullValueTest, Basics) {
  Value n = Value::Null();
  EXPECT_TRUE(n.is_null());
  EXPECT_FALSE(Value::Int(0).is_null());
  EXPECT_EQ(n.ToString(), "NULL");
  // Grouping convention: NULL == NULL, NULL sorts first.
  EXPECT_EQ(n.Compare(Value::Null()), 0);
  EXPECT_LT(n.Compare(Value::Int(-100)), 0);
  EXPECT_EQ(n.Hash(), Value::Null().Hash());
}

TEST(NullValueTest, PredicatesAreFalseOnNull) {
  ColumnCatalog cat;
  ColId c = cat.Add("c", DataType::kInt64);
  RowLayout layout({c});
  Row row = {Value::Null()};
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    EXPECT_FALSE(Cmp(Col(c), op, LitInt(0)).Eval(row, layout));
    EXPECT_FALSE(Cmp(LitInt(0), op, Col(c)).Eval(row, layout));
  }
}

TEST(NullValueTest, ArithmeticPropagatesNull) {
  ColumnCatalog cat;
  ColId c = cat.Add("c", DataType::kInt64);
  RowLayout layout({c});
  Row row = {Value::Null()};
  EXPECT_TRUE(Arith(ArithOp::kAdd, Col(c), LitInt(1))->Eval(row, layout).is_null());
}

TEST(NullValueTest, CoalesceSubstitutes) {
  ColumnCatalog cat;
  ColId c = cat.Add("c", DataType::kInt64);
  RowLayout layout({c});
  EXPECT_EQ(Coalesce(Col(c), LitInt(0))->Eval({Value::Null()}, layout).AsInt(), 0);
  EXPECT_EQ(Coalesce(Col(c), LitInt(0))->Eval({Value::Int(7)}, layout).AsInt(), 7);
}

TEST(NullValueTest, AggregatesSkipNulls) {
  AggAccumulator sum(AggKind::kSum);
  sum.Add({Value::Int(5)});
  sum.Add({Value::Null()});
  sum.Add({Value::Int(3)});
  EXPECT_EQ(sum.Finish().AsInt(), 8);

  AggAccumulator cnt(AggKind::kCount);
  cnt.Add({Value::Int(1)});
  cnt.Add({Value::Null()});
  EXPECT_EQ(cnt.Finish().AsInt(), 1);

  AggAccumulator star(AggKind::kCountStar);
  star.Add({});
  star.Add({});
  EXPECT_EQ(star.Finish().AsInt(), 2);
}

/// Fixture: dept (3 rows) and emp where dept 3 has NO employees — the
/// empty-group case behind the COUNT bug.
class OuterJoinTest : public ::testing::Test {
 protected:
  OuterJoinTest() {
    auto tables = CreateEmpDeptSchema(&catalog_);
    EXPECT_OK(tables);
    tables_ = *tables;
    auto dept = std::make_shared<Table>(catalog_.table(tables_.dept).schema);
    for (int64_t d = 1; d <= 3; ++d) {
      dept->AppendUnchecked({Value::Int(d), Value::Real(d * 100000.0)});
    }
    catalog_.mutable_table(tables_.dept).stats = ComputeStats(*dept);
    catalog_.mutable_table(tables_.dept).data = dept;

    auto emp = std::make_shared<Table>(catalog_.table(tables_.emp).schema);
    auto add = [&](int64_t eno, int64_t dno) {
      emp->AppendUnchecked(
          {Value::Int(eno), Value::Int(dno), Value::Real(100), Value::Int(30)});
    };
    add(1, 1);
    add(2, 1);
    add(3, 2);  // dept 3: no employees
    catalog_.mutable_table(tables_.emp).stats = ComputeStats(*emp);
    catalog_.mutable_table(tables_.emp).data = emp;
  }

  Catalog catalog_;
  EmpDeptTables tables_;
};

TEST_F(OuterJoinTest, LeftOuterJoinPadsUnmatchedRows) {
  Query q(&catalog_);
  int d = q.AddRangeVar(tables_.dept, "d");
  int e = q.AddRangeVar(tables_.emp, "e");
  q.base_rels() = {d, e};
  ColId d_dno = q.range_var(d).columns[0];
  ColId e_dno = q.range_var(e).columns[1];
  ColId eno = q.range_var(e).columns[0];
  q.select_list() = {d_dno, eno};

  PlanBuilder b(q);
  std::set<ColId> needed = {d_dno, e_dno, eno};
  PlanPtr loj = b.LeftOuterJoin(b.Scan(d, {}, needed), b.Scan(e, {}, needed),
                                {EqCols(d_dno, e_dno)}, needed);
  auto result = ExecutePlan(b.Project(loj, q.select_list()), q);
  ASSERT_OK(result);
  // 2 matches for dept 1, 1 for dept 2, 1 padded row for dept 3.
  ASSERT_EQ(result->rows.size(), 4u);
  int padded = 0;
  for (const Row& row : result->rows) {
    if (row[1].is_null()) {
      ++padded;
      EXPECT_EQ(row[0].AsInt(), 3);
    }
  }
  EXPECT_EQ(padded, 1);
}

TEST_F(OuterJoinTest, NestedLoopOuterMatchesHashOuter) {
  Query q(&catalog_);
  int d = q.AddRangeVar(tables_.dept, "d");
  int e = q.AddRangeVar(tables_.emp, "e");
  q.base_rels() = {d, e};
  ColId d_dno = q.range_var(d).columns[0];
  ColId e_dno = q.range_var(e).columns[1];
  ColId eno = q.range_var(e).columns[0];
  q.select_list() = {d_dno, eno};
  PlanBuilder b(q);
  std::set<ColId> needed = {d_dno, e_dno, eno};

  PlanPtr hash = b.LeftOuterJoin(b.Scan(d, {}, needed), b.Scan(e, {}, needed),
                                 {EqCols(d_dno, e_dno)}, needed);
  // Force the nested-loop shape by marking a BNL join as outer.
  PlanPtr bnl_inner = b.Join(JoinAlgo::kBlockNestedLoop, b.Scan(d, {}, needed),
                             b.Scan(e, {}, needed), {EqCols(d_dno, e_dno)},
                             needed);
  auto bnl = std::make_shared<PlanNode>(*bnl_inner);
  bnl->left_outer = true;

  auto r1 = ExecutePlan(b.Project(hash, q.select_list()), q);
  auto r2 = ExecutePlan(b.Project(bnl, q.select_list()), q);
  ASSERT_OK(r1);
  ASSERT_OK(r2);
  EXPECT_EQ(r1->Fingerprint(), r2->Fingerprint());
}

TEST_F(OuterJoinTest, SortMergeOuterIsDemotedToHash) {
  // A plan that asks for a sort-merge outer join must still execute
  // correctly (lowering demotes it to the hash operator's outer mode).
  Query q(&catalog_);
  int d = q.AddRangeVar(tables_.dept, "d");
  int e = q.AddRangeVar(tables_.emp, "e");
  q.base_rels() = {d, e};
  ColId d_dno = q.range_var(d).columns[0];
  ColId e_dno = q.range_var(e).columns[1];
  q.select_list() = {d_dno};
  PlanBuilder b(q);
  std::set<ColId> needed = {d_dno, e_dno};
  PlanPtr smj = b.Join(JoinAlgo::kSortMerge, b.Scan(d, {}, needed),
                       b.Scan(e, {}, needed), {EqCols(d_dno, e_dno)}, needed);
  auto outer = std::make_shared<PlanNode>(*smj);
  outer->left_outer = true;
  auto result = ExecutePlan(b.Project(outer, q.select_list()), q);
  ASSERT_OK(result);
  EXPECT_EQ(result->rows.size(), 4u);  // 3 matches + 1 padded dept
}

TEST_F(OuterJoinTest, CountBugFlattening) {
  // Correlated query: departments with fewer than 2 employees —
  //   SELECT d.dno FROM dept d
  //   WHERE (SELECT COUNT(*) FROM emp e WHERE e.dno = d.dno) < 2
  // Naive inner-join flattening loses dept 3 (its group is empty and COUNT
  // never produces 0) — the COUNT bug. The correct flattening is a LEFT
  // OUTER join against the count view with COALESCE(cnt, 0).
  Query q(&catalog_);
  int d = q.AddRangeVar(tables_.dept, "d");
  int e = q.AddRangeVar(tables_.emp, "e");
  q.base_rels() = {d, e};
  ColId d_dno = q.range_var(d).columns[0];
  ColId e_dno = q.range_var(e).columns[1];
  ColId cnt = q.columns().Add("count(*)", DataType::kInt64);
  q.select_list() = {d_dno};

  PlanBuilder b(q);
  std::set<ColId> needed = {d_dno, e_dno, cnt};
  GroupBySpec gb;
  gb.grouping = {e_dno};
  gb.aggregates = {{AggKind::kCountStar, {}, cnt}};
  PlanPtr view = b.GroupBy(b.Scan(e, {}, needed), gb, needed);

  // Incorrect inner-join flattening: dept 3 silently disappears.
  PlanPtr wrong = b.Filter(
      b.Join(JoinAlgo::kHash, b.Scan(d, {}, needed), view,
             {EqCols(d_dno, e_dno)}, needed),
      {Cmp(Col(cnt), CompareOp::kLt, LitInt(2))});
  auto wrong_result = ExecutePlan(b.Project(wrong, q.select_list()), q);
  ASSERT_OK(wrong_result);
  EXPECT_EQ(wrong_result->rows.size(), 1u);  // only dept 2 — dept 3 lost!

  // Correct flattening: LOJ + COALESCE.
  PlanPtr right = b.Filter(
      b.LeftOuterJoin(b.Scan(d, {}, needed), view, {EqCols(d_dno, e_dno)},
                      needed),
      {Cmp(Coalesce(Col(cnt), LitInt(0)), CompareOp::kLt, LitInt(2))});
  auto result = ExecutePlan(b.Project(right, q.select_list()), q);
  ASSERT_OK(result);
  std::set<int64_t> dnos;
  for (const Row& row : result->rows) dnos.insert(row[0].AsInt());
  EXPECT_EQ(dnos, (std::set<int64_t>{2, 3}));  // dept 3 recovered
}

TEST_F(OuterJoinTest, GroupByTreatsNullsAsOneGroup) {
  // Group the LOJ output by the (possibly NULL) employee dno.
  Query q(&catalog_);
  int d = q.AddRangeVar(tables_.dept, "d");
  int e = q.AddRangeVar(tables_.emp, "e");
  q.base_rels() = {d, e};
  ColId d_dno = q.range_var(d).columns[0];
  ColId e_dno = q.range_var(e).columns[1];
  ColId cnt = q.columns().Add("count(*)", DataType::kInt64);
  q.select_list() = {e_dno, cnt};
  PlanBuilder b(q);
  std::set<ColId> needed = {d_dno, e_dno, cnt};
  PlanPtr loj = b.LeftOuterJoin(b.Scan(d, {}, needed), b.Scan(e, {}, needed),
                                {EqCols(d_dno, e_dno)}, needed);
  GroupBySpec gb;
  gb.grouping = {e_dno};
  gb.aggregates = {{AggKind::kCountStar, {}, cnt}};
  PlanPtr plan = b.GroupBy(loj, gb, needed);
  auto result = ExecutePlan(b.Project(plan, q.select_list()), q);
  ASSERT_OK(result);
  // Groups: dno 1 (2 rows), dno 2 (1 row), NULL (1 padded row).
  ASSERT_EQ(result->rows.size(), 3u);
  bool has_null_group = false;
  for (const Row& row : result->rows) {
    if (row[0].is_null()) {
      has_null_group = true;
      EXPECT_EQ(row[1].AsInt(), 1);
    }
  }
  EXPECT_TRUE(has_null_group);
}

}  // namespace
}  // namespace aggview
