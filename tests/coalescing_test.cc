#include <gtest/gtest.h>

#include "transform/coalescing.h"
#include "optimizer/plan.h"
#include "test_util.h"

namespace aggview {
namespace {

class CoalescingTest : public ::testing::Test {
 protected:
  CoalescingTest()
      : fixture_(MakeEmpDept(Options())), q_(fixture_.catalog.get()) {
    e_ = q_.AddRangeVar(fixture_.tables.emp, "e");
    f_ = q_.AddRangeVar(fixture_.tables.emp, "f");  // fan-out join partner
    q_.base_rels() = {e_, f_};
    e_dno_ = q_.range_var(e_).columns[1];
    e_sal_ = q_.range_var(e_).columns[2];
    f_dno_ = q_.range_var(f_).columns[1];
  }

  static EmpDeptOptions Options() {
    EmpDeptOptions o;
    o.num_employees = 120;
    o.num_departments = 8;
    return o;
  }

  /// Builds the lazy plan G(e ⋈ f) and the eager plan G_final(G_partial(e) ⋈ f)
  /// and checks that they produce identical results. The e-f join fans out
  /// (dno is not a key), which is exactly the multiplicity case eager
  /// aggregation must preserve.
  void CheckEagerEqualsLazy(const GroupBySpec& gb) {
    q_.select_list().clear();
    for (ColId c : gb.OutputColumns()) q_.select_list().push_back(c);
    q_.top_group_by() = gb;

    PlanBuilder b(q_);
    std::vector<Predicate> join = {EqCols(e_dno_, f_dno_)};
    std::set<ColId> needed(q_.select_list().begin(), q_.select_list().end());
    for (ColId c : gb.AggArgSet()) needed.insert(c);
    for (ColId g : gb.grouping) needed.insert(g);
    needed.insert(e_dno_);
    needed.insert(f_dno_);

    // Lazy: join first, aggregate last.
    PlanPtr lazy = b.GroupBy(
        b.Join(JoinAlgo::kHash, b.Scan(e_, {}, needed), b.Scan(f_, {}, needed),
               join, needed),
        gb, needed);

    // Eager: pre-aggregate the e side, join, combine.
    std::set<ColId> below = q_.range_var(e_).ColumnSet();
    auto split = SplitForCoalescing(gb, below, {e_dno_}, &q_.columns());
    ASSERT_OK(split);
    std::set<ColId> needed2 = needed;
    for (const AggregateCall& a : split->partial.aggregates) {
      needed2.insert(a.output);
    }
    GroupBySpec final_spec;
    final_spec.grouping = gb.grouping;
    final_spec.aggregates = split->final_aggregates;
    final_spec.having = gb.having;
    PlanPtr eager = b.GroupBy(
        b.Join(JoinAlgo::kHash,
               b.GroupBy(b.Scan(e_, {}, needed2), split->partial, needed2),
               b.Scan(f_, {}, needed2), join, needed2),
        final_spec, needed2);

    auto r_lazy = ExecutePlan(lazy, q_);
    ASSERT_OK(r_lazy);
    auto r_eager = ExecutePlan(eager, q_);
    ASSERT_OK(r_eager);
    EXPECT_GT(r_lazy->rows.size(), 0u);
    EXPECT_EQ(r_lazy->Fingerprint(), r_eager->Fingerprint());
  }

  ColId NewOut(const char* name, DataType t) { return q_.columns().Add(name, t); }

  EmpDeptFixture fixture_;
  Query q_;
  int e_, f_;
  ColId e_dno_, e_sal_, f_dno_;
};

TEST_F(CoalescingTest, ApplicabilityRequiresDecomposableAggregates) {
  GroupBySpec gb;
  gb.grouping = {e_dno_};
  gb.aggregates = {{AggKind::kMedian, {e_sal_}, NewOut("m", DataType::kDouble)}};
  EXPECT_FALSE(CoalescingApplicable(gb, q_.range_var(e_).ColumnSet()));
  auto split = SplitForCoalescing(gb, q_.range_var(e_).ColumnSet(), {},
                                  &q_.columns());
  EXPECT_FALSE(split.ok());
}

TEST_F(CoalescingTest, ApplicabilityRequiresArgsBelow) {
  GroupBySpec gb;
  gb.grouping = {e_dno_};
  // Aggregate over f's column cannot be pre-computed on e alone.
  gb.aggregates = {
      {AggKind::kSum, {q_.range_var(f_).columns[2]}, NewOut("s", DataType::kDouble)}};
  EXPECT_FALSE(CoalescingApplicable(gb, q_.range_var(e_).ColumnSet()));
}

TEST_F(CoalescingTest, CountStarIsAlwaysApplicable) {
  GroupBySpec gb;
  gb.grouping = {e_dno_};
  gb.aggregates = {{AggKind::kCountStar, {}, NewOut("c", DataType::kInt64)}};
  EXPECT_TRUE(CoalescingApplicable(gb, q_.range_var(e_).ColumnSet()));
}

TEST_F(CoalescingTest, SplitStructure) {
  GroupBySpec gb;
  gb.grouping = {e_dno_};
  gb.aggregates = {{AggKind::kAvg, {e_sal_}, NewOut("a", DataType::kDouble)}};
  auto split = SplitForCoalescing(gb, q_.range_var(e_).ColumnSet(), {e_dno_},
                                  &q_.columns());
  ASSERT_OK(split);
  // AVG splits into SUM + COUNT partials and one AvgFinal.
  EXPECT_EQ(split->partial.aggregates.size(), 2u);
  ASSERT_EQ(split->final_aggregates.size(), 1u);
  EXPECT_EQ(split->final_aggregates[0].kind, AggKind::kAvgFinal);
  // The final call writes into the ORIGINAL output column id.
  EXPECT_EQ(split->final_aggregates[0].output, gb.aggregates[0].output);
  EXPECT_EQ(split->partial.grouping, (std::vector<ColId>{e_dno_}));
}

TEST_F(CoalescingTest, SumSurvivesFanOutJoin) {
  GroupBySpec gb;
  gb.grouping = {e_dno_};
  gb.aggregates = {{AggKind::kSum, {e_sal_}, NewOut("s", DataType::kDouble)}};
  CheckEagerEqualsLazy(gb);
}

TEST_F(CoalescingTest, CountStarSurvivesFanOutJoin) {
  GroupBySpec gb;
  gb.grouping = {e_dno_};
  gb.aggregates = {{AggKind::kCountStar, {}, NewOut("c", DataType::kInt64)}};
  CheckEagerEqualsLazy(gb);
}

TEST_F(CoalescingTest, CountColumnSurvivesFanOutJoin) {
  GroupBySpec gb;
  gb.grouping = {e_dno_};
  gb.aggregates = {{AggKind::kCount, {e_sal_}, NewOut("c", DataType::kInt64)}};
  CheckEagerEqualsLazy(gb);
}

TEST_F(CoalescingTest, MinMaxSurviveFanOutJoin) {
  GroupBySpec gb;
  gb.grouping = {e_dno_};
  gb.aggregates = {{AggKind::kMin, {e_sal_}, NewOut("mn", DataType::kDouble)},
                   {AggKind::kMax, {e_sal_}, NewOut("mx", DataType::kDouble)}};
  CheckEagerEqualsLazy(gb);
}

TEST_F(CoalescingTest, AvgSurvivesFanOutJoin) {
  GroupBySpec gb;
  gb.grouping = {e_dno_};
  gb.aggregates = {{AggKind::kAvg, {e_sal_}, NewOut("a", DataType::kDouble)}};
  CheckEagerEqualsLazy(gb);
}

TEST_F(CoalescingTest, MixedAggregatesSurviveFanOutJoin) {
  GroupBySpec gb;
  gb.grouping = {e_dno_};
  gb.aggregates = {{AggKind::kSum, {e_sal_}, NewOut("s", DataType::kDouble)},
                   {AggKind::kAvg, {e_sal_}, NewOut("a", DataType::kDouble)},
                   {AggKind::kCountStar, {}, NewOut("c", DataType::kInt64)},
                   {AggKind::kMin, {e_sal_}, NewOut("m", DataType::kDouble)}};
  CheckEagerEqualsLazy(gb);
}

TEST_F(CoalescingTest, HavingStaysAtFinal) {
  GroupBySpec gb;
  gb.grouping = {e_dno_};
  ColId c = NewOut("c", DataType::kInt64);
  gb.aggregates = {{AggKind::kCountStar, {}, c}};
  gb.having = {Cmp(Col(c), CompareOp::kGt, LitInt(100))};
  CheckEagerEqualsLazy(gb);
}

TEST_F(CoalescingTest, ResplitAvgFinal) {
  // Splitting twice (an already-coalesced AVG pre-aggregated again) still
  // produces a consistent combining chain.
  GroupBySpec gb;
  gb.grouping = {e_dno_};
  ColId a = NewOut("a", DataType::kDouble);
  gb.aggregates = {{AggKind::kAvg, {e_sal_}, a}};
  auto split1 = SplitForCoalescing(gb, q_.range_var(e_).ColumnSet(), {e_dno_},
                                   &q_.columns());
  ASSERT_OK(split1);
  GroupBySpec second;
  second.grouping = gb.grouping;
  second.aggregates = split1->final_aggregates;
  // OutputColumns() returns by value; materialize it once so the set is not
  // built from iterators into two distinct temporaries.
  std::vector<ColId> partial_out = split1->partial.OutputColumns();
  std::set<ColId> below2(partial_out.begin(), partial_out.end());
  auto split2 = SplitForCoalescing(second, below2, {e_dno_}, &q_.columns());
  ASSERT_OK(split2);
  EXPECT_EQ(split2->final_aggregates[0].kind, AggKind::kAvgFinal);
  EXPECT_EQ(split2->final_aggregates[0].output, a);
}

}  // namespace
}  // namespace aggview
