#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "test_util.h"

namespace aggview {
namespace {

EmpDeptOptions SmallData() {
  EmpDeptOptions o;
  o.num_employees = 200;
  return o;
}

TEST(MatViewDdl, ParsesCreateAndRefresh) {
  EXPECT_TRUE(IsMatViewDdl(
      "create materialized view v as select e.dno from emp e group by e.dno"));
  EXPECT_TRUE(IsMatViewDdl("REFRESH MATERIALIZED VIEW v;"));
  EXPECT_FALSE(IsMatViewDdl("select 1"));
  EXPECT_FALSE(IsMatViewDdl("create view v as select e.dno from emp e"));

  auto create = ParseMatViewDdl(
      "create materialized view sal_by_dept (dno, total) as "
      "select e.dno, sum(e.sal) from emp e group by e.dno;");
  ASSERT_OK(create);
  EXPECT_FALSE(create->refresh);
  EXPECT_EQ(create->name, "sal_by_dept");
  ASSERT_EQ(create->column_names.size(), 2u);
  EXPECT_EQ(create->column_names[0], "dno");
  EXPECT_EQ(create->column_names[1], "total");
  EXPECT_NE(create->select_sql.find("sum(e.sal)"), std::string::npos);

  auto refresh = ParseMatViewDdl("refresh materialized view sal_by_dept");
  ASSERT_OK(refresh);
  EXPECT_TRUE(refresh->refresh);
  EXPECT_EQ(refresh->name, "sal_by_dept");

  EXPECT_FALSE(ParseMatViewDdl("create materialized view v").ok());
  EXPECT_FALSE(ParseMatViewDdl("refresh materialized view").ok());
}

TEST(MatViewCreate, RegistersViewAndBackingTable) {
  EmpDeptFixture f = MakeEmpDept(SmallData());
  auto view = ExecuteMatViewStatement(
      f.catalog.get(),
      "create materialized view dsal (dno, cnt, total, mean, lo, hi) as "
      "select e.dno, count(*), sum(e.sal), avg(e.sal), min(e.sal), "
      "max(e.sal) from emp e group by e.dno");
  ASSERT_OK(view);
  const ViewDefinition* def = f.catalog->FindView("dsal");
  ASSERT_NE(def, nullptr);
  EXPECT_EQ(def->num_grouping, 1);
  EXPECT_FALSE(def->scalar);
  EXPECT_TRUE(def->incremental);
  EXPECT_TRUE(f.catalog->IsViewFresh(*def));

  // One backing row per department present in emp.
  const Table& emp = (*f.catalog->table(f.tables.emp).data);
  std::set<int64_t> dnos;
  for (int64_t i = 0; i < emp.row_count(); ++i) {
    dnos.insert(emp.row(i)[1].AsInt());
  }
  const Table& backing = (*f.catalog->table(def->backing_table).data);
  EXPECT_EQ(backing.row_count(), static_cast<int64_t>(dnos.size()));

  // AVG shares its partials with SUM and COUNT: grouping key + hidden
  // COUNT(*) row count + psum(sal) + its COUNT(sal) witness + pmin + pmax.
  EXPECT_EQ(f.catalog->table(def->backing_table).schema.num_columns(), 6);
}

TEST(MatViewCreate, RejectsUnsupportedDefinitions) {
  EmpDeptFixture f = MakeEmpDept(SmallData());
  auto run = [&](const std::string& sql) {
    return ExecuteMatViewStatement(f.catalog.get(), sql).status();
  };
  EXPECT_FALSE(run("create materialized view v as select e.dno, sum(e.sal) "
                   "from emp e group by e.dno having sum(e.sal) > 10")
                   .ok());
  EXPECT_FALSE(run("create materialized view v as select e.dno, sum(e.sal) "
                   "from emp e group by e.dno order by e.dno")
                   .ok());
  EXPECT_FALSE(run("create materialized view v as select e.dno, "
                   "median(e.sal) from emp e group by e.dno")
                   .ok());
  EXPECT_FALSE(run("create materialized view v as select e.eno, e.sal "
                   "from emp e")
                   .ok());  // not an aggregate query
  EXPECT_FALSE(run("create materialized view v (a, a) as select e.dno, "
                   "sum(e.sal) from emp e group by e.dno")
                   .ok());  // duplicate output name
  EXPECT_FALSE(run("create materialized view v (__k, s) as select e.dno, "
                   "sum(e.sal) from emp e group by e.dno")
                   .ok());  // reserved name prefix
  EXPECT_FALSE(run("create materialized view v (a, b, c) as select e.dno, "
                   "sum(e.sal) from emp e group by e.dno")
                   .ok());  // more names than outputs

  ASSERT_OK(run("create materialized view base as select e.dno, sum(e.sal) "
                "from emp e group by e.dno"));
  EXPECT_FALSE(run("create materialized view v as select b.dno, "
                   "sum(b.base_1) from base b group by b.dno")
                   .ok());  // views over views
  EXPECT_FALSE(run("create materialized view base as select e.dno, "
                   "count(*) from emp e group by e.dno")
                   .ok());  // duplicate view
  EXPECT_FALSE(run("create materialized view emp as select e.dno, count(*) "
                   "from emp e group by e.dno")
                   .ok());  // shadows a table
  EXPECT_FALSE(
      ExecuteMatViewStatement(f.catalog.get(), "refresh materialized view nope")
          .ok());
}

TEST(MatViewRewrite, AnswersExactMatch) {
  EmpDeptFixture f = MakeEmpDept(SmallData());
  ASSERT_OK(ExecuteMatViewStatement(
      f.catalog.get(),
      "create materialized view dsal (dno, cnt, total, mean, lo) as "
      "select e.dno, count(*), sum(e.sal), avg(e.sal), min(e.sal) "
      "from emp e group by e.dno"));
  EXPECT_EQ(CheckViewAnswersAgree(
                *f.catalog,
                "select e.dno, count(*), sum(e.sal), avg(e.sal), min(e.sal) "
                "from emp e group by e.dno"),
            1);
  // Any subset of the stored aggregates is answerable too.
  EXPECT_EQ(CheckViewAnswersAgree(
                *f.catalog,
                "select e.dno, avg(e.sal) from emp e group by e.dno"),
            1);
}

TEST(MatViewRewrite, AnswersRollup) {
  EmpDeptFixture f = MakeEmpDept(SmallData());
  ASSERT_OK(ExecuteMatViewStatement(
      f.catalog.get(),
      "create materialized view by_dept_age as "
      "select e.dno, e.age, count(*), sum(e.sal), avg(e.sal), min(e.sal), "
      "max(e.sal), count(e.sal) from emp e group by e.dno, e.age"));
  // Roll up (dno, age) -> (dno): every combine re-aggregates whole groups.
  EXPECT_EQ(CheckViewAnswersAgree(
                *f.catalog,
                "select e.dno, count(*), sum(e.sal), avg(e.sal), min(e.sal), "
                "max(e.sal), count(e.sal) from emp e group by e.dno"),
            1);
  // Roll up to the other grouping column.
  EXPECT_EQ(CheckViewAnswersAgree(
                *f.catalog,
                "select e.age, max(e.sal) from emp e group by e.age"),
            1);
}

TEST(MatViewRewrite, AnswersPredicateViewAndScalarRollup) {
  EmpDeptFixture f = MakeEmpDept(SmallData());
  ASSERT_OK(ExecuteMatViewStatement(
      f.catalog.get(),
      "create materialized view young as "
      "select e.dno, count(*), sum(e.sal) from emp e where e.age < 22 "
      "group by e.dno"));
  EXPECT_EQ(CheckViewAnswersAgree(*f.catalog,
                                  "select e.dno, count(*), sum(e.sal) "
                                  "from emp e where e.age < 22 group by "
                                  "e.dno"),
            1);
  // Flipped comparison still matches (canonicalized predicates)...
  EXPECT_EQ(CheckViewAnswersAgree(*f.catalog,
                                  "select e.dno, sum(e.sal) from emp e "
                                  "where 22 > e.age group by e.dno"),
            1);
  // ... but a different constant does not.
  EXPECT_EQ(CheckViewAnswersAgree(*f.catalog,
                                  "select e.dno, sum(e.sal) from emp e "
                                  "where e.age < 23 group by e.dno"),
            0);
  // Scalar roll-up of a grouped view.
  EXPECT_EQ(CheckViewAnswersAgree(
                *f.catalog,
                "select count(*), sum(e.sal) from emp e where e.age < 22"),
            1);
}

TEST(MatViewRewrite, AnswersScalarView) {
  EmpDeptFixture f = MakeEmpDept(SmallData());
  ASSERT_OK(ExecuteMatViewStatement(
      f.catalog.get(),
      "create materialized view totals as "
      "select count(*), sum(e.sal), min(e.age), avg(e.sal) from emp e"));
  const ViewDefinition* def = f.catalog->FindView("totals");
  ASSERT_NE(def, nullptr);
  EXPECT_TRUE(def->scalar);
  EXPECT_EQ((*f.catalog->table(def->backing_table).data).row_count(), 1);
  EXPECT_EQ(CheckViewAnswersAgree(
                *f.catalog,
                "select count(*), sum(e.sal), min(e.age), avg(e.sal) "
                "from emp e"),
            1);
}

TEST(MatViewRewrite, AnswersJoinView) {
  EmpDeptFixture f = MakeEmpDept(SmallData());
  ASSERT_OK(ExecuteMatViewStatement(
      f.catalog.get(),
      "create materialized view rich_depts as "
      "select e.dno, avg(e.sal), count(*) from emp e, dept d "
      "where e.dno = d.dno and d.budget < 1000000 group by e.dno"));
  EXPECT_EQ(CheckViewAnswersAgree(
                *f.catalog,
                "select e.dno, avg(e.sal) from emp e, dept d "
                "where e.dno = d.dno and d.budget < 1000000 group by e.dno"),
            1);
  // Missing the budget predicate: not contained, not answered.
  EXPECT_EQ(CheckViewAnswersAgree(*f.catalog,
                                  "select e.dno, avg(e.sal) from emp e, "
                                  "dept d where e.dno = d.dno group by "
                                  "e.dno"),
            0);
}

TEST(MatViewRewrite, DoesNotAnswerNonContainedQueries) {
  EmpDeptFixture f = MakeEmpDept(SmallData());
  ASSERT_OK(ExecuteMatViewStatement(
      f.catalog.get(),
      "create materialized view dsal as "
      "select e.dno, sum(e.sal) from emp e group by e.dno"));
  // Aggregate not stored in the view.
  EXPECT_EQ(CheckViewAnswersAgree(
                *f.catalog, "select e.dno, min(e.sal) from emp e group by "
                            "e.dno"),
            0);
  // Grouping not contained in the view's grouping.
  EXPECT_EQ(CheckViewAnswersAgree(
                *f.catalog,
                "select e.age, sum(e.sal) from emp e group by e.age"),
            0);
  // Extra predicate the view does not have.
  EXPECT_EQ(CheckViewAnswersAgree(*f.catalog,
                                  "select e.dno, sum(e.sal) from emp e "
                                  "where e.age < 30 group by e.dno"),
            0);
  // MEDIAN is never answerable from stored partials.
  EXPECT_EQ(CheckViewAnswersAgree(
                *f.catalog,
                "select e.dno, median(e.sal) from emp e group by e.dno"),
            0);
}

TEST(MatViewRewrite, ReferencingViewByNameScansBacking) {
  EmpDeptFixture f = MakeEmpDept(SmallData());
  ASSERT_OK(ExecuteMatViewStatement(
      f.catalog.get(),
      "create materialized view dsal (dno, total) as "
      "select e.dno, sum(e.sal) from emp e group by e.dno"));
  // `FROM dsal` binds to the definition (an inlined aggregate view); the
  // rewriter then answers that block from the backing table. Example 1's
  // shape: join the view with the base table.
  EXPECT_EQ(CheckViewAnswersAgree(
                *f.catalog,
                "select e.sal from emp e, dsal v "
                "where e.dno = v.dno and e.sal > v.total / 2"),
            1);
}

TEST(MatViewRewrite, StaleViewSkippedUntilRefresh) {
  EmpDeptFixture f = MakeEmpDept(SmallData());
  ASSERT_OK(ExecuteMatViewStatement(
      f.catalog.get(),
      "create materialized view rich_depts as "
      "select e.dno, avg(e.sal) from emp e, dept d "
      "where e.dno = d.dno group by e.dno"));
  const std::string sql =
      "select e.dno, avg(e.sal) from emp e, dept d "
      "where e.dno = d.dno group by e.dno";
  EXPECT_EQ(CheckViewAnswersAgree(*f.catalog, sql), 1);

  // Mutating a base table of a multi-relation view leaves it stale: the
  // rewriter must stop using it (the backing content is outdated).
  TableDelta delta;
  delta.table = f.tables.emp;
  delta.deletes = {0, 1, 2};
  MaintenanceReport report;
  ASSERT_OK(ApplyTableDelta(f.catalog.get(), delta, &report));
  EXPECT_EQ(report.views_marked_stale, 1);
  EXPECT_FALSE(f.catalog->IsViewFresh(*f.catalog->FindView("rich_depts")));
  EXPECT_EQ(CheckViewAnswersAgree(*f.catalog, sql), 0);

  ASSERT_OK(ExecuteMatViewStatement(f.catalog.get(),
                                    "refresh materialized view rich_depts"));
  EXPECT_TRUE(f.catalog->IsViewFresh(*f.catalog->FindView("rich_depts")));
  EXPECT_EQ(CheckViewAnswersAgree(*f.catalog, sql), 1);
}

TEST(MatViewSession, DdlRewriteAndAudit) {
  Session session;
  auto tables = CreateEmpDeptSchema(&session.catalog());
  ASSERT_OK(tables);
  ASSERT_OK(GenerateEmpDeptData(&session.catalog(), *tables, SmallData()));

  auto created = session.ExecuteDdl(
      "create materialized view dsal (dno, total, cnt) as "
      "select e.dno, sum(e.sal), count(*) from emp e group by e.dno");
  ASSERT_OK(created);
  EXPECT_NE(created->find("dsal"), std::string::npos);

  const std::string sql =
      "select e.dno, sum(e.sal) from emp e group by e.dno";
  auto answered = session.Sql(sql);
  ASSERT_OK(answered);
  EXPECT_NE(answered->description().find("materialized views"),
            std::string::npos);
  auto res_answered = answered->Execute();
  ASSERT_OK(res_answered);

  // A second session with the rewriter disabled: base plan, same bytes.
  Session base{[] {
    SessionOptions o = SessionOptions::Default();
    o.use_materialized_views = false;
    return o;
  }()};
  auto base_tables = CreateEmpDeptSchema(&base.catalog());
  ASSERT_OK(base_tables);
  ASSERT_OK(GenerateEmpDeptData(&base.catalog(), *base_tables, SmallData()));
  auto plain = base.Sql(sql);
  ASSERT_OK(plain);
  EXPECT_EQ(plain->description().find("materialized views"),
            std::string::npos);
  auto res_plain = plain->Execute();
  ASSERT_OK(res_plain);
  EXPECT_EQ(res_answered->Fingerprint(), res_plain->Fingerprint());
}

}  // namespace
}  // namespace aggview
