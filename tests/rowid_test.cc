#include <gtest/gtest.h>

#include "transform/pullup.h"
#include "transform/pushdown.h"
#include "test_util.h"

namespace aggview {
namespace {

/// Tests of the synthetic tuple-id key (paper, Section 3: "In the absence of
/// a declared primary key, the query engine can use the internal tuple id
/// as a key").
class RowidTest : public ::testing::Test {
 protected:
  RowidTest() {
    // A keyless log table: (dno, amount) — no primary or unique key.
    TableDef def;
    def.name = "payments";
    def.schema = Schema({{"dno", DataType::kInt64},
                         {"amount", DataType::kDouble}});
    auto id = catalog_.AddTable(std::move(def));
    EXPECT_OK(id);
    payments_ = *id;
    auto data = std::make_shared<Table>(catalog_.table(payments_).schema);
    // Deliberate duplicate rows: only a tuple id distinguishes them.
    auto add = [&](int64_t dno, double amount) {
      data->AppendUnchecked({Value::Int(dno), Value::Real(amount)});
    };
    add(1, 100);
    add(1, 100);  // duplicate of the row above
    add(1, 50);
    add(2, 10);
    add(2, 10);  // duplicate
    catalog_.mutable_table(payments_).stats = ComputeStats(*data);
    catalog_.mutable_table(payments_).data = data;
  }

  Catalog catalog_;
  TableId payments_ = -1;
};

TEST_F(RowidTest, KeylessTableGetsRowid) {
  Query q(&catalog_);
  int p = q.AddRangeVar(payments_, "p");
  EXPECT_NE(q.range_var(p).rowid, kInvalidColId);
  EXPECT_EQ(q.columns().name(q.range_var(p).rowid), "p.$rowid");
  // Tables with keys do not get one.
  Catalog keyed;
  auto tables = CreateEmpDeptSchema(&keyed);
  ASSERT_OK(tables);
  Query q2(&keyed);
  int e = q2.AddRangeVar(tables->emp, "e");
  EXPECT_EQ(q2.range_var(e).rowid, kInvalidColId);
}

TEST_F(RowidTest, RowidActsAsKeyInShapeAnalysis) {
  Query q(&catalog_);
  int p = q.AddRangeVar(payments_, "p");
  RelShape shape = ShapeOfRangeVar(q, p);
  ASSERT_EQ(shape.keys.size(), 1u);
  EXPECT_EQ(shape.keys[0], std::vector<ColId>{q.range_var(p).rowid});
}

TEST_F(RowidTest, PullUpUsesRowidForKeylessTable) {
  // View over payments; the keyless payments joins from the top block.
  auto q = ParseAndBind(catalog_, R"sql(
create view v (dno, total) as
  select p2.dno, sum(p2.amount) from payments p2 group by p2.dno;
select p1.amount
from payments p1, v
where p1.dno = v.dno and p1.amount > 0.25 * v.total
)sql");
  ASSERT_OK(q);
  auto pulled = PullUpIntoView(*q, 0, {q->base_rels()[0]});
  ASSERT_OK(pulled);
  // p1 has no key, so its tuple id must appear in the deferred grouping.
  std::set<std::string> names;
  for (ColId g : pulled->views()[0].group_by.grouping) {
    names.insert(pulled->columns().name(g));
  }
  EXPECT_EQ(names.count("p1.$rowid"), 1u) << pulled->ToString();
}

TEST_F(RowidTest, PullUpOverDuplicateRowsIsExact) {
  // The duplicates are the danger: without a tuple id, the pulled-up
  // group-by would merge the two identical p1 rows and emit one instead of
  // two. Compare traditional vs pull-up results.
  auto q = ParseAndBind(catalog_, R"sql(
create view v (dno, total) as
  select p2.dno, sum(p2.amount) from payments p2 group by p2.dno;
select p1.amount
from payments p1, v
where p1.dno = v.dno and p1.amount > 0.25 * v.total
)sql");
  ASSERT_OK(q);

  auto traditional = OptimizeTraditional(*q);
  ASSERT_OK(traditional);
  auto rt = ExecutePlan(traditional->plan, traditional->query);
  ASSERT_OK(rt);

  auto pulled = PullUpIntoView(*q, 0, {q->base_rels()[0]});
  ASSERT_OK(pulled);
  auto forced = OptimizeQueryWithAggViews(*pulled, TraditionalOptions());
  ASSERT_OK(forced);
  auto rp = ExecutePlan(forced->plan, forced->query);
  ASSERT_OK(rp);

  // dno 1: total 250, threshold 62.5 -> rows 100, 100 (both duplicates!).
  // dno 2: total 20, threshold 5 -> rows 10, 10.
  EXPECT_EQ(rt->rows.size(), 4u);
  EXPECT_EQ(rt->Fingerprint(), rp->Fingerprint());
}

TEST_F(RowidTest, ScanMaterializesDistinctRowids) {
  Query q(&catalog_);
  int p = q.AddRangeVar(payments_, "p");
  q.base_rels() = {p};
  ColId rowid = q.range_var(p).rowid;
  ColId amount = q.range_var(p).columns[1];
  q.select_list() = {rowid, amount};
  PlanBuilder b(q);
  PlanPtr scan = b.Scan(p, {}, {rowid, amount});
  auto result = ExecutePlan(scan, q);
  ASSERT_OK(result);
  ASSERT_EQ(result->rows.size(), 5u);
  int idx = result->layout.IndexOf(rowid);
  ASSERT_GE(idx, 0);
  std::set<int64_t> ids;
  for (const Row& row : result->rows) {
    ids.insert(row[static_cast<size_t>(idx)].AsInt());
  }
  EXPECT_EQ(ids.size(), 5u);  // all distinct, despite duplicate payloads
}

TEST_F(RowidTest, OptimizersAgreeOnKeylessTables) {
  CheckOptimizersAgree(catalog_, R"sql(
create view v (dno, total) as
  select p2.dno, sum(p2.amount) from payments p2 group by p2.dno;
select p1.amount
from payments p1, v
where p1.dno = v.dno and p1.amount > 0.25 * v.total
)sql");
}

}  // namespace
}  // namespace aggview
