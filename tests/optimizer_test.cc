#include <gtest/gtest.h>

#include "optimizer/aggview_optimizer.h"
#include "optimizer/traditional.h"
#include "test_util.h"

namespace aggview {
namespace {

bool PlanHasGroupByBelowJoin(const PlanPtr& plan, bool under_join = false) {
  if (plan == nullptr) return false;
  if (plan->kind == PlanNode::Kind::kGroupBy && under_join) return true;
  bool join = under_join || plan->kind == PlanNode::Kind::kJoin;
  return PlanHasGroupByBelowJoin(plan->left, join) ||
         PlanHasGroupByBelowJoin(plan->right, join);
}

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() : fixture_(MakeEmpDept(Options())) {}

  static EmpDeptOptions Options() {
    EmpDeptOptions o;
    // Example 1's pull-up-friendly regime: many departments (small fan-out),
    // an emp table whose full aggregation spills, and a selective age
    // predicate whose selectivity matches the estimator's uniform-range
    // assumption (4 young ages out of the 18..65 span).
    o.num_employees = 50'000;
    o.num_departments = 15'000;
    o.young_fraction = 4.0 / 47.0;
    return o;
  }

  EmpDeptFixture fixture_;
};

TEST_F(OptimizerTest, TraditionalOptimizesExample1) {
  auto q = ParseAndBind(*fixture_.catalog, Example1Sql());
  ASSERT_OK(q);
  auto optimized = OptimizeTraditional(*q);
  ASSERT_OK(optimized);
  EXPECT_GT(optimized->plan->cost, 0.0);
  // Traditional plans keep the view's group-by above all of the view's
  // joins and below the top join.
  auto result = ExecutePlan(optimized->plan, optimized->query);
  ASSERT_OK(result);
  EXPECT_GT(result->rows.size(), 0u);
}

TEST_F(OptimizerTest, ExtendedNeverWorseAndEquivalentOnExample1) {
  int64_t io_t = 0, io_e = 0;
  CheckOptimizersAgree(*fixture_.catalog, Example1Sql(), &io_t, &io_e);
}

TEST_F(OptimizerTest, ExtendedNeverWorseAndEquivalentOnExample2) {
  CheckOptimizersAgree(*fixture_.catalog, Example2Sql());
}

TEST_F(OptimizerTest, PullUpWinsWithFewYoungEmployeesAndManyDepartments) {
  // The paper's Example 1 discussion: few young employees + many
  // departments favor the pulled-up query B. The extended optimizer should
  // strictly beat the traditional plan here.
  auto q = ParseAndBind(*fixture_.catalog, Example1Sql());
  ASSERT_OK(q);
  auto traditional = OptimizeTraditional(*q);
  ASSERT_OK(traditional);
  auto extended = OptimizeQueryWithAggViews(*q, OptimizerOptions{});
  ASSERT_OK(extended);
  EXPECT_LT(extended->plan->cost, traditional->plan->cost);
  // The winning alternative pulled e1 into the view.
  EXPECT_NE(extended->description.find("W(b)={e1}"), std::string::npos)
      << extended->description;
}

TEST_F(OptimizerTest, AlternativesIncludeTraditionalAndEmptyAssignment) {
  auto q = ParseAndBind(*fixture_.catalog, Example1Sql());
  ASSERT_OK(q);
  auto extended = OptimizeQueryWithAggViews(*q, OptimizerOptions{});
  ASSERT_OK(extended);
  bool has_empty = false, has_traditional = false;
  for (const PlanAlternative& alt : extended->alternatives) {
    if (alt.description == "W(b)={}") has_empty = true;
    if (alt.description == "traditional two-phase") has_traditional = true;
  }
  EXPECT_TRUE(has_empty);
  EXPECT_TRUE(has_traditional);
}

TEST_F(OptimizerTest, KLevelRestrictionLimitsPullUpSets) {
  auto q = ParseAndBind(*fixture_.catalog, R"sql(
create view v (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
select e1.sal
from emp e1, dept d, v
where e1.dno = v.dno and e1.sal > v.asal and e1.dno = d.dno
)sql");
  ASSERT_OK(q);

  OptimizerOptions k0;
  k0.max_pullup = 0;
  auto r0 = OptimizeQueryWithAggViews(*q, k0);
  ASSERT_OK(r0);

  OptimizerOptions k1;
  k1.max_pullup = 1;
  auto r1 = OptimizeQueryWithAggViews(*q, k1);
  ASSERT_OK(r1);

  OptimizerOptions k2;
  k2.max_pullup = 2;
  auto r2 = OptimizeQueryWithAggViews(*q, k2);
  ASSERT_OK(r2);

  // More pull-up levels -> more alternatives, never a worse plan.
  EXPECT_LT(r0->alternatives.size(), r1->alternatives.size());
  EXPECT_LE(r1->alternatives.size(), r2->alternatives.size());
  EXPECT_LE(r1->plan->cost, r0->plan->cost);
  EXPECT_LE(r2->plan->cost, r1->plan->cost);
}

TEST_F(OptimizerTest, SharedPredicateRestrictionPrunes) {
  auto q = ParseAndBind(*fixture_.catalog, R"sql(
create view v (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
select e1.sal
from emp e1, dept d, v
where e1.dno = v.dno and e1.sal > v.asal and e1.dno = d.dno
)sql");
  ASSERT_OK(q);

  OptimizerOptions restricted;  // default: require shared predicate
  auto r = OptimizeQueryWithAggViews(*q, restricted);
  ASSERT_OK(r);
  OptimizerOptions open;
  open.require_shared_predicate = false;
  auto o = OptimizeQueryWithAggViews(*q, open);
  ASSERT_OK(o);
  EXPECT_LE(r->alternatives.size(), o->alternatives.size());
}

TEST_F(OptimizerTest, MultiViewQueryOptimizesAndAgrees) {
  CheckOptimizersAgree(*fixture_.catalog, R"sql(
create view v1 (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
create view v2 (dno, mage) as
  select e3.dno, max(e3.age) from emp e3 group by e3.dno;
select e1.sal
from emp e1, v1, v2
where e1.dno = v1.dno and e1.sal > v1.asal
  and e1.dno = v2.dno and e1.age < v2.mage
)sql");
}

TEST_F(OptimizerTest, MultiViewAssignmentsAreDisjoint) {
  auto q = ParseAndBind(*fixture_.catalog, R"sql(
create view v1 (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
create view v2 (dno, mage) as
  select e3.dno, max(e3.age) from emp e3 group by e3.dno;
select e1.sal
from emp e1, v1, v2
where e1.dno = v1.dno and e1.sal > v1.asal
  and e1.dno = v2.dno and e1.age < v2.mage
)sql");
  ASSERT_OK(q);
  auto r = OptimizeQueryWithAggViews(*q, OptimizerOptions{});
  ASSERT_OK(r);
  // e1 can be pulled into v1 OR v2, never both at once.
  for (const PlanAlternative& alt : r->alternatives) {
    EXPECT_EQ(alt.description.find("W(v1)={e1}; W(v2)={e1}"),
              std::string::npos)
        << alt.description;
  }
}

TEST_F(OptimizerTest, ViewOnlyQueryWorks) {
  CheckOptimizersAgree(*fixture_.catalog, R"sql(
create view v (dno, asal) as
  select e.dno, avg(e.sal) from emp e group by e.dno;
select v.dno, v.asal from v where v.asal > 100000
)sql");
}

TEST_F(OptimizerTest, PlainSpjQueryWorks) {
  CheckOptimizersAgree(*fixture_.catalog,
                       "select e.sal from emp e, dept d "
                       "where e.dno = d.dno and d.budget < 500000 "
                       "and e.age < 25");
}

TEST_F(OptimizerTest, TopGroupByPushdownHappensInPhase2) {
  // Example 2 variant grouped by (e.dno, d.budget): the lazy plan would
  // aggregate the wider joined rows (spilling), while the pushed group-by's
  // input fits in memory — phase 2's greedy enumeration takes the push.
  EmpDeptOptions data;
  data.num_employees = 32'000;
  data.num_departments = 2'000;
  EmpDeptFixture local = MakeEmpDept(data);
  auto q = ParseAndBind(*local.catalog,
                        "select e.dno, d.budget, avg(e.sal) from emp e, dept d "
                        "where e.dno = d.dno group by e.dno, d.budget");
  ASSERT_OK(q);
  auto traditional = OptimizeTraditional(*q);
  ASSERT_OK(traditional);
  auto extended = OptimizeQueryWithAggViews(*q, OptimizerOptions{});
  ASSERT_OK(extended);
  EXPECT_TRUE(PlanHasGroupByBelowJoin(extended->plan));
  EXPECT_LT(extended->plan->cost, traditional->plan->cost);
}

TEST_F(OptimizerTest, ScalarAggregateQuery) {
  CheckOptimizersAgree(*fixture_.catalog,
                       "select count(*) from emp e where e.age < 22");
}

TEST_F(OptimizerTest, CountersAccumulate) {
  auto q = ParseAndBind(*fixture_.catalog, Example1Sql());
  ASSERT_OK(q);
  auto r = OptimizeQueryWithAggViews(*q, OptimizerOptions{});
  ASSERT_OK(r);
  EXPECT_GT(r->counters.joins_considered, 0);
  EXPECT_GT(r->counters.subsets_stored, 0);
}

TEST_F(OptimizerTest, InvalidQueryRejected) {
  Query q(fixture_.catalog.get());
  EXPECT_FALSE(OptimizeQueryWithAggViews(q, OptimizerOptions{}).ok());
}

}  // namespace
}  // namespace aggview
