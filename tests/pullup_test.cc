#include <gtest/gtest.h>

#include "transform/pullup.h"
#include "test_util.h"

namespace aggview {
namespace {

class PullupTest : public ::testing::Test {
 protected:
  PullupTest() : fixture_(MakeEmpDept(Options())) {}

  static EmpDeptOptions Options() {
    EmpDeptOptions o;
    o.num_employees = 300;
    o.num_departments = 12;
    o.young_fraction = 0.2;
    return o;
  }

  /// Runs the query through the traditional optimizer and returns the result
  /// fingerprint (structure-independent semantics).
  std::string Execute(const Query& q) {
    auto optimized = OptimizeTraditional(q);
    EXPECT_TRUE(optimized.ok()) << optimized.status().ToString();
    auto result = ExecutePlan(optimized->plan, optimized->query);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result->Fingerprint();
  }

  EmpDeptFixture fixture_;
};

TEST_F(PullupTest, Example1ProducesQueryB) {
  auto q = ParseAndBind(*fixture_.catalog, Example1Sql());
  ASSERT_OK(q);
  int e1 = q->base_rels()[0];
  auto pulled = PullUpIntoView(*q, 0, {e1});
  ASSERT_OK(pulled);

  // The query collapsed to a single block: no base relations left at top.
  EXPECT_TRUE(pulled->base_rels().empty());
  EXPECT_TRUE(pulled->predicates().empty());
  const AggView& view = pulled->views()[0];
  EXPECT_EQ(view.spj.rels.size(), 2u);

  // Paper query B: "group by e2.dno, e1.eno, e1.sal".
  std::set<std::string> grouping_names;
  for (ColId g : view.group_by.grouping) {
    grouping_names.insert(pulled->columns().name(g));
  }
  EXPECT_EQ(grouping_names,
            (std::set<std::string>{"b.e2.dno", "e1.eno", "e1.sal"}));

  // "having e1.sal > avg(e2.sal)".
  ASSERT_EQ(view.group_by.having.size(), 1u);
  // The join predicate e1.dno = b.dno and the age selection moved into the
  // SPJ block.
  EXPECT_EQ(view.spj.predicates.size(), 2u);
  EXPECT_OK(pulled->Validate());
}

TEST_F(PullupTest, Example1PullUpPreservesResults) {
  auto q = ParseAndBind(*fixture_.catalog, Example1Sql());
  ASSERT_OK(q);
  std::string before = Execute(*q);
  auto pulled = PullUpIntoView(*q, 0, {q->base_rels()[0]});
  ASSERT_OK(pulled);
  EXPECT_EQ(Execute(*pulled), before);
  EXPECT_FALSE(before.empty());  // non-trivial result
}

TEST_F(PullupTest, ForeignKeyJoinElidesKey) {
  // dept joins the view on its primary key against a grouping column: the
  // paper's FK case — dept's key need not be added to the grouping.
  auto q = ParseAndBind(*fixture_.catalog, R"sql(
create view v (dno, asal) as
  select e.dno, avg(e.sal) from emp e group by e.dno;
select v.asal
from v, dept d
where v.dno = d.dno and d.budget < 1000000
)sql");
  ASSERT_OK(q);
  std::string before = Execute(*q);
  auto pulled = PullUpIntoView(*q, 0, {q->base_rels()[0]});
  ASSERT_OK(pulled);

  const AggView& view = pulled->views()[0];
  std::set<std::string> grouping_names;
  for (ColId g : view.group_by.grouping) {
    grouping_names.insert(pulled->columns().name(g));
  }
  // Only the original grouping column: d.dno is bound by the equi-join and
  // budget is only used in a selection below the group-by.
  EXPECT_EQ(grouping_names, (std::set<std::string>{"v.e.dno"}));
  EXPECT_EQ(Execute(*pulled), before);
}

TEST_F(PullupTest, NonKeyJoinAddsKeyToGrouping) {
  auto q = ParseAndBind(*fixture_.catalog, Example1Sql());
  ASSERT_OK(q);
  auto pulled = PullUpIntoView(*q, 0, {q->base_rels()[0]});
  ASSERT_OK(pulled);
  // e1 joins on dno which is NOT emp's key: e1.eno must appear.
  std::set<std::string> names;
  for (ColId g : pulled->views()[0].group_by.grouping) {
    names.insert(pulled->columns().name(g));
  }
  EXPECT_EQ(names.count("e1.eno"), 1u);
}

TEST_F(PullupTest, DeferredPredicateColumnsBecomeGroupingColumns) {
  auto q = ParseAndBind(*fixture_.catalog, Example1Sql());
  ASSERT_OK(q);
  auto pulled = PullUpIntoView(*q, 0, {q->base_rels()[0]});
  ASSERT_OK(pulled);
  // e1.sal is referenced by the deferred HAVING, so it must be grouped.
  std::set<std::string> names;
  for (ColId g : pulled->views()[0].group_by.grouping) {
    names.insert(pulled->columns().name(g));
  }
  EXPECT_EQ(names.count("e1.sal"), 1u);
}

TEST_F(PullupTest, PartialPullUpKeepsOtherRelationsAtTop) {
  auto q = ParseAndBind(*fixture_.catalog, R"sql(
create view v (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
select e1.sal
from emp e1, dept d, v
where e1.dno = v.dno and e1.sal > v.asal and e1.dno = d.dno
  and d.budget < 1000000
)sql");
  ASSERT_OK(q);
  std::string before = Execute(*q);
  // Pull only e1; dept stays at the top.
  int e1 = -1;
  for (int r : q->base_rels()) {
    if (q->range_var(r).alias == "e1") e1 = r;
  }
  ASSERT_GE(e1, 0);
  auto pulled = PullUpIntoView(*q, 0, {e1});
  ASSERT_OK(pulled);
  EXPECT_EQ(pulled->base_rels().size(), 1u);
  EXPECT_EQ(pulled->views()[0].spj.rels.size(), 2u);
  // d joins on e1.dno, so e1.dno must survive the group-by as an output.
  std::set<std::string> names;
  for (ColId g : pulled->views()[0].group_by.grouping) {
    names.insert(pulled->columns().name(g));
  }
  EXPECT_EQ(names.count("e1.dno"), 1u);
  EXPECT_EQ(Execute(*pulled), before);
}

TEST_F(PullupTest, PullUpBothRelationsSequentially) {
  auto q = ParseAndBind(*fixture_.catalog, R"sql(
create view v (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
select e1.sal
from emp e1, dept d, v
where e1.dno = v.dno and e1.sal > v.asal and e1.dno = d.dno
  and d.budget < 1000000
)sql");
  ASSERT_OK(q);
  std::string before = Execute(*q);
  std::set<int> all(q->base_rels().begin(), q->base_rels().end());
  auto pulled = PullUpIntoView(*q, 0, all);
  ASSERT_OK(pulled);
  EXPECT_TRUE(pulled->base_rels().empty());
  EXPECT_EQ(pulled->views()[0].spj.rels.size(), 3u);
  EXPECT_EQ(Execute(*pulled), before);
}

TEST_F(PullupTest, PullUpUnderTopGroupByPreservesResults) {
  // G0 on top: count qualifying employees per department.
  auto q = ParseAndBind(*fixture_.catalog, R"sql(
create view v (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
select e1.dno, count(*)
from emp e1, v
where e1.dno = v.dno and e1.sal > v.asal
group by e1.dno
)sql");
  ASSERT_OK(q);
  std::string before = Execute(*q);
  auto pulled = PullUpIntoView(*q, 0, {q->base_rels()[0]});
  ASSERT_OK(pulled);
  ASSERT_TRUE(pulled->top_group_by().has_value());
  EXPECT_EQ(Execute(*pulled), before);
}

TEST_F(PullupTest, PullUpIntoMultiRelationView) {
  // The view itself joins emp and dept; pulling e1 in defers the group-by
  // past a three-way join.
  auto q = ParseAndBind(*fixture_.catalog, R"sql(
create view v (dno, asal) as
  select e2.dno, avg(e2.sal)
  from emp e2, dept d2
  where e2.dno = d2.dno and d2.budget < 1500000
  group by e2.dno;
select e1.sal
from emp e1, v
where e1.dno = v.dno and e1.sal > v.asal and e1.age < 30
)sql");
  ASSERT_OK(q);
  std::string before = Execute(*q);
  auto pulled = PullUpIntoView(*q, 0, {q->base_rels()[0]});
  ASSERT_OK(pulled);
  EXPECT_EQ(pulled->views()[0].spj.rels.size(), 3u);
  EXPECT_EQ(Execute(*pulled), before);
  EXPECT_FALSE(before.empty());
}

TEST_F(PullupTest, EmptyPullSetIsIdentity) {
  auto q = ParseAndBind(*fixture_.catalog, Example1Sql());
  ASSERT_OK(q);
  auto pulled = PullUpIntoView(*q, 0, {});
  ASSERT_OK(pulled);
  EXPECT_EQ(pulled->base_rels().size(), q->base_rels().size());
}

TEST_F(PullupTest, RejectsNonTopRelation) {
  auto q = ParseAndBind(*fixture_.catalog, Example1Sql());
  ASSERT_OK(q);
  int inner = q->views()[0].spj.rels[0];
  EXPECT_FALSE(PullUpIntoView(*q, 0, {inner}).ok());
}

TEST_F(PullupTest, SharesPredicateWithView) {
  auto q = ParseAndBind(*fixture_.catalog, R"sql(
create view v (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
select e1.sal
from emp e1, dept d, v
where e1.dno = v.dno and e1.sal > v.asal and e1.dno = d.dno
)sql");
  ASSERT_OK(q);
  int e1 = -1, d = -1;
  for (int r : q->base_rels()) {
    if (q->range_var(r).alias == "e1") e1 = r;
    if (q->range_var(r).alias == "d") d = r;
  }
  const AggView& view = q->views()[0];
  // e1 shares predicates with the view outputs; d only via e1.
  EXPECT_TRUE(SharesPredicateWithView(*q, view, {}, e1));
  EXPECT_FALSE(SharesPredicateWithView(*q, view, {}, d));
  EXPECT_TRUE(SharesPredicateWithView(*q, view, {e1}, d));
}

TEST_F(PullupTest, MultiViewPullUpIsPerView) {
  auto q = ParseAndBind(*fixture_.catalog, R"sql(
create view v1 (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
create view v2 (dno, mage) as
  select e3.dno, max(e3.age) from emp e3 group by e3.dno;
select e1.sal
from emp e1, v1, v2
where e1.dno = v1.dno and e1.sal > v1.asal
  and e1.dno = v2.dno and e1.age < v2.mage
)sql");
  ASSERT_OK(q);
  std::string before = Execute(*q);
  auto pulled = PullUpIntoView(*q, 0, {q->base_rels()[0]});
  ASSERT_OK(pulled);
  // v2's predicates against e1 columns remain at the top; e1's referenced
  // columns must therefore be outputs of the extended v1.
  EXPECT_EQ(Execute(*pulled), before);
}

}  // namespace
}  // namespace aggview
