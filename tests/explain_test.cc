#include <gtest/gtest.h>

#include <string>

#include "exec/operators.h"
#include "test_util.h"

namespace aggview {
namespace {

/// Tests of the observability layer: per-operator OpStats collection,
/// plan-node attribution, Q-error computation, and the EXPLAIN ANALYZE
/// rendering.

TEST(QErrorTest, Basics) {
  EXPECT_DOUBLE_EQ(QError(10, 10), 1.0);
  EXPECT_DOUBLE_EQ(QError(100, 10), 10.0);
  EXPECT_DOUBLE_EQ(QError(10, 100), 10.0);
  // Both sides clamp to >= 1 row: a correctly-predicted empty result is
  // perfect, not a division by zero.
  EXPECT_DOUBLE_EQ(QError(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(QError(0.25, 0), 1.0);
  EXPECT_DOUBLE_EQ(QError(0, 5), 5.0);
}

TEST(OpStatsTest, TableScanRecordsCounters) {
  ColumnCatalog cat;
  ColId id = cat.Add("t.id", DataType::kInt64);
  Table table(Schema({{"id", DataType::kInt64}}));
  for (int i = 0; i < 10; ++i) table.AppendUnchecked({Value::Int(i)});
  RowLayout layout({id});

  IoAccountant io;
  TableScanOp scan(&table, layout, {Cmp(Col(id), CompareOp::kLt, LitInt(4))},
                   layout, &io, /*charge_io=*/true);
  OpStats stats;
  scan.set_stats(&stats);
  ASSERT_OK(scan.Open());
  RowBatch batch(3);  // 4 matching rows -> a full batch, a partial, then EOS
  int64_t rows = 0;
  while (true) {
    auto more = scan.Next(&batch);
    ASSERT_OK(more);
    if (!*more) break;
    rows += batch.size();
  }
  scan.Close();

  EXPECT_EQ(rows, 4);
  EXPECT_EQ(stats.rows_produced, 4);
  EXPECT_EQ(stats.batches_produced, 2);   // sizes 3 and 1; no phantom tail
  EXPECT_EQ(stats.next_calls, 3);         // 2 batches + the end-of-stream call
  EXPECT_EQ(stats.input_rows, 10);        // every table row examined
  EXPECT_EQ(stats.pages_charged, table.page_count());
  EXPECT_EQ(stats.pages_charged, io.total());
  EXPECT_FALSE(OpStatsToString(stats).empty());
}

int CountPlanNodes(const PlanPtr& plan) {
  if (plan == nullptr) return 0;
  return 1 + CountPlanNodes(plan->left) + CountPlanNodes(plan->right);
}

int CountOccurrences(const std::string& text, const std::string& needle) {
  int n = 0;
  for (size_t pos = 0; (pos = text.find(needle, pos)) != std::string::npos;
       pos += needle.size()) {
    ++n;
  }
  return n;
}

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  ExplainAnalyzeTest() : db_(MakeEmpDept()) {}
  EmpDeptFixture db_;
};

TEST_F(ExplainAnalyzeTest, RootStatsMatchResultCardinality) {
  auto query = ParseAndBind(*db_.catalog, Example1Sql());
  ASSERT_OK(query);
  auto optimized = OptimizeQueryWithAggViews(*query, OptimizerOptions{});
  ASSERT_OK(optimized);

  IoAccountant io;
  RuntimeStatsCollector stats;
  auto result = ExecutePlan(optimized->plan, optimized->query,
                            ExecContext::Default().WithIo(&io).WithStats(&stats));
  ASSERT_OK(result);
  ASSERT_FALSE(stats.empty());

  const OpStats* root = stats.ForNode(optimized->plan.get());
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->rows_produced,
            static_cast<int64_t>(result->rows.size()));

  // Pages attributed to operators must add up to the accountant's total.
  int64_t attributed = 0;
  for (const RuntimeStatsCollector::Entry& e : stats.entries()) {
    attributed += e.stats->pages_charged;
  }
  EXPECT_EQ(attributed, io.total());
}

TEST_F(ExplainAnalyzeTest, EveryNodeCarriesEstimateAndActual) {
  auto query = ParseAndBind(*db_.catalog, Example1Sql());
  ASSERT_OK(query);
  auto optimized = OptimizeQueryWithAggViews(*query, OptimizerOptions{});
  ASSERT_OK(optimized);

  RuntimeStatsCollector stats;
  auto result = ExecutePlan(optimized->plan, optimized->query,
                            ExecContext::Default().WithStats(&stats));
  ASSERT_OK(result);

  int nodes = CountPlanNodes(optimized->plan);
  ASSERT_GT(nodes, 1);

  std::vector<NodeQError> qerrors =
      CollectNodeQErrors(optimized->plan, optimized->query, stats);
  EXPECT_EQ(static_cast<int>(qerrors.size()), nodes);
  for (const NodeQError& n : qerrors) {
    EXPECT_GE(n.q, 1.0) << n.label;
    EXPECT_FALSE(n.label.empty());
  }

  QErrorSummary summary = SummarizeQError(qerrors);
  EXPECT_EQ(summary.nodes, nodes);
  EXPECT_GE(summary.max_q, summary.mean_q);
  EXPECT_GE(summary.mean_q, 1.0);
  EXPECT_FALSE(summary.worst_label.empty());

  std::string rendered =
      ExplainAnalyze(optimized->plan, optimized->query, stats);
  EXPECT_EQ(CountOccurrences(rendered, "est="), nodes);
  EXPECT_EQ(CountOccurrences(rendered, "act="), nodes);
  EXPECT_EQ(CountOccurrences(rendered, "batches="), nodes);
  EXPECT_EQ(CountOccurrences(rendered, "act=?"), 0)
      << "all nodes of the executed plan were lowered:\n" << rendered;
  EXPECT_NE(rendered.find("q-error"), std::string::npos);
}

TEST_F(ExplainAnalyzeTest, UnexecutedPlanRendersWithoutActuals) {
  auto query = ParseAndBind(*db_.catalog, Example1Sql());
  ASSERT_OK(query);
  auto optimized = OptimizeQueryWithAggViews(*query, OptimizerOptions{});
  ASSERT_OK(optimized);

  // Empty collector: nothing was executed; the rendering must still cover
  // every node, marked as never executed, rather than crash or lie.
  RuntimeStatsCollector stats;
  std::string rendered =
      ExplainAnalyze(optimized->plan, optimized->query, stats);
  int nodes = CountPlanNodes(optimized->plan);
  EXPECT_EQ(CountOccurrences(rendered, "act=?"), nodes);

  std::vector<NodeQError> qerrors =
      CollectNodeQErrors(optimized->plan, optimized->query, stats);
  EXPECT_TRUE(qerrors.empty());
}

TEST_F(ExplainAnalyzeTest, UninstrumentedExecutionInstallsNoStats) {
  auto query = ParseAndBind(*db_.catalog, Example1Sql());
  ASSERT_OK(query);
  auto optimized = OptimizeQueryWithAggViews(*query, OptimizerOptions{});
  ASSERT_OK(optimized);
  // Default ExecutePlan call: no collector, identical results.
  auto plain = ExecutePlan(optimized->plan, optimized->query);
  ASSERT_OK(plain);

  RuntimeStatsCollector stats;
  auto traced = ExecutePlan(optimized->plan, optimized->query,
                            ExecContext::Default().WithStats(&stats));
  ASSERT_OK(traced);
  EXPECT_EQ(plain->Fingerprint(), traced->Fingerprint());
}

}  // namespace
}  // namespace aggview
