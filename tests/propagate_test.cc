#include <gtest/gtest.h>

#include "transform/propagate.h"
#include "test_util.h"

namespace aggview {
namespace {

class PropagateTest : public ::testing::Test {
 protected:
  PropagateTest() : fixture_(MakeEmpDept(Options())) {}

  static EmpDeptOptions Options() {
    EmpDeptOptions o;
    o.num_employees = 2'000;
    o.num_departments = 50;
    return o;
  }

  std::string Execute(const Query& q) {
    auto optimized = OptimizeTraditional(q);
    EXPECT_TRUE(optimized.ok()) << optimized.status().ToString();
    auto result = ExecutePlan(optimized->plan, optimized->query);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result->Fingerprint();
  }

  EmpDeptFixture fixture_;
};

TEST_F(PropagateTest, TopPredicateOnGroupingOutputMovesIntoView) {
  auto q = ParseAndBind(*fixture_.catalog, R"sql(
create view v (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
select v.asal from v where v.dno < 10
)sql");
  ASSERT_OK(q);
  std::string before = Execute(*q);
  auto prop = PropagatePredicates(*q);
  ASSERT_OK(prop);
  EXPECT_TRUE(prop->predicates().empty());
  EXPECT_EQ(prop->views()[0].spj.predicates.size(), 1u);
  EXPECT_EQ(Execute(*prop), before);
}

TEST_F(PropagateTest, PredicateOnAggregateOutputStaysAtTop) {
  auto q = ParseAndBind(*fixture_.catalog, R"sql(
create view v (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
select v.dno from v where v.asal > 100000
)sql");
  ASSERT_OK(q);
  auto prop = PropagatePredicates(*q);
  ASSERT_OK(prop);
  EXPECT_EQ(prop->predicates().size(), 1u);
  EXPECT_TRUE(prop->views()[0].spj.predicates.empty());
}

TEST_F(PropagateTest, ViewHavingOnGroupingColumnBecomesSelection) {
  auto q = ParseAndBind(*fixture_.catalog, R"sql(
create view v (dno, cnt) as
  select e2.dno, count(*) from emp e2 group by e2.dno having e2.dno < 25;
select v.dno, v.cnt from v
)sql");
  ASSERT_OK(q);
  std::string before = Execute(*q);
  auto prop = PropagatePredicates(*q);
  ASSERT_OK(prop);
  EXPECT_TRUE(prop->views()[0].group_by.having.empty());
  EXPECT_EQ(prop->views()[0].spj.predicates.size(), 1u);
  EXPECT_EQ(Execute(*prop), before);
}

TEST_F(PropagateTest, TopHavingOnGroupingColumnBecomesWhere) {
  auto q = ParseAndBind(*fixture_.catalog, R"sql(
select e.dno, count(*) from emp e group by e.dno having e.dno < 25 and count(*) > 2
)sql");
  ASSERT_OK(q);
  std::string before = Execute(*q);
  auto prop = PropagatePredicates(*q);
  ASSERT_OK(prop);
  ASSERT_TRUE(prop->top_group_by().has_value());
  EXPECT_EQ(prop->top_group_by()->having.size(), 1u);  // count(*) > 2 stays
  EXPECT_EQ(prop->predicates().size(), 1u);            // dno < 25 moved
  EXPECT_EQ(Execute(*prop), before);
}

TEST_F(PropagateTest, LiteralBoundTransfersAcrossEquiJoin) {
  auto q = ParseAndBind(*fixture_.catalog, R"sql(
create view v (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
select e1.sal from emp e1, v
where e1.dno = v.dno and e1.dno < 10 and e1.sal > v.asal
)sql");
  ASSERT_OK(q);
  std::string before = Execute(*q);
  auto prop = PropagatePredicates(*q);
  ASSERT_OK(prop);
  // Derived: v.dno < 10, moved into the view.
  ASSERT_EQ(prop->views()[0].spj.predicates.size(), 1u);
  EXPECT_EQ(prop->views()[0].spj.predicates[0].ToString(prop->columns()),
            "v.e2.dno < 10");
  EXPECT_EQ(Execute(*prop), before);
}

TEST_F(PropagateTest, DerivedPredicatesAreNotDuplicated) {
  auto q = ParseAndBind(*fixture_.catalog, R"sql(
select e.sal from emp e, dept d
where e.dno = d.dno and e.dno < 10 and d.dno < 10
)sql");
  ASSERT_OK(q);
  auto prop = PropagatePredicates(*q);
  ASSERT_OK(prop);
  // Both bounds already present on both sides: nothing new derived.
  EXPECT_EQ(prop->predicates().size(), q->predicates().size());
}

TEST_F(PropagateTest, IdempotentOnExample1) {
  auto q = ParseAndBind(*fixture_.catalog, Example1Sql());
  ASSERT_OK(q);
  auto once = PropagatePredicates(*q);
  ASSERT_OK(once);
  auto twice = PropagatePredicates(*once);
  ASSERT_OK(twice);
  EXPECT_EQ(once->predicates().size(), twice->predicates().size());
  EXPECT_EQ(once->views()[0].spj.predicates.size(),
            twice->views()[0].spj.predicates.size());
}

TEST_F(PropagateTest, PropagationNeverHurtsCostOnViewFamily) {
  for (const char* sql : {
           R"sql(
create view v (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
select e1.sal from emp e1, v
where e1.dno = v.dno and e1.dno < 10 and e1.sal > v.asal)sql",
           R"sql(
create view v (dno, cnt) as
  select e2.dno, count(*) from emp e2 group by e2.dno;
select v.cnt from v where v.dno < 5)sql",
       }) {
    auto q = ParseAndBind(*fixture_.catalog, sql);
    ASSERT_OK(q);
    OptimizerOptions off;
    off.propagate_predicates = false;
    auto without = OptimizeQueryWithAggViews(*q, off);
    ASSERT_OK(without);
    auto with = OptimizeQueryWithAggViews(*q, OptimizerOptions{});
    ASSERT_OK(with);
    EXPECT_LE(with->plan->cost, without->plan->cost) << sql;

    auto r1 = ExecutePlan(without->plan, without->query);
    ASSERT_OK(r1);
    auto r2 = ExecutePlan(with->plan, with->query);
    ASSERT_OK(r2);
    EXPECT_EQ(r1->Fingerprint(), r2->Fingerprint());
  }
}

TEST_F(PropagateTest, MultiViewPropagationTargetsTheRightView) {
  auto q = ParseAndBind(*fixture_.catalog, R"sql(
create view v1 (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
create view v2 (dno, cnt) as
  select e3.dno, count(*) from emp e3 group by e3.dno;
select v1.asal, v2.cnt from v1, v2
where v1.dno = v2.dno and v1.dno < 10
)sql");
  ASSERT_OK(q);
  std::string before = Execute(*q);
  auto prop = PropagatePredicates(*q);
  ASSERT_OK(prop);
  // v1.dno < 10 moved into v1; derived v2.dno < 10 moved into v2.
  EXPECT_EQ(prop->views()[0].spj.predicates.size(), 1u);
  EXPECT_EQ(prop->views()[1].spj.predicates.size(), 1u);
  EXPECT_EQ(Execute(*prop), before);
}

}  // namespace
}  // namespace aggview
