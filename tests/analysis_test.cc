#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "analysis/dataflow.h"
#include "analysis/fd.h"
#include "transform/coalescing.h"
#include "transform/pullup.h"
#include "transform/pushdown.h"
#include "test_util.h"

namespace aggview {
namespace {

// ---------------------------------------------------------------------------
// FD / key derivation.

TEST(FdSetTest, ClosureIsTransitive) {
  FdSet fds;
  fds.AddFd({1}, {2});
  fds.AddFd({2}, {3});
  EXPECT_TRUE(fds.Determines({1}, {3}));
  EXPECT_FALSE(fds.Determines({3}, {1}));
}

TEST(FdSetTest, ConstantsAreInEveryClosure) {
  FdSet fds;
  fds.AddConstant(7);
  fds.AddFd({7}, {8});
  std::set<ColId> closure = fds.Closure({});
  EXPECT_EQ(closure.count(7), 1u);
  EXPECT_EQ(closure.count(8), 1u);
}

TEST(FdSetTest, EquivalencesGoBothWays) {
  FdSet fds;
  fds.AddEquivalence(1, 2);
  EXPECT_TRUE(fds.Determines({1}, {2}));
  EXPECT_TRUE(fds.Determines({2}, {1}));
}

TEST(FdSetTest, PredicatesYieldConstantsAndEquivalences) {
  FdSet fds;
  fds.AddPredicates({EqCols(1, 2), Cmp(Col(3), CompareOp::kEq, LitInt(5)),
                     Cmp(Col(4), CompareOp::kLt, LitInt(5))});
  EXPECT_TRUE(fds.Determines({1}, {2}));
  EXPECT_TRUE(fds.Determines({}, {3}));
  // Inequalities contribute nothing.
  EXPECT_FALSE(fds.Determines({}, {4}));
}

class AnalysisTest : public ::testing::Test {
 protected:
  AnalysisTest()
      : fixture_(MakeEmpDept(Options())), q_(fixture_.catalog.get()) {
    e_ = q_.AddRangeVar(fixture_.tables.emp, "e");
    d_ = q_.AddRangeVar(fixture_.tables.dept, "d");
    q_.base_rels() = {e_, d_};
    eno_ = q_.range_var(e_).columns[0];
    e_dno_ = q_.range_var(e_).columns[1];
    sal_ = q_.range_var(e_).columns[2];
    age_ = q_.range_var(e_).columns[3];
    d_dno_ = q_.range_var(d_).columns[0];
    budget_ = q_.range_var(d_).columns[1];
    q_.select_list() = {eno_};
  }

  static EmpDeptOptions Options() {
    EmpDeptOptions o;
    o.num_employees = 300;
    o.num_departments = 10;
    return o;
  }

  EmpDeptFixture fixture_;
  Query q_;
  int e_, d_;
  ColId eno_, e_dno_, sal_, age_, d_dno_, budget_;
};

TEST_F(AnalysisTest, ScanKeyComesFromCatalog) {
  PlanBuilder b(q_);
  PlanPtr scan = b.Scan(e_, {}, {eno_, e_dno_, sal_});
  auto props = DerivePlanProperties(scan, q_);
  ASSERT_OK(props);
  EXPECT_TRUE(props->IsKey({eno_}));
  EXPECT_FALSE(props->IsKey({e_dno_}));
}

TEST_F(AnalysisTest, JoinOnForeignKeyPropagatesKeys) {
  PlanBuilder b(q_);
  std::set<ColId> needed = {eno_, e_dno_, d_dno_, budget_};
  PlanPtr join = b.BestJoin(b.Scan(e_, {}, needed), b.Scan(d_, {}, needed),
                            {EqCols(e_dno_, d_dno_)}, needed);
  auto props = DerivePlanProperties(join, q_);
  ASSERT_OK(props);
  // emp's key determines everything: eno -> e.dno = d.dno -> budget.
  EXPECT_TRUE(props->IsKey({eno_}));
  EXPECT_FALSE(props->IsKey({d_dno_}));
}

TEST_F(AnalysisTest, GroupByMakesGroupingAKey) {
  PlanBuilder b(q_);
  PlanPtr scan = b.Scan(e_, {}, {e_dno_, sal_});
  GroupBySpec gb;
  gb.grouping = {e_dno_};
  ColId out = q_.columns().Add("sum(sal)", DataType::kDouble);
  gb.aggregates = {{AggKind::kSum, {sal_}, out}};
  PlanPtr grouped = b.GroupBy(scan, gb, {e_dno_, out});
  auto props = DerivePlanProperties(grouped, q_);
  ASSERT_OK(props);
  EXPECT_TRUE(props->IsKey({e_dno_}));
}

// ---------------------------------------------------------------------------
// Semantic plan checks (AnalyzePlan).

TEST_F(AnalysisTest, AcceptsOptimizerOutput) {
  auto query = ParseAndBind(*fixture_.catalog, Example1Sql());
  ASSERT_OK(query);
  auto optimized = OptimizeQueryWithAggViews(*query, OptimizerOptions{});
  ASSERT_OK(optimized);
  EXPECT_OK(AnalyzePlan(optimized->plan, optimized->query));
}

TEST_F(AnalysisTest, RejectsAggregateOutputAliasingGroupingColumn) {
  PlanBuilder b(q_);
  PlanPtr scan = b.Scan(e_, {}, {e_dno_, sal_});
  GroupBySpec gb;
  gb.grouping = {e_dno_};
  gb.aggregates = {{AggKind::kSum, {sal_}, e_dno_}};  // output = grouping col
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNode::Kind::kGroupBy;
  node->left = scan;
  node->group_by = gb;
  node->output = RowLayout({e_dno_});
  AnalysisOptions opts;
  opts.structural = false;
  Status st = AnalyzePlan(node, q_, opts);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("also a grouping column"), std::string::npos)
      << st.message();
  // Diagnostics name the offending node.
  EXPECT_NE(st.message().find("in node:"), std::string::npos) << st.message();
}

TEST_F(AnalysisTest, RejectsWrongAggregateArity) {
  PlanBuilder b(q_);
  PlanPtr scan = b.Scan(e_, {}, {e_dno_, sal_});
  GroupBySpec gb;
  gb.grouping = {e_dno_};
  ColId out = q_.columns().Add("broken", DataType::kDouble);
  gb.aggregates = {{AggKind::kAvgFinal, {sal_}, out}};  // needs 2 args
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNode::Kind::kGroupBy;
  node->left = scan;
  node->group_by = gb;
  node->output = RowLayout({e_dno_, out});
  AnalysisOptions opts;
  opts.structural = false;
  Status st = AnalyzePlan(node, q_, opts);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("argument"), std::string::npos) << st.message();
}

TEST_F(AnalysisTest, RejectsPredicateComparingStringWithNumber) {
  ColId label = q_.columns().Add("label", DataType::kString);
  PlanBuilder b(q_);
  PlanPtr scan = b.Scan(e_, {}, {eno_});
  auto node = std::make_shared<PlanNode>(*scan);
  node->scan_filter = {Cmp(Col(label), CompareOp::kEq, LitInt(3))};
  AnalysisOptions opts;
  opts.structural = false;
  Status st = AnalyzePlan(node, q_, opts);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("compares"), std::string::npos) << st.message();
}

// ---------------------------------------------------------------------------
// Pull-up certificates (Section 3, Definition 1).

TEST_F(AnalysisTest, PullUpCertificateVerifies) {
  auto query = ParseAndBind(*fixture_.catalog, Example1Sql());
  ASSERT_OK(query);
  PullUpCertificate cert;
  auto pulled =
      PullUpIntoView(*query, 0, {query->base_rels()[0]}, &cert);
  ASSERT_OK(pulled);
  EXPECT_OK(VerifyPullUpCertificate(*pulled, cert));
  ASSERT_EQ(cert.rels.size(), 1u);
  // Example 1 adds e1's primary key to the deferred grouping.
  EXPECT_FALSE(cert.rels[0].key_added.empty());
}

TEST_F(AnalysisTest, RejectsPullUpWithoutKeyInGrouping) {
  auto query = ParseAndBind(*fixture_.catalog, Example1Sql());
  ASSERT_OK(query);
  PullUpCertificate cert;
  auto pulled =
      PullUpIntoView(*query, 0, {query->base_rels()[0]}, &cert);
  ASSERT_OK(pulled);
  // Tamper: pretend the transformation never added e1's key. The grouping no
  // longer determines a key of the pulled relation, so the claim must fail.
  ASSERT_EQ(cert.rels.size(), 1u);
  std::set<ColId> dropped(cert.rels[0].key_added.begin(),
                          cert.rels[0].key_added.end());
  std::vector<ColId> shrunk;
  for (ColId c : cert.grouping_after) {
    if (dropped.count(c) == 0) shrunk.push_back(c);
  }
  cert.grouping_after = std::move(shrunk);
  cert.rels[0].key_added.clear();
  Status st = VerifyPullUpCertificate(*pulled, cert);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("Definition 1"), std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("e1"), std::string::npos) << st.message();
}

TEST_F(AnalysisTest, RejectsPullUpCertificateMissingAClaim) {
  auto query = ParseAndBind(*fixture_.catalog, Example1Sql());
  ASSERT_OK(query);
  PullUpCertificate cert;
  auto pulled =
      PullUpIntoView(*query, 0, {query->base_rels()[0]}, &cert);
  ASSERT_OK(pulled);
  cert.rels.clear();
  Status st = VerifyPullUpCertificate(*pulled, cert);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("missing a claim"), std::string::npos)
      << st.message();
}

// ---------------------------------------------------------------------------
// Invariant-grouping certificates (Section 4.1, IG1-IG3).

class InvariantCertTest : public AnalysisTest {
 protected:
  /// Example 2's block: emp join dept on dno, group by e.dno, avg(e.sal).
  InvariantCertificate BaseCert() {
    InvariantCertificate cert;
    cert.group_by.grouping = {e_dno_};
    out_ = q_.columns().Add("avg(sal)", DataType::kDouble);
    cert.group_by.aggregates = {{AggKind::kAvg, {sal_}, out_}};
    cert.predicates = {EqCols(e_dno_, d_dno_),
                       Cmp(Col(budget_), CompareOp::kLt, LitInt(1'000'000))};
    BlockRelClaim emp;
    emp.name = "e";
    emp.scan_rel = e_;
    BlockRelClaim dept;
    dept.name = "d";
    dept.scan_rel = d_;
    cert.removed = {dept};
    cert.retained = {emp};
    return cert;
  }
  ColId out_ = kInvalidColId;
};

TEST_F(InvariantCertTest, LegalRemovalVerifies) {
  // dept's key dno is pinned per group: grouping fixes e.dno, the join
  // equivalence carries it to d.dno.
  EXPECT_OK(VerifyInvariantCertificate(q_, BaseCert()));
}

TEST_F(InvariantCertTest, RejectsRemovalOfAggregateSourceRelation) {
  InvariantCertificate cert = BaseCert();
  std::swap(cert.removed, cert.retained);  // claim emp was moved out
  Status st = VerifyInvariantCertificate(q_, cert);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("IG1"), std::string::npos) << st.message();
  EXPECT_NE(st.message().find("'e'"), std::string::npos) << st.message();
}

TEST_F(InvariantCertTest, RejectsCrossingPredicateOnNonGroupingColumn) {
  InvariantCertificate cert = BaseCert();
  // budget < sal crosses from dept to a retained non-grouping column.
  cert.predicates.push_back(
      Cmp(Col(budget_), CompareOp::kLt, Col(sal_)));
  Status st = VerifyInvariantCertificate(q_, cert);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("IG2"), std::string::npos) << st.message();
}

TEST_F(InvariantCertTest, RejectsRemovalWithUnpinnedKey) {
  InvariantCertificate cert = BaseCert();
  // Without the join equivalence nothing pins dept's key, and AVG is
  // duplicate-sensitive: a fan-out would change the result.
  cert.predicates = {Cmp(Col(budget_), CompareOp::kLt, LitInt(1'000'000))};
  Status st = VerifyInvariantCertificate(q_, cert);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("IG3"), std::string::npos) << st.message();
  EXPECT_NE(st.message().find("'d'"), std::string::npos) << st.message();
}

TEST_F(InvariantCertTest, DuplicateInsensitiveAggregatesStillNeedKey) {
  InvariantCertificate cert = BaseCert();
  cert.group_by.aggregates = {{AggKind::kMin, {sal_}, out_}};
  // MIN's *value* tolerates fan-out, but the group-by's output multiplicity
  // does not: without a pinned key of dept the shrunk view emits one row per
  // (group, dept match), observable under bag semantics. IG3 therefore has
  // no duplicate-insensitivity waiver — the crossing predicate below keeps
  // IG2 happy but leaves dept's key unpinned, so the certificate must fail.
  cert.predicates = {Cmp(Col(budget_), CompareOp::kLt, Col(e_dno_))};
  Status st = VerifyInvariantCertificate(q_, cert);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("IG3"), std::string::npos) << st.message();
  // With the join equivalence restored, dno = dno pins dept's key and the
  // same MIN certificate verifies.
  cert.predicates.push_back(EqCols(e_dno_, d_dno_));
  EXPECT_OK(VerifyInvariantCertificate(q_, cert));
}

TEST_F(InvariantCertTest, ShrinkEmitsVerifiableCertificate) {
  std::string sql = R"sql(
create view a (dno, asal) as
  select e.dno, avg(e.sal) from emp e, dept d
  where e.dno = d.dno and d.budget < 1000000
  group by e.dno;
select a.dno, a.asal from a where a.asal > 50000
)sql";
  auto query = ParseAndBind(*fixture_.catalog, sql);
  ASSERT_OK(query);
  InvariantCertificate cert;
  std::set<int> moved;
  auto shrunk = ShrinkViewToInvariantSet(*query, 0, &moved, &cert);
  ASSERT_OK(shrunk);
  EXPECT_EQ(moved.size(), 1u);  // dept moves out
  EXPECT_EQ(cert.removed.size(), 1u);
  EXPECT_OK(VerifyInvariantCertificate(*query, cert));
}

// ---------------------------------------------------------------------------
// Coalescing certificates (Section 4.2).

class CoalescingCertTest : public AnalysisTest {
 protected:
  GroupBySpec Spec() {
    GroupBySpec gb;
    gb.grouping = {e_dno_};
    out_ = q_.columns().Add("avg(sal)", DataType::kDouble);
    gb.aggregates = {{AggKind::kAvg, {sal_}, out_}};
    return gb;
  }
  ColId out_ = kInvalidColId;
};

TEST_F(CoalescingCertTest, LegalSplitVerifies) {
  CoalescingCertificate cert;
  auto split = SplitForCoalescing(Spec(), {e_dno_, sal_, age_}, {age_},
                                  &q_.columns(), &cert);
  ASSERT_OK(split);
  EXPECT_OK(VerifyCoalescingCertificate(q_, cert));
}

TEST_F(CoalescingCertTest, RejectsNonCanonicalCombine) {
  CoalescingCertificate cert;
  auto split = SplitForCoalescing(Spec(), {e_dno_, sal_}, {},
                                  &q_.columns(), &cert);
  ASSERT_OK(split);
  // Tamper: combine the partial AVG pieces with MAX instead of the ratio.
  cert.final_aggregates[0].kind = AggKind::kMax;
  Status st = VerifyCoalescingCertificate(q_, cert);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("canonical combine form"), std::string::npos)
      << st.message();
}

TEST_F(CoalescingCertTest, RejectsNonDecomposableAggregate) {
  CoalescingCertificate cert;
  auto split = SplitForCoalescing(Spec(), {e_dno_, sal_}, {},
                                  &q_.columns(), &cert);
  ASSERT_OK(split);
  // Tamper: pretend the original aggregate was MEDIAN.
  cert.original.aggregates[0].kind = AggKind::kMedian;
  Status st = VerifyCoalescingCertificate(q_, cert);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("non-decomposable"), std::string::npos)
      << st.message();
}

TEST_F(CoalescingCertTest, RejectsDroppedGroupingColumn) {
  CoalescingCertificate cert;
  auto split = SplitForCoalescing(Spec(), {e_dno_, sal_}, {},
                                  &q_.columns(), &cert);
  ASSERT_OK(split);
  cert.partial.grouping.clear();  // pre-aggregation coarser than the final
  Status st = VerifyCoalescingCertificate(q_, cert);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("dropped grouping column"), std::string::npos)
      << st.message();
}

TEST_F(CoalescingCertTest, RejectsSplittingMedianOutright) {
  GroupBySpec gb;
  gb.grouping = {e_dno_};
  ColId out = q_.columns().Add("median(sal)", DataType::kDouble);
  gb.aggregates = {{AggKind::kMedian, {sal_}, out}};
  auto split = SplitForCoalescing(gb, {e_dno_, sal_}, {}, &q_.columns());
  EXPECT_FALSE(split.ok());
}

// ---------------------------------------------------------------------------
// Paranoid optimization end to end.

TEST_F(AnalysisTest, ParanoidOptimizationChecksEveryDpInsertion) {
  auto query = ParseAndBind(*fixture_.catalog, Example1Sql());
  ASSERT_OK(query);
  OptimizerOptions options;
  options.paranoid = true;
  auto optimized = OptimizeQueryWithAggViews(*query, options);
  ASSERT_OK(optimized);
  EXPECT_GT(optimized->counters.plans_checked, 0);
  EXPECT_GT(optimized->counters.certificates_verified, 0);
  EXPECT_OK(VerifyAudit(optimized->query, optimized->audit));

  // Same winning plan as the unchecked run: paranoia observes, never steers.
  auto plain = OptimizeQueryWithAggViews(*query, OptimizerOptions{});
  ASSERT_OK(plain);
  EXPECT_EQ(optimized->plan->cost, plain->plan->cost);
  EXPECT_EQ(optimized->description, plain->description);
}

// ---------------------------------------------------------------------------
// Corrupt-plan negative suite: hand-damaged plans the dataflow obligations
// must reject, each with an error naming the offending node.

TEST_F(AnalysisTest, RejectsEstimateAboveProvableBounds) {
  PlanBuilder b(q_);
  PlanPtr scan = b.Scan(e_, {}, {eno_, sal_});
  // An unfiltered scan provably produces exactly the table's row count;
  // claim ten times that.
  auto corrupt = std::make_shared<PlanNode>(*scan);
  corrupt->est.rows = scan->est.rows * 10.0 + 100.0;
  Status st = CheckDataflowObligations(corrupt, q_);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("estimator bug"), std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("in node:"), std::string::npos) << st.message();
}

TEST_F(AnalysisTest, RejectsEstimateBelowProvableBounds) {
  PlanBuilder b(q_);
  PlanPtr scan = b.Scan(e_, {}, {eno_, sal_});
  // The same scan cannot produce fewer rows than the table holds either.
  auto corrupt = std::make_shared<PlanNode>(*scan);
  corrupt->est.rows = 0.0;
  Status st = CheckDataflowObligations(corrupt, q_);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("estimator bug"), std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("in node:"), std::string::npos) << st.message();
}

TEST_F(AnalysisTest, RejectsCountOutputDeclaredNullable) {
  PlanBuilder b(q_);
  PlanPtr scan = b.Scan(e_, {}, {e_dno_});
  GroupBySpec gb;
  gb.grouping = {e_dno_};
  // Plain Add leaves the declared nullability at its unknown-ergo-nullable
  // default; a real plan allocates COUNT outputs via AddAggregateOutput,
  // which marks them non-nullable.
  ColId cnt = q_.columns().Add("count(*)", DataType::kInt64);
  gb.aggregates = {{AggKind::kCountStar, {}, cnt}};
  PlanPtr grouped = b.GroupBy(scan, gb, {e_dno_, cnt});
  Status st = CheckDataflowObligations(grouped, q_);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("declared nullable"), std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("in node:"), std::string::npos) << st.message();
}

TEST_F(AnalysisTest, RuntimeRejectsNullInNeverNullColumn) {
  PlanBuilder b(q_);
  PlanPtr scan = b.Scan(e_, {}, {eno_, sal_});
  DataflowVerifier verifier(scan, q_);
  // eno is emp's primary key: the catalog stats record zero NULLs, so the
  // analysis derives never-null. Feed the verifier a batch violating that.
  RowBatch batch(4);
  Row& row = batch.AppendRow();
  row.assign(static_cast<size_t>(scan->output.size()), Value::Null());
  Status st = verifier.CheckBatch(scan.get(), scan->output, batch);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("NULL in a never-null column"),
            std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("in node:"), std::string::npos) << st.message();
}

TEST_F(AnalysisTest, RuntimeRejectsValueOutsideDerivedDomain) {
  PlanBuilder b(q_);
  // sal > 0 narrows the derived domain's lower edge to above zero.
  PlanPtr scan =
      b.Scan(e_, {Cmp(Col(sal_), CompareOp::kGt, LitInt(0))}, {eno_, sal_});
  DataflowVerifier verifier(scan, q_);
  RowBatch batch(4);
  Row& row = batch.AppendRow();
  int eno_idx = scan->output.IndexOf(eno_);
  int sal_idx = scan->output.IndexOf(sal_);
  row.assign(static_cast<size_t>(scan->output.size()), Value::Null());
  row[static_cast<size_t>(eno_idx)] = Value::Int(1);
  row[static_cast<size_t>(sal_idx)] = Value::Real(-1e12);
  Status st = verifier.CheckBatch(scan.get(), scan->output, batch);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("outside the derived domain"),
            std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("in node:"), std::string::npos) << st.message();
}

TEST_F(AnalysisTest, RuntimeAcceptsLegitimateBatch) {
  PlanBuilder b(q_);
  PlanPtr scan = b.Scan(e_, {}, {eno_, sal_});
  DataflowVerifier verifier(scan, q_);
  // An actual row of the table satisfies every derived fact.
  const Table& emp = *fixture_.catalog->table(fixture_.tables.emp).data;
  const std::vector<ColId>& table_cols = q_.range_var(e_).columns;
  RowBatch batch(4);
  Row& row = batch.AppendRow();
  for (ColId c : scan->output.columns()) {
    for (size_t i = 0; i < table_cols.size(); ++i) {
      if (table_cols[i] == c) row.push_back(emp.rows()[0][i]);
    }
  }
  EXPECT_OK(verifier.CheckBatch(scan.get(), scan->output, batch));
  EXPECT_GT(verifier.checks(), 0);
}

TEST_F(AnalysisTest, ParanoidAuditRecordsPullUp) {
  auto query = ParseAndBind(*fixture_.catalog, Example1Sql());
  ASSERT_OK(query);
  OptimizerOptions options;
  options.paranoid = true;
  auto optimized = OptimizeQueryWithAggViews(*query, options);
  ASSERT_OK(optimized);
  // On the small default data, Example 1's winner is the pulled-up plan and
  // its audit carries the pull-up certificate. If data sizes ever shift the
  // winner, the audit is still internally consistent (checked above); here
  // we pin the expected transformation for the canonical example.
  if (optimized->description.find("W(") != std::string::npos &&
      optimized->description.find("{e1}") != std::string::npos) {
    EXPECT_FALSE(optimized->audit.pullups.empty());
  }
}

}  // namespace
}  // namespace aggview
