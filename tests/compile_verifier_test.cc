#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "exec/compile/disasm.h"
#include "exec/compile/expr_compiler.h"
#include "exec/compile/verifier.h"
#include "test_util.h"

namespace aggview {
namespace {

/// Tests for the bytecode verifier (exec/compile/verifier.h): the stage-1
/// well-formedness checker must reject every structurally broken raw
/// program with an instruction-indexed diagnostic, stage-2 translation
/// validation must reject well-formed programs that compute something other
/// than their source tree (exactly the corruptions the runtime type guards
/// would mask as a silent slowdown-plus-wrong-answer), the mutation harness
/// must show a >= 95% kill rate over single-instruction mutants, and the
/// lowering integration must turn a rejection into interpreter fallback —
/// never into executing the rejected program.

using Op = ExprProgram::Op;
using Insn = ExprProgram::Insn;
using CmpLane = PredicateProgram::CmpLane;
using Conjunct = PredicateProgram::Conjunct;
using Operand = PredicateProgram::Operand;

/// The compile_test.cc fixture layout: two int columns, two double columns,
/// one string column — every lane plus the generic fallback.
class VerifierTest : public ::testing::Test {
 protected:
  VerifierTest() {
    a_ = cat_.Add("t.a", DataType::kInt64);
    b_ = cat_.Add("t.b", DataType::kInt64);
    x_ = cat_.Add("t.x", DataType::kDouble);
    y_ = cat_.Add("t.y", DataType::kDouble);
    s_ = cat_.Add("t.s", DataType::kString);
    layout_ = RowLayout({a_, b_, x_, y_, s_});
  }

  ExprProgram MustCompile(const ExprPtr& e) {
    auto prog = ExprProgram::Compile(*e, layout_, cat_);
    EXPECT_OK(prog);
    return std::move(*prog);
  }

  PredicateProgram MustCompile(const std::vector<Predicate>& preds) {
    auto prog = PredicateProgram::Compile(preds, layout_, cat_);
    EXPECT_OK(prog);
    return std::move(*prog);
  }

  Status Validate(const ExprProgram& prog, const ExprPtr& e,
                  const BytecodeVerifyOptions& opts = {}) {
    return ValidateTranslation(prog, *e, layout_, cat_,
                               SeedFactsFromCatalog(layout_, cat_), opts);
  }

  Status Validate(const PredicateProgram& prog,
                  const std::vector<Predicate>& preds,
                  const BytecodeVerifyOptions& opts = {}) {
    return ValidateTranslation(prog, preds, layout_, cat_,
                               SeedFactsFromCatalog(layout_, cat_), opts);
  }

  ColumnCatalog cat_;
  RowLayout layout_;
  ColId a_ = kInvalidColId, b_ = kInvalidColId, x_ = kInvalidColId,
        y_ = kInvalidColId, s_ = kInvalidColId;
};

/// A rejection must name the offending instruction and carry the listing so
/// the corruption is inspectable without a debugger.
void ExpectRejectedAtPc(const Status& s, int pc) {
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find(StrFormat("at pc %d", pc)), std::string::npos)
      << s.message();
  EXPECT_NE(s.message().find("bytecode verifier"), std::string::npos);
}

// ------------------------------------------------- stage 1: well-formedness

TEST_F(VerifierTest, RejectsStackUnderflow) {
  // kAddInt with an empty stack.
  auto prog = ExprProgram::FromRaw({{Op::kAddInt, 0}}, {});
  ExpectRejectedAtPc(VerifyWellFormed(prog, layout_, cat_), 0);

  // One operand where two are needed.
  auto one = ExprProgram::FromRaw({{Op::kLoadCol, 0}, {Op::kMulInt, 0}}, {});
  ExpectRejectedAtPc(VerifyWellFormed(one, layout_, cat_), 1);

  // kPop on an empty stack.
  auto pop = ExprProgram::FromRaw({{Op::kPop, 0}}, {});
  ExpectRejectedAtPc(VerifyWellFormed(pop, layout_, cat_), 0);
}

TEST_F(VerifierTest, RejectsWrongExitStackDepth) {
  // Two values left at exit.
  auto two = ExprProgram::FromRaw({{Op::kLoadCol, 0}, {Op::kLoadCol, 1}}, {});
  auto s = VerifyWellFormed(two, layout_, cat_);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("exactly one"), std::string::npos) << s.message();

  // The empty program leaves zero.
  auto empty = ExprProgram::FromRaw({}, {});
  EXPECT_FALSE(VerifyWellFormed(empty, layout_, cat_).ok());
}

TEST_F(VerifierTest, RejectsOutOfBoundsOperands) {
  // Column slot past the layout.
  auto col = ExprProgram::FromRaw({{Op::kLoadCol, 99}}, {});
  ExpectRejectedAtPc(VerifyWellFormed(col, layout_, cat_), 0);
  auto neg = ExprProgram::FromRaw({{Op::kLoadCol, -1}}, {});
  ExpectRejectedAtPc(VerifyWellFormed(neg, layout_, cat_), 0);

  // Constant index past the pool.
  auto con = ExprProgram::FromRaw({{Op::kLoadConst, 2}}, {Value::Int(1)});
  ExpectRejectedAtPc(VerifyWellFormed(con, layout_, cat_), 0);
}

TEST_F(VerifierTest, RejectsMalformedJumps) {
  // Backward jump (the only control-flow op must be strictly forward).
  auto back = ExprProgram::FromRaw(
      {{Op::kLoadCol, 0}, {Op::kJumpIfNotNull, 0}, {Op::kPop, 0},
       {Op::kLoadCol, 1}},
      {});
  ExpectRejectedAtPc(VerifyWellFormed(back, layout_, cat_), 1);

  // Jump past the end of the program.
  auto past = ExprProgram::FromRaw(
      {{Op::kLoadCol, 0}, {Op::kJumpIfNotNull, 9}, {Op::kPop, 0},
       {Op::kLoadCol, 1}},
      {});
  ExpectRejectedAtPc(VerifyWellFormed(past, layout_, cat_), 1);

  // Violates the compiled COALESCE shape: the fall-through instruction after
  // kJumpIfNotNull must be the kPop that discards the NULL.
  auto nopop = ExprProgram::FromRaw(
      {{Op::kLoadCol, 0}, {Op::kJumpIfNotNull, 3}, {Op::kLoadCol, 1},
       {Op::kPop, 0}},
      {});
  ExpectRejectedAtPc(VerifyWellFormed(nopop, layout_, cat_), 1);
}

TEST_F(VerifierTest, RejectsCorruptedOpcodeAndStrayOperandBits) {
  // An opcode byte outside the enum.
  auto bad = ExprProgram::FromRaw({{static_cast<Op>(0xEE), 0}}, {});
  ExpectRejectedAtPc(VerifyWellFormed(bad, layout_, cat_), 0);

  // Operand-less instructions must carry a == 0 (a flipped operand word on
  // an arithmetic op is corruption even though Eval ignores it).
  auto stray = ExprProgram::FromRaw(
      {{Op::kLoadCol, 0}, {Op::kLoadCol, 1}, {Op::kAddInt, 7}}, {});
  ExpectRejectedAtPc(VerifyWellFormed(stray, layout_, cat_), 2);
}

TEST_F(VerifierTest, RejectsNonCanonicalLanes) {
  // Two INT64 columns: the compiler's static lane selection emits kAddInt.
  // kAddDouble and kAddGeneric both *execute* fine (the runtime type guard
  // falls through to the generic path) — which is exactly why the verifier
  // must treat a non-canonical lane as corruption, not tolerate it.
  for (Op op : {Op::kAddDouble, Op::kAddGeneric}) {
    auto prog = ExprProgram::FromRaw(
        {{Op::kLoadCol, 0}, {Op::kLoadCol, 1}, {op, 0}}, {});
    ExpectRejectedAtPc(VerifyWellFormed(prog, layout_, cat_), 2);
  }

  // Division never takes an int lane: over two INT64 columns the canonical
  // opcode is kDivGeneric, so kDivDouble is corruption here...
  auto div = ExprProgram::FromRaw(
      {{Op::kLoadCol, 0}, {Op::kLoadCol, 1}, {Op::kDivDouble, 0}}, {});
  ExpectRejectedAtPc(VerifyWellFormed(div, layout_, cat_), 2);
  // ... while over two DOUBLE columns it is the canonical lane.
  auto dd = ExprProgram::FromRaw(
      {{Op::kLoadCol, 2}, {Op::kLoadCol, 3}, {Op::kDivDouble, 0}}, {});
  EXPECT_OK(VerifyWellFormed(dd, layout_, cat_));
}

TEST_F(VerifierTest, ReportsAbstractShape) {
  ExprProgramShape shape;
  auto prog = MustCompile(Arith(ArithOp::kAdd, Col(a_), Col(b_)));
  ASSERT_OK(VerifyWellFormed(prog, layout_, cat_, &shape));
  EXPECT_EQ(shape.result_type, DataType::kInt64);
  EXPECT_EQ(shape.max_stack_depth, 2);

  auto div = MustCompile(Arith(ArithOp::kDiv, Col(a_), Col(b_)));
  ASSERT_OK(VerifyWellFormed(div, layout_, cat_, &shape));
  EXPECT_EQ(shape.result_type, DataType::kDouble);

  // Nested COALESCE: the abstract result type is the *outermost* inner
  // type, and the shared jump target merges cleanly.
  auto nest = MustCompile(Coalesce(Col(x_), Coalesce(Col(a_), LitInt(0))));
  ASSERT_OK(VerifyWellFormed(nest, layout_, cat_, &shape));
  EXPECT_EQ(shape.result_type, DataType::kDouble);
}

TEST_F(VerifierTest, RejectsBrokenPredicateFrames) {
  // Operand slot outside the layout.
  Conjunct c;
  c.lhs.col = 17;
  c.rhs.constant = Value::Int(3);
  c.op = CompareOp::kLt;
  c.lane = CmpLane::kGeneric;
  auto bad_col = PredicateProgram::FromRaw({c}, {});
  auto s = VerifyWellFormed(bad_col, layout_, cat_);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("at conjunct 0"), std::string::npos)
      << s.message();

  // Operand referencing a nested program that does not exist.
  Conjunct p;
  p.lhs.prog = 0;
  p.rhs.constant = Value::Int(3);
  p.op = CompareOp::kLt;
  p.lane = CmpLane::kGeneric;
  EXPECT_FALSE(
      VerifyWellFormed(PredicateProgram::FromRaw({p}, {}), layout_, cat_)
          .ok());

  // Ambiguous operand: both col and prog claim to be active.
  auto good = MustCompile({Cmp(Arith(ArithOp::kAdd, Col(a_), Col(b_)),
                               CompareOp::kGt, LitInt(0))});
  auto conjs = good.conjuncts();
  ASSERT_GE(conjs[0].lhs.prog, 0);
  conjs[0].lhs.col = 0;
  EXPECT_FALSE(VerifyWellFormed(
                   PredicateProgram::FromRaw(conjs, good.programs()),
                   layout_, cat_)
                   .ok());

  // A broken nested program is reported with its index.
  auto nested_bad = PredicateProgram::FromRaw(
      good.conjuncts(), {ExprProgram::FromRaw({{Op::kAddInt, 0}}, {})});
  auto ns = VerifyWellFormed(nested_bad, layout_, cat_);
  ASSERT_FALSE(ns.ok());
  EXPECT_NE(ns.message().find("prog<0>"), std::string::npos) << ns.message();
}

TEST_F(VerifierTest, RejectsNonCanonicalComparisonLanes) {
  // a < b is canonically kInt64; every other lane tag is corruption even
  // though each would evaluate correctly through its runtime guard.
  auto prog = MustCompile({Cmp(Col(a_), CompareOp::kLt, Col(b_))});
  ASSERT_EQ(prog.size(), 1);
  EXPECT_EQ(prog.conjuncts()[0].lane, CmpLane::kInt64);
  for (CmpLane lane : {CmpLane::kGeneric, CmpLane::kDouble, CmpLane::kString,
                       CmpLane::kInt64ColConst, CmpLane::kDoubleColConst}) {
    auto conjs = prog.conjuncts();
    conjs[0].lane = lane;
    auto s = VerifyWellFormed(PredicateProgram::FromRaw(conjs, {}), layout_,
                              cat_);
    EXPECT_FALSE(s.ok()) << "lane " << static_cast<int>(lane);
  }

  // a < 3 promotes to the col-vs-const fast lane; demoting it back to plain
  // kInt64 is equally non-canonical.
  auto fast = MustCompile({Cmp(Col(a_), CompareOp::kLt, LitInt(3))});
  ASSERT_EQ(fast.conjuncts()[0].lane, CmpLane::kInt64ColConst);
  auto demoted = fast.conjuncts();
  demoted[0].lane = CmpLane::kInt64;
  EXPECT_FALSE(
      VerifyWellFormed(PredicateProgram::FromRaw(demoted, {}), layout_, cat_)
          .ok());
}

// ------------------------------------- stage 2: translation validation

TEST_F(VerifierTest, AcceptsEveryCompilerOutput) {
  // The positive battery: everything the real compiler emits over this
  // layout must verify — both stages, default budget.
  std::vector<ExprPtr> exprs;
  for (ArithOp op :
       {ArithOp::kAdd, ArithOp::kSub, ArithOp::kMul, ArithOp::kDiv}) {
    exprs.push_back(Arith(op, Col(a_), Col(b_)));
    exprs.push_back(Arith(op, Col(x_), Col(y_)));
    exprs.push_back(Arith(op, Col(a_), Col(x_)));
    exprs.push_back(Arith(op, Col(a_), LitInt(2)));
    exprs.push_back(Arith(op, Col(x_), LitReal(0.5)));
    exprs.push_back(
        Arith(op, Arith(ArithOp::kAdd, Col(a_), Col(b_)), Col(x_)));
  }
  exprs.push_back(Col(s_));
  exprs.push_back(LitStr("w"));
  exprs.push_back(Coalesce(Col(a_), LitInt(42)));
  exprs.push_back(Coalesce(Col(x_), Col(a_)));
  exprs.push_back(Coalesce(Col(a_), Coalesce(Col(b_), LitInt(0))));
  exprs.push_back(
      Coalesce(Arith(ArithOp::kAdd, Col(a_), Col(b_)), LitInt(-1)));
  for (const ExprPtr& e : exprs) {
    auto prog = MustCompile(e);
    int witnesses = 0;
    BytecodeVerifyOptions opts;
    Status valid = ValidateTranslation(prog, *e, layout_, cat_,
                                       SeedFactsFromCatalog(layout_, cat_),
                                       opts, &witnesses);
    EXPECT_TRUE(valid.ok()) << e->ToString(cat_) << "\n" << valid.message();
    EXPECT_GT(witnesses, 0) << e->ToString(cat_);
  }

  std::vector<std::vector<Predicate>> preds = {
      {Cmp(Col(a_), CompareOp::kLt, Col(b_))},
      {Cmp(Col(x_), CompareOp::kGe, Col(y_))},
      {Cmp(Col(s_), CompareOp::kEq, LitStr("m"))},
      {Cmp(Col(a_), CompareOp::kGt, LitInt(3))},
      {Cmp(Col(x_), CompareOp::kNe, LitInt(2))},
      {Cmp(Arith(ArithOp::kMul, Col(a_), LitInt(2)), CompareOp::kLe, Col(b_)),
       Cmp(Col(s_), CompareOp::kGt, LitStr(""))},
      {},  // the empty conjunction compiles and verifies too
  };
  for (const auto& ps : preds) {
    auto prog = MustCompile(ps);
    EXPECT_OK(Validate(prog, ps));
  }
}

TEST_F(VerifierTest, CatchesGuardMaskedOperatorFlip) {
  // kAddInt -> kSubInt stays perfectly well-formed (same lane family, same
  // stack effect): only co-evaluation against the source tree catches it.
  ExprPtr e = Arith(ArithOp::kAdd, Col(a_), Col(b_));
  auto prog = MustCompile(e);
  auto code = prog.code();
  ASSERT_EQ(code[2].op, Op::kAddInt);
  code[2].op = Op::kSubInt;
  auto mutant = ExprProgram::FromRaw(code, prog.consts());
  ASSERT_OK(VerifyWellFormed(mutant, layout_, cat_));
  auto s = Validate(mutant, e);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("witness divergence"), std::string::npos)
      << s.message();
}

TEST_F(VerifierTest, CatchesSlotRetargeting) {
  // Loading t.b where the source reads t.a: identical types, identical
  // shape, different answer. The per-slot distinguishing witness values
  // must separate them.
  ExprPtr e = Arith(ArithOp::kAdd, Col(a_), LitInt(1));
  auto prog = MustCompile(e);
  auto code = prog.code();
  ASSERT_EQ(code[0].op, Op::kLoadCol);
  ASSERT_EQ(code[0].a, 0);
  code[0].a = 1;
  auto mutant = ExprProgram::FromRaw(code, prog.consts());
  ASSERT_OK(VerifyWellFormed(mutant, layout_, cat_));
  EXPECT_FALSE(Validate(mutant, e).ok());
}

TEST_F(VerifierTest, CatchesConstantRewrite) {
  ExprPtr e = Arith(ArithOp::kMul, Col(a_), LitInt(3));
  auto prog = MustCompile(e);
  auto consts = prog.consts();
  ASSERT_EQ(consts.size(), 1u);
  consts[0] = Value::Int(4);
  auto mutant = ExprProgram::FromRaw(prog.code(), consts);
  ASSERT_OK(VerifyWellFormed(mutant, layout_, cat_));
  EXPECT_FALSE(Validate(mutant, e).ok());
}

TEST_F(VerifierTest, CatchesComparisonFlips) {
  // Every CompareOp replacement on a well-formed conjunct must be caught by
  // witness co-evaluation (boundary values are in the candidate sets, so
  // even kLt -> kLe diverges).
  std::vector<Predicate> ps = {Cmp(Col(a_), CompareOp::kLt, LitInt(3))};
  auto prog = MustCompile(ps);
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLe,
                       CompareOp::kGt, CompareOp::kGe}) {
    auto conjs = prog.conjuncts();
    conjs[0].op = op;
    auto mutant = PredicateProgram::FromRaw(conjs, prog.programs());
    ASSERT_OK(VerifyWellFormed(mutant, layout_, cat_));
    EXPECT_FALSE(Validate(mutant, ps).ok())
        << "CompareOp " << static_cast<int>(op) << " not caught";
  }
}

TEST_F(VerifierTest, CatchesDroppedConjunct) {
  std::vector<Predicate> ps = {Cmp(Col(a_), CompareOp::kGt, LitInt(0)),
                               Cmp(Col(b_), CompareOp::kLt, LitInt(9))};
  auto prog = MustCompile(ps);
  ASSERT_EQ(prog.size(), 2);
  auto conjs = prog.conjuncts();
  conjs.pop_back();
  auto mutant = PredicateProgram::FromRaw(conjs, prog.programs());
  auto s = Validate(mutant, ps);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("conjunct count"), std::string::npos)
      << s.message();
}

TEST_F(VerifierTest, ParanoidReproofPinsTheExactListing) {
  // Paranoid mode recompiles the source and requires listing equality; a
  // semantically identical but differently encoded program is rejected.
  ExprPtr e = Coalesce(Col(a_), LitInt(42));
  auto prog = MustCompile(e);
  BytecodeVerifyOptions paranoid = BytecodeVerifyOptions::ForMode(
      BytecodeVerifyMode::kParanoid);
  EXPECT_TRUE(paranoid.reprove);
  EXPECT_OK(Validate(prog, e, paranoid));

  // Append a no-op push/pop pair: same value on every input, different
  // listing. Plain mode accepts it (it *is* faithful); paranoid does not.
  auto code = prog.code();
  code.push_back({Op::kLoadCol, 0});
  code.push_back({Op::kPop, 0});
  auto padded = ExprProgram::FromRaw(code, prog.consts());
  ASSERT_OK(VerifyWellFormed(padded, layout_, cat_));
  EXPECT_OK(Validate(padded, e));
  auto s = Validate(padded, e, paranoid);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("re-proof"), std::string::npos) << s.message();
}

// ----------------------------------------------------------- certificates

TEST_F(VerifierTest, CertificateRecordsShapeAndListing) {
  std::vector<Predicate> ps = {
      Cmp(Arith(ArithOp::kAdd, Col(a_), Col(b_)), CompareOp::kGt, LitInt(0))};
  auto prog = MustCompile(ps);
  CompilationCertificate cert = VerifyPredicateProgram(
      prog, ps, layout_, cat_, BytecodeVerifyMode::kOn, "Filter", "filter");
  EXPECT_TRUE(cert.verified) << cert.rejection;
  EXPECT_EQ(cert.node, "Filter");
  EXPECT_EQ(cert.kind, "filter");
  EXPECT_FALSE(cert.source.empty());
  EXPECT_NE(cert.disassembly.find("add_int"), std::string::npos)
      << cert.disassembly;
  // One conjunct frame plus the nested three-instruction program.
  EXPECT_EQ(cert.instructions, 1 + 3);
  EXPECT_EQ(cert.max_stack_depth, 2);
  EXPECT_GT(cert.witness_rows, 0);
  EXPECT_TRUE(cert.rejection.empty());
}

TEST_F(VerifierTest, CertificateCarriesRejection) {
  std::vector<Predicate> ps = {Cmp(Col(a_), CompareOp::kLt, LitInt(3))};
  auto prog = MustCompile(ps);
  auto conjs = prog.conjuncts();
  conjs[0].op = CompareOp::kGe;
  auto tampered = PredicateProgram::FromRaw(conjs, prog.programs());
  CompilationCertificate cert =
      VerifyPredicateProgram(tampered, ps, layout_, cat_,
                             BytecodeVerifyMode::kOn, "TableScan",
                             "scan-filter");
  EXPECT_FALSE(cert.verified);
  EXPECT_FALSE(cert.rejection.empty());
  EXPECT_FALSE(cert.disassembly.empty());
}

// ------------------------------------------------------- mutation harness

/// Enumerates every single-instruction corruption of a compiled expression
/// program — opcode flips (including out-of-enum bytes), operand tweaks,
/// instruction deletion, constant-pool edits — and counts how many the
/// verifier kills (stage 1 or stage 2). The runtime type guards would
/// *execute* most of these without crashing, which is the gap the verifier
/// exists to close: the kill rate must be at least 95%.
struct MutationStats {
  int total = 0;
  int killed = 0;
  std::vector<std::string> survivors;
};

constexpr int kNumOps = 15;  // kLoadCol .. kPop

void MutateExprProgram(const ExprProgram& prog, const ExprPtr& source,
                       const RowLayout& layout, const ColumnCatalog& cat,
                       MutationStats* stats) {
  auto facts = SeedFactsFromCatalog(layout, cat);
  BytecodeVerifyOptions opts;
  auto check = [&](const ExprProgram& mutant, const std::string& what) {
    ++stats->total;
    Status s = ValidateTranslation(mutant, *source, layout, cat, facts, opts);
    if (!s.ok()) {
      ++stats->killed;
    } else {
      stats->survivors.push_back(what + "\n" + mutant.Disassemble());
    }
  };
  const auto& code = prog.code();
  for (size_t pc = 0; pc < code.size(); ++pc) {
    // Opcode flips: every other value of the enum plus one corrupt byte.
    for (int op = 0; op <= kNumOps; ++op) {
      if (static_cast<Op>(op) == code[pc].op) continue;
      auto mutated = code;
      mutated[pc].op = static_cast<Op>(op);
      check(ExprProgram::FromRaw(mutated, prog.consts()),
            StrFormat("op flip at pc %d -> %d", static_cast<int>(pc), op));
    }
    // Operand tweaks.
    for (int32_t delta : {-1, +1, +7}) {
      auto mutated = code;
      mutated[pc].a += delta;
      check(ExprProgram::FromRaw(mutated, prog.consts()),
            StrFormat("operand %+d at pc %d", delta, static_cast<int>(pc)));
    }
    // Deletion.
    auto removed = code;
    removed.erase(removed.begin() + static_cast<long>(pc));
    check(ExprProgram::FromRaw(removed, prog.consts()),
          StrFormat("delete pc %d", static_cast<int>(pc)));
  }
  // Constant-pool edits (the bytes a bit flip is likeliest to land on).
  for (size_t i = 0; i < prog.consts().size(); ++i) {
    auto consts = prog.consts();
    const Value& v = consts[i];
    consts[i] = v.is_int()      ? Value::Int(v.AsInt() + 1)
                : v.is_double() ? Value::Real(v.AsDouble() + 0.25)
                : v.is_string() ? Value::Str(v.AsString() + "x")
                                : Value::Int(0);
    check(ExprProgram::FromRaw(prog.code(), consts),
          StrFormat("const edit %d", static_cast<int>(i)));
  }
}

TEST_F(VerifierTest, MutationHarnessKillsAtLeast95Percent) {
  std::vector<ExprPtr> corpus = {
      Arith(ArithOp::kAdd, Col(a_), Col(b_)),
      Arith(ArithOp::kSub, Col(a_), LitInt(5)),
      Arith(ArithOp::kMul, Col(x_), Col(y_)),
      Arith(ArithOp::kDiv, Col(a_), Col(b_)),
      Arith(ArithOp::kDiv, Col(x_), LitReal(2.0)),
      Arith(ArithOp::kAdd, Col(a_), Col(x_)),
      Arith(ArithOp::kMul, Arith(ArithOp::kAdd, Col(a_), Col(b_)),
            Arith(ArithOp::kSub, Col(a_), LitInt(1))),
      Coalesce(Col(a_), LitInt(42)),
      Coalesce(Col(x_), Col(y_)),
      Coalesce(Col(a_), Coalesce(Col(b_), LitInt(0))),
      Coalesce(Arith(ArithOp::kAdd, Col(a_), Col(b_)), LitInt(-1)),
  };
  MutationStats stats;
  for (const ExprPtr& e : corpus) {
    MutateExprProgram(MustCompile(e), e, layout_, cat_, &stats);
  }
  ASSERT_GT(stats.total, 500);  // the harness actually enumerated a corpus
  double kill_rate =
      static_cast<double>(stats.killed) / static_cast<double>(stats.total);
  std::string survivors;
  for (const auto& s : stats.survivors) survivors += s + "\n";
  EXPECT_GE(kill_rate, 0.95) << stats.killed << "/" << stats.total
                             << " killed; survivors:\n"
                             << survivors;
}

TEST_F(VerifierTest, PredicateMutationsAreKilled) {
  // The frame-level analogue: lane retags, comparison flips, operand
  // retargeting and constant edits on compiled conjuncts.
  std::vector<std::vector<Predicate>> corpus = {
      {Cmp(Col(a_), CompareOp::kLt, LitInt(3))},
      {Cmp(Col(x_), CompareOp::kGe, LitReal(1.5))},
      {Cmp(Col(s_), CompareOp::kEq, LitStr("m"))},
      {Cmp(Col(a_), CompareOp::kNe, Col(b_))},
      {Cmp(Arith(ArithOp::kAdd, Col(a_), Col(b_)), CompareOp::kGt, LitInt(0)),
       Cmp(Col(x_), CompareOp::kLt, Col(y_))},
  };
  int total = 0, killed = 0;
  std::vector<std::string> survivors;
  auto facts = SeedFactsFromCatalog(layout_, cat_);
  BytecodeVerifyOptions opts;
  for (const auto& ps : corpus) {
    auto prog = MustCompile(ps);
    auto check = [&](const PredicateProgram& mutant, const std::string& what) {
      ++total;
      if (!ValidateTranslation(mutant, ps, layout_, cat_, facts, opts).ok()) {
        ++killed;
      } else {
        survivors.push_back(what + "\n" + mutant.Disassemble());
      }
    };
    for (int ci = 0; ci < prog.size(); ++ci) {
      for (int lane = 0; lane < 6; ++lane) {
        if (static_cast<CmpLane>(lane) == prog.conjuncts()[ci].lane) continue;
        auto conjs = prog.conjuncts();
        conjs[ci].lane = static_cast<CmpLane>(lane);
        check(PredicateProgram::FromRaw(conjs, prog.programs()),
              StrFormat("lane %d at conjunct %d", lane, ci));
      }
      for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                           CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
        if (op == prog.conjuncts()[ci].op) continue;
        auto conjs = prog.conjuncts();
        conjs[ci].op = op;
        check(PredicateProgram::FromRaw(conjs, prog.programs()),
              StrFormat("compare flip at conjunct %d", ci));
      }
      for (Operand Conjunct::* side : {&Conjunct::lhs, &Conjunct::rhs}) {
        const Operand& o = prog.conjuncts()[ci].*side;
        auto conjs = prog.conjuncts();
        if (o.col >= 0) {
          (conjs[ci].*side).col = (o.col + 1) % layout_.size();
          check(PredicateProgram::FromRaw(conjs, prog.programs()),
                StrFormat("slot retarget at conjunct %d", ci));
        } else if (o.prog < 0) {
          const Value& v = o.constant;
          (conjs[ci].*side).constant =
              v.is_int()      ? Value::Int(v.AsInt() + 1)
              : v.is_double() ? Value::Real(v.AsDouble() + 0.25)
              : v.is_string() ? Value::Str(v.AsString() + "x")
                              : Value::Int(0);
          check(PredicateProgram::FromRaw(conjs, prog.programs()),
                StrFormat("const edit at conjunct %d", ci));
        }
      }
    }
  }
  ASSERT_GT(total, 50);
  double kill_rate = static_cast<double>(killed) / static_cast<double>(total);
  std::string all;
  for (const auto& s : survivors) all += s + "\n";
  EXPECT_GE(kill_rate, 0.95) << killed << "/" << total
                             << " killed; survivors:\n"
                             << all;
}

// --------------------------------------------------------- disassembler

TEST_F(VerifierTest, DisassemblyIsInstructionIndexedAndNamesColumns) {
  auto prog = MustCompile(Coalesce(Arith(ArithOp::kAdd, Col(a_), Col(b_)),
                                   LitInt(-1)));
  std::string named = prog.Disassemble(layout_, cat_);
  EXPECT_NE(named.find("t.a"), std::string::npos) << named;
  EXPECT_NE(named.find("add_int"), std::string::npos) << named;
  EXPECT_NE(named.find("jump_if_not_null"), std::string::npos) << named;
  // Without a layout the listing still renders, with raw slot indices.
  std::string raw = prog.Disassemble();
  EXPECT_NE(raw.find("load_col"), std::string::npos) << raw;

  auto pred = MustCompile({Cmp(Col(s_), CompareOp::kLe, LitStr("zz"))});
  std::string listing = pred.Disassemble(layout_, cat_);
  EXPECT_NE(listing.find("t.s"), std::string::npos) << listing;
  EXPECT_NE(listing.find(CmpLaneName(CmpLane::kString)), std::string::npos)
      << listing;
}

// ----------------------------------------- lowering integration, end to end

/// Clears the tamper hook even when an assertion fails out of the test.
struct ScopedTamperHook {
  explicit ScopedTamperHook(PredicateTamperHook hook) {
    SetBytecodeTamperHookForTesting(std::move(hook));
  }
  ~ScopedTamperHook() { SetBytecodeTamperHookForTesting(nullptr); }
};

/// One emp/dept session per backend configuration, same deterministic data.
Result<PreparedQuery> PrepareOn(Session* session, const std::string& sql) {
  auto tables = CreateEmpDeptSchema(&session->catalog());
  AGGVIEW_RETURN_NOT_OK(tables.status());
  AGGVIEW_RETURN_NOT_OK(
      GenerateEmpDeptData(&session->catalog(), *tables, {}));
  return session->Sql(sql);
}

TEST(VerifierIntegrationTest, TamperedProgramsFallBackToInterpreterSafely) {
  const std::string sql =
      "select e.eno, e.sal from emp e where e.sal > 100 and e.age < 60";

  // Reference: the interpreter, no compilation anywhere.
  Session interpreted{[] {
    SessionOptions o;
    o.backend = ExecBackend::kInterpret;
    return o;
  }()};
  auto ref = PrepareOn(&interpreted, sql);
  ASSERT_OK(ref);
  auto want = ref->Execute();
  ASSERT_OK(want);

  // Compiled session whose every non-empty predicate program is corrupted
  // after compilation and before verification: flip the first conjunct's
  // comparison. The verifier must catch each one and lowering must fall
  // back — the query still answers, correctly.
  SessionOptions opts;
  opts.backend = ExecBackend::kCompiled;
  opts.bytecode_verify = BytecodeVerifyMode::kOn;
  Session compiled(opts);
  auto q = PrepareOn(&compiled, sql);
  ASSERT_OK(q);

  ScopedTamperHook hook([](const PredicateProgram& prog) {
    if (prog.empty()) return prog;
    auto conjs = prog.conjuncts();
    conjs[0].op = conjs[0].op == CompareOp::kLt ? CompareOp::kGe
                                                : CompareOp::kLt;
    return PredicateProgram::FromRaw(std::move(conjs), prog.programs());
  });

  auto got = q->Execute();
  ASSERT_OK(got);
  EXPECT_EQ(got->Fingerprint(), want->Fingerprint())
      << "a tampered program's results leaked into the output";

  // The rejection is visible at every level: per-operator fallback tag...
  auto analyzed = q->ExplainAnalyze();
  ASSERT_OK(analyzed);
  EXPECT_NE(analyzed->find("fallback=verifier-rejected"), std::string::npos)
      << *analyzed;
  // ... the audit's certificates...
  int rejected = 0;
  for (const CompilationCertificate& cert : q->audit().compilations) {
    if (!cert.verified) {
      ++rejected;
      EXPECT_FALSE(cert.rejection.empty());
    }
  }
  EXPECT_GT(rejected, 0);
  // ... and the verbose EXPLAIN ANALYZE rendering.
  auto verbose = q->ExplainAnalyze(/*verbose=*/true);
  ASSERT_OK(verbose);
  EXPECT_NE(verbose->find("REJECTED"), std::string::npos) << *verbose;
}

TEST(VerifierIntegrationTest, EveryCompiledProgramIsVerifiedBeforeUse) {
  // The acceptance property: under the compiled backend every program that
  // executes carries a verified certificate, across plan shapes (fused
  // scan/filter, fused aggregate, HAVING, joins with residuals).
  const std::vector<std::string> corpus = {
      "select e.eno, e.sal from emp e where e.sal > 100",
      "select e.dno, count(*), avg(e.sal) from emp e "
      "group by e.dno having count(*) > 2",
      "select e.eno, d.budget from emp e, dept d "
      "where e.dno = d.dno and e.sal > d.budget / 100",
      Example1Sql(),
      Example2Sql(),
  };
  for (const std::string& sql : corpus) {
    SessionOptions opts;
    opts.backend = ExecBackend::kCompiled;
    opts.bytecode_verify = BytecodeVerifyMode::kParanoid;
    Session session(opts);
    SCOPED_TRACE(sql);
    auto q = PrepareOn(&session, sql);
    ASSERT_OK(q);
    ASSERT_OK(q->Execute());
    EXPECT_FALSE(q->audit().compilations.empty()) << sql;
    for (const CompilationCertificate& cert : q->audit().compilations) {
      EXPECT_TRUE(cert.verified)
          << sql << "\n[" << cert.node << "/" << cert.kind
          << "]: " << cert.rejection;
      EXPECT_FALSE(cert.disassembly.empty());
    }
    // Verbose EXPLAIN ANALYZE renders the certificates.
    auto verbose = q->ExplainAnalyze(/*verbose=*/true);
    ASSERT_OK(verbose);
    EXPECT_NE(verbose->find("compiled program(s)"), std::string::npos)
        << *verbose;
    EXPECT_NE(verbose->find("verified:"), std::string::npos) << *verbose;
  }
}

TEST(VerifierIntegrationTest, VerifyOffSkipsCertificates) {
  // kOff is an escape hatch: no verification, no certificates — and the
  // interpreted backend never compiles at all, so it has none either.
  SessionOptions opts;
  opts.backend = ExecBackend::kCompiled;
  opts.bytecode_verify = BytecodeVerifyMode::kOff;
  Session session(opts);
  auto q = PrepareOn(&session,
                     "select e.eno from emp e where e.sal > 100");
  ASSERT_OK(q);
  ASSERT_OK(q->Execute());
  EXPECT_TRUE(q->audit().compilations.empty());
}

TEST(VerifierIntegrationTest, EnvKnobParsesStrictly) {
  BytecodeVerifyMode out = BytecodeVerifyMode::kOn;
  EXPECT_TRUE(ParseBytecodeVerifyMode("off", &out));
  EXPECT_EQ(out, BytecodeVerifyMode::kOff);
  EXPECT_TRUE(ParseBytecodeVerifyMode("paranoid", &out));
  EXPECT_EQ(out, BytecodeVerifyMode::kParanoid);
  EXPECT_TRUE(ParseBytecodeVerifyMode("on", &out));
  EXPECT_EQ(out, BytecodeVerifyMode::kOn);
  out = BytecodeVerifyMode::kParanoid;
  EXPECT_FALSE(ParseBytecodeVerifyMode(nullptr, &out));
  EXPECT_FALSE(ParseBytecodeVerifyMode("", &out));
  EXPECT_FALSE(ParseBytecodeVerifyMode("Paranoid", &out));
  EXPECT_FALSE(ParseBytecodeVerifyMode("on ", &out));
  EXPECT_EQ(out, BytecodeVerifyMode::kParanoid);
}

}  // namespace
}  // namespace aggview
