#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "exec/compile/expr_compiler.h"
#include "exec/compile/fused_ops.h"
#include "test_util.h"

namespace aggview {
namespace {

/// Unit tests for the compiling execution backend: the bytecode
/// expression/predicate compiler must match the tree-walking interpreter
/// value-for-value (including NULL propagation, division by zero, and the
/// int/double result-type rules), and the fused pipeline kernels must honor
/// the operator protocol's boundary behaviour and reproduce interpreted
/// results bit for bit at every batch geometry and thread count.

/// Exact value equality, type included: Int(3) and Real(3.0) compare equal
/// under Value::Compare but fingerprint differently, so the compiled backend
/// must reproduce the interpreter's value *representation*, not just its
/// ordering.
void ExpectSameValue(const Value& want, const Value& got,
                     const std::string& what) {
  EXPECT_EQ(want.is_null(), got.is_null()) << what;
  EXPECT_EQ(want.is_int(), got.is_int()) << what;
  EXPECT_EQ(want.is_double(), got.is_double()) << what;
  EXPECT_EQ(want.is_string(), got.is_string()) << what;
  if (want.is_null() || got.is_null()) return;
  if (want.is_int() && got.is_int()) {
    EXPECT_EQ(want.AsInt(), got.AsInt()) << what;
  } else if (want.is_double() && got.is_double()) {
    EXPECT_EQ(want.AsDouble(), got.AsDouble()) << what;
  } else if (want.is_string() && got.is_string()) {
    EXPECT_EQ(want.AsString(), got.AsString()) << what;
  }
}

/// Two int columns, two double columns, one string column — enough to drive
/// every type-specialized lane plus the generic fallback.
class ExprCompileTest : public ::testing::Test {
 protected:
  ExprCompileTest() {
    a_ = cat_.Add("t.a", DataType::kInt64);
    b_ = cat_.Add("t.b", DataType::kInt64);
    x_ = cat_.Add("t.x", DataType::kDouble);
    y_ = cat_.Add("t.y", DataType::kDouble);
    s_ = cat_.Add("t.s", DataType::kString);
    layout_ = RowLayout({a_, b_, x_, y_, s_});
    rows_ = {
        {Value::Int(7), Value::Int(3), Value::Real(2.5), Value::Real(-0.5),
         Value::Str("m")},
        {Value::Int(-4), Value::Int(0), Value::Real(0.0), Value::Real(1e9),
         Value::Str("")},
        {Value::Null(), Value::Int(5), Value::Real(3.25), Value::Null(),
         Value::Str("zz")},
        {Value::Int(9), Value::Null(), Value::Null(), Value::Real(4.0),
         Value::Str("a")},
        {Value::Null(), Value::Null(), Value::Null(), Value::Null(),
         Value::Str("m")},
    };
  }

  void ExpectExprMatchesInterpreter(const ExprPtr& e) {
    auto prog = ExprProgram::Compile(*e, layout_, cat_);
    ASSERT_OK(prog);
    std::vector<Value> stack;
    for (const Row& row : rows_) {
      Value interpreted = e->Eval(row, layout_);
      Value compiled = prog->Eval(row, &stack);
      ExpectSameValue(interpreted, compiled, e->ToString(cat_));
    }
  }

  void ExpectPredMatchesInterpreter(const Predicate& p) {
    auto prog = PredicateProgram::Compile({p}, layout_, cat_);
    ASSERT_OK(prog);
    EvalScratch scratch;
    for (const Row& row : rows_) {
      bool interpreted = EvalConjunction({p}, row, layout_);
      bool compiled = prog->EvalRow(row, &scratch);
      EXPECT_EQ(interpreted, compiled) << p.ToString(cat_);
    }
  }

  ColumnCatalog cat_;
  RowLayout layout_;
  std::vector<Row> rows_;
  ColId a_ = kInvalidColId, b_ = kInvalidColId, x_ = kInvalidColId,
        y_ = kInvalidColId, s_ = kInvalidColId;
};

TEST_F(ExprCompileTest, EveryArithOpMatchesInterpreterOnEveryTypeMix) {
  for (ArithOp op :
       {ArithOp::kAdd, ArithOp::kSub, ArithOp::kMul, ArithOp::kDiv}) {
    // Int lane (rows include b == 0 for kDiv and NULL operands), double
    // lane (rows include x == 0.0), mixed-type generic lane, literal
    // operands, and a nested expression whose inner result feeds the outer
    // op's lane decision.
    ExpectExprMatchesInterpreter(Arith(op, Col(a_), Col(b_)));
    ExpectExprMatchesInterpreter(Arith(op, Col(x_), Col(y_)));
    ExpectExprMatchesInterpreter(Arith(op, Col(a_), Col(x_)));
    ExpectExprMatchesInterpreter(Arith(op, Col(a_), LitInt(2)));
    ExpectExprMatchesInterpreter(Arith(op, Col(a_), LitInt(0)));
    ExpectExprMatchesInterpreter(Arith(op, Col(x_), LitReal(0.0)));
    ExpectExprMatchesInterpreter(Arith(op, Col(y_), LitReal(2.5)));
    ExpectExprMatchesInterpreter(
        Arith(op, Arith(ArithOp::kAdd, Col(a_), Col(b_)), Col(x_)));
    ExpectExprMatchesInterpreter(
        Arith(op, Arith(ArithOp::kMul, Col(a_), LitInt(3)),
              Arith(ArithOp::kSub, Col(b_), LitInt(1))));
  }
}

TEST_F(ExprCompileTest, DivisionIsAlwaysDoubleAndByZeroYieldsZero) {
  // The interpreter's division contract: kDiv never takes the int lane, and
  // a zero divisor yields Real(0.0), not an error or NaN.
  auto prog = ExprProgram::Compile(*Arith(ArithOp::kDiv, Col(a_), Col(b_)),
                                   layout_, cat_);
  ASSERT_OK(prog);
  std::vector<Value> stack;
  Value v = prog->Eval({Value::Int(7), Value::Int(2), Value::Null(),
                        Value::Null(), Value::Str("")},
                       &stack);
  EXPECT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.AsDouble(), 3.5);
  v = prog->Eval({Value::Int(7), Value::Int(0), Value::Null(), Value::Null(),
                  Value::Str("")},
                 &stack);
  EXPECT_TRUE(v.is_double());
  EXPECT_EQ(v.AsDouble(), 0.0);
}

TEST_F(ExprCompileTest, CoalesceMatchesInterpreter) {
  ExpectExprMatchesInterpreter(Coalesce(Col(a_), LitInt(42)));
  ExpectExprMatchesInterpreter(Coalesce(Col(x_), Col(a_)));
  ExpectExprMatchesInterpreter(Coalesce(Col(s_), LitStr("fallback")));
  // NULL-producing inner arithmetic takes the fallback; non-NULL skips it.
  ExpectExprMatchesInterpreter(
      Coalesce(Arith(ArithOp::kAdd, Col(a_), Col(b_)), LitInt(-1)));
  // Fallback itself may evaluate to NULL.
  ExpectExprMatchesInterpreter(Coalesce(Col(a_), Col(b_)));
  // Nested coalesce.
  ExpectExprMatchesInterpreter(
      Coalesce(Col(a_), Coalesce(Col(b_), LitInt(0))));
}

TEST_F(ExprCompileTest, CompileFailsOnMissingColumn) {
  RowLayout narrow({a_});
  auto prog = ExprProgram::Compile(*Col(s_), narrow, cat_);
  EXPECT_FALSE(prog.ok());
  auto nested = ExprProgram::Compile(*Arith(ArithOp::kAdd, Col(a_), Col(b_)),
                                     narrow, cat_);
  EXPECT_FALSE(nested.ok());
  auto preds = PredicateProgram::Compile(
      {Cmp(Col(a_), CompareOp::kLt, Col(b_))}, narrow, cat_);
  EXPECT_FALSE(preds.ok());
}

TEST_F(ExprCompileTest, EveryCompareOpMatchesInterpreterAcrossTypes) {
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    ExpectPredMatchesInterpreter(Cmp(Col(a_), op, Col(b_)));       // int lane
    ExpectPredMatchesInterpreter(Cmp(Col(x_), op, Col(y_)));       // dbl lane
    ExpectPredMatchesInterpreter(Cmp(Col(a_), op, Col(x_)));       // numeric
    ExpectPredMatchesInterpreter(Cmp(Col(s_), op, LitStr("m")));   // string
    ExpectPredMatchesInterpreter(Cmp(Col(a_), op, Col(s_)));       // mixed
    ExpectPredMatchesInterpreter(Cmp(Col(a_), op, LitInt(3)));
    ExpectPredMatchesInterpreter(Cmp(Col(x_), op, LitInt(2)));     // int lit
    // Bytecode-program operands on either side.
    ExpectPredMatchesInterpreter(
        Cmp(Arith(ArithOp::kMul, Col(a_), LitInt(2)), op, Col(b_)));
    ExpectPredMatchesInterpreter(
        Cmp(Col(x_), op, Arith(ArithOp::kDiv, Col(y_), LitReal(2.0))));
  }
}

TEST_F(ExprCompileTest, NullOperandsCompareFalseUnderEveryOp) {
  Row all_null = {Value::Null(), Value::Null(), Value::Null(), Value::Null(),
                  Value::Str("m")};
  EvalScratch scratch;
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    auto prog =
        PredicateProgram::Compile({Cmp(Col(a_), op, Col(b_))}, layout_, cat_);
    ASSERT_OK(prog);
    // SQL three-valued logic folded to a filter: NULL never passes — not
    // even NULL != NULL or NULL == NULL.
    EXPECT_FALSE(prog->EvalRow(all_null, &scratch));
  }
}

TEST_F(ExprCompileTest, ConjunctionShortCircuitsAndMatchesInterpreter) {
  std::vector<Predicate> preds = {
      Cmp(Col(a_), CompareOp::kGt, LitInt(0)),
      Cmp(Col(x_), CompareOp::kLt, Col(y_)),
      Cmp(Col(s_), CompareOp::kLe, LitStr("zz")),
  };
  auto prog = PredicateProgram::Compile(preds, layout_, cat_);
  ASSERT_OK(prog);
  EvalScratch scratch;
  for (const Row& row : rows_) {
    EXPECT_EQ(EvalConjunction(preds, row, layout_),
              prog->EvalRow(row, &scratch));
  }
  // The empty conjunction is vacuously true (bare-scan fusion relies on it).
  auto empty = PredicateProgram::Compile({}, layout_, cat_);
  ASSERT_OK(empty);
  EXPECT_TRUE(empty->empty());
  EXPECT_TRUE(empty->EvalRow(rows_[0], &scratch));
}

// ---------------------------------------------------------------- env knob

/// Saves and restores one environment variable for the duration of a test
/// (CI runs the suite with AGGVIEW_TEST_* already set; the tests below must
/// observe only their own values).
class ScopedEnv {
 public:
  explicit ScopedEnv(const char* name) : name_(name) {
    const char* ambient = std::getenv(name);
    had_ = ambient != nullptr;
    saved_ = had_ ? ambient : "";
  }
  ~ScopedEnv() {
    if (had_) {
      setenv(name_, saved_.c_str(), /*overwrite=*/1);
    } else {
      unsetenv(name_);
    }
  }
  void Set(const char* value) { setenv(name_, value, /*overwrite=*/1); }
  void Unset() { unsetenv(name_); }

 private:
  const char* name_;
  bool had_ = false;
  std::string saved_;
};

TEST(BackendEnvTest, ParseExecBackendAcceptsExactNamesOnly) {
  ExecBackend out = ExecBackend::kInterpret;
  EXPECT_TRUE(ParseExecBackend("compiled", &out));
  EXPECT_EQ(out, ExecBackend::kCompiled);
  EXPECT_TRUE(ParseExecBackend("interpret", &out));
  EXPECT_EQ(out, ExecBackend::kInterpret);

  out = ExecBackend::kCompiled;
  EXPECT_FALSE(ParseExecBackend(nullptr, &out));
  EXPECT_FALSE(ParseExecBackend("", &out));
  EXPECT_FALSE(ParseExecBackend("COMPILED", &out));
  EXPECT_FALSE(ParseExecBackend("compiled ", &out));
  EXPECT_FALSE(ParseExecBackend("jit", &out));
  // A failed parse leaves the output untouched.
  EXPECT_EQ(out, ExecBackend::kCompiled);
}

TEST(BackendEnvTest, BackendOverrideIsValidated) {
  ScopedEnv env("AGGVIEW_TEST_BACKEND");

  env.Unset();
  EXPECT_EQ(ExecContext::Default().backend, ExecBackend::kInterpret);
  env.Set("compiled");
  EXPECT_EQ(ExecContext::Default().backend, ExecBackend::kCompiled);
  env.Set("interpret");
  EXPECT_EQ(ExecContext::Default().backend, ExecBackend::kInterpret);
  // Garbage falls back to the interpreter instead of crashing or guessing;
  // same validation convention as the numeric knobs.
  env.Set("Compiled");
  EXPECT_EQ(ExecContext::Default().backend, ExecBackend::kInterpret);
  env.Set("fast");
  EXPECT_EQ(ExecContext::Default().backend, ExecBackend::kInterpret);
  env.Set("");
  EXPECT_EQ(ExecContext::Default().backend, ExecBackend::kInterpret);
}

TEST(BackendEnvTest, SharedDefaultsFlowIntoSessionAndServerOptions) {
  ScopedEnv env("AGGVIEW_TEST_BACKEND");
  env.Set("compiled");
  // One consolidated env surface: ExecDefaults::FromEnv feeds the exec
  // context, the session layer and the serving layer alike.
  EXPECT_EQ(ExecDefaults::FromEnv().backend, ExecBackend::kCompiled);
  EXPECT_EQ(SessionOptions::Default().backend, ExecBackend::kCompiled);
  EXPECT_EQ(ServerOptions::Default().backend, ExecBackend::kCompiled);
  env.Unset();
  EXPECT_EQ(SessionOptions::Default().backend, ExecBackend::kInterpret);
  EXPECT_EQ(ServerOptions::Default().backend, ExecBackend::kInterpret);
}

// --------------------------------------------- fused operator boundary suite

std::shared_ptr<const PredicateProgram> MustCompile(
    const std::vector<Predicate>& preds, const RowLayout& layout,
    const ColumnCatalog& cat) {
  auto prog = PredicateProgram::Compile(preds, layout, cat);
  EXPECT_OK(prog);
  return std::make_shared<const PredicateProgram>(std::move(*prog));
}

/// The batch_test.cc scan boundary suite, re-run against the fused
/// scan->filter kernel: same protocol edges, compiled evaluation.
class FusedScanBatchTest : public ::testing::Test {
 protected:
  FusedScanBatchTest() : table_(Schema({{"id", DataType::kInt64}})) {
    id_ = cat_.Add("t.id", DataType::kInt64);
    for (int i = 0; i < 10; ++i) table_.AppendUnchecked({Value::Int(i)});
  }

  ColumnCatalog cat_;
  Table table_;
  ColId id_ = -1;
};

TEST_F(FusedScanBatchTest, ExactMultipleCardinalityHasNoPhantomTailBatch) {
  RowLayout layout({id_});
  IoAccountant io;
  FusedScanFilterOp scan(&table_, layout, MustCompile({}, layout, cat_),
                         MustCompile({}, layout, cat_), layout, &io,
                         /*charge_io=*/true);
  OpStats stats;
  scan.set_stats(&stats);
  ASSERT_OK(scan.Open());

  RowBatch batch(5);
  int64_t rows = 0;
  while (true) {
    auto more = scan.Next(&batch);
    ASSERT_OK(more);
    if (!*more) break;
    EXPECT_FALSE(batch.empty()) << "mid-stream batches are never empty";
    rows += batch.size();
  }
  EXPECT_EQ(rows, 10);
  EXPECT_EQ(stats.batches_produced, 2);
  EXPECT_EQ(stats.next_calls, 3);  // two full batches + end-of-stream

  // Past end-of-stream the operator keeps answering false, safely.
  for (int i = 0; i < 3; ++i) {
    auto more = scan.Next(&batch);
    ASSERT_OK(more);
    EXPECT_FALSE(*more);
    EXPECT_TRUE(batch.empty());
  }
  scan.Close();
}

TEST_F(FusedScanBatchTest, EmptyInputAnswersFalseOnFirstNext) {
  RowLayout layout({id_});
  IoAccountant io;
  FusedScanFilterOp scan(
      &table_, layout,
      MustCompile({Cmp(Col(id_), CompareOp::kLt, LitInt(0))}, layout, cat_),
      MustCompile({}, layout, cat_), layout, &io, /*charge_io=*/true);
  OpStats stats;
  scan.set_stats(&stats);
  ASSERT_OK(scan.Open());
  RowBatch batch(5);
  auto more = scan.Next(&batch);
  ASSERT_OK(more);
  EXPECT_FALSE(*more);
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(stats.batches_produced, 0);
  EXPECT_EQ(stats.rows_produced, 0);
  EXPECT_EQ(stats.input_rows, 10);  // the scan still examined every row
  scan.Close();
}

TEST_F(FusedScanBatchTest, InteriorScanStatsSplitAttributionAcrossNodes) {
  // Fusing a filter node over a scan node keeps per-node attribution: the
  // interior block sees what the scan would have reported, the operator's
  // own block what the filter would have.
  RowLayout layout({id_});
  IoAccountant io;
  FusedScanFilterOp scan(
      &table_, layout,
      MustCompile({Cmp(Col(id_), CompareOp::kGe, LitInt(5))}, layout, cat_),
      MustCompile({Cmp(Col(id_), CompareOp::kGe, LitInt(8))}, layout, cat_),
      layout, &io, /*charge_io=*/true);
  OpStats filter_stats;
  OpStats scan_stats;
  scan.set_stats(&filter_stats);
  scan.set_scan_stats(&scan_stats);
  ASSERT_OK(scan.Open());
  RowBatch batch(1024);
  int64_t rows = 0;
  while (true) {
    auto more = scan.Next(&batch);
    ASSERT_OK(more);
    if (!*more) break;
    rows += batch.size();
  }
  scan.Close();
  EXPECT_EQ(rows, 2);  // ids 8, 9
  EXPECT_EQ(scan_stats.input_rows, 10);    // every row examined
  EXPECT_EQ(scan_stats.rows_produced, 5);  // ids 5..9 pass the scan filter
  EXPECT_EQ(scan_stats.pages_charged, table_.page_count());
  EXPECT_EQ(filter_stats.input_rows, 5);   // rows entering the residual
  EXPECT_EQ(filter_stats.rows_produced, 2);
}

// ------------------------------------------- end-to-end backend equivalence

/// End-to-end: the same optimized plan executed under the compiled backend
/// must fingerprint identically to the interpreter at every batch size and
/// thread count — fused kernels, bytecode fallback operators and the
/// interpreter are interchangeable implementations of the same semantics.
class CompiledBackendTest : public ::testing::Test {
 protected:
  CompiledBackendTest() : db_(MakeEmpDept()) {}

  void CheckBackendInvariant(const std::string& sql) {
    auto query = ParseAndBind(*db_.catalog, sql);
    ASSERT_OK(query);
    auto optimized = OptimizeQueryWithAggViews(*query, OptimizerOptions{});
    ASSERT_OK(optimized);

    auto reference = ExecutePlan(optimized->plan, optimized->query,
                                 ExecContext{});
    ASSERT_OK(reference);
    for (int threads : {1, 8}) {
      for (int batch_size : {1, 2, 3, 1024}) {
        auto rerun = ExecutePlan(optimized->plan, optimized->query,
                                 ExecContext{}
                                     .WithBackend(ExecBackend::kCompiled)
                                     .WithThreads(threads)
                                     .WithBatchSize(batch_size));
        ASSERT_OK(rerun);
        EXPECT_EQ(rerun->Fingerprint(), reference->Fingerprint())
            << "compiled backend at threads=" << threads
            << " batch_size=" << batch_size << " changed the result of:\n"
            << sql;
      }
    }
  }

  EmpDeptFixture db_;
};

TEST_F(CompiledBackendTest, AggregateViewQuery) {
  CheckBackendInvariant(Example1Sql());
}

TEST_F(CompiledBackendTest, InvariantGroupingQuery) {
  CheckBackendInvariant(Example2Sql());
}

TEST_F(CompiledBackendTest, ScalarAggregateOverEmptyInput) {
  // The one synthesized row of a scalar aggregate over zero input must
  // appear exactly once under the fused aggregate kernel too.
  CheckBackendInvariant(
      "select count(*), sum(e.sal) from emp e where e.sal < 0");
}

TEST_F(CompiledBackendTest, GroupByWithHaving) {
  // HAVING runs as a compiled program over the output row in both the fused
  // kernel and the HashAggregateOp fallback.
  CheckBackendInvariant(
      "select e.dno, count(*), avg(e.sal) from emp e "
      "group by e.dno having count(*) > 2");
}

TEST_F(CompiledBackendTest, FilterHeavyConjunction) {
  CheckBackendInvariant(
      "select e.eno, e.sal from emp e "
      "where e.sal > 100 and e.age > 20 and e.age < 60 and e.dno > 0");
}

/// NULL grouping keys placed so they straddle batch boundaries, plus a
/// grouping column whose runtime values mix Int and Real: the fused
/// aggregate's INT64 fast lane must group NULLs together and must migrate to
/// the generic table on the first non-integer key without splitting the
/// 1 == 1.0 group.
class CompiledGroupingEdgeTest : public ::testing::Test {
 protected:
  CompiledGroupingEdgeTest() {
    auto tables = CreateEmpDeptSchema(&catalog_);
    EXPECT_OK(tables);
    tables_ = *tables;

    auto emp = std::make_shared<Table>(catalog_.table(tables_.emp).schema);
    for (int i = 0; i < 18; ++i) {
      // Every third dno NULL; every seventh a Real that equals an Int key.
      Value dno = (i % 3 == 2) ? Value::Null()
                 : (i % 7 == 0) ? Value::Real(1.0 + i % 2)
                                : Value::Int(1 + i % 2);
      emp->AppendUnchecked({Value::Int(i), std::move(dno),
                            Value::Real(100.0 * i), Value::Int(25 + i % 10)});
    }
    catalog_.mutable_table(tables_.emp).stats = ComputeStats(*emp);
    catalog_.mutable_table(tables_.emp).data = emp;
  }

  Catalog catalog_;
  EmpDeptTables tables_;
};

TEST_F(CompiledGroupingEdgeTest, NullAndMixedTypeKeysMatchInterpreter) {
  auto query = ParseAndBind(
      catalog_, "select e.dno, count(*), sum(e.sal) from emp e "
                "group by e.dno");
  ASSERT_OK(query);
  auto optimized = OptimizeQueryWithAggViews(*query, OptimizerOptions{});
  ASSERT_OK(optimized);

  auto reference =
      ExecutePlan(optimized->plan, optimized->query, ExecContext{});
  ASSERT_OK(reference);
  // NULL keys form exactly one group; Int(1)/Real(1.0) form one group.
  ASSERT_EQ(reference->rows.size(), 3u);
  for (int threads : {1, 8}) {
    for (int batch_size : {1, 2, 3, 1024}) {
      auto rerun = ExecutePlan(optimized->plan, optimized->query,
                               ExecContext{}
                                   .WithBackend(ExecBackend::kCompiled)
                                   .WithThreads(threads)
                                   .WithBatchSize(batch_size));
      ASSERT_OK(rerun);
      EXPECT_EQ(rerun->Fingerprint(), reference->Fingerprint())
          << "threads=" << threads << " batch_size=" << batch_size;
    }
  }
}

// ------------------------------------------------------------ observability

TEST(BackendObservabilityTest, ExplainAnalyzeLabelsBackendPerOperator) {
  SessionOptions compiled_opts;
  compiled_opts.backend = ExecBackend::kCompiled;
  Session compiled(compiled_opts);
  auto tables = CreateEmpDeptSchema(&compiled.catalog());
  ASSERT_OK(tables);
  ASSERT_OK(GenerateEmpDeptData(&compiled.catalog(), *tables, {}));
  auto q = compiled.Sql(
      "select e.dno, count(*) from emp e where e.sal > 100 group by e.dno");
  ASSERT_OK(q);
  EXPECT_EQ(q->backend(), ExecBackend::kCompiled);
  auto analyzed = q->ExplainAnalyze();
  ASSERT_OK(analyzed);
  // Every executed node is attributed to a backend under the compiled
  // context, and the fused scan/aggregate path actually compiled.
  EXPECT_NE(analyzed->find("backend=compiled"), std::string::npos)
      << *analyzed;

  Session interpreted{[] {
    SessionOptions o;
    o.backend = ExecBackend::kInterpret;
    return o;
  }()};
  auto tables2 = CreateEmpDeptSchema(&interpreted.catalog());
  ASSERT_OK(tables2);
  ASSERT_OK(GenerateEmpDeptData(&interpreted.catalog(), *tables2, {}));
  auto q2 = interpreted.Sql(
      "select e.dno, count(*) from emp e where e.sal > 100 group by e.dno");
  ASSERT_OK(q2);
  EXPECT_EQ(q2->backend(), ExecBackend::kInterpret);
  auto analyzed2 = q2->ExplainAnalyze();
  ASSERT_OK(analyzed2);
  // The interpreter-only rendering is unchanged: no backend column at all.
  EXPECT_EQ(analyzed2->find("backend="), std::string::npos) << *analyzed2;
}

}  // namespace
}  // namespace aggview
