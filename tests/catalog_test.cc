#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/statistics.h"
#include "common/random.h"
#include "storage/table.h"

namespace aggview {
namespace {

TableDef SimpleTable(const std::string& name) {
  TableDef def;
  def.name = name;
  def.schema = Schema({{"id", DataType::kInt64}, {"v", DataType::kDouble}});
  def.primary_key = {0};
  return def;
}

TEST(CatalogTest, AddAndFind) {
  Catalog catalog;
  auto id = catalog.AddTable(SimpleTable("t"));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(catalog.table(*id).name, "t");
  auto found = catalog.FindTable("t");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *id);
  EXPECT_FALSE(catalog.FindTable("nope").ok());
}

TEST(CatalogTest, RejectsDuplicateNames) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(SimpleTable("t")).ok());
  EXPECT_EQ(catalog.AddTable(SimpleTable("t")).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, RejectsBadPrimaryKey) {
  Catalog catalog;
  TableDef def = SimpleTable("t");
  def.primary_key = {5};
  EXPECT_EQ(catalog.AddTable(std::move(def)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CatalogTest, CoversKey) {
  TableDef def = SimpleTable("t");
  def.unique_keys = {{1}};
  EXPECT_TRUE(def.CoversKey({0}));
  EXPECT_TRUE(def.CoversKey({0, 1}));
  EXPECT_TRUE(def.CoversKey({1}));
  def.unique_keys.clear();
  EXPECT_FALSE(def.CoversKey({1}));
  EXPECT_FALSE(def.CoversKey({}));
}

TEST(CatalogTest, CompositeKeyCoverage) {
  TableDef def;
  def.name = "c";
  def.schema = Schema({{"a", DataType::kInt64},
                       {"b", DataType::kInt64},
                       {"v", DataType::kDouble}});
  def.primary_key = {0, 1};
  EXPECT_FALSE(def.CoversKey({0}));
  EXPECT_TRUE(def.CoversKey({1, 0}));
  EXPECT_TRUE(def.CoversKey({0, 1, 2}));
}

TEST(CatalogTest, ForeignKeyValidation) {
  Catalog catalog;
  auto parent = catalog.AddTable(SimpleTable("parent"));
  TableDef child_def = SimpleTable("child");
  child_def.schema.AddColumn({"pid", DataType::kInt64});
  auto child = catalog.AddTable(std::move(child_def));
  ASSERT_TRUE(parent.ok() && child.ok());

  ForeignKey good;
  good.referencing_table = *child;
  good.referencing_columns = {2};
  good.referenced_table = *parent;
  good.referenced_columns = {0};
  EXPECT_TRUE(catalog.AddForeignKey(good).ok());

  ForeignKey not_a_key = good;
  not_a_key.referenced_columns = {1};  // "v" is not a key of parent
  EXPECT_FALSE(catalog.AddForeignKey(not_a_key).ok());

  ForeignKey arity = good;
  arity.referencing_columns = {2, 0};
  EXPECT_FALSE(catalog.AddForeignKey(arity).ok());
}

TEST(CatalogTest, IsForeignKeyJoin) {
  Catalog catalog;
  auto parent = catalog.AddTable(SimpleTable("parent"));
  TableDef child_def = SimpleTable("child");
  child_def.schema.AddColumn({"pid", DataType::kInt64});
  auto child = catalog.AddTable(std::move(child_def));
  ForeignKey fk;
  fk.referencing_table = *child;
  fk.referencing_columns = {2};
  fk.referenced_table = *parent;
  fk.referenced_columns = {0};
  ASSERT_TRUE(catalog.AddForeignKey(fk).ok());

  EXPECT_TRUE(catalog.IsForeignKeyJoin(*child, {2}, *parent, {0}));
  EXPECT_FALSE(catalog.IsForeignKeyJoin(*child, {0}, *parent, {0}));
  EXPECT_FALSE(catalog.IsForeignKeyJoin(*parent, {0}, *child, {2}));
}

TEST(StatisticsTest, ComputeStats) {
  Table t(Schema({{"id", DataType::kInt64}, {"v", DataType::kDouble},
                  {"s", DataType::kString}}));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.Append({Value::Int(i), Value::Real(i % 3),
                          Value::Str(i % 2 == 0 ? "even" : "odd")})
                    .ok());
  }
  TableStats stats = ComputeStats(t);
  EXPECT_EQ(stats.row_count, 10);
  ASSERT_EQ(stats.columns.size(), 3u);
  EXPECT_EQ(stats.columns[0].distinct, 10);
  EXPECT_EQ(stats.columns[1].distinct, 3);
  EXPECT_EQ(stats.columns[2].distinct, 2);
  EXPECT_TRUE(stats.columns[0].has_range);
  EXPECT_DOUBLE_EQ(stats.columns[0].min, 0.0);
  EXPECT_DOUBLE_EQ(stats.columns[0].max, 9.0);
  EXPECT_FALSE(stats.columns[2].has_range);
}

TEST(StatisticsTest, ComputeStatsStringMinMax) {
  Table t(Schema({{"s", DataType::kString}}));
  for (const char* s : {"pear", "apple", "quince", "banana", "apple"}) {
    t.AppendUnchecked({Value::Str(s)});
  }
  TableStats stats = ComputeStats(t);
  ASSERT_EQ(stats.columns.size(), 1u);
  EXPECT_TRUE(stats.columns[0].has_str_range);
  EXPECT_EQ(stats.columns[0].min_str, "apple");
  EXPECT_EQ(stats.columns[0].max_str, "quince");
  EXPECT_FALSE(stats.columns[0].has_range);
  EXPECT_EQ(stats.columns[0].null_count, 0);
}

TEST(StatisticsTest, ComputeStatsSkipsNullsInRanges) {
  Table t(Schema({{"v", DataType::kDouble}, {"s", DataType::kString}}));
  // NULLs must not contaminate min/max on either side: without the skip, a
  // NULL would coerce to 0.0 and drag the numeric min below 5.0.
  t.AppendUnchecked({Value::Real(7.0), Value::Null()});
  t.AppendUnchecked({Value::Null(), Value::Str("kiwi")});
  t.AppendUnchecked({Value::Real(5.0), Value::Str("mango")});
  t.AppendUnchecked({Value::Null(), Value::Null()});
  TableStats stats = ComputeStats(t);
  EXPECT_EQ(stats.row_count, 4);
  EXPECT_TRUE(stats.columns[0].has_range);
  EXPECT_DOUBLE_EQ(stats.columns[0].min, 5.0);
  EXPECT_DOUBLE_EQ(stats.columns[0].max, 7.0);
  EXPECT_EQ(stats.columns[0].null_count, 2);
  EXPECT_TRUE(stats.columns[1].has_str_range);
  EXPECT_EQ(stats.columns[1].min_str, "kiwi");
  EXPECT_EQ(stats.columns[1].max_str, "mango");
  EXPECT_EQ(stats.columns[1].null_count, 2);
}

TEST(StatisticsTest, ComputeStatsAllNullColumn) {
  Table t(Schema({{"v", DataType::kDouble}}));
  for (int i = 0; i < 3; ++i) t.AppendUnchecked({Value::Null()});
  TableStats stats = ComputeStats(t);
  // No non-NULL value exists, so no range of either kind may be claimed.
  EXPECT_FALSE(stats.columns[0].has_range);
  EXPECT_FALSE(stats.columns[0].has_str_range);
  EXPECT_EQ(stats.columns[0].null_count, 3);
}

TEST(StatisticsTest, EquiDepthHistogram) {
  Table t(Schema({{"v", DataType::kDouble}}));
  // Bimodal: 900 values near 0, 100 values near 1000 — uniform
  // interpolation would be badly wrong here.
  for (int i = 0; i < 900; ++i) t.AppendUnchecked({Value::Real(i * 0.001)});
  for (int i = 0; i < 100; ++i) t.AppendUnchecked({Value::Real(1000.0 + i)});
  TableStats stats = ComputeStats(t);
  const Histogram& h = stats.columns[0].histogram;
  ASSERT_FALSE(h.empty());
  // ~90% of rows are below 1.0.
  EXPECT_NEAR(h.FractionBelow(1.0), 0.9, 0.05);
  // Uniform interpolation would have claimed ~0.1% here.
  EXPECT_GT(h.FractionBelow(500.0), 0.85);
  EXPECT_DOUBLE_EQ(h.FractionBelow(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.FractionBelow(1e9), 1.0);
}

TEST(StatisticsTest, HistogramMonotone) {
  Table t(Schema({{"v", DataType::kInt64}}));
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    t.AppendUnchecked({Value::Int(rng.Zipf(1000, 1.1))});
  }
  TableStats stats = ComputeStats(t);
  const Histogram& h = stats.columns[0].histogram;
  ASSERT_FALSE(h.empty());
  double prev = -1.0;
  for (double x = 0.0; x <= 1001.0; x += 13.0) {
    double f = h.FractionBelow(x);
    EXPECT_GE(f, prev - 1e-12);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
}

TEST(StatisticsTest, HistogramAccurateOnSkewedData) {
  Table t(Schema({{"v", DataType::kInt64}}));
  Rng rng(7);
  std::vector<int64_t> values;
  for (int i = 0; i < 20000; ++i) {
    int64_t v = rng.Zipf(10000, 1.0);
    values.push_back(v);
    t.AppendUnchecked({Value::Int(v)});
  }
  TableStats stats = ComputeStats(t);
  const Histogram& h = stats.columns[0].histogram;
  for (int64_t cut : {5, 50, 500, 5000}) {
    double actual = 0;
    for (int64_t v : values) {
      if (v < cut) actual += 1;
    }
    actual /= static_cast<double>(values.size());
    EXPECT_NEAR(h.FractionBelow(static_cast<double>(cut)), actual, 0.05)
        << "cut " << cut;
  }
}

TEST(StatisticsTest, EmptyTable) {
  Table t(Schema({{"id", DataType::kInt64}}));
  TableStats stats = ComputeStats(t);
  EXPECT_EQ(stats.row_count, 0);
  EXPECT_EQ(stats.columns[0].distinct, 1);  // clamped to avoid div-by-zero
  EXPECT_FALSE(stats.columns[0].has_range);
}

}  // namespace
}  // namespace aggview
