#include <gtest/gtest.h>

#include <cmath>

#include "types/data_type.h"
#include "types/schema.h"
#include "types/value.h"

namespace aggview {
namespace {

TEST(DataTypeTest, Names) {
  EXPECT_STREQ(DataTypeName(DataType::kInt64), "INT64");
  EXPECT_STREQ(DataTypeName(DataType::kDouble), "DOUBLE");
  EXPECT_STREQ(DataTypeName(DataType::kString), "STRING");
}

TEST(DataTypeTest, Widths) {
  EXPECT_EQ(DataTypeWidth(DataType::kInt64), 8);
  EXPECT_EQ(DataTypeWidth(DataType::kDouble), 8);
  EXPECT_EQ(DataTypeWidth(DataType::kString), 24);
}

TEST(DataTypeTest, Numeric) {
  EXPECT_TRUE(IsNumeric(DataType::kInt64));
  EXPECT_TRUE(IsNumeric(DataType::kDouble));
  EXPECT_FALSE(IsNumeric(DataType::kString));
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Int(3).is_int());
  EXPECT_TRUE(Value::Real(3.5).is_double());
  EXPECT_TRUE(Value::Str("x").is_string());
  EXPECT_EQ(Value::Int(3).AsInt(), 3);
  EXPECT_DOUBLE_EQ(Value::Real(3.5).AsDouble(), 3.5);
  EXPECT_EQ(Value::Str("x").AsString(), "x");
}

TEST(ValueTest, NumericPromotionInComparison) {
  EXPECT_EQ(Value::Int(3).Compare(Value::Real(3.0)), 0);
  EXPECT_LT(Value::Int(3).Compare(Value::Real(3.5)), 0);
  EXPECT_GT(Value::Real(4.0).Compare(Value::Int(3)), 0);
}

TEST(ValueTest, IntComparisonExactAtLargeMagnitudes) {
  // Same-type int comparison must not go through double.
  int64_t big = (int64_t{1} << 62) + 1;
  EXPECT_GT(Value::Int(big).Compare(Value::Int(big - 1)), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::Str("abc").Compare(Value::Str("abd")), 0);
  EXPECT_EQ(Value::Str("abc"), Value::Str("abc"));
}

TEST(ValueTest, Ordering) {
  EXPECT_TRUE(Value::Int(1) < Value::Int(2));
  EXPECT_FALSE(Value::Int(2) < Value::Int(2));
}

TEST(ValueTest, HashConsistentWithEquality) {
  // 3 (int) == 3.0 (double), so their hashes must match.
  EXPECT_EQ(Value::Int(3).Hash(), Value::Real(3.0).Hash());
  EXPECT_EQ(Value::Str("q").Hash(), Value::Str("q").Hash());
}

TEST(ValueTest, AsNumericPoisonsInsteadOfCrashing) {
  EXPECT_DOUBLE_EQ(Value::Int(3).AsNumeric(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Real(3.5).AsNumeric(), 3.5);
  EXPECT_TRUE(std::isnan(Value::Str("x").AsNumeric()));
  EXPECT_TRUE(std::isnan(Value::Null().AsNumeric()));
}

TEST(ValueTest, CheckedNumericReportsNonNumeric) {
  auto ok = Value::Int(7).CheckedNumeric();
  ASSERT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ(*ok, 7.0);
  auto bad = Value::Str("x").CheckedNumeric();
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("no numeric view"), std::string::npos);
  EXPECT_FALSE(Value::Null().CheckedNumeric().ok());
}

TEST(ValueTest, MixedTypeCompareIsDeterministicTotalOrder) {
  // String vs numeric is a caller bug, but the fallback order must stay
  // total and antisymmetric so sorting/grouping cannot corrupt memory.
  EXPECT_GT(Value::Str("x").Compare(Value::Int(3)), 0);
  EXPECT_LT(Value::Int(3).Compare(Value::Str("x")), 0);
  EXPECT_LT(Value::Real(1e18).Compare(Value::Str("")), 0);
}

TEST(ValueTest, CheckedCompareReportsMixedTypes) {
  auto ok = Value::Int(2).CheckedCompare(Value::Real(3.0));
  ASSERT_TRUE(ok.ok());
  EXPECT_LT(*ok, 0);
  auto bad = Value::Str("x").CheckedCompare(Value::Int(1));
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("string vs numeric"),
            std::string::npos);
  // NULL keeps its total-order position without an error.
  EXPECT_TRUE(Value::Null().CheckedCompare(Value::Str("x")).ok());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Str("hi").ToString(), "'hi'");
  EXPECT_EQ(Value::Real(1.5).ToString(), "1.5");
}

TEST(RowTest, HashAndEquality) {
  Row a = {Value::Int(1), Value::Str("x")};
  Row b = {Value::Int(1), Value::Str("x")};
  Row c = {Value::Int(2), Value::Str("x")};
  EXPECT_EQ(HashRow(a), HashRow(b));
  EXPECT_TRUE(RowEq{}(a, b));
  EXPECT_FALSE(RowEq{}(a, c));
  EXPECT_FALSE(RowEq{}(a, Row{Value::Int(1)}));
}

TEST(SchemaTest, FindColumn) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kString}});
  EXPECT_EQ(s.FindColumn("a"), 0);
  EXPECT_EQ(s.FindColumn("b"), 1);
  EXPECT_EQ(s.FindColumn("c"), -1);
}

TEST(SchemaTest, RowWidth) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kString}});
  EXPECT_EQ(s.RowWidth(), 8 + 24);
}

TEST(SchemaTest, CustomWidth) {
  Schema s({ColumnSpec("name", DataType::kString, 64)});
  EXPECT_EQ(s.RowWidth(), 64);
}

TEST(SchemaTest, ToString) {
  Schema s({{"a", DataType::kInt64}});
  EXPECT_EQ(s.ToString(), "a:INT64");
}

}  // namespace
}  // namespace aggview
