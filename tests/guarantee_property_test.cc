#include <gtest/gtest.h>

#include "common/random.h"
#include "test_util.h"

namespace aggview {
namespace {

/// The paper's central promise (Section 5): "our cost-based optimization
/// algorithm is guaranteed to pick a plan that is no worse than the
/// traditional optimization algorithm." Verified over randomized catalogs,
/// data distributions, and queries.
class GuaranteeProperty : public ::testing::TestWithParam<int> {};

std::string RandomViewQuery(Rng* rng) {
  const char* aggs[] = {"avg", "sum", "min", "max", "count"};
  std::string agg = aggs[rng->Uniform(0, 4)];
  std::string arg = rng->Chance(0.5) ? "e2.sal" : "e2.age";
  std::string view_filter =
      rng->Chance(0.4)
          ? " where e2.age > " + std::to_string(rng->Uniform(20, 50))
          : "";
  std::string sql = "create view v (dno, x) as select e2.dno, " + agg + "(" +
                    arg + ") from emp e2" + view_filter +
                    " group by e2.dno;\n";
  std::string cmp = rng->Chance(0.5) ? ">" : "<";
  sql += "select e1.sal from emp e1, v where e1.dno = v.dno and e1.sal " +
         cmp + " v.x";
  if (rng->Chance(0.6)) {
    sql += " and e1.age < " + std::to_string(rng->Uniform(20, 60));
  }
  return sql;
}

std::string RandomGroupByQuery(Rng* rng) {
  std::string sql =
      "select e.dno, sum(e.sal), count(*) from emp e, dept d "
      "where e.dno = d.dno";
  if (rng->Chance(0.7)) {
    sql += " and d.budget < " +
           std::to_string(rng->Uniform(200'000, 4'000'000));
  }
  sql += " group by e.dno";
  if (rng->Chance(0.4)) {
    sql += " having count(*) > " + std::to_string(rng->Uniform(1, 5));
  }
  return sql;
}

TEST_P(GuaranteeProperty, ExtendedNeverWorseThanTraditional) {
  int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 104729 + 7);

  EmpDeptOptions data;
  // Vary size across three regimes: in-memory, boundary, spilling.
  int64_t regimes[] = {500, 20'000, 70'000};
  data.num_employees = regimes[seed % 3] + rng.Uniform(0, 500);
  data.num_departments = 5 + rng.Uniform(0, 5'000);
  data.young_fraction = rng.UniformReal(0.01, 0.4);
  data.seed = static_cast<uint64_t>(seed);
  EmpDeptFixture fixture = MakeEmpDept(data);

  for (int i = 0; i < 4; ++i) {
    std::string sql =
        rng.Chance(0.5) ? RandomViewQuery(&rng) : RandomGroupByQuery(&rng);
    SCOPED_TRACE(sql);
    auto query = ParseAndBind(*fixture.catalog, sql);
    ASSERT_OK(query);

    auto traditional = OptimizeTraditional(*query);
    ASSERT_OK(traditional);
    auto extended = OptimizeQueryWithAggViews(*query, OptimizerOptions{});
    ASSERT_OK(extended);

    EXPECT_LE(extended->plan->cost, traditional->plan->cost)
        << "guarantee violated at seed " << seed;

    // Restricting the search space can only cost plan quality, never
    // correctness, and never beats the full configuration.
    OptimizerOptions k1;
    k1.max_pullup = 1;
    auto limited = OptimizeQueryWithAggViews(*query, k1);
    ASSERT_OK(limited);
    EXPECT_LE(limited->plan->cost, traditional->plan->cost);
    EXPECT_LE(extended->plan->cost, limited->plan->cost + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GuaranteeProperty, ::testing::Range(0, 12));

/// Monotonicity of instrumentation: wider search spaces consider at least
/// as many joins.
TEST(GuaranteeCounters, SearchSpaceGrowsWithOptions) {
  EmpDeptFixture fixture = MakeEmpDept();
  auto query = ParseAndBind(*fixture.catalog, R"sql(
create view v (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
select e1.sal from emp e1, dept d, v
where e1.dno = v.dno and e1.sal > v.asal and e1.dno = d.dno
)sql");
  ASSERT_OK(query);

  auto traditional = OptimizeTraditional(*query);
  ASSERT_OK(traditional);
  OptimizerOptions k1;
  k1.max_pullup = 1;
  k1.include_traditional_alternative = false;
  auto limited = OptimizeQueryWithAggViews(*query, k1);
  ASSERT_OK(limited);
  OptimizerOptions k2;
  k2.max_pullup = 2;
  k2.include_traditional_alternative = false;
  auto full = OptimizeQueryWithAggViews(*query, k2);
  ASSERT_OK(full);

  EXPECT_LT(traditional->counters.joins_considered,
            limited->counters.joins_considered);
  EXPECT_LE(limited->counters.joins_considered,
            full->counters.joins_considered);
}

}  // namespace
}  // namespace aggview
