#include <gtest/gtest.h>

#include "stats/estimator.h"
#include "test_util.h"

namespace aggview {
namespace {

class EstimatorTest : public ::testing::Test {
 protected:
  EstimatorTest() : fixture_(MakeEmpDept(Options())), q_(fixture_.catalog.get()) {
    e_ = q_.AddRangeVar(fixture_.tables.emp, "e");
    d_ = q_.AddRangeVar(fixture_.tables.dept, "d");
    eno_ = q_.range_var(e_).columns[0];
    e_dno_ = q_.range_var(e_).columns[1];
    sal_ = q_.range_var(e_).columns[2];
    age_ = q_.range_var(e_).columns[3];
    d_dno_ = q_.range_var(d_).columns[0];
  }

  static EmpDeptOptions Options() {
    EmpDeptOptions o;
    o.num_employees = 1000;
    o.num_departments = 50;
    return o;
  }

  EmpDeptFixture fixture_;
  Query q_;
  int e_, d_;
  ColId eno_, e_dno_, sal_, age_, d_dno_;
};

TEST_F(EstimatorTest, BaseRelMatchesCatalogStats) {
  RelEstimate est = Estimator::BaseRel(q_, e_);
  EXPECT_DOUBLE_EQ(est.rows, 1000.0);
  EXPECT_DOUBLE_EQ(est.Find(eno_)->distinct, 1000.0);
  EXPECT_TRUE(est.Find(age_)->has_range);
}

TEST_F(EstimatorTest, EqualitySelectivityIsOneOverDistinct) {
  RelEstimate est = Estimator::BaseRel(q_, e_);
  double d = est.Find(e_dno_)->distinct;
  Predicate p = Cmp(Col(e_dno_), CompareOp::kEq, LitInt(3));
  EXPECT_NEAR(Estimator::Selectivity(p, est), 1.0 / d, 1e-12);
}

TEST_F(EstimatorTest, RangeSelectivityUsesMinMax) {
  RelEstimate est = Estimator::BaseRel(q_, e_);
  const ColEstimate* age = est.Find(age_);
  ASSERT_TRUE(age->has_range);
  Predicate below_min = Cmp(Col(age_), CompareOp::kLt, LitInt(0));
  EXPECT_DOUBLE_EQ(Estimator::Selectivity(below_min, est), 0.0);
  Predicate above_max = Cmp(Col(age_), CompareOp::kLt, LitInt(200));
  EXPECT_DOUBLE_EQ(Estimator::Selectivity(above_max, est), 1.0);
  Predicate mid = Cmp(Col(age_), CompareOp::kLt, LitInt(22));
  double sel = Estimator::Selectivity(mid, est);
  EXPECT_GT(sel, 0.0);
  EXPECT_LT(sel, 0.5);
}

TEST_F(EstimatorTest, DefaultSelectivityForOpaquePredicates) {
  RelEstimate est = Estimator::BaseRel(q_, e_);
  // col < col has no analyzable shape.
  Predicate p = Cmp(Col(sal_), CompareOp::kLt, Col(age_));
  EXPECT_DOUBLE_EQ(Estimator::Selectivity(p, est), kDefaultSelectivity);
}

TEST_F(EstimatorTest, FilterScalesRowsAndCapsDistinct) {
  RelEstimate est = Estimator::BaseRel(q_, e_);
  RelEstimate filtered =
      Estimator::ApplyFilter(est, {Cmp(Col(e_dno_), CompareOp::kEq, LitInt(1))});
  EXPECT_NEAR(filtered.rows, 1000.0 / est.Find(e_dno_)->distinct, 1e-9);
  EXPECT_DOUBLE_EQ(filtered.Find(e_dno_)->distinct, 1.0);
  // Every distinct count is capped by the row count.
  for (const auto& [col, cs] : filtered.cols) {
    EXPECT_LE(cs.distinct, std::max(filtered.rows, 1.0));
  }
}

TEST_F(EstimatorTest, FilterNarrowsRange) {
  RelEstimate est = Estimator::BaseRel(q_, e_);
  RelEstimate filtered =
      Estimator::ApplyFilter(est, {Cmp(Col(age_), CompareOp::kLt, LitInt(22))});
  EXPECT_LE(filtered.Find(age_)->max, 22.0);
}

TEST_F(EstimatorTest, EquiJoinUsesLargerDistinct) {
  RelEstimate emp = Estimator::BaseRel(q_, e_);
  RelEstimate dept = Estimator::BaseRel(q_, d_);
  RelEstimate joined = Estimator::Join(emp, dept, {EqCols(e_dno_, d_dno_)});
  double expected = emp.rows * dept.rows /
                    std::max(emp.Find(e_dno_)->distinct,
                             dept.Find(d_dno_)->distinct);
  EXPECT_NEAR(joined.rows, expected, 1e-6);
  // FK join: every employee matches exactly one department.
  EXPECT_NEAR(joined.rows, 1000.0, 1e-6);
}

TEST_F(EstimatorTest, CrossJoinMultiplies) {
  RelEstimate emp = Estimator::BaseRel(q_, e_);
  RelEstimate dept = Estimator::BaseRel(q_, d_);
  RelEstimate cross = Estimator::Join(emp, dept, {});
  EXPECT_DOUBLE_EQ(cross.rows, emp.rows * dept.rows);
}

TEST_F(EstimatorTest, CardenasGroups) {
  // d >= n: every row its own group.
  EXPECT_DOUBLE_EQ(Estimator::CardenasGroups(100, 1000), 100.0);
  // d << n: close to d.
  EXPECT_NEAR(Estimator::CardenasGroups(10000, 10), 10.0, 1e-3);
  // Monotone in both arguments.
  EXPECT_LE(Estimator::CardenasGroups(100, 50),
            Estimator::CardenasGroups(200, 50) + 1e-9);
  EXPECT_LE(Estimator::CardenasGroups(100, 20),
            Estimator::CardenasGroups(100, 50) + 1e-9);
  EXPECT_DOUBLE_EQ(Estimator::CardenasGroups(0, 50), 0.0);
}

TEST_F(EstimatorTest, GroupByEstimation) {
  RelEstimate emp = Estimator::BaseRel(q_, e_);
  ColId out = q_.columns().Add("avg(e.sal)", DataType::kDouble);
  GroupBySpec gb;
  gb.grouping = {e_dno_};
  gb.aggregates = {{AggKind::kAvg, {sal_}, out}};
  RelEstimate grouped = Estimator::GroupBy(emp, gb);
  EXPECT_NEAR(grouped.rows, 50.0, 1.0);  // one group per department
  const ColEstimate* avg = grouped.Find(out);
  ASSERT_NE(avg, nullptr);
  EXPECT_TRUE(avg->has_range);  // inherits the salary range
  EXPECT_GE(avg->min, 20'000.0 - 1.0);
}

TEST_F(EstimatorTest, GroupByWithHavingFilters) {
  RelEstimate emp = Estimator::BaseRel(q_, e_);
  ColId out = q_.columns().Add("avg(e.sal)", DataType::kDouble);
  GroupBySpec gb;
  gb.grouping = {e_dno_};
  gb.aggregates = {{AggKind::kAvg, {sal_}, out}};
  GroupBySpec with_having = gb;
  with_having.having = {Cmp(Col(out), CompareOp::kGt, LitReal(1e9))};
  RelEstimate plain = Estimator::GroupBy(emp, gb);
  RelEstimate filtered = Estimator::GroupBy(emp, with_having);
  EXPECT_LT(filtered.rows, plain.rows);
}

TEST_F(EstimatorTest, EmptyGroupingIsScalarAggregate) {
  RelEstimate emp = Estimator::BaseRel(q_, e_);
  ColId out = q_.columns().Add("count(*)", DataType::kInt64);
  GroupBySpec gb;
  gb.aggregates = {{AggKind::kCountStar, {}, out}};
  RelEstimate grouped = Estimator::GroupBy(emp, gb);
  EXPECT_DOUBLE_EQ(grouped.rows, 1.0);
}

TEST_F(EstimatorTest, HistogramTracksBimodalDistribution) {
  // 2% of employees aged 18..21, the rest 22..65: a uniform min/max
  // interpolation would claim (22-18)/(65-18) = 8.5% for age < 22; the
  // equi-depth histogram must stay near the true 2%.
  EmpDeptOptions options;
  options.num_employees = 20'000;
  options.num_departments = 100;
  options.young_fraction = 0.02;
  EmpDeptFixture bimodal = MakeEmpDept(options);
  Query q(bimodal.catalog.get());
  int e = q.AddRangeVar(bimodal.tables.emp, "e");
  ColId age = q.range_var(e).columns[3];
  RelEstimate est = Estimator::BaseRel(q, e);
  double sel = Estimator::Selectivity(
      Cmp(Col(age), CompareOp::kLt, LitInt(22)), est);
  EXPECT_GT(sel, 0.005);
  EXPECT_LT(sel, 0.05);  // far below the uniform 8.5%
}

TEST_F(EstimatorTest, HistogramConditionsOnNarrowedRange) {
  RelEstimate est = Estimator::BaseRel(q_, e_);
  // First narrow to age < 40, then ask about age < 30 within that.
  RelEstimate narrowed =
      Estimator::ApplyFilter(est, {Cmp(Col(age_), CompareOp::kLt, LitInt(40))});
  double sel = Estimator::Selectivity(
      Cmp(Col(age_), CompareOp::kLt, LitInt(30)), narrowed);
  // Within the <40 population, <30 selects roughly half — much more than
  // the unconditioned fraction.
  double uncond = Estimator::Selectivity(
      Cmp(Col(age_), CompareOp::kLt, LitInt(30)), est);
  EXPECT_GT(sel, uncond);
  EXPECT_LE(sel, 1.0);
}

TEST_F(EstimatorTest, GroupRowsNeverExceedInput) {
  RelEstimate emp = Estimator::BaseRel(q_, e_);
  GroupBySpec gb;
  gb.grouping = {eno_, e_dno_, sal_};  // huge key space
  RelEstimate grouped = Estimator::GroupBy(emp, gb);
  EXPECT_LE(grouped.rows, emp.rows + 1e-9);
}

TEST_F(EstimatorTest, StaleEstimateIsRejectedAfterStatsMutation) {
  // ColEstimate::histogram points into catalog-owned TableStats; any stats
  // mutation may reallocate that storage. CheckFresh is the enforcement of
  // that lifetime contract: an estimate built before a mutation must fail
  // loudly instead of dereferencing a possibly-dangling histogram.
  RelEstimate est = Estimator::BaseRel(q_, e_);
  EXPECT_EQ(est.stats_epoch, fixture_.catalog->stats_epoch());
  EXPECT_OK(Estimator::CheckFresh(est, *fixture_.catalog));

  // mutable_table bumps the stats epoch (it hands out writable stats).
  (void)fixture_.catalog->mutable_table(fixture_.tables.emp);
  Status stale = Estimator::CheckFresh(est, *fixture_.catalog);
  EXPECT_FALSE(stale.ok());
  EXPECT_NE(stale.ToString().find("stale RelEstimate"), std::string::npos);

  // Rebuilding from the current statistics is the documented remedy.
  RelEstimate fresh = Estimator::BaseRel(q_, e_);
  EXPECT_OK(Estimator::CheckFresh(fresh, *fixture_.catalog));
}

TEST_F(EstimatorTest, DerivedEstimatesCarryTheStatsEpoch) {
  RelEstimate emp = Estimator::BaseRel(q_, e_);
  RelEstimate dept = Estimator::BaseRel(q_, d_);
  ASSERT_GE(emp.stats_epoch, 0);

  RelEstimate filtered = Estimator::ApplyFilter(
      emp, {Cmp(Col(age_), CompareOp::kLt, LitInt(22))});
  EXPECT_EQ(filtered.stats_epoch, emp.stats_epoch);

  RelEstimate joined =
      Estimator::Join(filtered, dept, {EqCols(e_dno_, d_dno_)});
  EXPECT_EQ(joined.stats_epoch, emp.stats_epoch);

  GroupBySpec gb;
  gb.grouping = {e_dno_};
  RelEstimate grouped = Estimator::GroupBy(joined, gb);
  EXPECT_EQ(grouped.stats_epoch, emp.stats_epoch);

  // Derived estimates are stale too once the catalog moves on.
  fixture_.catalog->BumpStatsEpoch();
  EXPECT_FALSE(Estimator::CheckFresh(grouped, *fixture_.catalog).ok());

  // An estimate with no catalog-owned state is always fresh.
  RelEstimate synthetic;
  EXPECT_OK(Estimator::CheckFresh(synthetic, *fixture_.catalog));
}

}  // namespace
}  // namespace aggview
