#include <gtest/gtest.h>

#include "optimizer/join_enumerator.h"
#include "test_util.h"

namespace aggview {
namespace {

/// Counts plan nodes of a given kind in a plan tree.
int CountNodes(const PlanPtr& plan, PlanNode::Kind kind) {
  if (plan == nullptr) return 0;
  int n = (plan->kind == kind) ? 1 : 0;
  return n + CountNodes(plan->left, kind) + CountNodes(plan->right, kind);
}

/// True when some GroupBy node has a Join above it (early aggregation).
bool HasGroupByBelowJoin(const PlanPtr& plan, bool under_join = false) {
  if (plan == nullptr) return false;
  if (plan->kind == PlanNode::Kind::kGroupBy && under_join) return true;
  bool join = under_join || plan->kind == PlanNode::Kind::kJoin;
  return HasGroupByBelowJoin(plan->left, join) ||
         HasGroupByBelowJoin(plan->right, join);
}

class EnumeratorTest : public ::testing::Test {
 protected:
  EnumeratorTest() : fixture_(MakeEmpDept(Options())), q_(fixture_.catalog.get()) {}

  static EmpDeptOptions Options() {
    EmpDeptOptions o;
    o.num_employees = 90'000;  // emp spans hundreds of pages: IO matters
    o.num_departments = 2'000;
    return o;
  }

  BlockRel ScanRel(int rel_id) {
    BlockRel r;
    r.name = q_.range_var(rel_id).alias;
    r.scan_rel = rel_id;
    return r;
  }

  EmpDeptFixture fixture_;
  Query q_;
};

TEST_F(EnumeratorTest, SingleRelationBlock) {
  int e = q_.AddRangeVar(fixture_.tables.emp, "e");
  q_.base_rels() = {e};
  ColId eno = q_.range_var(e).columns[0];
  q_.select_list() = {eno};

  BlockSpec block;
  block.rels = {ScanRel(e)};
  block.needed_output = {eno};
  EnumerationCounters counters;
  auto plan = OptimizeBlock(q_, &q_.columns(), block, EnumeratorOptions{},
                            &counters);
  ASSERT_OK(plan);
  EXPECT_EQ((*plan)->kind, PlanNode::Kind::kScan);
  EXPECT_EQ(counters.subsets_stored, 1);
}

TEST_F(EnumeratorTest, TwoWayJoinPicksHashForEquiJoin) {
  int e = q_.AddRangeVar(fixture_.tables.emp, "e");
  int d = q_.AddRangeVar(fixture_.tables.dept, "d");
  q_.base_rels() = {e, d};
  ColId e_dno = q_.range_var(e).columns[1];
  ColId d_dno = q_.range_var(d).columns[0];
  q_.select_list() = {e_dno};

  BlockSpec block;
  block.rels = {ScanRel(e), ScanRel(d)};
  block.predicates = {EqCols(e_dno, d_dno)};
  block.needed_output = {e_dno};
  auto plan = OptimizeBlock(q_, &q_.columns(), block, EnumeratorOptions{}, nullptr);
  ASSERT_OK(plan);
  EXPECT_EQ(CountNodes(*plan, PlanNode::Kind::kJoin), 1);
}

TEST_F(EnumeratorTest, LocalPredicatesFoldIntoScans) {
  int e = q_.AddRangeVar(fixture_.tables.emp, "e");
  int d = q_.AddRangeVar(fixture_.tables.dept, "d");
  q_.base_rels() = {e, d};
  ColId e_dno = q_.range_var(e).columns[1];
  ColId age = q_.range_var(e).columns[3];
  ColId d_dno = q_.range_var(d).columns[0];
  q_.select_list() = {e_dno};

  BlockSpec block;
  block.rels = {ScanRel(e), ScanRel(d)};
  block.predicates = {EqCols(e_dno, d_dno),
                      Cmp(Col(age), CompareOp::kLt, LitInt(22))};
  block.needed_output = {e_dno};
  auto plan = OptimizeBlock(q_, &q_.columns(), block, EnumeratorOptions{}, nullptr);
  ASSERT_OK(plan);
  // The age predicate must be applied at a scan, not at the join.
  std::function<bool(const PlanPtr&)> scan_has_filter =
      [&](const PlanPtr& p) -> bool {
    if (p == nullptr) return false;
    if (p->kind == PlanNode::Kind::kScan && !p->scan_filter.empty()) return true;
    return scan_has_filter(p->left) || scan_has_filter(p->right);
  };
  EXPECT_TRUE(scan_has_filter(*plan));
}

TEST_F(EnumeratorTest, DpMatchesBruteForceOnChainQuery) {
  // Four-relation chain over dept/emp copies; greedy off, no group-by: the
  // DP must find the cheapest left-deep order, verified by brute force.
  int r0 = q_.AddRangeVar(fixture_.tables.dept, "a");
  int r1 = q_.AddRangeVar(fixture_.tables.emp, "b");
  int r2 = q_.AddRangeVar(fixture_.tables.dept, "c");
  int r3 = q_.AddRangeVar(fixture_.tables.emp, "d");
  q_.base_rels() = {r0, r1, r2, r3};
  ColId a_dno = q_.range_var(r0).columns[0];
  ColId b_dno = q_.range_var(r1).columns[1];
  ColId b_eno = q_.range_var(r1).columns[0];
  ColId c_dno = q_.range_var(r2).columns[0];
  ColId d_eno = q_.range_var(r3).columns[0];
  q_.select_list() = {a_dno};

  std::vector<Predicate> preds = {EqCols(a_dno, b_dno), EqCols(b_dno, c_dno),
                                  EqCols(b_eno, d_eno)};
  BlockSpec block;
  block.rels = {ScanRel(r0), ScanRel(r1), ScanRel(r2), ScanRel(r3)};
  block.predicates = preds;
  block.needed_output = {a_dno};

  EnumeratorOptions opts;
  opts.greedy_aggregation = false;
  auto dp_plan = OptimizeBlock(q_, &q_.columns(), block, opts, nullptr);
  ASSERT_OK(dp_plan);

  // Brute force over all 24 left-deep permutations, with the DP's exact
  // projection policy (keep select columns + columns of not-yet-applied
  // predicates).
  PlanBuilder builder(q_);
  auto needed_for = [&](const std::set<ColId>& have) {
    std::set<ColId> needed = {a_dno};
    for (const Predicate& p : preds) {
      if (!p.BoundBy(have)) {
        for (ColId c : p.Columns()) needed.insert(c);
      }
    }
    return needed;
  };
  std::vector<int> rels = {r0, r1, r2, r3};
  std::sort(rels.begin(), rels.end());
  double best = 1e300;
  do {
    // Mirror the DP's System-R restriction: only orders whose every prefix
    // extension shares a predicate with the prefix (cross products allowed
    // only when no relation connects).
    bool reachable = true;
    for (size_t i = 1; i < rels.size() && reachable; ++i) {
      std::set<ColId> prefix_cols;
      for (size_t k = 0; k < i; ++k) {
        auto cs = q_.range_var(rels[k]).ColumnSet();
        prefix_cols.insert(cs.begin(), cs.end());
      }
      auto connects = [&](int rel) {
        for (const Predicate& p : preds) {
          if (p.References(prefix_cols) &&
              p.References(q_.range_var(rel).ColumnSet())) {
            return true;
          }
        }
        return false;
      };
      bool any_connected = false;
      for (size_t k = i; k < rels.size(); ++k) {
        if (connects(rels[k])) any_connected = true;
      }
      if (any_connected && !connects(rels[i])) reachable = false;
    }
    if (!reachable) continue;
    auto cols_of = [&](int upto) {
      std::set<ColId> cols;
      for (int i = 0; i <= upto; ++i) {
        auto cs = q_.range_var(rels[static_cast<size_t>(i)]).ColumnSet();
        cols.insert(cs.begin(), cs.end());
      }
      return cols;
    };
    auto leaf = [&](int rel) {
      std::vector<Predicate> local;
      for (const Predicate& p : preds) {
        if (p.BoundBy(q_.range_var(rel).ColumnSet())) local.push_back(p);
      }
      return builder.Scan(rel, local,
                          needed_for(q_.range_var(rel).ColumnSet()));
    };
    PlanPtr plan = leaf(rels[0]);
    for (size_t i = 1; i < rels.size(); ++i) {
      std::set<ColId> before = cols_of(static_cast<int>(i) - 1);
      std::set<ColId> after = cols_of(static_cast<int>(i));
      std::vector<Predicate> applicable;
      for (const Predicate& p : preds) {
        if (p.BoundBy(after) && !p.BoundBy(before) &&
            !p.BoundBy(q_.range_var(rels[i]).ColumnSet())) {
          applicable.push_back(p);
        }
      }
      plan = builder.BestJoin(plan, leaf(rels[i]), applicable,
                              needed_for(after));
    }
    best = std::min(best, plan->cost);
  } while (std::next_permutation(rels.begin(), rels.end()));

  EXPECT_NEAR((*dp_plan)->cost, best, best * 1e-9);
}

TEST(EnumeratorScenario, GreedyPushesGroupByWhenCheaper) {
  // Example 2 shape: G(emp ⋈ dept) grouped by (e.dno, d.budget). The
  // pre-join aggregation input (32k emp rows) fits in memory while the
  // post-join aggregation input (wider rows) spills — so pushing the
  // group-by below the join is strictly cheaper, and the greedy rule takes
  // it. The invariant conditions hold because dept joins on its key.
  EmpDeptOptions data;
  data.num_employees = 32'000;
  data.num_departments = 2'000;
  EmpDeptFixture fixture = MakeEmpDept(data);
  Query q(fixture.catalog.get());
  int e = q.AddRangeVar(fixture.tables.emp, "e");
  int d = q.AddRangeVar(fixture.tables.dept, "d");
  q.base_rels() = {e, d};
  ColId e_dno = q.range_var(e).columns[1];
  ColId sal = q.range_var(e).columns[2];
  ColId d_dno = q.range_var(d).columns[0];
  ColId budget = q.range_var(d).columns[1];
  ColId avg_out = q.columns().Add("avg(e.sal)", DataType::kDouble);
  q.select_list() = {e_dno, budget, avg_out};
  GroupBySpec gb;
  gb.grouping = {e_dno, budget};
  gb.aggregates = {{AggKind::kAvg, {sal}, avg_out}};
  q.top_group_by() = gb;

  BlockSpec block;
  BlockRel re, rd;
  re.name = "e";
  re.scan_rel = e;
  rd.name = "d";
  rd.scan_rel = d;
  block.rels = {re, rd};
  block.predicates = {EqCols(e_dno, d_dno)};
  block.group_by = gb;
  block.needed_output = {e_dno, budget, avg_out};

  EnumeratorOptions traditional;
  traditional.greedy_aggregation = false;
  auto lazy = OptimizeBlock(q, &q.columns(), block, traditional, nullptr);
  ASSERT_OK(lazy);

  EnumerationCounters counters;
  auto greedy = OptimizeBlock(q, &q.columns(), block, EnumeratorOptions{},
                              &counters);
  ASSERT_OK(greedy);

  EXPECT_LE((*greedy)->cost, (*lazy)->cost);
  EXPECT_LT((*greedy)->cost, (*lazy)->cost);  // strictly better at this size
  EXPECT_TRUE(HasGroupByBelowJoin(*greedy));
  EXPECT_GT(counters.groupby_placements, 0);

  // And the two plans agree on results (projected to a common layout —
  // block plans choose their own column order).
  PlanBuilder pb(q);
  auto r_lazy = ExecutePlan(pb.Project(*lazy, q.select_list()), q);
  ASSERT_OK(r_lazy);
  auto r_greedy =
      ExecutePlan(pb.Project(*greedy, q.select_list()), q);
  ASSERT_OK(r_greedy);
  EXPECT_EQ(r_lazy->Fingerprint(), r_greedy->Fingerprint());
}

TEST_F(EnumeratorTest, GreedyNeverWorseAcrossKnobs) {
  int e = q_.AddRangeVar(fixture_.tables.emp, "e");
  int d = q_.AddRangeVar(fixture_.tables.dept, "d");
  q_.base_rels() = {e, d};
  ColId e_dno = q_.range_var(e).columns[1];
  ColId sal = q_.range_var(e).columns[2];
  ColId d_dno = q_.range_var(d).columns[0];
  ColId budget = q_.range_var(d).columns[1];
  ColId out = q_.columns().Add("sum(e.sal)", DataType::kDouble);
  q_.select_list() = {e_dno, out};
  GroupBySpec gb;
  gb.grouping = {e_dno};
  gb.aggregates = {{AggKind::kSum, {sal}, out}};
  q_.top_group_by() = gb;

  for (double cutoff : {200'000.0, 900'000.0, 4'000'000.0}) {
    BlockSpec block;
    block.rels = {ScanRel(e), ScanRel(d)};
    block.predicates = {EqCols(e_dno, d_dno),
                        Cmp(Col(budget), CompareOp::kLt, LitReal(cutoff))};
    block.group_by = gb;
    block.needed_output = {e_dno, out};

    EnumeratorOptions traditional;
    traditional.greedy_aggregation = false;
    auto lazy = OptimizeBlock(q_, &q_.columns(), block, traditional, nullptr);
    ASSERT_OK(lazy);
    auto greedy =
        OptimizeBlock(q_, &q_.columns(), block, EnumeratorOptions{}, nullptr);
    ASSERT_OK(greedy);
    EXPECT_LE((*greedy)->cost, (*lazy)->cost) << "cutoff " << cutoff;
  }
}

TEST(EnumeratorScenario, CoalescingUsedWhenInvariantInapplicable) {
  // Fan-out self-join on dno (no key coverage): invariant grouping is
  // blocked (SUM would be inflated), but coalescing pre-aggregation still
  // applies. Pre-aggregating shrinks the outer side to a handful of pages,
  // making the join locally cheaper than joining the raw inputs, so the
  // greedy rule fires.
  EmpDeptOptions data;
  data.num_employees = 32'000;
  data.num_departments = 2'000;
  EmpDeptFixture fixture = MakeEmpDept(data);
  Query q(fixture.catalog.get());
  int e = q.AddRangeVar(fixture.tables.emp, "e");
  int f = q.AddRangeVar(fixture.tables.emp, "f");
  q.base_rels() = {e, f};
  ColId e_dno = q.range_var(e).columns[1];
  ColId sal = q.range_var(e).columns[2];
  ColId f_dno = q.range_var(f).columns[1];
  ColId out = q.columns().Add("sum(e.sal)", DataType::kDouble);
  q.select_list() = {e_dno, out};
  GroupBySpec gb;
  gb.grouping = {e_dno};
  gb.aggregates = {{AggKind::kSum, {sal}, out}};
  q.top_group_by() = gb;

  BlockSpec block;
  BlockRel re, rf;
  re.name = "e";
  re.scan_rel = e;
  rf.name = "f";
  rf.scan_rel = f;
  block.rels = {re, rf};
  block.predicates = {EqCols(e_dno, f_dno)};
  block.group_by = gb;
  block.needed_output = {e_dno, out};

  EnumeratorOptions no_coalesce;
  no_coalesce.enable_coalescing = false;
  auto without = OptimizeBlock(q, &q.columns(), block, no_coalesce, nullptr);
  ASSERT_OK(without);
  // Invariant grouping inapplicable -> no early aggregation at all.
  EXPECT_FALSE(HasGroupByBelowJoin(*without));

  auto with = OptimizeBlock(q, &q.columns(), block, EnumeratorOptions{}, nullptr);
  ASSERT_OK(with);
  EXPECT_TRUE(HasGroupByBelowJoin(*with));
  EXPECT_LT((*with)->cost, (*without)->cost);

  // Both plans agree on results (multiplicity preserved by eager agg).
  PlanBuilder pb(q);
  auto r1 = ExecutePlan(pb.Project(*without, q.select_list()), q);
  ASSERT_OK(r1);
  auto r2 = ExecutePlan(pb.Project(*with, q.select_list()), q);
  ASSERT_OK(r2);
  EXPECT_EQ(r1->Fingerprint(), r2->Fingerprint());
}

TEST_F(EnumeratorTest, CountersScaleWithOptions) {
  int e = q_.AddRangeVar(fixture_.tables.emp, "e");
  int d = q_.AddRangeVar(fixture_.tables.dept, "d");
  int d2 = q_.AddRangeVar(fixture_.tables.dept, "d2");
  q_.base_rels() = {e, d, d2};
  ColId e_dno = q_.range_var(e).columns[1];
  ColId e_eno = q_.range_var(e).columns[0];
  ColId sal = q_.range_var(e).columns[2];
  ColId d_dno = q_.range_var(d).columns[0];
  ColId d2_dno = q_.range_var(d2).columns[0];
  ColId out = q_.columns().Add("sum", DataType::kDouble);
  q_.select_list() = {e_dno, out};
  GroupBySpec gb;
  gb.grouping = {e_dno};
  gb.aggregates = {{AggKind::kSum, {sal}, out}};
  q_.top_group_by() = gb;
  (void)e_eno;

  BlockSpec block;
  block.rels = {ScanRel(e), ScanRel(d), ScanRel(d2)};
  block.predicates = {EqCols(e_dno, d_dno), EqCols(e_dno, d2_dno)};
  block.group_by = gb;
  block.needed_output = {e_dno, out};

  EnumerationCounters with_greedy, without_greedy;
  EnumeratorOptions off;
  off.greedy_aggregation = false;
  ASSERT_OK(OptimizeBlock(q_, &q_.columns(), block, off, &without_greedy));
  ASSERT_OK(OptimizeBlock(q_, &q_.columns(), block, EnumeratorOptions{},
                          &with_greedy));
  EXPECT_GT(with_greedy.joins_considered, without_greedy.joins_considered);
  EXPECT_GT(with_greedy.groupby_placements, 0);
  EXPECT_EQ(without_greedy.groupby_placements, 0);
}

TEST_F(EnumeratorTest, CompositeLeafGetsLocalFilter) {
  // Build a composite (aggregated emp) and join it with dept in a block
  // whose predicates include a filter over the composite's agg output.
  int e = q_.AddRangeVar(fixture_.tables.emp, "e");
  int d = q_.AddRangeVar(fixture_.tables.dept, "d");
  q_.base_rels() = {e, d};
  ColId e_dno = q_.range_var(e).columns[1];
  ColId sal = q_.range_var(e).columns[2];
  ColId d_dno = q_.range_var(d).columns[0];
  ColId avg_out = q_.columns().Add("avg(e.sal)", DataType::kDouble);
  q_.select_list() = {avg_out};

  PlanBuilder b(q_);
  GroupBySpec gb;
  gb.grouping = {e_dno};
  gb.aggregates = {{AggKind::kAvg, {sal}, avg_out}};
  PlanPtr composite =
      b.GroupBy(b.Scan(e, {}, {e_dno, sal}), gb, {e_dno, avg_out});

  BlockSpec block;
  BlockRel view_rel;
  view_rel.name = "v";
  view_rel.composite = composite;
  view_rel.keys.push_back({e_dno});
  block.rels = {view_rel, ScanRel(d)};
  block.predicates = {EqCols(e_dno, d_dno),
                      Cmp(Col(avg_out), CompareOp::kGt, LitReal(50'000.0))};
  block.needed_output = {avg_out};
  auto plan = OptimizeBlock(q_, &q_.columns(), block, EnumeratorOptions{},
                            nullptr);
  ASSERT_OK(plan);
  // The avg filter must be applied (as a Filter over the composite).
  std::function<bool(const PlanPtr&)> has_filter =
      [&](const PlanPtr& p) -> bool {
    if (p == nullptr) return false;
    if (p->kind == PlanNode::Kind::kFilter && !p->filter_preds.empty()) {
      return true;
    }
    return has_filter(p->left) || has_filter(p->right);
  };
  EXPECT_TRUE(has_filter(*plan));
  auto result = ExecutePlan(*plan, q_);
  ASSERT_OK(result);
  for (const Row& row : result->rows) {
    EXPECT_GT(row[0].AsDouble(), 50'000.0);
  }
}

TEST_F(EnumeratorTest, OversizedBlockRejected) {
  BlockSpec block;
  for (int i = 0; i < 21; ++i) {
    int rel = q_.AddRangeVar(fixture_.tables.dept, "d" + std::to_string(i));
    block.rels.push_back(ScanRel(rel));
  }
  EXPECT_FALSE(
      OptimizeBlock(q_, &q_.columns(), block, EnumeratorOptions{}, nullptr)
          .ok());
}

TEST_F(EnumeratorTest, EmptyBlockRejected) {
  BlockSpec block;
  EXPECT_FALSE(
      OptimizeBlock(q_, &q_.columns(), block, EnumeratorOptions{}, nullptr).ok());
}

}  // namespace
}  // namespace aggview
