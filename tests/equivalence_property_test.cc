#include <gtest/gtest.h>

#include "common/random.h"
#include "transform/pullup.h"
#include "test_util.h"

namespace aggview {
namespace {

/// Property: for every query in the family and every randomized database,
/// the traditional plan, the extended (pull-up/push-down) plan, and every
/// ablated optimizer configuration produce identical result multisets.
class EquivalenceProperty : public ::testing::TestWithParam<int> {};

/// Query templates spanning the transformation space: single views,
/// multi-views, MIN/MAX vs SUM/AVG, HAVING, top group-bys, deferred
/// aggregate predicates, fan-out joins.
std::vector<std::string> QueryFamily(Rng* rng) {
  auto lit = [&](double lo, double hi) {
    return std::to_string(rng->Uniform(static_cast<int64_t>(lo),
                                       static_cast<int64_t>(hi)));
  };
  std::vector<std::string> queries;
  // Example 1 with a random age threshold.
  queries.push_back(R"sql(
create view a1 (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
select e1.sal from emp e1, a1 b
where e1.dno = b.dno and e1.age < )sql" + lit(19, 40) + R"sql( and e1.sal > b.asal
)sql");
  // Example 2 with a random budget threshold.
  queries.push_back(R"sql(
select e.dno, avg(e.sal) from emp e, dept d
where e.dno = d.dno and d.budget < )sql" + lit(200000, 4000000) + R"sql(
group by e.dno
)sql");
  // View with MIN (duplicate-insensitive) + top group-by.
  queries.push_back(R"sql(
create view lows (dno, lo) as
  select e2.dno, min(e2.sal) from emp e2 group by e2.dno;
select e1.dno, count(*)
from emp e1, lows v
where e1.dno = v.dno and e1.sal < 2 * v.lo
group by e1.dno
)sql");
  // Multi-relation view with HAVING and a selective dept filter.
  queries.push_back(R"sql(
create view busy (dno, cnt, total) as
  select e.dno, count(*), sum(e.sal)
  from emp e, dept d
  where e.dno = d.dno and d.budget < )sql" + lit(500000, 3000000) + R"sql(
  group by e.dno
  having count(*) > 1;
select busy.dno, busy.total from busy where busy.cnt < )sql" + lit(3, 60) + R"sql(
)sql");
  // Two views joined through a base relation.
  queries.push_back(R"sql(
create view v1 (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
create view v2 (dno, mage) as
  select e3.dno, max(e3.age) from emp e3 group by e3.dno;
select e1.sal
from emp e1, v1, v2
where e1.dno = v1.dno and e1.sal > v1.asal
  and e1.dno = v2.dno and e1.age < v2.mage
)sql");
  // Fan-out self join under a top aggregate (coalescing territory).
  queries.push_back(R"sql(
select e.dno, sum(e.sal), count(*)
from emp e, emp f
where e.dno = f.dno and f.age > )sql" + lit(20, 50) + R"sql(
group by e.dno
)sql");
  // MEDIAN view: non-decomposable, blocks coalescing but not pull-up.
  queries.push_back(R"sql(
create view meds (dno, med) as
  select e2.dno, median(e2.sal) from emp e2 group by e2.dno;
select e1.eno from emp e1, meds m
where e1.dno = m.dno and e1.sal > m.med and e1.age < )sql" + lit(25, 45) + R"sql(
)sql");
  // Scalar aggregate over a join with a view.
  queries.push_back(R"sql(
create view a1 (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
select count(*) from emp e1, a1 b
where e1.dno = b.dno and e1.sal > b.asal
)sql");
  return queries;
}

TEST_P(EquivalenceProperty, AllOptimizerConfigurationsAgree) {
  int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 7919 + 13);

  EmpDeptOptions data;
  data.num_employees = 200 + rng.Uniform(0, 800);
  data.num_departments = 3 + rng.Uniform(0, 40);
  data.young_fraction = rng.UniformReal(0.02, 0.5);
  data.seed = static_cast<uint64_t>(seed) + 1000;
  EmpDeptFixture fixture = MakeEmpDept(data);

  for (const std::string& sql : QueryFamily(&rng)) {
    SCOPED_TRACE(sql);
    auto query = ParseAndBind(*fixture.catalog, sql);
    ASSERT_OK(query);

    std::string reference;
    // Configurations: traditional, extended default, and ablations.
    std::vector<OptimizerOptions> configs;
    configs.push_back(TraditionalOptions());
    configs.push_back(OptimizerOptions{});
    OptimizerOptions no_coalesce;
    no_coalesce.enumerator.enable_coalescing = false;
    configs.push_back(no_coalesce);
    OptimizerOptions no_invariant;
    no_invariant.enumerator.enable_invariant = false;
    configs.push_back(no_invariant);
    OptimizerOptions deep_pull;
    deep_pull.max_pullup = 3;
    deep_pull.require_shared_predicate = false;
    configs.push_back(deep_pull);
    OptimizerOptions no_shrink;
    no_shrink.shrink_views = false;
    configs.push_back(no_shrink);

    for (size_t i = 0; i < configs.size(); ++i) {
      auto optimized = OptimizeQueryWithAggViews(*query, configs[i]);
      ASSERT_OK(optimized);
      Status valid = ValidatePlan(optimized->plan, optimized->query);
      ASSERT_TRUE(valid.ok()) << valid.ToString();
      auto result = ExecutePlan(optimized->plan, optimized->query);
      ASSERT_OK(result);
      if (i == 0) {
        reference = result->Fingerprint();
      } else {
        EXPECT_EQ(result->Fingerprint(), reference) << "config " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceProperty, ::testing::Range(0, 8));

/// Systematic data-shape sweep: department count (grouping cardinality) x
/// employee count (fan-out / spill regime). At every grid point the three
/// plan families — traditional, pull-up-forced, extended — must agree on
/// Example 1's results, and the extended cost must dominate neither.
class ShapeSweep
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(ShapeSweep, Example1EquivalentAcrossDataShapes) {
  auto [departments, employees] = GetParam();
  EmpDeptOptions data;
  data.num_departments = departments;
  data.num_employees = employees;
  data.young_fraction = 0.15;
  data.seed = static_cast<uint64_t>(departments * 31 + employees);
  EmpDeptFixture fixture = MakeEmpDept(data);

  auto query = ParseAndBind(*fixture.catalog, Example1Sql());
  ASSERT_OK(query);

  auto traditional = OptimizeTraditional(*query);
  ASSERT_OK(traditional);
  auto extended = OptimizeQueryWithAggViews(*query, OptimizerOptions{});
  ASSERT_OK(extended);
  EXPECT_LE(extended->plan->cost, traditional->plan->cost);

  auto pulled = PullUpIntoView(*query, 0, {query->base_rels()[0]});
  ASSERT_OK(pulled);
  auto forced = OptimizeQueryWithAggViews(*pulled, TraditionalOptions());
  ASSERT_OK(forced);

  auto rt = ExecutePlan(traditional->plan, traditional->query);
  ASSERT_OK(rt);
  auto re = ExecutePlan(extended->plan, extended->query);
  ASSERT_OK(re);
  auto rf = ExecutePlan(forced->plan, forced->query);
  ASSERT_OK(rf);
  EXPECT_EQ(rt->Fingerprint(), re->Fingerprint());
  EXPECT_EQ(rt->Fingerprint(), rf->Fingerprint());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ShapeSweep,
    ::testing::Combine(::testing::Values<int64_t>(3, 40, 800),
                       ::testing::Values<int64_t>(200, 3'000, 20'000)));

}  // namespace
}  // namespace aggview
