#include <gtest/gtest.h>

#include "test_util.h"

namespace aggview {
namespace {

class TpcdTest : public ::testing::Test {
 protected:
  TpcdTest() : fixture_(MakeTpcd(DbgenOptions{.scale_factor = 0.005})) {}
  TpcdFixture fixture_;
};

TEST_F(TpcdTest, SchemaHasAllTables) {
  EXPECT_EQ(fixture_.catalog->num_tables(), 8);
  for (const char* name : {"region", "nation", "supplier", "customer", "part",
                           "partsupp", "orders", "lineitem"}) {
    EXPECT_OK(fixture_.catalog->FindTable(name));
  }
}

TEST_F(TpcdTest, CardinalitiesScale) {
  DbgenOptions o{.scale_factor = 0.005};
  const Catalog& cat = *fixture_.catalog;
  EXPECT_EQ(cat.table(fixture_.tables.supplier).stats.row_count, o.suppliers());
  EXPECT_EQ(cat.table(fixture_.tables.customer).stats.row_count, o.customers());
  EXPECT_EQ(cat.table(fixture_.tables.orders).stats.row_count, o.orders());
  // Lineitems average ~4 per order.
  int64_t lines = cat.table(fixture_.tables.lineitem).stats.row_count;
  EXPECT_GT(lines, o.orders() * 2);
  EXPECT_LT(lines, o.orders() * 8);
}

TEST_F(TpcdTest, GenerationIsDeterministic) {
  TpcdFixture again = MakeTpcd(DbgenOptions{.scale_factor = 0.005});
  const Table& a = *fixture_.catalog->table(fixture_.tables.lineitem).data;
  const Table& b = *again.catalog->table(again.tables.lineitem).data;
  ASSERT_EQ(a.row_count(), b.row_count());
  for (int64_t i = 0; i < std::min<int64_t>(a.row_count(), 100); ++i) {
    EXPECT_TRUE(RowEq{}(a.row(i), b.row(i))) << "row " << i;
  }
}

TEST_F(TpcdTest, ForeignKeysAreValid) {
  // Every lineitem points at an existing order and part.
  const Catalog& cat = *fixture_.catalog;
  int64_t orders = cat.table(fixture_.tables.orders).stats.row_count;
  int64_t parts = cat.table(fixture_.tables.part).stats.row_count;
  const Table& lineitem = *cat.table(fixture_.tables.lineitem).data;
  for (const Row& row : lineitem.rows()) {
    EXPECT_GE(row[0].AsInt(), 1);
    EXPECT_LE(row[0].AsInt(), orders);
    EXPECT_GE(row[2].AsInt(), 1);
    EXPECT_LE(row[2].AsInt(), parts);
  }
}

TEST_F(TpcdTest, SkewedGenerationConcentratesKeys) {
  TpcdFixture skewed =
      MakeTpcd(DbgenOptions{.scale_factor = 0.005, .seed = 42, .skew = 1.2});
  // Under skew, the most popular part appears far more often than average.
  const Table& lineitem = *skewed.catalog->table(skewed.tables.lineitem).data;
  std::unordered_map<int64_t, int64_t> counts;
  for (const Row& row : lineitem.rows()) counts[row[2].AsInt()]++;
  int64_t max_count = 0;
  for (auto& [k, v] : counts) max_count = std::max(max_count, v);
  double avg = static_cast<double>(lineitem.row_count()) /
               static_cast<double>(counts.size());
  EXPECT_GT(static_cast<double>(max_count), 5.0 * avg);
}

TEST_F(TpcdTest, StatisticsAreExact) {
  const TableDef& part = fixture_.catalog->table(fixture_.tables.part);
  EXPECT_EQ(part.stats.columns[0].distinct, part.stats.row_count);  // key
  EXPECT_LE(part.stats.columns[2].distinct, 8);                     // brands
}

TEST_F(TpcdTest, AllQueriesOptimizeAndAgree) {
  for (const auto& named : tpcd_queries::AllQueries()) {
    SCOPED_TRACE(named.name);
    CheckOptimizersAgree(*fixture_.catalog, named.sql);
  }
}

TEST_F(TpcdTest, Q15StyleReturnsSuppliers) {
  auto q = ParseAndBind(*fixture_.catalog, tpcd_queries::TopSupplierRevenue());
  ASSERT_OK(q);
  auto optimized = OptimizeQueryWithAggViews(*q, OptimizerOptions{});
  ASSERT_OK(optimized);
  auto result = ExecutePlan(optimized->plan, optimized->query);
  ASSERT_OK(result);
  EXPECT_GT(result->rows.size(), 0u);
  // Every returned revenue exceeds the threshold.
  for (const Row& row : result->rows) {
    EXPECT_GT(row[1].AsNumeric(), 100000.0);
  }
}

TEST_F(TpcdTest, Q2StyleFindsMinimumCostSuppliers) {
  auto q = ParseAndBind(*fixture_.catalog, tpcd_queries::MinCostSupplier());
  ASSERT_OK(q);
  auto optimized = OptimizeQueryWithAggViews(*q, OptimizerOptions{});
  ASSERT_OK(optimized);
  auto result = ExecutePlan(optimized->plan, optimized->query);
  ASSERT_OK(result);
  // p_size = 15 selects ~1/50 of parts; each has >= 1 min-cost supplier.
  EXPECT_GT(result->rows.size(), 0u);
}

}  // namespace
}  // namespace aggview
