#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "test_util.h"

namespace aggview {
namespace {

/// emp/dept with a deterministic, small workload plus views covering every
/// decomposable aggregate kind. Rows are appended/deleted via
/// ApplyTableDelta, and correctness is judged by the strongest check
/// available: the maintained backing table must answer queries
/// byte-identically to plans recomputing from the mutated base data.
struct MaintenanceFixture {
  EmpDeptFixture f;
  TableId emp = -1;

  static MaintenanceFixture Make() {
    EmpDeptOptions o;
    o.num_employees = 120;
    MaintenanceFixture m{MakeEmpDept(o)};
    m.emp = m.f.tables.emp;
    EXPECT_OK(ExecuteMatViewStatement(
        m.f.catalog.get(),
        "create materialized view per_dept as "
        "select e.dno, count(*), count(e.sal), sum(e.sal), avg(e.sal), "
        "min(e.sal), max(e.sal) from emp e group by e.dno"));
    return m;
  }

  Row EmpRow(int64_t eno, int64_t dno, Value sal, int64_t age) {
    return {Value::Int(eno), Value::Int(dno), std::move(sal), Value::Int(age)};
  }

  /// The full battery: every stored aggregate recomputed from base vs the
  /// maintained backing content.
  void ExpectMaintained() {
    EXPECT_TRUE(
        f.catalog->IsViewFresh(*f.catalog->FindView("per_dept")));
    EXPECT_EQ(CheckViewAnswersAgree(
                  *f.catalog,
                  "select e.dno, count(*), count(e.sal), sum(e.sal), "
                  "avg(e.sal), min(e.sal), max(e.sal) from emp e "
                  "group by e.dno"),
              1);
  }
};

TEST(Maintenance, InsertsMergeIntoExistingGroups) {
  MaintenanceFixture m = MaintenanceFixture::Make();
  TableDelta delta;
  delta.table = m.emp;
  delta.inserts = {m.EmpRow(9001, 0, Value::Real(1234.5), 30),
                   m.EmpRow(9002, 0, Value::Real(8.25), 61),
                   m.EmpRow(9003, 1, Value::Real(99999.0), 19)};
  MaintenanceReport report;
  ASSERT_OK(ApplyTableDelta(m.f.catalog.get(), delta, &report));
  EXPECT_EQ(report.views_maintained, 1);
  EXPECT_EQ(report.views_marked_stale, 0);
  EXPECT_GE(report.groups_touched, 2);
  m.ExpectMaintained();
}

TEST(Maintenance, InsertCreatesNewGroup) {
  MaintenanceFixture m = MaintenanceFixture::Make();
  const ViewDefinition* view = m.f.catalog->FindView("per_dept");
  int64_t before = (*m.f.catalog->table(view->backing_table).data).row_count();
  TableDelta delta;
  delta.table = m.emp;
  delta.inserts = {m.EmpRow(9001, 999, Value::Real(42.0), 40),
                   m.EmpRow(9002, 999, Value::Real(58.0), 41)};
  MaintenanceReport report;
  ASSERT_OK(ApplyTableDelta(m.f.catalog.get(), delta, &report));
  EXPECT_EQ(report.groups_added, 1);
  EXPECT_EQ((*m.f.catalog->table(view->backing_table).data).row_count(), before + 1);
  m.ExpectMaintained();
}

TEST(Maintenance, DeleteRetractsCountsAndSums) {
  MaintenanceFixture m = MaintenanceFixture::Make();
  TableDelta delta;
  delta.table = m.emp;
  delta.deletes = {0, 5, 17, 44};
  MaintenanceReport report;
  ASSERT_OK(ApplyTableDelta(m.f.catalog.get(), delta, &report));
  EXPECT_EQ(report.views_maintained, 1);
  // Deleting a row that held a group's extremum forces a re-derivation of
  // that group's MIN/MAX partials from the base.
  EXPECT_GE(report.groups_recomputed, 0);
  m.ExpectMaintained();
}

TEST(Maintenance, DeleteEmptyingGroupRemovesBackingRow) {
  MaintenanceFixture m = MaintenanceFixture::Make();
  // Build a fresh group, then delete exactly its rows.
  TableDelta grow;
  grow.table = m.emp;
  grow.inserts = {m.EmpRow(9001, 999, Value::Real(1.0), 40),
                  m.EmpRow(9002, 999, Value::Real(2.0), 41)};
  ASSERT_OK(ApplyTableDelta(m.f.catalog.get(), grow, nullptr));
  const Table& emp = (*m.f.catalog->table(m.emp).data);
  TableDelta shrink;
  shrink.table = m.emp;
  for (int64_t i = 0; i < emp.row_count(); ++i) {
    if (emp.row(i)[1].AsInt() == 999) shrink.deletes.push_back(i);
  }
  ASSERT_EQ(shrink.deletes.size(), 2u);
  MaintenanceReport report;
  ASSERT_OK(ApplyTableDelta(m.f.catalog.get(), shrink, &report));
  EXPECT_EQ(report.groups_removed, 1);
  const ViewDefinition* view = m.f.catalog->FindView("per_dept");
  const Table& backing = (*m.f.catalog->table(view->backing_table).data);
  for (int64_t i = 0; i < backing.row_count(); ++i) {
    EXPECT_NE(backing.row(i)[0].AsInt(), 999)
        << "emptied group still present in the backing table";
  }
  m.ExpectMaintained();
}

TEST(Maintenance, ScalarViewKeepsEmptyAggregateRow) {
  EmpDeptOptions o;
  o.num_employees = 25;
  EmpDeptFixture f = MakeEmpDept(o);
  ASSERT_OK(ExecuteMatViewStatement(
      f.catalog.get(),
      "create materialized view totals as "
      "select count(*), count(e.sal), sum(e.sal), min(e.sal), avg(e.sal) "
      "from emp e"));
  // Delete every employee: the scalar view must keep its single row and
  // flip to the empty-aggregate values (zero counts, NULL extremes/sums),
  // exactly what a scalar aggregate over the empty base produces.
  TableDelta delta;
  delta.table = f.tables.emp;
  for (int64_t i = 0; i < (*f.catalog->table(f.tables.emp).data).row_count(); ++i) {
    delta.deletes.push_back(i);
  }
  MaintenanceReport report;
  ASSERT_OK(ApplyTableDelta(f.catalog.get(), delta, &report));
  EXPECT_EQ(report.views_maintained, 1);
  EXPECT_EQ(report.groups_removed, 0);

  const ViewDefinition* view = f.catalog->FindView("totals");
  const Table& backing = (*f.catalog->table(view->backing_table).data);
  ASSERT_EQ(backing.row_count(), 1);
  EXPECT_EQ(backing.row(0)[view->rows_col].AsInt(), 0);
  EXPECT_EQ(CheckViewAnswersAgree(
                *f.catalog,
                "select count(*), count(e.sal), sum(e.sal), min(e.sal), "
                "avg(e.sal) from emp e"),
            1);
}

TEST(Maintenance, CountArgDivergesFromCountStarUnderNulls) {
  MaintenanceFixture m = MaintenanceFixture::Make();
  // A brand-new group whose only salaries are NULL: COUNT(*) counts the
  // rows, COUNT(sal) counts none, SUM/AVG/MIN/MAX are NULL.
  TableDelta delta;
  delta.table = m.emp;
  delta.inserts = {m.EmpRow(9001, 777, Value::Null(), 30),
                   m.EmpRow(9002, 777, Value::Null(), 31),
                   m.EmpRow(9003, 777, Value::Real(64.0), 32)};
  ASSERT_OK(ApplyTableDelta(m.f.catalog.get(), delta, nullptr));
  m.ExpectMaintained();

  // Retract the one non-NULL salary: the COUNT witness must restore the
  // group's SUM/AVG partials to NULL rather than leave a stale 64.
  const Table& emp = (*m.f.catalog->table(m.emp).data);
  TableDelta retract;
  retract.table = m.emp;
  for (int64_t i = 0; i < emp.row_count(); ++i) {
    if (emp.row(i)[0].AsInt() == 9003) retract.deletes.push_back(i);
  }
  ASSERT_EQ(retract.deletes.size(), 1u);
  ASSERT_OK(ApplyTableDelta(m.f.catalog.get(), retract, nullptr));
  m.ExpectMaintained();
}

TEST(Maintenance, MultiRelationViewGoesStaleAndRefreshes) {
  EmpDeptOptions o;
  o.num_employees = 120;
  EmpDeptFixture f = MakeEmpDept(o);
  ASSERT_OK(ExecuteMatViewStatement(
      f.catalog.get(),
      "create materialized view joined as "
      "select e.dno, count(*), sum(e.sal) from emp e, dept d "
      "where e.dno = d.dno group by e.dno"));
  const std::string sql =
      "select e.dno, count(*), sum(e.sal) from emp e, dept d "
      "where e.dno = d.dno group by e.dno";
  EXPECT_EQ(CheckViewAnswersAgree(*f.catalog, sql), 1);

  // An FK-cascading delete: remove dept 1 and every employee in it, as two
  // deltas. The join view cannot be maintained incrementally — it goes
  // stale after the first delta and stays stale after the second.
  const Table& dept = (*f.catalog->table(f.tables.dept).data);
  TableDelta drop_dept;
  drop_dept.table = f.tables.dept;
  for (int64_t i = 0; i < dept.row_count(); ++i) {
    if (dept.row(i)[0].AsInt() == 1) drop_dept.deletes.push_back(i);
  }
  ASSERT_EQ(drop_dept.deletes.size(), 1u);
  MaintenanceReport r1;
  ASSERT_OK(ApplyTableDelta(f.catalog.get(), drop_dept, &r1));
  EXPECT_EQ(r1.views_marked_stale, 1);

  const Table& emp = (*f.catalog->table(f.tables.emp).data);
  TableDelta drop_emps;
  drop_emps.table = f.tables.emp;
  for (int64_t i = 0; i < emp.row_count(); ++i) {
    if (emp.row(i)[1].AsInt() == 1) drop_emps.deletes.push_back(i);
  }
  MaintenanceReport r2;
  ASSERT_OK(ApplyTableDelta(f.catalog.get(), drop_emps, &r2));
  EXPECT_EQ(r2.views_marked_stale, 1);
  EXPECT_EQ(CheckViewAnswersAgree(*f.catalog, sql), 0);  // stale: skipped

  // REFRESH re-derives the content from the cascaded base state.
  ASSERT_OK(RefreshMaterializedView(f.catalog.get(), "joined"));
  EXPECT_EQ(CheckViewAnswersAgree(*f.catalog, sql), 1);
}

TEST(Maintenance, RejectsMalformedDeltas) {
  MaintenanceFixture m = MaintenanceFixture::Make();
  TableDelta bad_table;
  bad_table.table = 9999;
  EXPECT_FALSE(ApplyTableDelta(m.f.catalog.get(), bad_table, nullptr).ok());

  TableDelta bad_delete;
  bad_delete.table = m.emp;
  bad_delete.deletes = {1'000'000};
  EXPECT_FALSE(ApplyTableDelta(m.f.catalog.get(), bad_delete, nullptr).ok());

  TableDelta bad_arity;
  bad_arity.table = m.emp;
  bad_arity.inserts = {{Value::Int(1), Value::Int(2)}};
  EXPECT_FALSE(ApplyTableDelta(m.f.catalog.get(), bad_arity, nullptr).ok());

  TableDelta bad_type;
  bad_type.table = m.emp;
  bad_type.inserts = {
      {Value::Int(1), Value::Str("zero"), Value::Real(1.0), Value::Int(30)}};
  EXPECT_FALSE(ApplyTableDelta(m.f.catalog.get(), bad_type, nullptr).ok());
}

TEST(Maintenance, MixedDeltaAfterRefreshCycle) {
  // The acceptance scenario: create, mutate (insert + delete in one delta),
  // verify, refresh anyway, verify again — the refresh must be a no-op
  // content-wise.
  MaintenanceFixture m = MaintenanceFixture::Make();
  TableDelta delta;
  delta.table = m.emp;
  delta.inserts = {m.EmpRow(9001, 2, Value::Real(500.5), 28),
                   m.EmpRow(9002, 999, Value::Null(), 50)};
  delta.deletes = {3, 7};
  ASSERT_OK(ApplyTableDelta(m.f.catalog.get(), delta, nullptr));
  m.ExpectMaintained();

  const ViewDefinition* view = m.f.catalog->FindView("per_dept");
  int64_t epoch_before = view->epoch.load();
  ASSERT_OK(RefreshMaterializedView(m.f.catalog.get(), "per_dept"));
  EXPECT_GT(view->epoch.load(), epoch_before);
  m.ExpectMaintained();
}

}  // namespace
}  // namespace aggview
