#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "storage/io_accountant.h"

namespace aggview {
namespace {

TEST(CostModelTest, Pages) {
  EXPECT_DOUBLE_EQ(CostModel::Pages(0, 8), 0.0);
  EXPECT_DOUBLE_EQ(CostModel::Pages(1, 8), 1.0);
  double per_page = static_cast<double>(RowsPerPage(8));
  EXPECT_DOUBLE_EQ(CostModel::Pages(per_page, 8), 1.0);
  EXPECT_DOUBLE_EQ(CostModel::Pages(per_page + 1, 8), 2.0);
}

TEST(CostModelTest, ScanIsLinear) {
  EXPECT_DOUBLE_EQ(CostModel::ScanCost(100), 100.0);
}

TEST(CostModelTest, BnlChargesOuterPlusPasses) {
  double block = static_cast<double>(kBufferPages - 2);
  // One block of outer pages: read the outer + a single pass over the inner.
  EXPECT_DOUBLE_EQ(CostModel::BnlLocalCost(1, 100), 101.0);
  EXPECT_DOUBLE_EQ(CostModel::BnlLocalCost(block, 100), block + 100.0);
  EXPECT_DOUBLE_EQ(CostModel::BnlLocalCost(block + 1, 100), block + 201.0);
  // Even an empty outer needs one pass (formula floor).
  EXPECT_DOUBLE_EQ(CostModel::BnlLocalCost(0, 100), 100.0);
}

TEST(CostModelTest, HashJoinReadsInputsWithoutSpill) {
  EXPECT_DOUBLE_EQ(CostModel::HashJoinLocalCost(10, kBufferPages),
                   10.0 + kBufferPages);
  EXPECT_DOUBLE_EQ(CostModel::HashJoinLocalCost(kBufferPages, 1e6),
                   kBufferPages + 1e6);
}

TEST(CostModelTest, HashJoinSpillsAtTwoExtraPasses) {
  double l = kBufferPages * 4, r = kBufferPages * 8;
  EXPECT_DOUBLE_EQ(CostModel::HashJoinLocalCost(l, r), 3.0 * (l + r));
}

TEST(CostModelTest, SortFreeInMemory) {
  EXPECT_DOUBLE_EQ(CostModel::SortCost(kBufferPages), 0.0);
}

TEST(CostModelTest, SortChargesPasses) {
  double p = kBufferPages * 4;
  EXPECT_DOUBLE_EQ(CostModel::SortCost(p), 2.0 * p);  // one merge pass
  double big = kBufferPages * (kBufferPages + 10);
  EXPECT_GE(CostModel::SortCost(big), 2.0 * big);  // at least one pass
}

TEST(CostModelTest, SortMergeReadsInputsPlusSorts) {
  double l = kBufferPages * 2, r = kBufferPages * 3;
  EXPECT_DOUBLE_EQ(CostModel::SortMergeLocalCost(l, r),
                   l + r + CostModel::SortCost(l) + CostModel::SortCost(r));
}

TEST(CostModelTest, HashAggFreeInMemoryElseTwoPasses) {
  EXPECT_DOUBLE_EQ(CostModel::HashAggLocalCost(kBufferPages), 0.0);
  EXPECT_DOUBLE_EQ(CostModel::HashAggLocalCost(kBufferPages * 2),
                   4.0 * kBufferPages);
}

TEST(CostModelTest, JoinAlgoNames) {
  EXPECT_STREQ(JoinAlgoName(JoinAlgo::kBlockNestedLoop), "bnl");
  EXPECT_STREQ(JoinAlgoName(JoinAlgo::kHash), "hash");
  EXPECT_STREQ(JoinAlgoName(JoinAlgo::kSortMerge), "merge");
}

TEST(CostModelTest, Monotonicity) {
  // Bigger inputs never cost less (spot checks used by the DP argument).
  EXPECT_LE(CostModel::BnlLocalCost(10, 50), CostModel::BnlLocalCost(20, 50));
  EXPECT_LE(CostModel::BnlLocalCost(10, 50), CostModel::BnlLocalCost(10, 60));
  EXPECT_LE(CostModel::HashJoinLocalCost(100, 200),
            CostModel::HashJoinLocalCost(150, 200) + 1e-9);
  EXPECT_LE(CostModel::SortCost(100), CostModel::SortCost(200));
}

}  // namespace
}  // namespace aggview
