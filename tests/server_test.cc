#include "server/server.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "test_util.h"

namespace aggview {
namespace {

/// Schema + generated data for the paper's emp/dept running example,
/// installed into the server's own catalog.
void PopulateEmpDept(Server* server) {
  auto tables = CreateEmpDeptSchema(&server->catalog());
  ASSERT_OK(tables.status());
  ASSERT_OK(GenerateEmpDeptData(&server->catalog(), *tables, EmpDeptOptions{}));
}

TEST(NormalizeSqlTest, CollapsesCaseAndWhitespace) {
  EXPECT_EQ(NormalizeSql("SELECT  e.sal\nFROM emp e ;"),
            "select e.sal from emp e");
  EXPECT_EQ(NormalizeSql("select e.sal from emp e"),
            NormalizeSql("  SELECT\te.sal\n FROM emp e;  "));
}

TEST(NormalizeSqlTest, StripsLineComments) {
  // A comment is dropped exactly as the lexer drops it; the terminating
  // newline still separates the surrounding tokens.
  EXPECT_EQ(NormalizeSql("SELECT e.sal -- note\nFROM emp e"),
            "select e.sal from emp e");
  // A newline after a comment changes which text is commented out — these
  // parse to different predicates and must not share a cache key.
  EXPECT_NE(NormalizeSql("select e.sal from emp e where a > 1 --x\nand b > 0"),
            NormalizeSql("select e.sal from emp e where a > 1 --x and b > 0"));
  // The fully-commented spelling keys like the text the lexer actually sees.
  EXPECT_EQ(NormalizeSql("select e.sal from emp e --tail comment"),
            "select e.sal from emp e");
  EXPECT_EQ(NormalizeSql("--leading comment\nselect e.sal from emp e"),
            "select e.sal from emp e");
  // '--' inside a string literal is data, not a comment.
  EXPECT_EQ(NormalizeSql("select '--not a comment'"),
            "select '--not a comment'");
}

TEST(NormalizeSqlTest, PreservesStringLiterals) {
  // Case inside a quoted literal is significant; outside it is not.
  EXPECT_EQ(NormalizeSql("SELECT 'Sales'"), "select 'Sales'");
  EXPECT_NE(NormalizeSql("select 'Sales'"), NormalizeSql("select 'sales'"));
  // Whitespace inside a literal survives the collapse.
  EXPECT_EQ(NormalizeSql("select 'a  b'"), "select 'a  b'");
}

TEST(ServerTest, CacheHitSkipsOptimizationAndCountersTrack) {
  Server server;
  PopulateEmpDept(&server);
  ServerSession conn = server.Connect();

  auto q1 = conn.Sql(Example2Sql());
  ASSERT_OK(q1.status());
  EXPECT_FALSE(q1->cache_hit());

  auto q2 = conn.Sql(Example2Sql());
  ASSERT_OK(q2.status());
  EXPECT_TRUE(q2->cache_hit());

  // A textual re-spelling (case + whitespace) of the same statement hits too.
  std::string respelled =
      "SELECT   e.dno,\tAVG(e.sal)\nFROM emp e, dept d\n"
      "WHERE e.dno = d.dno AND d.budget < 1000000\nGROUP BY e.dno;";
  auto q3 = conn.Sql(respelled);
  ASSERT_OK(q3.status());
  EXPECT_TRUE(q3->cache_hit());

  PlanCacheStats stats = server.cache_stats();
  EXPECT_EQ(stats.hits, 2);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.size, 1);

  // The shared cached plan produces the same answer as the fresh one.
  auto r1 = q1->Execute();
  ASSERT_OK(r1.status());
  auto r2 = q2->Execute();
  ASSERT_OK(r2.status());
  EXPECT_EQ(r1->Fingerprint(), r2->Fingerprint());
}

TEST(ServerTest, CacheCapacityZeroDisablesCaching) {
  ServerOptions options;
  options.plan_cache_capacity = 0;
  Server server(options);
  PopulateEmpDept(&server);
  ServerSession conn = server.Connect();

  ASSERT_OK(conn.Sql(Example2Sql()));
  auto again = conn.Sql(Example2Sql());
  ASSERT_OK(again.status());
  EXPECT_FALSE(again->cache_hit());
  EXPECT_EQ(server.cache_stats().size, 0);
}

TEST(ServerTest, LruEvictionDropsColdestPlan) {
  ServerOptions options;
  options.plan_cache_capacity = 2;
  Server server(options);
  PopulateEmpDept(&server);
  ServerSession conn = server.Connect();

  const std::string qa = "select e.sal from emp e";
  const std::string qb = "select e.age from emp e";
  const std::string qc = "select d.budget from dept d";

  ASSERT_OK(conn.Sql(qa));
  ASSERT_OK(conn.Sql(qb));
  // Touch qa so qb becomes the LRU victim.
  auto hit = conn.Sql(qa);
  ASSERT_OK(hit.status());
  EXPECT_TRUE(hit->cache_hit());
  // Third distinct plan evicts qb.
  ASSERT_OK(conn.Sql(qc));

  PlanCacheStats stats = server.cache_stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.size, 2);

  auto qa_again = conn.Sql(qa);
  ASSERT_OK(qa_again.status());
  EXPECT_TRUE(qa_again->cache_hit());
  auto qb_again = conn.Sql(qb);
  ASSERT_OK(qb_again.status());
  EXPECT_FALSE(qb_again->cache_hit());
}

TEST(ServerTest, StatsEpochBumpInvalidatesCachedPlans) {
  Server server;
  PopulateEmpDept(&server);
  ServerSession conn = server.Connect();

  auto before = conn.Sql(Example2Sql());
  ASSERT_OK(before.status());
  auto cached = conn.Sql(Example2Sql());
  ASSERT_OK(cached.status());
  ASSERT_TRUE(cached->cache_hit());
  auto baseline = cached->Execute();
  ASSERT_OK(baseline.status());

  const int64_t epoch_before = server.stats_epoch();
  server.catalog().BumpStatsEpoch();
  EXPECT_GT(server.stats_epoch(), epoch_before);

  // The cached plan was optimized under the old epoch: it must be re-prepared.
  auto fresh = conn.Sql(Example2Sql());
  ASSERT_OK(fresh.status());
  EXPECT_FALSE(fresh->cache_hit());
  EXPECT_EQ(server.cache_stats().invalidations, 1);

  // Re-optimizing against unchanged data still gives the same answer.
  auto result = fresh->Execute();
  ASSERT_OK(result.status());
  EXPECT_EQ(result->Fingerprint(), baseline->Fingerprint());

  // And the re-prepared plan is cached under the new epoch.
  auto recached = conn.Sql(Example2Sql());
  ASSERT_OK(recached.status());
  EXPECT_TRUE(recached->cache_hit());
}

TEST(ServerTest, MutableTableAccessBumpsEpoch) {
  Server server;
  PopulateEmpDept(&server);
  ServerSession conn = server.Connect();
  ASSERT_OK(conn.Sql(Example2Sql()));

  // Any mutable catalog touch is conservatively treated as a data change.
  ASSERT_GT(server.catalog().num_tables(), 0);
  const int64_t before = server.stats_epoch();
  server.catalog().mutable_table(0);
  EXPECT_GT(server.stats_epoch(), before);

  auto q = conn.Sql(Example2Sql());
  ASSERT_OK(q.status());
  EXPECT_FALSE(q->cache_hit());
}

TEST(ServerTest, ConcurrentClientsMatchSerialExecution) {
  ServerOptions options;
  options.threads = 2;
  Server server(options);
  PopulateEmpDept(&server);

  const std::vector<std::string> mix = {
      Example1Sql(), Example2Sql(), "select e.sal from emp e",
      "select d.budget from dept d"};

  // Serial baseline: one session runs the mix once.
  std::vector<std::string> serial;
  {
    ServerSession conn = server.Connect();
    for (const std::string& sql : mix) {
      auto q = conn.Sql(sql);
      ASSERT_OK(q.status());
      auto r = q->Execute();
      ASSERT_OK(r.status());
      serial.push_back(r->Fingerprint());
    }
  }

  constexpr int kClients = 4;
  constexpr int kReps = 3;
  std::vector<std::vector<std::string>> fingerprints(kClients);
  std::vector<std::string> errors(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      ServerSession conn = server.Connect();
      for (int rep = 0; rep < kReps; ++rep) {
        for (const std::string& sql : mix) {
          auto q = conn.Sql(sql);
          if (!q.ok()) {
            errors[c] = q.status().ToString();
            return;
          }
          auto r = q->Execute();
          if (!r.ok()) {
            errors[c] = r.status().ToString();
            return;
          }
          fingerprints[c].push_back(r->Fingerprint());
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (int c = 0; c < kClients; ++c) {
    ASSERT_TRUE(errors[c].empty()) << "client " << c << ": " << errors[c];
    ASSERT_EQ(fingerprints[c].size(), static_cast<size_t>(kReps * mix.size()));
    for (int rep = 0; rep < kReps; ++rep) {
      for (size_t i = 0; i < mix.size(); ++i) {
        EXPECT_EQ(fingerprints[c][rep * mix.size() + i], serial[i])
            << "client " << c << " rep " << rep << " query " << i
            << " diverged from serial execution";
      }
    }
  }

  // Every statement after the first appearance of its text was a cache hit.
  PlanCacheStats stats = server.cache_stats();
  EXPECT_EQ(stats.misses, static_cast<int64_t>(mix.size()));
  EXPECT_EQ(stats.hits,
            static_cast<int64_t>(mix.size() * (1 + kClients * kReps) -
                                 mix.size()));
}

TEST(ServerTest, AdmissionControlLimitsConcurrencyFifo) {
  ServerOptions options;
  options.max_concurrent_queries = 1;
  Server server(options);
  PopulateEmpDept(&server);

  constexpr int kClients = 4;
  std::vector<std::string> errors(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      ServerSession conn = server.Connect();
      auto q = conn.Sql(Example2Sql());
      if (!q.ok()) {
        errors[c] = q.status().ToString();
        return;
      }
      for (int rep = 0; rep < 3; ++rep) {
        auto r = q->Execute();
        if (!r.ok()) {
          errors[c] = r.status().ToString();
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    ASSERT_TRUE(errors[c].empty()) << "client " << c << ": " << errors[c];
  }

  EXPECT_EQ(server.admission_peak_running(), 1);
  EXPECT_EQ(server.admission_total(), kClients * 3);
}

TEST(ServerTest, QueryOutlivingServerFailsCleanly) {
  auto server = std::make_unique<Server>();
  PopulateEmpDept(server.get());
  ServerSession conn = server->Connect();
  auto q = conn.Sql(Example2Sql());
  ASSERT_OK(q.status());

  server.reset();

  auto result = q->Execute();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("destroyed"), std::string::npos)
      << result.status().ToString();
  auto analyzed = q->ExplainAnalyze();
  ASSERT_FALSE(analyzed.ok());

  auto prepared = conn.Sql(Example2Sql());
  ASSERT_FALSE(prepared.ok());
  EXPECT_NE(prepared.status().ToString().find("destroyed"), std::string::npos)
      << prepared.status().ToString();
}

TEST(ServerTest, MovedFromQueryFailsCleanly) {
  Server server;
  PopulateEmpDept(&server);
  ServerSession conn = server.Connect();
  auto q = conn.Sql(Example2Sql());
  ASSERT_OK(q.status());

  ServerQuery moved = std::move(*q);
  auto result = q->Execute();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("moved-from"), std::string::npos)
      << result.status().ToString();
  ASSERT_OK(moved.Execute());

  // Introspection stays valid on the moved-from query: the move transfers
  // the right to execute but shares the immutable plan.
  EXPECT_EQ(q->Explain(), moved.Explain());
  EXPECT_FALSE(q->Explain().empty());
  EXPECT_EQ(q->description(), moved.description());
  EXPECT_NE(q->plan(), nullptr);
}

TEST(ServerTest, SteadyStateServingDoesNotBumpEpoch) {
  Server server;
  PopulateEmpDept(&server);
  ServerSession conn = server.Connect();
  auto warm = conn.Sql(Example2Sql());
  ASSERT_OK(warm.status());
  ASSERT_OK(warm->Execute());

  // Serving (prepare + execute, hits and misses alike) is read-only on the
  // catalog: the epoch must not move, or the cache would degrade to 0% hits.
  const int64_t epoch = server.stats_epoch();
  for (int i = 0; i < 3; ++i) {
    auto q = conn.Sql(Example2Sql());
    ASSERT_OK(q.status());
    EXPECT_TRUE(q->cache_hit());
    ASSERT_OK(q->Execute());
  }
  auto miss = conn.Sql("select e.age from emp e");
  ASSERT_OK(miss.status());
  EXPECT_FALSE(miss->cache_hit());
  ASSERT_OK(miss->Execute());
  EXPECT_EQ(server.stats_epoch(), epoch);
}

TEST(SessionLifetimeTest, PreparedQueryOutlivingSessionFailsCleanly) {
  auto session = std::make_unique<Session>();
  {
    auto tables = CreateEmpDeptSchema(&session->catalog());
    ASSERT_OK(tables.status());
    ASSERT_OK(GenerateEmpDeptData(&session->catalog(), *tables,
                                  EmpDeptOptions{}));
  }
  auto q = session->Sql(Example2Sql());
  ASSERT_OK(q.status());
  ASSERT_OK(q->Execute());

  session.reset();

  auto result = q->Execute();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("destroyed"), std::string::npos)
      << result.status().ToString();
  auto analyzed = q->ExplainAnalyze();
  ASSERT_FALSE(analyzed.ok());
}

TEST(SessionLifetimeTest, MovedFromPreparedQueryFailsCleanly) {
  Session session;
  {
    auto tables = CreateEmpDeptSchema(&session.catalog());
    ASSERT_OK(tables.status());
    ASSERT_OK(
        GenerateEmpDeptData(&session.catalog(), *tables, EmpDeptOptions{}));
  }
  auto q = session.Sql(Example2Sql());
  ASSERT_OK(q.status());

  PreparedQuery moved = std::move(*q);
  auto result = q->Execute();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("moved-from"), std::string::npos)
      << result.status().ToString();
  ASSERT_OK(moved.Execute());
}

}  // namespace
}  // namespace aggview
