#include "server/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "test_util.h"

namespace aggview {
namespace {

/// Schema + generated data for the paper's emp/dept running example,
/// installed into the server's own catalog.
void PopulateEmpDept(Server* server) {
  auto tables = CreateEmpDeptSchema(&server->catalog());
  ASSERT_OK(tables.status());
  ASSERT_OK(GenerateEmpDeptData(&server->catalog(), *tables, EmpDeptOptions{}));
}

TEST(NormalizeSqlTest, CollapsesCaseAndWhitespace) {
  EXPECT_EQ(NormalizeSql("SELECT  e.sal\nFROM emp e ;"),
            "select e.sal from emp e");
  EXPECT_EQ(NormalizeSql("select e.sal from emp e"),
            NormalizeSql("  SELECT\te.sal\n FROM emp e;  "));
}

TEST(NormalizeSqlTest, StripsLineComments) {
  // A comment is dropped exactly as the lexer drops it; the terminating
  // newline still separates the surrounding tokens.
  EXPECT_EQ(NormalizeSql("SELECT e.sal -- note\nFROM emp e"),
            "select e.sal from emp e");
  // A newline after a comment changes which text is commented out — these
  // parse to different predicates and must not share a cache key.
  EXPECT_NE(NormalizeSql("select e.sal from emp e where a > 1 --x\nand b > 0"),
            NormalizeSql("select e.sal from emp e where a > 1 --x and b > 0"));
  // The fully-commented spelling keys like the text the lexer actually sees.
  EXPECT_EQ(NormalizeSql("select e.sal from emp e --tail comment"),
            "select e.sal from emp e");
  EXPECT_EQ(NormalizeSql("--leading comment\nselect e.sal from emp e"),
            "select e.sal from emp e");
  // '--' inside a string literal is data, not a comment.
  EXPECT_EQ(NormalizeSql("select '--not a comment'"),
            "select '--not a comment'");
}

TEST(NormalizeSqlTest, PreservesStringLiterals) {
  // Case inside a quoted literal is significant; outside it is not.
  EXPECT_EQ(NormalizeSql("SELECT 'Sales'"), "select 'Sales'");
  EXPECT_NE(NormalizeSql("select 'Sales'"), NormalizeSql("select 'sales'"));
  // Whitespace inside a literal survives the collapse.
  EXPECT_EQ(NormalizeSql("select 'a  b'"), "select 'a  b'");
}

TEST(ServerTest, CacheHitSkipsOptimizationAndCountersTrack) {
  Server server;
  PopulateEmpDept(&server);
  ServerSession conn = server.Connect();

  auto q1 = conn.Sql(Example2Sql());
  ASSERT_OK(q1.status());
  EXPECT_FALSE(q1->cache_hit());

  auto q2 = conn.Sql(Example2Sql());
  ASSERT_OK(q2.status());
  EXPECT_TRUE(q2->cache_hit());

  // A textual re-spelling (case + whitespace) of the same statement hits too.
  std::string respelled =
      "SELECT   e.dno,\tAVG(e.sal)\nFROM emp e, dept d\n"
      "WHERE e.dno = d.dno AND d.budget < 1000000\nGROUP BY e.dno;";
  auto q3 = conn.Sql(respelled);
  ASSERT_OK(q3.status());
  EXPECT_TRUE(q3->cache_hit());

  PlanCacheStats stats = server.cache_stats();
  EXPECT_EQ(stats.hits, 2);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.size, 1);

  // The shared cached plan produces the same answer as the fresh one.
  auto r1 = q1->Execute();
  ASSERT_OK(r1.status());
  auto r2 = q2->Execute();
  ASSERT_OK(r2.status());
  EXPECT_EQ(r1->Fingerprint(), r2->Fingerprint());
}

TEST(ServerTest, CacheCapacityZeroDisablesCaching) {
  ServerOptions options;
  options.plan_cache_capacity = 0;
  Server server(options);
  PopulateEmpDept(&server);
  ServerSession conn = server.Connect();

  ASSERT_OK(conn.Sql(Example2Sql()));
  auto again = conn.Sql(Example2Sql());
  ASSERT_OK(again.status());
  EXPECT_FALSE(again->cache_hit());
  EXPECT_EQ(server.cache_stats().size, 0);
}

TEST(ServerTest, LruEvictionDropsColdestPlan) {
  ServerOptions options;
  options.plan_cache_capacity = 2;
  Server server(options);
  PopulateEmpDept(&server);
  ServerSession conn = server.Connect();

  const std::string qa = "select e.sal from emp e";
  const std::string qb = "select e.age from emp e";
  const std::string qc = "select d.budget from dept d";

  ASSERT_OK(conn.Sql(qa));
  ASSERT_OK(conn.Sql(qb));
  // Touch qa so qb becomes the LRU victim.
  auto hit = conn.Sql(qa);
  ASSERT_OK(hit.status());
  EXPECT_TRUE(hit->cache_hit());
  // Third distinct plan evicts qb.
  ASSERT_OK(conn.Sql(qc));

  PlanCacheStats stats = server.cache_stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.size, 2);

  auto qa_again = conn.Sql(qa);
  ASSERT_OK(qa_again.status());
  EXPECT_TRUE(qa_again->cache_hit());
  auto qb_again = conn.Sql(qb);
  ASSERT_OK(qb_again.status());
  EXPECT_FALSE(qb_again->cache_hit());
}

TEST(ServerTest, StatsEpochBumpInvalidatesCachedPlans) {
  Server server;
  PopulateEmpDept(&server);
  ServerSession conn = server.Connect();

  auto before = conn.Sql(Example2Sql());
  ASSERT_OK(before.status());
  auto cached = conn.Sql(Example2Sql());
  ASSERT_OK(cached.status());
  ASSERT_TRUE(cached->cache_hit());
  auto baseline = cached->Execute();
  ASSERT_OK(baseline.status());

  const int64_t epoch_before = server.stats_epoch();
  server.catalog().BumpStatsEpoch();
  EXPECT_GT(server.stats_epoch(), epoch_before);

  // A bare global bump leaves every per-table epoch unchanged: the entry's
  // dependency stamps still match, so it survives as a hit and the counter
  // records the invalidation that whole-cache keying would have inflicted.
  auto survived = conn.Sql(Example2Sql());
  ASSERT_OK(survived.status());
  EXPECT_TRUE(survived->cache_hit());
  EXPECT_EQ(server.cache_stats().invalidations, 0);
  EXPECT_EQ(server.cache_stats().avoided_invalidations, 1);

  // Bumping an epoch of a table the plan reads is a real data change: the
  // cached plan must be re-prepared.
  server.catalog().BumpTableEpoch(0);

  auto fresh = conn.Sql(Example2Sql());
  ASSERT_OK(fresh.status());
  EXPECT_FALSE(fresh->cache_hit());
  EXPECT_EQ(server.cache_stats().invalidations, 1);

  // Re-optimizing against unchanged data still gives the same answer.
  auto result = fresh->Execute();
  ASSERT_OK(result.status());
  EXPECT_EQ(result->Fingerprint(), baseline->Fingerprint());

  // And the re-prepared plan is cached under the new epoch.
  auto recached = conn.Sql(Example2Sql());
  ASSERT_OK(recached.status());
  EXPECT_TRUE(recached->cache_hit());
}

TEST(ServerTest, UnrelatedTableMutationKeepsCachedPlan) {
  Server server;
  PopulateEmpDept(&server);
  ServerSession conn = server.Connect();

  // Example 1's first query reads only emp (table 0); dept is table 1.
  const std::string emp_only =
      "select dno, sum(sal) as dsal from emp group by dno;";
  ASSERT_OK(conn.Sql(emp_only).status());

  // Mutating dept bumps its table epoch and the global stats epoch, but the
  // emp-only plan's dependency stamps all still match.
  server.catalog().BumpTableEpoch(1);

  auto survived = conn.Sql(emp_only);
  ASSERT_OK(survived.status());
  EXPECT_TRUE(survived->cache_hit());
  EXPECT_EQ(server.cache_stats().invalidations, 0);
  EXPECT_EQ(server.cache_stats().avoided_invalidations, 1);

  // Mutating emp itself invalidates it.
  server.catalog().BumpTableEpoch(0);
  auto fresh = conn.Sql(emp_only);
  ASSERT_OK(fresh.status());
  EXPECT_FALSE(fresh->cache_hit());
  EXPECT_EQ(server.cache_stats().invalidations, 1);
}

TEST(ServerMatViewTest, ViewBackedPlanInvalidatesOnDeltaAndRefresh) {
  Server server;
  PopulateEmpDept(&server);
  ServerSession conn = server.Connect();

  auto ddl = conn.ExecuteDdl(
      "create materialized view dsal (dno, total) as "
      "select e.dno, sum(e.sal) from emp e group by e.dno");
  ASSERT_OK(ddl.status());
  EXPECT_NE(ddl->find("dsal"), std::string::npos);

  const std::string sql =
      "select e.dno, sum(e.sal) from emp e group by e.dno;";
  auto q = conn.Sql(sql);
  ASSERT_OK(q.status());
  EXPECT_TRUE(q->view_backed());
  auto base_bytes = q->Execute();
  ASSERT_OK(base_bytes.status());
  auto hit = conn.Sql(sql);
  ASSERT_OK(hit.status());
  EXPECT_TRUE(hit->cache_hit());

  // A delta through the server maintains the single-relation view in place;
  // the emp table epoch and the view's content epoch both move, so the
  // cached view-backed plan re-prepares instead of serving stale bytes.
  TableDelta delta;
  delta.table = 0;  // emp
  delta.inserts = {{Value::Int(9001), Value::Int(1), Value::Real(1234.5),
                    Value::Int(30)}};
  MaintenanceReport report;
  ASSERT_OK(conn.ApplyDelta(delta, &report));
  EXPECT_EQ(report.views_maintained, 1);

  auto fresh = conn.Sql(sql);
  ASSERT_OK(fresh.status());
  EXPECT_FALSE(fresh->cache_hit());
  EXPECT_TRUE(fresh->view_backed());
  auto maintained = fresh->Execute();
  ASSERT_OK(maintained.status());

  // The maintained view answers with exactly the bytes a view-less server
  // computes from base tables after the same delta.
  Server plain{[] {
    ServerOptions o = ServerOptions::Default();
    o.use_materialized_views = false;
    return o;
  }()};
  PopulateEmpDept(&plain);
  ASSERT_OK(plain.ApplyDelta(delta, nullptr));
  ServerSession plain_conn = plain.Connect();
  auto plain_q = plain_conn.Sql(sql);
  ASSERT_OK(plain_q.status());
  EXPECT_FALSE(plain_q->view_backed());
  auto plain_bytes = plain_q->Execute();
  ASSERT_OK(plain_bytes.status());
  EXPECT_EQ(maintained->Fingerprint(), plain_bytes->Fingerprint());

  // REFRESH bumps the view's content epoch: the "v:dsal" dependency stamp
  // no longer matches and the plan re-prepares again.
  auto recached = conn.Sql(sql);
  ASSERT_OK(recached.status());
  EXPECT_TRUE(recached->cache_hit());
  ASSERT_OK(conn.ExecuteDdl("refresh materialized view dsal").status());
  auto after_refresh = conn.Sql(sql);
  ASSERT_OK(after_refresh.status());
  EXPECT_FALSE(after_refresh->cache_hit());
  EXPECT_TRUE(after_refresh->view_backed());
  auto refreshed = after_refresh->Execute();
  ASSERT_OK(refreshed.status());
  EXPECT_EQ(refreshed->Fingerprint(), plain_bytes->Fingerprint());
}

TEST(ServerMatViewTest, DroppedStalenessPathRefreshRestoresServing) {
  // A multi-relation view goes stale under a delta; the serving layer skips
  // it (base plan) until REFRESH through the server restores view answering.
  Server server;
  PopulateEmpDept(&server);
  ServerSession conn = server.Connect();
  ASSERT_OK(conn.ExecuteDdl(
                    "create materialized view dept_pay (dno, total) as "
                    "select e.dno, sum(e.sal) from emp e, dept d "
                    "where e.dno = d.dno group by e.dno")
                .status());

  const std::string sql =
      "select e.dno, sum(e.sal) from emp e, dept d "
      "where e.dno = d.dno group by e.dno;";
  auto answered = conn.Sql(sql);
  ASSERT_OK(answered.status());
  EXPECT_TRUE(answered->view_backed());

  TableDelta delta;
  delta.table = 0;  // emp
  delta.inserts = {{Value::Int(9001), Value::Int(1), Value::Real(10.0),
                    Value::Int(30)}};
  MaintenanceReport report;
  ASSERT_OK(conn.ApplyDelta(delta, &report));
  EXPECT_EQ(report.views_marked_stale, 1);

  // Stale view: the rewriter must not use it, and the old view-backed plan
  // must not be served from cache.
  auto base_plan = conn.Sql(sql);
  ASSERT_OK(base_plan.status());
  EXPECT_FALSE(base_plan->cache_hit());
  EXPECT_FALSE(base_plan->view_backed());
  auto base_bytes = base_plan->Execute();
  ASSERT_OK(base_bytes.status());

  ASSERT_OK(conn.ExecuteDdl("refresh materialized view dept_pay").status());
  auto restored = conn.Sql(sql);
  ASSERT_OK(restored.status());
  EXPECT_TRUE(restored->view_backed());
  auto restored_bytes = restored->Execute();
  ASSERT_OK(restored_bytes.status());
  EXPECT_EQ(restored_bytes->Fingerprint(), base_bytes->Fingerprint());
}

TEST(ServerMatViewTest, ConcurrentRefreshAndReadsStayConsistent) {
  // Readers execute view-backed and base plans while a writer thread applies
  // deltas and refreshes; the shared catalog lock must keep every observed
  // result internally consistent (no torn backing tables, no crashes).
  Server server;
  PopulateEmpDept(&server);
  ServerSession ddl_conn = server.Connect();
  ASSERT_OK(ddl_conn
                .ExecuteDdl("create materialized view dsal (dno, total) as "
                            "select e.dno, sum(e.sal) from emp e group by "
                            "e.dno")
                .status());

  constexpr int kReaders = 4;
  constexpr int kRoundsPerReader = 25;
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&server, &failed] {
      ServerSession conn = server.Connect();
      for (int i = 0; i < kRoundsPerReader && !failed.load(); ++i) {
        auto q = conn.Sql(
            "select e.dno, sum(e.sal) from emp e group by e.dno;");
        if (!q.ok() || !q->Execute().ok()) {
          failed.store(true);
          break;
        }
      }
    });
  }
  std::thread writer([&server, &failed] {
    ServerSession conn = server.Connect();
    for (int i = 0; i < 20 && !failed.load(); ++i) {
      TableDelta delta;
      delta.table = 0;  // emp
      delta.inserts = {{Value::Int(20000 + i), Value::Int(1 + (i % 3)),
                        Value::Real(100.0 + i), Value::Int(30)}};
      if (!conn.ApplyDelta(delta, nullptr).ok()) {
        failed.store(true);
        break;
      }
      if (i % 5 == 0 &&
          !conn.ExecuteDdl("refresh materialized view dsal").ok()) {
        failed.store(true);
        break;
      }
    }
  });
  for (std::thread& t : readers) t.join();
  writer.join();
  ASSERT_FALSE(failed.load());

  // After the dust settles, the view is either fresh (maintained) and must
  // agree with base bytes, byte for byte.
  ASSERT_OK(ddl_conn.ExecuteDdl("refresh materialized view dsal").status());
  ServerSession conn = server.Connect();
  const std::string sql =
      "select e.dno, sum(e.sal) from emp e group by e.dno;";
  auto viewed = conn.Sql(sql);
  ASSERT_OK(viewed.status());
  EXPECT_TRUE(viewed->view_backed());
  auto viewed_bytes = viewed->Execute();
  ASSERT_OK(viewed_bytes.status());

  Server plain{[] {
    ServerOptions o = ServerOptions::Default();
    o.use_materialized_views = false;
    return o;
  }()};
  PopulateEmpDept(&plain);
  // Nothing mutated plain's emp; replay the writer's inserts.
  for (int i = 0; i < 20; ++i) {
    TableDelta delta;
    delta.table = 0;
    delta.inserts = {{Value::Int(20000 + i), Value::Int(1 + (i % 3)),
                      Value::Real(100.0 + i), Value::Int(30)}};
    ASSERT_OK(plain.ApplyDelta(delta, nullptr));
  }
  ServerSession plain_conn = plain.Connect();
  auto plain_q = plain_conn.Sql(sql);
  ASSERT_OK(plain_q.status());
  auto plain_bytes = plain_q->Execute();
  ASSERT_OK(plain_bytes.status());
  EXPECT_EQ(viewed_bytes->Fingerprint(), plain_bytes->Fingerprint());
}

TEST(ServerTest, MutableTableAccessBumpsEpoch) {
  Server server;
  PopulateEmpDept(&server);
  ServerSession conn = server.Connect();
  ASSERT_OK(conn.Sql(Example2Sql()));

  // Any mutable catalog touch is conservatively treated as a data change.
  ASSERT_GT(server.catalog().num_tables(), 0);
  const int64_t before = server.stats_epoch();
  server.catalog().mutable_table(0);
  EXPECT_GT(server.stats_epoch(), before);

  auto q = conn.Sql(Example2Sql());
  ASSERT_OK(q.status());
  EXPECT_FALSE(q->cache_hit());
}

TEST(ServerTest, ConcurrentClientsMatchSerialExecution) {
  ServerOptions options;
  options.threads = 2;
  Server server(options);
  PopulateEmpDept(&server);

  const std::vector<std::string> mix = {
      Example1Sql(), Example2Sql(), "select e.sal from emp e",
      "select d.budget from dept d"};

  // Serial baseline: one session runs the mix once.
  std::vector<std::string> serial;
  {
    ServerSession conn = server.Connect();
    for (const std::string& sql : mix) {
      auto q = conn.Sql(sql);
      ASSERT_OK(q.status());
      auto r = q->Execute();
      ASSERT_OK(r.status());
      serial.push_back(r->Fingerprint());
    }
  }

  constexpr int kClients = 4;
  constexpr int kReps = 3;
  std::vector<std::vector<std::string>> fingerprints(kClients);
  std::vector<std::string> errors(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      ServerSession conn = server.Connect();
      for (int rep = 0; rep < kReps; ++rep) {
        for (const std::string& sql : mix) {
          auto q = conn.Sql(sql);
          if (!q.ok()) {
            errors[c] = q.status().ToString();
            return;
          }
          auto r = q->Execute();
          if (!r.ok()) {
            errors[c] = r.status().ToString();
            return;
          }
          fingerprints[c].push_back(r->Fingerprint());
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (int c = 0; c < kClients; ++c) {
    ASSERT_TRUE(errors[c].empty()) << "client " << c << ": " << errors[c];
    ASSERT_EQ(fingerprints[c].size(), static_cast<size_t>(kReps * mix.size()));
    for (int rep = 0; rep < kReps; ++rep) {
      for (size_t i = 0; i < mix.size(); ++i) {
        EXPECT_EQ(fingerprints[c][rep * mix.size() + i], serial[i])
            << "client " << c << " rep " << rep << " query " << i
            << " diverged from serial execution";
      }
    }
  }

  // Every statement after the first appearance of its text was a cache hit.
  PlanCacheStats stats = server.cache_stats();
  EXPECT_EQ(stats.misses, static_cast<int64_t>(mix.size()));
  EXPECT_EQ(stats.hits,
            static_cast<int64_t>(mix.size() * (1 + kClients * kReps) -
                                 mix.size()));
}

TEST(ServerTest, AdmissionControlLimitsConcurrencyFifo) {
  ServerOptions options;
  options.max_concurrent_queries = 1;
  Server server(options);
  PopulateEmpDept(&server);

  constexpr int kClients = 4;
  std::vector<std::string> errors(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      ServerSession conn = server.Connect();
      auto q = conn.Sql(Example2Sql());
      if (!q.ok()) {
        errors[c] = q.status().ToString();
        return;
      }
      for (int rep = 0; rep < 3; ++rep) {
        auto r = q->Execute();
        if (!r.ok()) {
          errors[c] = r.status().ToString();
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    ASSERT_TRUE(errors[c].empty()) << "client " << c << ": " << errors[c];
  }

  EXPECT_EQ(server.admission_peak_running(), 1);
  EXPECT_EQ(server.admission_total(), kClients * 3);
}

TEST(ServerTest, QueryOutlivingServerFailsCleanly) {
  auto server = std::make_unique<Server>();
  PopulateEmpDept(server.get());
  ServerSession conn = server->Connect();
  auto q = conn.Sql(Example2Sql());
  ASSERT_OK(q.status());

  server.reset();

  auto result = q->Execute();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("destroyed"), std::string::npos)
      << result.status().ToString();
  auto analyzed = q->ExplainAnalyze();
  ASSERT_FALSE(analyzed.ok());

  auto prepared = conn.Sql(Example2Sql());
  ASSERT_FALSE(prepared.ok());
  EXPECT_NE(prepared.status().ToString().find("destroyed"), std::string::npos)
      << prepared.status().ToString();
}

TEST(ServerTest, MovedFromQueryFailsCleanly) {
  Server server;
  PopulateEmpDept(&server);
  ServerSession conn = server.Connect();
  auto q = conn.Sql(Example2Sql());
  ASSERT_OK(q.status());

  ServerQuery moved = std::move(*q);
  auto result = q->Execute();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("moved-from"), std::string::npos)
      << result.status().ToString();
  ASSERT_OK(moved.Execute());

  // Introspection stays valid on the moved-from query: the move transfers
  // the right to execute but shares the immutable plan.
  EXPECT_EQ(q->Explain(), moved.Explain());
  EXPECT_FALSE(q->Explain().empty());
  EXPECT_EQ(q->description(), moved.description());
  EXPECT_NE(q->plan(), nullptr);
}

TEST(ServerTest, SteadyStateServingDoesNotBumpEpoch) {
  Server server;
  PopulateEmpDept(&server);
  ServerSession conn = server.Connect();
  auto warm = conn.Sql(Example2Sql());
  ASSERT_OK(warm.status());
  ASSERT_OK(warm->Execute());

  // Serving (prepare + execute, hits and misses alike) is read-only on the
  // catalog: the epoch must not move, or the cache would degrade to 0% hits.
  const int64_t epoch = server.stats_epoch();
  for (int i = 0; i < 3; ++i) {
    auto q = conn.Sql(Example2Sql());
    ASSERT_OK(q.status());
    EXPECT_TRUE(q->cache_hit());
    ASSERT_OK(q->Execute());
  }
  auto miss = conn.Sql("select e.age from emp e");
  ASSERT_OK(miss.status());
  EXPECT_FALSE(miss->cache_hit());
  ASSERT_OK(miss->Execute());
  EXPECT_EQ(server.stats_epoch(), epoch);
}

TEST(SessionLifetimeTest, PreparedQueryOutlivingSessionFailsCleanly) {
  auto session = std::make_unique<Session>();
  {
    auto tables = CreateEmpDeptSchema(&session->catalog());
    ASSERT_OK(tables.status());
    ASSERT_OK(GenerateEmpDeptData(&session->catalog(), *tables,
                                  EmpDeptOptions{}));
  }
  auto q = session->Sql(Example2Sql());
  ASSERT_OK(q.status());
  ASSERT_OK(q->Execute());

  session.reset();

  auto result = q->Execute();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("destroyed"), std::string::npos)
      << result.status().ToString();
  auto analyzed = q->ExplainAnalyze();
  ASSERT_FALSE(analyzed.ok());
}

TEST(SessionLifetimeTest, MovedFromPreparedQueryFailsCleanly) {
  Session session;
  {
    auto tables = CreateEmpDeptSchema(&session.catalog());
    ASSERT_OK(tables.status());
    ASSERT_OK(
        GenerateEmpDeptData(&session.catalog(), *tables, EmpDeptOptions{}));
  }
  auto q = session.Sql(Example2Sql());
  ASSERT_OK(q.status());

  PreparedQuery moved = std::move(*q);
  auto result = q->Execute();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("moved-from"), std::string::npos)
      << result.status().ToString();
  ASSERT_OK(moved.Execute());
}

}  // namespace
}  // namespace aggview
