#include <gtest/gtest.h>

#include "optimizer/plan_validator.h"
#include "test_util.h"

namespace aggview {
namespace {

class PlanValidatorTest : public ::testing::Test {
 protected:
  PlanValidatorTest()
      : fixture_(MakeEmpDept(Options())), q_(fixture_.catalog.get()) {
    e_ = q_.AddRangeVar(fixture_.tables.emp, "e");
    d_ = q_.AddRangeVar(fixture_.tables.dept, "d");
    q_.base_rels() = {e_, d_};
    eno_ = q_.range_var(e_).columns[0];
    e_dno_ = q_.range_var(e_).columns[1];
    sal_ = q_.range_var(e_).columns[2];
    d_dno_ = q_.range_var(d_).columns[0];
    q_.select_list() = {eno_};
  }

  static EmpDeptOptions Options() {
    EmpDeptOptions o;
    o.num_employees = 500;
    o.num_departments = 20;
    return o;
  }

  EmpDeptFixture fixture_;
  Query q_;
  int e_, d_;
  ColId eno_, e_dno_, sal_, d_dno_;
};

TEST_F(PlanValidatorTest, AcceptsWellFormedPlans) {
  PlanBuilder b(q_);
  std::set<ColId> needed = {eno_, e_dno_, d_dno_};
  PlanPtr plan = b.Join(JoinAlgo::kHash, b.Scan(e_, {}, needed),
                        b.Scan(d_, {}, needed), {EqCols(e_dno_, d_dno_)},
                        needed);
  EXPECT_OK(ValidatePlan(plan, q_));
}

TEST_F(PlanValidatorTest, AcceptsOptimizerOutput) {
  auto query = ParseAndBind(*fixture_.catalog, Example1Sql());
  ASSERT_OK(query);
  auto optimized = OptimizeQueryWithAggViews(*query, OptimizerOptions{});
  ASSERT_OK(optimized);
  EXPECT_OK(ValidatePlan(optimized->plan, optimized->query));
}

TEST_F(PlanValidatorTest, RejectsNullPlan) {
  EXPECT_FALSE(ValidatePlan(nullptr, q_).ok());
}

TEST_F(PlanValidatorTest, RejectsScanProjectingForeignColumn) {
  PlanBuilder b(q_);
  PlanPtr scan = b.Scan(e_, {}, {eno_});
  // Corrupt: make the scan claim it outputs a dept column.
  auto broken = std::make_shared<PlanNode>(*scan);
  broken->output = RowLayout({eno_, d_dno_});
  EXPECT_FALSE(ValidatePlan(broken, q_).ok());
}

TEST_F(PlanValidatorTest, RejectsJoinPredicateOnMissingColumn) {
  PlanBuilder b(q_);
  // sal is projected away before the join but referenced by its predicate.
  PlanPtr left = b.Scan(e_, {}, {eno_});
  PlanPtr right = b.Scan(d_, {}, {d_dno_});
  auto broken = std::make_shared<PlanNode>();
  broken->kind = PlanNode::Kind::kJoin;
  broken->algo = JoinAlgo::kBlockNestedLoop;
  broken->left = left;
  broken->right = right;
  broken->join_preds = {Cmp(Col(sal_), CompareOp::kGt, LitInt(0))};
  broken->output = RowLayout({eno_, d_dno_});
  EXPECT_FALSE(ValidatePlan(broken, q_).ok());
}

TEST_F(PlanValidatorTest, RejectsHashJoinWithoutEquiJoin) {
  PlanBuilder b(q_);
  std::set<ColId> needed = {eno_, sal_, d_dno_};
  PlanPtr left = b.Scan(e_, {}, needed);
  PlanPtr right = b.Scan(d_, {}, needed);
  auto broken = std::make_shared<PlanNode>();
  broken->kind = PlanNode::Kind::kJoin;
  broken->algo = JoinAlgo::kHash;
  broken->left = left;
  broken->right = right;
  broken->join_preds = {Cmp(Col(sal_), CompareOp::kGt, LitInt(0))};
  broken->output = RowLayout({eno_});
  EXPECT_FALSE(ValidatePlan(broken, q_).ok());
}

TEST_F(PlanValidatorTest, RejectsHavingOnNonOutput) {
  PlanBuilder b(q_);
  PlanPtr scan = b.Scan(e_, {}, {e_dno_, sal_});
  GroupBySpec gb;
  gb.grouping = {e_dno_};
  ColId out = q_.columns().Add("sum", DataType::kDouble);
  gb.aggregates = {{AggKind::kSum, {sal_}, out}};
  // HAVING references the raw salary, which the group-by does not output.
  gb.having = {Cmp(Col(sal_), CompareOp::kGt, LitInt(0))};
  auto broken = std::make_shared<PlanNode>();
  broken->kind = PlanNode::Kind::kGroupBy;
  broken->left = scan;
  broken->group_by = gb;
  broken->output = RowLayout({e_dno_, out});
  EXPECT_FALSE(ValidatePlan(broken, q_).ok());
}

TEST_F(PlanValidatorTest, RejectsNegativeEstimates) {
  PlanBuilder b(q_);
  PlanPtr scan = b.Scan(e_, {}, {eno_});
  auto broken = std::make_shared<PlanNode>(*scan);
  broken->est.rows = -1.0;
  EXPECT_FALSE(ValidatePlan(broken, q_).ok());
}

TEST_F(PlanValidatorTest, DanglingColumnErrorNamesColumnAndNode) {
  PlanBuilder b(q_);
  PlanPtr left = b.Scan(e_, {}, {eno_});
  PlanPtr right = b.Scan(d_, {}, {d_dno_});
  auto broken = std::make_shared<PlanNode>();
  broken->kind = PlanNode::Kind::kJoin;
  broken->algo = JoinAlgo::kBlockNestedLoop;
  broken->left = left;
  broken->right = right;
  // sal was projected away by the left scan: the reference dangles.
  broken->join_preds = {Cmp(Col(sal_), CompareOp::kGt, LitInt(0))};
  broken->output = RowLayout({eno_, d_dno_});
  Status st = ValidatePlan(broken, q_);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("join predicate references unavailable column"),
            std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("e.sal"), std::string::npos) << st.message();
  EXPECT_NE(st.message().find("in node:"), std::string::npos) << st.message();
}

TEST_F(PlanValidatorTest, HashJoinWithoutEquiConjunctNamesJoinNode) {
  PlanBuilder b(q_);
  std::set<ColId> needed = {eno_, sal_, d_dno_};
  PlanPtr left = b.Scan(e_, {}, needed);
  PlanPtr right = b.Scan(d_, {}, needed);
  auto broken = std::make_shared<PlanNode>();
  broken->kind = PlanNode::Kind::kJoin;
  broken->algo = JoinAlgo::kHash;
  broken->left = left;
  broken->right = right;
  // A range predicate only: nothing a hash table could be keyed on.
  broken->join_preds = {Cmp(Col(sal_), CompareOp::kGt, Col(d_dno_))};
  broken->output = RowLayout({eno_});
  Status st = ValidatePlan(broken, q_);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("hash/merge join without equi-join conjunct"),
            std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("Join(hash)"), std::string::npos)
      << st.message();
}

TEST_F(PlanValidatorTest, NonMonotoneChildCostNamesNode) {
  PlanBuilder b(q_);
  std::set<ColId> needed = {eno_, e_dno_, d_dno_};
  PlanPtr plan = b.Join(JoinAlgo::kHash, b.Scan(e_, {}, needed),
                        b.Scan(d_, {}, needed), {EqCols(e_dno_, d_dno_)},
                        needed);
  ASSERT_OK(ValidatePlan(plan, q_));
  // Corrupt: the join claims to cost less than its own inputs, which an
  // IO-based cost model can never produce.
  auto broken = std::make_shared<PlanNode>(*plan);
  broken->cost = plan->left->cost - 1.0;
  Status st = ValidatePlan(broken, q_);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("cost decreased at join"), std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("in node:"), std::string::npos) << st.message();
}

TEST_F(PlanValidatorTest, RejectsGroupByThatGrowsRows) {
  PlanBuilder b(q_);
  PlanPtr scan = b.Scan(e_, {}, {e_dno_, sal_});
  GroupBySpec gb;
  gb.grouping = {e_dno_};
  PlanPtr grouped = b.GroupBy(scan, gb, {e_dno_});
  auto broken = std::make_shared<PlanNode>(*grouped);
  broken->est.rows = scan->est.rows * 2.0;
  EXPECT_FALSE(ValidatePlan(broken, q_).ok());
}

}  // namespace
}  // namespace aggview
