#include <gtest/gtest.h>

#include "transform/pushdown.h"
#include "test_util.h"

namespace aggview {
namespace {

class PushdownTest : public ::testing::Test {
 protected:
  PushdownTest() : fixture_(MakeEmpDept(Options())) {}

  static EmpDeptOptions Options() {
    EmpDeptOptions o;
    o.num_employees = 300;
    o.num_departments = 12;
    return o;
  }

  /// Example 2 phrased as an aggregate view so the view-level analysis
  /// applies: average salary per department with budget < 1M.
  std::string Example2AsViewSql() const {
    return R"sql(
create view c (dno, asal) as
  select e.dno, avg(e.sal)
  from emp e, dept d
  where e.dno = d.dno and d.budget < 1000000
  group by e.dno;
select c.dno, c.asal from c
)sql";
  }

  EmpDeptFixture fixture_;
};

TEST_F(PushdownTest, Example2MinimalInvariantSetIsEmp) {
  auto q = ParseAndBind(*fixture_.catalog, Example2AsViewSql());
  ASSERT_OK(q);
  const AggView& view = q->views()[0];
  InvariantAnalysis analysis = AnalyzeInvariantGrouping(*q, view);
  // The paper: "The minimal invariant set of the query C consists of the
  // singleton relation emp."
  ASSERT_EQ(analysis.minimal_invariant_set.size(), 1u);
  int kept = *analysis.minimal_invariant_set.begin();
  EXPECT_EQ(q->range_var(kept).alias, "c.e");
  EXPECT_EQ(analysis.removable.size(), 1u);
}

TEST_F(PushdownTest, AggregateOverDroppedSideBlocksMove) {
  // avg(d.budget): the aggregate argument comes from dept, so the group-by
  // cannot be moved past dept (IG1).
  auto q = ParseAndBind(*fixture_.catalog, R"sql(
create view c (dno, ab) as
  select e.dno, avg(d.budget)
  from emp e, dept d
  where e.dno = d.dno
  group by e.dno;
select c.dno, c.ab from c
)sql");
  ASSERT_OK(q);
  InvariantAnalysis analysis = AnalyzeInvariantGrouping(*q, q->views()[0]);
  EXPECT_EQ(analysis.minimal_invariant_set.size(), 2u);
}

TEST_F(PushdownTest, JoinColumnOutsideGroupingBlocksMove) {
  // Join on e.sal = d.budget: e.sal is not a grouping column (IG2).
  auto q = ParseAndBind(*fixture_.catalog, R"sql(
create view c (dno, cnt) as
  select e.dno, count(*)
  from emp e, dept d
  where e.sal = d.budget
  group by e.dno;
select c.dno, c.cnt from c
)sql");
  ASSERT_OK(q);
  InvariantAnalysis analysis = AnalyzeInvariantGrouping(*q, q->views()[0]);
  EXPECT_EQ(analysis.minimal_invariant_set.size(), 2u);
}

TEST_F(PushdownTest, NonKeyJoinBlocksMoveForDuplicateSensitiveAggregates) {
  // emp joined with emp on dno: many matches per group, so SUM/COUNT would
  // be inflated (IG3 fails — e2.dno is not a key of emp).
  auto q = ParseAndBind(*fixture_.catalog, R"sql(
create view c (dno, total) as
  select e1.dno, sum(e1.sal)
  from emp e1, emp e2
  where e1.dno = e2.dno
  group by e1.dno;
select c.dno, c.total from c
)sql");
  ASSERT_OK(q);
  InvariantAnalysis analysis = AnalyzeInvariantGrouping(*q, q->views()[0]);
  EXPECT_EQ(analysis.minimal_invariant_set.size(), 2u);
}

TEST_F(PushdownTest, NonKeyJoinBlocksMoveEvenForMinMax) {
  // Same join with MIN. Duplicate-insensitivity keeps the MIN *value* right
  // under fan-out, but moving e2 out still changes the group-by's output
  // multiplicity: the shrunk view joined back with e2 emits one row per
  // (dno, matching e2) instead of one per dno, which any bag-semantics
  // consumer observes. The differential fuzzer caught exactly this, so IG3
  // applies regardless of aggregate kind.
  auto q = ParseAndBind(*fixture_.catalog, R"sql(
create view c (dno, m) as
  select e1.dno, min(e1.sal)
  from emp e1, emp e2
  where e1.dno = e2.dno
  group by e1.dno;
select c.dno, c.m from c
)sql");
  ASSERT_OK(q);
  InvariantAnalysis analysis = AnalyzeInvariantGrouping(*q, q->views()[0]);
  EXPECT_EQ(analysis.minimal_invariant_set.size(), 2u);
}

TEST_F(PushdownTest, EqualityLiteralSelectionsHelpCoverKeys) {
  RelShape rel;
  rel.cols = {10, 11};
  rel.keys = {{10, 11}};  // composite key
  GroupBySpec gb;
  gb.grouping = {1};
  gb.aggregates = {{AggKind::kSum, {2}, 3}};
  // Equi-join fixes col 10, literal equality fixes col 11.
  std::vector<Predicate> preds = {EqCols(1, 10),
                                  Cmp(Col(11), CompareOp::kEq, LitInt(5))};
  EXPECT_TRUE(CanMoveGroupByPastShape(rel, {1, 2}, preds, gb));
  // Without the literal the key is not covered.
  std::vector<Predicate> partial = {EqCols(1, 10)};
  EXPECT_FALSE(CanMoveGroupByPastShape(rel, {1, 2}, partial, gb));
}

TEST_F(PushdownTest, GroupingColumnsOfDroppedRelCountTowardKey) {
  RelShape rel;
  rel.cols = {10, 11};
  rel.keys = {{10}};
  GroupBySpec gb;
  gb.grouping = {1, 10};  // grouping includes rel's key column
  gb.aggregates = {{AggKind::kSum, {2}, 3}};
  EXPECT_TRUE(CanMoveGroupByPastShape(rel, {1, 2}, {}, gb));
}

TEST_F(PushdownTest, RemovableShapesFixpointCascades) {
  // Chain: G over (A ⋈ B ⋈ C), join cols in grouping, B and C key-joined.
  // C is removable only after B is (its join partner is B's grouping col).
  RelShape a{{1, 2}, {{1}}};
  RelShape b{{10, 11}, {{10}}};
  RelShape c{{20, 21}, {{20}}};
  GroupBySpec gb;
  gb.grouping = {1, 11};
  gb.aggregates = {{AggKind::kSum, {2}, 30}};
  std::vector<Predicate> preds = {EqCols(1, 10), EqCols(11, 20)};
  std::set<size_t> removable = RemovableShapes({a, b, c}, preds, gb);
  EXPECT_EQ(removable, (std::set<size_t>{1, 2}));
}

TEST_F(PushdownTest, ShrinkViewMovesRemovableRelations) {
  auto q = ParseAndBind(*fixture_.catalog, Example2AsViewSql());
  ASSERT_OK(q);
  std::set<int> moved;
  auto shrunk = ShrinkViewToInvariantSet(*q, 0, &moved);
  ASSERT_OK(shrunk);
  EXPECT_EQ(moved.size(), 1u);
  EXPECT_EQ(shrunk->views()[0].spj.rels.size(), 1u);
  EXPECT_EQ(shrunk->base_rels().size(), 1u);
  // The join predicate and the budget selection moved to the top block.
  EXPECT_EQ(shrunk->predicates().size(), 2u);
  EXPECT_OK(shrunk->Validate());
}

TEST_F(PushdownTest, ShrinkViewPreservesResults) {
  auto q = ParseAndBind(*fixture_.catalog, Example2AsViewSql());
  ASSERT_OK(q);
  auto shrunk = ShrinkViewToInvariantSet(*q, 0, nullptr);
  ASSERT_OK(shrunk);

  auto plan_orig = OptimizeTraditional(*q);
  ASSERT_OK(plan_orig);
  auto plan_shrunk = OptimizeTraditional(*shrunk);
  ASSERT_OK(plan_shrunk);

  auto r1 = ExecutePlan(plan_orig->plan, plan_orig->query);
  ASSERT_OK(r1);
  auto r2 = ExecutePlan(plan_shrunk->plan, plan_shrunk->query);
  ASSERT_OK(r2);
  EXPECT_EQ(r1->Fingerprint(), r2->Fingerprint());
  EXPECT_GT(r1->rows.size(), 0u);
}

TEST_F(PushdownTest, ShrinkViewMovesHavingOnMovedColumns) {
  // HAVING references d.budget-grouped column? Build: group by e.dno, d.budget
  // with having on d.budget (moved column).
  auto q = ParseAndBind(*fixture_.catalog, R"sql(
create view c (dno, b, asal) as
  select e.dno, d.budget, avg(e.sal)
  from emp e, dept d
  where e.dno = d.dno
  group by e.dno, d.budget
  having d.budget > 500000;
select c.dno, c.asal from c
)sql");
  ASSERT_OK(q);
  std::set<int> moved;
  auto shrunk = ShrinkViewToInvariantSet(*q, 0, &moved);
  ASSERT_OK(shrunk);
  ASSERT_EQ(moved.size(), 1u);
  // The budget HAVING conjunct is now a top-level predicate.
  EXPECT_TRUE(shrunk->views()[0].group_by.having.empty());
  EXPECT_EQ(shrunk->predicates().size(), 2u);  // join pred + budget pred
  EXPECT_OK(shrunk->Validate());

  auto plan_orig = OptimizeTraditional(*q);
  ASSERT_OK(plan_orig);
  auto plan_shrunk = OptimizeTraditional(*shrunk);
  ASSERT_OK(plan_shrunk);
  auto r1 = ExecutePlan(plan_orig->plan, plan_orig->query);
  auto r2 = ExecutePlan(plan_shrunk->plan, plan_shrunk->query);
  ASSERT_OK(r1);
  ASSERT_OK(r2);
  EXPECT_EQ(r1->Fingerprint(), r2->Fingerprint());
}

TEST_F(PushdownTest, ShrinkViewNoOpWhenNothingRemovable) {
  auto q = ParseAndBind(*fixture_.catalog, Example1Sql());
  ASSERT_OK(q);
  std::set<int> moved;
  auto shrunk = ShrinkViewToInvariantSet(*q, 0, &moved);
  ASSERT_OK(shrunk);
  EXPECT_TRUE(moved.empty());  // single-relation view
}

TEST_F(PushdownTest, RelShapeCoversKey) {
  RelShape shape;
  shape.cols = {1, 2, 3};
  shape.keys = {{1, 2}};
  EXPECT_TRUE(shape.CoversKey({1, 2, 3}));
  EXPECT_FALSE(shape.CoversKey({1}));
  shape.keys.push_back({3});
  EXPECT_TRUE(shape.CoversKey({3}));
}

TEST_F(PushdownTest, ViewIndexOutOfRange) {
  auto q = ParseAndBind(*fixture_.catalog, Example2AsViewSql());
  ASSERT_OK(q);
  EXPECT_FALSE(ShrinkViewToInvariantSet(*q, 7, nullptr).ok());
}

}  // namespace
}  // namespace aggview
