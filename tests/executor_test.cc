#include <gtest/gtest.h>

#include "exec/executor.h"
#include "optimizer/plan.h"
#include "test_util.h"

namespace aggview {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : fixture_(MakeEmpDept(Options())), q_(fixture_.catalog.get()) {
    e_ = q_.AddRangeVar(fixture_.tables.emp, "e");
    d_ = q_.AddRangeVar(fixture_.tables.dept, "d");
    q_.base_rels() = {e_, d_};
    eno_ = q_.range_var(e_).columns[0];
    e_dno_ = q_.range_var(e_).columns[1];
    sal_ = q_.range_var(e_).columns[2];
    age_ = q_.range_var(e_).columns[3];
    d_dno_ = q_.range_var(d_).columns[0];
    budget_ = q_.range_var(d_).columns[1];
    q_.select_list() = {eno_};
  }

  static EmpDeptOptions Options() {
    EmpDeptOptions o;
    o.num_employees = 500;
    o.num_departments = 20;
    return o;
  }

  EmpDeptFixture fixture_;
  Query q_;
  int e_, d_;
  ColId eno_, e_dno_, sal_, age_, d_dno_, budget_;
};

TEST_F(ExecutorTest, ScanPlanExecutes) {
  PlanBuilder b(q_);
  PlanPtr scan = b.Scan(e_, {}, {eno_, sal_});
  IoAccountant io;
  auto result = ExecutePlan(scan, q_, ExecContext::Default().WithIo(&io));
  ASSERT_OK(result);
  EXPECT_EQ(result->rows.size(), 500u);
  EXPECT_GT(io.reads(), 0);
}

TEST_F(ExecutorTest, FilteredScanMatchesPredicate) {
  PlanBuilder b(q_);
  PlanPtr scan =
      b.Scan(e_, {Cmp(Col(age_), CompareOp::kLt, LitInt(22))}, {eno_, age_});
  auto result = ExecutePlan(scan, q_);
  ASSERT_OK(result);
  for (const Row& row : result->rows) {
    EXPECT_LT(row[1].AsInt(), 22);
  }
  EXPECT_LT(result->rows.size(), 100u);  // ~5% young fraction
}

TEST_F(ExecutorTest, JoinAlgorithmsAgree) {
  PlanBuilder b(q_);
  std::set<ColId> needed = {eno_, e_dno_, d_dno_, budget_};
  PlanPtr emp = b.Scan(e_, {}, needed);
  PlanPtr dept = b.Scan(d_, {}, needed);
  std::vector<Predicate> join = {EqCols(e_dno_, d_dno_)};

  std::string fp;
  for (JoinAlgo algo :
       {JoinAlgo::kBlockNestedLoop, JoinAlgo::kHash, JoinAlgo::kSortMerge}) {
    PlanPtr plan = b.Join(algo, emp, dept, join, needed);
    auto result = ExecutePlan(plan, q_);
    ASSERT_OK(result);
    EXPECT_EQ(result->rows.size(), 500u);  // FK join
    if (fp.empty()) {
      fp = result->Fingerprint();
    } else {
      EXPECT_EQ(result->Fingerprint(), fp) << JoinAlgoName(algo);
    }
  }
}

TEST_F(ExecutorTest, GroupByPlanComputesAverages) {
  PlanBuilder b(q_);
  ColId avg_out = q_.columns().Add("avg(e.sal)", DataType::kDouble);
  GroupBySpec gb;
  gb.grouping = {e_dno_};
  gb.aggregates = {{AggKind::kAvg, {sal_}, avg_out}};
  PlanPtr plan = b.GroupBy(b.Scan(e_, {}, {e_dno_, sal_}), gb,
                           {e_dno_, avg_out});
  auto result = ExecutePlan(plan, q_);
  ASSERT_OK(result);
  EXPECT_EQ(result->rows.size(), 20u);
  for (const Row& row : result->rows) {
    EXPECT_GT(row[1].AsDouble(), 20'000.0 - 1);
    EXPECT_LT(row[1].AsDouble(), 200'000.0 + 1);
  }
}

TEST_F(ExecutorTest, MeasuredIoMatchesEstimateForScan) {
  PlanBuilder b(q_);
  PlanPtr scan = b.Scan(e_, {}, {eno_});
  IoAccountant io;
  ASSERT_OK(ExecutePlan(scan, q_, ExecContext::Default().WithIo(&io)));
  EXPECT_DOUBLE_EQ(static_cast<double>(io.total()), scan->cost);
}

TEST_F(ExecutorTest, MeasuredIoMatchesEstimateForFkHashJoin) {
  // With exact stats the FK-join estimate is exact, so measured IO must
  // equal estimated IO.
  PlanBuilder b(q_);
  std::set<ColId> needed = {eno_, e_dno_, d_dno_};
  PlanPtr plan = b.Join(JoinAlgo::kHash, b.Scan(e_, {}, needed),
                        b.Scan(d_, {}, needed), {EqCols(e_dno_, d_dno_)},
                        needed);
  IoAccountant io;
  ASSERT_OK(ExecutePlan(plan, q_, ExecContext::Default().WithIo(&io)));
  EXPECT_NEAR(static_cast<double>(io.total()), plan->cost, 1.0);
}

TEST_F(ExecutorTest, ParallelRunChargesSameIoAsSerial) {
  // Deferred parallel charging: a hash join + aggregate pipeline charges the
  // same pages whether the build/scan/aggregate run on 1 worker or 8. Every
  // page formula is applied once, on merged totals, at the serial points.
  PlanBuilder b(q_);
  ColId avg_out = q_.columns().Add("avg(e.sal)", DataType::kDouble);
  std::set<ColId> needed = {e_dno_, sal_, d_dno_, budget_, avg_out};
  PlanPtr join = b.Join(JoinAlgo::kHash, b.Scan(e_, {}, needed),
                        b.Scan(d_, {}, needed), {EqCols(e_dno_, d_dno_)},
                        needed);
  GroupBySpec gb;
  gb.grouping = {e_dno_};
  gb.aggregates = {{AggKind::kAvg, {sal_}, avg_out}};
  PlanPtr plan = b.GroupBy(join, gb, {e_dno_, avg_out});

  IoAccountant serial_io;
  auto serial = ExecutePlan(plan, q_, ExecContext{}.WithIo(&serial_io));
  ASSERT_OK(serial);
  for (int threads : {2, 8}) {
    IoAccountant parallel_io;
    auto parallel = ExecutePlan(
        plan, q_,
        ExecContext{}.WithThreads(threads).WithMorselRows(64).WithIo(
            &parallel_io));
    ASSERT_OK(parallel);
    EXPECT_EQ(parallel->Fingerprint(), serial->Fingerprint())
        << "threads=" << threads;
    EXPECT_EQ(parallel_io.total(), serial_io.total()) << "threads=" << threads;
    EXPECT_EQ(parallel_io.reads(), serial_io.reads()) << "threads=" << threads;
    EXPECT_EQ(parallel_io.writes(), serial_io.writes())
        << "threads=" << threads;
  }
}

TEST_F(ExecutorTest, FingerprintOrderInsensitive) {
  QueryResult a, b;
  a.rows = {{Value::Int(1)}, {Value::Int(2)}};
  b.rows = {{Value::Int(2)}, {Value::Int(1)}};
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  QueryResult c;
  c.rows = {{Value::Int(1)}, {Value::Int(3)}};
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());
}

TEST_F(ExecutorTest, FingerprintToleratesFloatNoise) {
  QueryResult a, b;
  a.rows = {{Value::Real(0.1 + 0.2)}};
  b.rows = {{Value::Real(0.3)}};
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

TEST_F(ExecutorTest, MissingDataIsAnExecutionError) {
  Catalog empty_catalog;
  auto tables = CreateEmpDeptSchema(&empty_catalog);
  ASSERT_OK(tables);
  Query q(&empty_catalog);
  int e = q.AddRangeVar(tables->emp, "e");
  q.base_rels() = {e};
  q.select_list() = {q.range_var(e).columns[0]};
  PlanBuilder b(q);
  PlanPtr scan = b.Scan(e, {}, {q.range_var(e).columns[0]});
  auto result = ExecutePlan(scan, q);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kExecutionError);
}

}  // namespace
}  // namespace aggview
