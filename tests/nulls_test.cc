#include <gtest/gtest.h>

#include <set>

#include "test_util.h"

namespace aggview {
namespace {

/// SQL NULL-semantics tests for the executor: join keys that are NULL never
/// match (NULL = NULL is not true), every join algorithm agrees on that, and
/// a scalar aggregate over zero rows produces exactly one row with COUNT = 0
/// and SUM/MIN/MAX/AVG = NULL.

/// emp/dept where both sides of the join key contain NULLs:
///   dept.dno: 1, 2, NULL
///   emp.dno:  1, 1, 2, NULL, NULL
/// An inner join on dno has exactly 3 matches; the NULL-keyed rows on either
/// side must pair with nothing (in particular not with each other).
class NullKeysTest : public ::testing::Test {
 protected:
  NullKeysTest() {
    auto tables = CreateEmpDeptSchema(&catalog_);
    EXPECT_OK(tables);
    tables_ = *tables;

    auto dept = std::make_shared<Table>(catalog_.table(tables_.dept).schema);
    dept->AppendUnchecked({Value::Int(1), Value::Real(100000.0)});
    dept->AppendUnchecked({Value::Int(2), Value::Real(200000.0)});
    dept->AppendUnchecked({Value::Null(), Value::Real(300000.0)});
    catalog_.mutable_table(tables_.dept).stats = ComputeStats(*dept);
    catalog_.mutable_table(tables_.dept).data = dept;

    auto emp = std::make_shared<Table>(catalog_.table(tables_.emp).schema);
    auto add = [&](int64_t eno, Value dno, double sal) {
      emp->AppendUnchecked(
          {Value::Int(eno), std::move(dno), Value::Real(sal), Value::Int(30)});
    };
    add(1, Value::Int(1), 100);
    add(2, Value::Int(1), 200);
    add(3, Value::Int(2), 300);
    add(4, Value::Null(), 400);
    add(5, Value::Null(), 500);
    catalog_.mutable_table(tables_.emp).stats = ComputeStats(*emp);
    catalog_.mutable_table(tables_.emp).data = emp;
  }

  Catalog catalog_;
  EmpDeptTables tables_;
};

TEST_F(NullKeysTest, AllJoinAlgorithmsSkipNullKeysIdentically) {
  Query q(&catalog_);
  int d = q.AddRangeVar(tables_.dept, "d");
  int e = q.AddRangeVar(tables_.emp, "e");
  q.base_rels() = {d, e};
  ColId d_dno = q.range_var(d).columns[0];
  ColId e_dno = q.range_var(e).columns[1];
  ColId eno = q.range_var(e).columns[0];
  q.select_list() = {d_dno, eno};

  PlanBuilder b(q);
  std::set<ColId> needed = {d_dno, e_dno, eno};

  std::string reference;
  for (JoinAlgo algo :
       {JoinAlgo::kHash, JoinAlgo::kSortMerge, JoinAlgo::kBlockNestedLoop}) {
    PlanPtr join = b.Join(algo, b.Scan(d, {}, needed), b.Scan(e, {}, needed),
                          {EqCols(d_dno, e_dno)}, needed);
    auto result = ExecutePlan(b.Project(join, q.select_list()), q);
    ASSERT_OK(result);
    // dept 1 x emp {1,2}, dept 2 x emp {3}; NULL keys pair with nothing.
    EXPECT_EQ(result->rows.size(), 3u) << JoinAlgoName(algo);
    for (const Row& row : result->rows) {
      EXPECT_FALSE(row[0].is_null()) << JoinAlgoName(algo);
    }
    if (reference.empty()) {
      reference = result->Fingerprint();
    } else {
      EXPECT_EQ(result->Fingerprint(), reference) << JoinAlgoName(algo);
    }
  }
}

TEST_F(NullKeysTest, NestedLoopFallbackAgreesWithIndexedPath) {
  // Force the nested-loop join down its predicate-eval path (no equi-join
  // conjunct to index on: the equality is phrased arithmetically) and check
  // it against the hash join's answer on the same data.
  Query q(&catalog_);
  int d = q.AddRangeVar(tables_.dept, "d");
  int e = q.AddRangeVar(tables_.emp, "e");
  q.base_rels() = {d, e};
  ColId d_dno = q.range_var(d).columns[0];
  ColId e_dno = q.range_var(e).columns[1];
  ColId eno = q.range_var(e).columns[0];
  q.select_list() = {d_dno, eno};
  PlanBuilder b(q);
  std::set<ColId> needed = {d_dno, e_dno, eno};

  PlanPtr hash = b.Join(JoinAlgo::kHash, b.Scan(d, {}, needed),
                        b.Scan(e, {}, needed), {EqCols(d_dno, e_dno)}, needed);
  Predicate arith_eq =
      Cmp(Arith(ArithOp::kAdd, Col(d_dno), LitInt(0)), CompareOp::kEq,
          Col(e_dno));
  PlanPtr bnl = b.Join(JoinAlgo::kBlockNestedLoop, b.Scan(d, {}, needed),
                       b.Scan(e, {}, needed), {arith_eq}, needed);
  auto r1 = ExecutePlan(b.Project(hash, q.select_list()), q);
  auto r2 = ExecutePlan(b.Project(bnl, q.select_list()), q);
  ASSERT_OK(r1);
  ASSERT_OK(r2);
  EXPECT_EQ(r1->rows.size(), 3u);
  EXPECT_EQ(r1->Fingerprint(), r2->Fingerprint());
}

TEST_F(NullKeysTest, OuterJoinStillPadsNullKeyedLeftRows) {
  // A NULL-keyed *probe* row never matches, but in outer mode it must still
  // survive as a padded row — skipping NULL keys must not drop it.
  Query q(&catalog_);
  int e = q.AddRangeVar(tables_.emp, "e");
  int d = q.AddRangeVar(tables_.dept, "d");
  q.base_rels() = {e, d};
  ColId e_dno = q.range_var(e).columns[1];
  ColId eno = q.range_var(e).columns[0];
  ColId d_dno = q.range_var(d).columns[0];
  ColId budget = q.range_var(d).columns[1];
  q.select_list() = {eno, budget};
  PlanBuilder b(q);
  std::set<ColId> needed = {e_dno, eno, d_dno, budget};

  PlanPtr loj = b.LeftOuterJoin(b.Scan(e, {}, needed), b.Scan(d, {}, needed),
                                {EqCols(e_dno, d_dno)}, needed);
  auto result = ExecutePlan(b.Project(loj, q.select_list()), q);
  ASSERT_OK(result);
  // All 5 employees survive: 3 matched, 2 NULL-dno rows padded.
  ASSERT_EQ(result->rows.size(), 5u);
  std::set<int64_t> padded;
  for (const Row& row : result->rows) {
    if (row[1].is_null()) padded.insert(row[0].AsInt());
  }
  EXPECT_EQ(padded, (std::set<int64_t>{4, 5}));
}

TEST_F(NullKeysTest, OptimizersAgreeOnNullKeyedData) {
  // Equivalence property on NULL-containing data: the traditional and the
  // aggregate-view optimizer may pick different plans (different join
  // algorithms, pull-up/push-down rewrites); NULL semantics must not depend
  // on that choice.
  CheckOptimizersAgree(catalog_,
                       "select e.dno, count(*), avg(e.sal) "
                       "from emp e, dept d where e.dno = d.dno "
                       "group by e.dno");
  CheckOptimizersAgree(catalog_, Example1Sql());
}

TEST_F(NullKeysTest, ScalarAggregateOverEmptyInputYieldsOneRow) {
  Query q(&catalog_);
  int e = q.AddRangeVar(tables_.emp, "e");
  q.base_rels() = {e};
  ColId sal = q.range_var(e).columns[2];
  ColId c_star = q.columns().Add("count(*)", DataType::kInt64);
  ColId c_sal = q.columns().Add("count(sal)", DataType::kInt64);
  ColId s_sal = q.columns().Add("sum(sal)", DataType::kDouble);
  ColId mn = q.columns().Add("min(sal)", DataType::kDouble);
  ColId mx = q.columns().Add("max(sal)", DataType::kDouble);
  ColId av = q.columns().Add("avg(sal)", DataType::kDouble);
  q.select_list() = {c_star, c_sal, s_sal, mn, mx, av};

  PlanBuilder b(q);
  std::set<ColId> needed = {sal, c_star, c_sal, s_sal, mn, mx, av};
  // sal < 0 matches nothing: the aggregate's input is empty.
  GroupBySpec gb;
  gb.aggregates = {{AggKind::kCountStar, {}, c_star},
                   {AggKind::kCount, {sal}, c_sal},
                   {AggKind::kSum, {sal}, s_sal},
                   {AggKind::kMin, {sal}, mn},
                   {AggKind::kMax, {sal}, mx},
                   {AggKind::kAvg, {sal}, av}};
  PlanPtr plan = b.GroupBy(
      b.Scan(e, {Cmp(Col(sal), CompareOp::kLt, LitInt(0))}, needed), gb,
      needed);
  auto result = ExecutePlan(b.Project(plan, q.select_list()), q);
  ASSERT_OK(result);
  ASSERT_EQ(result->rows.size(), 1u);
  const Row& row = result->rows[0];
  EXPECT_EQ(row[0].AsInt(), 0);       // COUNT(*)
  EXPECT_EQ(row[1].AsInt(), 0);       // COUNT(sal)
  EXPECT_TRUE(row[2].is_null());      // SUM
  EXPECT_TRUE(row[3].is_null());      // MIN
  EXPECT_TRUE(row[4].is_null());      // MAX
  EXPECT_TRUE(row[5].is_null());      // AVG
}

TEST_F(NullKeysTest, ScalarAggregateOverEmptyInputEndToEnd) {
  // Same property through the full SQL stack and the optimizer.
  auto query = ParseAndBind(
      catalog_, "select count(*), sum(e.sal) from emp e where e.sal < 0");
  ASSERT_OK(query);
  auto optimized = OptimizeQueryWithAggViews(*query, OptimizerOptions{});
  ASSERT_OK(optimized);
  auto result = ExecutePlan(optimized->plan, optimized->query);
  ASSERT_OK(result);
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].AsInt(), 0);
  EXPECT_TRUE(result->rows[0][1].is_null());
}

TEST_F(NullKeysTest, GroupedAggregateOverEmptyInputStaysEmpty) {
  // The one-row rule is for *scalar* aggregates only; with grouping columns
  // an empty input produces no groups at all.
  auto query = ParseAndBind(
      catalog_,
      "select e.dno, count(*) from emp e where e.sal < 0 group by e.dno");
  ASSERT_OK(query);
  auto optimized = OptimizeQueryWithAggViews(*query, OptimizerOptions{});
  ASSERT_OK(optimized);
  auto result = ExecutePlan(optimized->plan, optimized->query);
  ASSERT_OK(result);
  EXPECT_EQ(result->rows.size(), 0u);
}

}  // namespace
}  // namespace aggview
