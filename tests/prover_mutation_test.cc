#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "test_util.h"
#include "transform/unsound.h"

namespace aggview {
namespace {

/// Mutation harness: each of the three soundness bugs PR 2's differential
/// fuzzer found is re-enabled (transform/unsound.h) and the small-scope
/// prover must refute the resulting plan pair with a minimized
/// counterexample of at most 3 rows. This is the sensitivity half of the
/// prover's own validation — the proof suite (prover_test.cc) shows it
/// accepts the sound rules, this file shows it rejects known-unsound ones —
/// and a regression net: any future bug with one of these shapes is caught
/// by an exhaustive search, not by fuzzing luck.

OptimizerOptions NonParanoid(OptimizerOptions options) {
  // The reinjected rules must reach execution: paranoid mode would reject
  // the illegal transformation at optimization time, which is a different
  // (also load-bearing) line of defense tested elsewhere.
  options.paranoid = false;
  return options;
}

OptimizerOptions InvariantOnly() {
  // Isolate the invariant-grouping lane: with coalescing on, the DP may
  // prefer a (sound) partial-aggregation plan of the same cost and the
  // reinjected rule never reaches the winning plan.
  OptimizerOptions options = NonParanoid(OptimizerOptions{});
  options.enumerator.enable_coalescing = false;
  return options;
}

/// Bug 1: the IG3 key-coverage condition of invariant grouping waived for
/// duplicate-insensitive aggregates. MIN/MAX ignore duplicates, but moving
/// the group-by below a join still changes *how many times* each group row
/// comes out: two emp rows in one department make the early-aggregated plan
/// emit the group twice.
TEST(ProverMutationTest, RefutesMinMaxInvariantWaiver) {
  EmpDeptFixture fixture = MakeEmpDept();
  const std::string sql = R"sql(
select e.dno, min(e.sal)
from emp e, emp f
where e.dno = f.dno
group by e.dno
)sql";

  ProverOptions options;
  options.name = "mutation_minmax_waiver";

  {
    ScopedUnsoundReinjection reinject(UnsoundReinjection::kMinMaxInvariantWaiver);
    auto proof = ProveSqlTransformation(
        fixture.catalog.get(), sql, NonParanoid(TraditionalOptions()),
        InvariantOnly(), options);
    ASSERT_OK(proof);
    EXPECT_FALSE(proof->result.proved)
        << "prover failed to refute the reinjected IG3 waiver";
    ASSERT_TRUE(proof->result.counterexample.has_value());
    const Counterexample& cx = *proof->result.counterexample;
    EXPECT_LE(cx.db.total_rows(), 3);
    EXPECT_NE(cx.pre_outcome, cx.post_outcome);
    EXPECT_FALSE(cx.repro.empty());
  }

  // Soundness restored: the same obligation proves.
  auto sound = ProveSqlTransformation(
      fixture.catalog.get(), sql, NonParanoid(TraditionalOptions()),
      InvariantOnly(), options);
  ASSERT_OK(sound);
  EXPECT_TRUE(sound->result.proved)
      << (sound->result.counterexample ? sound->result.counterexample->repro
                                       : "");
}

/// Catalog for bug 2: removability of `a` and `d` holds at the block level,
/// but the mask {a, c} loses the grouping column d.dg that made a's crossing
/// predicate a.ax = d.dg legal — the removable set is not downward-closed
/// across DP masks. Stats steer the optimizer so the (bogus) early
/// aggregation at that mask is the cheapest alternative.
struct AcdFixture {
  std::unique_ptr<Catalog> catalog = std::make_unique<Catalog>();
  TableId ra = -1, rd = -1, rc = -1;
};

AcdFixture MakeAcd() {
  AcdFixture f;
  {
    TableDef def;
    def.name = "ra";
    def.schema = Schema({{"ak", DataType::kInt64}, {"ax", DataType::kInt64}});
    def.primary_key = {0};
    auto id = f.catalog->AddTable(std::move(def));
    EXPECT_OK(id);
    f.ra = *id;
  }
  {
    TableDef def;
    def.name = "rd";
    def.schema = Schema({{"dk", DataType::kInt64}, {"dg", DataType::kInt64}});
    def.primary_key = {0};
    auto id = f.catalog->AddTable(std::move(def));
    EXPECT_OK(id);
    f.rd = *id;
  }
  {
    TableDef def;
    def.name = "rc";
    def.schema = Schema({{"ck", DataType::kInt64},
                         {"cg2", DataType::kInt64},
                         {"cg3", DataType::kInt64},
                         {"cv", DataType::kInt64}});
    def.primary_key = {0};
    auto id = f.catalog->AddTable(std::move(def));
    EXPECT_OK(id);
    f.rc = *id;
  }
  EXPECT_OK(f.catalog->AddForeignKey(
      ForeignKey{f.rc, {1}, f.ra, {0}}));
  EXPECT_OK(f.catalog->AddForeignKey(
      ForeignKey{f.rc, {2}, f.rd, {0}}));

  auto load = [&](TableId id, std::shared_ptr<Table> data) {
    TableDef& def = f.catalog->mutable_table(id);
    def.stats = ComputeStats(*data);
    def.data = std::move(data);
  };

  // Representative data (stats only; the prover swaps in enumerated data):
  // tiny ra, mid-size rc, huge rd. Every plan must eventually cross the
  // expensive rd, so aggregating before that join dominates the cost, and
  // folding ra into the pre-aggregation side (the bogus mask {a, c}) is one
  // page cheaper than the legal placement that aggregates rc alone. The
  // ax/dg domains overlap so the estimator sees nonzero join selectivity.
  auto ra_data = std::make_shared<Table>(f.catalog->table(f.ra).schema);
  ra_data->AppendUnchecked({Value::Int(0), Value::Int(7)});
  load(f.ra, std::move(ra_data));

  auto rd_data = std::make_shared<Table>(f.catalog->table(f.rd).schema);
  for (int64_t i = 0; i < 100000; ++i) {
    rd_data->AppendUnchecked({Value::Int(i), Value::Int(7)});
  }
  load(f.rd, std::move(rd_data));

  auto rc_data = std::make_shared<Table>(f.catalog->table(f.rc).schema);
  for (int64_t i = 0; i < 5000; ++i) {
    rc_data->AppendUnchecked(
        {Value::Int(i), Value::Int(0), Value::Int(i % 500), Value::Int(1)});
  }
  load(f.rc, std::move(rc_data));
  return f;
}

/// Bug 2: the block-level removable set trusted at every DP mask. At mask
/// {a, c} the re-run would notice a.ax = d.dg reaches a column the mask
/// neither groups by nor retains; trusting the global set pushes a group-by
/// that drops ax, and the later join with d references a column that no
/// longer exists — the plans disagree already on the empty database (one
/// executes, one cannot).
TEST(ProverMutationTest, RefutesTrustedGlobalRemovableSet) {
  AcdFixture fixture = MakeAcd();
  const std::string sql = R"sql(
select c.cg2, c.cg3, d.dg, sum(c.cv)
from ra a, rc c, rd d
where a.ak = c.cg2 and c.cg3 = d.dk and a.ax = d.dg
group by c.cg2, c.cg3, d.dg
)sql";

  ProverOptions options;
  options.name = "mutation_trust_removable";

  {
    ScopedUnsoundReinjection reinject(UnsoundReinjection::kTrustGlobalRemovable);
    auto proof = ProveSqlTransformation(
        fixture.catalog.get(), sql, NonParanoid(TraditionalOptions()),
        InvariantOnly(), options);
    ASSERT_OK(proof);
    EXPECT_FALSE(proof->result.proved)
        << "prover failed to refute the trusted removable set";
    ASSERT_TRUE(proof->result.counterexample.has_value());
    const Counterexample& cx = *proof->result.counterexample;
    EXPECT_LE(cx.db.total_rows(), 3);
    EXPECT_NE(cx.pre_outcome, cx.post_outcome);
  }

  // Soundness restored (smaller bound: three tables multiply the scope).
  ProverOptions small = options;
  small.bounds.max_rows = 1;
  auto sound = ProveSqlTransformation(
      fixture.catalog.get(), sql, NonParanoid(TraditionalOptions()),
      InvariantOnly(), small);
  ASSERT_OK(sound);
  EXPECT_TRUE(sound->result.proved)
      << (sound->result.counterexample ? sound->result.counterexample->repro
                                       : "");
}

/// Bug 3: partial COUNTs combined with a plain SUM. Equivalent on every
/// nonempty group — the difference is exactly the empty input, where a
/// scalar COUNT must produce 0 but SUM over no partials produces NULL. The
/// counterexample is the empty database itself.
TEST(ProverMutationTest, RefutesCountCombinePlainSum) {
  EmpDeptFixture fixture = MakeEmpDept();
  Query q(fixture.catalog.get());
  int e = q.AddRangeVar(fixture.tables.emp, "e");
  ColId e_dno = q.range_var(e).columns[1];
  q.base_rels() = {e};

  GroupBySpec gb;
  gb.aggregates = {{AggKind::kCountStar, {}, q.columns().Add("c", DataType::kInt64)}};
  q.top_group_by() = gb;
  q.select_list() = gb.OutputColumns();

  const std::vector<ColId> outs = gb.OutputColumns();
  std::set<ColId> needed(outs.begin(), outs.end());
  needed.insert(e_dno);

  PlanBuilder b(q);
  PlanPtr lazy = b.GroupBy(b.Scan(e, {}, needed), gb, needed);

  auto eager_for = [&](bool reinject) -> PlanPtr {
    ScopedUnsoundReinjection scope(reinject
                                       ? UnsoundReinjection::kCountCombinePlainSum
                                       : UnsoundReinjection::kNone);
    auto split = SplitForCoalescing(gb, q.range_var(e).ColumnSet(), {e_dno},
                                    &q.columns());
    EXPECT_OK(split);
    if (!split.ok()) return nullptr;
    GroupBySpec final_spec;
    final_spec.aggregates = split->final_aggregates;
    std::set<ColId> needed2 = needed;
    for (ColId c : split->partial.OutputColumns()) needed2.insert(c);
    return b.GroupBy(b.GroupBy(b.Scan(e, {}, needed2), split->partial, needed2),
                     final_spec, needed2);
  };

  auto skeleton = ExtractSkeleton(*fixture.catalog, {SkeletonSource{&q, {}}});
  ASSERT_OK(skeleton);

  ProverOptions options;
  options.name = "mutation_count_plain_sum";

  PlanPtr bad = eager_for(/*reinject=*/true);
  ASSERT_NE(bad, nullptr);
  auto refuted = ProveEquivalence(fixture.catalog.get(), *skeleton,
                                  ExecutionSpec{&q, lazy, ExecContext{}, "lazy"},
                                  ExecutionSpec{&q, bad, ExecContext{}, "eager(SUM)"},
                                  options);
  ASSERT_OK(refuted);
  EXPECT_FALSE(refuted->proved)
      << "prover failed to refute the SUM-combined COUNT";
  ASSERT_TRUE(refuted->counterexample.has_value());
  // The minimal counterexample is the empty database.
  EXPECT_EQ(refuted->counterexample->db.total_rows(), 0);

  PlanPtr good = eager_for(/*reinject=*/false);
  ASSERT_NE(good, nullptr);
  auto sound = ProveEquivalence(fixture.catalog.get(), *skeleton,
                                ExecutionSpec{&q, lazy, ExecContext{}, "lazy"},
                                ExecutionSpec{&q, good, ExecContext{}, "eager"},
                                options);
  ASSERT_OK(sound);
  EXPECT_TRUE(sound->proved)
      << (sound->counterexample ? sound->counterexample->repro : "");
}

}  // namespace
}  // namespace aggview
