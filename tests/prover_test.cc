#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "test_util.h"

namespace aggview {
namespace {

/// The proof suite (verify/prover.h): one exhaustive small-scope run per
/// transformation rule family. Each test optimizes the same SQL under the
/// traditional configuration and under the extended (aggregate-view)
/// configuration, then executes both plans on *every* database within the
/// bounds — rows 0..max_rows per table, column domains {NULL, 0, 1} plus the
/// query's literals — and asserts byte-identical result fingerprints
/// throughout. `proved == true` is a genuine exhaustiveness claim at the
/// bound, not a sample: the mutation harness (prover_mutation_test.cc) shows
/// the same runs refute unsound variants of each rule.
///
/// Literals in the suite's SQL stay within the small-scope domain so the
/// enumerated databases exercise both sides of every comparison.

class ProverTest : public ::testing::Test {
 protected:
  ProverTest() : fixture_(MakeEmpDept()) {}

  /// Proves traditional vs extended plans equivalent on the small scope.
  SqlProof Prove(const std::string& sql, const std::string& name,
                 int max_rows = 3) {
    OptimizerOptions extended;
    ProverOptions options;
    options.bounds.max_rows = max_rows;
    options.name = name;
    auto proof = ProveSqlTransformation(fixture_.catalog.get(), sql,
                                        TraditionalOptions(), extended, options);
    EXPECT_TRUE(proof.ok()) << proof.status().ToString();
    if (!proof.ok()) return SqlProof{};
    return std::move(*proof);
  }

  void ExpectProved(const SqlProof& proof) {
    EXPECT_TRUE(proof.result.proved)
        << (proof.result.counterexample
                ? proof.result.counterexample->repro
                : std::string("refuted without counterexample"));
    EXPECT_GT(proof.result.databases_checked, 0);
    EXPECT_FALSE(proof.result.counterexample.has_value());
  }

  EmpDeptFixture fixture_;
};

TEST_F(ProverTest, PullUpFamily) {
  // Example 1 of the paper with small-scope literals: an aggregate view
  // joined to a base relation, eligible for view pull-up and shrinking.
  SqlProof proof = Prove(R"sql(
create view a1 (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
select e1.sal
from emp e1, a1 b
where e1.dno = b.dno and e1.age < 1 and e1.sal > b.asal
)sql",
                         "pullup_family");
  ExpectProved(proof);
}

TEST_F(ProverTest, InvariantGroupingFamily) {
  // Example 2 of the paper with a small-scope literal: dept is removable
  // from under the group-by (foreign-key join covers its key), so the
  // extended optimizer may aggregate emp before the join.
  SqlProof proof = Prove(R"sql(
select e.dno, avg(e.sal)
from emp e, dept d
where e.dno = d.dno and d.budget < 1
group by e.dno
)sql",
                         "invariant_family");
  ExpectProved(proof);
}

TEST_F(ProverTest, InvariantGroupingMinMaxFamily) {
  // Duplicate-insensitive aggregates take the same invariant-grouping path
  // but their legality still rests on the key condition (the waiver of
  // exactly this condition is mutation bug 1).
  SqlProof proof = Prove(R"sql(
select e.dno, min(e.sal), max(e.sal)
from emp e, dept d
where e.dno = d.dno
group by e.dno
)sql",
                         "invariant_minmax_family");
  ExpectProved(proof);
}

TEST_F(ProverTest, CoalescingCountFamily) {
  // Scalar COUNT(*) over a join: the coalescing lane pre-aggregates below
  // the join and combines partial counts with kCountSum — the combine rule
  // mutation bug 3 corrupts. The scope includes the empty database, where
  // SUM-of-partials and COUNT-combine genuinely differ.
  SqlProof proof = Prove(R"sql(
select count(*) from emp e, dept d where e.dno = d.dno
)sql",
                         "coalescing_count_family");
  ExpectProved(proof);
}

TEST_F(ProverTest, CoalescingSumGroupedFamily) {
  SqlProof proof = Prove(R"sql(
select e.dno, sum(e.sal), count(*)
from emp e, dept d
where e.dno = d.dno
group by e.dno
)sql",
                         "coalescing_sum_family");
  ExpectProved(proof);
}

/// AVG splitting is the subtlest coalescing rule: the partial count must be
/// COUNT(arg), not COUNT(*), or NULL arguments inflate the denominator.
/// This proof is plan-level (eager vs lazy over the same query) so the NULL
/// case is reached regardless of which plan the optimizer would pick.
TEST_F(ProverTest, CoalescingAvgSplitWithNulls) {
  Query q(fixture_.catalog.get());
  int e = q.AddRangeVar(fixture_.tables.emp, "e");
  int f = q.AddRangeVar(fixture_.tables.dept, "f");
  const RangeVar& re = q.range_var(e);
  const RangeVar& rf = q.range_var(f);
  ColId e_dno = re.columns[1], e_sal = re.columns[2];
  ColId f_dno = rf.columns[0];
  q.base_rels() = {e, f};
  q.predicates() = {EqCols(e_dno, f_dno)};

  GroupBySpec gb;
  gb.grouping = {e_dno};
  gb.aggregates = {{AggKind::kAvg, {e_sal}, q.columns().Add("asal", DataType::kDouble)}};
  q.top_group_by() = gb;
  q.select_list() = gb.OutputColumns();

  const std::vector<ColId> outs = gb.OutputColumns();
  std::set<ColId> needed(outs.begin(), outs.end());
  needed.insert(e_dno);
  needed.insert(e_sal);
  needed.insert(f_dno);

  PlanBuilder b(q);
  PlanPtr lazy = b.GroupBy(
      b.BestJoin(b.Scan(e, {}, needed), b.Scan(f, {}, needed),
                 {EqCols(e_dno, f_dno)}, needed),
      gb, needed);

  auto split = SplitForCoalescing(gb, q.range_var(e).ColumnSet(), {e_dno},
                                  &q.columns());
  ASSERT_OK(split);
  GroupBySpec final_spec;
  final_spec.grouping = gb.grouping;
  final_spec.aggregates = split->final_aggregates;
  std::set<ColId> needed2 = needed;
  for (ColId c : split->partial.OutputColumns()) needed2.insert(c);
  PlanPtr eager = b.GroupBy(
      b.BestJoin(b.GroupBy(b.Scan(e, {}, needed2), split->partial, needed2),
                 b.Scan(f, {}, needed2), {EqCols(e_dno, f_dno)}, needed2),
      final_spec, needed2);

  auto sources = std::vector<SkeletonSource>{SkeletonSource{&q, {}}};
  auto skeleton = ExtractSkeleton(*fixture_.catalog, sources);
  ASSERT_OK(skeleton);

  ProverOptions options;
  options.name = "coalescing_avg_split";
  auto result = ProveEquivalence(fixture_.catalog.get(), *skeleton,
                                 ExecutionSpec{&q, lazy, ExecContext{}, "lazy"},
                                 ExecutionSpec{&q, eager, ExecContext{}, "eager"},
                                 options);
  ASSERT_OK(result);
  EXPECT_TRUE(result->proved)
      << (result->counterexample ? result->counterexample->repro : "");
  EXPECT_GT(result->databases_checked, 0);
}

/// Outer-join variants: hash left-outer join vs block-nested-loop left-outer
/// join must agree everywhere, including the NULL-padded rows (the column
/// domain includes NULL, so padding NULLs and data NULLs coexist).
TEST_F(ProverTest, OuterJoinAlgorithmEquivalence) {
  Query q(fixture_.catalog.get());
  int d = q.AddRangeVar(fixture_.tables.dept, "d");
  int e = q.AddRangeVar(fixture_.tables.emp, "e");
  ColId d_dno = q.range_var(d).columns[0];
  ColId e_eno = q.range_var(e).columns[0];
  ColId e_dno = q.range_var(e).columns[1];
  ColId e_sal = q.range_var(e).columns[2];
  q.base_rels() = {d, e};
  q.predicates() = {EqCols(d_dno, e_dno)};
  q.select_list() = {d_dno, e_eno, e_sal};

  std::set<ColId> needed = {d_dno, e_eno, e_dno, e_sal};
  PlanBuilder b(q);
  PlanPtr hash = b.Project(
      b.LeftOuterJoin(b.Scan(d, {}, needed), b.Scan(e, {}, needed),
                      {EqCols(d_dno, e_dno)}, needed),
      q.select_list());

  // Same join in outer mode on the nested-loop operator.
  PlanPtr bnl_inner = b.Join(JoinAlgo::kBlockNestedLoop, b.Scan(d, {}, needed),
                             b.Scan(e, {}, needed), {EqCols(d_dno, e_dno)}, needed);
  auto bnl_join = std::make_shared<PlanNode>(*bnl_inner);
  bnl_join->left_outer = true;
  PlanPtr bnl = b.Project(bnl_join, q.select_list());

  auto skeleton =
      ExtractSkeleton(*fixture_.catalog, {SkeletonSource{&q, {}}});
  ASSERT_OK(skeleton);

  ProverOptions options;
  options.name = "outerjoin_algos";
  auto result = ProveEquivalence(fixture_.catalog.get(), *skeleton,
                                 ExecutionSpec{&q, hash, ExecContext{}, "hash outer"},
                                 ExecutionSpec{&q, bnl, ExecContext{}, "bnl outer"},
                                 options);
  ASSERT_OK(result);
  EXPECT_TRUE(result->proved)
      << (result->counterexample ? result->counterexample->repro : "");
  EXPECT_GT(result->databases_checked, 0);
}

/// Execution-strategy equivalence: the same plan under different batch
/// geometries (the fuzzer's divergence-shrinking mode uses exactly this).
TEST_F(ProverTest, BatchGeometryEquivalence) {
  auto bound = ParseAndBind(*fixture_.catalog, Example2Sql());
  ASSERT_OK(bound);
  auto optimized = OptimizeTraditional(*bound);
  ASSERT_OK(optimized);

  auto skeleton = ExtractSkeleton(*fixture_.catalog,
                                  {SkeletonSource{&optimized->query, {}}});
  ASSERT_OK(skeleton);

  ProverOptions options;
  options.name = "batch_geometry";
  options.bounds.max_rows = 2;
  auto result = ProveEquivalence(
      fixture_.catalog.get(), *skeleton,
      ExecutionSpec{&optimized->query, optimized->plan, ExecContext{}, "default"},
      ExecutionSpec{&optimized->query, optimized->plan,
                    ExecContext{}.WithBatchSize(1), "batch=1"},
      options);
  ASSERT_OK(result);
  EXPECT_TRUE(result->proved)
      << (result->counterexample ? result->counterexample->repro : "");
}

/// Materialized-view rewrite certification on the small scope: the base plan
/// and the view-answering plan must agree on *every* enumerated emp database.
/// The backing table is derived state, so the post_install hook re-runs
/// REFRESH for each installed database (and each shrink probe) — without it
/// the view plan would answer from content belonging to a different database.
TEST_F(ProverTest, MatViewRewriteCertifiedOnSmallScope) {
  ASSERT_OK(ExecuteMatViewStatement(
                fixture_.catalog.get(),
                "create materialized view pdsal (dno, total) as "
                "select e.dno, sum(e.sal) from emp e group by e.dno")
                .status());

  const std::string sql =
      "select e.dno, sum(e.sal) from emp e group by e.dno";
  auto base = ParseAndBind(*fixture_.catalog, sql);
  ASSERT_OK(base.status());
  auto base_opt = OptimizeTraditional(*base);
  ASSERT_OK(base_opt.status());

  auto rewritten = ParseAndBind(*fixture_.catalog, sql);
  ASSERT_OK(rewritten.status());
  std::vector<ViewRewriteCertificate> certs;
  auto rewrites =
      RewriteWithMaterializedViews(*fixture_.catalog, &*rewritten, &certs);
  ASSERT_OK(rewrites.status());
  ASSERT_EQ(*rewrites, 1);
  auto view_opt = OptimizeTraditional(*rewritten);
  ASSERT_OK(view_opt.status());

  // Skeleton over the base query only: emp is enumerated; the backing table
  // stays out of the swap guard and is recomputed by the hook instead.
  auto skeleton = ExtractSkeleton(*fixture_.catalog,
                                  {SkeletonSource{&base_opt->query, {}}});
  ASSERT_OK(skeleton);

  ProverOptions options;
  options.bounds.max_rows = 3;
  options.name = "matview_rewrite";
  options.post_install = [](Catalog* c) {
    return RefreshMaterializedView(c, "pdsal");
  };
  auto result = ProveEquivalence(
      fixture_.catalog.get(), *skeleton,
      ExecutionSpec{&base_opt->query, base_opt->plan, ExecContext{}, "base"},
      ExecutionSpec{&view_opt->query, view_opt->plan, ExecContext{}, "view"},
      options);
  ASSERT_OK(result);
  EXPECT_TRUE(result->proved)
      << (result->counterexample ? result->counterexample->repro : "");
  EXPECT_GT(result->databases_checked, 0);
}

}  // namespace
}  // namespace aggview
