#include <gtest/gtest.h>

#include "exec/operators.h"
#include "test_util.h"

namespace aggview {
namespace {

/// Minimal harness: a scratch table, a column catalog, and layouts.
class OperatorsTest : public ::testing::Test {
 protected:
  OperatorsTest()
      : table_(Schema({{"id", DataType::kInt64},
                       {"grp", DataType::kInt64},
                       {"v", DataType::kDouble}})) {
    id_ = cat_.Add("t.id", DataType::kInt64);
    grp_ = cat_.Add("t.grp", DataType::kInt64);
    v_ = cat_.Add("t.v", DataType::kDouble);
    table_layout_ = RowLayout({id_, grp_, v_});
    for (int i = 0; i < 10; ++i) {
      table_.AppendUnchecked(
          {Value::Int(i), Value::Int(i % 3), Value::Real(i * 1.0)});
    }
  }

  OperatorPtr Scan(std::vector<Predicate> filter = {},
                   std::vector<ColId> output = {}) {
    if (output.empty()) output = {id_, grp_, v_};
    return std::make_unique<TableScanOp>(&table_, table_layout_,
                                         std::move(filter), RowLayout(output),
                                         &io_, /*charge_io=*/true);
  }

  /// Drains through the batch protocol with a deliberately small odd
  /// capacity, so multi-row results straddle batch boundaries.
  static std::vector<Row> DrainAll(Operator* op, int batch_size = 7) {
    EXPECT_TRUE(op->Open().ok());
    std::vector<Row> rows;
    RowBatch batch(batch_size);
    while (true) {
      auto more = op->Next(&batch);
      EXPECT_TRUE(more.ok());
      if (!more.ok() || !*more) break;
      for (int i = 0; i < batch.size(); ++i) rows.push_back(batch.row(i));
    }
    op->Close();
    return rows;
  }

  ColumnCatalog cat_;
  ColId id_, grp_, v_;
  Table table_;
  RowLayout table_layout_;
  IoAccountant io_;
};

TEST_F(OperatorsTest, ScanProducesAllRows) {
  auto scan = Scan();
  EXPECT_EQ(DrainAll(scan.get()).size(), 10u);
  EXPECT_EQ(io_.reads(), table_.page_count());
}

TEST_F(OperatorsTest, ScanAppliesFilter) {
  auto scan = Scan({Cmp(Col(grp_), CompareOp::kEq, LitInt(0))});
  auto rows = DrainAll(scan.get());
  EXPECT_EQ(rows.size(), 4u);  // 0,3,6,9
}

TEST_F(OperatorsTest, ScanProjects) {
  auto scan = Scan({}, {v_});
  auto rows = DrainAll(scan.get());
  ASSERT_EQ(rows.size(), 10u);
  EXPECT_EQ(rows[0].size(), 1u);
}

TEST_F(OperatorsTest, ScanChargeToggle) {
  TableScanOp uncharged(&table_, table_layout_, {}, table_layout_, &io_,
                        /*charge_io=*/false);
  DrainAll(&uncharged);
  EXPECT_EQ(io_.reads(), 0);
}

TEST_F(OperatorsTest, FilterOp) {
  auto op = std::make_unique<FilterOp>(
      Scan(), std::vector<Predicate>{Cmp(Col(id_), CompareOp::kLt, LitInt(3))});
  EXPECT_EQ(DrainAll(op.get()).size(), 3u);
}

TEST_F(OperatorsTest, ProjectOpReorders) {
  auto op = std::make_unique<ProjectOp>(Scan(), RowLayout({v_, id_}));
  auto rows = DrainAll(op.get());
  ASSERT_EQ(rows.size(), 10u);
  EXPECT_TRUE(rows[0][0].is_double());
  EXPECT_TRUE(rows[0][1].is_int());
}

TEST_F(OperatorsTest, HashJoinMatchesPairs) {
  // Self-join on grp: 10 rows in 3 groups of sizes 4,3,3 -> 16+9+9 = 34.
  ColId id2 = cat_.Add("u.id", DataType::kInt64);
  ColId grp2 = cat_.Add("u.grp", DataType::kInt64);
  ColId v2 = cat_.Add("u.v", DataType::kDouble);
  auto right = std::make_unique<TableScanOp>(
      &table_, RowLayout({id2, grp2, v2}), std::vector<Predicate>{},
      RowLayout({id2, grp2}), &io_, true);
  auto join = std::make_unique<HashJoinOp>(
      Scan(), std::move(right),
      std::vector<std::pair<ColId, ColId>>{{grp_, grp2}},
      std::vector<Predicate>{}, &cat_, &io_);
  EXPECT_EQ(DrainAll(join.get()).size(), 34u);
}

TEST_F(OperatorsTest, HashJoinResidualPredicates) {
  ColId id2 = cat_.Add("u.id", DataType::kInt64);
  ColId grp2 = cat_.Add("u.grp", DataType::kInt64);
  ColId v2 = cat_.Add("u.v", DataType::kDouble);
  auto right = std::make_unique<TableScanOp>(
      &table_, RowLayout({id2, grp2, v2}), std::vector<Predicate>{},
      RowLayout({id2, grp2}), &io_, true);
  // grp equal and left id strictly smaller.
  auto join = std::make_unique<HashJoinOp>(
      Scan(), std::move(right),
      std::vector<std::pair<ColId, ColId>>{{grp_, grp2}},
      std::vector<Predicate>{Cmp(Col(id_), CompareOp::kLt, Col(id2))}, &cat_,
      &io_);
  // Pairs (a<b) within groups: C(4,2)+C(3,2)+C(3,2) = 6+3+3 = 12.
  EXPECT_EQ(DrainAll(join.get()).size(), 12u);
}

TEST_F(OperatorsTest, NestedLoopJoinArbitraryPredicate) {
  ColId id2 = cat_.Add("u.id", DataType::kInt64);
  ColId grp2 = cat_.Add("u.grp", DataType::kInt64);
  ColId v2 = cat_.Add("u.v", DataType::kDouble);
  auto right = std::make_unique<TableScanOp>(
      &table_, RowLayout({id2, grp2, v2}), std::vector<Predicate>{},
      RowLayout({id2}), &io_, true);
  auto join = std::make_unique<NestedLoopJoinOp>(
      Scan({}, {id_}), std::move(right),
      std::vector<Predicate>{Cmp(Col(id_), CompareOp::kLt, Col(id2))}, &cat_,
      &io_, /*inner_pages_per_pass=*/0.0, /*charge_materialize=*/true);
  // #pairs with a<b among 10x10 = 45.
  EXPECT_EQ(DrainAll(join.get()).size(), 45u);
}

TEST_F(OperatorsTest, NestedLoopIndexFastPathMatchesHashJoin) {
  // NLJ extracts equi-join conjuncts into an internal index; with a mixed
  // equi + residual predicate set it must produce exactly the hash join's
  // residual-filtered result.
  auto make_right = [&]() {
    ColId id2 = cat_.Add("x.id", DataType::kInt64);
    ColId grp2 = cat_.Add("x.grp", DataType::kInt64);
    ColId v2 = cat_.Add("x.v", DataType::kDouble);
    return std::tuple(std::make_unique<TableScanOp>(
                          &table_, RowLayout({id2, grp2, v2}),
                          std::vector<Predicate>{}, RowLayout({id2, grp2}),
                          &io_, true),
                      id2, grp2);
  };
  auto [r1, id_a, grp_a] = make_right();
  auto nlj = std::make_unique<NestedLoopJoinOp>(
      Scan(), std::move(r1),
      std::vector<Predicate>{EqCols(grp_, grp_a),
                             Cmp(Col(id_), CompareOp::kLt, Col(id_a))},
      &cat_, &io_, 0.0, true);
  size_t nlj_rows = DrainAll(nlj.get()).size();

  auto [r2, id_b, grp_b] = make_right();
  auto hash = std::make_unique<HashJoinOp>(
      Scan(), std::move(r2),
      std::vector<std::pair<ColId, ColId>>{{grp_, grp_b}},
      std::vector<Predicate>{Cmp(Col(id_), CompareOp::kLt, Col(id_b))}, &cat_,
      &io_);
  EXPECT_EQ(nlj_rows, DrainAll(hash.get()).size());
  EXPECT_EQ(nlj_rows, 12u);
}

TEST_F(OperatorsTest, ScanOverEmptyTable) {
  Table empty(Schema({{"id", DataType::kInt64}}));
  ColId c = cat_.Add("empty.id", DataType::kInt64);
  TableScanOp scan(&empty, RowLayout({c}), {}, RowLayout({c}), &io_, true);
  EXPECT_EQ(DrainAll(&scan).size(), 0u);
  EXPECT_EQ(io_.reads(), 0);  // zero pages
}

TEST_F(OperatorsTest, JoinWithEmptyBuildSide) {
  Table empty(Schema({{"id", DataType::kInt64}, {"grp", DataType::kInt64},
                      {"v", DataType::kDouble}}));
  ColId id2 = cat_.Add("y.id", DataType::kInt64);
  ColId grp2 = cat_.Add("y.grp", DataType::kInt64);
  ColId v2 = cat_.Add("y.v", DataType::kDouble);
  auto right = std::make_unique<TableScanOp>(
      &empty, RowLayout({id2, grp2, v2}), std::vector<Predicate>{},
      RowLayout({id2, grp2}), &io_, true);
  auto join = std::make_unique<HashJoinOp>(
      Scan(), std::move(right),
      std::vector<std::pair<ColId, ColId>>{{grp_, grp2}},
      std::vector<Predicate>{}, &cat_, &io_);
  EXPECT_EQ(DrainAll(join.get()).size(), 0u);
}

TEST_F(OperatorsTest, SortMergeJoinEqualsHashJoin) {
  auto make_right = [&](ColId* gid) {
    ColId id2 = cat_.Add("w.id", DataType::kInt64);
    ColId grp2 = cat_.Add("w.grp", DataType::kInt64);
    ColId v2 = cat_.Add("w.v", DataType::kDouble);
    *gid = grp2;
    return std::make_unique<TableScanOp>(
        &table_, RowLayout({id2, grp2, v2}), std::vector<Predicate>{},
        RowLayout({id2, grp2}), &io_, true);
  };
  ColId g1;
  auto right = make_right(&g1);
  auto smj = std::make_unique<SortMergeJoinOp>(
      Scan(), std::move(right),
      std::vector<std::pair<ColId, ColId>>{{grp_, g1}},
      std::vector<Predicate>{}, &cat_, &io_);
  EXPECT_EQ(DrainAll(smj.get()).size(), 34u);
}

TEST_F(OperatorsTest, SortMergeJoinDuplicateBlocks) {
  // All rows share one key: full cross product must be emitted.
  Table ones(Schema({{"k", DataType::kInt64}}));
  for (int i = 0; i < 4; ++i) ones.AppendUnchecked({Value::Int(1)});
  ColId k1 = cat_.Add("a.k", DataType::kInt64);
  ColId k2 = cat_.Add("b.k", DataType::kInt64);
  auto l = std::make_unique<TableScanOp>(&ones, RowLayout({k1}),
                                         std::vector<Predicate>{},
                                         RowLayout({k1}), &io_, true);
  auto r = std::make_unique<TableScanOp>(&ones, RowLayout({k2}),
                                         std::vector<Predicate>{},
                                         RowLayout({k2}), &io_, true);
  auto smj = std::make_unique<SortMergeJoinOp>(
      std::move(l), std::move(r),
      std::vector<std::pair<ColId, ColId>>{{k1, k2}}, std::vector<Predicate>{},
      &cat_, &io_);
  EXPECT_EQ(DrainAll(smj.get()).size(), 16u);
}

TEST_F(OperatorsTest, HashAggregateComputesGroups) {
  ColId cnt = cat_.Add("count(*)", DataType::kInt64);
  ColId total = cat_.Add("sum(v)", DataType::kDouble);
  GroupBySpec spec;
  spec.grouping = {grp_};
  spec.aggregates = {{AggKind::kCountStar, {}, cnt},
                     {AggKind::kSum, {v_}, total}};
  auto agg = std::make_unique<HashAggregateOp>(Scan(), spec, &cat_, &io_);
  auto rows = DrainAll(agg.get());
  ASSERT_EQ(rows.size(), 3u);
  double grand_total = 0;
  int64_t grand_count = 0;
  for (const Row& r : rows) {
    grand_count += r[1].AsInt();
    grand_total += r[2].AsNumeric();
  }
  EXPECT_EQ(grand_count, 10);
  EXPECT_DOUBLE_EQ(grand_total, 45.0);
}

TEST_F(OperatorsTest, HashAggregateHaving) {
  ColId cnt = cat_.Add("count(*)", DataType::kInt64);
  GroupBySpec spec;
  spec.grouping = {grp_};
  spec.aggregates = {{AggKind::kCountStar, {}, cnt}};
  spec.having = {Cmp(Col(cnt), CompareOp::kGt, LitInt(3))};
  auto agg = std::make_unique<HashAggregateOp>(Scan(), spec, &cat_, &io_);
  auto rows = DrainAll(agg.get());
  ASSERT_EQ(rows.size(), 1u);  // only group 0 has 4 members
  EXPECT_EQ(rows[0][0].AsInt(), 0);
}

TEST_F(OperatorsTest, ScalarAggregateEmptyGrouping) {
  ColId cnt = cat_.Add("count(*)", DataType::kInt64);
  GroupBySpec spec;
  spec.aggregates = {{AggKind::kCountStar, {}, cnt}};
  auto agg = std::make_unique<HashAggregateOp>(Scan(), spec, &cat_, &io_);
  auto rows = DrainAll(agg.get());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt(), 10);
}

TEST_F(OperatorsTest, HashAggregateMissingColumnFails) {
  ColId phantom = cat_.Add("phantom", DataType::kInt64);
  GroupBySpec spec;
  spec.grouping = {phantom};
  auto agg = std::make_unique<HashAggregateOp>(Scan(), spec, &cat_, &io_);
  EXPECT_FALSE(agg->Open().ok());
}

TEST_F(OperatorsTest, ProjectMissingColumnFails) {
  ColId phantom = cat_.Add("phantom", DataType::kInt64);
  auto op = std::make_unique<ProjectOp>(Scan(), RowLayout({phantom}));
  EXPECT_FALSE(op->Open().ok());
}

/// Failure injection: an operator that errors after N rows; the error must
/// surface through every downstream operator, not crash or vanish.
class FailingOp final : public Operator {
 public:
  FailingOp(RowLayout layout, int rows_before_failure)
      : remaining_(rows_before_failure) {
    layout_ = std::move(layout);
  }
 protected:
  Status OpenImpl() override { return Status::OK(); }
  Result<bool> NextBatchImpl(RowBatch* out) override {
    while (!out->full()) {
      if (remaining_ <= 0) {
        return Status::ExecutionError("injected failure");
      }
      --remaining_;
      out->AppendRow().assign(static_cast<size_t>(layout_.size()),
                              Value::Int(remaining_));
    }
    return true;
  }

 private:
  int remaining_;
};

TEST_F(OperatorsTest, FailurePropagatesThroughFilter) {
  FilterOp op(std::make_unique<FailingOp>(RowLayout({id_}), 2),
              {Cmp(Col(id_), CompareOp::kGe, LitInt(0))});
  // Degenerate batches, so the two good rows drain before the failure.
  op.set_batch_size(1);
  ASSERT_TRUE(op.Open().ok());
  RowBatch batch(1);
  ASSERT_TRUE(*op.Next(&batch));
  ASSERT_TRUE(*op.Next(&batch));
  auto r = op.Next(&batch);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kExecutionError);
}

TEST_F(OperatorsTest, FailureInBuildSideSurfacesAtOpen) {
  ColId k = cat_.Add("fail.k", DataType::kInt64);
  HashJoinOp join(Scan(), std::make_unique<FailingOp>(RowLayout({k}), 1),
                  {{grp_, k}}, {}, &cat_, &io_);
  EXPECT_EQ(join.Open().code(), StatusCode::kExecutionError);
}

TEST_F(OperatorsTest, FailureInProbeSideSurfacesAtNext) {
  ColId k = cat_.Add("fail2.k", DataType::kInt64);
  HashJoinOp join(std::make_unique<FailingOp>(RowLayout({k}), 1), Scan(),
                  {{k, grp_}}, {}, &cat_, &io_);
  ASSERT_TRUE(join.Open().ok());
  RowBatch batch(4);
  while (true) {
    auto r = join.Next(&batch);
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kExecutionError);
      break;
    }
    ASSERT_TRUE(*r);  // must not end cleanly before the failure
  }
}

TEST_F(OperatorsTest, FailurePropagatesThroughAggregate) {
  GroupBySpec spec;
  ColId c = cat_.Add("cnt", DataType::kInt64);
  spec.aggregates = {{AggKind::kCountStar, {}, c}};
  HashAggregateOp agg(std::make_unique<FailingOp>(RowLayout({id_}), 3), spec,
                      &cat_, &io_);
  EXPECT_EQ(agg.Open().code(), StatusCode::kExecutionError);
}

TEST_F(OperatorsTest, FailurePropagatesThroughSortMerge) {
  ColId k = cat_.Add("fail3.k", DataType::kInt64);
  SortMergeJoinOp join(std::make_unique<FailingOp>(RowLayout({k}), 2), Scan(),
                       {{k, grp_}}, {}, &cat_, &io_);
  EXPECT_EQ(join.Open().code(), StatusCode::kExecutionError);
}

}  // namespace
}  // namespace aggview
