#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "test_util.h"

namespace aggview {
namespace {

/// Deep-scope proof runs for the nightly/manual CI lane (labelled
/// `exhaustive` in CMake, excluded from the tier-1 wall-clock budget by
/// skipping unless configured). Set AGGVIEW_PROVER_ROWS=<n> to run every
/// rule-family obligation at rows 0..n per table — the nightly workflow
/// uses n=4, one row past the tier-1 suite's bound. State space grows
/// combinatorially with n; n=5 is hours, not minutes.

int ConfiguredRows() {
  const char* env = std::getenv("AGGVIEW_PROVER_ROWS");
  if (env == nullptr || *env == '\0') return 0;
  return std::atoi(env);
}

class ProverExhaustiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rows_ = ConfiguredRows();
    if (rows_ <= 0) {
      GTEST_SKIP() << "set AGGVIEW_PROVER_ROWS=<n> to run deep-scope proofs";
    }
    fixture_ = MakeEmpDept();
  }

  void ProveAtDepth(const std::string& sql, const std::string& name) {
    ProverOptions options;
    options.bounds.max_rows = rows_;
    options.name = name;
    const char* repro_dir = std::getenv("AGGVIEW_PROVER_REPRO_DIR");
    if (repro_dir != nullptr) options.repro_dir = repro_dir;
    auto proof = ProveSqlTransformation(fixture_.catalog.get(), sql,
                                        TraditionalOptions(), OptimizerOptions{},
                                        options);
    ASSERT_OK(proof);
    EXPECT_TRUE(proof->result.proved)
        << name << " refuted at rows<=" << rows_ << ":\n"
        << (proof->result.counterexample ? proof->result.counterexample->repro
                                         : "");
    RecordProperty("databases_checked",
                   std::to_string(proof->result.databases_checked));
  }

  int rows_ = 0;
  EmpDeptFixture fixture_;
};

TEST_F(ProverExhaustiveTest, PullUpFamilyDeep) {
  ProveAtDepth(R"sql(
create view a1 (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
select e1.sal
from emp e1, a1 b
where e1.dno = b.dno and e1.age < 1 and e1.sal > b.asal
)sql",
               "deep_pullup");
}

TEST_F(ProverExhaustiveTest, InvariantGroupingFamilyDeep) {
  ProveAtDepth(R"sql(
select e.dno, avg(e.sal)
from emp e, dept d
where e.dno = d.dno and d.budget < 1
group by e.dno
)sql",
               "deep_invariant");
}

TEST_F(ProverExhaustiveTest, InvariantMinMaxFamilyDeep) {
  ProveAtDepth(R"sql(
select e.dno, min(e.sal), max(e.sal)
from emp e, dept d
where e.dno = d.dno
group by e.dno
)sql",
               "deep_invariant_minmax");
}

TEST_F(ProverExhaustiveTest, CoalescingCountFamilyDeep) {
  ProveAtDepth("select count(*) from emp e, dept d where e.dno = d.dno",
               "deep_coalescing_count");
}

TEST_F(ProverExhaustiveTest, CoalescingSumFamilyDeep) {
  ProveAtDepth(R"sql(
select e.dno, sum(e.sal), count(*)
from emp e, dept d
where e.dno = d.dno
group by e.dno
)sql",
               "deep_coalescing_sum");
}

}  // namespace
}  // namespace aggview
