#include <gtest/gtest.h>

#include "test_util.h"

namespace aggview {
namespace {

/// End-to-end checks against hand-computed answers on a tiny, fully
/// deterministic database.
class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() {
    auto tables = CreateEmpDeptSchema(&catalog_);
    EXPECT_OK(tables);
    tables_ = *tables;

    // dept: (1, 500k), (2, 2M), (3, 800k)
    auto dept = std::make_shared<Table>(catalog_.table(tables_.dept).schema);
    dept->AppendUnchecked({Value::Int(1), Value::Real(500'000)});
    dept->AppendUnchecked({Value::Int(2), Value::Real(2'000'000)});
    dept->AppendUnchecked({Value::Int(3), Value::Real(800'000)});
    catalog_.mutable_table(tables_.dept).stats = ComputeStats(*dept);
    catalog_.mutable_table(tables_.dept).data = dept;

    // emp: (eno, dno, sal, age)
    auto emp = std::make_shared<Table>(catalog_.table(tables_.emp).schema);
    auto add = [&](int64_t eno, int64_t dno, double sal, int64_t age) {
      emp->AppendUnchecked(
          {Value::Int(eno), Value::Int(dno), Value::Real(sal), Value::Int(age)});
    };
    add(1, 1, 100, 30);  // dept 1: salaries 100, 200 -> avg 150
    add(2, 1, 200, 21);
    add(3, 2, 300, 20);  // dept 2: salaries 300, 500, 400 -> avg 400
    add(4, 2, 500, 45);
    add(5, 2, 400, 21);
    add(6, 3, 900, 19);  // dept 3: salary 900 -> avg 900
    catalog_.mutable_table(tables_.emp).stats = ComputeStats(*emp);
    catalog_.mutable_table(tables_.emp).data = emp;
  }

  QueryResult Run(const std::string& sql) {
    auto query = ParseAndBind(catalog_, sql);
    EXPECT_TRUE(query.ok()) << query.status().ToString();
    auto optimized = OptimizeQueryWithAggViews(*query, OptimizerOptions{});
    EXPECT_TRUE(optimized.ok()) << optimized.status().ToString();
    auto result = ExecutePlan(optimized->plan, optimized->query);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  Catalog catalog_;
  EmpDeptTables tables_;
};

TEST_F(IntegrationTest, Example1HandChecked) {
  // Employees under 22 earning above their department average:
  //  - eno 2 (dept 1, sal 200 > 150, age 21)        -> qualifies
  //  - eno 3 (dept 2, sal 300 < 400)                -> no
  //  - eno 5 (dept 2, sal 400 = 400, not >)         -> no
  //  - eno 6 (dept 3, sal 900 = avg, not >)         -> no
  QueryResult r = Run(Example1Sql());
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsDouble(), 200.0);
}

TEST_F(IntegrationTest, Example2HandChecked) {
  // Departments with budget < 1M: 1 and 3. Averages: 150 and 900.
  QueryResult r = Run(Example2Sql());
  ASSERT_EQ(r.rows.size(), 2u);
  std::map<int64_t, double> by_dno;
  for (const Row& row : r.rows) by_dno[row[0].AsInt()] = row[1].AsDouble();
  EXPECT_DOUBLE_EQ(by_dno.at(1), 150.0);
  EXPECT_DOUBLE_EQ(by_dno.at(3), 900.0);
}

TEST_F(IntegrationTest, ViewWithHavingHandChecked) {
  QueryResult r = Run(R"sql(
create view big (dno, cnt) as
  select e.dno, count(*) from emp e group by e.dno having count(*) > 1;
select big.dno, big.cnt from big
)sql");
  // dept 1 has 2 employees, dept 2 has 3; dept 3 (1 employee) filtered out.
  ASSERT_EQ(r.rows.size(), 2u);
  std::map<int64_t, int64_t> by_dno;
  for (const Row& row : r.rows) by_dno[row[0].AsInt()] = row[1].AsInt();
  EXPECT_EQ(by_dno.at(1), 2);
  EXPECT_EQ(by_dno.at(2), 3);
}

TEST_F(IntegrationTest, MultiViewHandChecked) {
  QueryResult r = Run(R"sql(
create view avgs (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
create view tops (dno, msal) as
  select e3.dno, max(e3.sal) from emp e3 group by e3.dno;
select e1.eno
from emp e1, avgs a, tops t
where e1.dno = a.dno and e1.dno = t.dno
  and e1.sal > a.asal and e1.sal = t.msal
)sql");
  // Top earner strictly above average per dept: eno 2 (200 > 150), eno 4
  // (500 > 400). Dept 3's only employee equals the average.
  ASSERT_EQ(r.rows.size(), 2u);
  std::set<int64_t> enos;
  for (const Row& row : r.rows) enos.insert(row[0].AsInt());
  EXPECT_EQ(enos, (std::set<int64_t>{2, 4}));
}

TEST_F(IntegrationTest, TopGroupByOverViewHandChecked) {
  QueryResult r = Run(R"sql(
create view avgs (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
select e1.dno, count(*)
from emp e1, avgs a
where e1.dno = a.dno and e1.sal < a.asal
group by e1.dno
)sql");
  // Below-average earners: dept 1: eno 1 (100 < 150); dept 2: eno 3 (300).
  ASSERT_EQ(r.rows.size(), 2u);
  std::map<int64_t, int64_t> by_dno;
  for (const Row& row : r.rows) by_dno[row[0].AsInt()] = row[1].AsInt();
  EXPECT_EQ(by_dno.at(1), 1);
  EXPECT_EQ(by_dno.at(2), 1);
}

TEST_F(IntegrationTest, ScalarAggregateHandChecked) {
  QueryResult r = Run("select count(*), sum(e.sal) from emp e where e.age < 22");
  ASSERT_EQ(r.rows.size(), 1u);
  // Young employees: 2 (200), 3 (300), 5 (400), 6 (900).
  EXPECT_EQ(r.rows[0][0].AsInt(), 4);
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsDouble(), 1800.0);
}

TEST_F(IntegrationTest, ArithmeticPredicateHandChecked) {
  QueryResult r = Run(R"sql(
create view avgs (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
select e1.eno from emp e1, avgs a
where e1.dno = a.dno and e1.sal > 2 * a.asal
)sql");
  // sal > 2*avg: dept averages 150/400/900 -> thresholds 300/800/1800.
  // Nobody qualifies in dept 1 (max 200), dept 2 (max 500), dept 3 (900).
  EXPECT_EQ(r.rows.size(), 0u);
}

TEST_F(IntegrationTest, MedianViewHandChecked) {
  QueryResult r = Run(R"sql(
create view meds (dno, med) as
  select e2.dno, median(e2.sal) from emp e2 group by e2.dno;
select meds.dno, meds.med from meds
)sql");
  ASSERT_EQ(r.rows.size(), 3u);
  std::map<int64_t, double> by_dno;
  for (const Row& row : r.rows) by_dno[row[0].AsInt()] = row[1].AsDouble();
  EXPECT_DOUBLE_EQ(by_dno.at(1), 150.0);  // {100,200}
  EXPECT_DOUBLE_EQ(by_dno.at(2), 400.0);  // {300,400,500}
  EXPECT_DOUBLE_EQ(by_dno.at(3), 900.0);  // {900}
}

TEST_F(IntegrationTest, EmptyResultIsNotAnError) {
  QueryResult r = Run("select e.eno from emp e where e.age > 100");
  EXPECT_EQ(r.rows.size(), 0u);
}

TEST_F(IntegrationTest, MeasuredIoIsPositiveAndFinite) {
  auto query = ParseAndBind(catalog_, Example1Sql());
  ASSERT_OK(query);
  auto optimized = OptimizeQueryWithAggViews(*query, OptimizerOptions{});
  ASSERT_OK(optimized);
  IoAccountant io;
  ASSERT_OK(ExecutePlan(optimized->plan, optimized->query,
                            ExecContext::Default().WithIo(&io)));
  EXPECT_GT(io.total(), 0);
  EXPECT_LT(io.total(), 100);
}

}  // namespace
}  // namespace aggview
