#include <gtest/gtest.h>

#include <string>

#include "../bench/bench_util.h"

namespace aggview {
namespace bench {
namespace {

TEST(JsonEscapeTest, PlainTextPassesThrough) {
  EXPECT_EQ(JsonEscape("E13: exec throughput"), "E13: exec throughput");
  EXPECT_EQ(JsonEscape(""), "");
}

TEST(JsonEscapeTest, QuotesAndBackslashes) {
  EXPECT_EQ(JsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonEscape("C:\\tmp\\x"), "C:\\\\tmp\\\\x");
}

TEST(JsonEscapeTest, NamedControlEscapes) {
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape("a\tb"), "a\\tb");
  EXPECT_EQ(JsonEscape("a\rb"), "a\\rb");
  EXPECT_EQ(JsonEscape("a\bb"), "a\\bb");
  EXPECT_EQ(JsonEscape("a\fb"), "a\\fb");
}

TEST(JsonEscapeTest, OtherControlCharsBecomeU00XX) {
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(JsonEscape(std::string(1, '\x1f')), "\\u001f");
  EXPECT_EQ(JsonEscape(std::string(1, '\0')), "\\u0000");
}

TEST(JsonEscapeTest, HighBytesAreNotSignExtended) {
  // 0xE9 as a signed char is negative; a naive %04x print would emit
  // "\uffffffe9". UTF-8 bytes must pass through untouched instead.
  std::string utf8 = "caf\xC3\xA9";
  EXPECT_EQ(JsonEscape(utf8), utf8);
}

TEST(IsJsonNumberTest, AcceptsRfc8259Numbers) {
  EXPECT_TRUE(IsJsonNumber("0"));
  EXPECT_TRUE(IsJsonNumber("-0"));
  EXPECT_TRUE(IsJsonNumber("42"));
  EXPECT_TRUE(IsJsonNumber("-17"));
  EXPECT_TRUE(IsJsonNumber("3.14"));
  EXPECT_TRUE(IsJsonNumber("0.5"));
  EXPECT_TRUE(IsJsonNumber("1e9"));
  EXPECT_TRUE(IsJsonNumber("2.5E-3"));
  EXPECT_TRUE(IsJsonNumber("1e+06"));
}

TEST(IsJsonNumberTest, RejectsWhatStrtodWronglyAccepts) {
  // strtod parses all of these, but none is a valid unquoted JSON token.
  EXPECT_FALSE(IsJsonNumber("inf"));
  EXPECT_FALSE(IsJsonNumber("-inf"));
  EXPECT_FALSE(IsJsonNumber("nan"));
  EXPECT_FALSE(IsJsonNumber("NaN"));
  EXPECT_FALSE(IsJsonNumber("0x1f"));
  EXPECT_FALSE(IsJsonNumber("007"));
  EXPECT_FALSE(IsJsonNumber("  1"));
  EXPECT_FALSE(IsJsonNumber("1 "));
}

TEST(IsJsonNumberTest, RejectsMalformedTokens) {
  EXPECT_FALSE(IsJsonNumber(""));
  EXPECT_FALSE(IsJsonNumber("-"));
  EXPECT_FALSE(IsJsonNumber("+1"));
  EXPECT_FALSE(IsJsonNumber("1."));
  EXPECT_FALSE(IsJsonNumber(".5"));
  EXPECT_FALSE(IsJsonNumber("1e"));
  EXPECT_FALSE(IsJsonNumber("1e+"));
  EXPECT_FALSE(IsJsonNumber("--1"));
  EXPECT_FALSE(IsJsonNumber("1.2.3"));
}

TEST(JsonLiteralTest, NumbersUnquotedStringsQuotedAndEscaped) {
  EXPECT_EQ(JsonLiteral("3.5"), "3.5");
  EXPECT_EQ(JsonLiteral("-12"), "-12");
  EXPECT_EQ(JsonLiteral("inf"), "\"inf\"");
  EXPECT_EQ(JsonLiteral("nan"), "\"nan\"");
  EXPECT_EQ(JsonLiteral("007"), "\"007\"");
  EXPECT_EQ(JsonLiteral("he\"llo"), "\"he\\\"llo\"");
  EXPECT_EQ(JsonLiteral("a\nb"), "\"a\\nb\"");
}

TEST(JsonWriterTest, EmitsWellFormedDocumentForHostileCells) {
  testing::internal::CaptureStdout();
  {
    JsonWriter writer("E\"99\"\n", {"name", "qps", "note"});
    writer.Row({"q\\1", "123.4", "took\t5ms"});
    writer.Row({"q2", "inf", "line1\nline2"});
  }
  std::string doc = testing::internal::GetCapturedStdout();

  EXPECT_EQ(doc,
            "{\"experiment\": \"E\\\"99\\\"\\n\", \"rows\": [\n"
            "  {\"name\": \"q\\\\1\", \"qps\": 123.4, \"note\": "
            "\"took\\t5ms\"},\n"
            "  {\"name\": \"q2\", \"qps\": \"inf\", \"note\": "
            "\"line1\\nline2\"}]}\n");
}

}  // namespace
}  // namespace bench
}  // namespace aggview
