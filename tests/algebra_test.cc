#include <gtest/gtest.h>

#include "algebra/logical_plan.h"
#include "algebra/query.h"
#include "test_util.h"

namespace aggview {
namespace {

class AlgebraTest : public ::testing::Test {
 protected:
  AlgebraTest() : fixture_(MakeEmpDept()) {}

  EmpDeptFixture fixture_;
};

TEST_F(AlgebraTest, RangeVarAllocation) {
  Query q(fixture_.catalog.get());
  int e1 = q.AddRangeVar(fixture_.tables.emp, "e1");
  int e2 = q.AddRangeVar(fixture_.tables.emp, "e2");
  EXPECT_EQ(q.num_range_vars(), 2);
  // Self-join: the two occurrences have disjoint column ids.
  std::set<ColId> c1 = q.range_var(e1).ColumnSet();
  std::set<ColId> c2 = q.range_var(e2).ColumnSet();
  for (ColId c : c1) EXPECT_EQ(c2.count(c), 0u);
  EXPECT_EQ(q.columns().name(q.range_var(e1).columns[0]), "e1.eno");
}

TEST_F(AlgebraTest, ResolveColumn) {
  Query q(fixture_.catalog.get());
  q.AddRangeVar(fixture_.tables.emp, "e");
  auto sal = q.ResolveColumn("e", "sal");
  ASSERT_OK(sal);
  EXPECT_EQ(q.columns().name(*sal), "e.sal");
  EXPECT_FALSE(q.ResolveColumn("e", "nope").ok());
  EXPECT_FALSE(q.ResolveColumn("x", "sal").ok());
}

TEST_F(AlgebraTest, GroupBySpecOutputs) {
  Query q(fixture_.catalog.get());
  int e = q.AddRangeVar(fixture_.tables.emp, "e");
  ColId dno = q.range_var(e).columns[1];
  ColId sal = q.range_var(e).columns[2];
  ColId out = q.columns().Add("avg(e.sal)", DataType::kDouble);
  GroupBySpec gb;
  gb.grouping = {dno};
  gb.aggregates = {{AggKind::kAvg, {sal}, out}};
  EXPECT_EQ(gb.OutputColumns(), (std::vector<ColId>{dno, out}));
  EXPECT_EQ(gb.AggOutputSet(), (std::set<ColId>{out}));
  EXPECT_EQ(gb.AggArgSet(), (std::set<ColId>{sal}));
}

TEST_F(AlgebraTest, ValidateAcceptsExample1) {
  auto q = ParseAndBind(*fixture_.catalog, Example1Sql());
  ASSERT_OK(q);
  EXPECT_OK(q->Validate());
  EXPECT_EQ(q->views().size(), 1u);
  EXPECT_EQ(q->base_rels().size(), 1u);
  EXPECT_EQ(q->predicates().size(), 3u);
}

TEST_F(AlgebraTest, ValidateRejectsCrossBlockPredicate) {
  auto q = ParseAndBind(*fixture_.catalog, Example1Sql());
  ASSERT_OK(q);
  // Smuggle a top-level predicate over a column internal to the view (e2.sal
  // is not a view output).
  ColId inner_sal = q->range_var(q->views()[0].spj.rels[0]).columns[2];
  q->predicates().push_back(Cmp(Col(inner_sal), CompareOp::kGt, LitInt(0)));
  EXPECT_FALSE(q->Validate().ok());
}

TEST_F(AlgebraTest, ValidateRejectsDanglingRangeVar) {
  Query q(fixture_.catalog.get());
  int e = q.AddRangeVar(fixture_.tables.emp, "e");
  // Not placed in any block.
  q.select_list().push_back(q.range_var(e).columns[0]);
  EXPECT_FALSE(q.Validate().ok());
}

TEST_F(AlgebraTest, ToStringMentionsStructure) {
  auto q = ParseAndBind(*fixture_.catalog, Example1Sql());
  ASSERT_OK(q);
  std::string s = q->ToString();
  EXPECT_NE(s.find("view b"), std::string::npos);
  EXPECT_NE(s.find("group by"), std::string::npos);
  EXPECT_NE(s.find("emp e1"), std::string::npos);
}

TEST_F(AlgebraTest, ColumnOwners) {
  auto q = ParseAndBind(*fixture_.catalog, Example1Sql());
  ASSERT_OK(q);
  auto owners = ColumnOwners(*q);
  for (int i = 0; i < q->num_range_vars(); ++i) {
    for (ColId c : q->range_var(i).columns) {
      EXPECT_EQ(owners.at(c), i);
    }
  }
  // Aggregate outputs have no owner.
  ColId asal = q->views()[0].group_by.aggregates[0].output;
  EXPECT_EQ(owners.count(asal), 0u);
}

TEST_F(AlgebraTest, PredicateRelsAndConnectivity) {
  Query q(fixture_.catalog.get());
  int e = q.AddRangeVar(fixture_.tables.emp, "e");
  int d = q.AddRangeVar(fixture_.tables.dept, "d");
  ColId e_dno = q.range_var(e).columns[1];
  ColId d_dno = q.range_var(d).columns[0];
  std::vector<Predicate> join = {EqCols(e_dno, d_dno)};

  EXPECT_EQ(PredicateRels(q, join[0], {e, d}), (std::set<int>{e, d}));
  EXPECT_EQ(PredicateRels(q, join[0], {e}), (std::set<int>{e}));
  EXPECT_TRUE(RelsConnected(q, join, {e, d}));
  EXPECT_FALSE(RelsConnected(q, {}, {e, d}));
  EXPECT_TRUE(RelsConnected(q, {}, {e}));
}

TEST_F(AlgebraTest, EquiJoinPairsAndKeyCoverage) {
  Query q(fixture_.catalog.get());
  int e = q.AddRangeVar(fixture_.tables.emp, "e");
  int d = q.AddRangeVar(fixture_.tables.dept, "d");
  ColId e_dno = q.range_var(e).columns[1];
  ColId d_dno = q.range_var(d).columns[0];
  std::vector<Predicate> preds = {EqCols(e_dno, d_dno)};

  auto pairs = EquiJoinPairs(q, preds, {e}, d);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first, e_dno);
  EXPECT_EQ(pairs[0].second, d_dno);
  // dept.dno is dept's primary key -> covered.
  EXPECT_TRUE(EquiJoinCoversKey(q, d, pairs));

  // The reverse direction: e.dno is not a key of emp.
  auto rev = EquiJoinPairs(q, preds, {d}, e);
  ASSERT_EQ(rev.size(), 1u);
  EXPECT_FALSE(EquiJoinCoversKey(q, e, rev));
}

TEST(RowLayoutTest, Basics) {
  RowLayout layout({5, 9, 2});
  EXPECT_EQ(layout.size(), 3);
  EXPECT_EQ(layout.IndexOf(9), 1);
  EXPECT_EQ(layout.IndexOf(7), -1);
  EXPECT_TRUE(layout.Contains(2));
  ColumnCatalog cat;
  // allocate ids 0..5 with widths 8 each
  for (int i = 0; i < 10; ++i) cat.Add("c" + std::to_string(i), DataType::kInt64);
  EXPECT_EQ(layout.RowWidth(cat), 24);
}

}  // namespace
}  // namespace aggview
