#include <gtest/gtest.h>

#include "storage/io_accountant.h"
#include "storage/table.h"

namespace aggview {
namespace {

TEST(IoGeometry, RowsPerPage) {
  EXPECT_EQ(RowsPerPage(8), kPageSizeBytes / 8);
  EXPECT_EQ(RowsPerPage(kPageSizeBytes), 1);
  EXPECT_EQ(RowsPerPage(kPageSizeBytes * 2), 1);  // at least one row per page
  EXPECT_EQ(RowsPerPage(0), kPageSizeBytes);      // degenerate width
}

TEST(IoGeometry, PagesForRows) {
  EXPECT_EQ(PagesForRows(0, 8), 0);
  EXPECT_EQ(PagesForRows(1, 8), 1);
  int64_t per_page = RowsPerPage(8);
  EXPECT_EQ(PagesForRows(per_page, 8), 1);
  EXPECT_EQ(PagesForRows(per_page + 1, 8), 2);
}

TEST(IoAccountantTest, CountsReadsAndWrites) {
  IoAccountant io;
  io.ChargeRead(10);
  io.ChargeWrite(3);
  EXPECT_EQ(io.reads(), 10);
  EXPECT_EQ(io.writes(), 3);
  EXPECT_EQ(io.total(), 13);
  io.Reset();
  EXPECT_EQ(io.total(), 0);
}

TEST(TableTest, AppendValidates) {
  Table t(Schema({{"id", DataType::kInt64}, {"v", DataType::kDouble}}));
  EXPECT_TRUE(t.Append({Value::Int(1), Value::Real(2.0)}).ok());
  EXPECT_FALSE(t.Append({Value::Int(1)}).ok());                       // arity
  EXPECT_FALSE(t.Append({Value::Real(1.0), Value::Real(2.0)}).ok());  // type
  EXPECT_EQ(t.row_count(), 1);
}

TEST(TableTest, PageCountMatchesGeometry) {
  Table t(Schema({{"id", DataType::kInt64}}));
  int64_t per_page = RowsPerPage(8);
  for (int64_t i = 0; i < per_page + 1; ++i) {
    t.AppendUnchecked({Value::Int(i)});
  }
  EXPECT_EQ(t.page_count(), 2);
}

TEST(TableTest, RowAccess) {
  Table t(Schema({{"id", DataType::kInt64}}));
  t.AppendUnchecked({Value::Int(7)});
  EXPECT_EQ(t.row(0)[0].AsInt(), 7);
  EXPECT_EQ(t.rows().size(), 1u);
}

}  // namespace
}  // namespace aggview
