#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "test_util.h"

namespace aggview {
namespace {

/// Skeleton extraction, bounded enumeration, and counterexample shrinking in
/// isolation (verify/skeleton.h, verify/enumerate.h, verify/shrink.h): the
/// building blocks the prover composes, checked against hand-computed state
/// spaces and synthetic refutation oracles.

class SkeletonTest : public ::testing::Test {
 protected:
  SkeletonTest() : fixture_(MakeEmpDept()) {}

  Result<SchemaSkeleton> SkeletonOf(const std::string& sql) {
    auto bound = ParseAndBind(*fixture_.catalog, sql);
    if (!bound.ok()) return bound.status();
    query_ = std::make_unique<Query>(std::move(*bound));
    return ExtractSkeleton(*fixture_.catalog, {SkeletonSource{query_.get(), {}}});
  }

  EmpDeptFixture fixture_;
  std::unique_ptr<Query> query_;
};

TEST_F(SkeletonTest, ExtractsKeysForeignKeysAndDomains) {
  auto skeleton = SkeletonOf(
      "select e.sal from emp e, dept d where e.dno = d.dno and e.sal > 0");
  ASSERT_OK(skeleton);
  ASSERT_EQ(skeleton->tables.size(), 2u);

  // FK topological order: the referenced table (dept) precedes emp.
  const TableSkeleton& dept = skeleton->tables[0];
  const TableSkeleton& emp = skeleton->tables[1];
  EXPECT_EQ(dept.name, "dept");
  EXPECT_EQ(emp.name, "emp");
  EXPECT_EQ(dept.key_column, 0);
  EXPECT_EQ(emp.key_column, 0);

  // emp.dno is a resolved foreign key into dept's label space.
  const SkeletonColumn& dno = emp.columns[1];
  EXPECT_TRUE(dno.relevant);
  EXPECT_EQ(dno.fk_table, dept.table);

  // emp.sal: relevant plain column, base domain {0, 1} plus the literal 0
  // with its inequality neighbours -1 and 1 — union {-1, 0, 1}.
  const SkeletonColumn& sal = emp.columns[2];
  EXPECT_TRUE(sal.relevant);
  EXPECT_FALSE(sal.is_key);
  EXPECT_EQ(sal.fk_table, -1);
  EXPECT_TRUE(sal.nullable);
  ASSERT_EQ(sal.domain.size(), 3u);
  EXPECT_EQ(sal.domain[0].AsNumeric(), -1.0);
  EXPECT_EQ(sal.domain[1].AsNumeric(), 0.0);
  EXPECT_EQ(sal.domain[2].AsNumeric(), 1.0);

  // emp.age is never mentioned: pinned, not enumerated.
  EXPECT_FALSE(emp.columns[3].relevant);

  EXPECT_EQ(skeleton->IndexOf(emp.table), 1);
  EXPECT_EQ(skeleton->IndexOf(dept.table), 0);
  EXPECT_EQ(skeleton->IndexOf(static_cast<TableId>(999)), -1);
}

TEST_F(SkeletonTest, RejectsKeyComparedToLiteral) {
  // eno > 0 observes the key's magnitude, so canonical row labeling would
  // not be equivalence-preserving: out of the prover's scope.
  auto skeleton = SkeletonOf("select e.sal from emp e where e.eno > 0");
  EXPECT_FALSE(skeleton.ok());
}

TEST_F(SkeletonTest, RejectsCrossLabelSpaceEquality) {
  // emp.eno and dept.dno label different tables; equating them lets a
  // relabeling change which rows join.
  auto skeleton = SkeletonOf(
      "select e.sal from emp e, dept d where e.eno = d.dno");
  EXPECT_FALSE(skeleton.ok());
}

TEST_F(SkeletonTest, RejectsLabelToPlainEquality) {
  auto skeleton = SkeletonOf(
      "select e.sal from emp e where e.eno = e.age");
  EXPECT_FALSE(skeleton.ok());
}

/// Enumeration/shrinking fixture: skeleton over emp alone (one relevant
/// column) or emp+dept (foreign key), plus helpers to hand-build databases.
class ShrinkTest : public SkeletonTest {
 protected:
  /// Builds a row for skeleton table `t`: key columns get the label, columns
  /// listed in `overrides` (schema index -> value) get that value, the rest
  /// their pinned value.
  static Row MakeRow(const TableSkeleton& t, int64_t label,
                     const std::map<int, Value>& overrides) {
    Row row;
    for (const SkeletonColumn& col : t.columns) {
      auto it = overrides.find(col.index);
      if (col.index == t.key_column) {
        row.push_back(Value::Int(label));
      } else if (it != overrides.end()) {
        row.push_back(it->second);
      } else {
        row.push_back(col.pinned);
      }
    }
    return row;
  }

  static std::string Stringify(const BoundedDatabase& db) {
    std::string out;
    for (const std::shared_ptr<Table>& t : db.tables) {
      out += "[";
      for (const Row& row : t->rows()) {
        out += "(";
        for (const Value& v : row) out += v.ToString() + ",";
        out += ")";
      }
      out += "]";
    }
    return out;
  }
};

TEST_F(ShrinkTest, EnumerationCountsMatchMultisetArithmetic) {
  // emp alone; only sal is relevant, domain {-1, 0, 1} + NULL = 4 values.
  // Databases up to isomorphism = multisets of row tuples:
  //   r=0: 1, r=1: 4, r=2: C(5,2)=10, r=3: C(6,3)=20.
  auto skeleton = SkeletonOf("select e.sal from emp e where e.sal > 0");
  ASSERT_OK(skeleton);

  EnumerationBounds bounds;
  bounds.max_rows = 2;
  int64_t seen = 0;
  auto visited = ForEachBoundedDatabase(
      *skeleton, bounds, [&](const BoundedDatabase&) -> Result<bool> {
        ++seen;
        return true;
      });
  ASSERT_OK(visited);
  EXPECT_EQ(*visited, 15);
  EXPECT_EQ(seen, 15);

  bounds.max_rows = 3;
  visited = ForEachBoundedDatabase(
      *skeleton, bounds, [&](const BoundedDatabase&) -> Result<bool> { return true; });
  ASSERT_OK(visited);
  EXPECT_EQ(*visited, 35);
}

TEST_F(ShrinkTest, EnumerationStopsEarlyAndHonorsCap) {
  auto skeleton = SkeletonOf("select e.sal from emp e where e.sal > 0");
  ASSERT_OK(skeleton);

  EnumerationBounds bounds;
  bounds.max_rows = 3;
  int64_t seen = 0;
  auto visited = ForEachBoundedDatabase(
      *skeleton, bounds, [&](const BoundedDatabase&) -> Result<bool> {
        return ++seen < 3;  // stop after the third database
      });
  ASSERT_OK(visited);
  EXPECT_EQ(*visited, 3);

  bounds.max_databases = 5;
  auto capped = ForEachBoundedDatabase(
      *skeleton, bounds, [&](const BoundedDatabase&) -> Result<bool> { return true; });
  EXPECT_FALSE(capped.ok());
}

TEST_F(ShrinkTest, RemoveRowCascadesForeignKeysAndRenumbersLabels) {
  auto skeleton = SkeletonOf(
      "select e.sal from emp e, dept d where e.dno = d.dno and e.sal > 0");
  ASSERT_OK(skeleton);
  const TableSkeleton& dept = skeleton->tables[0];
  const TableSkeleton& emp = skeleton->tables[1];

  BoundedDatabase db;
  auto dept_data = std::make_shared<Table>(dept.schema);
  dept_data->AppendUnchecked(MakeRow(dept, 0, {}));
  dept_data->AppendUnchecked(MakeRow(dept, 1, {}));
  auto emp_data = std::make_shared<Table>(emp.schema);
  emp_data->AppendUnchecked(MakeRow(emp, 0, {{1, Value::Int(0)}, {2, Value::Real(1)}}));
  emp_data->AppendUnchecked(MakeRow(emp, 1, {{1, Value::Int(1)}, {2, Value::Real(1)}}));
  emp_data->AppendUnchecked(MakeRow(emp, 2, {{1, Value::Null()}, {2, Value::Real(0)}}));
  db.tables = {dept_data, emp_data};

  // Removing dept row 0 must cascade to the emp row referencing label 0,
  // renumber the surviving dept row to label 0, remap the surviving
  // foreign-key cell 1 -> 0, and renumber the emp keys to 0..1.
  BoundedDatabase after = RemoveRowCascade(*skeleton, db, 0, 0);
  ASSERT_EQ(after.tables[0]->row_count(), 1);
  ASSERT_EQ(after.tables[1]->row_count(), 2);
  EXPECT_EQ(after.tables[0]->row(0)[0].AsInt(), 0);
  EXPECT_EQ(after.tables[1]->row(0)[0].AsInt(), 0);
  EXPECT_EQ(after.tables[1]->row(0)[1].AsInt(), 0);  // was FK 1
  EXPECT_EQ(after.tables[1]->row(0)[2].AsNumeric(), 1.0);
  EXPECT_EQ(after.tables[1]->row(1)[0].AsInt(), 1);
  EXPECT_TRUE(after.tables[1]->row(1)[1].is_null());
  EXPECT_TRUE(SatisfiesUniqueKeys(*skeleton, after));

  // The original database is untouched (value semantics).
  EXPECT_EQ(db.tables[0]->row_count(), 2);
  EXPECT_EQ(db.tables[1]->row_count(), 3);
}

TEST_F(ShrinkTest, ShrinkIsMinimalDeterministicAndTerminates) {
  auto skeleton = SkeletonOf(
      "select e.sal from emp e, dept d where e.dno = d.dno and e.sal > 0");
  ASSERT_OK(skeleton);
  const TableSkeleton& dept = skeleton->tables[0];
  const TableSkeleton& emp = skeleton->tables[1];

  // Synthetic refutation oracle: "some emp row has sal == 1".
  auto refutes = [](const BoundedDatabase& db) -> Result<bool> {
    for (const Row& row : db.tables[1]->rows()) {
      if (!row[2].is_null() && row[2].AsNumeric() == 1.0) return true;
    }
    return false;
  };

  BoundedDatabase db;
  auto dept_data = std::make_shared<Table>(dept.schema);
  dept_data->AppendUnchecked(MakeRow(dept, 0, {}));
  dept_data->AppendUnchecked(MakeRow(dept, 1, {}));
  auto emp_data = std::make_shared<Table>(emp.schema);
  emp_data->AppendUnchecked(MakeRow(emp, 0, {{1, Value::Int(0)}, {2, Value::Real(1)}}));
  emp_data->AppendUnchecked(MakeRow(emp, 1, {{1, Value::Int(1)}, {2, Value::Real(1)}}));
  emp_data->AppendUnchecked(MakeRow(emp, 2, {{1, Value::Null()}, {2, Value::Real(0)}}));
  db.tables = {dept_data, emp_data};

  ShrinkStats stats;
  auto shrunk = ShrinkCounterexample(*skeleton, db, refutes, &stats);
  ASSERT_OK(shrunk);
  auto still = refutes(*shrunk);
  ASSERT_OK(still);
  EXPECT_TRUE(*still);
  EXPECT_GT(stats.oracle_calls, 0);
  EXPECT_GT(stats.rows_removed, 0);
  EXPECT_TRUE(SatisfiesUniqueKeys(*skeleton, *shrunk));

  // The oracle needs one emp row; its FK can only cascade-bind one dept row.
  EXPECT_LE(shrunk->total_rows(), 2);

  // 1-minimality over row deletions: removing any remaining row (with its
  // cascade) must make the refutation disappear.
  for (size_t t = 0; t < shrunk->tables.size(); ++t) {
    for (int64_t r = 0; r < shrunk->tables[t]->row_count(); ++r) {
      BoundedDatabase smaller =
          RemoveRowCascade(*skeleton, *shrunk, static_cast<int>(t), r);
      auto fires = refutes(smaller);
      ASSERT_OK(fires);
      EXPECT_FALSE(*fires) << "removing table " << t << " row " << r
                           << " left a smaller refuting database";
    }
  }

  // Determinism: shrinking the same database again yields the same result.
  auto again = ShrinkCounterexample(*skeleton, db, refutes, nullptr);
  ASSERT_OK(again);
  EXPECT_EQ(Stringify(*shrunk), Stringify(*again));
}

}  // namespace
}  // namespace aggview
