#include <gtest/gtest.h>

#include <cstdlib>

#include "analysis/fuzzer.h"
#include "common/random.h"
#include "test_util.h"

namespace aggview {
namespace {

/// Differential fuzzing: seeded random aggregate-view queries, every one
/// optimized by the traditional, greedy conservative, and extended two-phase
/// optimizers (plus a deep pull-up ablation), every plan analyzed and
/// executed, all result multisets cross-checked against the traditional
/// plan's. Sharded so ctest runs the shards in parallel; 10 shards x 52
/// queries = 520 random queries per suite run.
class DifferentialFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialFuzz, AllOptimizersAgreeUnderParanoidAnalysis) {
  FuzzOptions options;
  options.seed = static_cast<uint64_t>(GetParam()) * 6271 + 17;
  options.num_queries = 52;
  options.num_employees = 150 + 20 * GetParam();
  options.num_departments = 5 + GetParam() % 7;
  options.paranoid = true;

  auto report = RunDifferentialFuzz(options);
  ASSERT_OK(report);
  EXPECT_EQ(report->queries_run, options.num_queries);
  // 4 configurations per query, each executed and compared.
  EXPECT_EQ(report->plans_compared, options.num_queries * 4);
  // Every reference plan re-executed at batch sizes 1, 2, and 1024 with a
  // byte-identical fingerprint: the batch engine is invisible to semantics.
  EXPECT_EQ(report->batch_size_checks,
            options.num_queries *
                static_cast<int>(options.cross_batch_sizes.size()));
  // ... and at every (threads x batch size) combination of {1, 2, 8} x
  // {1, 1024}: morsel-driven parallelism is invisible to semantics too —
  // zero fingerprint mismatches across thread counts.
  EXPECT_EQ(report->thread_checks,
            options.num_queries *
                static_cast<int>(options.cross_thread_counts.size() *
                                 options.cross_thread_batch_sizes.size()));
  // ... and under the compiled backend at every (threads x batch size)
  // combination of {1, 8} x {1, 1024}: bytecode predicates and fused
  // pipeline kernels reproduce the interpreted reference bit for bit.
  EXPECT_GT(report->backend_checks, 0);
  EXPECT_EQ(report->backend_checks,
            options.num_queries *
                static_cast<int>(options.cross_backend_thread_counts.size() *
                                 options.cross_backend_batch_sizes.size()));
  // Every bytecode program those compiled reruns lowered carried a passing
  // verification certificate (a rejected certificate fails the run inside
  // the fuzzer): the corpus executes no unverified bytecode.
  EXPECT_GT(report->bytecode_checks, 0);
  // Paranoid mode actually fired: the analyzer ran at DP insertions and
  // transformation certificates were re-proved.
  EXPECT_GT(report->plans_checked, 0);
  EXPECT_GT(report->certificates_verified, 0);
  // Runtime dataflow self-verification actually fired: every execution ran
  // with the verifier installed and checked batches/cardinalities against
  // the statically derived facts — with zero violations (a violation is an
  // execution error and would have failed the run above).
  EXPECT_GT(report->dataflow_checks, 0);
}

INSTANTIATE_TEST_SUITE_P(Shards, DifferentialFuzz, ::testing::Range(0, 10));

/// The generator itself is deterministic: same seed, same SQL.
TEST(FuzzGenerator, DeterministicInSeed) {
  Rng a(99), b(99), c(100);
  std::string qa, qb, qc;
  for (int i = 0; i < 20; ++i) {
    qa += GenerateAggViewSql(&a);
    qb += GenerateAggViewSql(&b);
    qc += GenerateAggViewSql(&c);
  }
  EXPECT_EQ(qa, qb);
  EXPECT_NE(qa, qc);
}

/// Generated queries exercise the aggregate-view space: across a modest
/// sample some queries must carry views and some a top group-by.
TEST(FuzzGenerator, CoversViewsAndTopAggregates) {
  Rng rng(7);
  int with_views = 0, with_group_by = 0;
  for (int i = 0; i < 50; ++i) {
    std::string sql = GenerateAggViewSql(&rng);
    if (sql.find("create view") != std::string::npos) ++with_views;
    if (sql.rfind("group by e1.dno") != std::string::npos ||
        sql.find("count(*)") != std::string::npos) {
      ++with_group_by;
    }
  }
  EXPECT_GT(with_views, 10);
  EXPECT_GT(with_group_by, 10);
}

/// Materialized-view fuzzing: the generated inline view definitions are
/// re-issued as CREATE MATERIALIZED VIEW, the rewriter must answer the query
/// from the backing tables byte-identically, and the same view-backed plan
/// must still match a base re-execution after a random insert+delete delta
/// plus REFRESH of whatever went stale.
TEST(FuzzMatView, ViewAnsweringAndMaintenanceAgreeWithBasePlans) {
  FuzzOptions options;
  options.seed = 11;
  options.num_queries = 30;
  options.num_employees = 120;
  options.num_departments = 6;
  options.materialize_views = true;
  // Keep the run cheap: the matview leg is the subject here, not the
  // batch/thread geometry sweeps.
  options.cross_batch_sizes.clear();
  options.cross_thread_counts.clear();
  options.cross_backend_thread_counts.clear();

  auto report = RunDifferentialFuzz(options);
  ASSERT_OK(report);
  EXPECT_EQ(report->queries_run, options.num_queries);
  // Across 30 queries some views materialize and answer, some delta cycles
  // complete, and some definitions (HAVING, MEDIAN) are rejected by design.
  EXPECT_GT(report->matview_rewrite_checks, 0);
  EXPECT_GT(report->matview_delta_checks, 0);
  EXPECT_GT(report->matview_skips, 0);
}

/// The AGGVIEW_FUZZ_MATVIEW environment knob turns the same leg on without
/// touching FuzzOptions (for CI sweeps over an unmodified binary).
TEST(FuzzMatView, EnvKnobEnablesMaterialization) {
  FuzzOptions options;
  options.seed = 11;
  options.num_queries = 8;
  options.num_employees = 80;
  options.num_departments = 5;
  options.cross_batch_sizes.clear();
  options.cross_thread_counts.clear();
  options.cross_backend_thread_counts.clear();

  ASSERT_EQ(setenv("AGGVIEW_FUZZ_MATVIEW", "1", /*overwrite=*/1), 0);
  auto report = RunDifferentialFuzz(options);
  ASSERT_EQ(unsetenv("AGGVIEW_FUZZ_MATVIEW"), 0);
  ASSERT_OK(report);
  EXPECT_GT(report->matview_rewrite_checks + report->matview_skips, 0);
}

/// Seed replay: AGGVIEW_FUZZ_SEED pins the run to exactly one query — the
/// per-query seed a failure message prints — so a prover-minimized
/// counterexample stays tied to the originating fuzz case.
TEST(FuzzReplay, EnvSeedRunsExactlyOneQuery) {
  FuzzOptions options;
  options.seed = 42;
  options.num_queries = 25;
  options.num_employees = 60;
  options.num_departments = 4;
  // Keep the replay cheap: skip the batch/thread sweeps.
  options.cross_batch_sizes.clear();
  options.cross_thread_counts.clear();
  options.cross_backend_thread_counts.clear();

  // The per-query seed of query 3 under base seed 42 (seed * 1000003 + q).
  ASSERT_EQ(setenv("AGGVIEW_FUZZ_SEED", "42000129", /*overwrite=*/1), 0);
  auto replay = RunDifferentialFuzz(options);
  ASSERT_EQ(unsetenv("AGGVIEW_FUZZ_SEED"), 0);
  ASSERT_OK(replay);
  EXPECT_EQ(replay->queries_run, 1);

  // A malformed seed is a loud error, not a silent full sweep.
  ASSERT_EQ(setenv("AGGVIEW_FUZZ_SEED", "not-a-number", /*overwrite=*/1), 0);
  auto bad = RunDifferentialFuzz(options);
  ASSERT_EQ(unsetenv("AGGVIEW_FUZZ_SEED"), 0);
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace aggview
