#include <gtest/gtest.h>

#include "expr/aggregate.h"
#include "expr/predicate.h"
#include "expr/scalar_expr.h"

namespace aggview {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  ExprTest() {
    a_ = cat_.Add("a", DataType::kInt64);
    b_ = cat_.Add("b", DataType::kDouble);
    s_ = cat_.Add("s", DataType::kString);
    layout_ = RowLayout({a_, b_, s_});
    row_ = {Value::Int(10), Value::Real(2.5), Value::Str("hi")};
  }

  ColumnCatalog cat_;
  ColId a_, b_, s_;
  RowLayout layout_;
  Row row_;
};

TEST_F(ExprTest, ColumnRefEval) {
  EXPECT_EQ(Col(a_)->Eval(row_, layout_).AsInt(), 10);
  EXPECT_DOUBLE_EQ(Col(b_)->Eval(row_, layout_).AsDouble(), 2.5);
}

TEST_F(ExprTest, LiteralEval) {
  EXPECT_EQ(LitInt(5)->Eval(row_, layout_).AsInt(), 5);
  EXPECT_EQ(LitStr("x")->Eval(row_, layout_).AsString(), "x");
}

TEST_F(ExprTest, ArithInteger) {
  EXPECT_EQ(Arith(ArithOp::kAdd, Col(a_), LitInt(5))->Eval(row_, layout_).AsInt(), 15);
  EXPECT_EQ(Arith(ArithOp::kMul, Col(a_), LitInt(3))->Eval(row_, layout_).AsInt(), 30);
  EXPECT_EQ(Arith(ArithOp::kSub, Col(a_), LitInt(4))->Eval(row_, layout_).AsInt(), 6);
}

TEST_F(ExprTest, ArithDivisionPromotes) {
  Value v = Arith(ArithOp::kDiv, Col(a_), LitInt(4))->Eval(row_, layout_);
  EXPECT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.AsDouble(), 2.5);
}

TEST_F(ExprTest, ArithMixedPromotes) {
  Value v = Arith(ArithOp::kAdd, Col(a_), Col(b_))->Eval(row_, layout_);
  EXPECT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.AsDouble(), 12.5);
}

TEST_F(ExprTest, DivisionByZeroYieldsZero) {
  Value v = Arith(ArithOp::kDiv, Col(a_), LitInt(0))->Eval(row_, layout_);
  EXPECT_DOUBLE_EQ(v.AsDouble(), 0.0);
}

TEST_F(ExprTest, ResultTypes) {
  EXPECT_EQ(Col(a_)->ResultType(cat_), DataType::kInt64);
  EXPECT_EQ(Arith(ArithOp::kAdd, Col(a_), LitInt(1))->ResultType(cat_),
            DataType::kInt64);
  EXPECT_EQ(Arith(ArithOp::kAdd, Col(a_), Col(b_))->ResultType(cat_),
            DataType::kDouble);
  EXPECT_EQ(Arith(ArithOp::kDiv, Col(a_), LitInt(2))->ResultType(cat_),
            DataType::kDouble);
}

TEST_F(ExprTest, CollectColumns) {
  std::set<ColId> cols;
  Arith(ArithOp::kAdd, Col(a_), Arith(ArithOp::kMul, Col(b_), LitInt(2)))
      ->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::set<ColId>{a_, b_}));
}

TEST_F(ExprTest, RemapColumns) {
  std::unordered_map<ColId, ColId> mapping = {{a_, b_}};
  ExprPtr remapped = Arith(ArithOp::kAdd, Col(a_), LitInt(1))->RemapColumns(mapping);
  std::set<ColId> cols;
  remapped->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::set<ColId>{b_}));
}

TEST_F(ExprTest, ToString) {
  EXPECT_EQ(Col(a_)->ToString(cat_), "a");
  EXPECT_EQ(Arith(ArithOp::kMul, Col(a_), LitInt(2))->ToString(cat_), "(a * 2)");
}

TEST_F(ExprTest, AsColumnRef) {
  EXPECT_EQ(Col(a_)->AsColumnRef(), a_);
  EXPECT_EQ(LitInt(3)->AsColumnRef(), kInvalidColId);
}

TEST_F(ExprTest, PredicateEval) {
  EXPECT_TRUE(Cmp(Col(a_), CompareOp::kGt, LitInt(5)).Eval(row_, layout_));
  EXPECT_FALSE(Cmp(Col(a_), CompareOp::kLt, LitInt(5)).Eval(row_, layout_));
  EXPECT_TRUE(Cmp(Col(s_), CompareOp::kEq, LitStr("hi")).Eval(row_, layout_));
  EXPECT_TRUE(Cmp(Col(a_), CompareOp::kNe, LitInt(11)).Eval(row_, layout_));
  EXPECT_TRUE(Cmp(Col(a_), CompareOp::kGe, LitInt(10)).Eval(row_, layout_));
  EXPECT_TRUE(Cmp(Col(a_), CompareOp::kLe, LitInt(10)).Eval(row_, layout_));
}

TEST_F(ExprTest, PredicateAnalysis) {
  Predicate eq = EqCols(a_, b_);
  ColId x, y;
  EXPECT_TRUE(eq.AsColumnEquality(&x, &y));
  EXPECT_EQ(x, a_);
  EXPECT_EQ(y, b_);

  Predicate lt = Cmp(Col(a_), CompareOp::kLt, LitInt(22));
  EXPECT_FALSE(lt.AsColumnEquality(&x, &y));
  ColId col;
  CompareOp op;
  Value v;
  ASSERT_TRUE(lt.AsColumnVsLiteral(&col, &op, &v));
  EXPECT_EQ(col, a_);
  EXPECT_EQ(op, CompareOp::kLt);
  EXPECT_EQ(v.AsInt(), 22);

  // Flipped orientation: 22 > a  ==  a < 22.
  Predicate flipped = Cmp(LitInt(22), CompareOp::kGt, Col(a_));
  ASSERT_TRUE(flipped.AsColumnVsLiteral(&col, &op, &v));
  EXPECT_EQ(col, a_);
  EXPECT_EQ(op, CompareOp::kLt);
}

TEST_F(ExprTest, PredicateBoundByAndReferences) {
  Predicate p = Cmp(Col(a_), CompareOp::kGt, Col(b_));
  EXPECT_TRUE(p.BoundBy({a_, b_}));
  EXPECT_FALSE(p.BoundBy({a_}));
  EXPECT_TRUE(p.References({b_}));
  EXPECT_FALSE(p.References({s_}));
}

TEST_F(ExprTest, EvalConjunctionShortCircuitSemantics) {
  std::vector<Predicate> preds = {Cmp(Col(a_), CompareOp::kGt, LitInt(5)),
                                  Cmp(Col(s_), CompareOp::kEq, LitStr("hi"))};
  EXPECT_TRUE(EvalConjunction(preds, row_, layout_));
  preds.push_back(Cmp(Col(a_), CompareOp::kLt, LitInt(0)));
  EXPECT_FALSE(EvalConjunction(preds, row_, layout_));
  EXPECT_TRUE(EvalConjunction({}, row_, layout_));
}

TEST_F(ExprTest, FlipCompareOp) {
  EXPECT_EQ(FlipCompareOp(CompareOp::kLt), CompareOp::kGt);
  EXPECT_EQ(FlipCompareOp(CompareOp::kLe), CompareOp::kGe);
  EXPECT_EQ(FlipCompareOp(CompareOp::kEq), CompareOp::kEq);
}

TEST(AggregateTest, Decomposability) {
  EXPECT_TRUE(IsDecomposable(AggKind::kSum));
  EXPECT_TRUE(IsDecomposable(AggKind::kCount));
  EXPECT_TRUE(IsDecomposable(AggKind::kCountStar));
  EXPECT_TRUE(IsDecomposable(AggKind::kMin));
  EXPECT_TRUE(IsDecomposable(AggKind::kMax));
  EXPECT_TRUE(IsDecomposable(AggKind::kAvg));
  EXPECT_FALSE(IsDecomposable(AggKind::kMedian));
}

TEST(AggregateTest, DuplicateInsensitivity) {
  EXPECT_TRUE(IsDuplicateInsensitive(AggKind::kMin));
  EXPECT_TRUE(IsDuplicateInsensitive(AggKind::kMax));
  EXPECT_FALSE(IsDuplicateInsensitive(AggKind::kSum));
  EXPECT_FALSE(IsDuplicateInsensitive(AggKind::kCount));
  EXPECT_FALSE(IsDuplicateInsensitive(AggKind::kAvg));
  EXPECT_FALSE(IsDuplicateInsensitive(AggKind::kMedian));
}

TEST(AggregateTest, SumAccumulator) {
  AggAccumulator acc(AggKind::kSum);
  acc.Add({Value::Int(1)});
  acc.Add({Value::Int(2)});
  acc.Add({Value::Int(3)});
  EXPECT_EQ(acc.Finish().AsInt(), 6);
}

TEST(AggregateTest, SumPromotesOnMixedInput) {
  AggAccumulator acc(AggKind::kSum);
  acc.Add({Value::Int(1)});
  acc.Add({Value::Real(2.5)});
  Value v = acc.Finish();
  EXPECT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.AsDouble(), 3.5);
}

TEST(AggregateTest, CountAndCountStar) {
  AggAccumulator c(AggKind::kCount);
  c.Add({Value::Int(5)});
  c.Add({Value::Int(5)});
  EXPECT_EQ(c.Finish().AsInt(), 2);
  AggAccumulator cs(AggKind::kCountStar);
  cs.Add({});
  EXPECT_EQ(cs.Finish().AsInt(), 1);
}

TEST(AggregateTest, MinMax) {
  AggAccumulator mn(AggKind::kMin), mx(AggKind::kMax);
  for (int v : {5, 2, 9, 3}) {
    mn.Add({Value::Int(v)});
    mx.Add({Value::Int(v)});
  }
  EXPECT_EQ(mn.Finish().AsInt(), 2);
  EXPECT_EQ(mx.Finish().AsInt(), 9);
}

TEST(AggregateTest, MinOnStrings) {
  AggAccumulator mn(AggKind::kMin);
  mn.Add({Value::Str("pear")});
  mn.Add({Value::Str("apple")});
  EXPECT_EQ(mn.Finish().AsString(), "apple");
}

TEST(AggregateTest, Avg) {
  AggAccumulator acc(AggKind::kAvg);
  acc.Add({Value::Int(1)});
  acc.Add({Value::Int(2)});
  EXPECT_DOUBLE_EQ(acc.Finish().AsDouble(), 1.5);
}

TEST(AggregateTest, MedianOddAndEven) {
  AggAccumulator odd(AggKind::kMedian);
  for (int v : {5, 1, 3}) odd.Add({Value::Int(v)});
  EXPECT_DOUBLE_EQ(odd.Finish().AsDouble(), 3.0);
  AggAccumulator even(AggKind::kMedian);
  for (int v : {4, 1, 3, 2}) even.Add({Value::Int(v)});
  EXPECT_DOUBLE_EQ(even.Finish().AsDouble(), 2.5);
}

TEST(AggregateTest, AvgFinalCombinesPartials) {
  AggAccumulator acc(AggKind::kAvgFinal);
  acc.Add({Value::Real(10.0), Value::Int(4)});  // sum=10 over 4 rows
  acc.Add({Value::Real(2.0), Value::Int(2)});   // sum=2 over 2 rows
  EXPECT_DOUBLE_EQ(acc.Finish().AsDouble(), 2.0);
}

TEST(AggregateTest, ResultTypes) {
  ColumnCatalog cat;
  ColId i = cat.Add("i", DataType::kInt64);
  ColId d = cat.Add("d", DataType::kDouble);
  EXPECT_EQ((AggregateCall{AggKind::kCount, {i}, 0}).ResultType(cat),
            DataType::kInt64);
  EXPECT_EQ((AggregateCall{AggKind::kSum, {i}, 0}).ResultType(cat),
            DataType::kInt64);
  EXPECT_EQ((AggregateCall{AggKind::kSum, {d}, 0}).ResultType(cat),
            DataType::kDouble);
  EXPECT_EQ((AggregateCall{AggKind::kAvg, {i}, 0}).ResultType(cat),
            DataType::kDouble);
  EXPECT_EQ((AggregateCall{AggKind::kMin, {i}, 0}).ResultType(cat),
            DataType::kInt64);
}

}  // namespace
}  // namespace aggview
