#include <gtest/gtest.h>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"

namespace aggview {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad arg");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad arg");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad arg");
}

TEST(Status, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kUnimplemented, StatusCode::kInternal,
        StatusCode::kParseError, StatusCode::kBindError,
        StatusCode::kExecutionError}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status UsesReturnMacro(int x) {
  AGGVIEW_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(Status, ReturnNotOkMacro) {
  EXPECT_TRUE(UsesReturnMacro(1).ok());
  EXPECT_EQ(UsesReturnMacro(-1).code(), StatusCode::kOutOfRange);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> Doubled(int x) {
  AGGVIEW_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 21);
  EXPECT_EQ(r.value_or(-1), 21);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = Doubled(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 10);
  Result<int> err = Doubled(-5);
  EXPECT_FALSE(err.ok());
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, ZipfRespectsBounds) {
  Rng rng(2);
  for (double theta : {0.0, 0.5, 1.0, 1.5}) {
    for (int i = 0; i < 500; ++i) {
      int64_t v = rng.Zipf(100, theta);
      EXPECT_GE(v, 1);
      EXPECT_LE(v, 100);
    }
  }
}

TEST(Rng, ZipfIsSkewed) {
  Rng rng(3);
  int64_t low_ranks = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Zipf(1000, 1.2) <= 10) ++low_ranks;
  }
  // Under uniform draws P(rank <= 10) = 1%; with theta=1.2 it is far larger.
  EXPECT_GT(low_ranks, kDraws / 20);
}

TEST(Rng, StringHasRequestedLength) {
  Rng rng(4);
  EXPECT_EQ(rng.String(12).size(), 12u);
}

TEST(StringUtil, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(StringUtil, ToLower) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToLower("abc_123"), "abc_123");
}

TEST(StringUtil, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("GROUP", "group"));
  EXPECT_FALSE(EqualsIgnoreCase("GROUP", "groups"));
}

TEST(StringUtil, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

}  // namespace
}  // namespace aggview
