#include <gtest/gtest.h>

#include "test_util.h"

namespace aggview {
namespace {

class OrderByTest : public ::testing::Test {
 protected:
  OrderByTest() : fixture_(MakeEmpDept(Options())) {}

  static EmpDeptOptions Options() {
    EmpDeptOptions o;
    o.num_employees = 500;
    o.num_departments = 20;
    return o;
  }

  QueryResult Run(const std::string& sql) {
    auto query = ParseAndBind(*fixture_.catalog, sql);
    EXPECT_TRUE(query.ok()) << query.status().ToString();
    auto optimized = OptimizeQueryWithAggViews(*query, OptimizerOptions{});
    EXPECT_TRUE(optimized.ok()) << optimized.status().ToString();
    Status valid = ValidatePlan(optimized->plan, optimized->query);
    EXPECT_TRUE(valid.ok()) << valid.ToString();
    auto result = ExecutePlan(optimized->plan, optimized->query);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  EmpDeptFixture fixture_;
};

TEST_F(OrderByTest, ParserAcceptsOrderBy) {
  auto ast = ParseSelect("select a from t order by a desc, b asc, c");
  ASSERT_OK(ast);
  ASSERT_EQ(ast->order_by.size(), 3u);
  EXPECT_TRUE(ast->order_by[0].descending);
  EXPECT_FALSE(ast->order_by[1].descending);
  EXPECT_FALSE(ast->order_by[2].descending);
}

TEST_F(OrderByTest, ParserRejectsOrderByExpression) {
  EXPECT_FALSE(ParseSelect("select a from t order by a + 1").ok());
}

TEST_F(OrderByTest, AscendingOrder) {
  QueryResult r = Run("select e.eno, e.sal from emp e where e.eno <= 50 "
                      "order by e.sal");
  ASSERT_EQ(r.rows.size(), 50u);
  for (size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_LE(r.rows[i - 1][1].AsDouble(), r.rows[i][1].AsDouble());
  }
}

TEST_F(OrderByTest, DescendingOrder) {
  QueryResult r = Run("select e.eno, e.sal from emp e where e.eno <= 50 "
                      "order by e.sal desc");
  for (size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_GE(r.rows[i - 1][1].AsDouble(), r.rows[i][1].AsDouble());
  }
}

TEST_F(OrderByTest, MultiKeyOrder) {
  QueryResult r = Run("select e.dno, e.sal from emp e order by e.dno, e.sal desc");
  for (size_t i = 1; i < r.rows.size(); ++i) {
    int64_t d0 = r.rows[i - 1][0].AsInt(), d1 = r.rows[i][0].AsInt();
    EXPECT_LE(d0, d1);
    if (d0 == d1) {
      EXPECT_GE(r.rows[i - 1][1].AsDouble(), r.rows[i][1].AsDouble());
    }
  }
}

TEST_F(OrderByTest, OrderByAggregateOutput) {
  QueryResult r = Run(
      "select e.dno, avg(e.sal) from emp e group by e.dno order by avg(e.sal)");
  ASSERT_EQ(r.rows.size(), 20u);
  for (size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_LE(r.rows[i - 1][1].AsDouble(), r.rows[i][1].AsDouble());
  }
}

TEST_F(OrderByTest, OrderByOverViewQuery) {
  QueryResult r = Run(R"sql(
create view v (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
select e1.eno, e1.sal from emp e1, v
where e1.dno = v.dno and e1.sal > v.asal
order by e1.sal desc
)sql");
  ASSERT_GT(r.rows.size(), 0u);
  for (size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_GE(r.rows[i - 1][1].AsDouble(), r.rows[i][1].AsDouble());
  }
}

TEST_F(OrderByTest, BinderRejectsInvisibleOrderColumn) {
  // e.sal is not visible above the group-by.
  EXPECT_FALSE(ParseAndBind(*fixture_.catalog,
                            "select e.dno, count(*) from emp e group by e.dno "
                            "order by e.sal")
                   .ok());
}

TEST_F(OrderByTest, SortCostIsCharged) {
  auto query = ParseAndBind(*fixture_.catalog,
                            "select e.eno from emp e order by e.eno");
  ASSERT_OK(query);
  auto with_sort = OptimizeQueryWithAggViews(*query, OptimizerOptions{});
  ASSERT_OK(with_sort);
  auto query2 = ParseAndBind(*fixture_.catalog, "select e.eno from emp e");
  ASSERT_OK(query2);
  auto without = OptimizeQueryWithAggViews(*query2, OptimizerOptions{});
  ASSERT_OK(without);
  EXPECT_GE(with_sort->plan->cost, without->plan->cost);
}

TEST(OrderByAggBinding, HavingKeywordBoundary) {
  // "desc"/"asc" must not be eaten as select-item aliases.
  auto ast = ParseSelect("select a from t order by a desc");
  ASSERT_OK(ast);
  EXPECT_TRUE(ast->order_by[0].descending);
}

}  // namespace
}  // namespace aggview
