// Experiment E3 — Figure 2(b) (simple coalescing grouping).
//
// Simple coalescing adds a pre-aggregation G2 below a join and coalesces
// the partial groups with the original group-by G1 on top. Its benefit is
// the data-reduction factor of G2: rows-per-group on the pre-aggregated
// side. This harness uses the fan-out self-join
//
//   SELECT e.dno, SUM(e.sal) FROM emp e, emp f WHERE e.dno = f.dno GROUP BY e.dno
//
// (invariant grouping is inapplicable: the join fans out, SUM would be
// inflated) and sweeps the number of departments, i.e. the reduction
// factor. Lazy = aggregate after the join; eager = pre-aggregate e on dno.
// Expected: eager wins by orders of magnitude at few groups (large
// reduction) and the margin narrows as groups approach the row count.
#include "bench_util.h"
#include "optimizer/join_enumerator.h"

namespace aggview {
namespace bench {
namespace {

bool PlanHasGroupByBelowJoin(const PlanPtr& plan, bool under_join = false) {
  if (plan == nullptr) return false;
  if (plan->kind == PlanNode::Kind::kGroupBy && under_join) return true;
  bool join = under_join || plan->kind == PlanNode::Kind::kJoin;
  return PlanHasGroupByBelowJoin(plan->left, join) ||
         PlanHasGroupByBelowJoin(plan->right, join);
}

void Run() {
  Banner("E3", "simple coalescing grouping (paper Figure 2b)");
  std::printf("emp rows fixed at 24000; sweep = department count (rows/group).\n\n");

  TablePrinter table({"groups", "rows/grp", "lazy_est", "eager_est", "pick",
                      "pick_io", "coalesced?"});

  const int64_t kEmployees = 24'000;
  for (int64_t depts : {20, 200, 2'000, 12'000}) {
    EmpDeptOptions data;
    data.num_employees = kEmployees;
    data.num_departments = depts;
    EmpDeptDb db = MakeEmpDeptDb(data);

    std::string sql =
        "select e.dno, sum(e.sal), count(*) from emp e, emp f "
        "where e.dno = f.dno group by e.dno";

    RunOutcome lazy = RunConfig(*db.catalog, sql, TraditionalOptions());

    auto query = ParseAndBind(*db.catalog, sql);
    if (!query.ok()) std::abort();
    auto optimized = OptimizeQueryWithAggViews(*query, OptimizerOptions{});
    if (!optimized.ok()) std::abort();
    IoAccountant io;
    auto result = ExecutePlan(optimized->plan, optimized->query,
                            ExecContext::Default().WithIo(&io));
    if (!result.ok()) std::abort();

    bool coalesced = PlanHasGroupByBelowJoin(optimized->plan);
    table.Row({Fmt(depts), Fmt(static_cast<double>(kEmployees) / depts),
               Fmt(lazy.estimated), Fmt(optimized->plan->cost),
               coalesced ? "eager" : "lazy", Fmt(io.total()),
               coalesced ? "yes" : "no"});
  }
  std::printf(
      "\nExpected shape: eager (pre-aggregated) plan far cheaper at high\n"
      "rows/group; the advantage shrinks as the reduction factor approaches 1.\n");
}

}  // namespace
}  // namespace bench
}  // namespace aggview

int main() {
  aggview::bench::Run();
  return 0;
}
