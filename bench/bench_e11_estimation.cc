// Experiment E11 — estimation accuracy of the statistics substrate.
//
// Cost-based choice is only as good as its cardinality estimates (the
// paper's Section 5 presumes a cost model; this harness quantifies ours).
// For selection, join, and group-by operators over skewed and uniform data,
// the optimizer's row estimate is compared with the true cardinality; the
// reported q-error is max(est/actual, actual/est).
#include <cmath>

#include "analysis/dataflow.h"
#include "bench_util.h"
#include "optimizer/plan_validator.h"

namespace aggview {
namespace bench {
namespace {

std::string FmtQ(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

/// Root-node provable cardinality bounds from the dataflow verifier,
/// rendered compactly.
std::string FmtBounds(const CardBounds& b) {
  char buf[64];
  if (std::isfinite(b.hi)) {
    std::snprintf(buf, sizeof(buf), "[%.0f, %.0f]", b.lo, b.hi);
  } else {
    std::snprintf(buf, sizeof(buf), "[%.0f, inf]", b.lo);
  }
  return buf;
}

/// True when every node's estimate lies inside its provable bounds — an
/// escape anywhere in the plan is an estimator bug by construction.
bool AllEstimatesInBounds(const PlanPtr& plan, const DataflowAnalysis& flow) {
  if (plan == nullptr) return true;
  const NodeFacts* f = flow.Find(plan.get());
  if (f != nullptr && !EstimateWithinBounds(plan->est.rows, f->card)) {
    return false;
  }
  return AllEstimatesInBounds(plan->left, flow) &&
         AllEstimatesInBounds(plan->right, flow);
}

void Run() {
  Banner("E11", "cardinality estimation accuracy (q-error)");

  // q_root scores the final result cardinality; q_op_max / q_op_geo score
  // every executed operator (EXPLAIN ANALYZE data), so a plan whose root
  // estimate looks fine but which mispredicts an intermediate join is still
  // exposed. `worst_op` names the operator with the largest q-error.
  TablePrinter table({"skew", "operator", "est_rows", "actual", "q_root",
                      "q_op_max", "q_op_geo", "bounds", "est_ok",
                      "worst_op"});
  for (double skew : {0.0, 1.1}) {
    DbgenOptions options;
    options.scale_factor = 0.005;
    options.skew = skew;
    TpcdDb db = MakeTpcdDb(options);

    struct Probe {
      const char* op;
      std::string sql;
    };
    std::vector<Probe> probes = {
        {"selection", "select l.l_orderkey from lineitem l where "
                      "l.l_shipdate < 400"},
        {"selection", "select l.l_orderkey from lineitem l where "
                      "l.l_quantity > 40"},
        {"fk-join", "select l.l_orderkey from lineitem l, orders o where "
                    "l.l_orderkey = o.o_orderkey"},
        {"fanout-join", "select l.l_orderkey from lineitem l, partsupp ps "
                        "where l.l_partkey = ps.ps_partkey"},
        {"group-by", "select l.l_partkey, count(*) from lineitem l group by "
                     "l.l_partkey"},
        {"skewed-eq", "select l.l_orderkey from lineitem l where "
                      "l.l_partkey = 1"},
        {"join+group", "select l.l_suppkey, sum(l.l_extendedprice) from "
                       "lineitem l, supplier s where l.l_suppkey = "
                       "s.s_suppkey and s.s_acctbal > 5000 group by "
                       "l.l_suppkey"},
    };
    for (const Probe& probe : probes) {
      auto query = ParseAndBind(*db.catalog, probe.sql);
      if (!query.ok()) std::abort();
      auto optimized = OptimizeQueryWithAggViews(*query, OptimizerOptions{});
      if (!optimized.ok()) std::abort();
      RuntimeStatsCollector stats;
      auto result =
          ExecutePlan(optimized->plan, optimized->query,
                      ExecContext::Default().WithStats(&stats));
      if (!result.ok()) std::abort();
      double est = optimized->plan->est.rows;
      double actual = static_cast<double>(result->rows.size());
      QErrorSummary ops = SummarizeQError(
          CollectNodeQErrors(optimized->plan, optimized->query, stats));
      DataflowAnalysis flow =
          DataflowAnalysis::Analyze(optimized->plan, optimized->query);
      const NodeFacts* root = flow.Find(optimized->plan.get());
      table.Row({skew == 0.0 ? "uniform" : "zipf1.1", probe.op, Fmt(est),
                 Fmt(actual), FmtQ(QError(est, actual)), FmtQ(ops.max_q),
                 FmtQ(ops.mean_q),
                 root != nullptr ? FmtBounds(root->card) : "?",
                 AllEstimatesInBounds(optimized->plan, flow) ? "yes"
                                                             : "VIOLATION",
                 ops.worst_label});
    }
  }
  std::printf(
      "\nExpected shape: q-errors near 1 for selections (equi-depth\n"
      "histograms), FK joins and group-bys; the familiar blowup appears on\n"
      "equality against a skewed column ('skewed-eq' under zipf), where the\n"
      "uniform-frequency assumption — which the paper's cost-based framework\n"
      "inherits from System R — breaks down.\n");
}

}  // namespace
}  // namespace bench
}  // namespace aggview

int main() {
  aggview::bench::Run();
  return 0;
}
