// Experiment E13 — execution-engine throughput across batch sizes and
// thread counts.
//
// The batch-at-a-time refactor claims that per-row interpretation overhead
// (virtual dispatch, stats clock reads, counter updates) amortizes over the
// batch. This experiment measures it: two TPC-D workloads — a scan-heavy
// projection over lineitem and an aggregate-heavy group-by over the same
// rows — run at batch sizes 1 (the old Volcano row-at-a-time behaviour),
// 64, 256, 1024 (default), and 4096. Both execution modes are timed:
// uninstrumented (plain_ms) and with the EXPLAIN ANALYZE stats collector
// installed (traced_ms), where the interpreter pays two clock reads per
// Next per operator and the per-batch amortization is decisive.
//
// A second sweep holds the batch size at the default (1024) and varies the
// morsel-driven worker count through 1, 2, 4 and 8: parallel scan morsels,
// partitioned hash-join build and thread-local partial aggregation. The
// speedup column is relative to the 1-thread run of the same workload; it
// can only approach the thread count when the host actually has that many
// cores (the `cores` column reports std::thread::hardware_concurrency),
// and the results stay byte-identical at every point regardless.
//
// A third sweep compares the execution backends at a fixed geometry:
// every workload runs serially at batch sizes 1 and 1024 under both the
// Volcano batch interpreter and the compiling backend (bytecode predicates
// plus fused scan/filter/aggregate kernels). The backend_speedup column is
// compiled-vs-interpreted at the same batch size; the filter and aggregate
// workloads are the ones the fused kernels target.
//
// Repetitions are interleaved round-robin across the axis values (all
// values at rep 0, then all at rep 1, ...) so clock-frequency drift during
// the run cannot systematically favour whichever value is measured first.
// A fourth sweep prices the bytecode verifier (exec/compile/verifier.h):
// the one-time prepare path (parse + bind + optimize + lower, where lowering
// compiles and verifies every bytecode program) is timed with verification
// off, on, and paranoid. The claim is that `on` stays within 5% of `off` at
// prepare time (plain_speedup >= 0.95 on the verify rows) and that per-row
// execution cost is zero (the traced_ms full-execution column is
// mode-independent, traced_speedup ~1). Steady-state prepare pays only the
// verifier's content-keyed memo lookup: a program is proved once per
// process, and re-lowering the identical (program, source, layout, mode)
// tuple replays the stored verdict — the burst below is exactly the plan
// cache's re-prepare pattern, so the first iteration pays the full proof
// and the min-over-reps reports the amortized cost.
#include <chrono>
#include <thread>

#include "bench_util.h"
#include "exec/lowering.h"

namespace aggview {
namespace bench {
namespace {

struct Workload {
  const char* name;
  const char* sql;
};

constexpr Workload kWorkloads[] = {
    // Scan-heavy: stream every lineitem through a hash-join probe against
    // the small supplier table and a projection — a pipeline of operators
    // with no aggregation, dominated by per-row interpretation.
    {"scan",
     "select l.l_orderkey, l.l_extendedprice, s.s_acctbal "
     "from lineitem l, supplier s "
     "where l.l_suppkey = s.s_suppkey and l.l_quantity >= 0"},
    // Aggregate-heavy: fold the same rows into a grouped aggregation.
    {"aggregate",
     "select l.l_suppkey, sum(l.l_extendedprice), count(*) "
     "from lineitem l group by l.l_suppkey"},
    // Filter-heavy: a wide conjunction evaluated in full on (almost) every
    // row — the leading conjuncts are always true on the generated data and
    // the selective one (l_quantity is uniform 1..50, so >= 49 keeps ~4% of
    // rows) comes last, so per-row predicate evaluation is essentially the
    // whole cost. That is what the bytecode compiler targets; a permissive
    // or leading-selective filter would instead measure row projection /
    // short-circuited row access, identical under both backends.
    {"filter",
     "select l.l_orderkey, l.l_extendedprice from lineitem l "
     "where l.l_suppkey > 0 and l.l_partkey > 0 and l.l_orderkey > 0 "
     "and l.l_extendedprice > 1000 and l.l_discount >= 0 "
     "and l.l_shipdate >= 0 and l.l_quantity >= 49"},
};

constexpr int kBatchSizes[] = {1, 64, 256, 1024, 4096};
constexpr int kNumSizes = 5;
constexpr int kThreadCounts[] = {1, 2, 4, 8};
constexpr int kNumThreadCounts = 4;
constexpr int kReps = 5;

double RunOnce(const PlanPtr& plan, const Query& query, int batch_size,
               int threads, bool traced,
               ExecBackend backend = ExecBackend::kInterpret) {
  RuntimeStatsCollector stats;
  ExecContext ctx = ExecContext{}
                        .WithBatchSize(batch_size)
                        .WithThreads(threads)
                        .WithBackend(backend)
                        .WithStats(traced ? &stats : nullptr);
  auto start = std::chrono::steady_clock::now();
  auto result = ExecutePlan(plan, query, ctx);
  auto stop = std::chrono::steady_clock::now();
  if (!result.ok()) {
    std::fprintf(stderr, "execute: %s\n", result.status().ToString().c_str());
    std::abort();
  }
  return std::chrono::duration<double>(stop - start).count();
}

Result<OptimizedQuery> Prepare(const TpcdDb& db, const Workload& w) {
  auto query = ParseAndBind(*db.catalog, w.sql);
  if (!query.ok()) {
    std::fprintf(stderr, "bind: %s\n", query.status().ToString().c_str());
    std::abort();
  }
  auto optimized = OptimizeQueryWithAggViews(*query, OptimizerOptions{});
  if (!optimized.ok()) {
    std::fprintf(stderr, "optimize: %s\n",
                 optimized.status().ToString().c_str());
    std::abort();
  }
  return optimized;
}

void Run(bool json) {
  if (!json) {
    Banner("E13",
           "batch execution throughput (rows/sec vs batch size, threads)");
  }

  DbgenOptions options;
  options.scale_factor = 0.02;  // ~120k lineitems: enough work to time
  TpcdDb db = MakeTpcdDb(options);
  int64_t lineitems = db.catalog->table(db.tables.lineitem).data->row_count();

  ResultWriter table(json, "E13",
                     {"workload", "backend", "batch_size", "threads", "rows",
                      "plain_ms", "rows_per_sec", "plain_speedup", "traced_ms",
                      "traced_speedup"}, 15);

  // Axis 1: batch size (serial execution).
  for (const Workload& w : kWorkloads) {
    auto optimized = Prepare(db, w);

    double plain[kNumSizes], traced[kNumSizes];
    for (int s = 0; s < kNumSizes; ++s) plain[s] = traced[s] = 1e300;
    // Warm-up pass (untimed), then interleaved timed repetitions.
    RunOnce(optimized->plan, optimized->query, kBatchSizes[0], 1, false);
    for (int rep = 0; rep < kReps; ++rep) {
      for (int s = 0; s < kNumSizes; ++s) {
        double t = RunOnce(optimized->plan, optimized->query, kBatchSizes[s],
                           1, /*traced=*/false);
        if (t < plain[s]) plain[s] = t;
        t = RunOnce(optimized->plan, optimized->query, kBatchSizes[s], 1,
                    /*traced=*/true);
        if (t < traced[s]) traced[s] = t;
      }
    }

    for (int s = 0; s < kNumSizes; ++s) {
      char pms[32], rps[32], pspd[32], tms[32], tspd[32];
      std::snprintf(pms, sizeof(pms), "%.3f", plain[s] * 1e3);
      std::snprintf(rps, sizeof(rps), "%.0f",
                    static_cast<double>(lineitems) / plain[s]);
      std::snprintf(pspd, sizeof(pspd), "%.2f", plain[0] / plain[s]);
      std::snprintf(tms, sizeof(tms), "%.3f", traced[s] * 1e3);
      std::snprintf(tspd, sizeof(tspd), "%.2f", traced[0] / traced[s]);
      table.Row({w.name, "interpret", Fmt(static_cast<int64_t>(kBatchSizes[s])),
                 "1", Fmt(lineitems), pms, rps, pspd, tms, tspd});
    }
  }

  // Axis 2: worker count at the default batch size. The speedup baseline is
  // the 1-thread entry of this sweep (same batch size, same plan).
  for (const Workload& w : kWorkloads) {
    auto optimized = Prepare(db, w);

    double plain[kNumThreadCounts], traced[kNumThreadCounts];
    for (int s = 0; s < kNumThreadCounts; ++s) plain[s] = traced[s] = 1e300;
    RunOnce(optimized->plan, optimized->query, kDefaultBatchSize,
            kThreadCounts[kNumThreadCounts - 1], false);
    for (int rep = 0; rep < kReps; ++rep) {
      for (int s = 0; s < kNumThreadCounts; ++s) {
        double t = RunOnce(optimized->plan, optimized->query,
                           kDefaultBatchSize, kThreadCounts[s],
                           /*traced=*/false);
        if (t < plain[s]) plain[s] = t;
        t = RunOnce(optimized->plan, optimized->query, kDefaultBatchSize,
                    kThreadCounts[s], /*traced=*/true);
        if (t < traced[s]) traced[s] = t;
      }
    }

    for (int s = 0; s < kNumThreadCounts; ++s) {
      char pms[32], rps[32], pspd[32], tms[32], tspd[32];
      std::snprintf(pms, sizeof(pms), "%.3f", plain[s] * 1e3);
      std::snprintf(rps, sizeof(rps), "%.0f",
                    static_cast<double>(lineitems) / plain[s]);
      std::snprintf(pspd, sizeof(pspd), "%.2f", plain[0] / plain[s]);
      std::snprintf(tms, sizeof(tms), "%.3f", traced[s] * 1e3);
      std::snprintf(tspd, sizeof(tspd), "%.2f", traced[0] / traced[s]);
      table.Row({w.name, "interpret",
                 Fmt(static_cast<int64_t>(kDefaultBatchSize)),
                 Fmt(static_cast<int64_t>(kThreadCounts[s])), Fmt(lineitems),
                 pms, rps, pspd, tms, tspd});
    }
  }

  // Axis 3: execution backend (serial, batch sizes 1 and 1024). The
  // plain_speedup column here is compiled-over-interpreted at the same
  // batch size — the number the fused kernels are accountable for.
  constexpr int kBackendBatches[] = {1, kDefaultBatchSize};
  constexpr ExecBackend kBackends[] = {ExecBackend::kInterpret,
                                       ExecBackend::kCompiled};
  for (const Workload& w : kWorkloads) {
    auto optimized = Prepare(db, w);

    double plain[2][2], traced[2][2];
    for (int b = 0; b < 2; ++b) {
      for (int s = 0; s < 2; ++s) plain[b][s] = traced[b][s] = 1e300;
    }
    RunOnce(optimized->plan, optimized->query, kDefaultBatchSize, 1, false,
            ExecBackend::kCompiled);
    for (int rep = 0; rep < kReps; ++rep) {
      for (int b = 0; b < 2; ++b) {
        for (int s = 0; s < 2; ++s) {
          double t = RunOnce(optimized->plan, optimized->query,
                             kBackendBatches[s], 1, /*traced=*/false,
                             kBackends[b]);
          if (t < plain[b][s]) plain[b][s] = t;
          t = RunOnce(optimized->plan, optimized->query, kBackendBatches[s], 1,
                      /*traced=*/true, kBackends[b]);
          if (t < traced[b][s]) traced[b][s] = t;
        }
      }
    }

    for (int b = 0; b < 2; ++b) {
      for (int s = 0; s < 2; ++s) {
        char pms[32], rps[32], pspd[32], tms[32], tspd[32];
        std::snprintf(pms, sizeof(pms), "%.3f", plain[b][s] * 1e3);
        std::snprintf(rps, sizeof(rps), "%.0f",
                      static_cast<double>(lineitems) / plain[b][s]);
        std::snprintf(pspd, sizeof(pspd), "%.2f", plain[0][s] / plain[b][s]);
        std::snprintf(tms, sizeof(tms), "%.3f", traced[b][s] * 1e3);
        std::snprintf(tspd, sizeof(tspd), "%.2f",
                      traced[0][s] / traced[b][s]);
        table.Row({w.name, ExecBackendName(kBackends[b]),
                   Fmt(static_cast<int64_t>(kBackendBatches[s])), "1",
                   Fmt(lineitems), pms, rps, pspd, tms, tspd});
      }
    }
  }

  // Axis 4: bytecode verification cost. plain_ms times the one-time prepare
  // path — parse + bind + optimize + lower (the lowering compiles and
  // verifies every bytecode program) — averaged over a burst; traced_ms
  // times a full compiled execution under the same mode. The backend column
  // names the verify mode; the off rows are the baseline of both speedups.
  constexpr BytecodeVerifyMode kVerifyModes[] = {BytecodeVerifyMode::kOff,
                                                 BytecodeVerifyMode::kOn,
                                                 BytecodeVerifyMode::kParanoid};
  constexpr const char* kVerifyLabels[] = {"vfy=off", "vfy=on",
                                           "vfy=paranoid"};
  constexpr int kPrepareBurst = 10;  // prepares per timed sample
  for (const Workload& w : kWorkloads) {
    auto optimized = Prepare(db, w);

    double prepare[3], exec[3];
    for (int m = 0; m < 3; ++m) prepare[m] = exec[m] = 1e300;
    RunOnce(optimized->plan, optimized->query, kDefaultBatchSize, 1, false,
            ExecBackend::kCompiled);
    for (int rep = 0; rep < kReps; ++rep) {
      for (int m = 0; m < 3; ++m) {
        ExecContext ctx = ExecContext{}
                              .WithBackend(ExecBackend::kCompiled)
                              .WithBytecodeVerify(kVerifyModes[m]);
        auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < kPrepareBurst; ++i) {
          auto prepared = Prepare(db, w);
          auto op = LowerPlan(prepared->plan, prepared->query, ctx);
          if (!op.ok()) {
            std::fprintf(stderr, "lower: %s\n",
                         op.status().ToString().c_str());
            std::abort();
          }
        }
        auto stop = std::chrono::steady_clock::now();
        double t = std::chrono::duration<double>(stop - start).count() /
                   kPrepareBurst;
        if (t < prepare[m]) prepare[m] = t;

        RuntimeStatsCollector stats;
        ExecContext run_ctx = ExecContext{}
                                  .WithBackend(ExecBackend::kCompiled)
                                  .WithBytecodeVerify(kVerifyModes[m])
                                  .WithBatchSize(kDefaultBatchSize);
        start = std::chrono::steady_clock::now();
        auto result = ExecutePlan(optimized->plan, optimized->query, run_ctx);
        stop = std::chrono::steady_clock::now();
        if (!result.ok()) {
          std::fprintf(stderr, "execute: %s\n",
                       result.status().ToString().c_str());
          std::abort();
        }
        t = std::chrono::duration<double>(stop - start).count();
        if (t < exec[m]) exec[m] = t;
      }
    }

    for (int m = 0; m < 3; ++m) {
      char pms[32], rps[32], pspd[32], tms[32], tspd[32];
      std::snprintf(pms, sizeof(pms), "%.4f", prepare[m] * 1e3);
      std::snprintf(rps, sizeof(rps), "%.0f",
                    static_cast<double>(lineitems) / exec[m]);
      std::snprintf(pspd, sizeof(pspd), "%.2f", prepare[0] / prepare[m]);
      std::snprintf(tms, sizeof(tms), "%.3f", exec[m] * 1e3);
      std::snprintf(tspd, sizeof(tspd), "%.2f", exec[0] / exec[m]);
      table.Row({w.name, kVerifyLabels[m],
                 Fmt(static_cast<int64_t>(kDefaultBatchSize)), "1",
                 Fmt(lineitems), pms, rps, pspd, tms, tspd});
    }
  }

  if (!json) {
    std::printf(
        "\nhost cores: %u (speedup from the threads axis is bounded by this)\n"
        "\nExpected shape: batch sizes >= 256 beat size 1 in both modes and\n"
        "the curve flattens once per-batch costs are amortized. The traced\n"
        "columns show the larger effect: at size 1 the interpreter pays two\n"
        "clock reads per operator per row, at 1024 per thousand rows. On the\n"
        "threads axis the scan workload scales with cores (morsel-parallel\n"
        "probe pipeline); the aggregate workload scales until the serial\n"
        "merge of partial group states dominates. On the backend axis the\n"
        "compiled rows of the filter and aggregate workloads should clear\n"
        "2x the interpreted rows/sec at batch 1024: fused kernels drop the\n"
        "per-operator batch hand-off and bytecode predicates drop the\n"
        "per-row virtual Eval calls. On the verify axis plain_ms is the\n"
        "one-time prepare cost (parse + bind + optimize + lower): vfy=on\n"
        "and vfy=paranoid stay within 5%% of vfy=off (plain_speedup >=\n"
        "0.95) because a program is proved once per process and identical\n"
        "re-lowerings replay the memoized verdict, and traced_ms — a full\n"
        "execution — is mode-independent, because verification never\n"
        "touches the per-row path.\n",
        std::thread::hardware_concurrency());
  }
}

}  // namespace
}  // namespace bench
}  // namespace aggview

int main(int argc, char** argv) {
  aggview::bench::Run(aggview::bench::JsonMode(argc, argv));
  return 0;
}
