// Experiment E13 — execution-engine throughput across batch sizes.
//
// The batch-at-a-time refactor claims that per-row interpretation overhead
// (virtual dispatch, stats clock reads, counter updates) amortizes over the
// batch. This experiment measures it: two TPC-D workloads — a scan-heavy
// projection over lineitem and an aggregate-heavy group-by over the same
// rows — run at batch sizes 1 (the old Volcano row-at-a-time behaviour),
// 64, 256, 1024 (default), and 4096. Both execution modes are timed:
// uninstrumented (plain_ms) and with the EXPLAIN ANALYZE stats collector
// installed (traced_ms), where the interpreter pays two clock reads per
// Next per operator and the per-batch amortization is decisive.
//
// Repetitions are interleaved round-robin across batch sizes (all sizes at
// rep 0, then all at rep 1, ...) so clock-frequency drift during the run
// cannot systematically favour whichever size is measured first.
#include <chrono>

#include "bench_util.h"

namespace aggview {
namespace bench {
namespace {

struct Workload {
  const char* name;
  const char* sql;
};

constexpr Workload kWorkloads[] = {
    // Scan-heavy: stream every lineitem through a hash-join probe against
    // the small supplier table and a projection — a pipeline of operators
    // with no aggregation, dominated by per-row interpretation.
    {"scan",
     "select l.l_orderkey, l.l_extendedprice, s.s_acctbal "
     "from lineitem l, supplier s "
     "where l.l_suppkey = s.s_suppkey and l.l_quantity >= 0"},
    // Aggregate-heavy: fold the same rows into a grouped aggregation.
    {"aggregate",
     "select l.l_suppkey, sum(l.l_extendedprice), count(*) "
     "from lineitem l group by l.l_suppkey"},
};

constexpr int kBatchSizes[] = {1, 64, 256, 1024, 4096};
constexpr int kNumSizes = 5;
constexpr int kReps = 5;

double RunOnce(const PlanPtr& plan, const Query& query, int batch_size,
               bool traced) {
  ExecOptions exec;
  exec.batch_size = batch_size;
  RuntimeStatsCollector stats;
  auto start = std::chrono::steady_clock::now();
  auto result =
      ExecutePlan(plan, query, nullptr, traced ? &stats : nullptr, exec);
  auto stop = std::chrono::steady_clock::now();
  if (!result.ok()) {
    std::fprintf(stderr, "execute: %s\n", result.status().ToString().c_str());
    std::abort();
  }
  return std::chrono::duration<double>(stop - start).count();
}

void Run(bool json) {
  if (!json) {
    Banner("E13", "batch execution throughput (rows/sec vs batch size)");
  }

  DbgenOptions options;
  options.scale_factor = 0.02;  // ~120k lineitems: enough work to time
  TpcdDb db = MakeTpcdDb(options);
  int64_t lineitems = db.catalog->table(db.tables.lineitem).data->row_count();

  ResultWriter table(json, "E13",
                     {"workload", "batch_size", "rows", "plain_ms",
                      "rows_per_sec", "plain_speedup", "traced_ms",
                      "traced_speedup"}, 15);

  for (const Workload& w : kWorkloads) {
    auto query = ParseAndBind(*db.catalog, w.sql);
    if (!query.ok()) {
      std::fprintf(stderr, "bind: %s\n", query.status().ToString().c_str());
      std::abort();
    }
    auto optimized = OptimizeQueryWithAggViews(*query, OptimizerOptions{});
    if (!optimized.ok()) {
      std::fprintf(stderr, "optimize: %s\n",
                   optimized.status().ToString().c_str());
      std::abort();
    }

    double plain[kNumSizes], traced[kNumSizes];
    for (int s = 0; s < kNumSizes; ++s) plain[s] = traced[s] = 1e300;
    // Warm-up pass (untimed), then interleaved timed repetitions.
    RunOnce(optimized->plan, optimized->query, kBatchSizes[0], false);
    for (int rep = 0; rep < kReps; ++rep) {
      for (int s = 0; s < kNumSizes; ++s) {
        double t = RunOnce(optimized->plan, optimized->query, kBatchSizes[s],
                           /*traced=*/false);
        if (t < plain[s]) plain[s] = t;
        t = RunOnce(optimized->plan, optimized->query, kBatchSizes[s],
                    /*traced=*/true);
        if (t < traced[s]) traced[s] = t;
      }
    }

    for (int s = 0; s < kNumSizes; ++s) {
      char pms[32], rps[32], pspd[32], tms[32], tspd[32];
      std::snprintf(pms, sizeof(pms), "%.3f", plain[s] * 1e3);
      std::snprintf(rps, sizeof(rps), "%.0f",
                    static_cast<double>(lineitems) / plain[s]);
      std::snprintf(pspd, sizeof(pspd), "%.2f", plain[0] / plain[s]);
      std::snprintf(tms, sizeof(tms), "%.3f", traced[s] * 1e3);
      std::snprintf(tspd, sizeof(tspd), "%.2f", traced[0] / traced[s]);
      table.Row({w.name, Fmt(static_cast<int64_t>(kBatchSizes[s])),
                 Fmt(lineitems), pms, rps, pspd, tms, tspd});
    }
  }
  if (!json) {
    std::printf(
        "\nExpected shape: batch sizes >= 256 beat size 1 in both modes and\n"
        "the curve flattens once per-batch costs are amortized. The traced\n"
        "columns show the larger effect: at size 1 the interpreter pays two\n"
        "clock reads per operator per row, at 1024 per thousand rows.\n");
  }
}

}  // namespace
}  // namespace bench
}  // namespace aggview

int main(int argc, char** argv) {
  aggview::bench::Run(aggview::bench::JsonMode(argc, argv));
  return 0;
}
