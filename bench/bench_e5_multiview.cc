// Experiment E5 — Figure 5 (the two-phase optimization steps for a query
// with multiple aggregate views).
//
// Figure 5 walks through Step 1 (optimize each "extended" view for every
// pull-up subset W) and Step 2 (pick consistent, disjoint assignments and
// order the composites with the remaining relations). This harness runs the
// two-view query
//
//   emp e1 ⋈ v1(avg sal per dept) ⋈ v2(max age per dept)
//
// and prints every enumerated assignment with its estimated cost — the
// concrete version of the figure's candidate set {V1, Φ(V1,B1), ...} — plus
// the chosen plan and the traditional baseline.
#include "bench_util.h"

namespace aggview {
namespace bench {
namespace {

void Run() {
  Banner("E5", "multi-view two-phase optimization (paper Figure 5)");

  EmpDeptOptions data;
  data.num_employees = 50'000;
  data.num_departments = 15'000;
  data.young_fraction = 4.0 / 48.0;
  EmpDeptDb db = MakeEmpDeptDb(data);

  std::string sql = R"sql(
create view v1 (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
create view v2 (dno, mage) as
  select e3.dno, max(e3.age) from emp e3 group by e3.dno;
select e1.sal
from emp e1, v1, v2
where e1.dno = v1.dno and e1.sal > v1.asal
  and e1.dno = v2.dno and e1.age < v2.mage
)sql";

  auto query = ParseAndBind(*db.catalog, sql);
  if (!query.ok()) std::abort();
  auto optimized = OptimizeQueryWithAggViews(*query, OptimizerOptions{});
  if (!optimized.ok()) std::abort();

  std::printf("assignments enumerated (Step 1 candidates x Step 2 orders):\n\n");
  TablePrinter table({"assignment", "est_cost"}, 34);
  for (const PlanAlternative& alt : optimized->alternatives) {
    table.Row({alt.description, Fmt(alt.cost)});
  }

  IoAccountant io;
  auto result = ExecutePlan(optimized->plan, optimized->query,
                            ExecContext::Default().WithIo(&io));
  if (!result.ok()) std::abort();
  std::printf("\nchosen: %s  est=%.1f  measured_io=%lld  rows=%zu\n",
              optimized->description.c_str(), optimized->plan->cost,
              static_cast<long long>(io.total()), result->rows.size());
  std::printf("joins considered: %lld, early group-by placements: %lld\n",
              static_cast<long long>(optimized->counters.joins_considered),
              static_cast<long long>(optimized->counters.groupby_placements));
  std::printf(
      "\nExpected shape: disjoint W assignments only (e1 pulled into at most\n"
      "one view); the chosen assignment is the cost minimum and is no worse\n"
      "than 'traditional two-phase'.\n");
}

}  // namespace
}  // namespace bench
}  // namespace aggview

int main() {
  aggview::bench::Run();
  return 0;
}
