// Experiment E2 — Example 2 + Figure 2(a) (invariant grouping push-down).
//
// The paper's Example 2 computes the average salary per department with
// budget < 1M. Invariant grouping lets the group-by move below the dept
// join (D1/D2). The benefit is two-sided: a selective budget predicate
// favors the lazy plan (aggregate the few surviving employees), while a
// wide grouping key that includes dept columns favors the early plan
// (aggregate the narrow emp rows before widening the join).
//
// Part 1 sweeps the budget-predicate selectivity for the paper's exact
// query. Part 2 repeats the sweep for the (dno, budget)-grouped variant,
// where early aggregation becomes profitable. "lazy" = group-by after all
// joins (traditional); "early" = greedy conservative enumeration allowed to
// push (what Section 5.2 adds); both columns are estimated IO, with the
// measured IO of the chosen plan.
#include "bench_util.h"
#include "optimizer/join_enumerator.h"

namespace aggview {
namespace bench {
namespace {

bool PlanHasGroupByBelowJoin(const PlanPtr& plan, bool under_join = false) {
  if (plan == nullptr) return false;
  if (plan->kind == PlanNode::Kind::kGroupBy && under_join) return true;
  bool join = under_join || plan->kind == PlanNode::Kind::kJoin;
  return PlanHasGroupByBelowJoin(plan->left, join) ||
         PlanHasGroupByBelowJoin(plan->right, join);
}

void Sweep(const char* title, const std::string& select_clause,
           const std::string& group_clause) {
  std::printf("\n--- %s ---\n", title);
  TablePrinter table({"budget<", "sel%", "lazy_est", "early_est", "pick",
                      "pick_io", "pushed?"});
  for (double cutoff : {200'000.0, 600'000.0, 1'000'000.0, 5'000'000.0}) {
    EmpDeptOptions data;
    data.num_employees = 32'000;
    data.num_departments = 2'000;
    data.budget_below_1m_fraction = 0.5;
    EmpDeptDb db = MakeEmpDeptDb(data);

    std::string sql = select_clause + " from emp e, dept d where e.dno = d.dno"
                      " and d.budget < " + std::to_string(static_cast<int64_t>(cutoff)) +
                      " " + group_clause;

    RunOutcome lazy = RunConfig(*db.catalog, sql, TraditionalOptions());

    auto query = ParseAndBind(*db.catalog, sql);
    if (!query.ok()) std::abort();
    auto optimized = OptimizeQueryWithAggViews(*query, OptimizerOptions{});
    if (!optimized.ok()) std::abort();
    IoAccountant io;
    auto result = ExecutePlan(optimized->plan, optimized->query,
                            ExecContext::Default().WithIo(&io));
    if (!result.ok()) std::abort();

    // Selectivity of the budget predicate (budgets: half in [100k,1M), half
    // in [1M,5M)).
    double sel;
    if (cutoff <= 1'000'000.0) {
      sel = 0.5 * (cutoff - 100'000.0) / 900'000.0;
    } else {
      sel = 0.5 + 0.5 * (cutoff - 1'000'000.0) / 4'000'000.0;
    }
    bool pushed = PlanHasGroupByBelowJoin(optimized->plan);
    table.Row({Fmt(cutoff), Fmt(sel * 100.0), Fmt(lazy.estimated),
               Fmt(optimized->plan->cost),
               pushed ? "early" : "lazy", Fmt(io.total()),
               pushed ? "yes" : "no"});
  }
}

void Run() {
  Banner("E2", "invariant grouping (paper Example 2 / Figure 2a)");
  Sweep("paper's Example 2: group by e.dno", "select e.dno, avg(e.sal)",
        "group by e.dno");
  Sweep("variant: group by (e.dno, d.budget) — wide lazy aggregation",
        "select e.dno, d.budget, avg(e.sal)", "group by e.dno, d.budget");
  std::printf(
      "\nExpected shape: in the exact Example 2, the lazy plan tracks the\n"
      "selectivity (cheap at selective cutoffs) and early aggregation is\n"
      "never chosen against it; in the wide-grouping variant the early plan\n"
      "wins once the lazy aggregation input outweighs the emp-only input.\n");
}

}  // namespace
}  // namespace bench
}  // namespace aggview

int main() {
  aggview::bench::Run();
  return 0;
}
