// Experiment E8 — the decision-support motivation (Section 1: "Complex
// queries, with aggregates, views and nested subqueries are important in
// decision-support applications (e.g., see TPC-D benchmark)").
//
// Four TPC-D-style aggregate-view queries (Q15/Q17/Q2 patterns plus a
// two-view profile query) run against synthetic TPC-D data at three scale
// factors, comparing the traditional two-phase optimizer with the paper's
// algorithm: estimated IO, measured IO, and the ratio.
#include "bench_util.h"

namespace aggview {
namespace bench {
namespace {

std::string Short(const std::string& name) {
  return name.substr(0, name.find(' '));
}

void Run(bool json) {
  if (!json) {
    Banner("E8", "TPC-D style aggregate-view queries (Section 1 motivation)");
  }

  ResultWriter table(json, "E8",
                     {"SF", "query", "trad_est", "ext_est", "trad_io",
                      "ext_io", "io_ratio"}, 12);

  for (double sf : {0.002, 0.005, 0.01}) {
    DbgenOptions options;
    options.scale_factor = sf;
    TpcdDb db = MakeTpcdDb(options);
    for (const auto& named : tpcd_queries::AllQueries()) {
      RunOutcome trad = RunConfig(*db.catalog, named.sql, TraditionalOptions());
      RunOutcome ext = RunConfig(*db.catalog, named.sql, OptimizerOptions{});
      char ratio[16];
      std::snprintf(ratio, sizeof(ratio), "%.2f",
                    static_cast<double>(trad.measured) /
                        std::max<int64_t>(ext.measured, 1));
      table.Row({Fmt(sf * 1000) + "e-3", Short(named.name), Fmt(trad.estimated),
                 Fmt(ext.estimated), Fmt(trad.measured), Fmt(ext.measured),
                 ratio});
    }
  }
  if (!json) {
    std::printf(
        "\nExpected shape: ext never worse; the largest wins on the queries\n"
        "whose flattened form profits from pull-up or early aggregation, and\n"
        "the ratios persist across scale factors.\n");
  }
}

}  // namespace
}  // namespace bench
}  // namespace aggview

int main(int argc, char** argv) {
  aggview::bench::Run(aggview::bench::JsonMode(argc, argv));
  return 0;
}
