// Experiment E1 — Example 1 + Figure 1 (the pull-up transformation).
//
// The paper: "if there are many departments but few employees are younger
// than 22 years, then the query B may be more efficient to evaluate than A1
// and A2. However, if there are few departments but many employees below 22
// years old, then execution of A1 and A2 may be significantly less
// expensive."
//
// This harness sweeps the two knobs (department count, age-predicate
// selectivity), forces both strategies — plan A (view computed locally, the
// traditional shape) and plan B (group-by pulled up past the e1 join) — and
// reports estimated + measured IO for each alongside what the cost-based
// optimizer picks. The expected shape: B wins in the many-departments /
// few-young corner; A wins in the few-departments / many-young corner; the
// optimizer's pick always matches the cheaper column.
#include "bench_util.h"
#include "transform/pullup.h"

namespace aggview {
namespace bench {
namespace {

std::string Example1Sql(int age_cutoff) {
  return R"sql(
create view a1 (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
select e1.sal
from emp e1, a1 b
where e1.dno = b.dno and e1.age < )sql" +
         std::to_string(age_cutoff) + " and e1.sal > b.asal";
}

/// Forces plan B: applies the pull-up rewrite, then evaluates the resulting
/// single-block query literally (joins first, one group-by on top — no
/// push-down that would re-derive plan A).
RunOutcome RunPlanB(const Catalog& catalog, const std::string& sql) {
  auto query = ParseAndBind(catalog, sql);
  if (!query.ok()) std::abort();
  auto pulled = PullUpIntoView(*query, 0, {query->base_rels()[0]});
  if (!pulled.ok()) std::abort();
  OptimizerOptions options = TraditionalOptions();
  auto optimized = OptimizeQueryWithAggViews(*pulled, options);
  if (!optimized.ok()) std::abort();
  RunOutcome out;
  out.estimated = optimized->plan->cost;
  IoAccountant io;
  auto result = ExecutePlan(optimized->plan, optimized->query,
                            ExecContext::Default().WithIo(&io));
  if (!result.ok()) std::abort();
  out.measured = io.total();
  return out;
}

void Run() {
  Banner("E1", "pull-up crossover (paper Example 1 / Figure 1)");
  std::printf(
      "planA = traditional (view computed locally), planB = pulled-up "
      "single block.\nemp rows fixed at 60000; ages uniform in [18,65].\n\n");

  TablePrinter table({"depts", "age<", "sel%", "A_est", "B_est", "A_io",
                      "B_io", "opt_pick", "opt_est"});

  for (int64_t depts : {50, 1000, 20000}) {
    for (int age_cutoff : {20, 30, 55}) {
      EmpDeptOptions data;
      data.num_employees = 60'000;
      data.num_departments = depts;
      data.young_fraction = 4.0 / 48.0;  // ages effectively uniform 18..65
      EmpDeptDb db = MakeEmpDeptDb(data);
      std::string sql = Example1Sql(age_cutoff);

      RunOutcome a = RunConfig(*db.catalog, sql, TraditionalOptions());
      RunOutcome b = RunPlanB(*db.catalog, sql);
      RunOutcome opt = RunConfig(*db.catalog, sql, OptimizerOptions{});

      double sel = (age_cutoff - 18) / 48.0 * 100.0;
      std::string pick =
          opt.description.find("{e1}") != std::string::npos ? "pull-up(B)"
          : opt.description == "traditional two-phase"      ? "trad(A)"
                                                            : "local(A)";
      table.Row({Fmt(depts), Fmt(static_cast<int64_t>(age_cutoff)), Fmt(sel),
                 Fmt(a.estimated), Fmt(b.estimated), Fmt(a.measured),
                 Fmt(b.measured), pick, Fmt(opt.estimated)});
    }
  }
  std::printf(
      "\nExpected shape (paper): B cheaper at many departments + selective "
      "age predicate;\nA cheaper at few departments + unselective predicate; "
      "opt_est = min(A,B) column.\n");
}

}  // namespace
}  // namespace bench
}  // namespace aggview

int main() {
  aggview::bench::Run();
  return 0;
}
