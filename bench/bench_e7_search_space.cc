// Experiment E7 — the cost of the richer execution space (Section 5.3's
// "Practical Restrictions on the Search Space" and Section 5.2's "very
// moderate increase in search space").
//
// The query joins one aggregate view with n base relations chained through
// shared predicates. For each n we count joinplan() invocations under:
//   traditional        — two-phase, no transformations;
//   greedy             — + linear aggregate join trees (push-down);
//   k=1 / k=2 pull-up  — + pull-up subsets of bounded size, sharing a
//                        predicate with the view (the paper's restrictions);
//   unrestricted       — pull-up subsets of any relation, any size <= 3.
#include "bench_util.h"

namespace aggview {
namespace bench {
namespace {

std::string ChainQuery(int n_base) {
  // v(avg sal per dept) joined with e1; d_i relations chain off e1/dept.
  std::string sql = R"sql(
create view v (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
select e1.sal
from emp e1, v)sql";
  for (int i = 0; i < n_base; ++i) {
    sql += ", dept d" + std::to_string(i);
  }
  sql += "\nwhere e1.dno = v.dno and e1.sal > v.asal";
  for (int i = 0; i < n_base; ++i) {
    sql += " and e1.dno = d" + std::to_string(i) + ".dno";
  }
  return sql;
}

int64_t CountJoins(const Catalog& catalog, const std::string& sql,
                   const OptimizerOptions& options) {
  auto query = ParseAndBind(catalog, sql);
  if (!query.ok()) std::abort();
  auto optimized = OptimizeQueryWithAggViews(*query, options);
  if (!optimized.ok()) std::abort();
  return optimized->counters.joins_considered;
}

void Run() {
  Banner("E7", "search-space growth and the paper's restrictions (5.2/5.3)");
  std::printf("cells = joinplan() invocations (lower = smaller search space)\n\n");

  EmpDeptOptions data;
  data.num_employees = 4'000;
  data.num_departments = 100;
  EmpDeptDb db = MakeEmpDeptDb(data);

  TablePrinter table({"base_rels", "traditional", "greedy", "pullup_k1",
                      "pullup_k2", "unrestricted"});

  for (int n = 1; n <= 5; ++n) {
    std::string sql = ChainQuery(n);

    OptimizerOptions trad = TraditionalOptions();

    OptimizerOptions greedy = TraditionalOptions();
    greedy.enumerator = EnumeratorOptions{};
    greedy.shrink_views = true;

    OptimizerOptions k1;
    k1.max_pullup = 1;
    k1.include_traditional_alternative = false;

    OptimizerOptions k2;
    k2.max_pullup = 2;
    k2.include_traditional_alternative = false;

    OptimizerOptions open;
    open.max_pullup = 3;
    open.require_shared_predicate = false;
    open.include_traditional_alternative = false;

    table.Row({Fmt(static_cast<int64_t>(n + 1)),
               Fmt(CountJoins(*db.catalog, sql, trad)),
               Fmt(CountJoins(*db.catalog, sql, greedy)),
               Fmt(CountJoins(*db.catalog, sql, k1)),
               Fmt(CountJoins(*db.catalog, sql, k2)),
               Fmt(CountJoins(*db.catalog, sql, open))});
  }
  std::printf(
      "\nExpected shape: 'greedy' stays within a small factor of\n"
      "'traditional' (the paper's moderate increase); pull-up grows with k\n"
      "and explodes without the shared-predicate restriction.\n");
}

}  // namespace
}  // namespace bench
}  // namespace aggview

int main() {
  aggview::bench::Run();
  return 0;
}
