// Experiment E4 — Figure 4 (alternative executions by pushing and pulling
// up the group-by).
//
// Figure 4 shows four plan shapes for a query with one aggregate view:
//   (a) traditional      — view optimized locally, group-by above its joins;
//   (b) push group-by    — group-by pushed below the view's own joins
//                          (invariant grouping, Section 4.1);
//   (c) pull-up          — group-by deferred past the outer join (Section 3);
//   (d) push + pull-up   — both: outer relations reordered into the view
//                          block while the group-by moves inward.
//
// The query is Example 2 phrased as a view (avg salary per department with
// a budget predicate) joined with an age-filtered emp. Each shape is forced
// through the corresponding optimizer configuration; "best" is the full
// cost-based optimizer of Section 5.3, which should track the minimum.
#include "bench_util.h"
#include "transform/pullup.h"
#include "transform/pushdown.h"

namespace aggview {
namespace bench {
namespace {

std::string QuerySql(int age_cutoff, int64_t budget_cutoff) {
  return R"sql(
create view c (dno, asal) as
  select e2.dno, avg(e2.sal)
  from emp e2, dept d2
  where e2.dno = d2.dno and d2.budget < )sql" +
         std::to_string(budget_cutoff) + R"sql(
  group by e2.dno;
select e1.sal
from emp e1, c
where e1.dno = c.dno and e1.age < )sql" +
         std::to_string(age_cutoff) + " and e1.sal > c.asal";
}

RunOutcome RunShape(const Catalog& catalog, const std::string& sql,
                    bool push, bool pull) {
  auto query = ParseAndBind(catalog, sql);
  if (!query.ok()) std::abort();
  Query shaped = *query;
  if (pull) {
    // Defer the view's group-by past the e1 join.
    auto pulled = PullUpIntoView(shaped, 0, {shaped.base_rels()[0]});
    if (!pulled.ok()) std::abort();
    shaped = std::move(pulled).value();
  }
  OptimizerOptions options = TraditionalOptions();
  if (push) {
    // Allow the group-by to move below joins inside its block. When the
    // query was pulled up first (shape d), keep the extended view intact
    // (shrinking would undo the pull-up) and let the in-block enumeration
    // place the deferred group-by between the joins — Figure 4(d).
    options.shrink_views = !pull;
    options.enumerator.greedy_aggregation = true;
    options.enumerator.enable_invariant = true;
    options.enumerator.enable_coalescing = true;
  }
  auto optimized = OptimizeQueryWithAggViews(shaped, options);
  if (!optimized.ok()) std::abort();
  RunOutcome out;
  out.estimated = optimized->plan->cost;
  IoAccountant io;
  auto result = ExecutePlan(optimized->plan, optimized->query,
                            ExecContext::Default().WithIo(&io));
  if (!result.ok()) std::abort();
  out.measured = io.total();
  return out;
}

void Run() {
  Banner("E4", "four plan shapes (paper Figure 4)");
  std::printf(
      "(a) traditional, (b) push-down inside the view, (c) pull-up past the\n"
      "outer join, (d) both. 'best' = full cost-based optimizer (Section 5.3).\n"
      "emp 50000 rows, dept 15000 rows.\n\n");

  TablePrinter table({"age<", "budget<", "a_est", "b_est", "c_est", "d_est",
                      "best_est", "best_io"}, 11);

  EmpDeptOptions data;
  data.num_employees = 50'000;
  data.num_departments = 15'000;
  data.young_fraction = 4.0 / 48.0;  // uniform ages
  EmpDeptDb db = MakeEmpDeptDb(data);

  for (int age : {20, 40, 64}) {
    for (int64_t budget : {400'000, 5'000'000}) {
      std::string sql = QuerySql(age, budget);
      RunOutcome a = RunShape(*db.catalog, sql, false, false);
      RunOutcome b = RunShape(*db.catalog, sql, true, false);
      RunOutcome c = RunShape(*db.catalog, sql, false, true);
      RunOutcome d = RunShape(*db.catalog, sql, true, true);
      RunOutcome best = RunConfig(*db.catalog, sql, OptimizerOptions{});
      table.Row({Fmt(static_cast<int64_t>(age)), Fmt(budget), Fmt(a.estimated),
                 Fmt(b.estimated), Fmt(c.estimated), Fmt(d.estimated),
                 Fmt(best.estimated), Fmt(best.measured)});
    }
  }
  std::printf(
      "\nExpected shape: no single column dominates — (c)/(d) win at\n"
      "selective age predicates, (a)/(b) at unselective ones — and best_est\n"
      "<= min(a,b,c,d) everywhere (Section 5's no-worse guarantee).\n");
}

}  // namespace
}  // namespace bench
}  // namespace aggview

int main() {
  aggview::bench::Run();
  return 0;
}
