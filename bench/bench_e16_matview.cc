// Experiment E16 — materialized aggregate views, end to end.
//
// The materialized-view subsystem makes two performance claims:
//
//  1. Serving: a query answered from a materialized view's backing table
//     reads |groups| pre-aggregated rows instead of folding the base table,
//     so view-answered execution beats the base plan and the gap widens
//     with table size.
//  2. Maintenance: applying a base-table delta through per-group
//     incremental maintenance (view/maintenance.h) costs O(|delta|), while
//     REFRESH re-materializes from the full base table at O(|table|) —
//     incremental refresh must beat full re-materialization for small
//     deltas.
//
// Axis 1 (serve rows): at each emp scale, two Servers over byte-identical
// generated data — one serving through a CREATE MATERIALIZED VIEW, one with
// view answering disabled — execute the same grouped aggregation. Latencies
// pool across repetitions for the p50 columns; the fingerprints of every
// pair of results must match or the run aborts.
//
// Axis 2 (maintain rows): on the largest scale, deltas of growing size
// (half inserts, half deletes) are applied through both refresh strategies,
// on two catalogs carrying identical data and the same view. incr_ms is the
// end-to-end time to a fresh view on the incremental path: one
// ApplyTableDelta that mutates the base and merges the delta into the
// backing groups in place. full_ms is the end-to-end time to a fresh view
// without incremental maintenance: the same ApplyTableDelta with the view
// already stale (it only marks it) followed by the REFRESH that
// re-materializes from the whole base table. Both sides pay the identical
// base mutation + exact stats recompute, so the speedup column isolates
// per-group merging vs full re-aggregation — and understates it, since the
// shared base cost is included in both numerators. After the timed
// repetitions each delta size re-checks that the view-rewritten plan and
// the base plan still agree byte for byte on both catalogs.
//
// Axis 3 (mix rows): the serving mix on bench_e14's harness shape —
// concurrent reader sessions stream the aggregation through one shared
// Server while a writer session applies deltas and periodic REFRESHes.
// view_ms/base_ms are the reader wall clocks with view answering on vs off
// over identical delta sequences; the final states of both servers must
// fingerprint-identically or the run aborts.
//
// --smoke shrinks the scales and repetition counts for CI; --json emits the
// machine-readable document persisted as BENCH_e16_matview.json.
#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"

namespace aggview {
namespace bench {
namespace {

constexpr const char* kServeSql =
    "select dno, sum(sal), count(*) from emp group by dno";
constexpr const char* kViewDdl =
    "create materialized view mv_dsal (dno, total, cnt) as "
    "select dno, sum(sal), count(*) from emp group by dno";

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == flag) return true;
  }
  return false;
}

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// p in [0, 1]; `sorted` ascending, non-empty.
double Percentile(const std::vector<double>& sorted, double p) {
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

std::string Ms(double seconds, int decimals = 3) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, seconds * 1e3);
  return buf;
}

std::string F2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

EmpDeptOptions Scale(int64_t n_emp) {
  EmpDeptOptions options;
  options.num_employees = n_emp;
  options.num_departments = 200;
  options.seed = 7;  // both servers of a scale must generate identical data
  return options;
}

EmpDeptTables PopulateEmpDept(Catalog* catalog,
                              const EmpDeptOptions& options) {
  auto tables = CreateEmpDeptSchema(catalog);
  if (!tables.ok()) {
    std::fprintf(stderr, "schema: %s\n", tables.status().ToString().c_str());
    std::abort();
  }
  Status st = GenerateEmpDeptData(catalog, *tables, options);
  if (!st.ok()) {
    std::fprintf(stderr, "dbgen: %s\n", st.ToString().c_str());
    std::abort();
  }
  return *tables;
}

/// Executes kServeSql against `catalog`, answered from materialized views
/// when `use_views` and one matches (the fuzzer's differential recipe).
std::string FingerprintOf(const Catalog& catalog, bool use_views) {
  auto query = ParseAndBind(catalog, kServeSql);
  if (!query.ok()) std::abort();
  if (use_views) {
    std::vector<ViewRewriteCertificate> certs;
    auto rewrites = RewriteWithMaterializedViews(catalog, &*query, &certs);
    if (!rewrites.ok() || *rewrites != 1) {
      std::fprintf(stderr, "expected exactly one view rewrite\n");
      std::abort();
    }
  }
  auto optimized = OptimizeTraditional(*query);
  if (!optimized.ok()) std::abort();
  auto result = ExecutePlan(optimized->plan, optimized->query, ExecContext{});
  if (!result.ok()) {
    std::fprintf(stderr, "execute: %s\n", result.status().ToString().c_str());
    std::abort();
  }
  return result->Fingerprint();
}

void Run(bool json, bool smoke) {
  if (!json) {
    Banner("E16", "materialized views: serving speedup + incremental upkeep");
  }

  const std::vector<int64_t> emp_scales =
      smoke ? std::vector<int64_t>{20'000}
            : std::vector<int64_t>{50'000, 200'000};
  const std::vector<int64_t> delta_sizes =
      smoke ? std::vector<int64_t>{16, 128}
            : std::vector<int64_t>{16, 256, 4'096};
  const int serve_reps = smoke ? 10 : 30;
  const int maintain_reps = smoke ? 3 : 5;

  ResultWriter table(json, "E16",
                     {"row", "n_emp", "delta_rows", "incr_ms", "full_ms",
                      "view_ms", "base_ms", "speedup"});

  // ---- Axis 1: view-answered vs base-plan serving latency ----
  for (int64_t n_emp : emp_scales) {
    ServerOptions view_options;
    Server view_server(view_options);
    PopulateEmpDept(&view_server.catalog(), Scale(n_emp));

    ServerOptions base_options;
    base_options.use_materialized_views = false;
    Server base_server(base_options);
    PopulateEmpDept(&base_server.catalog(), Scale(n_emp));

    ServerSession view_conn = view_server.Connect();
    ServerSession base_conn = base_server.Connect();
    if (!view_conn.ExecuteDdl(kViewDdl).ok()) std::abort();

    auto view_query = view_conn.Sql(kServeSql);
    auto base_query = base_conn.Sql(kServeSql);
    if (!view_query.ok() || !base_query.ok()) std::abort();
    if (!view_query->view_backed() || base_query->view_backed()) {
      std::fprintf(stderr, "serve axis: unexpected plan provenance\n");
      std::abort();
    }

    std::vector<double> view_lat, base_lat;
    for (int rep = 0; rep < serve_reps; ++rep) {
      double start = Now();
      auto from_view = view_query->Execute();
      view_lat.push_back(Now() - start);
      start = Now();
      auto from_base = base_query->Execute();
      base_lat.push_back(Now() - start);
      if (!from_view.ok() || !from_base.ok() ||
          from_view->Fingerprint() != from_base->Fingerprint()) {
        std::fprintf(stderr, "serve axis: view/base results diverged\n");
        std::abort();
      }
    }
    std::sort(view_lat.begin(), view_lat.end());
    std::sort(base_lat.begin(), base_lat.end());
    const double view_p50 = Percentile(view_lat, 0.50);
    const double base_p50 = Percentile(base_lat, 0.50);
    table.Row({"serve", Fmt(n_emp), "-", "-", "-", Ms(view_p50),
               Ms(base_p50), F2(view_p50 > 0 ? base_p50 / view_p50 : 0.0)});
  }

  // ---- Axis 2: incremental maintenance vs full re-materialization ----
  const int64_t n_emp = emp_scales.back();
  Catalog incr_catalog;  // delta merged into the backing groups in place
  Catalog full_catalog;  // delta marks the view stale; REFRESH rebuilds it
  const EmpDeptTables tables = PopulateEmpDept(&incr_catalog, Scale(n_emp));
  PopulateEmpDept(&full_catalog, Scale(n_emp));
  if (!ExecuteMatViewStatement(&incr_catalog, kViewDdl).ok() ||
      !ExecuteMatViewStatement(&full_catalog, kViewDdl).ok()) {
    std::abort();
  }

  int64_t next_eno = 10'000'000;
  for (size_t a = 0; a < delta_sizes.size(); ++a) {
    const int64_t delta_rows = delta_sizes[a];
    double best_incr = 1e300;
    double best_full = 1e300;
    for (int rep = 0; rep < maintain_reps; ++rep) {
      TableDelta delta;
      delta.table = tables.emp;
      for (int64_t i = 0; i < delta_rows / 2; ++i) {
        delta.inserts.push_back(
            {Value::Int(next_eno++), Value::Int(1 + i % 200),
             Value::Real(static_cast<double>(40'000 + (i % 90) * 1'000)),
             Value::Int(static_cast<int64_t>(21 + i % 44))});
      }
      for (int64_t i = 0; i < delta_rows / 2; ++i) {
        delta.deletes.push_back(2 * i);
      }

      // Incremental path: one call mutates the base and leaves the view
      // fresh via the per-group merge.
      MaintenanceReport report;
      double start = Now();
      Status st = ApplyTableDelta(&incr_catalog, delta, &report);
      const double incr = Now() - start;
      if (!st.ok() || report.views_maintained != 1) {
        std::fprintf(stderr, "maintain axis: delta not applied in place\n");
        std::abort();
      }

      // Full path: the pre-staled view skips maintenance, so reaching a
      // fresh view costs the same base mutation plus a REFRESH that
      // re-aggregates the whole table.
      full_catalog.BumpTableEpoch(tables.emp);
      report = MaintenanceReport();
      start = Now();
      st = ApplyTableDelta(&full_catalog, delta, &report);
      if (!st.ok() || report.views_marked_stale != 1) {
        std::fprintf(stderr, "maintain axis: view not marked stale\n");
        std::abort();
      }
      st = RefreshMaterializedView(&full_catalog, "mv_dsal");
      const double full = Now() - start;
      if (!st.ok()) std::abort();
      best_incr = std::min(best_incr, incr);
      best_full = std::min(best_full, full);
    }
    for (const Catalog* c : {&incr_catalog, &full_catalog}) {
      if (FingerprintOf(*c, /*use_views=*/true) !=
          FingerprintOf(*c, /*use_views=*/false)) {
        std::fprintf(stderr, "maintain axis: view/base results diverged\n");
        std::abort();
      }
    }
    table.Row({"maintain", Fmt(n_emp), Fmt(delta_rows), Ms(best_incr, 4),
               Ms(best_full, 4), "-", "-",
               F2(best_incr > 0 ? best_full / best_incr : 0.0)});
  }

  // ---- Axis 3: refresh + read serving mix ----
  const int mix_readers = 4;
  const int mix_reads = smoke ? 5 : 25;        // per reader
  const int mix_writes = smoke ? 4 : 12;       // deltas by the writer
  const int64_t mix_delta_rows = 64;
  auto run_mix = [&](bool use_views) {
    ServerOptions options;
    options.threads = 2;
    options.use_materialized_views = use_views;
    auto server = std::make_unique<Server>(options);
    PopulateEmpDept(&server->catalog(), Scale(n_emp));
    if (use_views) {
      ServerSession ddl = server->Connect();
      if (!ddl.ExecuteDdl(kViewDdl).ok()) std::abort();
    }
    const double start = Now();
    std::vector<std::thread> threads;
    for (int r = 0; r < mix_readers; ++r) {
      threads.emplace_back([&server, mix_reads] {
        ServerSession conn = server->Connect();
        for (int i = 0; i < mix_reads; ++i) {
          auto q = conn.Sql(kServeSql);
          if (!q.ok() || !q->Execute().ok()) std::abort();
        }
      });
    }
    std::thread writer([&server, &tables, use_views, mix_writes,
                        mix_delta_rows] {
      ServerSession conn = server->Connect();
      int64_t eno = 50'000'000;  // same sequence under both configurations
      for (int w = 0; w < mix_writes; ++w) {
        TableDelta delta;
        delta.table = tables.emp;
        for (int64_t i = 0; i < mix_delta_rows / 2; ++i) {
          delta.inserts.push_back(
              {Value::Int(eno++), Value::Int(1 + i % 200),
               Value::Real(static_cast<double>(40'000 + (i % 90) * 1'000)),
               Value::Int(static_cast<int64_t>(21 + i % 44))});
        }
        for (int64_t i = 0; i < mix_delta_rows / 2; ++i) {
          delta.deletes.push_back(2 * i);
        }
        if (!conn.ApplyDelta(delta).ok()) std::abort();
        if (use_views && w % 2 == 1 &&
            !conn.ExecuteDdl("refresh materialized view mv_dsal").ok()) {
          std::abort();
        }
      }
    });
    for (std::thread& t : threads) t.join();
    writer.join();
    const double wall = Now() - start;
    ServerSession conn = server->Connect();
    auto q = conn.Sql(kServeSql);
    if (!q.ok()) std::abort();
    auto result = q->Execute();
    if (!result.ok()) std::abort();
    return std::make_pair(wall, result->Fingerprint());
  };
  const auto [view_wall, view_fp] = run_mix(/*use_views=*/true);
  const auto [base_wall, base_fp] = run_mix(/*use_views=*/false);
  if (view_fp != base_fp) {
    std::fprintf(stderr, "mix axis: final states diverged\n");
    std::abort();
  }
  table.Row({"mix", Fmt(n_emp), Fmt(mix_delta_rows), "-", "-", Ms(view_wall),
             Ms(base_wall), F2(view_wall > 0 ? base_wall / view_wall : 0.0)});

  if (!json) {
    std::printf(
        "\nExpected shape: serve speedup > 1 and growing with n_emp — the\n"
        "view-backed plan scans |groups| pre-aggregated rows while the base\n"
        "plan folds the whole table. maintain speedup > 1 at every delta\n"
        "size: the per-group merge touches only the groups the delta hits,\n"
        "while the full path re-aggregates all of emp on every REFRESH; the\n"
        "shared base-mutation cost inside both numbers makes the column a\n"
        "lower bound on the maintenance-path speedup. mix speedup > 1: the\n"
        "readers' wall clock shrinks when the concurrent refresh+read\n"
        "workload answers from the view. Every axis byte-compares\n"
        "view-answered results against base plans (checked).\n");
  }
}

}  // namespace
}  // namespace bench
}  // namespace aggview

int main(int argc, char** argv) {
  aggview::bench::Run(aggview::bench::JsonMode(argc, argv),
                      aggview::bench::HasFlag(argc, argv, "--smoke"));
  return 0;
}
