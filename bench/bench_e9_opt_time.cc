// Experiment E9 — optimization latency (Section 5.2: the greedy
// conservative heuristic "results in very moderate increase in search
// space"; Section 5.3's restrictions keep pull-up affordable).
//
// google-benchmark microbenchmarks of the optimizer itself (no execution):
// Example 1, the two-view query, and a view + n-relation chain, under the
// traditional and extended configurations.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace aggview {
namespace bench {
namespace {

const EmpDeptDb& Db() {
  static EmpDeptDb* db = [] {
    EmpDeptOptions data;
    data.num_employees = 20'000;
    data.num_departments = 500;
    return new EmpDeptDb(MakeEmpDeptDb(data));
  }();
  return *db;
}

std::string ChainQuery(int n_base) {
  std::string sql = R"sql(
create view v (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
select e1.sal
from emp e1, v)sql";
  for (int i = 0; i < n_base; ++i) sql += ", dept d" + std::to_string(i);
  sql += "\nwhere e1.dno = v.dno and e1.sal > v.asal";
  for (int i = 0; i < n_base; ++i) {
    sql += " and e1.dno = d" + std::to_string(i) + ".dno";
  }
  return sql;
}

void OptimizeOnce(const std::string& sql, const OptimizerOptions& options) {
  auto query = ParseAndBind(*Db().catalog, sql);
  if (!query.ok()) std::abort();
  auto optimized = OptimizeQueryWithAggViews(*query, options);
  if (!optimized.ok()) std::abort();
  benchmark::DoNotOptimize(optimized->plan->cost);
}

void BM_Example1_Traditional(benchmark::State& state) {
  std::string sql = R"sql(
create view a1 (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
select e1.sal from emp e1, a1 b
where e1.dno = b.dno and e1.age < 22 and e1.sal > b.asal)sql";
  for (auto _ : state) OptimizeOnce(sql, TraditionalOptions());
}
BENCHMARK(BM_Example1_Traditional);

void BM_Example1_Extended(benchmark::State& state) {
  std::string sql = R"sql(
create view a1 (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
select e1.sal from emp e1, a1 b
where e1.dno = b.dno and e1.age < 22 and e1.sal > b.asal)sql";
  for (auto _ : state) OptimizeOnce(sql, OptimizerOptions{});
}
BENCHMARK(BM_Example1_Extended);

void BM_Chain_Traditional(benchmark::State& state) {
  std::string sql = ChainQuery(static_cast<int>(state.range(0)));
  for (auto _ : state) OptimizeOnce(sql, TraditionalOptions());
}
BENCHMARK(BM_Chain_Traditional)->DenseRange(1, 5);

void BM_Chain_Extended(benchmark::State& state) {
  std::string sql = ChainQuery(static_cast<int>(state.range(0)));
  for (auto _ : state) OptimizeOnce(sql, OptimizerOptions{});
}
BENCHMARK(BM_Chain_Extended)->DenseRange(1, 5);

void BM_Chain_UnrestrictedPullUp(benchmark::State& state) {
  std::string sql = ChainQuery(static_cast<int>(state.range(0)));
  OptimizerOptions open;
  open.max_pullup = 3;
  open.require_shared_predicate = false;
  for (auto _ : state) OptimizeOnce(sql, open);
}
BENCHMARK(BM_Chain_UnrestrictedPullUp)->DenseRange(1, 4);

}  // namespace
}  // namespace bench
}  // namespace aggview

BENCHMARK_MAIN();
