#ifndef AGGVIEW_BENCH_BENCH_UTIL_H_
#define AGGVIEW_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "aggview.h"

namespace aggview {
namespace bench {

/// Fixed-width table printer for experiment output.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers, int width = 14)
      : headers_(std::move(headers)), width_(width) {
    for (const std::string& h : headers_) {
      std::printf("%-*s", width_, h.c_str());
    }
    std::printf("\n");
    for (size_t i = 0; i < headers_.size(); ++i) {
      std::printf("%-*s", width_, std::string(static_cast<size_t>(width_) - 2, '-').c_str());
    }
    std::printf("\n");
  }

  void Row(const std::vector<std::string>& cells) const {
    for (const std::string& c : cells) {
      std::printf("%-*s", width_, c.c_str());
    }
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  int width_;
};

inline std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}
inline std::string Fmt(int64_t v) { return std::to_string(v); }

/// True when the experiment was invoked with --json: emit one machine-
/// readable JSON document instead of the banner + fixed-width table, so
/// plotting and regression scripts can consume the numbers directly.
inline bool JsonMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") return true;
  }
  return false;
}

/// Escapes `s` for use inside a JSON string per RFC 8259: `"` and `\` get a
/// backslash, the named control escapes are used where they exist, and every
/// other control character below 0x20 becomes a \u00XX sequence (via an
/// unsigned cast, so no sign-extension garbage). Bytes >= 0x80 pass through
/// untouched (the document is UTF-8).
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; continue;
      case '\\': out += "\\\\"; continue;
      case '\b': out += "\\b"; continue;
      case '\f': out += "\\f"; continue;
      case '\n': out += "\\n"; continue;
      case '\r': out += "\\r"; continue;
      case '\t': out += "\\t"; continue;
      default: break;
    }
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// True when `cell` is a valid JSON number token (RFC 8259 grammar:
/// optional minus, integer part without leading zeros, optional fraction,
/// optional exponent). Deliberately stricter than strtod, which also accepts
/// "inf", "nan", hex like "0x1f" and leading-zero forms like "007" — all of
/// which are malformed JSON when emitted unquoted.
inline bool IsJsonNumber(const std::string& cell) {
  const char* p = cell.c_str();
  if (*p == '-') ++p;
  if (*p == '0') {
    ++p;
  } else if (*p >= '1' && *p <= '9') {
    while (*p >= '0' && *p <= '9') ++p;
  } else {
    return false;
  }
  if (*p == '.') {
    ++p;
    if (*p < '0' || *p > '9') return false;
    while (*p >= '0' && *p <= '9') ++p;
  }
  if (*p == 'e' || *p == 'E') {
    ++p;
    if (*p == '+' || *p == '-') ++p;
    if (*p < '0' || *p > '9') return false;
    while (*p >= '0' && *p <= '9') ++p;
  }
  return *p == '\0';
}

/// Renders `cell` as a JSON value: unquoted when it is a valid JSON number
/// token, an escaped string otherwise.
inline std::string JsonLiteral(const std::string& cell) {
  return IsJsonNumber(cell) ? cell : "\"" + JsonEscape(cell) + "\"";
}

/// Streams experiment rows as a JSON document:
///   {"experiment": "E13", "rows": [{"col": value, ...}, ...]}
/// Cells that are valid JSON number tokens are emitted unquoted; everything
/// else is emitted as an escaped string. The document closes when the
/// writer is destroyed.
class JsonWriter {
 public:
  JsonWriter(std::string experiment, std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    std::printf("{\"experiment\": \"%s\", \"rows\": [",
                JsonEscape(experiment).c_str());
  }

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  ~JsonWriter() { std::printf("]}\n"); }

  void Row(const std::vector<std::string>& cells) {
    std::printf("%s\n  {", first_ ? "" : ",");
    first_ = false;
    for (size_t i = 0; i < headers_.size() && i < cells.size(); ++i) {
      std::printf("%s\"%s\": %s", i == 0 ? "" : ", ",
                  JsonEscape(headers_[i]).c_str(),
                  JsonLiteral(cells[i]).c_str());
    }
    std::printf("}");
  }

 private:
  std::vector<std::string> headers_;
  bool first_ = true;
};

/// Routes rows to a TablePrinter (human mode) or a JsonWriter (--json).
/// Experiments construct one of these, emit rows, and stay agnostic of the
/// output format.
class ResultWriter {
 public:
  ResultWriter(bool json, const std::string& experiment,
               std::vector<std::string> headers, int width = 14) {
    if (json) {
      json_ = std::make_unique<JsonWriter>(experiment, std::move(headers));
    } else {
      table_ = std::make_unique<TablePrinter>(std::move(headers), width);
    }
  }

  void Row(const std::vector<std::string>& cells) {
    if (json_ != nullptr) {
      json_->Row(cells);
    } else {
      table_->Row(cells);
    }
  }

 private:
  std::unique_ptr<JsonWriter> json_;
  std::unique_ptr<TablePrinter> table_;
};

/// Banner naming the experiment and its paper artifact.
inline void Banner(const char* id, const char* what) {
  std::printf("\n=== %s: %s ===\n", id, what);
}

/// emp/dept catalog + data (Examples 1 and 2).
struct EmpDeptDb {
  std::unique_ptr<Catalog> catalog = std::make_unique<Catalog>();
  EmpDeptTables tables;
};

inline EmpDeptDb MakeEmpDeptDb(const EmpDeptOptions& options) {
  EmpDeptDb db;
  auto tables = CreateEmpDeptSchema(db.catalog.get());
  if (!tables.ok()) {
    std::fprintf(stderr, "schema: %s\n", tables.status().ToString().c_str());
    std::abort();
  }
  db.tables = *tables;
  Status st = GenerateEmpDeptData(db.catalog.get(), db.tables, options);
  if (!st.ok()) {
    std::fprintf(stderr, "dbgen: %s\n", st.ToString().c_str());
    std::abort();
  }
  return db;
}

struct TpcdDb {
  std::unique_ptr<Catalog> catalog = std::make_unique<Catalog>();
  TpcdTables tables;
};

inline TpcdDb MakeTpcdDb(const DbgenOptions& options) {
  TpcdDb db;
  auto tables = CreateTpcdSchema(db.catalog.get());
  if (!tables.ok()) std::abort();
  db.tables = *tables;
  Status st = GenerateTpcdData(db.catalog.get(), db.tables, options);
  if (!st.ok()) std::abort();
  return db;
}

/// Optimizes + executes under one configuration; returns estimated cost and
/// measured IO, plus the per-operator estimation-accuracy summary when the
/// run was instrumented (analyze = true).
struct RunOutcome {
  double estimated = 0.0;
  int64_t measured = 0;
  std::string description;

  // Filled only when RunConfig(..., analyze = true).
  double q_root = 1.0;      // q-error of the plan root's cardinality
  QErrorSummary q_ops;      // q-error over every executed operator
};

inline RunOutcome RunConfig(const Catalog& catalog, const std::string& sql,
                            const OptimizerOptions& options,
                            bool execute = true, bool analyze = false) {
  auto query = ParseAndBind(catalog, sql);
  if (!query.ok()) {
    std::fprintf(stderr, "bind: %s\n%s\n", query.status().ToString().c_str(),
                 sql.c_str());
    std::abort();
  }
  auto optimized = OptimizeQueryWithAggViews(*query, options);
  if (!optimized.ok()) {
    std::fprintf(stderr, "optimize: %s\n", optimized.status().ToString().c_str());
    std::abort();
  }
  RunOutcome outcome;
  outcome.estimated = optimized->plan->cost;
  outcome.description = optimized->description;
  if (execute) {
    IoAccountant io;
    RuntimeStatsCollector stats;
    auto result = ExecutePlan(optimized->plan, optimized->query,
                              ExecContext::Default().WithIo(&io).WithStats(
                                  analyze ? &stats : nullptr));
    if (!result.ok()) {
      std::fprintf(stderr, "execute: %s\n", result.status().ToString().c_str());
      std::abort();
    }
    outcome.measured = io.total();
    if (analyze) {
      std::vector<NodeQError> nodes =
          CollectNodeQErrors(optimized->plan, optimized->query, stats);
      outcome.q_ops = SummarizeQError(nodes);
      outcome.q_root = QError(optimized->plan->est.rows,
                              static_cast<double>(result->rows.size()));
    }
  }
  return outcome;
}

}  // namespace bench
}  // namespace aggview

#endif  // AGGVIEW_BENCH_BENCH_UTIL_H_
