// Experiment E6 — Section 5's no-worse guarantee, quantified.
//
// "Furthermore, our cost-based optimization algorithm is guaranteed to pick
// a plan that is no worse than the traditional optimization algorithm."
//
// This harness draws randomized databases (three size regimes) and random
// queries from the aggregate-view family, optimizes each with both
// algorithms, and reports the distribution of the cost ratio
// traditional/extended. A single ratio below 1.0 would falsify the
// guarantee; ratios above 1.0 are the paper's promised wins.
#include <algorithm>
#include <cmath>

#include "bench_util.h"
#include "common/random.h"

namespace aggview {
namespace bench {
namespace {

std::string RandomQuery(Rng* rng) {
  switch (rng->Uniform(0, 3)) {
    case 0: {  // aggregate-view join (Example 1 family)
      const char* aggs[] = {"avg", "sum", "min", "max"};
      std::string agg = aggs[rng->Uniform(0, 3)];
      std::string sql = "create view v (dno, x) as select e2.dno, " + agg +
                        "(e2.sal) from emp e2 group by e2.dno;\n";
      sql += "select e1.sal from emp e1, v where e1.dno = v.dno and e1.sal " +
             std::string(rng->Chance(0.5) ? ">" : "<") + " v.x";
      if (rng->Chance(0.7)) {
        sql += " and e1.age < " + std::to_string(rng->Uniform(20, 60));
      }
      return sql;
    }
    case 1:  // fan-out self-join under a top group-by (coalescing family)
      return "select e.dno, sum(e.sal), count(*) from emp e, emp f "
             "where e.dno = f.dno group by e.dno";
    case 2:  // wide grouping key across the join (push-down family)
      return "select e.dno, d.budget, avg(e.sal) from emp e, dept d "
             "where e.dno = d.dno group by e.dno, d.budget";
    default:  // Example 2 family
      return "select e.dno, avg(e.sal) from emp e, dept d "
             "where e.dno = d.dno and d.budget < " +
             std::to_string(rng->Uniform(200'000, 4'000'000)) +
             " group by e.dno";
  }
}

std::string FmtRatio(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

void Run() {
  Banner("E6", "no-worse-than-traditional guarantee (Section 5)");
  const int kTrials = 60;

  Rng rng(20260707);
  int wins = 0, ties = 0, violations = 0;
  double log_sum = 0.0;
  double max_ratio = 1.0;
  std::vector<double> ratios;

  for (int trial = 0; trial < kTrials; ++trial) {
    EmpDeptOptions data;
    int64_t regimes[] = {1'000, 24'000, 64'000};
    data.num_employees = regimes[trial % 3];
    data.num_departments = 10 + rng.Uniform(0, 15'000);
    data.young_fraction = rng.UniformReal(0.02, 0.3);
    data.seed = static_cast<uint64_t>(trial);
    EmpDeptDb db = MakeEmpDeptDb(data);

    std::string sql = RandomQuery(&rng);
    RunOutcome trad = RunConfig(*db.catalog, sql, TraditionalOptions(),
                                /*execute=*/false);
    RunOutcome ext = RunConfig(*db.catalog, sql, OptimizerOptions{},
                               /*execute=*/false);
    double ratio = trad.estimated / std::max(ext.estimated, 1e-9);
    ratios.push_back(ratio);
    log_sum += std::log(ratio);
    max_ratio = std::max(max_ratio, ratio);
    if (ratio > 1.0 + 1e-9) {
      ++wins;
    } else if (ratio >= 1.0 - 1e-9) {
      ++ties;
    } else {
      ++violations;
    }
  }

  TablePrinter table({"trials", "improved", "equal", "worse", "geomean",
                      "max_ratio"});
  table.Row({Fmt(static_cast<int64_t>(kTrials)), Fmt(static_cast<int64_t>(wins)),
             Fmt(static_cast<int64_t>(ties)), Fmt(static_cast<int64_t>(violations)),
             FmtRatio(std::exp(log_sum / kTrials)), FmtRatio(max_ratio)});

  std::sort(ratios.begin(), ratios.end());
  std::printf("\nratio percentiles (traditional / extended):\n");
  TablePrinter pct({"p10", "p50", "p90", "p100"});
  auto at = [&](double q) {
    return ratios[static_cast<size_t>(q * (ratios.size() - 1))];
  };
  pct.Row({FmtRatio(at(0.10)), FmtRatio(at(0.50)), FmtRatio(at(0.90)),
           FmtRatio(at(1.0))});
  std::printf(
      "\nExpected shape: worse = 0 (the guarantee), a substantial improved\n"
      "fraction, and multi-x max ratios where pull-up/push-down apply.\n");
  if (violations > 0) {
    std::printf("GUARANTEE VIOLATED\n");
  }
}

}  // namespace
}  // namespace bench
}  // namespace aggview

int main() {
  aggview::bench::Run();
  return 0;
}
