// Experiment E12 — paranoid-mode overhead. The semantic analyzer runs at
// every DP-table insertion and every transformation certificate is re-proved
// when OptimizerOptions::paranoid is on; this measures what that costs on
// top of plain optimization, and what a one-shot AnalyzePlan of the final
// plan costs (the cheap always-on alternative).
#include <benchmark/benchmark.h>

#include "analysis/dataflow.h"
#include "bench_util.h"

namespace aggview {
namespace bench {
namespace {

const EmpDeptDb& Db() {
  static EmpDeptDb* db = [] {
    EmpDeptOptions data;
    data.num_employees = 20'000;
    data.num_departments = 500;
    return new EmpDeptDb(MakeEmpDeptDb(data));
  }();
  return *db;
}

std::string TwoViewQuery() {
  return R"sql(
create view a (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
create view c (dno, cnt) as
  select e3.dno, count(*) from emp e3, dept d2
  where e3.dno = d2.dno and d2.budget < 1000000
  group by e3.dno;
select e1.sal
from emp e1, dept d, a, c
where e1.dno = d.dno and e1.dno = a.dno and e1.dno = c.dno
  and e1.sal > a.asal and c.cnt > 2)sql";
}

void OptimizeOnce(const std::string& sql, const OptimizerOptions& options,
                  benchmark::State& state) {
  auto query = ParseAndBind(*Db().catalog, sql);
  if (!query.ok()) std::abort();
  auto optimized = OptimizeQueryWithAggViews(*query, options);
  if (!optimized.ok()) std::abort();
  benchmark::DoNotOptimize(optimized->plan->cost);
  state.counters["plans_checked"] = static_cast<double>(
      optimized->counters.plans_checked);
  state.counters["certs"] = static_cast<double>(
      optimized->counters.certificates_verified);
}

void BM_TwoViews_Plain(benchmark::State& state) {
  OptimizerOptions options;
  options.paranoid = false;
  for (auto _ : state) OptimizeOnce(TwoViewQuery(), options, state);
}
BENCHMARK(BM_TwoViews_Plain);

// Dataflow-analysis axis: paranoid mode with the dataflow verifier pass on
// (range(1)) vs off (range(0)). The delta divided by `plans_checked` is the
// abstract interpretation's cost per DP-table insertion. Run with
// --benchmark_format=json for machine-readable output.
void BM_TwoViews_Paranoid(benchmark::State& state) {
  OptimizerOptions options;
  options.paranoid = true;
  options.paranoid_dataflow = state.range(0) != 0;
  for (auto _ : state) OptimizeOnce(TwoViewQuery(), options, state);
}
BENCHMARK(BM_TwoViews_Paranoid)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("dataflow");

void BM_TwoViews_FinalAnalyzeOnly(benchmark::State& state) {
  // Optimize once, measure only the one-shot analysis of the winning plan —
  // with and without the dataflow pass (same axis as above).
  auto query = ParseAndBind(*Db().catalog, TwoViewQuery());
  if (!query.ok()) std::abort();
  OptimizerOptions options;
  options.paranoid = false;
  auto optimized = OptimizeQueryWithAggViews(*query, options);
  if (!optimized.ok()) std::abort();
  AnalysisOptions analysis;
  analysis.dataflow = state.range(0) != 0;
  for (auto _ : state) {
    Status st = AnalyzePlan(optimized->plan, optimized->query, analysis);
    if (!st.ok()) std::abort();
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_TwoViews_FinalAnalyzeOnly)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("dataflow");

void BM_DataflowAnalysisOnly(benchmark::State& state) {
  // The raw abstract interpretation (facts only, no obligations) of the
  // winning two-view plan.
  auto query = ParseAndBind(*Db().catalog, TwoViewQuery());
  if (!query.ok()) std::abort();
  OptimizerOptions options;
  options.paranoid = false;
  auto optimized = OptimizeQueryWithAggViews(*query, options);
  if (!optimized.ok()) std::abort();
  for (auto _ : state) {
    DataflowAnalysis flow =
        DataflowAnalysis::Analyze(optimized->plan, optimized->query);
    benchmark::DoNotOptimize(flow.Find(optimized->plan.get()));
  }
}
BENCHMARK(BM_DataflowAnalysisOnly);

void BM_Fuzz10_Plain(benchmark::State& state) {
  for (auto _ : state) {
    FuzzOptions options;
    options.seed = 12345;
    options.num_queries = 10;
    options.num_employees = 200;
    options.num_departments = 8;
    options.paranoid = false;
    auto report = RunDifferentialFuzz(options);
    if (!report.ok()) std::abort();
    benchmark::DoNotOptimize(report->plans_compared);
  }
}
BENCHMARK(BM_Fuzz10_Plain)->Unit(benchmark::kMillisecond);

void BM_Fuzz10_Paranoid(benchmark::State& state) {
  for (auto _ : state) {
    FuzzOptions options;
    options.seed = 12345;
    options.num_queries = 10;
    options.num_employees = 200;
    options.num_departments = 8;
    options.paranoid = true;
    auto report = RunDifferentialFuzz(options);
    if (!report.ok()) std::abort();
    benchmark::DoNotOptimize(report->plans_compared);
  }
}
BENCHMARK(BM_Fuzz10_Paranoid)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace aggview

BENCHMARK_MAIN();
