// Experiment E15 — small-scope prover throughput (DESIGN.md §13).
//
// Measures the bounded model checker on the proof-suite obligations: how
// many canonical databases the scope contains at each row bound, and how
// fast the prover executes-and-compares them (databases/second). Columns:
//   rows      the per-table row bound (scope depth)
//   dbs       canonical databases within the bound (after isomorphism
//             pruning — the number of pairs of executions performed)
//   wall_ms   end-to-end proof time, optimization included
//   db_per_s  verification throughput
// The db counts make the pruning visible: they grow combinatorially with
// the bound but stay far below the raw value-tuple count, which is what
// makes exhaustive checking at rows<=4 a nightly job instead of a dream.
#include <chrono>

#include "bench_util.h"

namespace aggview {
namespace bench {
namespace {

void Run() {
  Banner("E15", "small-scope prover throughput");

  EmpDeptDb db = MakeEmpDeptDb({});

  struct Obligation {
    std::string name;
    std::string sql;
  };
  std::vector<Obligation> obligations = {
      {"invariant", R"sql(
select e.dno, avg(e.sal)
from emp e, dept d
where e.dno = d.dno and d.budget < 1
group by e.dno
)sql"},
      {"pullup", R"sql(
create view a1 (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
select e1.sal
from emp e1, a1 b
where e1.dno = b.dno and e1.age < 1 and e1.sal > b.asal
)sql"},
      {"coalescing", "select count(*) from emp e, dept d where e.dno = d.dno"},
  };

  TablePrinter table({"obligation", "rows", "dbs", "wall_ms", "db_per_s"});
  for (const Obligation& ob : obligations) {
    for (int rows = 1; rows <= 3; ++rows) {
      ProverOptions options;
      options.bounds.max_rows = rows;
      options.name = "bench_" + ob.name;

      auto start = std::chrono::steady_clock::now();
      auto proof = ProveSqlTransformation(db.catalog.get(), ob.sql,
                                          TraditionalOptions(),
                                          OptimizerOptions{}, options);
      auto end = std::chrono::steady_clock::now();
      if (!proof.ok()) {
        std::fprintf(stderr, "%s: %s\n", ob.name.c_str(),
                     proof.status().ToString().c_str());
        std::abort();
      }
      if (!proof->result.proved) {
        std::fprintf(stderr, "%s: unexpectedly refuted\n", ob.name.c_str());
        std::abort();
      }
      double ms = std::chrono::duration<double, std::milli>(end - start).count();
      double per_s = ms > 0.0
                         ? static_cast<double>(proof->result.databases_checked) /
                               (ms / 1000.0)
                         : 0.0;
      table.Row({ob.name, Fmt(static_cast<int64_t>(rows)),
                 Fmt(proof->result.databases_checked), Fmt(ms), Fmt(per_s)});
    }
  }
  std::printf(
      "\nExpected shape: dbs grows combinatorially with rows while db_per_s\n"
      "stays roughly flat — proof cost is execution-bound, so the scope\n"
      "bound is the only knob that matters.\n");
}

}  // namespace
}  // namespace bench
}  // namespace aggview

int main() {
  aggview::bench::Run();
  return 0;
}
