// Experiment E10 — ablation of the design choices (DESIGN.md §5/§6).
//
// Each optimizer capability is switched off in isolation and the estimated
// plan cost re-measured on the TPC-D query suite plus Example 1. Columns:
//   full      everything on (the paper's algorithm + [LMS94] propagation)
//   -inv      invariant-grouping push-down disabled
//   -coal     simple-coalescing push-down disabled
//   -pull     pull-up disabled (max_pullup = 0)
//   -shrink   view shrinking (minimal invariant sets) disabled
//   -prop     predicate propagation disabled
//   trad      the Section 5.1 traditional baseline
// A cell larger than "full" quantifies that capability's contribution on
// that query; "full" is never larger than any other column (the no-worse
// guarantee, capability-monotone).
#include "bench_util.h"

namespace aggview {
namespace bench {
namespace {

OptimizerOptions Without(const char* what) {
  OptimizerOptions options;
  std::string w = what;
  if (w == "-inv") options.enumerator.enable_invariant = false;
  if (w == "-coal") options.enumerator.enable_coalescing = false;
  if (w == "-pull") options.max_pullup = 0;
  if (w == "-shrink") options.shrink_views = false;
  if (w == "-prop") options.propagate_predicates = false;
  return options;
}

void Run() {
  Banner("E10", "ablation of the optimizer capabilities");

  DbgenOptions tpcd_options;
  tpcd_options.scale_factor = 0.005;
  TpcdDb tpcd = MakeTpcdDb(tpcd_options);

  EmpDeptOptions emp_options;
  emp_options.num_employees = 60'000;
  emp_options.num_departments = 20'000;
  emp_options.young_fraction = 4.0 / 48.0;
  EmpDeptDb empdept = MakeEmpDeptDb(emp_options);

  struct Workload {
    const Catalog* catalog;
    std::string name;
    std::string sql;
  };
  std::vector<Workload> workloads;
  workloads.push_back({empdept.catalog.get(), "example1",
                       R"sql(
create view a1 (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
select e1.sal from emp e1, a1 b
where e1.dno = b.dno and e1.age < 20 and e1.sal > b.asal)sql"});
  for (const auto& named : tpcd_queries::AllQueries()) {
    workloads.push_back({tpcd.catalog.get(),
                         named.name.substr(0, named.name.find(' ')),
                         named.sql});
  }

  const char* configs[] = {"full", "-inv", "-coal", "-pull", "-shrink",
                           "-prop", "trad"};
  TablePrinter table({"query", "full", "-inv", "-coal", "-pull", "-shrink",
                      "-prop", "trad"}, 11);
  for (const Workload& w : workloads) {
    std::vector<std::string> row = {w.name};
    for (const char* config : configs) {
      RunOutcome outcome;
      if (std::string(config) == "trad") {
        outcome = RunConfig(*w.catalog, w.sql, TraditionalOptions(), false);
      } else {
        outcome = RunConfig(*w.catalog, w.sql, Without(config), false);
      }
      row.push_back(Fmt(outcome.estimated));
    }
    table.Row(row);
  }
  std::printf(
      "\nExpected shape: per query, 'full' is the row minimum; the column\n"
      "whose removal hurts identifies the transformation that query needs\n"
      "(-coal on the fan-out profile, -pull on example1, ...).\n");
}

}  // namespace
}  // namespace bench
}  // namespace aggview

int main() {
  aggview::bench::Run();
  return 0;
}
