// Experiment E14 — multi-query serving throughput through the Server layer.
//
// The serving layer claims two things: (1) the plan cache makes repeated
// statements skip parse/bind/optimize entirely, and (2) concurrent client
// sessions can share one Server — catalog, plan cache, worker pool — and
// still produce byte-identical results under admission-controlled FIFO
// scheduling. This experiment measures both.
//
// Axis 1 (serve rows): N concurrent client threads (1, 2, 4, 8), each with
// its own ServerSession, issue a fixed mixed workload — a join-projection
// scan, two grouped aggregations and a point lookup — against one shared
// Server. Every statement goes through the full serving path (Sql() cache
// lookup + Execute()); per-statement latencies feed the p50/p95/p99 columns
// and QPS is total statements over the wall clock of the best repetition.
// Each client cross-checks every result fingerprint against a serial
// baseline and the run aborts on divergence.
//
// Axis 2 (prepare rows): the cost of Sql() itself, cold vs hot. A stats-
// epoch bump forces the next prepare to miss (pay parse -> bind ->
// optimize); the statement immediately after hits the cache. The speedup
// column of prepare_hit is p50(miss) / p50(hit) — the measured repeated-
// query speedup from plan caching.
//
// Repetitions are interleaved per axis value as in E13; latencies pool
// across repetitions for stable percentiles. --smoke shrinks the data and
// the axis for CI; --json emits the machine-readable document persisted as
// BENCH_e14_serving.json.
#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"

namespace aggview {
namespace bench {
namespace {

struct Workload {
  const char* name;
  const char* sql;
};

constexpr Workload kMix[] = {
    // Scan-heavy join-projection: lineitem probe against supplier.
    {"scan_join",
     "select l.l_orderkey, l.l_extendedprice, s.s_acctbal "
     "from lineitem l, supplier s "
     "where l.l_suppkey = s.s_suppkey and l.l_quantity >= 0"},
    // Aggregate-heavy: fold every lineitem into per-supplier groups.
    {"aggregate",
     "select l.l_suppkey, sum(l.l_extendedprice), count(*) "
     "from lineitem l group by l.l_suppkey"},
    // Filtered aggregation with many groups.
    {"filtered_agg",
     "select l.l_orderkey, sum(l.l_extendedprice) "
     "from lineitem l where l.l_quantity >= 25 group by l.l_orderkey"},
    // Cheap point statement: dominated by serving overhead, not execution.
    {"point", "select s.s_acctbal from supplier s where s.s_suppkey = 1"},
};
constexpr int kMixSize = 4;

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == flag) return true;
  }
  return false;
}

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// p in [0, 1]; `sorted` ascending, non-empty.
double Percentile(const std::vector<double>& sorted, double p) {
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

std::string Ms(double seconds, int decimals = 3) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, seconds * 1e3);
  return buf;
}

std::string F2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

struct AxisResult {
  double best_wall = 1e300;
  std::vector<double> latencies;  // pooled across reps, seconds
  int64_t queries_per_rep = 0;
};

void Run(bool json, bool smoke) {
  if (!json) {
    Banner("E14", "multi-query serving: plan cache + concurrent sessions");
  }

  ServerOptions options;
  options.threads = 2;  // shared pool: exercises the multi-driver lease
  Server server(options);
  {
    auto tables = CreateTpcdSchema(&server.catalog());
    if (!tables.ok()) std::abort();
    DbgenOptions dbgen;
    dbgen.scale_factor = smoke ? 0.002 : 0.01;
    Status st = GenerateTpcdData(&server.catalog(), *tables, dbgen);
    if (!st.ok()) std::abort();
  }

  const std::vector<int> client_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  const int reps = smoke ? 2 : 3;
  const int per_client = smoke ? 2 : 5;  // mix repetitions per client per rep

  // Serial baseline fingerprints: every concurrent result must match.
  std::vector<std::string> baseline;
  {
    ServerSession conn = server.Connect();
    for (const Workload& w : kMix) {
      auto q = conn.Sql(w.sql);
      if (!q.ok()) {
        std::fprintf(stderr, "sql %s: %s\n", w.name,
                     q.status().ToString().c_str());
        std::abort();
      }
      auto r = q->Execute();
      if (!r.ok()) {
        std::fprintf(stderr, "execute %s: %s\n", w.name,
                     r.status().ToString().c_str());
        std::abort();
      }
      baseline.push_back(r->Fingerprint());
    }
  }

  ResultWriter table(json, "E14",
                     {"row", "clients", "queries", "wall_ms", "qps", "p50_ms",
                      "p95_ms", "p99_ms", "hits", "misses", "speedup"});

  // ---- Axis 1: concurrent serving throughput ----
  std::vector<AxisResult> serve(client_counts.size());
  for (int rep = 0; rep < reps; ++rep) {
    for (size_t a = 0; a < client_counts.size(); ++a) {
      const int clients = client_counts[a];
      std::vector<std::vector<double>> lat(static_cast<size_t>(clients));
      std::vector<int> mismatches(static_cast<size_t>(clients), 0);
      std::vector<std::thread> threads;
      threads.reserve(static_cast<size_t>(clients));
      const double wall_start = Now();
      for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          ServerSession conn = server.Connect();
          for (int i = 0; i < per_client; ++i) {
            for (int w = 0; w < kMixSize; ++w) {
              const double start = Now();
              auto q = conn.Sql(kMix[w].sql);
              if (!q.ok()) std::abort();
              auto r = q->Execute();
              if (!r.ok()) std::abort();
              lat[static_cast<size_t>(c)].push_back(Now() - start);
              if (r->Fingerprint() != baseline[static_cast<size_t>(w)]) {
                ++mismatches[static_cast<size_t>(c)];
              }
            }
          }
        });
      }
      for (std::thread& t : threads) t.join();
      const double wall = Now() - wall_start;
      for (int c = 0; c < clients; ++c) {
        if (mismatches[static_cast<size_t>(c)] != 0) {
          std::fprintf(stderr,
                       "client %d diverged from serial baseline (%d results)\n",
                       c, mismatches[static_cast<size_t>(c)]);
          std::abort();
        }
        serve[a].latencies.insert(serve[a].latencies.end(),
                                  lat[static_cast<size_t>(c)].begin(),
                                  lat[static_cast<size_t>(c)].end());
      }
      serve[a].queries_per_rep =
          static_cast<int64_t>(clients) * per_client * kMixSize;
      if (wall < serve[a].best_wall) serve[a].best_wall = wall;
    }
  }

  double qps_one_client = 0.0;
  for (size_t a = 0; a < client_counts.size(); ++a) {
    std::sort(serve[a].latencies.begin(), serve[a].latencies.end());
    const double qps =
        static_cast<double>(serve[a].queries_per_rep) / serve[a].best_wall;
    if (a == 0) qps_one_client = qps;
    table.Row({"serve", Fmt(static_cast<int64_t>(client_counts[a])),
               Fmt(serve[a].queries_per_rep), Ms(serve[a].best_wall),
               F2(qps), Ms(Percentile(serve[a].latencies, 0.50)),
               Ms(Percentile(serve[a].latencies, 0.95)),
               Ms(Percentile(serve[a].latencies, 0.99)), "-", "-",
               F2(qps / qps_one_client)});
  }

  // ---- Axis 2: prepare cost, cache miss vs hit ----
  const int prepare_reps = smoke ? 5 : 20;
  std::vector<double> miss_lat, hit_lat;
  int64_t hits_before = server.cache_stats().hits;
  int64_t misses_before = server.cache_stats().misses;
  {
    ServerSession conn = server.Connect();
    for (int rep = 0; rep < prepare_reps; ++rep) {
      for (const Workload& w : kMix) {
        // Invalidate every cached plan: the next prepare pays the full
        // parse -> bind -> optimize pipeline.
        server.catalog().BumpStatsEpoch();
        double start = Now();
        auto cold = conn.Sql(w.sql);
        miss_lat.push_back(Now() - start);
        if (!cold.ok() || cold->cache_hit()) std::abort();
        start = Now();
        auto warm = conn.Sql(w.sql);
        hit_lat.push_back(Now() - start);
        if (!warm.ok() || !warm->cache_hit()) std::abort();
      }
    }
  }
  const int64_t new_hits = server.cache_stats().hits - hits_before;
  const int64_t new_misses = server.cache_stats().misses - misses_before;
  std::sort(miss_lat.begin(), miss_lat.end());
  std::sort(hit_lat.begin(), hit_lat.end());
  const double miss_p50 = Percentile(miss_lat, 0.50);
  const double hit_p50 = Percentile(hit_lat, 0.50);

  table.Row({"prepare_miss", "1", Fmt(static_cast<int64_t>(miss_lat.size())),
             "-", "-", Ms(miss_p50, 4), Ms(Percentile(miss_lat, 0.95), 4),
             Ms(Percentile(miss_lat, 0.99), 4), "0", Fmt(new_misses), "1.00"});
  table.Row({"prepare_hit", "1", Fmt(static_cast<int64_t>(hit_lat.size())),
             "-", "-", Ms(hit_p50, 4), Ms(Percentile(hit_lat, 0.95), 4),
             Ms(Percentile(hit_lat, 0.99), 4), Fmt(new_hits), "0",
             F2(hit_p50 > 0 ? miss_p50 / hit_p50 : 0.0)});

  if (!json) {
    PlanCacheStats stats = server.cache_stats();
    std::printf("\n%s\n", stats.ToString().c_str());
    std::printf(
        "host cores: %u\n"
        "\nExpected shape: serve QPS grows with clients until the shared\n"
        "2-worker pool and the FIFO region lease saturate, with p99 growing\n"
        "as queueing sets in; results stay byte-identical to serial at every\n"
        "client count (checked). prepare_hit p50 is the cache-served cost of\n"
        "Sql() — its speedup column is the measured repeated-query speedup\n"
        "from skipping parse/bind/optimize.\n",
        std::thread::hardware_concurrency());
  }
}

}  // namespace
}  // namespace bench
}  // namespace aggview

int main(int argc, char** argv) {
  aggview::bench::Run(aggview::bench::JsonMode(argc, argv),
                      aggview::bench::HasFlag(argc, argv, "--smoke"));
  return 0;
}
