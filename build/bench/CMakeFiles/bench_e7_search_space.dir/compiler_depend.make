# Empty compiler generated dependencies file for bench_e7_search_space.
# This may be replaced when dependencies are built.
