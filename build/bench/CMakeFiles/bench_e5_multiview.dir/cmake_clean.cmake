file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_multiview.dir/bench_e5_multiview.cc.o"
  "CMakeFiles/bench_e5_multiview.dir/bench_e5_multiview.cc.o.d"
  "bench_e5_multiview"
  "bench_e5_multiview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_multiview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
