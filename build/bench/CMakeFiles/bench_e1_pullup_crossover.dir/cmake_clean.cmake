file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_pullup_crossover.dir/bench_e1_pullup_crossover.cc.o"
  "CMakeFiles/bench_e1_pullup_crossover.dir/bench_e1_pullup_crossover.cc.o.d"
  "bench_e1_pullup_crossover"
  "bench_e1_pullup_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_pullup_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
