# Empty compiler generated dependencies file for bench_e1_pullup_crossover.
# This may be replaced when dependencies are built.
