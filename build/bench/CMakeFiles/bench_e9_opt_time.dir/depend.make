# Empty dependencies file for bench_e9_opt_time.
# This may be replaced when dependencies are built.
