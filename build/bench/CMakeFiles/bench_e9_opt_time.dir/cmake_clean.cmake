file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_opt_time.dir/bench_e9_opt_time.cc.o"
  "CMakeFiles/bench_e9_opt_time.dir/bench_e9_opt_time.cc.o.d"
  "bench_e9_opt_time"
  "bench_e9_opt_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_opt_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
