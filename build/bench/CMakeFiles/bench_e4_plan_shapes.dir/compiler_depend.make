# Empty compiler generated dependencies file for bench_e4_plan_shapes.
# This may be replaced when dependencies are built.
