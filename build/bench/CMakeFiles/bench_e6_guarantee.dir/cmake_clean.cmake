file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_guarantee.dir/bench_e6_guarantee.cc.o"
  "CMakeFiles/bench_e6_guarantee.dir/bench_e6_guarantee.cc.o.d"
  "bench_e6_guarantee"
  "bench_e6_guarantee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_guarantee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
