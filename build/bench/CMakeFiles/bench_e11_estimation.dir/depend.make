# Empty dependencies file for bench_e11_estimation.
# This may be replaced when dependencies are built.
