file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_estimation.dir/bench_e11_estimation.cc.o"
  "CMakeFiles/bench_e11_estimation.dir/bench_e11_estimation.cc.o.d"
  "bench_e11_estimation"
  "bench_e11_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
