file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_invariant_grouping.dir/bench_e2_invariant_grouping.cc.o"
  "CMakeFiles/bench_e2_invariant_grouping.dir/bench_e2_invariant_grouping.cc.o.d"
  "bench_e2_invariant_grouping"
  "bench_e2_invariant_grouping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_invariant_grouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
