# Empty compiler generated dependencies file for bench_e2_invariant_grouping.
# This may be replaced when dependencies are built.
