# Empty dependencies file for bench_e8_tpcd.
# This may be replaced when dependencies are built.
