file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_tpcd.dir/bench_e8_tpcd.cc.o"
  "CMakeFiles/bench_e8_tpcd.dir/bench_e8_tpcd.cc.o.d"
  "bench_e8_tpcd"
  "bench_e8_tpcd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_tpcd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
