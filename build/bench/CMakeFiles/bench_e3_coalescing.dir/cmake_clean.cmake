file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_coalescing.dir/bench_e3_coalescing.cc.o"
  "CMakeFiles/bench_e3_coalescing.dir/bench_e3_coalescing.cc.o.d"
  "bench_e3_coalescing"
  "bench_e3_coalescing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_coalescing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
