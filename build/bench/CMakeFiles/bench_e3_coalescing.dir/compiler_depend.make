# Empty compiler generated dependencies file for bench_e3_coalescing.
# This may be replaced when dependencies are built.
