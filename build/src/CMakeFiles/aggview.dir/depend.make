# Empty dependencies file for aggview.
# This may be replaced when dependencies are built.
