file(REMOVE_RECURSE
  "libaggview.a"
)
