
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/column.cc" "src/CMakeFiles/aggview.dir/algebra/column.cc.o" "gcc" "src/CMakeFiles/aggview.dir/algebra/column.cc.o.d"
  "/root/repo/src/algebra/logical_plan.cc" "src/CMakeFiles/aggview.dir/algebra/logical_plan.cc.o" "gcc" "src/CMakeFiles/aggview.dir/algebra/logical_plan.cc.o.d"
  "/root/repo/src/algebra/query.cc" "src/CMakeFiles/aggview.dir/algebra/query.cc.o" "gcc" "src/CMakeFiles/aggview.dir/algebra/query.cc.o.d"
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/aggview.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/aggview.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/statistics.cc" "src/CMakeFiles/aggview.dir/catalog/statistics.cc.o" "gcc" "src/CMakeFiles/aggview.dir/catalog/statistics.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/aggview.dir/common/status.cc.o" "gcc" "src/CMakeFiles/aggview.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/aggview.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/aggview.dir/common/string_util.cc.o.d"
  "/root/repo/src/cost/cost_model.cc" "src/CMakeFiles/aggview.dir/cost/cost_model.cc.o" "gcc" "src/CMakeFiles/aggview.dir/cost/cost_model.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/CMakeFiles/aggview.dir/exec/executor.cc.o" "gcc" "src/CMakeFiles/aggview.dir/exec/executor.cc.o.d"
  "/root/repo/src/exec/lowering.cc" "src/CMakeFiles/aggview.dir/exec/lowering.cc.o" "gcc" "src/CMakeFiles/aggview.dir/exec/lowering.cc.o.d"
  "/root/repo/src/exec/operators.cc" "src/CMakeFiles/aggview.dir/exec/operators.cc.o" "gcc" "src/CMakeFiles/aggview.dir/exec/operators.cc.o.d"
  "/root/repo/src/expr/aggregate.cc" "src/CMakeFiles/aggview.dir/expr/aggregate.cc.o" "gcc" "src/CMakeFiles/aggview.dir/expr/aggregate.cc.o.d"
  "/root/repo/src/expr/predicate.cc" "src/CMakeFiles/aggview.dir/expr/predicate.cc.o" "gcc" "src/CMakeFiles/aggview.dir/expr/predicate.cc.o.d"
  "/root/repo/src/expr/scalar_expr.cc" "src/CMakeFiles/aggview.dir/expr/scalar_expr.cc.o" "gcc" "src/CMakeFiles/aggview.dir/expr/scalar_expr.cc.o.d"
  "/root/repo/src/optimizer/aggview_optimizer.cc" "src/CMakeFiles/aggview.dir/optimizer/aggview_optimizer.cc.o" "gcc" "src/CMakeFiles/aggview.dir/optimizer/aggview_optimizer.cc.o.d"
  "/root/repo/src/optimizer/join_enumerator.cc" "src/CMakeFiles/aggview.dir/optimizer/join_enumerator.cc.o" "gcc" "src/CMakeFiles/aggview.dir/optimizer/join_enumerator.cc.o.d"
  "/root/repo/src/optimizer/plan.cc" "src/CMakeFiles/aggview.dir/optimizer/plan.cc.o" "gcc" "src/CMakeFiles/aggview.dir/optimizer/plan.cc.o.d"
  "/root/repo/src/optimizer/plan_validator.cc" "src/CMakeFiles/aggview.dir/optimizer/plan_validator.cc.o" "gcc" "src/CMakeFiles/aggview.dir/optimizer/plan_validator.cc.o.d"
  "/root/repo/src/optimizer/traditional.cc" "src/CMakeFiles/aggview.dir/optimizer/traditional.cc.o" "gcc" "src/CMakeFiles/aggview.dir/optimizer/traditional.cc.o.d"
  "/root/repo/src/sql/ast.cc" "src/CMakeFiles/aggview.dir/sql/ast.cc.o" "gcc" "src/CMakeFiles/aggview.dir/sql/ast.cc.o.d"
  "/root/repo/src/sql/binder.cc" "src/CMakeFiles/aggview.dir/sql/binder.cc.o" "gcc" "src/CMakeFiles/aggview.dir/sql/binder.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/aggview.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/aggview.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/aggview.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/aggview.dir/sql/parser.cc.o.d"
  "/root/repo/src/stats/estimator.cc" "src/CMakeFiles/aggview.dir/stats/estimator.cc.o" "gcc" "src/CMakeFiles/aggview.dir/stats/estimator.cc.o.d"
  "/root/repo/src/storage/io_accountant.cc" "src/CMakeFiles/aggview.dir/storage/io_accountant.cc.o" "gcc" "src/CMakeFiles/aggview.dir/storage/io_accountant.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/aggview.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/aggview.dir/storage/table.cc.o.d"
  "/root/repo/src/tpcd/dbgen.cc" "src/CMakeFiles/aggview.dir/tpcd/dbgen.cc.o" "gcc" "src/CMakeFiles/aggview.dir/tpcd/dbgen.cc.o.d"
  "/root/repo/src/tpcd/queries.cc" "src/CMakeFiles/aggview.dir/tpcd/queries.cc.o" "gcc" "src/CMakeFiles/aggview.dir/tpcd/queries.cc.o.d"
  "/root/repo/src/tpcd/schema.cc" "src/CMakeFiles/aggview.dir/tpcd/schema.cc.o" "gcc" "src/CMakeFiles/aggview.dir/tpcd/schema.cc.o.d"
  "/root/repo/src/transform/coalescing.cc" "src/CMakeFiles/aggview.dir/transform/coalescing.cc.o" "gcc" "src/CMakeFiles/aggview.dir/transform/coalescing.cc.o.d"
  "/root/repo/src/transform/propagate.cc" "src/CMakeFiles/aggview.dir/transform/propagate.cc.o" "gcc" "src/CMakeFiles/aggview.dir/transform/propagate.cc.o.d"
  "/root/repo/src/transform/pullup.cc" "src/CMakeFiles/aggview.dir/transform/pullup.cc.o" "gcc" "src/CMakeFiles/aggview.dir/transform/pullup.cc.o.d"
  "/root/repo/src/transform/pushdown.cc" "src/CMakeFiles/aggview.dir/transform/pushdown.cc.o" "gcc" "src/CMakeFiles/aggview.dir/transform/pushdown.cc.o.d"
  "/root/repo/src/types/data_type.cc" "src/CMakeFiles/aggview.dir/types/data_type.cc.o" "gcc" "src/CMakeFiles/aggview.dir/types/data_type.cc.o.d"
  "/root/repo/src/types/schema.cc" "src/CMakeFiles/aggview.dir/types/schema.cc.o" "gcc" "src/CMakeFiles/aggview.dir/types/schema.cc.o.d"
  "/root/repo/src/types/value.cc" "src/CMakeFiles/aggview.dir/types/value.cc.o" "gcc" "src/CMakeFiles/aggview.dir/types/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
