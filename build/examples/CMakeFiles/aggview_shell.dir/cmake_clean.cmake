file(REMOVE_RECURSE
  "CMakeFiles/aggview_shell.dir/aggview_shell.cc.o"
  "CMakeFiles/aggview_shell.dir/aggview_shell.cc.o.d"
  "aggview_shell"
  "aggview_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggview_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
