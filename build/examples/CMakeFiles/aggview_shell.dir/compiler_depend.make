# Empty compiler generated dependencies file for aggview_shell.
# This may be replaced when dependencies are built.
