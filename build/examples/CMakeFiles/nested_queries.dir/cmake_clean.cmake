file(REMOVE_RECURSE
  "CMakeFiles/nested_queries.dir/nested_queries.cc.o"
  "CMakeFiles/nested_queries.dir/nested_queries.cc.o.d"
  "nested_queries"
  "nested_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nested_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
