# Empty compiler generated dependencies file for nested_queries.
# This may be replaced when dependencies are built.
