file(REMOVE_RECURSE
  "CMakeFiles/guarantee_property_test.dir/guarantee_property_test.cc.o"
  "CMakeFiles/guarantee_property_test.dir/guarantee_property_test.cc.o.d"
  "guarantee_property_test"
  "guarantee_property_test.pdb"
  "guarantee_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guarantee_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
