file(REMOVE_RECURSE
  "CMakeFiles/pullup_test.dir/pullup_test.cc.o"
  "CMakeFiles/pullup_test.dir/pullup_test.cc.o.d"
  "pullup_test"
  "pullup_test.pdb"
  "pullup_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pullup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
