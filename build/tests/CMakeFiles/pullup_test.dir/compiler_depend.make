# Empty compiler generated dependencies file for pullup_test.
# This may be replaced when dependencies are built.
