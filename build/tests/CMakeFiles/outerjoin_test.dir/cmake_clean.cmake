file(REMOVE_RECURSE
  "CMakeFiles/outerjoin_test.dir/outerjoin_test.cc.o"
  "CMakeFiles/outerjoin_test.dir/outerjoin_test.cc.o.d"
  "outerjoin_test"
  "outerjoin_test.pdb"
  "outerjoin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outerjoin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
