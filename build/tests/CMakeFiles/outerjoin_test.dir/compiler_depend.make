# Empty compiler generated dependencies file for outerjoin_test.
# This may be replaced when dependencies are built.
