# Empty compiler generated dependencies file for propagate_test.
# This may be replaced when dependencies are built.
