file(REMOVE_RECURSE
  "CMakeFiles/rowid_test.dir/rowid_test.cc.o"
  "CMakeFiles/rowid_test.dir/rowid_test.cc.o.d"
  "rowid_test"
  "rowid_test.pdb"
  "rowid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rowid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
