# Empty dependencies file for rowid_test.
# This may be replaced when dependencies are built.
