# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/types_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/algebra_test[1]_include.cmake")
include("/root/repo/build/tests/estimator_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/operators_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/pushdown_test[1]_include.cmake")
include("/root/repo/build/tests/propagate_test[1]_include.cmake")
include("/root/repo/build/tests/plan_validator_test[1]_include.cmake")
include("/root/repo/build/tests/rowid_test[1]_include.cmake")
include("/root/repo/build/tests/outerjoin_test[1]_include.cmake")
include("/root/repo/build/tests/orderby_test[1]_include.cmake")
include("/root/repo/build/tests/pullup_test[1]_include.cmake")
include("/root/repo/build/tests/coalescing_test[1]_include.cmake")
include("/root/repo/build/tests/enumerator_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/tpcd_test[1]_include.cmake")
include("/root/repo/build/tests/equivalence_property_test[1]_include.cmake")
include("/root/repo/build/tests/guarantee_property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
