#include "exec/executor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "analysis/dataflow.h"
#include "obs/runtime_stats.h"

namespace aggview {

namespace {

/// Values are rendered with rounding for the fingerprint so that plans that
/// compute the same number via different float operation orders (e.g. AVG
/// vs SUM/COUNT after coalescing) compare equal.
std::string FingerprintValue(const Value& v) {
  if (v.is_null()) return "\x01NULL";  // distinct from the string 'NULL'
  if (v.is_string()) return v.AsString();
  if (v.is_int()) return std::to_string(v.AsInt());
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v.AsDouble());
  return buf;
}

}  // namespace

std::string QueryResult::Fingerprint() const {
  std::vector<std::string> lines;
  lines.reserve(rows.size());
  size_t total = 0;
  for (const Row& row : rows) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) line += "|";
      line += FingerprintValue(row[i]);
    }
    total += line.size() + 1;  // +1 for the trailing newline
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  out.reserve(total);
  for (const std::string& l : lines) {
    out += l;
    out += "\n";
  }
  return out;
}

std::string QueryResult::ToString(const ColumnCatalog& columns) const {
  std::string out;
  for (size_t i = 0; i < layout.columns().size(); ++i) {
    if (i > 0) out += " | ";
    out += columns.name(layout.columns()[i]);
  }
  out += "\n";
  for (const Row& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += row[i].ToString();
    }
    out += "\n";
  }
  return out;
}

Result<QueryResult> ExecutePlan(const PlanPtr& plan, const Query& query,
                                const ExecContext& ctx) {
  // Self-verification needs per-node row counts for the post-drain
  // cardinality check; instrument the run locally when the caller did not.
  RuntimeStatsCollector verify_stats;
  ExecContext effective = ctx;
  if (ctx.verify != nullptr && ctx.stats == nullptr) {
    effective.stats = &verify_stats;
  }
  AGGVIEW_ASSIGN_OR_RETURN(OperatorPtr op, LowerPlan(plan, query, effective));
  AGGVIEW_RETURN_NOT_OK(op->Open());
  QueryResult result;
  result.layout = op->layout();
  int workers = MorselWorkers(*op);
  if (workers > 1) {
    // Parallel root drain: every pipeline instance collects its share of
    // the output into a private buffer; the buffers concatenate in worker
    // order. The result is the same multiset as a serial drain (the
    // fingerprint convention sorts rows, so even the order difference is
    // invisible to equivalence checks).
    std::vector<std::vector<Row>> chunks(static_cast<size_t>(workers));
    AGGVIEW_RETURN_NOT_OK(RunMorselParallel(
        op.get(), workers, [&](int w, Operator* instance) -> Status {
          std::vector<Row>& rows = chunks[static_cast<size_t>(w)];
          RowBatch batch(ctx.batch_size);
          while (true) {
            auto more = instance->Next(&batch);
            if (!more.ok()) return more.status();
            if (!*more) return Status::OK();
            for (int i = 0; i < batch.size(); ++i) {
              rows.push_back(batch.row(i));
            }
          }
        }));
    size_t total = 0;
    for (const auto& chunk : chunks) total += chunk.size();
    result.rows.reserve(total);
    for (auto& chunk : chunks) {
      for (Row& row : chunk) result.rows.push_back(std::move(row));
    }
  } else {
    RowBatch batch(ctx.batch_size);
    while (true) {
      auto more = op->Next(&batch);
      if (!more.ok()) return more.status();
      if (!*more) break;
      for (int i = 0; i < batch.size(); ++i) {
        // Copy, not move: the batch slots keep their heap buffers, so the
        // root operator refills them without a per-row allocation.
        result.rows.push_back(batch.row(i));
      }
    }
  }
  op->Close();
  if (ctx.verify != nullptr && effective.stats != nullptr) {
    AGGVIEW_RETURN_NOT_OK(
        ctx.verify->CheckPlanCardinality(*effective.stats));
  }
  return result;
}

}  // namespace aggview
