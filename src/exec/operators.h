#ifndef AGGVIEW_EXEC_OPERATORS_H_
#define AGGVIEW_EXEC_OPERATORS_H_

#include <atomic>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "algebra/query.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "exec/compile/expr_compiler.h"
#include "exec/exec_context.h"
#include "exec/row_batch.h"
#include "storage/io_accountant.h"
#include "storage/table.h"

namespace aggview {

struct OpStats;
struct PlanNode;
class DataflowVerifier;
class Operator;
using OperatorPtr = std::unique_ptr<Operator>;

/// Batch-at-a-time physical operator: Open / Next(RowBatch*) / Close.
/// Operators charge the IoAccountant with the same page-granularity formulas
/// the cost model uses, evaluated on *actual* (not estimated) cardinalities,
/// so measured IO is the ground truth the estimates are judged against.
///
/// Next fills the caller's batch with up to batch->capacity() rows and
/// returns true; it returns false (batch empty) only at end of stream, so no
/// phantom empty batch precedes end-of-stream and mid-stream batches are
/// never empty. Calling Next again after end of stream is safe and keeps
/// returning false.
///
/// The public Open/Next/Close entry points are non-virtual: when a stats
/// sink is installed (set_stats) they time each call and count produced
/// batches and rows before dispatching to the virtual *Impl methods; with no
/// sink they dispatch directly. Either way the cost is paid once per *batch*,
/// not once per tuple, which is the point of the batch protocol.
///
/// Morsel-driven parallelism (RunMorselParallel below): a pipeline whose
/// operators all answer CanRunMorselParallel() true can be cloned after Open
/// into extra worker instances that share coordination state (the scan's
/// morsel dispenser, a hash join's build table) and split the row multiset
/// disjointly. Clones are born open, carry private OpStats, and are absorbed
/// back into the primary (AbsorbWorker) when the region drains; deferred IO
/// charges then fire once, on merged totals (FinalizeParallelCharges), so
/// charged pages are byte-identical to serial execution.
class Operator {
 public:
  virtual ~Operator();

  Status Open();
  /// Fills `out` with the next batch of rows; returns false at end of
  /// stream. `out` is cleared first; its capacity is the caller's choice.
  Result<bool> Next(RowBatch* out);
  void Close();

  const RowLayout& layout() const { return layout_; }

  /// Installs the runtime-stats sink (owned by the caller, typically a
  /// RuntimeStatsCollector). Must be set before Open.
  void set_stats(OpStats* stats) { stats_ = stats; }
  const OpStats* stats() const { return stats_; }

  /// Capacity of the batches this operator allocates internally (input-side
  /// buffers, Open-time drains). The batch handed to Next has its own
  /// capacity; lowering installs one size everywhere. Must be set before
  /// Open.
  void set_batch_size(int batch_size) {
    batch_size_ = batch_size > 0 ? batch_size : 1;
  }
  int batch_size() const { return batch_size_; }

  /// Installs the shared execution runtime (thread budget, morsel geometry,
  /// worker pool). Lowering sets it on every operator; null means serial.
  void set_exec(std::shared_ptr<ExecRuntime> exec) { exec_ = std::move(exec); }
  ExecRuntime* exec_runtime() const { return exec_.get(); }

  /// Installs the dataflow self-verification hook (ExecContext::verify):
  /// the non-virtual Next checks every produced batch against the static
  /// facts the verifier derived for `node`. Both pointers are borrowed and
  /// must outlive the operator. Must be set before Open; worker clones
  /// inherit it.
  void set_verify(const DataflowVerifier* verifier, const PlanNode* node) {
    verify_ = verifier;
    verify_node_ = node;
  }

  /// True when this operator and its whole input pipeline can be cloned into
  /// extra worker instances whose outputs partition the row multiset. Scans
  /// qualify (workers claim disjoint morsels); filters/projections/hash-join
  /// probes delegate to their streamed input; pipeline breakers (sort,
  /// aggregate, merge join) and block-nested-loop joins do not — they stay
  /// serial and parallelize *internally* where profitable.
  virtual bool CanRunMorselParallel() const { return false; }

  /// Clones this pipeline for one extra worker. Only valid after Open on a
  /// pipeline where CanRunMorselParallel(); the clone shares the primary's
  /// coordination state, is already open, and must only be driven via Next
  /// (never Open/Close — the primary owns the shared state's lifecycle).
  virtual OperatorPtr CloneForWorker() { return nullptr; }

  /// Folds a worker clone produced by CloneForWorker back into this primary:
  /// merges its OpStats and the operator-specific counters that feed
  /// deferred IO charges, recursing down both pipelines in lockstep.
  virtual void AbsorbWorker(Operator& worker);

  /// Marks this pipeline as running inside a morsel-parallel region:
  /// end-of-stream IO charges are suppressed (every instance hits EOS) and
  /// deferred to FinalizeParallelCharges. Recurses down the streamed input.
  virtual void EnterParallelMode() { parallel_mode_ = true; }

  /// Performs the IO charges a parallel region deferred, on the merged
  /// totals, exactly once, on the driver thread. Recurses down the streamed
  /// input. Called by RunMorselParallel after every worker was absorbed.
  virtual void FinalizeParallelCharges() {}

 protected:
  virtual Status OpenImpl() = 0;
  virtual Result<bool> NextBatchImpl(RowBatch* out) = 0;
  virtual void CloseImpl() {}

  /// Copies the base-operator state a worker clone shares with its primary
  /// (layout, batch size, runtime) and allocates the clone's private stats
  /// block when the primary is instrumented. Every CloneForWorker override
  /// calls this from the clone's constructor path.
  void InitWorkerClone(const Operator& primary);

  /// Charges `pages` reads/writes to `io` (when non-null) and mirrors the
  /// charge into the stats sink (when installed), so EXPLAIN ANALYZE can
  /// attribute IO to the operator that incurred it.
  void ChargeRead(IoAccountant* io, int64_t pages);
  void ChargeWrite(IoAccountant* io, int64_t pages);
  /// Counts input rows consumed (no-op without a sink). Called once per
  /// input batch, not per row.
  void CountInput(int64_t rows);

  RowLayout layout_;
  OpStats* stats_ = nullptr;
  int batch_size_ = kDefaultBatchSize;
  std::shared_ptr<ExecRuntime> exec_;
  bool parallel_mode_ = false;
  /// Dataflow self-verification hook; both borrowed, null when off.
  const DataflowVerifier* verify_ = nullptr;
  const PlanNode* verify_node_ = nullptr;
  /// Worker clones own their stats block (absorbed by the primary later);
  /// primaries point stats_ at the collector's block and leave this null.
  std::unique_ptr<OpStats> owned_stats_;
};

/// Drives `primary`'s pipeline with `workers` instances over its shared
/// morsel dispenser: clones the pipeline `workers - 1` times, runs
/// `consume(worker_index, instance)` for every instance on the runtime's
/// pool (instance 0 is the primary), then absorbs every clone's stats and
/// counters back into the primary and fires the deferred IO charges. Falls
/// back to a single serial `consume(0, primary)` when `workers <= 1`, the
/// pipeline is not morsel-parallel, or no runtime is installed — the serial
/// path is byte-for-byte the pre-parallel engine.
///
/// `consume` must drain its instance to end of stream; each instance yields
/// a disjoint share of the pipeline's row multiset. On error, the
/// lowest-indexed worker's status is returned (deterministic across runs).
Status RunMorselParallel(Operator* primary, int workers,
                         const std::function<Status(int, Operator*)>& consume);

/// Workers this operator tree should use for a parallel region: the
/// runtime's thread budget when one is installed and the pipeline supports
/// morsel parallelism, else 1.
int MorselWorkers(const Operator& pipeline);

/// Scans an in-memory table, applying a filter and projecting: each Next
/// copies out one batch-sized slice of qualifying rows. When `charge_io` is
/// set, Open charges one read per table page (a BNL inner scan is created
/// uncharged because the join charges per-pass rescans).
///
/// The scan is the morsel dispenser of a parallel pipeline: Open publishes
/// an atomic cursor over the table's row-id space; every Next claims a
/// morsel (ExecRuntime::morsel_rows row ids) and fills batches from it,
/// claiming again until the batch fills or the table ends. Worker clones
/// share the cursor, so instances scan disjoint row ranges; a single
/// instance claims every morsel in order and is byte-identical to the
/// pre-morsel serial scan.
class TableScanOp final : public Operator {
 public:
  /// `rowid_col`, when valid, names a synthetic output column materialized
  /// as the scanned row's position (the internal tuple id).
  TableScanOp(const Table* table, RowLayout table_layout,
              std::vector<Predicate> filter, RowLayout output,
              IoAccountant* io, bool charge_io,
              ColId rowid_col = kInvalidColId);

  bool CanRunMorselParallel() const override { return true; }
  OperatorPtr CloneForWorker() override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextBatchImpl(RowBatch* out) override;

 private:
  static constexpr int kRowIdIndex = -2;

  /// The shared morsel cursor: workers fetch-add to claim disjoint row-id
  /// ranges of `morsel_rows` rows each.
  struct MorselDispenser {
    std::atomic<int64_t> next AGGVIEW_LOCK_FREE("atomic fetch-add claim"){0};
    int64_t morsel_rows = kDefaultMorselRows;
  };

  struct WorkerCloneTag {};
  TableScanOp(const TableScanOp& primary, WorkerCloneTag);

  const Table* table_;
  RowLayout table_layout_;
  std::vector<Predicate> filter_;
  std::vector<int> projection_;  // table-layout indices per output column
  IoAccountant* io_;
  bool charge_io_;
  std::shared_ptr<MorselDispenser> morsels_;
  int64_t pos_ = 0;      // next row id within the claimed morsel
  int64_t pos_end_ = 0;  // end of the claimed morsel
};

/// Applies residual predicates in place: the child fills the caller's batch
/// directly, survivors are compacted to the front (O(1) row-buffer swaps),
/// and the batch is truncated. No intermediate batch, no row copies; layout
/// passes through. Mid-stream batches may be partially full but never empty
/// (fully-filtered input batches are skipped).
class FilterOp final : public Operator {
 public:
  FilterOp(OperatorPtr child, std::vector<Predicate> preds);

  /// Compiled-backend injection: when set, the conjunction evaluates via the
  /// bytecode program (compiled against this operator's layout) instead of
  /// tree-walking preds_ — identical results, no per-row virtual calls.
  /// Worker clones share the immutable program.
  void set_compiled_preds(std::shared_ptr<const PredicateProgram> program) {
    compiled_preds_ = std::move(program);
  }

  bool CanRunMorselParallel() const override {
    return child_->CanRunMorselParallel();
  }
  OperatorPtr CloneForWorker() override;
  void AbsorbWorker(Operator& worker) override;
  void EnterParallelMode() override;
  void FinalizeParallelCharges() override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  void CloseImpl() override;

 private:
  FilterOp(const FilterOp& primary, OperatorPtr child);

  OperatorPtr child_;
  std::vector<Predicate> preds_;
  std::shared_ptr<const PredicateProgram> compiled_preds_;
  EvalScratch scratch_;
};

/// Projects the child's output to a (sub)set of its columns, reordering.
/// Rewrites the caller's batch in place: each row is rebuilt in a reused
/// scratch buffer and swapped in (O(1)), so projection adds no intermediate
/// batch and no per-row allocation in steady state.
class ProjectOp final : public Operator {
 public:
  ProjectOp(OperatorPtr child, RowLayout output);

  bool CanRunMorselParallel() const override {
    return child_->CanRunMorselParallel();
  }
  OperatorPtr CloneForWorker() override;
  void AbsorbWorker(Operator& worker) override;
  void EnterParallelMode() override;
  void FinalizeParallelCharges() override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  void CloseImpl() override;

 private:
  ProjectOp(const ProjectOp& primary, OperatorPtr child);

  OperatorPtr child_;
  std::vector<int> projection_;
  Row scratch_;
};

/// In-memory hash join (Grace accounting when either side spills): builds on
/// the right input, probes with a batch of left rows per dispatch. Equi-join
/// keys are column pairs; `residual` predicates are evaluated on the
/// concatenated row. Rows with a NULL in any join key never match (SQL
/// equality semantics); in outer mode a NULL-keyed probe row still survives
/// as a padded row.
///
/// Parallel build: when the runtime grants threads and the build side is
/// morsel-parallel, Open drains it with worker pipelines into thread-local
/// (hash, row) spools, then partitions them into `threads` hash tables by
/// hash modulus — each partition built by one worker, touching disjoint
/// rows. Probing (serial or parallel) looks up h % partitions first. With
/// one partition the layout and probe order are the serial engine's.
///
/// Parallel probe: the probe side is the streamed input, so the join itself
/// clones for morsel parallelism; clones share the built partitions
/// read-only. The Grace/IO charge is deferred to the region's merge point
/// and computed on summed probe-row counts — identical to the serial charge.
class HashJoinOp final : public Operator {
 public:
  /// `left_outer` preserves unmatched probe rows, padding the build side's
  /// columns with NULLs.
  HashJoinOp(OperatorPtr left, OperatorPtr right,
             std::vector<std::pair<ColId, ColId>> keys,
             std::vector<Predicate> residual, const ColumnCatalog* columns,
             IoAccountant* io, bool left_outer = false);

  /// Compiled-backend injection for the residual conjunction (compiled
  /// against the concatenated left|right layout). Worker clones share it.
  void set_compiled_residual(std::shared_ptr<const PredicateProgram> program) {
    compiled_residual_ = std::move(program);
  }

  bool CanRunMorselParallel() const override {
    return left_->CanRunMorselParallel();
  }
  OperatorPtr CloneForWorker() override;
  void AbsorbWorker(Operator& worker) override;
  void EnterParallelMode() override;
  void FinalizeParallelCharges() override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  void CloseImpl() override;

 private:
  /// The build side, hash-partitioned. parts.size() is 1 in serial builds
  /// and the worker count in parallel builds; a key with hash h lives in
  /// parts[h % parts.size()]. Immutable once built (shared read-only by
  /// probe clones).
  struct BuildTable {
    std::vector<std::unordered_multimap<size_t, Row>> parts;
    int64_t rows() const {
      int64_t n = 0;
      for (const auto& p : parts) n += static_cast<int64_t>(p.size());
      return n;
    }
  };

  HashJoinOp(const HashJoinOp& primary, OperatorPtr left);
  Status BuildSerial();
  Status BuildParallel(int workers);
  void ChargeAtProbeEos();

  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<std::pair<ColId, ColId>> keys_;
  std::vector<Predicate> residual_;
  std::shared_ptr<const PredicateProgram> compiled_residual_;
  EvalScratch scratch_;
  const ColumnCatalog* columns_;
  IoAccountant* io_;

  std::vector<int> left_key_idx_;
  std::vector<int> right_key_idx_;
  std::shared_ptr<BuildTable> build_ AGGVIEW_LOCK_FREE(
      "written only inside BuildParallel's ParallelFor (disjoint partitions); "
      "the barrier publishes it, immutable once shared with probe clones");
  int64_t right_rows_ = 0;
  int64_t left_rows_ = 0;
  // Probe state: the current input batch and the row of it being matched
  // (a pointer into probe_, stable until the next batch is pulled).
  RowBatch probe_{1};
  int probe_pos_ = 0;
  const Row* current_left_ = nullptr;
  std::vector<const Row*> matches_;
  size_t match_pos_ = 0;
  bool charged_ = false;
  bool left_outer_ = false;
  bool emitted_for_left_ = false;
  bool padded_for_left_ = false;
};

/// Block-nested-loop join: materializes the inner (right) input, then one
/// pass over it per block of outer pages. `inner_pages_per_pass` overrides
/// the page count charged per pass (the base table's full page count when
/// the inner is a bare table scan); pass 0 to derive it from the
/// materialized rows. `charge_materialize` adds the one-time write of the
/// materialized inner. Runs serial (not morsel-parallel): its per-pass IO
/// accounting is block-order-dependent, and plans route large probe sides
/// to the hash join.
class NestedLoopJoinOp final : public Operator {
 public:
  NestedLoopJoinOp(OperatorPtr left, OperatorPtr right,
                   std::vector<Predicate> preds, const ColumnCatalog* columns,
                   IoAccountant* io, double inner_pages_per_pass,
                   bool charge_materialize, bool left_outer = false);

 protected:
  Status OpenImpl() override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  void CloseImpl() override;

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<Predicate> preds_;
  const ColumnCatalog* columns_;
  IoAccountant* io_;
  double inner_pages_per_pass_;
  bool charge_materialize_;

  std::vector<Row> inner_;
  RowBatch outer_{1};
  int outer_pos_ = 0;
  const Row* current_left_ = nullptr;
  size_t inner_pos_ = 0;
  int64_t left_rows_ = 0;
  bool charged_ = false;

  // CPU fast path: when some conjuncts are equi-joins, the materialized
  // inner is hash-indexed on those columns so each outer row probes a
  // bucket instead of the whole inner. Purely an in-memory matter — the
  // charged IO is the block-nested-loop formula either way. NULL keys
  // never probe (matching the predicate-eval semantics of the slow path).
  std::vector<int> left_key_idx_;
  std::vector<int> right_key_idx_;
  std::vector<Predicate> residual_;
  std::unordered_multimap<size_t, size_t> index_;  // key hash -> inner row
  std::vector<size_t> probe_matches_;
  size_t probe_pos_ = 0;
  bool use_index_ = false;
  bool left_outer_ = false;
  bool emitted_for_left_ = false;
  bool padded_for_left_ = false;
};

/// Sort-merge join over equi-join keys (plus residual predicates).
/// Materializes and sorts both inputs at Open, charging external-sort IO on
/// actual sizes; Next emits one batch of the merge output per call. NULL
/// join keys sort first and are skipped by the merge, so they never match
/// (SQL equality semantics). A pipeline breaker on both sides; runs serial
/// so sort tie-breaking (and hence emission order) matches the serial
/// engine exactly.
class SortMergeJoinOp final : public Operator {
 public:
  SortMergeJoinOp(OperatorPtr left, OperatorPtr right,
                  std::vector<std::pair<ColId, ColId>> keys,
                  std::vector<Predicate> residual,
                  const ColumnCatalog* columns, IoAccountant* io);

 protected:
  Status OpenImpl() override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  void CloseImpl() override;

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<std::pair<ColId, ColId>> keys_;
  std::vector<Predicate> residual_;
  const ColumnCatalog* columns_;
  IoAccountant* io_;

  std::vector<int> left_key_idx_;
  std::vector<int> right_key_idx_;
  std::vector<Row> lrows_;
  std::vector<Row> rrows_;
  size_t li_ = 0, ri_ = 0;
  // Current key-equal block being emitted.
  size_t block_l_ = 0, block_l_end_ = 0, block_r_begin_ = 0, block_r_end_ = 0;
  size_t block_r_ = 0;
  bool in_block_ = false;
};

/// Final ORDER BY: materializes its input at Open, sorts by the keys, and
/// charges external-sort IO on the actual size. Next copies out one sorted
/// slice per call. A pipeline breaker; the input drain stays serial so
/// stable_sort sees the serial arrival order and equal-key rows keep their
/// deterministic order.
class SortOp final : public Operator {
 public:
  SortOp(OperatorPtr child, std::vector<OrderKey> keys,
         const ColumnCatalog* columns, IoAccountant* io);

 protected:
  Status OpenImpl() override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  void CloseImpl() override;

 private:
  OperatorPtr child_;
  std::vector<OrderKey> keys_;
  const ColumnCatalog* columns_;
  IoAccountant* io_;
  std::vector<int> key_idx_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

/// Hash aggregation implementing a GroupBySpec: grouping, aggregate
/// accumulators, HAVING. Consumes its child at Open, accumulating a whole
/// input batch per pull. A scalar aggregate (empty grouping) over zero input
/// rows produces exactly one row, with COUNT = 0 and SUM/MIN/MAX/AVG = NULL
/// (SQL semantics).
///
/// The pipeline breaker of parallel plans: when the runtime grants threads
/// and the child pipeline is morsel-parallel, Open drains it with worker
/// pipelines into *thread-local* group tables (no shared mutable state on
/// the hot path), then merges the partial tables in worker order on the
/// driver — partial accumulators of the same group fold together with
/// AggAccumulator::Merge, the execution-time form of the decomposable-
/// aggregate combines (COUNT partials merge with kCountSum's empty-is-0
/// semantics; MEDIAN merges exactly by sample concatenation). The spill
/// charge is computed on the summed input cardinality, identical to serial.
class HashAggregateOp final : public Operator {
 public:
  HashAggregateOp(OperatorPtr child, GroupBySpec spec,
                  const ColumnCatalog* columns, IoAccountant* io);

  /// Compiled-backend injection for the HAVING conjunction (compiled against
  /// the output layout: grouping columns + aggregate outputs).
  void set_compiled_having(std::shared_ptr<const PredicateProgram> program) {
    compiled_having_ = std::move(program);
  }

 protected:
  Status OpenImpl() override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  void CloseImpl() override;

 private:
  struct Group {
    std::vector<AggAccumulator> accs;
  };
  using GroupMap = std::unordered_map<Row, Group, RowHash, RowEq>;

  /// Drains `src` into `groups`, accumulating every row; adds the consumed
  /// row count to `input_rows`. Runs once serially or once per worker.
  Status Accumulate(Operator* src, const std::vector<int>& group_idx,
                    const std::vector<std::vector<int>>& arg_idx,
                    GroupMap* groups, int64_t* input_rows);

  OperatorPtr child_;
  GroupBySpec spec_;
  std::shared_ptr<const PredicateProgram> compiled_having_;
  EvalScratch scratch_;
  const ColumnCatalog* columns_;
  IoAccountant* io_;

  std::vector<Row> results_;
  size_t pos_ = 0;
};

}  // namespace aggview

#endif  // AGGVIEW_EXEC_OPERATORS_H_
