#ifndef AGGVIEW_EXEC_OPERATORS_H_
#define AGGVIEW_EXEC_OPERATORS_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "algebra/query.h"
#include "common/result.h"
#include "storage/io_accountant.h"
#include "storage/table.h"

namespace aggview {

struct OpStats;

/// Volcano-style physical operator: Open / Next / Close. Operators charge
/// the IoAccountant with the same page-granularity formulas the cost model
/// uses, evaluated on *actual* (not estimated) cardinalities, so measured IO
/// is the ground truth the estimates are judged against.
///
/// The public Open/Next/Close entry points are non-virtual: when a stats
/// sink is installed (set_stats) they time each call and count produced
/// rows before dispatching to the virtual *Impl methods; with no sink they
/// dispatch directly, so observability costs nothing when off.
class Operator {
 public:
  virtual ~Operator() = default;

  Status Open();
  /// Produces the next row; returns false at end of stream.
  Result<bool> Next(Row* out);
  void Close();

  const RowLayout& layout() const { return layout_; }

  /// Installs the runtime-stats sink (owned by the caller, typically a
  /// RuntimeStatsCollector). Must be set before Open.
  void set_stats(OpStats* stats) { stats_ = stats; }
  const OpStats* stats() const { return stats_; }

 protected:
  virtual Status OpenImpl() = 0;
  virtual Result<bool> NextImpl(Row* out) = 0;
  virtual void CloseImpl() {}

  /// Charges `pages` reads/writes to `io` (when non-null) and mirrors the
  /// charge into the stats sink (when installed), so EXPLAIN ANALYZE can
  /// attribute IO to the operator that incurred it.
  void ChargeRead(IoAccountant* io, int64_t pages);
  void ChargeWrite(IoAccountant* io, int64_t pages);
  /// Counts one input row consumed (no-op without a sink).
  void CountInput(int64_t rows = 1);

  RowLayout layout_;
  OpStats* stats_ = nullptr;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Scans an in-memory table, applying a filter and projecting. When
/// `charge_io` is set, Open charges one read per table page (a BNL inner
/// scan is created uncharged because the join charges per-pass rescans).
class TableScanOp final : public Operator {
 public:
  /// `rowid_col`, when valid, names a synthetic output column materialized
  /// as the scanned row's position (the internal tuple id).
  TableScanOp(const Table* table, RowLayout table_layout,
              std::vector<Predicate> filter, RowLayout output,
              IoAccountant* io, bool charge_io,
              ColId rowid_col = kInvalidColId);

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;

 private:
  static constexpr int kRowIdIndex = -2;

  const Table* table_;
  RowLayout table_layout_;
  std::vector<Predicate> filter_;
  std::vector<int> projection_;  // table-layout indices per output column
  IoAccountant* io_;
  bool charge_io_;
  int64_t pos_ = 0;
};

/// Applies residual predicates; layout passes through.
class FilterOp final : public Operator {
 public:
  FilterOp(OperatorPtr child, std::vector<Predicate> preds);

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  void CloseImpl() override;

 private:
  OperatorPtr child_;
  std::vector<Predicate> preds_;
};

/// Projects the child's output to a (sub)set of its columns, reordering.
class ProjectOp final : public Operator {
 public:
  ProjectOp(OperatorPtr child, RowLayout output);

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  void CloseImpl() override;

 private:
  OperatorPtr child_;
  std::vector<int> projection_;
};

/// In-memory hash join (Grace accounting when either side spills): builds on
/// the right input, probes with the left. Equi-join keys are column pairs;
/// `residual` predicates are evaluated on the concatenated row. Rows with a
/// NULL in any join key never match (SQL equality semantics); in outer mode
/// a NULL-keyed probe row still survives as a padded row.
class HashJoinOp final : public Operator {
 public:
  /// `left_outer` preserves unmatched probe rows, padding the build side's
  /// columns with NULLs.
  HashJoinOp(OperatorPtr left, OperatorPtr right,
             std::vector<std::pair<ColId, ColId>> keys,
             std::vector<Predicate> residual, const ColumnCatalog* columns,
             IoAccountant* io, bool left_outer = false);

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  void CloseImpl() override;

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<std::pair<ColId, ColId>> keys_;
  std::vector<Predicate> residual_;
  const ColumnCatalog* columns_;
  IoAccountant* io_;

  std::vector<int> left_key_idx_;
  std::vector<int> right_key_idx_;
  std::unordered_multimap<size_t, Row> build_;
  int64_t right_rows_ = 0;
  int64_t left_rows_ = 0;
  Row current_left_;
  bool have_left_ = false;
  std::vector<const Row*> matches_;
  size_t match_pos_ = 0;
  bool charged_ = false;
  bool left_outer_ = false;
  bool emitted_for_left_ = false;
  bool padded_for_left_ = false;
};

/// Block-nested-loop join: materializes the inner (right) input, then one
/// pass over it per block of outer pages. `inner_pages_per_pass` overrides
/// the page count charged per pass (the base table's full page count when
/// the inner is a bare table scan); pass 0 to derive it from the
/// materialized rows. `charge_materialize` adds the one-time write of the
/// materialized inner.
class NestedLoopJoinOp final : public Operator {
 public:
  NestedLoopJoinOp(OperatorPtr left, OperatorPtr right,
                   std::vector<Predicate> preds, const ColumnCatalog* columns,
                   IoAccountant* io, double inner_pages_per_pass,
                   bool charge_materialize, bool left_outer = false);

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  void CloseImpl() override;

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<Predicate> preds_;
  const ColumnCatalog* columns_;
  IoAccountant* io_;
  double inner_pages_per_pass_;
  bool charge_materialize_;

  std::vector<Row> inner_;
  Row current_left_;
  bool have_left_ = false;
  size_t inner_pos_ = 0;
  int64_t left_rows_ = 0;
  bool charged_ = false;

  // CPU fast path: when some conjuncts are equi-joins, the materialized
  // inner is hash-indexed on those columns so each outer row probes a
  // bucket instead of the whole inner. Purely an in-memory matter — the
  // charged IO is the block-nested-loop formula either way. NULL keys
  // never probe (matching the predicate-eval semantics of the slow path).
  std::vector<int> left_key_idx_;
  std::vector<int> right_key_idx_;
  std::vector<Predicate> residual_;
  std::unordered_multimap<size_t, size_t> index_;  // key hash -> inner row
  std::vector<size_t> probe_matches_;
  size_t probe_pos_ = 0;
  bool use_index_ = false;
  bool left_outer_ = false;
  bool emitted_for_left_ = false;
  bool padded_for_left_ = false;
};

/// Sort-merge join over equi-join keys (plus residual predicates).
/// Materializes and sorts both inputs at Open, charging external-sort IO on
/// actual sizes. NULL join keys sort first and are skipped by the merge, so
/// they never match (SQL equality semantics).
class SortMergeJoinOp final : public Operator {
 public:
  SortMergeJoinOp(OperatorPtr left, OperatorPtr right,
                  std::vector<std::pair<ColId, ColId>> keys,
                  std::vector<Predicate> residual,
                  const ColumnCatalog* columns, IoAccountant* io);

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  void CloseImpl() override;

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<std::pair<ColId, ColId>> keys_;
  std::vector<Predicate> residual_;
  const ColumnCatalog* columns_;
  IoAccountant* io_;

  std::vector<int> left_key_idx_;
  std::vector<int> right_key_idx_;
  std::vector<Row> lrows_;
  std::vector<Row> rrows_;
  size_t li_ = 0, ri_ = 0;
  // Current key-equal block being emitted.
  size_t block_l_ = 0, block_l_end_ = 0, block_r_begin_ = 0, block_r_end_ = 0;
  size_t block_r_ = 0;
  bool in_block_ = false;
};

/// Final ORDER BY: materializes its input at Open, sorts by the keys, and
/// charges external-sort IO on the actual size.
class SortOp final : public Operator {
 public:
  SortOp(OperatorPtr child, std::vector<OrderKey> keys,
         const ColumnCatalog* columns, IoAccountant* io);

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  void CloseImpl() override;

 private:
  OperatorPtr child_;
  std::vector<OrderKey> keys_;
  const ColumnCatalog* columns_;
  IoAccountant* io_;
  std::vector<int> key_idx_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

/// Hash aggregation implementing a GroupBySpec: grouping, aggregate
/// accumulators, HAVING. Consumes its child at Open. A scalar aggregate
/// (empty grouping) over zero input rows produces exactly one row, with
/// COUNT = 0 and SUM/MIN/MAX/AVG = NULL (SQL semantics).
class HashAggregateOp final : public Operator {
 public:
  HashAggregateOp(OperatorPtr child, GroupBySpec spec,
                  const ColumnCatalog* columns, IoAccountant* io);

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  void CloseImpl() override;

 private:
  OperatorPtr child_;
  GroupBySpec spec_;
  const ColumnCatalog* columns_;
  IoAccountant* io_;

  std::vector<Row> results_;
  size_t pos_ = 0;
};

}  // namespace aggview

#endif  // AGGVIEW_EXEC_OPERATORS_H_
