#include "exec/exec_context.h"

#include <cstdlib>

#include "exec/thread_pool.h"

namespace aggview {

ExecContext ExecContext::Default() {
  ExecContext ctx;
  if (const char* env = std::getenv("AGGVIEW_TEST_BATCH_SIZE")) {
    int v = std::atoi(env);
    if (v > 0) ctx.batch_size = v;
  }
  if (const char* env = std::getenv("AGGVIEW_TEST_THREADS")) {
    int v = std::atoi(env);
    if (v > 0) ctx.threads = v;
  }
  return ctx;
}

ExecRuntime::ExecRuntime(int threads, int64_t morsel_rows,
                         ThreadPool* external_pool)
    : threads_(threads > 0 ? threads : 1),
      morsel_rows_(morsel_rows > 0 ? morsel_rows : 1),
      external_(external_pool) {}

ExecRuntime::~ExecRuntime() = default;

ThreadPool* ExecRuntime::pool() {
  if (external_ != nullptr) return external_;
  if (owned_ == nullptr) owned_ = std::make_unique<ThreadPool>(threads_);
  return owned_.get();
}

}  // namespace aggview
