#include "exec/exec_context.h"

#include <cerrno>
#include <cstdlib>
#include <string>

#include "exec/thread_pool.h"

namespace aggview {

int EnvKnob(const char* name, int fallback, int max_value) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  long v = std::strtol(env, &end, 10);
  // Garbage (no digits, or trailing junk like "8x") falls back rather than
  // silently becoming 0; nonpositive values have no meaning for a thread
  // count or batch size and fall back too. A value too large for long is
  // still a genuine (huge) number and clamps like any other oversized value.
  if (end == env || *end != '\0') return fallback;
  if (errno == ERANGE) return v > 0 ? max_value : fallback;
  if (v <= 0) return fallback;
  if (v > max_value) return max_value;
  return static_cast<int>(v);
}

const char* ExecBackendName(ExecBackend backend) {
  switch (backend) {
    case ExecBackend::kInterpret:
      return "interpret";
    case ExecBackend::kCompiled:
      return "compiled";
  }
  return "interpret";
}

bool ParseExecBackend(const char* text, ExecBackend* out) {
  if (text == nullptr) return false;
  const std::string s(text);
  if (s == "interpret") {
    *out = ExecBackend::kInterpret;
    return true;
  }
  if (s == "compiled") {
    *out = ExecBackend::kCompiled;
    return true;
  }
  return false;
}

ExecBackend BackendEnvKnob(const char* name, ExecBackend fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  // Like EnvKnob, garbage falls back rather than silently picking an engine:
  // only the exact backend names select one.
  ExecBackend parsed = fallback;
  if (!ParseExecBackend(env, &parsed)) return fallback;
  return parsed;
}

const char* BytecodeVerifyModeName(BytecodeVerifyMode mode) {
  switch (mode) {
    case BytecodeVerifyMode::kOff:
      return "off";
    case BytecodeVerifyMode::kOn:
      return "on";
    case BytecodeVerifyMode::kParanoid:
      return "paranoid";
  }
  return "on";
}

bool ParseBytecodeVerifyMode(const char* text, BytecodeVerifyMode* out) {
  if (text == nullptr) return false;
  const std::string s(text);
  if (s == "off") {
    *out = BytecodeVerifyMode::kOff;
    return true;
  }
  if (s == "on") {
    *out = BytecodeVerifyMode::kOn;
    return true;
  }
  if (s == "paranoid") {
    *out = BytecodeVerifyMode::kParanoid;
    return true;
  }
  return false;
}

BytecodeVerifyMode BytecodeVerifyEnvKnob(const char* name,
                                         BytecodeVerifyMode fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  // Garbage falls back rather than silently disabling verification: only
  // the exact mode names select one.
  BytecodeVerifyMode parsed = fallback;
  if (!ParseBytecodeVerifyMode(env, &parsed)) return fallback;
  return parsed;
}

ExecDefaults ExecDefaults::FromEnv() {
  ExecDefaults d;
  d.batch_size =
      EnvKnob("AGGVIEW_TEST_BATCH_SIZE", d.batch_size, kMaxEnvBatchSize);
  d.threads = EnvKnob("AGGVIEW_TEST_THREADS", d.threads, kMaxEnvThreads);
  d.backend = BackendEnvKnob("AGGVIEW_TEST_BACKEND", d.backend);
  d.bytecode_verify =
      BytecodeVerifyEnvKnob("AGGVIEW_VERIFY_BYTECODE", d.bytecode_verify);
  return d;
}

ExecContext ExecContext::Default() {
  ExecDefaults d = ExecDefaults::FromEnv();
  ExecContext ctx;
  ctx.batch_size = d.batch_size;
  ctx.threads = d.threads;
  ctx.backend = d.backend;
  ctx.bytecode_verify = d.bytecode_verify;
  return ctx;
}

ExecRuntime::ExecRuntime(int threads, int64_t morsel_rows,
                         ThreadPool* external_pool)
    : threads_(threads > 0 ? threads : 1),
      morsel_rows_(morsel_rows > 0 ? morsel_rows : 1),
      external_(external_pool) {}

ExecRuntime::~ExecRuntime() = default;

ThreadPool* ExecRuntime::pool() {
  if (external_ != nullptr) return external_;
  if (owned_ == nullptr) owned_ = std::make_unique<ThreadPool>(threads_);
  return owned_.get();
}

}  // namespace aggview
