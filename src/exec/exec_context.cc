#include "exec/exec_context.h"

#include <cerrno>
#include <cstdlib>

#include "exec/thread_pool.h"

namespace aggview {

int EnvKnob(const char* name, int fallback, int max_value) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  long v = std::strtol(env, &end, 10);
  // Garbage (no digits, or trailing junk like "8x") falls back rather than
  // silently becoming 0; nonpositive values have no meaning for a thread
  // count or batch size and fall back too. A value too large for long is
  // still a genuine (huge) number and clamps like any other oversized value.
  if (end == env || *end != '\0') return fallback;
  if (errno == ERANGE) return v > 0 ? max_value : fallback;
  if (v <= 0) return fallback;
  if (v > max_value) return max_value;
  return static_cast<int>(v);
}

ExecContext ExecContext::Default() {
  ExecContext ctx;
  ctx.batch_size =
      EnvKnob("AGGVIEW_TEST_BATCH_SIZE", ctx.batch_size, kMaxEnvBatchSize);
  ctx.threads = EnvKnob("AGGVIEW_TEST_THREADS", ctx.threads, kMaxEnvThreads);
  return ctx;
}

ExecRuntime::ExecRuntime(int threads, int64_t morsel_rows,
                         ThreadPool* external_pool)
    : threads_(threads > 0 ? threads : 1),
      morsel_rows_(morsel_rows > 0 ? morsel_rows : 1),
      external_(external_pool) {}

ExecRuntime::~ExecRuntime() = default;

ThreadPool* ExecRuntime::pool() {
  if (external_ != nullptr) return external_;
  if (owned_ == nullptr) owned_ = std::make_unique<ThreadPool>(threads_);
  return owned_.get();
}

}  // namespace aggview
