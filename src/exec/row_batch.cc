#include "exec/row_batch.h"

#include <cstdlib>

namespace aggview {

ExecOptions ExecOptions::Default() {
  ExecOptions options;
  if (const char* env = std::getenv("AGGVIEW_TEST_BATCH_SIZE")) {
    int v = std::atoi(env);
    if (v > 0) options.batch_size = v;
  }
  return options;
}

}  // namespace aggview
