#ifndef AGGVIEW_EXEC_EXEC_CONTEXT_H_
#define AGGVIEW_EXEC_EXEC_CONTEXT_H_

#include <cstdint>
#include <memory>

#include "exec/row_batch.h"

namespace aggview {

class DataflowVerifier;
class IoAccountant;
class RuntimeStatsCollector;
class ThreadPool;
struct TransformationAudit;

/// Default number of rows per morsel — the unit of work a parallel scan hands
/// to a worker. Large enough that claiming one (an atomic fetch-add) is noise
/// against scanning it, small enough that a skewed pipeline rebalances.
inline constexpr int64_t kDefaultMorselRows = 16384;

/// Upper clamp for the AGGVIEW_TEST_THREADS environment override: far above
/// any real core count, low enough that a typo cannot spawn thousands of
/// workers.
inline constexpr int kMaxEnvThreads = 256;

/// Upper clamp for the AGGVIEW_TEST_BATCH_SIZE environment override (1M rows
/// per batch; larger only wastes memory without changing semantics).
inline constexpr int kMaxEnvBatchSize = 1 << 20;

/// Reads environment variable `name` as a positive decimal integer knob.
/// Returns `fallback` when the variable is unset, empty, not a complete
/// decimal number, or zero/negative (a nonpositive thread count or batch size
/// has no meaning); values above `max_value` clamp to `max_value`. Never
/// returns a value outside [1, max_value] unless it returns `fallback`
/// verbatim.
int EnvKnob(const char* name, int fallback, int max_value);

/// Which execution engine runs the physical plan.
///
/// kInterpret is the Volcano batch interpreter: every operator is lowered
/// one-to-one, predicates and scalar expressions evaluate by virtual-dispatch
/// tree walks. kCompiled lowers predicate/expression trees to flat typed
/// bytecode (src/exec/compile/) and fuses the hottest pipeline shapes
/// (scan->filter->project, scan->filter->aggregate) into single operators;
/// anything the compiler does not cover falls back operator-by-operator to
/// the interpreter, so every plan executes under either backend and the two
/// produce byte-identical results (the differential fuzzer's backend axis
/// enforces this).
enum class ExecBackend {
  kInterpret,
  kCompiled,
};

/// "interpret" / "compiled" — the spelling AGGVIEW_TEST_BACKEND accepts and
/// EXPLAIN ANALYZE prints.
const char* ExecBackendName(ExecBackend backend);

/// Parses `text` as an ExecBackend name. Returns false (leaving `out`
/// untouched) for anything but the exact strings "interpret" / "compiled".
bool ParseExecBackend(const char* text, ExecBackend* out);

/// Reads environment variable `name` as an ExecBackend knob, with the same
/// contract as EnvKnob: unset, empty, or unparseable values fall back.
ExecBackend BackendEnvKnob(const char* name, ExecBackend fallback);

/// How much static checking every compiled program gets at lowering time
/// (exec/compile/verifier.h). Verification is a one-time lowering cost: the
/// program that executes per row is byte-identical under every mode.
///
/// kOff skips verification (exists so the bench can isolate its cost; not a
/// supported production mode). kOn — the default — runs both stages on every
/// program lowered under ExecBackend::kCompiled: well-formedness (stack
/// discipline, jump topology, operand bounds, canonical lanes, NULL
/// conventions) and translation validation against the source tree (abstract
/// co-interpretation plus witness co-evaluation); a rejected program falls
/// back to the interpreter with a recorded reason, never a crash. kParanoid
/// additionally re-proves each certificate by recompiling the source and
/// requiring a byte-identical program, and widens the witness sweep.
enum class BytecodeVerifyMode {
  kOff,
  kOn,
  kParanoid,
};

/// "off" / "on" / "paranoid" — the spelling AGGVIEW_VERIFY_BYTECODE accepts.
const char* BytecodeVerifyModeName(BytecodeVerifyMode mode);

/// Parses `text` as a BytecodeVerifyMode name. Returns false (leaving `out`
/// untouched) for anything but the exact mode names.
bool ParseBytecodeVerifyMode(const char* text, BytecodeVerifyMode* out);

/// Reads environment variable `name` as a BytecodeVerifyMode knob, with the
/// same contract as EnvKnob: unset, empty, or unparseable values fall back.
BytecodeVerifyMode BytecodeVerifyEnvKnob(const char* name,
                                         BytecodeVerifyMode fallback);

/// The one shared surface resolving the execution-default environment knobs
/// (AGGVIEW_TEST_THREADS, AGGVIEW_TEST_BATCH_SIZE, AGGVIEW_TEST_BACKEND).
/// ExecContext::Default(), SessionOptions::Default() and
/// ServerOptions::Default() all read their defaults from here, so a CI lane
/// that exports one of the knobs steers the executor, the session layer, the
/// server and the fuzzer identically.
struct ExecDefaults {
  int threads = 1;
  int batch_size = kDefaultBatchSize;
  ExecBackend backend = ExecBackend::kInterpret;
  /// AGGVIEW_VERIFY_BYTECODE steers how hard lowering checks each compiled
  /// program (off / on / paranoid; CI's paranoid lane exports it).
  BytecodeVerifyMode bytecode_verify = BytecodeVerifyMode::kOn;

  static ExecDefaults FromEnv();
};

/// Everything ExecutePlan needs beyond the plan itself, with fluent setters:
///
///   ExecutePlan(plan, query,
///               ExecContext{}.WithThreads(8).WithBatchSize(1024)
///                            .WithStats(&collector));
///
/// Replaces the old positional tail (io, stats, options); the deprecated thin
/// overloads forward here. Plain aggregate struct: copyable, no ownership —
/// the pointers (io, stats, pool) must outlive the execution.
struct ExecContext {
  /// Capacity of every batch flowing through the operator tree (1 degrades
  /// to row-at-a-time Volcano behaviour).
  int batch_size = kDefaultBatchSize;
  /// Intra-query parallelism: number of pipeline instances running
  /// morsel-parallel regions. 1 executes serially on the calling thread.
  int threads = 1;
  /// Rows per scan morsel.
  int64_t morsel_rows = kDefaultMorselRows;
  /// Execution engine: the Volcano batch interpreter or the compiling
  /// backend (fused pipelines over flat predicate/expression bytecode).
  ExecBackend backend = ExecBackend::kInterpret;
  /// IO page charge sink; may be null (uncharged execution).
  IoAccountant* io = nullptr;
  /// EXPLAIN ANALYZE collector; null runs uninstrumented (no clocks).
  RuntimeStatsCollector* stats = nullptr;
  /// External worker pool to run on (e.g. a Session's). Null lets the
  /// executor create a private pool for the query when threads > 1.
  ThreadPool* pool = nullptr;
  /// Debug self-verification mode: when set, every operator checks each
  /// produced batch against the verifier's static dataflow facts (NULLs only
  /// in maybe/always columns, values inside the derived domains), and the
  /// executor checks every node's total row count against the provable
  /// [lo, hi] after the drain. The verifier must have been built for the
  /// same plan that is executed, and must outlive the execution.
  const DataflowVerifier* verify = nullptr;
  /// How hard lowering statically checks each compiled program before it is
  /// allowed to execute (kCompiled only; the interpreter runs no bytecode).
  BytecodeVerifyMode bytecode_verify = BytecodeVerifyMode::kOn;
  /// Optional certificate sink: when set, lowering appends one
  /// CompilationCertificate per compiled program (verified or rejected) to
  /// audit->compilations, clearing the previous execution's entries first.
  /// Must outlive the lowering call.
  TransformationAudit* audit = nullptr;

  ExecContext& WithBatchSize(int n) {
    batch_size = n > 0 ? n : 1;
    return *this;
  }
  ExecContext& WithThreads(int n) {
    threads = n > 0 ? n : 1;
    return *this;
  }
  ExecContext& WithMorselRows(int64_t n) {
    morsel_rows = n > 0 ? n : 1;
    return *this;
  }
  ExecContext& WithBackend(ExecBackend b) {
    backend = b;
    return *this;
  }
  ExecContext& WithIo(IoAccountant* accountant) {
    io = accountant;
    return *this;
  }
  ExecContext& WithStats(RuntimeStatsCollector* collector) {
    stats = collector;
    return *this;
  }
  ExecContext& WithPool(ThreadPool* p) {
    pool = p;
    return *this;
  }
  ExecContext& WithVerify(const DataflowVerifier* verifier) {
    verify = verifier;
    return *this;
  }
  ExecContext& WithBytecodeVerify(BytecodeVerifyMode mode) {
    bytecode_verify = mode;
    return *this;
  }
  ExecContext& WithAudit(TransformationAudit* sink) {
    audit = sink;
    return *this;
  }

  /// The standard context: default batch size, serial execution and the
  /// interpreting backend, unless the environment overrides it —
  /// AGGVIEW_TEST_BATCH_SIZE (CI's degenerate one-row-batch runs),
  /// AGGVIEW_TEST_THREADS (CI's TSan job runs the whole suite at 8 threads
  /// to drive every query through the parallel paths) and
  /// AGGVIEW_TEST_BACKEND (CI's compiled lane runs the whole suite on the
  /// compiling backend). All three resolve through ExecDefaults::FromEnv().
  static ExecContext Default();
};

/// The runtime state one operator tree shares across its parallel regions:
/// thread budget, morsel geometry, and the worker pool. Lowering creates one
/// per execution and hands every operator a shared_ptr; worker clones share
/// the primary's. The pool is created lazily (on the driver thread, strictly
/// before any worker runs) so serial executions never pay for threads.
class ExecRuntime {
 public:
  ExecRuntime(int threads, int64_t morsel_rows, ThreadPool* external_pool);
  ~ExecRuntime();

  int threads() const { return threads_; }
  int64_t morsel_rows() const { return morsel_rows_; }
  bool parallel() const { return threads_ > 1; }

  /// The pool to run ParallelFor on. Driver thread only.
  ThreadPool* pool();

 private:
  int threads_;
  int64_t morsel_rows_;
  ThreadPool* external_;
  std::unique_ptr<ThreadPool> owned_;
};

}  // namespace aggview

#endif  // AGGVIEW_EXEC_EXEC_CONTEXT_H_
