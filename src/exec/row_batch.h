#ifndef AGGVIEW_EXEC_ROW_BATCH_H_
#define AGGVIEW_EXEC_ROW_BATCH_H_

#include <vector>

#include "types/value.h"

namespace aggview {

/// Default number of rows per execution batch. Large enough to amortize the
/// per-dispatch costs (virtual call, clock reads, counter updates) down to
/// noise, small enough that a batch of the widest rows stays cache-resident.
/// 1 degrades to row-at-a-time Volcano behaviour (useful for boundary-bug
/// hunting and as the baseline in throughput experiments); the environment
/// variable AGGVIEW_TEST_BATCH_SIZE overrides the default through
/// ExecContext::Default() (CI runs the whole test suite at batch size 1 to
/// shake out off-by-one bugs at batch boundaries that size-1024 runs never
/// hit).
inline constexpr int kDefaultBatchSize = 1024;

/// A fixed-capacity buffer of rows, the unit of flow between operators.
///
/// The batch owns `capacity` Row slots for its whole lifetime; Clear() only
/// resets the fill count, so a slot's heap storage (the Value vector) is
/// reused across batches and the per-row allocation cost of the row-at-a-time
/// engine is amortized away. AppendRow() hands out the next slot cleared;
/// callers must check full() first.
class RowBatch {
 public:
  explicit RowBatch(int capacity = kDefaultBatchSize)
      : rows_(static_cast<size_t>(capacity > 0 ? capacity : 1)),
        capacity_(capacity > 0 ? capacity : 1) {}

  int capacity() const { return capacity_; }
  int size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ >= capacity_; }

  /// Resets the fill count; row storage is kept for reuse.
  void Clear() { size_ = 0; }

  /// Returns the next free slot, emptied. Undefined when full().
  Row& AppendRow() {
    Row& row = rows_[static_cast<size_t>(size_++)];
    row.clear();
    return row;
  }

  /// Drops the most recently appended row (e.g. a join candidate that failed
  /// its residual predicate after being materialized in place).
  void PopRow() { --size_; }

  /// Shrinks the fill count to `n` rows (selection compaction: a filter
  /// swaps survivors to the front and truncates). No-op when n >= size().
  void Truncate(int n) {
    if (n < size_) size_ = n;
  }

  Row& row(int i) { return rows_[static_cast<size_t>(i)]; }
  const Row& row(int i) const { return rows_[static_cast<size_t>(i)]; }

 private:
  std::vector<Row> rows_;
  int size_ = 0;
  int capacity_;
};

}  // namespace aggview

#endif  // AGGVIEW_EXEC_ROW_BATCH_H_
