#ifndef AGGVIEW_EXEC_COMPILE_FUSED_OPS_H_
#define AGGVIEW_EXEC_COMPILE_FUSED_OPS_H_

#include <atomic>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "algebra/query.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "exec/compile/expr_compiler.h"
#include "exec/operators.h"
#include "expr/aggregate.h"
#include "exec/row_batch.h"
#include "storage/io_accountant.h"
#include "storage/table.h"

namespace aggview {

/// The compiled backend's scan->filter->project kernel: one loop reads table
/// rows, evaluates the compiled scan filter and the compiled residual filter
/// directly on the table row (no intermediate batch between the scan and the
/// filter), and projects survivors straight into the output batch. Replaces
/// the interpreter's TableScanOp(+FilterOp+ProjectOp) pipeline for a
/// kFilter-over-kScan (or bare kScan) plan shape whose predicates compile
/// against the table layout.
///
/// Morsel protocol, IO charges and output row order are byte-identical to
/// the interpreted pipeline: the same atomic morsel dispenser, the same
/// Open-time page charge, and row-order iteration within each claimed
/// morsel. When the kernel covers a kFilter node *and* its kScan child, the
/// operator itself is registered (and dataflow-verified) as the filter node;
/// set_scan_stats installs a second stats block that receives the scan
/// node's counters (rows examined, rows passing the scan filter, pages), so
/// EXPLAIN ANALYZE attribution per plan node is unchanged by fusion.
class FusedScanFilterOp final : public Operator {
 public:
  /// `scan_filter` and `filter` are evaluated against `table_layout`;
  /// `filter` may be empty (bare-scan fusion). `rowid_col`, when valid,
  /// names a synthetic output column materialized as the scanned row's
  /// position.
  FusedScanFilterOp(const Table* table, RowLayout table_layout,
                    std::shared_ptr<const PredicateProgram> scan_filter,
                    std::shared_ptr<const PredicateProgram> filter,
                    RowLayout output, IoAccountant* io, bool charge_io,
                    ColId rowid_col = kInvalidColId);

  /// Interior stats block for the fused-away kScan node (null when the
  /// kernel covers only the scan node itself, whose counters then land in
  /// the operator's own stats block like an interpreted TableScanOp's).
  void set_scan_stats(OpStats* stats) { scan_stats_ = stats; }

  bool CanRunMorselParallel() const override { return true; }
  OperatorPtr CloneForWorker() override;
  void AbsorbWorker(Operator& worker) override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextBatchImpl(RowBatch* out) override;

 private:
  static constexpr int kRowIdIndex = -2;

  /// Shared morsel cursor, identical to TableScanOp's: workers fetch-add to
  /// claim disjoint row-id ranges.
  struct MorselDispenser {
    std::atomic<int64_t> next AGGVIEW_LOCK_FREE("atomic fetch-add claim"){0};
    int64_t morsel_rows = kDefaultMorselRows;
  };

  struct WorkerCloneTag {};
  FusedScanFilterOp(const FusedScanFilterOp& primary, WorkerCloneTag);

  const Table* table_;
  RowLayout table_layout_;
  std::shared_ptr<const PredicateProgram> scan_filter_;
  std::shared_ptr<const PredicateProgram> filter_;
  std::vector<int> projection_;  // table-layout indices per output column
  IoAccountant* io_;
  bool charge_io_;
  OpStats* scan_stats_ = nullptr;
  std::unique_ptr<OpStats> owned_scan_stats_;  // worker clones
  std::shared_ptr<MorselDispenser> morsels_;
  int64_t pos_ = 0;
  int64_t pos_end_ = 0;
  EvalScratch scratch_;
};

/// The compiled backend's scan->filter->aggregate kernel: one serial loop
/// reads table rows, evaluates the compiled scan and residual filters, and
/// accumulates qualifying rows straight into the group table — no scan
/// batch, no key-row rebuild per input row. Grouping with exactly one key
/// column runs on an INT64 fast lane (an identity-hashed int64 map); the
/// first non-integer non-NULL runtime key migrates every group into the
/// generic Row-keyed table and continues there, so grouping semantics
/// (including cross-type 3 == 3.0 key equality and NULLs grouping together)
/// are exactly the interpreter's.
///
/// Aggregate state is the interpreter's own AggAccumulator, HAVING runs as a
/// compiled program over the output row, and the Open-time scan page charge
/// plus the hash-aggregate spill formula are applied at the same points with
/// the same operands as the interpreted pipeline — results and charged IO
/// are byte-identical. Serial only: lowering picks this kernel when the
/// execution is single-threaded and falls back to HashAggregateOp over a
/// fused scan otherwise.
class CompiledAggregateOp final : public Operator {
 public:
  struct Spec {
    const Table* table = nullptr;
    RowLayout table_layout;
    /// Both evaluated on the raw table row; either may be empty.
    std::shared_ptr<const PredicateProgram> scan_filter;
    std::shared_ptr<const PredicateProgram> filter;
    /// Evaluated on the output row (grouping columns + aggregate outputs).
    std::shared_ptr<const PredicateProgram> having;
    GroupBySpec group_by;
    /// Table-layout index per grouping column / per aggregate argument.
    std::vector<int> group_idx;
    std::vector<std::vector<int>> arg_idx;
    /// Row width (bytes) of the aggregate's input layout in the interpreted
    /// pipeline (the fused-away child's output layout) — the spill charge
    /// must be computed on the same operand.
    int64_t input_row_width = 0;
    bool charge_scan = true;
  };

  CompiledAggregateOp(Spec spec, const ColumnCatalog* columns,
                      IoAccountant* io);

  /// Interior stats blocks for the fused-away kScan / kFilter nodes (either
  /// may stay null when the plan shape lacks the node or runs unobserved).
  void set_scan_stats(OpStats* stats) { scan_stats_ = stats; }
  void set_filter_stats(OpStats* stats) { filter_stats_ = stats; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  void CloseImpl() override;

 private:
  struct Group {
    std::vector<AggAccumulator> accs;
  };
  using GroupMap = std::unordered_map<Row, Group, RowHash, RowEq>;
  /// INT64 key fast lane. std::hash<int64_t> avoids the generic path's
  /// double-normalizing Value::Hash plus FNV fold per row.
  using IntGroupMap = std::unordered_map<int64_t, Group>;

  Group MakeGroup() const;
  void MigrateToGeneric(IntGroupMap* fast, std::optional<Group>* null_group,
                        GroupMap* generic) const;

  Spec spec_;
  const ColumnCatalog* columns_;
  IoAccountant* io_;
  OpStats* scan_stats_ = nullptr;
  OpStats* filter_stats_ = nullptr;
  EvalScratch scratch_;
  std::vector<Row> results_;
  size_t pos_ = 0;
};

}  // namespace aggview

#endif  // AGGVIEW_EXEC_COMPILE_FUSED_OPS_H_
