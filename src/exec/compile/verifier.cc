#include "exec/compile/verifier.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <map>
#include <unordered_map>
#include <utility>

#include "common/string_util.h"
#include "common/thread_annotations.h"
#include "exec/compile/disasm.h"

namespace aggview {

namespace {

using Op = ExprProgram::Op;
using CmpLane = PredicateProgram::CmpLane;
using Insn = ExprProgram::Insn;
using Operand = PredicateProgram::Operand;
using Conjunct = PredicateProgram::Conjunct;

// ------------------------------------------------------------------ stage 1

/// Maps an opcode to its arithmetic operator; false for non-arithmetic ops
/// *and* for raw bytes outside the opcode range (corrupted programs).
bool ArithOf(Op op, ArithOp* out) {
  switch (op) {
    case Op::kAddInt:
    case Op::kAddDouble:
    case Op::kAddGeneric:
      *out = ArithOp::kAdd;
      return true;
    case Op::kSubInt:
    case Op::kSubDouble:
    case Op::kSubGeneric:
      *out = ArithOp::kSub;
      return true;
    case Op::kMulInt:
    case Op::kMulDouble:
    case Op::kMulGeneric:
      *out = ArithOp::kMul;
      return true;
    case Op::kDivDouble:
    case Op::kDivGeneric:
      *out = ArithOp::kDiv;
      return true;
    default:
      return false;
  }
}

/// ArithExpr::ResultType at the type level: division always promotes,
/// integer arithmetic stays integral, everything else is double.
DataType ArithResultType(ArithOp op, DataType l, DataType r) {
  if (op == ArithOp::kDiv) return DataType::kDouble;
  if (l == DataType::kInt64 && r == DataType::kInt64) return DataType::kInt64;
  return DataType::kDouble;
}

/// The exact opcode ExprProgram::CompileInto emits for `op` over operands of
/// the given static types — the canonical lane. The runtime guards make any
/// other lane behaviourally identical (it falls through to GenericArith), so
/// a non-canonical lane in a program is evidence of corruption the guards
/// alone would silently absorb.
Op CanonicalArithOp(ArithOp op, DataType lt, DataType rt) {
  bool both_int = lt == DataType::kInt64 && rt == DataType::kInt64;
  bool both_double = lt == DataType::kDouble && rt == DataType::kDouble;
  switch (op) {
    case ArithOp::kAdd:
      return both_int ? Op::kAddInt
                      : (both_double ? Op::kAddDouble : Op::kAddGeneric);
    case ArithOp::kSub:
      return both_int ? Op::kSubInt
                      : (both_double ? Op::kSubDouble : Op::kSubGeneric);
    case ArithOp::kMul:
      return both_int ? Op::kMulInt
                      : (both_double ? Op::kMulDouble : Op::kMulGeneric);
    case ArithOp::kDiv:
      // Division always promotes; there is no INT64 lane for it.
      return both_double ? Op::kDivDouble : Op::kDivGeneric;
  }
  return Op::kAddGeneric;
}

Status ExprErr(const ExprProgram& prog, const RowLayout* layout,
               const ColumnCatalog* columns, int pc, const std::string& msg) {
  return Status::Internal(
      StrFormat("bytecode verifier: %s at pc %d\n%s", msg.c_str(), pc,
                DisassembleExpr(prog, layout, columns).c_str()));
}

/// Stage-1 core: one linear pass with a DataType per abstract stack slot.
/// COALESCE's kJumpIfNotNull contributes a saved copy of the stack at the
/// jump, merged back in when the scan reaches the target; the merged result
/// slot takes the jump edge's (inner) type, because that is the type the
/// compiler's lane selection above the COALESCE uses
/// (CoalesceExpr::ResultType == inner type).
Status AnalyzeExprProgram(const ExprProgram& prog, const RowLayout& layout,
                          const ColumnCatalog& columns,
                          ExprProgramShape* shape) {
  const std::vector<Insn>& code = prog.code();
  const std::vector<Value>& consts = prog.consts();
  const int n = static_cast<int>(code.size());
  std::vector<DataType> stack;
  std::map<int, std::vector<std::vector<DataType>>> pending;
  int max_depth = 0;
  auto err = [&](int pc, const std::string& msg) {
    return ExprErr(prog, &layout, &columns, pc, msg);
  };

  for (int pc = 0; pc <= n; ++pc) {
    auto merge = pending.find(pc);
    if (merge != pending.end()) {
      for (const std::vector<DataType>& saved : merge->second) {
        if (saved.size() != stack.size()) {
          return err(pc, StrFormat(
                             "stack depth mismatch at jump target "
                             "(fall-through %d, jump edge %d)",
                             static_cast<int>(stack.size()),
                             static_cast<int>(saved.size())));
        }
        for (size_t i = 0; i + 1 < saved.size(); ++i) {
          if (saved[i] != stack[i]) {
            return err(pc, "stack slot type mismatch at jump target");
          }
        }
      }
      // The merged result takes the *first* jump edge's type: the earliest
      // jump to a shared target is the outermost COALESCE, and the lane
      // selection above the merge uses CoalesceExpr::ResultType — the
      // outermost inner branch's type.
      if (!merge->second.empty() && !merge->second.front().empty()) {
        stack.back() = merge->second.front().back();
      }
      pending.erase(merge);
    }
    if (pc == n) break;

    const Insn& in = code[static_cast<size_t>(pc)];
    switch (in.op) {
      case Op::kLoadCol:
        if (in.a < 0 || in.a >= layout.size()) {
          return err(pc, StrFormat("column slot %d outside the input layout "
                                   "(%d columns)",
                                   in.a, layout.size()));
        }
        stack.push_back(
            columns.type(layout.columns()[static_cast<size_t>(in.a)]));
        break;
      case Op::kLoadConst:
        if (in.a < 0 || static_cast<size_t>(in.a) >= consts.size()) {
          return err(pc, StrFormat("constant index %d outside the pool "
                                   "(%d constants)",
                                   in.a, static_cast<int>(consts.size())));
        }
        // A NULL constant types as STRING, matching LiteralExpr::ResultType
        // (Value::type() of NULL), so lane canonicalization below mirrors
        // the compiler bit for bit.
        stack.push_back(consts[static_cast<size_t>(in.a)].type());
        break;
      case Op::kJumpIfNotNull: {
        if (stack.empty()) return err(pc, "jump reads an empty stack");
        if (in.a <= pc) {
          return err(pc, "backward or self jump (loops are illegal)");
        }
        if (in.a > n) return err(pc, "jump target outside the program");
        if (in.a == pc + 1) {
          return err(pc, "no-op jump (the COALESCE shape skips the pop)");
        }
        if (pc + 1 >= n || code[static_cast<size_t>(pc + 1)].op != Op::kPop) {
          return err(pc,
                     "jump_if_not_null not followed by pop (violates the "
                     "compiled COALESCE NULL convention)");
        }
        pending[in.a].push_back(stack);
        break;
      }
      case Op::kPop:
        if (in.a != 0) return err(pc, "pop carries a nonzero operand field");
        if (stack.empty()) return err(pc, "pop underflows the stack");
        stack.pop_back();
        break;
      default: {
        ArithOp aop;
        if (!ArithOf(in.op, &aop)) return err(pc, "unknown opcode");
        if (in.a != 0) {
          return err(pc, "arithmetic carries a nonzero operand field");
        }
        if (stack.size() < 2) {
          return err(pc, "arithmetic underflows the stack");
        }
        DataType rt = stack.back();
        stack.pop_back();
        DataType lt = stack.back();
        stack.pop_back();
        Op canonical = CanonicalArithOp(aop, lt, rt);
        if (in.op != canonical) {
          return err(pc, StrFormat(
                             "non-canonical lane %s over (%s, %s) operands "
                             "(compiler emits %s; a retyped lane is "
                             "corruption the runtime guards would mask)",
                             OpMnemonic(in.op).c_str(), DataTypeName(lt),
                             DataTypeName(rt),
                             OpMnemonic(canonical).c_str()));
        }
        stack.push_back(ArithResultType(aop, lt, rt));
        break;
      }
    }
    max_depth = std::max(max_depth, static_cast<int>(stack.size()));
  }
  if (stack.size() != 1) {
    return err(n, StrFormat("program exits with %d stack values (exactly one "
                            "result required)",
                            static_cast<int>(stack.size())));
  }
  if (shape != nullptr) {
    shape->result_type = stack.back();
    shape->max_stack_depth = max_depth;
  }
  return Status::OK();
}

Status PredErr(const PredicateProgram& prog, const RowLayout* layout,
               const ColumnCatalog* columns, int conjunct,
               const std::string& msg) {
  return Status::Internal(
      StrFormat("bytecode verifier: %s at conjunct %d\n%s", msg.c_str(),
                conjunct, DisassemblePredicate(prog, layout, columns).c_str()));
}

/// Static type of one conjunct operand: a slot's declared type, a nested
/// program's abstract result type, or the constant's own type. For an
/// untampered program this equals the source expression's ResultType.
DataType OperandStaticType(const Operand& o, const RowLayout& layout,
                           const ColumnCatalog& columns,
                           const std::vector<ExprProgramShape>& shapes) {
  if (o.col >= 0) {
    return columns.type(layout.columns()[static_cast<size_t>(o.col)]);
  }
  if (o.prog >= 0) return shapes[static_cast<size_t>(o.prog)].result_type;
  return o.constant.type();
}

bool ValidCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
    case CompareOp::kNe:
    case CompareOp::kLt:
    case CompareOp::kLe:
    case CompareOp::kGt:
    case CompareOp::kGe:
      return true;
  }
  return false;
}

Status AnalyzePredicateProgram(const PredicateProgram& prog,
                               const RowLayout& layout,
                               const ColumnCatalog& columns,
                               std::vector<ExprProgramShape>* shapes_out,
                               int* max_stack_depth) {
  std::vector<ExprProgramShape> shapes;
  int max_depth = 0;
  for (size_t p = 0; p < prog.programs().size(); ++p) {
    ExprProgramShape shape;
    Status s = AnalyzeExprProgram(prog.programs()[p], layout, columns, &shape);
    if (!s.ok()) {
      return Status::Internal(StrFormat("prog<%d>: ", static_cast<int>(p)) +
                              s.message());
    }
    max_depth = std::max(max_depth, shape.max_stack_depth);
    shapes.push_back(shape);
  }

  const std::vector<Conjunct>& conjuncts = prog.conjuncts();
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    const Conjunct& c = conjuncts[i];
    const int ci = static_cast<int>(i);
    auto err = [&](const std::string& msg) {
      return PredErr(prog, &layout, &columns, ci, msg);
    };
    for (const Operand* o : {&c.lhs, &c.rhs}) {
      if (o->col >= 0 && o->prog >= 0) {
        return err("ambiguous operand (both slot and program forms active)");
      }
      if (o->col >= 0 && o->col >= layout.size()) {
        return err(StrFormat("operand slot %d outside the input layout "
                             "(%d columns)",
                             o->col, layout.size()));
      }
      if (o->prog >= 0 &&
          static_cast<size_t>(o->prog) >= prog.programs().size()) {
        return err(StrFormat("operand references prog<%d> but only %d "
                             "programs exist",
                             o->prog, static_cast<int>(prog.programs().size())));
      }
    }
    if (!ValidCompareOp(c.op)) {
      return err(StrFormat("corrupted comparison operator (%d)",
                           static_cast<int>(c.op)));
    }

    // Canonical lane: recompute exactly what PredicateProgram::Compile
    // selects for these operand types, including the DOUBLE-lane constant
    // normalization and the col-vs-constant promotions. Any other lane is
    // behaviourally masked by the runtime guards — and therefore rejected
    // as corruption rather than tolerated as a slowdown.
    DataType lt = OperandStaticType(c.lhs, layout, columns, shapes);
    DataType rt = OperandStaticType(c.rhs, layout, columns, shapes);
    CmpLane expected;
    if (lt == DataType::kInt64 && rt == DataType::kInt64) {
      expected = CmpLane::kInt64;
    } else if (lt == DataType::kString && rt == DataType::kString) {
      expected = CmpLane::kString;
    } else if (lt != DataType::kString && rt != DataType::kString) {
      expected = CmpLane::kDouble;
      for (const Operand* o : {&c.lhs, &c.rhs}) {
        if (o->col < 0 && o->prog < 0 && o->constant.is_int()) {
          return err(
              "integer constant not normalized to double on the DOUBLE lane");
        }
      }
    } else {
      expected = CmpLane::kGeneric;
    }
    const bool rhs_const = c.rhs.col < 0 && c.rhs.prog < 0;
    if (c.lhs.col >= 0 && rhs_const) {
      if (expected == CmpLane::kInt64 && c.rhs.constant.is_int()) {
        expected = CmpLane::kInt64ColConst;
      } else if (expected == CmpLane::kDouble && c.rhs.constant.is_double()) {
        expected = CmpLane::kDoubleColConst;
      }
    }
    if (c.lane != expected) {
      return err(StrFormat("non-canonical comparison lane %s over (%s, %s) "
                           "operands (compiler emits %s)",
                           CmpLaneName(c.lane).c_str(), DataTypeName(lt),
                           DataTypeName(rt), CmpLaneName(expected).c_str()));
    }
  }
  if (shapes_out != nullptr) *shapes_out = std::move(shapes);
  if (max_stack_depth != nullptr) *max_stack_depth = max_depth;
  return Status::OK();
}

// ------------------------------------------------- stage 2a: abstract facts

/// Nullability lattice join (kNever ⊔ kAlways = kMaybe).
Nullability JoinNull(Nullability a, Nullability b) {
  return a == b ? a : Nullability::kMaybe;
}

ColumnFacts LiteralFacts(const Value& v) {
  ColumnFacts f;
  f.max_distinct = 1;
  if (v.is_null()) {
    f.null = Nullability::kAlways;
    return f;
  }
  f.null = Nullability::kNever;
  if (v.is_string()) {
    f.has_str_range = true;
    f.min_str = f.max_str = v.AsString();
  } else {
    f.has_range = true;
    f.min = f.max = v.AsNumeric();
  }
  return f;
}

/// Transfer function of one arithmetic node, shared verbatim by the tree
/// and the bytecode abstract interpreters so a faithful translation agrees
/// *exactly*. NULL propagates; intervals combine for add/sub/mul; division
/// drops the interval (the x/0 == 0.0 convention plus a divisor interval
/// spanning zero make a sound quotient interval unbounded).
ColumnFacts ArithFacts(ArithOp op, const ColumnFacts& l, const ColumnFacts& r) {
  ColumnFacts out;
  if (l.null == Nullability::kAlways || r.null == Nullability::kAlways) {
    out.null = Nullability::kAlways;
    return out;
  }
  out.null = (l.null == Nullability::kNever && r.null == Nullability::kNever)
                 ? Nullability::kNever
                 : Nullability::kMaybe;
  if (op != ArithOp::kDiv && l.has_range && r.has_range && !l.has_str_range &&
      !r.has_str_range) {
    out.has_range = true;
    switch (op) {
      case ArithOp::kAdd:
        out.min = l.min + r.min;
        out.max = l.max + r.max;
        break;
      case ArithOp::kSub:
        out.min = l.min - r.max;
        out.max = l.max - r.min;
        break;
      case ArithOp::kMul: {
        double c1 = l.min * r.min, c2 = l.min * r.max;
        double c3 = l.max * r.min, c4 = l.max * r.max;
        out.min = std::min(std::min(c1, c2), std::min(c3, c4));
        out.max = std::max(std::max(c1, c2), std::max(c3, c4));
        break;
      }
      case ArithOp::kDiv:
        break;
    }
  }
  return out;
}

/// Lattice join of the two COALESCE edges (jump edge already stripped to
/// never-NULL by the caller). Symmetric, so the linear interpreter's merge
/// order cannot disagree with the tree's.
ColumnFacts HullFacts(const ColumnFacts& a, const ColumnFacts& b) {
  ColumnFacts out;
  out.null = JoinNull(a.null, b.null);
  if (a.has_range && b.has_range) {
    out.has_range = true;
    out.min = std::min(a.min, b.min);
    out.max = std::max(a.max, b.max);
  }
  if (a.has_str_range && b.has_str_range) {
    out.has_str_range = true;
    out.min_str = std::min(a.min_str, b.min_str);
    out.max_str = std::max(a.max_str, b.max_str);
  }
  return out;
}

ColumnFacts CoalesceFacts(const ColumnFacts& inner, const ColumnFacts& fb) {
  if (inner.null == Nullability::kNever) return inner;
  if (inner.null == Nullability::kAlways) return fb;
  ColumnFacts stripped = inner;
  stripped.null = Nullability::kNever;
  return HullFacts(stripped, fb);
}

bool FactsEqual(const ColumnFacts& a, const ColumnFacts& b) {
  if (a.null != b.null || a.has_range != b.has_range ||
      a.has_str_range != b.has_str_range) {
    return false;
  }
  if (a.has_range && (a.min != b.min || a.max != b.max)) return false;
  if (a.has_str_range && (a.min_str != b.min_str || a.max_str != b.max_str)) {
    return false;
  }
  return true;
}

std::string FactsToString(const ColumnFacts& f) {
  std::string out = NullabilityName(f.null);
  if (f.has_range) out += StrFormat(" [%g, %g]", f.min, f.max);
  if (f.has_str_range) {
    out += " ['" + f.min_str + "', '" + f.max_str + "']";
  }
  return out;
}

/// Structural abstract interpretation of the source tree.
Result<ColumnFacts> AbstractEvalTree(const ScalarExpr& expr,
                                     const RowLayout& layout,
                                     const std::vector<ColumnFacts>& env) {
  switch (expr.kind()) {
    case ScalarExpr::Kind::kColumnRef: {
      int idx = layout.IndexOf(static_cast<const ColumnRefExpr&>(expr).id());
      if (idx < 0) {
        return Status::Internal(
            "bytecode verifier: source tree references a column outside the "
            "layout");
      }
      return env[static_cast<size_t>(idx)];
    }
    case ScalarExpr::Kind::kLiteral:
      return LiteralFacts(static_cast<const LiteralExpr&>(expr).value());
    case ScalarExpr::Kind::kArith: {
      const auto& arith = static_cast<const ArithExpr&>(expr);
      AGGVIEW_ASSIGN_OR_RETURN(ColumnFacts l,
                               AbstractEvalTree(*arith.lhs(), layout, env));
      AGGVIEW_ASSIGN_OR_RETURN(ColumnFacts r,
                               AbstractEvalTree(*arith.rhs(), layout, env));
      return ArithFacts(arith.op(), l, r);
    }
    case ScalarExpr::Kind::kCoalesce: {
      const auto& coalesce = static_cast<const CoalesceExpr&>(expr);
      AGGVIEW_ASSIGN_OR_RETURN(
          ColumnFacts inner, AbstractEvalTree(*coalesce.inner(), layout, env));
      AGGVIEW_ASSIGN_OR_RETURN(
          ColumnFacts fb, AbstractEvalTree(*coalesce.fallback(), layout, env));
      return CoalesceFacts(inner, fb);
    }
  }
  return Status::Internal("bytecode verifier: unknown expression kind");
}

/// Linear abstract interpretation of the bytecode over the same lattice.
/// Requires a stage-1-verified program (indices and stack discipline hold).
/// Dead COALESCE edges are pruned exactly as the tree side prunes them: a
/// never-NULL inner value makes the fall-through unreachable, an always-NULL
/// one drops the jump edge — so a faithful translation agrees exactly.
Result<ColumnFacts> AbstractEvalProgram(const ExprProgram& prog,
                                        const std::vector<ColumnFacts>& env) {
  const std::vector<Insn>& code = prog.code();
  const int n = static_cast<int>(code.size());
  std::vector<ColumnFacts> stack;
  std::map<int, std::vector<std::vector<ColumnFacts>>> pending;
  bool reachable = true;
  for (int pc = 0; pc <= n; ++pc) {
    auto merge = pending.find(pc);
    if (merge != pending.end()) {
      for (std::vector<ColumnFacts>& saved : merge->second) {
        if (!reachable) {
          stack = std::move(saved);
          reachable = true;
        } else {
          stack.back() = HullFacts(stack.back(), saved.back());
        }
      }
      pending.erase(merge);
    }
    if (pc == n) break;
    if (!reachable) continue;

    const Insn& in = code[static_cast<size_t>(pc)];
    switch (in.op) {
      case Op::kLoadCol:
        stack.push_back(env[static_cast<size_t>(in.a)]);
        break;
      case Op::kLoadConst:
        stack.push_back(LiteralFacts(prog.consts()[static_cast<size_t>(in.a)]));
        break;
      case Op::kJumpIfNotNull: {
        if (stack.back().null == Nullability::kNever) {
          pending[in.a].push_back(stack);
          reachable = false;  // the pop + fallback path is dead
        } else if (stack.back().null == Nullability::kAlways) {
          // Jump never taken; the always-NULL value is about to be popped.
        } else {
          std::vector<ColumnFacts> taken = stack;
          taken.back().null = Nullability::kNever;
          pending[in.a].push_back(std::move(taken));
        }
        break;
      }
      case Op::kPop:
        stack.pop_back();
        break;
      default: {
        ArithOp aop;
        if (!ArithOf(in.op, &aop)) {
          return Status::Internal("bytecode verifier: unknown opcode reached "
                                  "abstract evaluation");
        }
        ColumnFacts r = stack.back();
        stack.pop_back();
        ColumnFacts l = stack.back();
        stack.pop_back();
        stack.push_back(ArithFacts(aop, l, r));
        break;
      }
    }
  }
  if (!reachable || stack.size() != 1) {
    return Status::Internal(
        "bytecode verifier: abstract evaluation lost the result slot");
  }
  return stack.back();
}

// ------------------------------------------ stage 2b: witness co-evaluation

void CollectLiterals(const ScalarExpr& expr, std::vector<Value>* out) {
  switch (expr.kind()) {
    case ScalarExpr::Kind::kLiteral: {
      const Value& v = static_cast<const LiteralExpr&>(expr).value();
      if (!v.is_null()) out->push_back(v);
      return;
    }
    case ScalarExpr::Kind::kArith: {
      const auto& arith = static_cast<const ArithExpr&>(expr);
      CollectLiterals(*arith.lhs(), out);
      CollectLiterals(*arith.rhs(), out);
      return;
    }
    case ScalarExpr::Kind::kCoalesce: {
      const auto& coalesce = static_cast<const CoalesceExpr&>(expr);
      CollectLiterals(*coalesce.inner(), out);
      CollectLiterals(*coalesce.fallback(), out);
      return;
    }
    case ScalarExpr::Kind::kColumnRef:
      return;
  }
}

void AppendUnique(std::vector<Value>* out, Value v, size_t cap) {
  if (out->size() >= cap) return;
  for (const Value& existing : *out) {
    if (existing.type() == v.type() && !existing.is_null() && !v.is_null() &&
        existing.Compare(v) == 0) {
      return;
    }
    if (existing.is_null() && v.is_null()) return;
  }
  out->push_back(std::move(v));
}

/// Candidate witness values of one slot — the same domain construction the
/// small-scope prover uses for its skeleton columns (verify/skeleton.h):
/// the base values 0/1, every query literal of the slot's type plus its ±1
/// neighbours (so comparisons are exercised on, just below and just above
/// their boundary), one slot-distinguishing value (so a retargeted slot
/// operand cannot hide behind identical candidate sets), clamped into the
/// slot's known value domain, plus NULL when the facts admit it.
std::vector<Value> SlotCandidates(int slot, DataType type,
                                  const ColumnFacts& facts,
                                  const std::vector<Value>& literals) {
  constexpr size_t kMaxPerSlot = 8;  // kMaxDomainValues of the prover
  std::vector<Value> out;
  if (facts.null == Nullability::kAlways) {
    out.push_back(Value::Null());
    return out;
  }
  auto in_range = [&](double v) {
    return !facts.has_range || (v >= facts.min && v <= facts.max);
  };
  switch (type) {
    case DataType::kInt64: {
      std::vector<int64_t> ints = {0, 1, 17 + slot};
      for (const Value& lit : literals) {
        if (lit.is_int()) {
          ints.push_back(lit.AsInt() - 1);
          ints.push_back(lit.AsInt());
          ints.push_back(lit.AsInt() + 1);
        }
      }
      if (facts.has_range) {
        ints.push_back(static_cast<int64_t>(facts.min));
        ints.push_back(static_cast<int64_t>(facts.max));
      }
      for (int64_t v : ints) {
        if (in_range(static_cast<double>(v))) {
          AppendUnique(&out, Value::Int(v), kMaxPerSlot);
        }
      }
      break;
    }
    case DataType::kDouble: {
      std::vector<double> vals = {0.0, 1.0, 0.5 + slot};
      for (const Value& lit : literals) {
        if (!lit.is_string()) {
          vals.push_back(lit.AsNumeric() - 0.5);
          vals.push_back(lit.AsNumeric());
          vals.push_back(lit.AsNumeric() + 0.5);
        }
      }
      if (facts.has_range) {
        vals.push_back(facts.min);
        vals.push_back(facts.max);
      }
      for (double v : vals) {
        if (in_range(v)) AppendUnique(&out, Value::Real(v), kMaxPerSlot);
      }
      break;
    }
    case DataType::kString: {
      AppendUnique(&out, Value::Str(""), kMaxPerSlot);
      AppendUnique(&out, Value::Str("a"), kMaxPerSlot);
      std::string tag = std::to_string(slot);
      tag.insert(0, 1, 's');
      AppendUnique(&out, Value::Str(std::move(tag)), kMaxPerSlot);
      for (const Value& lit : literals) {
        if (lit.is_string()) AppendUnique(&out, lit, kMaxPerSlot);
      }
      break;
    }
  }
  if (out.empty()) out.push_back(type == DataType::kString ? Value::Str("")
                                                           : Value::Int(0));
  if (facts.null != Nullability::kNever) {
    AppendUnique(&out, Value::Null(), kMaxPerSlot + 1);
  }
  return out;
}

/// Enumerates witness rows and applies `check` to each. The full cross
/// product runs when it fits the budget ("exhaustively co-evaluate on small
/// witness vectors"); otherwise a deterministic subset still covers every
/// candidate of every slot (per-slot sweeps against a fixed base row) and
/// fills the remaining budget with an odometer prefix.
Status ForEachWitness(const std::vector<std::vector<Value>>& candidates,
                      int max_rows,
                      const std::function<Status(const Row&)>& check,
                      int* rows_out) {
  const size_t slots = candidates.size();
  int rows = 0;
  auto run = [&](const Row& row) -> Status {
    ++rows;
    return check(row);
  };

  double total = 1.0;
  for (const auto& c : candidates) {
    total *= static_cast<double>(c.size());
  }
  if (total <= static_cast<double>(max_rows)) {
    Row row(slots);
    std::vector<size_t> idx(slots, 0);
    for (;;) {
      for (size_t s = 0; s < slots; ++s) row[s] = candidates[s][idx[s]];
      Status st = run(row);
      if (!st.ok()) return st;
      size_t s = 0;
      while (s < slots && ++idx[s] == candidates[s].size()) {
        idx[s] = 0;
        ++s;
      }
      if (s == slots || slots == 0) break;
    }
  } else {
    Row base(slots);
    for (size_t s = 0; s < slots; ++s) base[s] = candidates[s][0];
    Status st = run(base);
    if (!st.ok()) return st;
    for (size_t s = 0; s < slots && rows < max_rows; ++s) {
      Row row = base;
      for (size_t v = 1; v < candidates[s].size() && rows < max_rows; ++v) {
        row[s] = candidates[s][v];
        st = run(row);
        if (!st.ok()) return st;
      }
    }
    // Odometer prefix over the remaining budget: varies slot combinations
    // the sweeps never reach (two NULLs at once, two boundary values, ...).
    std::vector<size_t> idx(slots, 0);
    Row row(slots);
    while (rows < max_rows) {
      size_t s = 0;
      while (s < slots && ++idx[s] == candidates[s].size()) {
        idx[s] = 0;
        ++s;
      }
      if (s == slots || slots == 0) break;
      for (size_t k = 0; k < slots; ++k) row[k] = candidates[k][idx[k]];
      st = run(row);
      if (!st.ok()) return st;
    }
  }
  if (rows_out != nullptr) *rows_out += rows;
  return Status::OK();
}

/// Type-exact value identity, the divergence test of witness co-evaluation:
/// Int(3) differs from Real(3.0) even though Value::Compare orders them
/// equal — a lane corruption that changes the result *type* must reject.
bool ValuesIdentical(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (a.type() != b.type()) return false;
  if (a.is_int()) return a.AsInt() == b.AsInt();
  if (a.is_double()) {
    return a.AsDouble() == b.AsDouble() ||
           (std::isnan(a.AsDouble()) && std::isnan(b.AsDouble()));
  }
  return a.AsString() == b.AsString();
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].is_null() ? "NULL" : row[i].ToString();
  }
  return out + ")";
}

/// Slots the source tree reads. A slot neither the tree nor the
/// (stage-1-clean) program loads cannot influence either evaluation, so
/// witness rows pin it to one value instead of sweeping its whole domain —
/// on wide layouts this is the difference between verification being a
/// rounding error of prepare time and dominating it.
void MarkTreeSlots(const ScalarExpr& expr, const RowLayout& layout,
                   std::vector<bool>* referenced) {
  switch (expr.kind()) {
    case ScalarExpr::Kind::kColumnRef: {
      int idx = layout.IndexOf(static_cast<const ColumnRefExpr&>(expr).id());
      if (idx >= 0 && static_cast<size_t>(idx) < referenced->size()) {
        (*referenced)[static_cast<size_t>(idx)] = true;
      }
      return;
    }
    case ScalarExpr::Kind::kArith: {
      const auto& arith = static_cast<const ArithExpr&>(expr);
      MarkTreeSlots(*arith.lhs(), layout, referenced);
      MarkTreeSlots(*arith.rhs(), layout, referenced);
      return;
    }
    case ScalarExpr::Kind::kCoalesce: {
      const auto& coalesce = static_cast<const CoalesceExpr&>(expr);
      MarkTreeSlots(*coalesce.inner(), layout, referenced);
      MarkTreeSlots(*coalesce.fallback(), layout, referenced);
      return;
    }
    case ScalarExpr::Kind::kLiteral:
      return;
  }
}

/// Slots the program loads. A mutated slot operand always lands here, so the
/// union with the tree's slots keeps every retargeting divergence visible.
void MarkProgramSlots(const ExprProgram& prog, std::vector<bool>* referenced) {
  for (const Insn& insn : prog.code()) {
    if (insn.op == Op::kLoadCol && insn.a >= 0 &&
        static_cast<size_t>(insn.a) < referenced->size()) {
      (*referenced)[static_cast<size_t>(insn.a)] = true;
    }
  }
}

std::vector<std::vector<Value>> BuildCandidates(
    const RowLayout& layout, const ColumnCatalog& columns,
    const std::vector<ColumnFacts>& slot_facts,
    const std::vector<Value>& literals,
    const std::vector<bool>& referenced) {
  static const std::vector<Value> kNoLiterals;
  std::vector<std::vector<Value>> candidates;
  candidates.reserve(static_cast<size_t>(layout.size()));
  for (int s = 0; s < layout.size(); ++s) {
    DataType type = columns.type(layout.columns()[static_cast<size_t>(s)]);
    if (referenced[static_cast<size_t>(s)]) {
      candidates.push_back(SlotCandidates(
          s, type, slot_facts[static_cast<size_t>(s)], literals));
    } else {
      // Pinned slot: one candidate, constructed without the literal lists.
      candidates.push_back(SlotCandidates(
          s, type, slot_facts[static_cast<size_t>(s)], kNoLiterals));
      candidates.back().resize(1);
    }
  }
  return candidates;
}

std::string RenderConjunction(const std::vector<Predicate>& preds,
                              const ColumnCatalog& columns) {
  if (preds.empty()) return "true";
  std::string out;
  for (size_t i = 0; i < preds.size(); ++i) {
    if (i > 0) out += " and ";
    out += preds[i].ToString(columns);
  }
  return out;
}

PredicateTamperHook g_tamper_hook;  // NOLINT(cert-err58-cpp)

// --------------------------------------------------- verification memo
//
// A verdict is a pure function of the program bytes, the source conjunction,
// the layout's column types/nullability, and the mode — so it is memoized
// process-wide on exactly that content, the way a JVM verifies a class once.
// Keys are full serialized content (compared byte for byte on lookup, never
// by hash alone), so a colliding digest cannot smuggle an unverified program
// past the verifier; any tampered byte is a different key.

void AppendBytes(std::string* k, const void* p, size_t n) {
  k->append(static_cast<const char*>(p), n);
}
void AppendI32(std::string* k, int32_t v) { AppendBytes(k, &v, sizeof v); }
void AppendI64(std::string* k, int64_t v) { AppendBytes(k, &v, sizeof v); }

void AppendValueKey(std::string* k, const Value& v) {
  if (v.is_null()) {
    k->push_back('N');
  } else if (v.is_int()) {
    k->push_back('I');
    AppendI64(k, v.AsInt());
  } else if (v.is_double()) {
    k->push_back('D');
    double d = v.AsDouble();
    AppendBytes(k, &d, sizeof d);
  } else {
    k->push_back('S');
    AppendI32(k, static_cast<int32_t>(v.AsString().size()));
    k->append(v.AsString());
  }
}

void AppendExprKey(std::string* k, const ScalarExpr& expr) {
  k->push_back(static_cast<char>(expr.kind()));
  switch (expr.kind()) {
    case ScalarExpr::Kind::kColumnRef:
      AppendI32(k, static_cast<const ColumnRefExpr&>(expr).id());
      return;
    case ScalarExpr::Kind::kLiteral:
      AppendValueKey(k, static_cast<const LiteralExpr&>(expr).value());
      return;
    case ScalarExpr::Kind::kArith: {
      const auto& arith = static_cast<const ArithExpr&>(expr);
      k->push_back(static_cast<char>(arith.op()));
      AppendExprKey(k, *arith.lhs());
      AppendExprKey(k, *arith.rhs());
      return;
    }
    case ScalarExpr::Kind::kCoalesce: {
      const auto& coalesce = static_cast<const CoalesceExpr&>(expr);
      AppendExprKey(k, *coalesce.inner());
      AppendExprKey(k, *coalesce.fallback());
      return;
    }
  }
}

std::string MemoKey(const PredicateProgram& prog,
                    const std::vector<Predicate>& preds,
                    const RowLayout& layout, const ColumnCatalog& columns,
                    BytecodeVerifyMode mode) {
  std::string k;
  k.reserve(256);
  k.push_back(static_cast<char>(mode));
  AppendI32(&k, layout.size());
  for (int s = 0; s < layout.size(); ++s) {
    ColId id = layout.columns()[static_cast<size_t>(s)];
    AppendI32(&k, id);
    k.push_back(static_cast<char>(columns.type(id)));
    k.push_back(columns.nullable(id) ? '\1' : '\0');
  }
  AppendI32(&k, static_cast<int32_t>(prog.conjuncts().size()));
  for (const Conjunct& c : prog.conjuncts()) {
    k.push_back(static_cast<char>(c.op));
    k.push_back(static_cast<char>(c.lane));
    for (const Operand* o : {&c.lhs, &c.rhs}) {
      AppendI32(&k, o->col);
      AppendI32(&k, o->prog);
      AppendValueKey(&k, o->constant);
    }
  }
  AppendI32(&k, static_cast<int32_t>(prog.programs().size()));
  for (const ExprProgram& p : prog.programs()) {
    AppendI32(&k, static_cast<int32_t>(p.code().size()));
    for (const Insn& in : p.code()) {
      k.push_back(static_cast<char>(in.op));
      AppendI32(&k, in.a);
    }
    AppendI32(&k, static_cast<int32_t>(p.consts().size()));
    for (const Value& v : p.consts()) AppendValueKey(&k, v);
  }
  AppendI32(&k, static_cast<int32_t>(preds.size()));
  for (const Predicate& p : preds) {
    k.push_back(static_cast<char>(p.op));
    AppendExprKey(&k, *p.lhs);
    AppendExprKey(&k, *p.rhs);
  }
  return k;
}

/// The memoized part of a certificate: the verdict and its measurements,
/// without the node/kind labels or the rendered listings (those are
/// call-site-specific and cheap to regenerate on demand).
struct MemoVerdict {
  bool verified = false;
  int witness_rows = 0;
  int max_stack_depth = 0;
  std::string rejection;
};

class VerificationMemo {
 public:
  bool Lookup(const std::string& key, MemoVerdict* out) {
    MutexLock lock(&mu_);
    auto it = map_.find(key);
    if (it == map_.end()) return false;
    *out = it->second;
    return true;
  }

  void Insert(std::string key, const MemoVerdict& verdict) {
    MutexLock lock(&mu_);
    // Bounded: a full memo drops everything rather than tracking recency —
    // re-proving a program is always correct, just slower.
    if (map_.size() >= kMaxEntries) map_.clear();
    map_.emplace(std::move(key), verdict);
  }

 private:
  static constexpr size_t kMaxEntries = 1024;
  Mutex mu_;
  std::unordered_map<std::string, MemoVerdict> map_ AGGVIEW_GUARDED_BY(mu_);
};

VerificationMemo& Memo() {
  static VerificationMemo* memo = new VerificationMemo;  // leaky singleton
  return *memo;
}

}  // namespace

// ------------------------------------------------------------- public API

BytecodeVerifyOptions BytecodeVerifyOptions::ForMode(BytecodeVerifyMode mode) {
  BytecodeVerifyOptions opts;
  if (mode == BytecodeVerifyMode::kParanoid) {
    opts.max_witness_rows = 1024;
    opts.reprove = true;
  }
  return opts;
}

Status VerifyWellFormed(const ExprProgram& prog, const RowLayout& layout,
                        const ColumnCatalog& columns, ExprProgramShape* shape) {
  return AnalyzeExprProgram(prog, layout, columns, shape);
}

Status VerifyWellFormed(const PredicateProgram& prog, const RowLayout& layout,
                        const ColumnCatalog& columns, int* max_stack_depth) {
  return AnalyzePredicateProgram(prog, layout, columns, nullptr,
                                 max_stack_depth);
}

std::vector<ColumnFacts> SeedFactsFromCatalog(const RowLayout& layout,
                                              const ColumnCatalog& columns) {
  std::vector<ColumnFacts> facts(static_cast<size_t>(layout.size()));
  for (int s = 0; s < layout.size(); ++s) {
    facts[static_cast<size_t>(s)].null =
        columns.nullable(layout.columns()[static_cast<size_t>(s)])
            ? Nullability::kMaybe
            : Nullability::kNever;
  }
  return facts;
}

Status ValidateTranslation(const ExprProgram& prog, const ScalarExpr& expr,
                           const RowLayout& layout,
                           const ColumnCatalog& columns,
                           const std::vector<ColumnFacts>& slot_facts,
                           const BytecodeVerifyOptions& opts,
                           int* witness_rows) {
  // Witness evaluation of an ill-formed program would be unsafe (stack
  // underflow is UB in Eval); stage 1 gates stage 2 unconditionally.
  AGGVIEW_RETURN_NOT_OK(VerifyWellFormed(prog, layout, columns));

  // 2a: abstract co-interpretation over the dataflow lattice. Identical
  // transfer functions on both sides, so a faithful translation agrees
  // exactly; disagreement is evidence the bytecode computes something else.
  AGGVIEW_ASSIGN_OR_RETURN(ColumnFacts tree_facts,
                           AbstractEvalTree(expr, layout, slot_facts));
  AGGVIEW_ASSIGN_OR_RETURN(ColumnFacts prog_facts,
                           AbstractEvalProgram(prog, slot_facts));
  if (!FactsEqual(tree_facts, prog_facts)) {
    return Status::Internal(StrFormat(
        "bytecode verifier: abstract facts diverge — tree derives %s, "
        "program derives %s\n%s",
        FactsToString(tree_facts).c_str(), FactsToString(prog_facts).c_str(),
        DisassembleExpr(prog, &layout, &columns).c_str()));
  }

  if (opts.reprove) {
    AGGVIEW_ASSIGN_OR_RETURN(ExprProgram recompiled,
                             ExprProgram::Compile(expr, layout, columns));
    if (DisassembleExpr(recompiled, nullptr, nullptr) !=
        DisassembleExpr(prog, nullptr, nullptr)) {
      return Status::Internal(
          "bytecode verifier: paranoid re-proof failed — recompiling the "
          "source yields a different program\n" +
          DisassembleExpr(prog, &layout, &columns));
    }
  }

  // 2b: exhaustive co-evaluation on witness vectors from the column domains,
  // sweeping only the slots either side of the validation reads.
  std::vector<Value> literals;
  CollectLiterals(expr, &literals);
  std::vector<bool> referenced(static_cast<size_t>(layout.size()), false);
  MarkTreeSlots(expr, layout, &referenced);
  MarkProgramSlots(prog, &referenced);
  std::vector<std::vector<Value>> candidates =
      BuildCandidates(layout, columns, slot_facts, literals, referenced);
  std::vector<Value> stack;
  return ForEachWitness(
      candidates, opts.max_witness_rows,
      [&](const Row& row) -> Status {
        Value want = expr.Eval(row, layout);
        Value got = prog.Eval(row, &stack);
        if (!ValuesIdentical(want, got)) {
          return Status::Internal(StrFormat(
              "bytecode verifier: witness divergence on row %s — tree "
              "evaluates to %s, program to %s\n%s",
              RowToString(row).c_str(),
              (want.is_null() ? "NULL" : want.ToString()).c_str(),
              (got.is_null() ? "NULL" : got.ToString()).c_str(),
              DisassembleExpr(prog, &layout, &columns).c_str()));
        }
        return Status::OK();
      },
      witness_rows);
}

Status ValidateTranslation(const PredicateProgram& prog,
                           const std::vector<Predicate>& preds,
                           const RowLayout& layout,
                           const ColumnCatalog& columns,
                           const std::vector<ColumnFacts>& slot_facts,
                           const BytecodeVerifyOptions& opts,
                           int* witness_rows) {
  std::vector<ExprProgramShape> shapes;
  AGGVIEW_RETURN_NOT_OK(
      AnalyzePredicateProgram(prog, layout, columns, &shapes, nullptr));

  if (prog.conjuncts().size() != preds.size()) {
    return Status::Internal(StrFormat(
        "bytecode verifier: conjunct count mismatch — source has %d, "
        "program has %d\n%s",
        static_cast<int>(preds.size()),
        static_cast<int>(prog.conjuncts().size()),
        DisassemblePredicate(prog, &layout, &columns).c_str()));
  }

  // 2a per conjunct: the comparison operator must match the source, and
  // both operands' abstract facts must agree with the source operand's.
  for (size_t i = 0; i < preds.size(); ++i) {
    const Conjunct& c = prog.conjuncts()[i];
    const int ci = static_cast<int>(i);
    if (c.op != preds[i].op) {
      return PredErr(prog, &layout, &columns, ci,
                     "comparison operator differs from the source predicate");
    }
    const std::pair<const Operand*, const ExprPtr*> sides[] = {
        {&c.lhs, &preds[i].lhs}, {&c.rhs, &preds[i].rhs}};
    for (const auto& [operand, source] : sides) {
      AGGVIEW_ASSIGN_OR_RETURN(ColumnFacts tree_facts,
                               AbstractEvalTree(**source, layout, slot_facts));
      ColumnFacts operand_facts;
      if (operand->col >= 0) {
        operand_facts = slot_facts[static_cast<size_t>(operand->col)];
      } else if (operand->prog >= 0) {
        AGGVIEW_ASSIGN_OR_RETURN(
            operand_facts,
            AbstractEvalProgram(
                prog.programs()[static_cast<size_t>(operand->prog)],
                slot_facts));
      } else {
        operand_facts = LiteralFacts(operand->constant);
      }
      if (!FactsEqual(tree_facts, operand_facts)) {
        return PredErr(
            prog, &layout, &columns, ci,
            StrFormat("abstract facts diverge — source operand derives %s, "
                      "compiled operand derives %s",
                      FactsToString(tree_facts).c_str(),
                      FactsToString(operand_facts).c_str()));
      }
    }
  }

  if (opts.reprove) {
    Result<PredicateProgram> recompiled =
        PredicateProgram::Compile(preds, layout, columns);
    if (!recompiled.ok()) {
      return Status::Internal(
          "bytecode verifier: paranoid re-proof failed — the source no "
          "longer compiles: " +
          recompiled.status().message());
    }
    if (DisassemblePredicate(*recompiled, nullptr, nullptr) !=
        DisassemblePredicate(prog, nullptr, nullptr)) {
      return Status::Internal(
          "bytecode verifier: paranoid re-proof failed — recompiling the "
          "source yields a different program\n" +
          DisassemblePredicate(prog, &layout, &columns));
    }
  }

  // 2b: witness rows over the whole layout, comparing the conjunction's
  // boolean result (EvalConjunction is the interpreter's exact semantics,
  // including SQL's NULL-comparison-is-false rule).
  std::vector<Value> literals;
  std::vector<bool> referenced(static_cast<size_t>(layout.size()), false);
  for (const Predicate& p : preds) {
    CollectLiterals(*p.lhs, &literals);
    CollectLiterals(*p.rhs, &literals);
    MarkTreeSlots(*p.lhs, layout, &referenced);
    MarkTreeSlots(*p.rhs, layout, &referenced);
  }
  for (const Conjunct& c : prog.conjuncts()) {
    if (c.lhs.col >= 0 && static_cast<size_t>(c.lhs.col) < referenced.size()) {
      referenced[static_cast<size_t>(c.lhs.col)] = true;
    }
    if (c.rhs.col >= 0 && static_cast<size_t>(c.rhs.col) < referenced.size()) {
      referenced[static_cast<size_t>(c.rhs.col)] = true;
    }
  }
  for (const ExprProgram& p : prog.programs()) {
    MarkProgramSlots(p, &referenced);
  }
  std::vector<std::vector<Value>> candidates =
      BuildCandidates(layout, columns, slot_facts, literals, referenced);
  EvalScratch scratch;
  return ForEachWitness(
      candidates, opts.max_witness_rows,
      [&](const Row& row) -> Status {
        bool want = EvalConjunction(preds, row, layout);
        bool got = prog.EvalRow(row, &scratch);
        if (want != got) {
          return Status::Internal(StrFormat(
              "bytecode verifier: witness divergence on row %s — source "
              "conjunction is %s, program is %s\n%s",
              RowToString(row).c_str(), want ? "true" : "false",
              got ? "true" : "false",
              DisassemblePredicate(prog, &layout, &columns).c_str()));
        }
        return Status::OK();
      },
      witness_rows);
}

CompilationCertificate VerifyPredicateProgram(const PredicateProgram& prog,
                                              const std::vector<Predicate>& preds,
                                              const RowLayout& layout,
                                              const ColumnCatalog& columns,
                                              BytecodeVerifyMode mode,
                                              std::string node,
                                              std::string kind,
                                              bool want_listing) {
  CompilationCertificate cert;
  cert.node = std::move(node);
  cert.kind = std::move(kind);
  if (want_listing) {
    cert.source = RenderConjunction(preds, columns);
    cert.disassembly = prog.Disassemble(layout, columns);
  }
  cert.instructions = prog.size();
  for (const ExprProgram& p : prog.programs()) {
    cert.instructions += p.num_instructions();
  }

  std::string key = MemoKey(prog, preds, layout, columns, mode);
  MemoVerdict verdict;
  if (!Memo().Lookup(key, &verdict)) {
    int max_depth = 0;
    Status stage1 = VerifyWellFormed(prog, layout, columns, &max_depth);
    if (stage1.ok()) {
      verdict.max_stack_depth = max_depth;
      BytecodeVerifyOptions opts = BytecodeVerifyOptions::ForMode(mode);
      Status stage2 =
          ValidateTranslation(prog, preds, layout, columns,
                              SeedFactsFromCatalog(layout, columns), opts,
                              &verdict.witness_rows);
      if (stage2.ok()) {
        verdict.verified = true;
      } else {
        verdict.rejection = stage2.message();
      }
    } else {
      verdict.rejection = stage1.message();
    }
    Memo().Insert(std::move(key), verdict);
  }

  cert.verified = verdict.verified;
  cert.witness_rows = verdict.witness_rows;
  cert.max_stack_depth = verdict.max_stack_depth;
  cert.rejection = std::move(verdict.rejection);
  return cert;
}

void SetBytecodeTamperHookForTesting(PredicateTamperHook hook) {
  g_tamper_hook = std::move(hook);
}

const PredicateTamperHook& BytecodeTamperHookForTesting() {
  return g_tamper_hook;
}

}  // namespace aggview
