#include "exec/compile/expr_compiler.h"

#include <utility>

namespace aggview {

namespace {

/// The generic arithmetic path, byte-for-byte ArithExpr::Eval: NULL
/// propagates, integer arithmetic stays integral except for division (which
/// promotes to double), and division by zero yields 0.0.
Value GenericArith(ArithOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  if (l.is_int() && r.is_int() && op != ArithOp::kDiv) {
    int64_t a = l.AsInt(), b = r.AsInt();
    switch (op) {
      case ArithOp::kAdd:
        return Value::Int(a + b);
      case ArithOp::kSub:
        return Value::Int(a - b);
      case ArithOp::kMul:
        return Value::Int(a * b);
      case ArithOp::kDiv:
        break;
    }
  }
  double a = l.AsNumeric(), b = r.AsNumeric();
  switch (op) {
    case ArithOp::kAdd:
      return Value::Real(a + b);
    case ArithOp::kSub:
      return Value::Real(a - b);
    case ArithOp::kMul:
      return Value::Real(a * b);
    case ArithOp::kDiv:
      return Value::Real(b == 0.0 ? 0.0 : a / b);
  }
  return Value::Real(0.0);
}

int Sign(int64_t a, int64_t b) { return a < b ? -1 : (a > b ? 1 : 0); }
int Sign(double a, double b) { return a < b ? -1 : (a > b ? 1 : 0); }

bool ApplyCompareOp(CompareOp op, int c) {
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

}  // namespace

// -------------------------------------------------------------- ExprProgram

Result<ExprProgram> ExprProgram::Compile(const ScalarExpr& expr,
                                         const RowLayout& layout,
                                         const ColumnCatalog& columns) {
  ExprProgram prog;
  AGGVIEW_RETURN_NOT_OK(prog.CompileInto(expr, layout, columns));
  return prog;
}

Status ExprProgram::CompileInto(const ScalarExpr& expr,
                                const RowLayout& layout,
                                const ColumnCatalog& columns) {
  switch (expr.kind()) {
    case ScalarExpr::Kind::kColumnRef: {
      ColId id = static_cast<const ColumnRefExpr&>(expr).id();
      int idx = layout.IndexOf(id);
      if (idx < 0) {
        return Status::Internal(
            "expr compiler: column missing from input layout");
      }
      code_.push_back(Insn{Op::kLoadCol, idx});
      return Status::OK();
    }
    case ScalarExpr::Kind::kLiteral: {
      consts_.push_back(static_cast<const LiteralExpr&>(expr).value());
      code_.push_back(
          Insn{Op::kLoadConst, static_cast<int32_t>(consts_.size() - 1)});
      return Status::OK();
    }
    case ScalarExpr::Kind::kArith: {
      const auto& arith = static_cast<const ArithExpr&>(expr);
      AGGVIEW_RETURN_NOT_OK(CompileInto(*arith.lhs(), layout, columns));
      AGGVIEW_RETURN_NOT_OK(CompileInto(*arith.rhs(), layout, columns));
      // Lane selection from the *static* types; the typed instructions
      // re-check the runtime types and fall through to the generic path, so
      // a wrong static guess costs speed, never correctness.
      DataType lt = arith.lhs()->ResultType(columns);
      DataType rt = arith.rhs()->ResultType(columns);
      bool both_int = lt == DataType::kInt64 && rt == DataType::kInt64;
      bool both_double = lt == DataType::kDouble && rt == DataType::kDouble;
      // The switch is exhaustive over ArithOp; the initializer only
      // placates -Wmaybe-uninitialized, which cannot prove that.
      Op op = Op::kAddGeneric;
      switch (arith.op()) {
        case ArithOp::kAdd:
          op = both_int ? Op::kAddInt
                        : (both_double ? Op::kAddDouble : Op::kAddGeneric);
          break;
        case ArithOp::kSub:
          op = both_int ? Op::kSubInt
                        : (both_double ? Op::kSubDouble : Op::kSubGeneric);
          break;
        case ArithOp::kMul:
          op = both_int ? Op::kMulInt
                        : (both_double ? Op::kMulDouble : Op::kMulGeneric);
          break;
        case ArithOp::kDiv:
          // Division always promotes, so there is no INT64 lane for it.
          op = both_double ? Op::kDivDouble : Op::kDivGeneric;
          break;
      }
      code_.push_back(Insn{op, 0});
      return Status::OK();
    }
    case ScalarExpr::Kind::kCoalesce: {
      const auto& coalesce = static_cast<const CoalesceExpr&>(expr);
      AGGVIEW_RETURN_NOT_OK(CompileInto(*coalesce.inner(), layout, columns));
      size_t jump_at = code_.size();
      code_.push_back(Insn{Op::kJumpIfNotNull, 0});
      code_.push_back(Insn{Op::kPop, 0});
      AGGVIEW_RETURN_NOT_OK(CompileInto(*coalesce.fallback(), layout, columns));
      code_[jump_at].a = static_cast<int32_t>(code_.size());
      return Status::OK();
    }
  }
  return Status::Internal("expr compiler: unknown expression kind");
}

Value ExprProgram::Eval(const Row& row, std::vector<Value>* stack) const {
  stack->clear();
  // Binary instructions fold in place: the result lands in the lhs slot and
  // the rhs slot pops, so the stack never reallocates in steady state.
  size_t n = code_.size();
  for (size_t pc = 0; pc < n; ++pc) {
    const Insn& in = code_[pc];
    switch (in.op) {
      case Op::kLoadCol:
        stack->push_back(row[static_cast<size_t>(in.a)]);
        break;
      case Op::kLoadConst:
        stack->push_back(consts_[static_cast<size_t>(in.a)]);
        break;
      case Op::kJumpIfNotNull:
        if (!stack->back().is_null()) pc = static_cast<size_t>(in.a) - 1;
        break;
      case Op::kPop:
        stack->pop_back();
        break;
      default: {
        Value& r = (*stack)[stack->size() - 1];
        Value& l = (*stack)[stack->size() - 2];
        switch (in.op) {
          case Op::kAddInt:
            l = (l.is_int() && r.is_int())
                    ? Value::Int(l.AsInt() + r.AsInt())
                    : GenericArith(ArithOp::kAdd, l, r);
            break;
          case Op::kSubInt:
            l = (l.is_int() && r.is_int())
                    ? Value::Int(l.AsInt() - r.AsInt())
                    : GenericArith(ArithOp::kSub, l, r);
            break;
          case Op::kMulInt:
            l = (l.is_int() && r.is_int())
                    ? Value::Int(l.AsInt() * r.AsInt())
                    : GenericArith(ArithOp::kMul, l, r);
            break;
          case Op::kAddDouble:
            l = (l.is_double() && r.is_double())
                    ? Value::Real(l.AsDouble() + r.AsDouble())
                    : GenericArith(ArithOp::kAdd, l, r);
            break;
          case Op::kSubDouble:
            l = (l.is_double() && r.is_double())
                    ? Value::Real(l.AsDouble() - r.AsDouble())
                    : GenericArith(ArithOp::kSub, l, r);
            break;
          case Op::kMulDouble:
            l = (l.is_double() && r.is_double())
                    ? Value::Real(l.AsDouble() * r.AsDouble())
                    : GenericArith(ArithOp::kMul, l, r);
            break;
          case Op::kDivDouble:
            l = (l.is_double() && r.is_double())
                    ? Value::Real(r.AsDouble() == 0.0
                                      ? 0.0
                                      : l.AsDouble() / r.AsDouble())
                    : GenericArith(ArithOp::kDiv, l, r);
            break;
          case Op::kAddGeneric:
            l = GenericArith(ArithOp::kAdd, l, r);
            break;
          case Op::kSubGeneric:
            l = GenericArith(ArithOp::kSub, l, r);
            break;
          case Op::kMulGeneric:
            l = GenericArith(ArithOp::kMul, l, r);
            break;
          case Op::kDivGeneric:
            l = GenericArith(ArithOp::kDiv, l, r);
            break;
          default:
            break;
        }
        stack->pop_back();
        break;
      }
    }
  }
  Value out = std::move(stack->back());
  stack->pop_back();
  return out;
}

// --------------------------------------------------------- PredicateProgram

Result<PredicateProgram::Operand> PredicateProgram::CompileOperand(
    const ExprPtr& expr, const RowLayout& layout, const ColumnCatalog& columns,
    std::vector<ExprProgram>* programs) {
  Operand o;
  ColId col = expr->AsColumnRef();
  if (col != kInvalidColId) {
    o.col = layout.IndexOf(col);
    if (o.col < 0) {
      return Status::Internal(
          "predicate compiler: column missing from input layout");
    }
    return o;
  }
  if (expr->kind() == ScalarExpr::Kind::kLiteral) {
    o.constant = static_cast<const LiteralExpr&>(*expr).value();
    return o;
  }
  AGGVIEW_ASSIGN_OR_RETURN(ExprProgram prog,
                           ExprProgram::Compile(*expr, layout, columns));
  programs->push_back(std::move(prog));
  o.prog = static_cast<int>(programs->size() - 1);
  return o;
}

Result<PredicateProgram> PredicateProgram::Compile(
    const std::vector<Predicate>& preds, const RowLayout& layout,
    const ColumnCatalog& columns) {
  PredicateProgram prog;
  for (const Predicate& p : preds) {
    Conjunct c;
    AGGVIEW_ASSIGN_OR_RETURN(
        c.lhs, CompileOperand(p.lhs, layout, columns, &prog.programs_));
    AGGVIEW_ASSIGN_OR_RETURN(
        c.rhs, CompileOperand(p.rhs, layout, columns, &prog.programs_));
    c.op = p.op;
    DataType lt = p.lhs->ResultType(columns);
    DataType rt = p.rhs->ResultType(columns);
    if (lt == DataType::kInt64 && rt == DataType::kInt64) {
      c.lane = CmpLane::kInt64;
    } else if (lt == DataType::kString && rt == DataType::kString) {
      c.lane = CmpLane::kString;
    } else if (lt != DataType::kString && rt != DataType::kString) {
      c.lane = CmpLane::kDouble;
      // Normalize an integer constant against a DOUBLE-lane operand to a
      // double constant at compile time: the mixed int-vs-double comparison
      // goes through the same int64 -> double conversion (Value::Compare's
      // AsNumeric path) at runtime, so pre-converting is bit-identical and
      // lets EvalRow take the both-double fast branch per row instead of
      // the out-of-line AsNumeric calls.
      auto normalize = [](Operand* o) {
        if (o->col < 0 && o->prog < 0 && o->constant.is_int()) {
          o->constant = Value::Real(o->constant.AsNumeric());
        }
      };
      normalize(&c.lhs);
      normalize(&c.rhs);
    } else {
      c.lane = CmpLane::kGeneric;
    }
    // Promote the typed lanes to their col-vs-constant shapes when the
    // conjunct is a direct slot compared against an inline constant of the
    // lane's exact type (the dominant shape of pushed-down filters).
    const bool rhs_const = c.rhs.col < 0 && c.rhs.prog < 0;
    if (c.lhs.col >= 0 && rhs_const) {
      if (c.lane == CmpLane::kInt64 && c.rhs.constant.is_int()) {
        c.lane = CmpLane::kInt64ColConst;
      } else if (c.lane == CmpLane::kDouble && c.rhs.constant.is_double()) {
        c.lane = CmpLane::kDoubleColConst;
      }
    }
    prog.conjuncts_.push_back(std::move(c));
  }
  return prog;
}

const Value* PredicateProgram::EvalOperand(const Operand& o, const Row& row,
                                           EvalScratch* scratch,
                                           Value* tmp) const {
  if (o.col >= 0) return &row[static_cast<size_t>(o.col)];
  if (o.prog >= 0) {
    *tmp = programs_[static_cast<size_t>(o.prog)].Eval(row, &scratch->stack);
    return tmp;
  }
  return &o.constant;
}

bool PredicateProgram::EvalRow(const Row& row, EvalScratch* scratch) const {
  for (const Conjunct& c : conjuncts_) {
    // Col-vs-constant fast lanes: no operand resolution, and the slot's
    // type check subsumes the NULL check (NULL is its own alternative in
    // Value's variant). The mixed-type fallbacks reduce to Value::Compare,
    // which is exactly what the matching general lane below computes for
    // those type combinations.
    if (c.lane == CmpLane::kInt64ColConst) {
      const Value& l = row[static_cast<size_t>(c.lhs.col)];
      if (l.is_int()) {
        if (!ApplyCompareOp(c.op, Sign(l.AsInt(), c.rhs.constant.AsInt()))) {
          return false;
        }
        continue;
      }
      if (l.is_null()) return false;
      if (!ApplyCompareOp(c.op, l.Compare(c.rhs.constant))) return false;
      continue;
    }
    if (c.lane == CmpLane::kDoubleColConst) {
      const Value& l = row[static_cast<size_t>(c.lhs.col)];
      if (l.is_double()) {
        if (!ApplyCompareOp(c.op,
                            Sign(l.AsDouble(), c.rhs.constant.AsDouble()))) {
          return false;
        }
        continue;
      }
      if (l.is_null()) return false;
      if (!ApplyCompareOp(c.op, l.Compare(c.rhs.constant))) return false;
      continue;
    }
    const Value* l = EvalOperand(c.lhs, row, scratch, &scratch->lhs);
    const Value* r = EvalOperand(c.rhs, row, scratch, &scratch->rhs);
    // SQL semantics: comparisons with NULL are not true (Predicate::Eval).
    if (l->is_null() || r->is_null()) return false;
    int cmp;
    switch (c.lane) {
      case CmpLane::kInt64:
        cmp = (l->is_int() && r->is_int()) ? Sign(l->AsInt(), r->AsInt())
                                           : l->Compare(*r);
        break;
      case CmpLane::kDouble:
        // Value::Compare's numeric path: both-INT64 compares exactly as
        // int64 (no precision loss above 2^53), otherwise via AsNumeric().
        // The leading both-double branch is the lane's expected shape (and
        // what the compile-time constant normalization above steers mixed
        // col-vs-int-literal conjuncts into): it stays on inline accessors
        // instead of the out-of-line AsNumeric calls.
        if (l->is_double() && r->is_double()) {
          cmp = Sign(l->AsDouble(), r->AsDouble());
        } else if (!l->is_string() && !r->is_string()) {
          cmp = (l->is_int() && r->is_int())
                    ? Sign(l->AsInt(), r->AsInt())
                    : Sign(l->AsNumeric(), r->AsNumeric());
        } else {
          cmp = l->Compare(*r);
        }
        break;
      case CmpLane::kString:
        if (l->is_string() && r->is_string()) {
          int s = l->AsString().compare(r->AsString());
          cmp = s < 0 ? -1 : (s > 0 ? 1 : 0);
        } else {
          cmp = l->Compare(*r);
        }
        break;
      case CmpLane::kGeneric:
      default:
        cmp = l->Compare(*r);
        break;
    }
    if (!ApplyCompareOp(c.op, cmp)) return false;
  }
  return true;
}

}  // namespace aggview
