#ifndef AGGVIEW_EXEC_COMPILE_VERIFIER_H_
#define AGGVIEW_EXEC_COMPILE_VERIFIER_H_

#include <functional>
#include <string>
#include <vector>

#include "algebra/column.h"
#include "analysis/certificate.h"
#include "analysis/dataflow.h"
#include "common/result.h"
#include "exec/compile/expr_compiler.h"
#include "exec/exec_context.h"
#include "expr/predicate.h"
#include "expr/scalar_expr.h"

namespace aggview {

/// Static verification of compiled bytecode (the backend's analogue of the
/// optimizer's legality certificates): every ExprProgram/PredicateProgram
/// lowered under ExecBackend::kCompiled is proved well-formed and
/// semantics-preserving *before* it executes. Two stages:
///
/// Stage 1 — well-formedness. Abstract interpretation of the instruction
/// stream with a type-state lattice per stack slot: stack-effect balance (no
/// underflow, exactly one result at exit), jump targets in bounds and
/// strictly forward (kJumpIfNotNull cannot form loops), operand/slot indices
/// inside the input row layout and constant pool, *canonical* lane tags
/// (every typed instruction's lane is exactly what the compiler's static
/// lane selection emits for its abstract operand types — the runtime type
/// guards would mask a retyped lane as a slowdown, so the verifier treats a
/// non-canonical lane as corruption), and the documented NULL conventions
/// (kJumpIfNotNull is always followed by the kPop of the compiled COALESCE
/// shape). Rejections carry an instruction-indexed message plus the
/// disassembly.
///
/// Stage 2 — translation validation. The program and its source
/// ArithExpr/Predicate tree are abstract-interpreted side by side over the
/// dataflow lattices of src/analysis/dataflow (Nullability + value-domain
/// intervals per ColumnFacts), with identical transfer functions applied
/// structurally to the tree and linearly to the bytecode; the outputs must
/// agree exactly. Then both are co-evaluated on small witness vectors drawn
/// from the column domains (the same base-values-plus-query-literals domain
/// construction as the small-scope prover's src/verify skeletons) and any
/// divergence — value, type, or NULL-ness — rejects the program.
///
/// Verification is a one-time lowering cost; the per-row execution path is
/// untouched. A rejected program never runs: lowering falls back to the
/// interpreter and records the reason (OpStats::fallback, EXPLAIN ANALYZE's
/// `fallback=` tag, and a CompilationCertificate in the audit).

/// Tuning of one verification run, derived from the BytecodeVerifyMode.
struct BytecodeVerifyOptions {
  /// Budget for stage-2 witness co-evaluation, per program. When the full
  /// cross product of the per-slot candidate values fits, it is enumerated
  /// exhaustively; otherwise a deterministic subset (per-slot sweeps plus a
  /// prefix of the odometer) covers every candidate value of every slot.
  int max_witness_rows = 256;
  /// Paranoid re-proof: recompile the source tree and require the recompiled
  /// program's listing to be byte-identical to the verified program's.
  bool reprove = false;

  static BytecodeVerifyOptions ForMode(BytecodeVerifyMode mode);
};

/// Stage-1 by-products consumed by certificates and by the predicate
/// verifier's lane canonicalization (a nested program's abstract result type
/// stands in for its source expression's ResultType).
struct ExprProgramShape {
  DataType result_type = DataType::kInt64;
  int max_stack_depth = 0;
};

/// Stage 1 for one expression program. `shape` (optional) receives the
/// abstract result type and the deepest stack any path reaches.
Status VerifyWellFormed(const ExprProgram& prog, const RowLayout& layout,
                        const ColumnCatalog& columns,
                        ExprProgramShape* shape = nullptr);

/// Stage 1 for a predicate program: every nested ExprProgram is verified,
/// every conjunct's operand indices are bounds-checked, operand forms are
/// unambiguous, and each conjunct's comparison lane must be the canonical
/// lane the compiler selects for its operand types. `max_stack_depth`
/// (optional) receives the deepest nested-program stack.
Status VerifyWellFormed(const PredicateProgram& prog, const RowLayout& layout,
                        const ColumnCatalog& columns,
                        int* max_stack_depth = nullptr);

/// Seeds per-slot abstract facts from the catalog's declared column
/// nullability (value domains unknown). Index-aligned with `layout`.
std::vector<ColumnFacts> SeedFactsFromCatalog(const RowLayout& layout,
                                              const ColumnCatalog& columns);

/// Stage 2 for one expression program against its source tree. Runs stage 1
/// first (witness evaluation of an ill-formed program would be unsafe).
/// `slot_facts` seeds the abstract environment (SeedFactsFromCatalog, or
/// richer facts when the caller has them); `witness_rows` (optional)
/// receives the number of co-evaluated witness vectors.
Status ValidateTranslation(const ExprProgram& prog, const ScalarExpr& expr,
                           const RowLayout& layout,
                           const ColumnCatalog& columns,
                           const std::vector<ColumnFacts>& slot_facts,
                           const BytecodeVerifyOptions& opts,
                           int* witness_rows = nullptr);

/// Stage 2 for a predicate program against its source conjunction.
Status ValidateTranslation(const PredicateProgram& prog,
                           const std::vector<Predicate>& preds,
                           const RowLayout& layout,
                           const ColumnCatalog& columns,
                           const std::vector<ColumnFacts>& slot_facts,
                           const BytecodeVerifyOptions& opts,
                           int* witness_rows = nullptr);

/// Both stages plus certificate assembly — the entry point lowering uses.
/// Never fails: a rejected program yields a certificate with verified ==
/// false and the instruction-indexed rejection message (the caller then
/// falls back to the interpreter). `mode` kOff is treated as kOn — callers
/// gate on the mode before compiling, not here.
///
/// Verdicts are memoized process-wide on the full content of the
/// (program, source conjunction, layout, mode) tuple, JVM-style: a bytecode
/// program is proved once, and re-lowering the identical program — the plan
/// cache's steady state — replays the stored verdict for the cost of a
/// content hash. Any byte of difference (a tampered program, a changed
/// literal, another layout) is a different key and verifies from scratch.
///
/// `want_listing` controls whether the certificate carries the rendered
/// source and disassembly; pass false when no audit sink will record the
/// certificate, which keeps the hot prepare path free of string formatting.
CompilationCertificate VerifyPredicateProgram(const PredicateProgram& prog,
                                              const std::vector<Predicate>& preds,
                                              const RowLayout& layout,
                                              const ColumnCatalog& columns,
                                              BytecodeVerifyMode mode,
                                              std::string node,
                                              std::string kind,
                                              bool want_listing = true);

/// Test-only corruption hook: when installed, lowering passes every freshly
/// compiled PredicateProgram through the hook *before* verification, so
/// tests can prove the rejection -> interpreter-fallback path end to end on
/// a real query. Not thread-safe; install/clear around single-threaded test
/// bodies only. Pass nullptr to clear.
using PredicateTamperHook =
    std::function<PredicateProgram(const PredicateProgram&)>;
void SetBytecodeTamperHookForTesting(PredicateTamperHook hook);
const PredicateTamperHook& BytecodeTamperHookForTesting();

}  // namespace aggview

#endif  // AGGVIEW_EXEC_COMPILE_VERIFIER_H_
