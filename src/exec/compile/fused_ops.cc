#include "exec/compile/fused_ops.h"

#include <algorithm>
#include <utility>

#include "cost/cost_model.h"
#include "obs/runtime_stats.h"

namespace aggview {

// -------------------------------------------------------- FusedScanFilterOp

FusedScanFilterOp::FusedScanFilterOp(
    const Table* table, RowLayout table_layout,
    std::shared_ptr<const PredicateProgram> scan_filter,
    std::shared_ptr<const PredicateProgram> filter, RowLayout output,
    IoAccountant* io, bool charge_io, ColId rowid_col)
    : table_(table),
      table_layout_(std::move(table_layout)),
      scan_filter_(std::move(scan_filter)),
      filter_(std::move(filter)),
      io_(io),
      charge_io_(charge_io) {
  layout_ = std::move(output);
  for (ColId c : layout_.columns()) {
    if (rowid_col != kInvalidColId && c == rowid_col) {
      projection_.push_back(kRowIdIndex);
    } else {
      projection_.push_back(table_layout_.IndexOf(c));
    }
  }
}

FusedScanFilterOp::FusedScanFilterOp(const FusedScanFilterOp& primary,
                                     WorkerCloneTag)
    : table_(primary.table_),
      table_layout_(primary.table_layout_),
      scan_filter_(primary.scan_filter_),
      filter_(primary.filter_),
      projection_(primary.projection_),
      io_(primary.io_),
      charge_io_(false),  // the primary charged the table's pages at Open
      morsels_(primary.morsels_) {
  InitWorkerClone(primary);
  if (primary.scan_stats_ != nullptr) {
    owned_scan_stats_ = std::make_unique<OpStats>();
    owned_scan_stats_->op_name = primary.scan_stats_->op_name;
    owned_scan_stats_->backend = primary.scan_stats_->backend;
    scan_stats_ = owned_scan_stats_.get();
  }
}

OperatorPtr FusedScanFilterOp::CloneForWorker() {
  return OperatorPtr(new FusedScanFilterOp(*this, WorkerCloneTag{}));
}

void FusedScanFilterOp::AbsorbWorker(Operator& worker) {
  Operator::AbsorbWorker(worker);
  auto& w = static_cast<FusedScanFilterOp&>(worker);
  if (scan_stats_ != nullptr && w.scan_stats_ != nullptr) {
    scan_stats_->MergeFrom(*w.scan_stats_);
  }
}

Status FusedScanFilterOp::OpenImpl() {
  morsels_ = std::make_shared<MorselDispenser>();
  if (exec_ != nullptr) morsels_->morsel_rows = exec_->morsel_rows();
  pos_ = pos_end_ = 0;
  if (charge_io_) {
    // Same Open-time charge as TableScanOp, attributed to the scan node's
    // stats block when the kernel also covers a filter node above it.
    int64_t pages = table_->page_count();
    if (io_ != nullptr) io_->ChargeRead(pages);
    if (scan_stats_ != nullptr) {
      scan_stats_->pages_charged += pages;
    } else if (stats_ != nullptr) {
      stats_->pages_charged += pages;
    }
  }
  for (int idx : projection_) {
    if (idx < 0 && idx != kRowIdIndex) {
      return Status::Internal("fused scan projects a non-table column");
    }
  }
  return Status::OK();
}

Result<bool> FusedScanFilterOp::NextBatchImpl(RowBatch* out) {
  const int64_t n = table_->row_count();
  int64_t examined = 0;
  int64_t passed_scan = 0;
  while (!out->full()) {
    if (pos_ >= pos_end_) {
      int64_t start = morsels_->next.fetch_add(morsels_->morsel_rows,
                                               std::memory_order_relaxed);
      if (start >= n) break;
      pos_ = start;
      pos_end_ = std::min(n, start + morsels_->morsel_rows);
    }
    while (pos_ < pos_end_ && !out->full()) {
      int64_t rowid = pos_;
      const Row& row = table_->row(pos_++);
      ++examined;
      if (!scan_filter_->EvalRow(row, &scratch_)) continue;
      ++passed_scan;
      if (!filter_->empty() && !filter_->EvalRow(row, &scratch_)) continue;
      Row& dst = out->AppendRow();
      dst.reserve(projection_.size());
      for (int idx : projection_) {
        if (idx == kRowIdIndex) {
          dst.push_back(Value::Int(rowid));
        } else {
          dst.push_back(row[static_cast<size_t>(idx)]);
        }
      }
    }
  }
  if (scan_stats_ != nullptr) {
    // Interior attribution for the fused-away scan node; the operator's own
    // block (the filter node) counts rows entering the residual filter.
    scan_stats_->input_rows += examined;
    scan_stats_->rows_produced += passed_scan;
    CountInput(passed_scan);
  } else {
    CountInput(examined);
  }
  return !out->empty();
}

// ------------------------------------------------------ CompiledAggregateOp

CompiledAggregateOp::CompiledAggregateOp(Spec spec,
                                         const ColumnCatalog* columns,
                                         IoAccountant* io)
    : spec_(std::move(spec)), columns_(columns), io_(io) {
  layout_ = RowLayout(spec_.group_by.OutputColumns());
}

CompiledAggregateOp::Group CompiledAggregateOp::MakeGroup() const {
  Group g;
  g.accs.reserve(spec_.group_by.aggregates.size());
  for (const AggregateCall& a : spec_.group_by.aggregates) {
    g.accs.emplace_back(a.kind);
  }
  return g;
}

void CompiledAggregateOp::MigrateToGeneric(IntGroupMap* fast,
                                           std::optional<Group>* null_group,
                                           GroupMap* generic) const {
  // Fast-lane keys were all INT64, so re-keying them as Value::Int rows is
  // exactly the key the generic map would have built for those input rows;
  // a later DOUBLE key equal to one of them (3.0 vs 3) finds the migrated
  // group because RowHash/RowEq follow Value's cross-type numeric equality.
  generic->reserve(fast->size() + 1);
  for (auto& [k, g] : *fast) {
    generic->emplace(Row{Value::Int(k)}, std::move(g));
  }
  if (null_group->has_value()) {
    generic->emplace(Row{Value::Null()}, std::move(**null_group));
  }
  fast->clear();
  null_group->reset();
}

Status CompiledAggregateOp::OpenImpl() {
  results_.clear();
  pos_ = 0;
  const Table& table = *spec_.table;
  if (spec_.charge_scan) {
    int64_t pages = table.page_count();
    if (io_ != nullptr) io_->ChargeRead(pages);
    if (scan_stats_ != nullptr) scan_stats_->pages_charged += pages;
  }

  const bool scalar = spec_.group_idx.empty();
  const bool single_key = spec_.group_idx.size() == 1;
  const int key_idx = single_key ? spec_.group_idx[0] : -1;
  IntGroupMap fast;
  std::optional<Group> null_group;
  std::optional<Group> scalar_group;
  GroupMap generic;
  bool generic_active = !scalar && !single_key;

  const size_t num_aggs = spec_.group_by.aggregates.size();
  int64_t examined = 0;
  int64_t passed_scan = 0;
  int64_t passed_all = 0;
  Row key_scratch;
  const int64_t n = table.row_count();
  for (int64_t i = 0; i < n; ++i) {
    const Row& row = table.row(i);
    ++examined;
    if (!spec_.scan_filter->EvalRow(row, &scratch_)) continue;
    ++passed_scan;
    if (!spec_.filter->EvalRow(row, &scratch_)) continue;
    ++passed_all;

    Group* g;
    if (scalar) {
      if (!scalar_group.has_value()) scalar_group = MakeGroup();
      g = &*scalar_group;
    } else if (!generic_active) {
      const Value& k = row[static_cast<size_t>(key_idx)];
      if (k.is_int()) {
        auto [it, inserted] = fast.try_emplace(k.AsInt());
        if (inserted) it->second = MakeGroup();
        g = &it->second;
      } else if (k.is_null()) {
        if (!null_group.has_value()) null_group = MakeGroup();
        g = &*null_group;
      } else {
        MigrateToGeneric(&fast, &null_group, &generic);
        generic_active = true;
        auto it = generic.find(Row{k});
        if (it == generic.end()) it = generic.emplace(Row{k}, MakeGroup()).first;
        g = &it->second;
      }
    } else {
      key_scratch.clear();
      key_scratch.reserve(spec_.group_idx.size());
      for (int idx : spec_.group_idx) {
        key_scratch.push_back(row[static_cast<size_t>(idx)]);
      }
      auto it = generic.find(key_scratch);
      if (it == generic.end()) {
        it = generic.emplace(key_scratch, MakeGroup()).first;
      }
      g = &it->second;
    }

    for (size_t a = 0; a < num_aggs; ++a) {
      const std::vector<int>& idxs = spec_.arg_idx[a];
      AggAccumulator& acc = g->accs[a];
      switch (idxs.size()) {
        case 0:
          acc.Add0();
          break;
        case 1:
          acc.Add1(row[static_cast<size_t>(idxs[0])]);
          break;
        default:
          acc.Add2(row[static_cast<size_t>(idxs[0])],
                   row[static_cast<size_t>(idxs[1])]);
          break;
      }
    }
  }

  // SQL: a scalar aggregate over zero input rows yields exactly one row
  // (COUNT = 0, SUM/MIN/MAX/AVG = NULL); grouped queries yield no rows.
  if (scalar && !scalar_group.has_value()) scalar_group = MakeGroup();

  if (scan_stats_ != nullptr) {
    scan_stats_->input_rows += examined;
    scan_stats_->rows_produced += passed_scan;
  }
  if (filter_stats_ != nullptr) {
    filter_stats_->input_rows += passed_scan;
    filter_stats_->rows_produced += passed_all;
  }
  CountInput(passed_all);

  int64_t group_count;
  if (scalar) {
    group_count = 1;
  } else if (generic_active) {
    group_count = static_cast<int64_t>(generic.size());
  } else {
    group_count = static_cast<int64_t>(fast.size()) +
                  (null_group.has_value() ? 1 : 0);
  }

  // Same spill formula and operands as HashAggregateOp: pages of the rows
  // the aggregate consumed, at the (fused-away) child's output row width.
  double in_pages = CostModel::Pages(static_cast<double>(passed_all),
                                     spec_.input_row_width);
  double spill = CostModel::HashAggLocalCost(in_pages);
  ChargeWrite(io_, static_cast<int64_t>(spill / 2.0));
  ChargeRead(io_, static_cast<int64_t>(spill / 2.0));
  if (stats_ != nullptr) {
    stats_->spill_pages += static_cast<int64_t>(spill / 2.0) * 2;
    stats_->hash_build_rows = group_count;
  }

  auto emit = [&](Row key, Group* group) {
    Row out = std::move(key);
    for (AggAccumulator& acc : group->accs) out.push_back(acc.Finish());
    if (!spec_.having->EvalRow(out, &scratch_)) return;
    results_.push_back(std::move(out));
  };
  if (scalar) {
    emit(Row{}, &*scalar_group);
  } else if (generic_active) {
    for (auto& [key, group] : generic) emit(key, &group);
  } else {
    for (auto& [key, group] : fast) emit(Row{Value::Int(key)}, &group);
    if (null_group.has_value()) emit(Row{Value::Null()}, &*null_group);
  }
  pos_ = 0;
  return Status::OK();
}

Result<bool> CompiledAggregateOp::NextBatchImpl(RowBatch* out) {
  while (pos_ < results_.size() && !out->full()) {
    out->AppendRow() = results_[pos_++];
  }
  return !out->empty();
}

void CompiledAggregateOp::CloseImpl() { results_.clear(); }

}  // namespace aggview
