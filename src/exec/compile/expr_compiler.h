#ifndef AGGVIEW_EXEC_COMPILE_EXPR_COMPILER_H_
#define AGGVIEW_EXEC_COMPILE_EXPR_COMPILER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "algebra/column.h"
#include "common/result.h"
#include "expr/predicate.h"
#include "expr/scalar_expr.h"
#include "types/value.h"

namespace aggview {

/// Per-evaluator scratch state for program evaluation. Programs themselves
/// are immutable after compilation and safe to share across morsel-parallel
/// worker clones; each evaluating operator instance owns one EvalScratch so
/// the value stack is never contended.
struct EvalScratch {
  std::vector<Value> stack;
  Value lhs;
  Value rhs;
};

/// A ScalarExpr tree lowered to flat stack bytecode.
///
/// The interpreter pays a virtual Eval() call per tree node per row; a
/// program is a dense instruction array evaluated by one dispatch loop — no
/// virtual calls, no tree pointer chasing. Arithmetic instructions are
/// type-specialized at compile time from the catalog's static column types
/// (an INT64 lane for integer arithmetic, a DOUBLE lane for floating-point),
/// but every typed instruction still guards the *runtime* value types and
/// falls through to the generic Value path on a mismatch, because the
/// interpreter it must mirror dispatches on runtime types (a nullable INT64
/// column can yield NULL; COALESCE can change the lane). Results are
/// therefore bit-identical to ScalarExpr::Eval on every input, including
/// NULL propagation and the division-by-zero convention (x / 0 == 0.0).
class ExprProgram {
 public:
  ExprProgram() = default;

  enum class Op : uint8_t {
    kLoadCol,    // push row[a]
    kLoadConst,  // push consts_[a]
    // INT64 lane: both operands statically INT64 (guarded at runtime).
    kAddInt,
    kSubInt,
    kMulInt,
    // DOUBLE lane: both operands statically DOUBLE (guarded at runtime).
    kAddDouble,
    kSubDouble,
    kMulDouble,
    kDivDouble,
    // Generic lane: mirrors ArithExpr::Eval's full dispatch.
    kAddGeneric,
    kSubGeneric,
    kMulGeneric,
    kDivGeneric,
    // COALESCE control flow: skip the fallback when the top of the stack is
    // non-NULL, else pop it and evaluate the fallback.
    kJumpIfNotNull,  // if (!top.is_null()) pc = a
    kPop,
  };

  struct Insn {
    Op op;
    int32_t a = 0;
  };

  /// Lowers `expr` against `layout`. Fails (Status::Internal) when the
  /// expression references a column the layout does not carry — the same
  /// malformed-plan condition the interpreter's ValidatePredicateColumns
  /// rejects at Open.
  static Result<ExprProgram> Compile(const ScalarExpr& expr,
                                     const RowLayout& layout,
                                     const ColumnCatalog& columns);

  /// Builds a program from a raw instruction stream, bypassing the compiler
  /// *and every invariant it guarantees*. Exists for the bytecode verifier's
  /// mutation harness (tests corrupt valid programs one instruction at a
  /// time); evaluating an unverified raw program is undefined behaviour.
  static ExprProgram FromRaw(std::vector<Insn> code, std::vector<Value> consts) {
    ExprProgram p;
    p.code_ = std::move(code);
    p.consts_ = std::move(consts);
    return p;
  }

  /// Evaluates against `row`, exactly as ScalarExpr::Eval would.
  /// `stack` is caller-owned scratch, cleared on entry.
  Value Eval(const Row& row, std::vector<Value>* stack) const;

  int num_instructions() const { return static_cast<int>(code_.size()); }

  /// Raw program form, consumed by the disassembler and the bytecode
  /// verifier (exec/compile/disasm.h, exec/compile/verifier.h).
  const std::vector<Insn>& code() const { return code_; }
  const std::vector<Value>& consts() const { return consts_; }

  /// Human-readable listing: one line per instruction with opcode mnemonic,
  /// lane tag, operand (column name / constant / jump target) and jump
  /// arrows. With a layout+catalog, kLoadCol operands show column names.
  std::string Disassemble(const RowLayout& layout,
                          const ColumnCatalog& columns) const;
  std::string Disassemble() const;

 private:
  friend class PredicateProgram;

  Status CompileInto(const ScalarExpr& expr, const RowLayout& layout,
                     const ColumnCatalog& columns);

  std::vector<Insn> code_;
  std::vector<Value> consts_;
};

/// A conjunction of Predicates lowered to compiled form: each conjunct is a
/// (lhs, op, rhs) frame whose operands are a direct column slot, an inline
/// constant, or an ExprProgram — the dominant `col op literal` shape
/// evaluates with zero Value copies. Conjuncts short-circuit inside one
/// evaluation frame (first false wins), and each comparison runs on a lane
/// picked from the static types (INT64 / DOUBLE / STRING), guarded at
/// runtime with fallback to Value::Compare so results match Predicate::Eval
/// bit for bit — including SQL's NULL-comparison-is-false rule.
class PredicateProgram {
 public:
  PredicateProgram() = default;

  // kInt64ColConst / kDoubleColConst are the col-vs-literal shapes of the
  // typed lanes: lhs is a direct row slot and rhs an inline non-NULL
  // constant of the lane's type, so EvalRow skips operand resolution and
  // the slot's type check doubles as its NULL check.
  enum class CmpLane : uint8_t {
    kGeneric,
    kInt64,
    kDouble,
    kString,
    kInt64ColConst,
    kDoubleColConst,
  };

  /// One comparison operand. Exactly one of the three forms is active:
  /// col >= 0 (direct row slot), prog >= 0 (bytecode), else the constant.
  struct Operand {
    int col = -1;
    int prog = -1;
    Value constant;
  };

  struct Conjunct {
    Operand lhs;
    Operand rhs;
    CompareOp op = CompareOp::kEq;
    CmpLane lane = CmpLane::kGeneric;
  };

  /// Lowers `preds` against `layout`; the empty conjunction compiles to a
  /// program that is always true (matching EvalConjunction).
  static Result<PredicateProgram> Compile(const std::vector<Predicate>& preds,
                                          const RowLayout& layout,
                                          const ColumnCatalog& columns);

  /// Raw construction bypassing the compiler; same contract and caveats as
  /// ExprProgram::FromRaw (mutation-harness use only).
  static PredicateProgram FromRaw(std::vector<Conjunct> conjuncts,
                                  std::vector<ExprProgram> programs) {
    PredicateProgram p;
    p.conjuncts_ = std::move(conjuncts);
    p.programs_ = std::move(programs);
    return p;
  }

  /// Evaluates the conjunction over `row`; exactly
  /// EvalConjunction(preds, row, layout).
  bool EvalRow(const Row& row, EvalScratch* scratch) const;

  bool empty() const { return conjuncts_.empty(); }
  int size() const { return static_cast<int>(conjuncts_.size()); }

  /// Raw program form, consumed by the disassembler and the verifier.
  const std::vector<Conjunct>& conjuncts() const { return conjuncts_; }
  const std::vector<ExprProgram>& programs() const { return programs_; }

  /// Human-readable listing: one frame per conjunct (lane tag, operands,
  /// comparison), nested ExprProgram listings below their conjunct.
  std::string Disassemble(const RowLayout& layout,
                          const ColumnCatalog& columns) const;
  std::string Disassemble() const;

 private:
  static Result<Operand> CompileOperand(const ExprPtr& expr,
                                        const RowLayout& layout,
                                        const ColumnCatalog& columns,
                                        std::vector<ExprProgram>* programs);

  const Value* EvalOperand(const Operand& o, const Row& row,
                           EvalScratch* scratch, Value* tmp) const;

  std::vector<Conjunct> conjuncts_;
  std::vector<ExprProgram> programs_;
};

}  // namespace aggview

#endif  // AGGVIEW_EXEC_COMPILE_EXPR_COMPILER_H_
