#ifndef AGGVIEW_EXEC_COMPILE_DISASM_H_
#define AGGVIEW_EXEC_COMPILE_DISASM_H_

#include <string>

#include "algebra/column.h"
#include "exec/compile/expr_compiler.h"

namespace aggview {

/// Bytecode disassembler: renders ExprProgram / PredicateProgram as a
/// human-readable listing. Consumed by the bytecode_lint CLI, by the
/// verifier's error messages (every rejection quotes the offending
/// program), and by EXPLAIN ANALYZE's verbose mode.
///
/// The listing is one line per instruction:
///
///   0: load_col     [2]            ; e.sal
///   1: load_const   #0             ; 100
///   2: add_int
///   3: jump_if_not_null -> 5
///   4: pop
///
/// Typed lanes are part of the mnemonic (add_int / add_double /
/// add_generic), so a lane-retyping corruption is visible in the listing the
/// verifier quotes. Jump targets render as `-> target`; an out-of-range
/// operand renders with a `!` marker instead of crashing — the disassembler
/// must work on exactly the corrupted programs the verifier rejects.

/// Mnemonic of one opcode ("load_col", "add_int", ...); "op(<n>)" for a raw
/// byte outside the opcode range (corrupted programs stay printable).
std::string OpMnemonic(ExprProgram::Op op);

/// Lane tag name of one comparison lane ("generic", "int64", ...).
std::string CmpLaneName(PredicateProgram::CmpLane lane);

/// Listings. `layout`/`columns` may be null — operands then render as bare
/// slot indices instead of column names.
std::string DisassembleExpr(const ExprProgram& prog, const RowLayout* layout,
                            const ColumnCatalog* columns);
std::string DisassemblePredicate(const PredicateProgram& prog,
                                 const RowLayout* layout,
                                 const ColumnCatalog* columns);

}  // namespace aggview

#endif  // AGGVIEW_EXEC_COMPILE_DISASM_H_
