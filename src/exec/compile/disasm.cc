#include "exec/compile/disasm.h"

#include <cstddef>

#include "common/string_util.h"

namespace aggview {

namespace {

using Op = ExprProgram::Op;
using CmpLane = PredicateProgram::CmpLane;

bool IsArith(Op op) {
  switch (op) {
    case Op::kAddInt:
    case Op::kSubInt:
    case Op::kMulInt:
    case Op::kAddDouble:
    case Op::kSubDouble:
    case Op::kMulDouble:
    case Op::kDivDouble:
    case Op::kAddGeneric:
    case Op::kSubGeneric:
    case Op::kMulGeneric:
    case Op::kDivGeneric:
      return true;
    default:
      return false;
  }
}

/// Renders one operand of a conjunct frame.
std::string OperandString(const PredicateProgram::Operand& o,
                          const RowLayout* layout,
                          const ColumnCatalog* columns) {
  if (o.col >= 0) {
    std::string out = StrFormat("[%d]", o.col);
    if (layout != nullptr && columns != nullptr && o.col < layout->size()) {
      out += " " + columns->name(layout->columns()[static_cast<size_t>(o.col)]);
    } else if (layout != nullptr && o.col >= layout->size()) {
      out += "!";  // slot past the layout — corrupted, but printable
    }
    if (o.prog >= 0) out += StrFormat(" prog<%d>!", o.prog);  // ambiguous form
    return out;
  }
  if (o.prog >= 0) return StrFormat("prog<%d>", o.prog);
  return o.constant.ToString();
}

}  // namespace

std::string OpMnemonic(ExprProgram::Op op) {
  switch (op) {
    case Op::kLoadCol:
      return "load_col";
    case Op::kLoadConst:
      return "load_const";
    case Op::kAddInt:
      return "add_int";
    case Op::kSubInt:
      return "sub_int";
    case Op::kMulInt:
      return "mul_int";
    case Op::kAddDouble:
      return "add_double";
    case Op::kSubDouble:
      return "sub_double";
    case Op::kMulDouble:
      return "mul_double";
    case Op::kDivDouble:
      return "div_double";
    case Op::kAddGeneric:
      return "add_generic";
    case Op::kSubGeneric:
      return "sub_generic";
    case Op::kMulGeneric:
      return "mul_generic";
    case Op::kDivGeneric:
      return "div_generic";
    case Op::kJumpIfNotNull:
      return "jump_if_not_null";
    case Op::kPop:
      return "pop";
  }
  return StrFormat("op(%d)", static_cast<int>(op));
}

std::string CmpLaneName(PredicateProgram::CmpLane lane) {
  switch (lane) {
    case CmpLane::kGeneric:
      return "generic";
    case CmpLane::kInt64:
      return "int64";
    case CmpLane::kDouble:
      return "double";
    case CmpLane::kString:
      return "string";
    case CmpLane::kInt64ColConst:
      return "int64_col_const";
    case CmpLane::kDoubleColConst:
      return "double_col_const";
  }
  return StrFormat("lane(%d)", static_cast<int>(lane));
}

std::string DisassembleExpr(const ExprProgram& prog, const RowLayout* layout,
                            const ColumnCatalog* columns) {
  const auto& code = prog.code();
  const auto& consts = prog.consts();
  std::string out;
  for (size_t pc = 0; pc < code.size(); ++pc) {
    const ExprProgram::Insn& in = code[pc];
    out += StrFormat("%3d: %-16s", static_cast<int>(pc),
                     OpMnemonic(in.op).c_str());
    if (in.op == Op::kLoadCol) {
      out += StrFormat(" [%d]", in.a);
      if (in.a >= 0 && layout != nullptr && in.a < layout->size()) {
        if (columns != nullptr) {
          out += "            ; " +
                 columns->name(layout->columns()[static_cast<size_t>(in.a)]);
        }
      } else if (layout != nullptr) {
        out += "!";  // slot outside the layout
      }
    } else if (in.op == Op::kLoadConst) {
      out += StrFormat(" #%d", in.a);
      if (in.a >= 0 && static_cast<size_t>(in.a) < consts.size()) {
        out += "             ; " + consts[static_cast<size_t>(in.a)].ToString();
      } else {
        out += "!";  // constant index outside the pool
      }
    } else if (in.op == Op::kJumpIfNotNull) {
      out += StrFormat(" -> %d", in.a);
      if (in.a < 0 || static_cast<size_t>(in.a) > code.size()) out += "!";
    } else if (in.a != 0 && (IsArith(in.op) || in.op == Op::kPop)) {
      // Stackless instructions carry no operand; a nonzero field is
      // corruption worth showing.
      out += StrFormat(" a=%d!", in.a);
    }
    out += "\n";
  }
  if (out.empty()) out = "  <empty program>\n";
  return out;
}

std::string DisassemblePredicate(const PredicateProgram& prog,
                                 const RowLayout* layout,
                                 const ColumnCatalog* columns) {
  std::string out;
  const auto& conjuncts = prog.conjuncts();
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    const PredicateProgram::Conjunct& c = conjuncts[i];
    out += StrFormat("conjunct %d: %s %s %s  lane=%s\n", static_cast<int>(i),
                     OperandString(c.lhs, layout, columns).c_str(),
                     CompareOpSymbol(c.op),
                     OperandString(c.rhs, layout, columns).c_str(),
                     CmpLaneName(c.lane).c_str());
  }
  if (conjuncts.empty()) out += "<empty conjunction: always true>\n";
  for (size_t p = 0; p < prog.programs().size(); ++p) {
    out += StrFormat("prog<%d>:\n", static_cast<int>(p));
    out += DisassembleExpr(prog.programs()[p], layout, columns);
  }
  return out;
}

std::string ExprProgram::Disassemble(const RowLayout& layout,
                                     const ColumnCatalog& columns) const {
  return DisassembleExpr(*this, &layout, &columns);
}

std::string ExprProgram::Disassemble() const {
  return DisassembleExpr(*this, nullptr, nullptr);
}

std::string PredicateProgram::Disassemble(const RowLayout& layout,
                                          const ColumnCatalog& columns) const {
  return DisassemblePredicate(*this, &layout, &columns);
}

std::string PredicateProgram::Disassemble() const {
  return DisassemblePredicate(*this, nullptr, nullptr);
}

}  // namespace aggview
