#include "exec/operators.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "analysis/dataflow.h"
#include "cost/cost_model.h"
#include "exec/thread_pool.h"
#include "obs/runtime_stats.h"

namespace aggview {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Pages occupied by `rows` rows whose layout has `width` bytes.
double ActualPages(int64_t rows, int64_t width) {
  return CostModel::Pages(static_cast<double>(rows), width);
}

/// Concatenated layout of two inputs.
RowLayout ConcatLayouts(const RowLayout& a, const RowLayout& b) {
  std::vector<ColId> cols = a.columns();
  for (ColId c : b.columns()) cols.push_back(c);
  return RowLayout(cols);
}

/// Writes a|b into `out` (assumed empty), reusing its storage.
void ConcatInto(const Row& a, const Row& b, Row* out) {
  out->reserve(a.size() + b.size());
  out->insert(out->end(), a.begin(), a.end());
  out->insert(out->end(), b.begin(), b.end());
}

/// Rejects predicates that reference a column the operator's layout does not
/// carry. Column-ref eval on a missing column is undefined behavior in
/// release builds, so a malformed plan (e.g. an unsound transformation that
/// dropped a column a later predicate still needs) must fail cleanly at
/// Open() instead.
Status ValidatePredicateColumns(const std::vector<Predicate>& preds,
                                const RowLayout& layout, const char* op) {
  for (ColId c : ConjunctionColumns(preds)) {
    if (layout.IndexOf(c) < 0) {
      return Status::Internal(std::string(op) +
                              ": predicate column missing from input layout");
    }
  }
  return Status::OK();
}

/// Drains `op` batch-by-batch into `rows` (Open-time materialization).
Status Drain(Operator* op, int batch_size, std::vector<Row>* rows) {
  RowBatch batch(batch_size);
  while (true) {
    auto more = op->Next(&batch);
    if (!more.ok()) return more.status();
    if (!*more) return Status::OK();
    for (int i = 0; i < batch.size(); ++i) {
      rows->push_back(std::move(batch.row(i)));
    }
  }
}

}  // namespace

// ----------------------------------------------------------------- Operator

Operator::~Operator() = default;

Status Operator::Open() {
  if (stats_ == nullptr) return OpenImpl();
  int64_t t0 = NowNs();
  Status s = OpenImpl();
  stats_->open_ns += NowNs() - t0;
  return s;
}

Result<bool> Operator::Next(RowBatch* out) {
  out->Clear();
  if (stats_ == nullptr && verify_ == nullptr) return NextBatchImpl(out);
  int64_t t0 = stats_ != nullptr ? NowNs() : 0;
  Result<bool> r = NextBatchImpl(out);
  if (stats_ != nullptr) {
    stats_->next_ns += NowNs() - t0;
    ++stats_->next_calls;
    if (r.ok() && *r) {
      ++stats_->batches_produced;
      stats_->rows_produced += out->size();
    }
  }
  if (verify_ != nullptr && r.ok() && *r) {
    AGGVIEW_RETURN_NOT_OK(verify_->CheckBatch(verify_node_, layout_, *out));
  }
  return r;
}

void Operator::Close() { CloseImpl(); }

void Operator::AbsorbWorker(Operator& worker) {
  if (stats_ != nullptr && worker.stats_ != nullptr) {
    stats_->MergeFrom(*worker.stats_);
  }
}

void Operator::InitWorkerClone(const Operator& primary) {
  layout_ = primary.layout_;
  batch_size_ = primary.batch_size_;
  exec_ = primary.exec_;
  verify_ = primary.verify_;
  verify_node_ = primary.verify_node_;
  parallel_mode_ = true;
  if (primary.stats_ != nullptr) {
    owned_stats_ = std::make_unique<OpStats>();
    owned_stats_->op_name = primary.stats_->op_name;
    stats_ = owned_stats_.get();
  }
}

void Operator::ChargeRead(IoAccountant* io, int64_t pages) {
  if (io != nullptr) io->ChargeRead(pages);
  if (stats_ != nullptr) stats_->pages_charged += pages;
}

void Operator::ChargeWrite(IoAccountant* io, int64_t pages) {
  if (io != nullptr) io->ChargeWrite(pages);
  if (stats_ != nullptr) stats_->pages_charged += pages;
}

void Operator::CountInput(int64_t rows) {
  if (stats_ != nullptr) stats_->input_rows += rows;
}

// -------------------------------------------------- morsel-parallel driving

int MorselWorkers(const Operator& pipeline) {
  ExecRuntime* rt = pipeline.exec_runtime();
  if (rt == nullptr || !rt->parallel()) return 1;
  if (!pipeline.CanRunMorselParallel()) return 1;
  return rt->threads();
}

Status RunMorselParallel(Operator* primary, int workers,
                         const std::function<Status(int, Operator*)>& consume) {
  if (workers <= 1 || primary->exec_runtime() == nullptr ||
      !primary->CanRunMorselParallel()) {
    return consume(0, primary);
  }
  primary->EnterParallelMode();
  std::vector<OperatorPtr> clones;
  clones.reserve(static_cast<size_t>(workers - 1));
  for (int w = 1; w < workers; ++w) {
    clones.push_back(primary->CloneForWorker());
  }
  std::vector<Status> status(static_cast<size_t>(workers), Status::OK());
  primary->exec_runtime()->pool()->ParallelFor(workers, [&](int w) {
    Operator* instance =
        w == 0 ? primary : clones[static_cast<size_t>(w - 1)].get();
    status[static_cast<size_t>(w)] = consume(w, instance);
  });
  // Absorb every clone even on error (the counters stay consistent), but
  // fire the deferred charges only for a completed region. The first
  // worker's error (by index) wins, deterministically.
  for (OperatorPtr& clone : clones) primary->AbsorbWorker(*clone);
  for (const Status& s : status) {
    if (!s.ok()) return s;
  }
  primary->FinalizeParallelCharges();
  return Status::OK();
}

// ---------------------------------------------------------------- TableScan

TableScanOp::TableScanOp(const Table* table, RowLayout table_layout,
                         std::vector<Predicate> filter, RowLayout output,
                         IoAccountant* io, bool charge_io, ColId rowid_col)
    : table_(table),
      table_layout_(std::move(table_layout)),
      filter_(std::move(filter)),
      io_(io),
      charge_io_(charge_io) {
  layout_ = std::move(output);
  for (ColId c : layout_.columns()) {
    if (rowid_col != kInvalidColId && c == rowid_col) {
      projection_.push_back(kRowIdIndex);
    } else {
      projection_.push_back(table_layout_.IndexOf(c));
    }
  }
}

TableScanOp::TableScanOp(const TableScanOp& primary, WorkerCloneTag)
    : table_(primary.table_),
      table_layout_(primary.table_layout_),
      filter_(primary.filter_),
      projection_(primary.projection_),
      io_(primary.io_),
      charge_io_(false),  // the primary charged the table's pages at Open
      morsels_(primary.morsels_) {
  InitWorkerClone(primary);
}

OperatorPtr TableScanOp::CloneForWorker() {
  return OperatorPtr(new TableScanOp(*this, WorkerCloneTag{}));
}

Status TableScanOp::OpenImpl() {
  morsels_ = std::make_shared<MorselDispenser>();
  if (exec_ != nullptr) morsels_->morsel_rows = exec_->morsel_rows();
  pos_ = pos_end_ = 0;
  if (charge_io_) ChargeRead(io_, table_->page_count());
  for (int idx : projection_) {
    if (idx < 0 && idx != kRowIdIndex) {
      return Status::Internal("scan projects a non-table column");
    }
  }
  return Status::OK();
}

Result<bool> TableScanOp::NextBatchImpl(RowBatch* out) {
  const int64_t n = table_->row_count();
  int64_t examined = 0;
  while (!out->full()) {
    if (pos_ >= pos_end_) {
      // Claim the next morsel. A lone instance claims every morsel in
      // ascending order — identical row order to the pre-morsel scan.
      int64_t start = morsels_->next.fetch_add(morsels_->morsel_rows,
                                               std::memory_order_relaxed);
      if (start >= n) break;
      pos_ = start;
      pos_end_ = std::min(n, start + morsels_->morsel_rows);
    }
    while (pos_ < pos_end_ && !out->full()) {
      int64_t rowid = pos_;
      const Row& row = table_->row(pos_++);
      ++examined;
      if (!EvalConjunction(filter_, row, table_layout_)) continue;
      Row& dst = out->AppendRow();
      dst.reserve(projection_.size());
      for (int idx : projection_) {
        if (idx == kRowIdIndex) {
          dst.push_back(Value::Int(rowid));
        } else {
          dst.push_back(row[static_cast<size_t>(idx)]);
        }
      }
    }
  }
  CountInput(examined);
  return !out->empty();
}

// ------------------------------------------------------------------- Filter

FilterOp::FilterOp(OperatorPtr child, std::vector<Predicate> preds)
    : child_(std::move(child)), preds_(std::move(preds)) {
  layout_ = child_->layout();
}

FilterOp::FilterOp(const FilterOp& primary, OperatorPtr child)
    : child_(std::move(child)),
      preds_(primary.preds_),
      compiled_preds_(primary.compiled_preds_) {
  InitWorkerClone(primary);
}

OperatorPtr FilterOp::CloneForWorker() {
  return OperatorPtr(new FilterOp(*this, child_->CloneForWorker()));
}

void FilterOp::AbsorbWorker(Operator& worker) {
  Operator::AbsorbWorker(worker);
  child_->AbsorbWorker(*static_cast<FilterOp&>(worker).child_);
}

void FilterOp::EnterParallelMode() {
  Operator::EnterParallelMode();
  child_->EnterParallelMode();
}

void FilterOp::FinalizeParallelCharges() { child_->FinalizeParallelCharges(); }

Status FilterOp::OpenImpl() {
  AGGVIEW_RETURN_NOT_OK(ValidatePredicateColumns(preds_, layout_, "filter"));
  return child_->Open();
}

Result<bool> FilterOp::NextBatchImpl(RowBatch* out) {
  while (true) {
    auto more = child_->Next(out);
    if (!more.ok()) return more.status();
    if (!*more) return false;
    CountInput(out->size());
    // Selection compaction: swap survivors to the front (buffer pointer
    // swaps, no row copies) and truncate.
    const PredicateProgram* prog = compiled_preds_.get();
    int kept = 0;
    for (int i = 0; i < out->size(); ++i) {
      Row& row = out->row(i);
      bool pass = prog != nullptr ? prog->EvalRow(row, &scratch_)
                                  : EvalConjunction(preds_, row, layout_);
      if (pass) {
        if (kept != i) out->row(kept).swap(row);
        ++kept;
      }
    }
    out->Truncate(kept);
    if (!out->empty()) return true;  // else the whole batch was filtered out
  }
}

void FilterOp::CloseImpl() { child_->Close(); }

// ------------------------------------------------------------------ Project

ProjectOp::ProjectOp(OperatorPtr child, RowLayout output)
    : child_(std::move(child)) {
  layout_ = std::move(output);
  for (ColId c : layout_.columns()) {
    projection_.push_back(child_->layout().IndexOf(c));
  }
}

ProjectOp::ProjectOp(const ProjectOp& primary, OperatorPtr child)
    : child_(std::move(child)), projection_(primary.projection_) {
  InitWorkerClone(primary);
}

OperatorPtr ProjectOp::CloneForWorker() {
  return OperatorPtr(new ProjectOp(*this, child_->CloneForWorker()));
}

void ProjectOp::AbsorbWorker(Operator& worker) {
  Operator::AbsorbWorker(worker);
  child_->AbsorbWorker(*static_cast<ProjectOp&>(worker).child_);
}

void ProjectOp::EnterParallelMode() {
  Operator::EnterParallelMode();
  child_->EnterParallelMode();
}

void ProjectOp::FinalizeParallelCharges() { child_->FinalizeParallelCharges(); }

Status ProjectOp::OpenImpl() {
  for (int idx : projection_) {
    if (idx < 0) return Status::Internal("projection references missing column");
  }
  return child_->Open();
}

Result<bool> ProjectOp::NextBatchImpl(RowBatch* out) {
  auto more = child_->Next(out);
  if (!more.ok()) return more.status();
  if (!*more) return false;
  CountInput(out->size());
  // Rewrite each row in place: build the projection in the reused scratch
  // buffer (projection may duplicate columns, so the row itself cannot be
  // the destination), then swap buffers — no allocation in steady state.
  for (int i = 0; i < out->size(); ++i) {
    Row& row = out->row(i);
    scratch_.clear();
    scratch_.reserve(projection_.size());
    for (int idx : projection_) {
      scratch_.push_back(row[static_cast<size_t>(idx)]);
    }
    row.swap(scratch_);
  }
  return true;
}

void ProjectOp::CloseImpl() { child_->Close(); }

// ----------------------------------------------------------------- HashJoin

namespace {

size_t HashKey(const Row& row, const std::vector<int>& idx) {
  size_t h = 1469598103934665603ull;
  for (int i : idx) {
    h ^= row[static_cast<size_t>(i)].Hash();
    h *= 1099511628211ull;
  }
  return h;
}

/// True when any join-key column of `row` is NULL. SQL equality is never
/// true on NULL, so such rows cannot match under any join algorithm.
bool HasNullKey(const Row& row, const std::vector<int>& idx) {
  for (int i : idx) {
    if (row[static_cast<size_t>(i)].is_null()) return true;
  }
  return false;
}

bool KeysEqual(const Row& a, const std::vector<int>& ai, const Row& b,
               const std::vector<int>& bi) {
  for (size_t k = 0; k < ai.size(); ++k) {
    const Value& av = a[static_cast<size_t>(ai[k])];
    const Value& bv = b[static_cast<size_t>(bi[k])];
    // SQL: NULL = NULL is not true, even though the grouping/sorting
    // convention (Value::Compare) treats NULLs as equal.
    if (av.is_null() || bv.is_null()) return false;
    if (av != bv) return false;
  }
  return true;
}

}  // namespace

HashJoinOp::HashJoinOp(OperatorPtr left, OperatorPtr right,
                       std::vector<std::pair<ColId, ColId>> keys,
                       std::vector<Predicate> residual,
                       const ColumnCatalog* columns, IoAccountant* io,
                       bool left_outer)
    : left_(std::move(left)),
      right_(std::move(right)),
      keys_(std::move(keys)),
      residual_(std::move(residual)),
      columns_(columns),
      io_(io),
      left_outer_(left_outer) {
  layout_ = ConcatLayouts(left_->layout(), right_->layout());
  for (const auto& [l, r] : keys_) {
    left_key_idx_.push_back(left_->layout().IndexOf(l));
    right_key_idx_.push_back(right_->layout().IndexOf(r));
  }
}

HashJoinOp::HashJoinOp(const HashJoinOp& primary, OperatorPtr left)
    : left_(std::move(left)),
      right_(nullptr),  // the build side was drained once, by the primary
      residual_(primary.residual_),
      compiled_residual_(primary.compiled_residual_),
      columns_(primary.columns_),
      io_(primary.io_),
      left_key_idx_(primary.left_key_idx_),
      right_key_idx_(primary.right_key_idx_),
      build_(primary.build_),
      charged_(true),  // deferred: the primary charges on merged totals
      left_outer_(primary.left_outer_) {
  InitWorkerClone(primary);
  probe_ = RowBatch(batch_size_);
}

OperatorPtr HashJoinOp::CloneForWorker() {
  return OperatorPtr(new HashJoinOp(*this, left_->CloneForWorker()));
}

void HashJoinOp::AbsorbWorker(Operator& worker) {
  Operator::AbsorbWorker(worker);
  auto& clone = static_cast<HashJoinOp&>(worker);
  left_rows_ += clone.left_rows_;
  left_->AbsorbWorker(*clone.left_);
}

void HashJoinOp::EnterParallelMode() {
  Operator::EnterParallelMode();
  left_->EnterParallelMode();
}

void HashJoinOp::FinalizeParallelCharges() {
  if (!charged_) ChargeAtProbeEos();
  left_->FinalizeParallelCharges();
}

Status HashJoinOp::BuildSerial() {
  build_->parts.resize(1);
  std::vector<Row> rows;
  AGGVIEW_RETURN_NOT_OK(Drain(right_.get(), batch_size_, &rows));
  right_rows_ = static_cast<int64_t>(rows.size());
  for (Row& r : rows) {
    // A NULL-keyed build row can never be matched; keep it out of the table.
    if (HasNullKey(r, right_key_idx_)) continue;
    size_t h = HashKey(r, right_key_idx_);
    build_->parts[0].emplace(h, std::move(r));
  }
  return Status::OK();
}

Status HashJoinOp::BuildParallel(int workers) {
  // Phase 1: worker pipelines drain the build side morsel-parallel into
  // thread-local (hash, row) spools; NULL-keyed rows are dropped here (they
  // can never match) but still counted toward the drained cardinality.
  struct Spool {
    std::vector<std::pair<size_t, Row>> rows;
    int64_t drained = 0;
  };
  std::vector<Spool> spools(static_cast<size_t>(workers));
  AGGVIEW_RETURN_NOT_OK(RunMorselParallel(
      right_.get(), workers, [&](int w, Operator* src) -> Status {
        Spool& spool = spools[static_cast<size_t>(w)];
        RowBatch batch(batch_size_);
        while (true) {
          auto more = src->Next(&batch);
          if (!more.ok()) return more.status();
          if (!*more) return Status::OK();
          spool.drained += batch.size();
          for (int i = 0; i < batch.size(); ++i) {
            Row& row = batch.row(i);
            if (HasNullKey(row, right_key_idx_)) continue;
            size_t h = HashKey(row, right_key_idx_);
            spool.rows.emplace_back(h, std::move(row));
          }
        }
      }));
  right_rows_ = 0;
  for (const Spool& s : spools) right_rows_ += s.drained;

  // Phase 2: partition by hash modulus, one hash table per worker. Each
  // partition task scans every spool but moves only the rows whose hash
  // lands in its partition — disjoint elements, so no synchronization.
  const size_t parts = static_cast<size_t>(workers);
  build_->parts.resize(parts);
  exec_->pool()->ParallelFor(workers, [&](int p) {
    auto& part = build_->parts[static_cast<size_t>(p)];
    for (Spool& s : spools) {
      for (auto& [h, row] : s.rows) {
        if (h % parts == static_cast<size_t>(p)) part.emplace(h, std::move(row));
      }
    }
  });
  return Status::OK();
}

Status HashJoinOp::OpenImpl() {
  for (int idx : left_key_idx_) {
    if (idx < 0) return Status::Internal("hash join: left key column missing");
  }
  for (int idx : right_key_idx_) {
    if (idx < 0) return Status::Internal("hash join: right key column missing");
  }
  AGGVIEW_RETURN_NOT_OK(
      ValidatePredicateColumns(residual_, layout_, "hash join"));
  AGGVIEW_RETURN_NOT_OK(left_->Open());
  AGGVIEW_RETURN_NOT_OK(right_->Open());
  build_ = std::make_shared<BuildTable>();
  int workers = MorselWorkers(*right_);
  if (workers > 1) {
    AGGVIEW_RETURN_NOT_OK(BuildParallel(workers));
  } else {
    AGGVIEW_RETURN_NOT_OK(BuildSerial());
  }
  CountInput(right_rows_);
  if (stats_ != nullptr) {
    stats_->hash_build_rows = build_->rows();
  }
  probe_ = RowBatch(batch_size_);
  probe_pos_ = 0;
  current_left_ = nullptr;
  return Status::OK();
}

void HashJoinOp::ChargeAtProbeEos() {
  // Same formula as the cost model, on actual sizes: one read of each
  // input, plus Grace partition spills when the smaller input exceeds the
  // buffer pool. In a parallel probe this runs once, on the driver, after
  // every worker's probe rows were summed into left_rows_ — so the charge
  // is byte-identical to the serial engine's.
  double lp = ActualPages(left_rows_, left_->layout().RowWidth(*columns_));
  double rp = ActualPages(right_rows_, right_->layout().RowWidth(*columns_));
  ChargeRead(io_, static_cast<int64_t>(lp + rp));
  double spill = CostModel::HashJoinLocalCost(lp, rp) - (lp + rp);
  ChargeWrite(io_, static_cast<int64_t>(spill / 2.0));
  ChargeRead(io_, static_cast<int64_t>(spill / 2.0));
  if (stats_ != nullptr) {
    stats_->spill_pages += static_cast<int64_t>(spill / 2.0) * 2;
  }
  charged_ = true;
}

Result<bool> HashJoinOp::NextBatchImpl(RowBatch* out) {
  while (true) {
    // Emit the pending matches of the current probe row, then its outer
    // padding if nothing matched. current_left_ points into probe_, which
    // stays untouched until every pending emission has drained.
    if (current_left_ != nullptr) {
      while (match_pos_ < matches_.size()) {
        if (out->full()) return true;
        Row& dst = out->AppendRow();
        ConcatInto(*current_left_, *matches_[match_pos_++], &dst);
        bool pass = compiled_residual_ != nullptr
                        ? compiled_residual_->EvalRow(dst, &scratch_)
                        : EvalConjunction(residual_, dst, layout_);
        if (pass) {
          emitted_for_left_ = true;
        } else {
          out->PopRow();
        }
      }
      if (left_outer_ && !emitted_for_left_ && !padded_for_left_) {
        if (out->full()) return true;
        padded_for_left_ = true;
        Row& dst = out->AppendRow();
        dst = *current_left_;
        dst.resize(static_cast<size_t>(layout_.size()), Value::Null());
      }
      current_left_ = nullptr;
    }
    // Advance to the next probe row, pulling a fresh batch when this one is
    // spent; one virtual dispatch brings in batch_size_ probe rows.
    if (probe_pos_ >= probe_.size()) {
      auto more = left_->Next(&probe_);
      if (!more.ok()) return more.status();
      if (!*more) {
        if (!charged_ && !parallel_mode_) ChargeAtProbeEos();
        return !out->empty();
      }
      left_rows_ += probe_.size();
      CountInput(probe_.size());
      probe_pos_ = 0;
    }
    current_left_ = &probe_.row(probe_pos_++);
    emitted_for_left_ = false;
    padded_for_left_ = false;
    matches_.clear();
    match_pos_ = 0;
    // SQL: a NULL probe key matches nothing (in outer mode the row still
    // surfaces as a padded row via the emission branch above).
    if (HasNullKey(*current_left_, left_key_idx_)) continue;
    if (stats_ != nullptr) ++stats_->hash_probes;
    size_t h = HashKey(*current_left_, left_key_idx_);
    const auto& part = build_->parts[h % build_->parts.size()];
    auto [begin, end] = part.equal_range(h);
    for (auto it = begin; it != end; ++it) {
      if (KeysEqual(*current_left_, left_key_idx_, it->second,
                    right_key_idx_)) {
        matches_.push_back(&it->second);
      }
    }
  }
}

void HashJoinOp::CloseImpl() {
  left_->Close();
  if (right_ != nullptr) right_->Close();
  build_.reset();
}

// ----------------------------------------------------------- NestedLoopJoin

NestedLoopJoinOp::NestedLoopJoinOp(OperatorPtr left, OperatorPtr right,
                                   std::vector<Predicate> preds,
                                   const ColumnCatalog* columns,
                                   IoAccountant* io,
                                   double inner_pages_per_pass,
                                   bool charge_materialize, bool left_outer)
    : left_(std::move(left)),
      right_(std::move(right)),
      preds_(std::move(preds)),
      columns_(columns),
      io_(io),
      inner_pages_per_pass_(inner_pages_per_pass),
      charge_materialize_(charge_materialize),
      left_outer_(left_outer) {
  layout_ = ConcatLayouts(left_->layout(), right_->layout());
}

Status NestedLoopJoinOp::OpenImpl() {
  AGGVIEW_RETURN_NOT_OK(
      ValidatePredicateColumns(preds_, layout_, "nested-loop join"));
  AGGVIEW_RETURN_NOT_OK(left_->Open());
  AGGVIEW_RETURN_NOT_OK(right_->Open());
  AGGVIEW_RETURN_NOT_OK(Drain(right_.get(), batch_size_, &inner_));
  CountInput(static_cast<int64_t>(inner_.size()));
  if (charge_materialize_) {
    double pages = ActualPages(static_cast<int64_t>(inner_.size()),
                               right_->layout().RowWidth(*columns_));
    ChargeWrite(io_, static_cast<int64_t>(pages));
  }
  // Split out equi-join conjuncts to index the inner (CPU only; the IO
  // accounting below is unaffected).
  left_key_idx_.clear();
  right_key_idx_.clear();
  residual_.clear();
  for (const Predicate& p : preds_) {
    ColId a, b;
    if (p.AsColumnEquality(&a, &b)) {
      int la = left_->layout().IndexOf(a), rb = right_->layout().IndexOf(b);
      if (la >= 0 && rb >= 0) {
        left_key_idx_.push_back(la);
        right_key_idx_.push_back(rb);
        continue;
      }
      int lb = left_->layout().IndexOf(b), ra = right_->layout().IndexOf(a);
      if (lb >= 0 && ra >= 0) {
        left_key_idx_.push_back(lb);
        right_key_idx_.push_back(ra);
        continue;
      }
    }
    residual_.push_back(p);
  }
  use_index_ = !left_key_idx_.empty();
  if (use_index_) {
    index_.clear();
    for (size_t i = 0; i < inner_.size(); ++i) {
      // NULL-keyed inner rows can never satisfy the equi-join conjuncts
      // (predicate eval rejects them on the slow path too); skip them.
      if (HasNullKey(inner_[i], right_key_idx_)) continue;
      index_.emplace(HashKey(inner_[i], right_key_idx_), i);
    }
    if (stats_ != nullptr) {
      stats_->hash_build_rows = static_cast<int64_t>(index_.size());
    }
  }
  outer_ = RowBatch(batch_size_);
  outer_pos_ = 0;
  current_left_ = nullptr;
  return Status::OK();
}

Result<bool> NestedLoopJoinOp::NextBatchImpl(RowBatch* out) {
  while (true) {
    if (current_left_ != nullptr) {
      if (use_index_) {
        while (probe_pos_ < probe_matches_.size()) {
          if (out->full()) return true;
          const Row& inner_row = inner_[probe_matches_[probe_pos_++]];
          if (!KeysEqual(*current_left_, left_key_idx_, inner_row,
                         right_key_idx_)) {
            continue;  // hash collision
          }
          Row& dst = out->AppendRow();
          ConcatInto(*current_left_, inner_row, &dst);
          if (EvalConjunction(residual_, dst, layout_)) {
            emitted_for_left_ = true;
          } else {
            out->PopRow();
          }
        }
      } else {
        while (inner_pos_ < inner_.size()) {
          if (out->full()) return true;
          Row& dst = out->AppendRow();
          ConcatInto(*current_left_, inner_[inner_pos_++], &dst);
          if (EvalConjunction(preds_, dst, layout_)) {
            emitted_for_left_ = true;
          } else {
            out->PopRow();
          }
        }
      }
      if (left_outer_ && !emitted_for_left_ && !padded_for_left_) {
        if (out->full()) return true;
        padded_for_left_ = true;
        Row& dst = out->AppendRow();
        dst = *current_left_;
        dst.resize(static_cast<size_t>(layout_.size()), Value::Null());
      }
      current_left_ = nullptr;
    }
    if (outer_pos_ >= outer_.size()) {
      auto more = left_->Next(&outer_);
      if (!more.ok()) return more.status();
      if (!*more) {
        if (!charged_) {
          double inner_pages = inner_pages_per_pass_;
          if (inner_pages <= 0.0) {
            inner_pages = ActualPages(static_cast<int64_t>(inner_.size()),
                                      right_->layout().RowWidth(*columns_));
          }
          double outer_pages =
              ActualPages(left_rows_, left_->layout().RowWidth(*columns_));
          ChargeRead(io_,
                     static_cast<int64_t>(
                         CostModel::BnlLocalCost(outer_pages, inner_pages)));
          charged_ = true;
        }
        return !out->empty();
      }
      left_rows_ += outer_.size();
      CountInput(outer_.size());
      outer_pos_ = 0;
    }
    current_left_ = &outer_.row(outer_pos_++);
    emitted_for_left_ = false;
    padded_for_left_ = false;
    inner_pos_ = 0;
    if (use_index_) {
      probe_matches_.clear();
      probe_pos_ = 0;
      // A NULL probe key matches nothing (the fallback path agrees: its
      // predicate eval is never true on NULL).
      if (HasNullKey(*current_left_, left_key_idx_)) continue;
      if (stats_ != nullptr) ++stats_->hash_probes;
      auto [begin, end] =
          index_.equal_range(HashKey(*current_left_, left_key_idx_));
      for (auto it = begin; it != end; ++it) {
        probe_matches_.push_back(it->second);
      }
    }
  }
}

void NestedLoopJoinOp::CloseImpl() {
  left_->Close();
  right_->Close();
  inner_.clear();
}

// ------------------------------------------------------------ SortMergeJoin

SortMergeJoinOp::SortMergeJoinOp(OperatorPtr left, OperatorPtr right,
                                 std::vector<std::pair<ColId, ColId>> keys,
                                 std::vector<Predicate> residual,
                                 const ColumnCatalog* columns,
                                 IoAccountant* io)
    : left_(std::move(left)),
      right_(std::move(right)),
      keys_(std::move(keys)),
      residual_(std::move(residual)),
      columns_(columns),
      io_(io) {
  layout_ = ConcatLayouts(left_->layout(), right_->layout());
  for (const auto& [l, r] : keys_) {
    left_key_idx_.push_back(left_->layout().IndexOf(l));
    right_key_idx_.push_back(right_->layout().IndexOf(r));
  }
}

namespace {

int CompareKeys(const Row& a, const std::vector<int>& ai, const Row& b,
                const std::vector<int>& bi) {
  for (size_t k = 0; k < ai.size(); ++k) {
    int c = a[static_cast<size_t>(ai[k])].Compare(b[static_cast<size_t>(bi[k])]);
    if (c != 0) return c;
  }
  return 0;
}

}  // namespace

Status SortMergeJoinOp::OpenImpl() {
  for (int idx : left_key_idx_) {
    if (idx < 0) return Status::Internal("merge join: left key column missing");
  }
  for (int idx : right_key_idx_) {
    if (idx < 0) return Status::Internal("merge join: right key column missing");
  }
  AGGVIEW_RETURN_NOT_OK(
      ValidatePredicateColumns(residual_, layout_, "merge join"));
  AGGVIEW_RETURN_NOT_OK(left_->Open());
  AGGVIEW_RETURN_NOT_OK(right_->Open());
  AGGVIEW_RETURN_NOT_OK(Drain(left_.get(), batch_size_, &lrows_));
  AGGVIEW_RETURN_NOT_OK(Drain(right_.get(), batch_size_, &rrows_));
  CountInput(static_cast<int64_t>(lrows_.size() + rrows_.size()));

  auto cmp = [](const std::vector<int>& idx) {
    return [&idx](const Row& a, const Row& b) {
      for (int i : idx) {
        int c = a[static_cast<size_t>(i)].Compare(b[static_cast<size_t>(i)]);
        if (c != 0) return c < 0;
      }
      return false;
    };
  };
  std::sort(lrows_.begin(), lrows_.end(), cmp(left_key_idx_));
  std::sort(rrows_.begin(), rrows_.end(), cmp(right_key_idx_));

  double lp = ActualPages(static_cast<int64_t>(lrows_.size()),
                          left_->layout().RowWidth(*columns_));
  double rp = ActualPages(static_cast<int64_t>(rrows_.size()),
                          right_->layout().RowWidth(*columns_));
  ChargeRead(io_, static_cast<int64_t>(lp + rp));
  double sort_io = CostModel::SortMergeLocalCost(lp, rp) - (lp + rp);
  ChargeWrite(io_, static_cast<int64_t>(sort_io / 2.0));
  ChargeRead(io_, static_cast<int64_t>(sort_io / 2.0));
  if (stats_ != nullptr) {
    stats_->spill_pages += static_cast<int64_t>(sort_io / 2.0) * 2;
  }
  li_ = ri_ = 0;
  in_block_ = false;
  return Status::OK();
}

Result<bool> SortMergeJoinOp::NextBatchImpl(RowBatch* out) {
  while (true) {
    if (in_block_) {
      if (block_r_ < block_r_end_) {
        if (out->full()) return true;
        Row& dst = out->AppendRow();
        ConcatInto(lrows_[block_l_], rrows_[block_r_++], &dst);
        if (!EvalConjunction(residual_, dst, layout_)) out->PopRow();
        continue;
      }
      // Advance within the key-equal block.
      ++block_l_;
      if (block_l_ < block_l_end_) {
        block_r_ = block_r_begin_;
        continue;
      }
      in_block_ = false;
      li_ = block_l_end_;
      ri_ = block_r_end_;
    }
    // Find the next key-equal block. NULL keys sort first (the grouping
    // convention of Value::Compare) but never satisfy SQL equality, so
    // NULL-keyed rows on either side are skipped, not matched.
    while (li_ < lrows_.size() && ri_ < rrows_.size()) {
      if (HasNullKey(lrows_[li_], left_key_idx_)) {
        ++li_;
        continue;
      }
      if (HasNullKey(rrows_[ri_], right_key_idx_)) {
        ++ri_;
        continue;
      }
      int c = CompareKeys(lrows_[li_], left_key_idx_, rrows_[ri_],
                          right_key_idx_);
      if (c < 0) {
        ++li_;
      } else if (c > 0) {
        ++ri_;
      } else {
        break;
      }
    }
    if (li_ >= lrows_.size() || ri_ >= rrows_.size()) return !out->empty();
    block_l_ = li_;
    block_l_end_ = li_ + 1;
    while (block_l_end_ < lrows_.size() &&
           CompareKeys(lrows_[block_l_end_], left_key_idx_, rrows_[ri_],
                       right_key_idx_) == 0) {
      ++block_l_end_;
    }
    block_r_begin_ = ri_;
    block_r_end_ = ri_ + 1;
    while (block_r_end_ < rrows_.size() &&
           CompareKeys(lrows_[li_], left_key_idx_, rrows_[block_r_end_],
                       right_key_idx_) == 0) {
      ++block_r_end_;
    }
    block_r_ = block_r_begin_;
    in_block_ = true;
  }
}

void SortMergeJoinOp::CloseImpl() {
  left_->Close();
  right_->Close();
  lrows_.clear();
  rrows_.clear();
}

// --------------------------------------------------------------------- Sort

SortOp::SortOp(OperatorPtr child, std::vector<OrderKey> keys,
               const ColumnCatalog* columns, IoAccountant* io)
    : child_(std::move(child)),
      keys_(std::move(keys)),
      columns_(columns),
      io_(io) {
  layout_ = child_->layout();
  for (const OrderKey& key : keys_) {
    key_idx_.push_back(layout_.IndexOf(key.column));
  }
}

Status SortOp::OpenImpl() {
  for (int idx : key_idx_) {
    if (idx < 0) return Status::Internal("sort key column missing from input");
  }
  AGGVIEW_RETURN_NOT_OK(child_->Open());
  rows_.clear();
  AGGVIEW_RETURN_NOT_OK(Drain(child_.get(), batch_size_, &rows_));
  CountInput(static_cast<int64_t>(rows_.size()));
  std::stable_sort(rows_.begin(), rows_.end(),
                   [this](const Row& a, const Row& b) {
                     for (size_t k = 0; k < keys_.size(); ++k) {
                       size_t i = static_cast<size_t>(key_idx_[k]);
                       int c = a[i].Compare(b[i]);
                       if (c != 0) return keys_[k].descending ? c > 0 : c < 0;
                     }
                     return false;
                   });
  double pages = ActualPages(static_cast<int64_t>(rows_.size()),
                             layout_.RowWidth(*columns_));
  double sort_io = CostModel::SortCost(pages);
  ChargeWrite(io_, static_cast<int64_t>(sort_io / 2.0));
  ChargeRead(io_, static_cast<int64_t>(sort_io / 2.0));
  if (stats_ != nullptr) {
    stats_->spill_pages += static_cast<int64_t>(sort_io / 2.0) * 2;
  }
  pos_ = 0;
  return Status::OK();
}

Result<bool> SortOp::NextBatchImpl(RowBatch* out) {
  while (pos_ < rows_.size() && !out->full()) {
    out->AppendRow() = rows_[pos_++];
  }
  return !out->empty();
}

void SortOp::CloseImpl() {
  child_->Close();
  rows_.clear();
}

// ------------------------------------------------------------ HashAggregate

HashAggregateOp::HashAggregateOp(OperatorPtr child, GroupBySpec spec,
                                 const ColumnCatalog* columns,
                                 IoAccountant* io)
    : child_(std::move(child)),
      spec_(std::move(spec)),
      columns_(columns),
      io_(io) {
  layout_ = RowLayout(spec_.OutputColumns());
}

Status HashAggregateOp::Accumulate(Operator* src,
                                   const std::vector<int>& group_idx,
                                   const std::vector<std::vector<int>>& arg_idx,
                                   GroupMap* groups, int64_t* input_rows) {
  // A whole input batch is accumulated per child dispatch; the group key and
  // argument buffers are reused across rows. In a parallel drain this runs
  // once per worker against a thread-local map and must not touch the
  // operator's shared stats block — the caller counts the summed input.
  RowBatch batch(batch_size_);
  Row key;
  std::vector<Value> args;
  while (true) {
    auto more = src->Next(&batch);
    if (!more.ok()) return more.status();
    if (!*more) return Status::OK();
    *input_rows += batch.size();
    for (int i = 0; i < batch.size(); ++i) {
      const Row& row = batch.row(i);
      key.clear();
      key.reserve(group_idx.size());
      for (int idx : group_idx) key.push_back(row[static_cast<size_t>(idx)]);
      auto it = groups->find(key);
      if (it == groups->end()) {
        Group g;
        for (const AggregateCall& a : spec_.aggregates) {
          g.accs.emplace_back(a.kind);
        }
        it = groups->emplace(key, std::move(g)).first;
      }
      for (size_t a = 0; a < spec_.aggregates.size(); ++a) {
        args.clear();
        for (int idx : arg_idx[a]) args.push_back(row[static_cast<size_t>(idx)]);
        it->second.accs[a].Add(args);
      }
    }
  }
}

Status HashAggregateOp::OpenImpl() {
  AGGVIEW_RETURN_NOT_OK(child_->Open());
  const RowLayout& in = child_->layout();

  std::vector<int> group_idx;
  for (ColId g : spec_.grouping) {
    int idx = in.IndexOf(g);
    if (idx < 0) return Status::Internal("group-by column missing from input");
    group_idx.push_back(idx);
  }
  std::vector<std::vector<int>> arg_idx;
  for (const AggregateCall& a : spec_.aggregates) {
    std::vector<int> idxs;
    for (ColId arg : a.args) {
      int idx = in.IndexOf(arg);
      if (idx < 0) return Status::Internal("aggregate argument missing from input");
      idxs.push_back(idx);
    }
    arg_idx.push_back(std::move(idxs));
  }

  GroupMap groups;
  int64_t input_rows = 0;
  int workers = MorselWorkers(*child_);
  if (workers > 1) {
    // Thread-local partial aggregation: every worker folds its morsels into
    // a private group table, then the partials merge on the driver in worker
    // order — AggAccumulator::Merge is the decomposable-aggregate combine
    // (and MEDIAN's exact sample concatenation), so the merged state is the
    // state a serial run would have reached.
    std::vector<GroupMap> partials(static_cast<size_t>(workers));
    std::vector<int64_t> counts(static_cast<size_t>(workers), 0);
    AGGVIEW_RETURN_NOT_OK(RunMorselParallel(
        child_.get(), workers, [&](int w, Operator* src) {
          return Accumulate(src, group_idx, arg_idx,
                            &partials[static_cast<size_t>(w)],
                            &counts[static_cast<size_t>(w)]);
        }));
    groups = std::move(partials[0]);
    for (int w = 1; w < workers; ++w) {
      for (auto& [key, group] : partials[static_cast<size_t>(w)]) {
        auto it = groups.find(key);
        if (it == groups.end()) {
          groups.emplace(key, std::move(group));
        } else {
          for (size_t a = 0; a < group.accs.size(); ++a) {
            it->second.accs[a].Merge(group.accs[a]);
          }
        }
      }
    }
    for (int64_t c : counts) input_rows += c;
    if (stats_ != nullptr) stats_->workers = workers;
  } else {
    AGGVIEW_RETURN_NOT_OK(
        Accumulate(child_.get(), group_idx, arg_idx, &groups, &input_rows));
  }
  CountInput(input_rows);

  // SQL: a scalar aggregate (no GROUP BY) over zero input rows yields
  // exactly one row — COUNT = 0, SUM/MIN/MAX/AVG = NULL. Grouped queries
  // correctly yield no rows.
  if (groups.empty() && spec_.grouping.empty()) {
    Group g;
    for (const AggregateCall& a : spec_.aggregates) {
      g.accs.emplace_back(a.kind);
    }
    groups.emplace(Row{}, std::move(g));
  }

  double in_pages = ActualPages(input_rows, in.RowWidth(*columns_));
  double spill = CostModel::HashAggLocalCost(in_pages);
  ChargeWrite(io_, static_cast<int64_t>(spill / 2.0));
  ChargeRead(io_, static_cast<int64_t>(spill / 2.0));
  if (stats_ != nullptr) {
    stats_->spill_pages += static_cast<int64_t>(spill / 2.0) * 2;
    stats_->hash_build_rows = static_cast<int64_t>(groups.size());
  }

  results_.clear();
  for (auto& [group_key, group] : groups) {
    Row out = group_key;
    for (AggAccumulator& acc : group.accs) out.push_back(acc.Finish());
    bool pass = compiled_having_ != nullptr
                    ? compiled_having_->EvalRow(out, &scratch_)
                    : EvalConjunction(spec_.having, out, layout_);
    if (!pass) continue;
    results_.push_back(std::move(out));
  }
  pos_ = 0;
  return Status::OK();
}

Result<bool> HashAggregateOp::NextBatchImpl(RowBatch* out) {
  while (pos_ < results_.size() && !out->full()) {
    out->AppendRow() = results_[pos_++];
  }
  return !out->empty();
}

void HashAggregateOp::CloseImpl() {
  child_->Close();
  results_.clear();
}

}  // namespace aggview
