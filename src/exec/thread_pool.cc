#include "exec/thread_pool.h"

namespace aggview {

ThreadPool::ThreadPool(int threads) {
  int background = threads - 1;
  workers_.reserve(background > 0 ? static_cast<size_t>(background) : 0);
  for (int i = 0; i < background; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  int64_t seen = 0;
  while (true) {
    const std::function<void(int)>* fn;
    int tasks;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && generation_ <= seen) work_cv_.wait(lock);
      if (generation_ <= seen) return;  // shutdown with no pending generation
      seen = generation_;
      fn = fn_;
      tasks = tasks_;
    }
    while (true) {
      int i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks) break;
      (*fn)(i);
    }
    {
      MutexLock lock(&mu_);
      if (++finished_ == static_cast<int>(workers_.size())) {
        done_cv_.notify_one();
      }
    }
  }
}

void ThreadPool::ParallelFor(int tasks, const std::function<void(int)>& fn) {
  if (tasks <= 0) return;
  if (workers_.empty()) {
    // Serial pool: no shared state is touched, so any number of drivers may
    // run their loops concurrently without the lease.
    for (int i = 0; i < tasks; ++i) fn(i);
    return;
  }
  // Take the FIFO driver lease: one whole parallel region runs at a time,
  // regions are granted in ticket (arrival) order.
  int64_t ticket;
  {
    MutexLock lock(&driver_mu_);
    ticket = next_ticket_++;
    while (serving_ticket_ != ticket) driver_cv_.wait(lock);
  }
  {
    MutexLock lock(&mu_);
    fn_ = &fn;
    tasks_ = tasks;
    next_.store(0, std::memory_order_relaxed);
    finished_ = 0;
    ++generation_;
  }
  work_cv_.notify_all();
  // The driver claims tasks alongside the workers.
  while (true) {
    int i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= tasks) break;
    fn(i);
  }
  {
    MutexLock lock(&mu_);
    while (finished_ != static_cast<int>(workers_.size())) done_cv_.wait(lock);
    fn_ = nullptr;
  }
  {
    MutexLock lock(&driver_mu_);
    ++serving_ticket_;
  }
  driver_cv_.notify_all();
}

int ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? static_cast<int>(n) : 1;
}

}  // namespace aggview
