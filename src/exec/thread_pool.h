#ifndef AGGVIEW_EXEC_THREAD_POOL_H_
#define AGGVIEW_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace aggview {

/// A fixed-size worker pool for morsel-driven parallel execution.
///
/// The pool is built for the executor's usage pattern: the driver thread
/// issues one ParallelFor at a time (pipeline instances over a shared morsel
/// dispenser, partition tasks of a parallel hash-join build) and blocks until
/// it completes. Workers are spawned once at construction and parked on a
/// condition variable between calls, so a query plan with several parallel
/// regions pays the thread-creation cost once, not per region.
///
/// ParallelFor runs `fn(0) .. fn(tasks - 1)`, each exactly once. Task indices
/// are claimed from a shared atomic counter, so long and short tasks balance
/// dynamically; the calling thread participates, which makes a 1-thread pool
/// a plain serial loop with no synchronization beyond one atomic per task.
///
/// Not reentrant: ParallelFor must not be called from inside a task. Multiple
/// threads may drive the pool concurrently (a server's client sessions sharing
/// one pool): calls queue on a FIFO driver lease, so parallel regions from
/// different queries interleave at region granularity in arrival order — the
/// serving layer's fair inter-query scheduling. Within one query the executor
/// still parallelizes one pipeline region at a time; nested operators run
/// their parallel drains during Open, strictly before the enclosing region's
/// ParallelFor starts.
class ThreadPool {
 public:
  /// A pool that runs ParallelFor on `threads` threads total: the caller plus
  /// `threads - 1` background workers. `threads <= 1` spawns nothing.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(i) for every i in [0, tasks), distributing indices dynamically
  /// across the pool's threads plus the calling thread. Returns when every
  /// task has finished and every worker has quiesced, so `fn` and anything it
  /// captured may be destroyed immediately after. Writes made by tasks
  /// happen-before the return (the completion handshake is a mutex).
  ///
  /// Safe to call from several driver threads at once: callers take a FIFO
  /// ticket and run their region exclusively when their turn comes, so no
  /// driver starves however busy the pool is.
  void ParallelFor(int tasks, const std::function<void(int)>& fn);

  /// Threads the hardware runs concurrently (>= 1; hardware_concurrency with
  /// a fallback when the runtime reports 0).
  static int HardwareThreads();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  Mutex mu_;
  // condition_variable_any, because the annotated MutexLock (not a
  // std::unique_lock<std::mutex>) is what wait() releases and reacquires.
  std::condition_variable_any work_cv_;  // signals a new generation / shutdown
  std::condition_variable_any done_cv_;  // signals all workers finished
  const std::function<void(int)>* fn_ AGGVIEW_GUARDED_BY(mu_) = nullptr;
  int tasks_ AGGVIEW_GUARDED_BY(mu_) = 0;
  std::atomic<int> next_ AGGVIEW_LOCK_FREE("atomic task-index claim"){0};
  // Every worker passes through every generation exactly once and reports in
  // via finished_; ParallelFor waits for all of them before returning, so a
  // straggler can never carry a stale fn_ into the next generation.
  int64_t generation_ AGGVIEW_GUARDED_BY(mu_) = 0;
  int finished_ AGGVIEW_GUARDED_BY(mu_) = 0;
  bool shutdown_ AGGVIEW_GUARDED_BY(mu_) = false;

  // FIFO driver lease: concurrent ParallelFor callers draw a ticket and wait
  // until it is served, so whole parallel regions from different drivers
  // never overlap and are granted in arrival order.
  Mutex driver_mu_;
  std::condition_variable_any driver_cv_;
  int64_t next_ticket_ AGGVIEW_GUARDED_BY(driver_mu_) = 0;
  int64_t serving_ticket_ AGGVIEW_GUARDED_BY(driver_mu_) = 0;
};

}  // namespace aggview

#endif  // AGGVIEW_EXEC_THREAD_POOL_H_
