#ifndef AGGVIEW_EXEC_EXECUTOR_H_
#define AGGVIEW_EXEC_EXECUTOR_H_

#include <string>
#include <vector>

#include "exec/lowering.h"

namespace aggview {

/// A fully materialized query result: the output layout plus every row.
struct QueryResult {
  RowLayout layout;
  std::vector<Row> rows;

  /// Canonical multiset rendering: each row serialized and the lines sorted.
  /// Two results are semantically equal iff their fingerprints match (used
  /// by the transformation-equivalence property tests).
  std::string Fingerprint() const;

  /// Tabular rendering for examples.
  std::string ToString(const ColumnCatalog& columns) const;
};

/// Lowers and runs `plan` batch-at-a-time, charging `io` (which may be
/// null). When `stats` is non-null, every operator records OpStats into it
/// (EXPLAIN ANALYZE); when null, execution is uninstrumented and pays no
/// observability cost. `options` sets the batch size the whole operator tree
/// runs at; the result is identical for every batch size (the differential
/// fuzz harness asserts this), only the throughput changes.
Result<QueryResult> ExecutePlan(const PlanPtr& plan, const Query& query,
                                IoAccountant* io,
                                RuntimeStatsCollector* stats = nullptr,
                                ExecOptions options = ExecOptions::Default());

}  // namespace aggview

#endif  // AGGVIEW_EXEC_EXECUTOR_H_
