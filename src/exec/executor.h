#ifndef AGGVIEW_EXEC_EXECUTOR_H_
#define AGGVIEW_EXEC_EXECUTOR_H_

#include <string>
#include <vector>

#include "exec/lowering.h"

namespace aggview {

/// A fully materialized query result: the output layout plus every row.
struct QueryResult {
  RowLayout layout;
  std::vector<Row> rows;

  /// Canonical multiset rendering: each row serialized and the lines sorted.
  /// Two results are semantically equal iff their fingerprints match (used
  /// by the transformation-equivalence property tests).
  std::string Fingerprint() const;

  /// Tabular rendering for examples.
  std::string ToString(const ColumnCatalog& columns) const;
};

/// Lowers and runs `plan` batch-at-a-time under `ctx`:
///
///   ExecutePlan(plan, query, ExecContext{}.WithThreads(8).WithIo(&io));
///
/// `ctx.io` (nullable) receives the page charges, `ctx.stats` (nullable)
/// the EXPLAIN ANALYZE counters. `ctx.batch_size` sets the batch capacity
/// the whole operator tree runs at and `ctx.threads` the number of pipeline
/// instances driving morsel-parallel regions. The result is identical —
/// same rows, same charged pages — for every batch size and thread count
/// (the differential fuzz harness asserts both); only the throughput
/// changes.
Result<QueryResult> ExecutePlan(const PlanPtr& plan, const Query& query,
                                const ExecContext& ctx = ExecContext::Default());

}  // namespace aggview

#endif  // AGGVIEW_EXEC_EXECUTOR_H_
