#ifndef AGGVIEW_EXEC_LOWERING_H_
#define AGGVIEW_EXEC_LOWERING_H_

#include "exec/operators.h"
#include "optimizer/plan.h"

namespace aggview {

/// Lowers an optimized plan tree to a physical operator tree. Requires every
/// scanned table to have data loaded in the catalog.
Result<OperatorPtr> LowerPlan(const PlanPtr& plan, const Query& query,
                              IoAccountant* io);

}  // namespace aggview

#endif  // AGGVIEW_EXEC_LOWERING_H_
