#ifndef AGGVIEW_EXEC_LOWERING_H_
#define AGGVIEW_EXEC_LOWERING_H_

#include "exec/operators.h"
#include "exec/row_batch.h"
#include "optimizer/plan.h"

namespace aggview {

class RuntimeStatsCollector;

/// Lowers an optimized plan tree to a physical operator tree. Requires every
/// scanned table to have data loaded in the catalog.
///
/// When `ctx.stats` is non-null every operator is registered with the
/// collector (linked to the plan node it was lowered from) and instrumented;
/// when null the operators run uninstrumented — no clocks, no counters.
///
/// `ctx.batch_size` is installed on every operator, so the whole tree streams
/// batches of one size; `ctx.threads`/`ctx.morsel_rows`/`ctx.pool` configure
/// the shared ExecRuntime every operator is handed for its parallel regions.
Result<OperatorPtr> LowerPlan(const PlanPtr& plan, const Query& query,
                              const ExecContext& ctx);

}  // namespace aggview

#endif  // AGGVIEW_EXEC_LOWERING_H_
