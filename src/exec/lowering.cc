#include "exec/lowering.h"

#include <algorithm>
#include <utility>

#include "analysis/certificate.h"
#include "exec/compile/expr_compiler.h"
#include "exec/compile/fused_ops.h"
#include "exec/compile/verifier.h"
#include "obs/runtime_stats.h"

namespace aggview {

namespace {

/// Everything lowering threads through the recursion: the query, the IO
/// sink, the (optional) stats collector, and the execution options every
/// operator is configured with.
struct LowerCtx {
  const Query& query;
  IoAccountant* io;
  RuntimeStatsCollector* stats;
  ExecContext exec;
  /// Shared by every operator of this execution; carries the thread budget,
  /// morsel geometry and (lazily) the worker pool for parallel regions.
  std::shared_ptr<ExecRuntime> runtime;
};

/// Splits join predicates into equi-join key pairs (left col, right col) and
/// residual conjuncts.
void SplitJoinPredicates(const std::vector<Predicate>& preds,
                         const RowLayout& left, const RowLayout& right,
                         std::vector<std::pair<ColId, ColId>>* keys,
                         std::vector<Predicate>* residual) {
  for (const Predicate& p : preds) {
    ColId a, b;
    if (p.AsColumnEquality(&a, &b)) {
      if (left.Contains(a) && right.Contains(b)) {
        keys->emplace_back(a, b);
        continue;
      }
      if (left.Contains(b) && right.Contains(a)) {
        keys->emplace_back(b, a);
        continue;
      }
    }
    residual->push_back(p);
  }
}

/// Registers `op` as (part of) the lowering of `plan`, installs its stats
/// block, and configures its batch size. Operators are tagged bottom-up, so
/// the last tag for a plan node is its topmost operator (whose output is the
/// node's output).
///
/// `backend_label` feeds EXPLAIN ANALYZE's backend column: under the
/// compiled backend every operator is attributed either "compiled" (fused
/// kernel, or predicate/expression work running on bytecode) or "interpret"
/// (fell back to the Volcano interpreter). Under the interpreting backend
/// the label stays empty and EXPLAIN output is unchanged.
/// `fallback` is the short token EXPLAIN ANALYZE renders as `fallback=` for
/// operators that stayed interpreted although the compiled backend was
/// requested. It is recorded only for interpreted operators — a compiled
/// operator's token (e.g. a fused aggregate whose fusion attempt failed
/// earlier) would be stale.
OperatorPtr Tag(OperatorPtr op, const PlanPtr& plan, const char* name,
                const LowerCtx& ctx, const char* backend_label = nullptr,
                const char* fallback = nullptr) {
  op->set_batch_size(ctx.exec.batch_size);
  op->set_exec(ctx.runtime);
  if (ctx.stats != nullptr) {
    OpStats* stats = ctx.stats->Register(plan.get(), name);
    if (ctx.exec.backend == ExecBackend::kCompiled) {
      stats->backend = backend_label != nullptr ? backend_label : "interpret";
      if (fallback != nullptr && backend_label == nullptr) {
        stats->fallback = fallback;
      }
    }
    op->set_stats(stats);
  }
  if (ctx.exec.verify != nullptr) op->set_verify(ctx.exec.verify, plan.get());
  return op;
}

bool UseCompiled(const LowerCtx& ctx) {
  return ctx.exec.backend == ExecBackend::kCompiled;
}

/// One predicate-compilation attempt under the compiled backend. `prog` is
/// null when the attempt declined — either the conjunction does not compile
/// (a conjunct references a column the layout lacks, e.g. a synthetic rowid
/// column) or the bytecode verifier rejected the compiled program; the
/// caller then keeps the interpreted evaluation path and tags the operator
/// with `fallback`. The verification certificate is carried here until the
/// caller Commit()s it, so an abandoned fusion attempt leaves no stray
/// certificates in the audit.
struct PredCompile {
  std::shared_ptr<const PredicateProgram> prog;
  const char* fallback = nullptr;
  bool has_cert = false;
  CompilationCertificate cert;
};

/// Compiles `preds` against `layout` and — unless ctx.exec.bytecode_verify
/// is kOff — runs the bytecode verifier on the result before it is allowed
/// to execute. A rejected program is never returned: the certificate records
/// the instruction-indexed rejection and the caller falls back to the
/// interpreter (never a crash). The test-only tamper hook corrupts the
/// program between compilation and verification, so tests can prove the
/// rejection path end to end.
PredCompile CompileAndVerify(const std::vector<Predicate>& preds,
                             const RowLayout& layout, const LowerCtx& ctx,
                             const char* node, const char* kind) {
  PredCompile out;
  Result<PredicateProgram> compiled =
      PredicateProgram::Compile(preds, layout, ctx.query.columns());
  if (!compiled.ok()) {
    out.fallback = "predicate-shape";
    return out;
  }
  PredicateProgram prog = std::move(*compiled);
  if (BytecodeTamperHookForTesting()) {
    prog = BytecodeTamperHookForTesting()(prog);
  }
  if (ctx.exec.bytecode_verify != BytecodeVerifyMode::kOff) {
    // Listings are rendered only when an audit sink will record them; the
    // verdict itself never depends on them.
    out.cert = VerifyPredicateProgram(prog, preds, layout, ctx.query.columns(),
                                      ctx.exec.bytecode_verify, node, kind,
                                      /*want_listing=*/ctx.exec.audit != nullptr);
    out.has_cert = true;
    if (!out.cert.verified) {
      out.fallback = "verifier-rejected";
      return out;
    }
  }
  out.prog = std::make_shared<const PredicateProgram>(std::move(prog));
  return out;
}

/// Files the attempt's certificate into the audit sink (when both exist).
/// Called exactly once per program that reaches a final lowering decision;
/// fused kernels drop the certificates of an abandoned attempt instead (the
/// per-operator fallback path re-attempts and re-files them).
void Commit(const LowerCtx& ctx, PredCompile* pc) {
  if (pc->has_cert && ctx.exec.audit != nullptr) {
    ctx.exec.audit->compilations.push_back(std::move(pc->cert));
  }
  pc->has_cert = false;
}

/// Registers an interior stats block for a plan node a fused kernel covers
/// (the node has no operator of its own, but EXPLAIN ANALYZE and the
/// dataflow verifier's per-node cardinality checks still see its counters).
OpStats* RegisterInterior(const PlanPtr& node, const char* name,
                          const LowerCtx& ctx) {
  if (ctx.stats == nullptr) return nullptr;
  OpStats* stats = ctx.stats->Register(node.get(), name);
  stats->backend = "compiled";
  return stats;
}

/// Attempts the scan->filter->aggregate fused kernel for a kGroupBy over a
/// kScan or kFilter(kScan) shape. Returns null when the shape, the layouts
/// or the predicates are outside the kernel's coverage (the caller falls
/// back to HashAggregateOp) — including parallel execution, which uses
/// thread-local aggregation over a fused scan instead. `why` receives the
/// fallback token on a null return.
OperatorPtr TryLowerFusedAggregate(const PlanPtr& plan, const LowerCtx& ctx,
                                   const char** why) {
  if (ctx.runtime->parallel()) {
    *why = "parallel-aggregate";
    return nullptr;
  }
  const PlanPtr& child = plan->left;
  const PlanPtr* filter_plan = nullptr;
  const PlanPtr* scan_plan = nullptr;
  if (child->kind == PlanNode::Kind::kScan) {
    scan_plan = &child;
  } else if (child->kind == PlanNode::Kind::kFilter &&
             child->left->kind == PlanNode::Kind::kScan) {
    filter_plan = &child;
    scan_plan = &child->left;
  } else {
    *why = "plan-shape";
    return nullptr;
  }
  const RangeVar& rv = ctx.query.range_var((*scan_plan)->rel_id);
  const TableDef& def = ctx.query.catalog().table(rv.table);
  if (def.data == nullptr) {
    *why = "no-table-data";  // interpreted path reports it
    return nullptr;
  }

  const ColumnCatalog& columns = ctx.query.columns();
  CompiledAggregateOp::Spec spec;
  spec.table = def.data.get();
  spec.table_layout = RowLayout(rv.columns);
  for (ColId g : plan->group_by.grouping) {
    int idx = spec.table_layout.IndexOf(g);
    if (idx < 0) {
      *why = "derived-column";  // grouping on e.g. a synthetic rowid
      return nullptr;
    }
    spec.group_idx.push_back(idx);
  }
  for (const AggregateCall& a : plan->group_by.aggregates) {
    std::vector<int> idxs;
    for (ColId arg : a.args) {
      int idx = spec.table_layout.IndexOf(arg);
      if (idx < 0) {
        *why = "derived-column";
        return nullptr;
      }
      idxs.push_back(idx);
    }
    spec.arg_idx.push_back(std::move(idxs));
  }
  PredCompile scan_pc =
      CompileAndVerify((*scan_plan)->scan_filter, spec.table_layout, ctx,
                       "CompiledAggregate", "scan-filter");
  PredCompile filter_pc = CompileAndVerify(
      filter_plan != nullptr ? (*filter_plan)->filter_preds
                             : std::vector<Predicate>{},
      spec.table_layout, ctx, "CompiledAggregate", "filter");
  RowLayout out_layout(plan->group_by.OutputColumns());
  PredCompile having_pc = CompileAndVerify(plan->group_by.having, out_layout,
                                           ctx, "CompiledAggregate", "having");
  if (scan_pc.prog == nullptr || filter_pc.prog == nullptr ||
      having_pc.prog == nullptr) {
    *why = scan_pc.prog == nullptr
               ? scan_pc.fallback
               : (filter_pc.prog == nullptr ? filter_pc.fallback
                                            : having_pc.fallback);
    return nullptr;
  }
  Commit(ctx, &scan_pc);
  Commit(ctx, &filter_pc);
  Commit(ctx, &having_pc);
  spec.scan_filter = std::move(scan_pc.prog);
  spec.filter = std::move(filter_pc.prog);
  spec.having = std::move(having_pc.prog);
  spec.group_by = plan->group_by;
  spec.input_row_width = child->output.RowWidth(columns);
  spec.charge_scan = true;

  auto fused =
      std::make_unique<CompiledAggregateOp>(std::move(spec), &columns, ctx.io);
  CompiledAggregateOp* raw = fused.get();
  OperatorPtr op =
      Tag(std::move(fused), plan, "CompiledAggregate", ctx, "compiled");
  raw->set_scan_stats(RegisterInterior(*scan_plan, "TableScan", ctx));
  if (filter_plan != nullptr) {
    raw->set_filter_stats(RegisterInterior(*filter_plan, "Filter", ctx));
  }
  return op;
}

Result<OperatorPtr> Lower(const PlanPtr& plan, const LowerCtx& ctx,
                          bool charge_scan);

Result<OperatorPtr> LowerScan(const PlanPtr& plan, const LowerCtx& ctx,
                              bool charge_scan) {
  const RangeVar& rv = ctx.query.range_var(plan->rel_id);
  const TableDef& def = ctx.query.catalog().table(rv.table);
  if (def.data == nullptr) {
    return Status::ExecutionError("table '" + def.name + "' has no data loaded");
  }
  RowLayout table_layout(rv.columns);
  const char* fallback = nullptr;
  if (UseCompiled(ctx)) {
    PredCompile scan_pc = CompileAndVerify(plan->scan_filter, table_layout,
                                           ctx, "TableScan", "scan-filter");
    Commit(ctx, &scan_pc);
    if (scan_pc.prog != nullptr) {
      PredCompile no_filter = CompileAndVerify(
          std::vector<Predicate>{}, table_layout, ctx, "TableScan", "filter");
      Commit(ctx, &no_filter);
      if (no_filter.prog != nullptr) {
        OperatorPtr op = std::make_unique<FusedScanFilterOp>(
            def.data.get(), std::move(table_layout), std::move(scan_pc.prog),
            std::move(no_filter.prog), plan->output, ctx.io, charge_scan,
            rv.rowid);
        return Tag(std::move(op), plan, "TableScan", ctx, "compiled");
      }
      fallback = no_filter.fallback;
    } else {
      fallback = scan_pc.fallback;
    }
  }
  OperatorPtr op = std::make_unique<TableScanOp>(
      def.data.get(), std::move(table_layout), plan->scan_filter, plan->output,
      ctx.io, charge_scan, rv.rowid);
  return Tag(std::move(op), plan, "TableScan", ctx, nullptr, fallback);
}

/// Attempts the scan->filter->project fused kernel for a kFilter-over-kScan
/// shape: one operator covers both plan nodes. Returns null when a predicate
/// does not compile against the table layout (e.g. references the synthetic
/// rowid column) — the caller falls back to the operator-per-node pipeline.
OperatorPtr TryLowerFusedFilter(const PlanPtr& plan, const LowerCtx& ctx) {
  const PlanPtr& scan = plan->left;
  const RangeVar& rv = ctx.query.range_var(scan->rel_id);
  const TableDef& def = ctx.query.catalog().table(rv.table);
  if (def.data == nullptr) return nullptr;  // interpreted path reports it
  RowLayout table_layout(rv.columns);
  PredCompile scan_pc = CompileAndVerify(scan->scan_filter, table_layout, ctx,
                                         "FusedScanFilter", "scan-filter");
  PredCompile filter_pc = CompileAndVerify(plan->filter_preds, table_layout,
                                           ctx, "FusedScanFilter", "filter");
  if (scan_pc.prog == nullptr || filter_pc.prog == nullptr) return nullptr;
  Commit(ctx, &scan_pc);
  Commit(ctx, &filter_pc);
  auto fused = std::make_unique<FusedScanFilterOp>(
      def.data.get(), std::move(table_layout), std::move(scan_pc.prog),
      std::move(filter_pc.prog), plan->output, ctx.io, /*charge_io=*/true,
      rv.rowid);
  FusedScanFilterOp* raw = fused.get();
  OperatorPtr op =
      Tag(std::move(fused), plan, "FusedScanFilter", ctx, "compiled");
  raw->set_scan_stats(RegisterInterior(scan, "TableScan", ctx));
  return op;
}

Result<OperatorPtr> LowerJoin(const PlanPtr& plan, const LowerCtx& ctx) {
  // Mirror the costing convention of PlanBuilder::Join: a BNL over a bare
  // base-table scan charges per-pass rescans of the full table instead of a
  // one-time scan plus materialization.
  bool inner_is_bare_scan = plan->right->kind == PlanNode::Kind::kScan &&
                            plan->right->scan_filter.empty() &&
                            plan->algo == JoinAlgo::kBlockNestedLoop;

  AGGVIEW_ASSIGN_OR_RETURN(OperatorPtr left,
                           Lower(plan->left, ctx, /*charge_scan=*/true));
  AGGVIEW_ASSIGN_OR_RETURN(
      OperatorPtr right,
      Lower(plan->right, ctx, /*charge_scan=*/!inner_is_bare_scan));

  OperatorPtr join;
  const char* op_name = nullptr;
  const char* join_label = nullptr;
  const char* join_fallback = nullptr;
  JoinAlgo algo = plan->algo;
  if (plan->left_outer && algo == JoinAlgo::kSortMerge) {
    algo = JoinAlgo::kHash;  // merge join has no outer mode; hash does
  }
  switch (algo) {
    case JoinAlgo::kBlockNestedLoop: {
      double pages_per_pass = 0.0;
      bool charge_materialize = true;
      if (inner_is_bare_scan) {
        const RangeVar& rv = ctx.query.range_var(plan->right->rel_id);
        const TableDef& def = ctx.query.catalog().table(rv.table);
        pages_per_pass =
            def.data != nullptr
                ? static_cast<double>(def.data->page_count())
                : static_cast<double>(PagesForRows(def.stats.row_count,
                                                   def.schema.RowWidth()));
        charge_materialize = false;
      }
      join = std::make_unique<NestedLoopJoinOp>(
          std::move(left), std::move(right), plan->join_preds,
          &ctx.query.columns(), ctx.io, pages_per_pass, charge_materialize,
          plan->left_outer);
      op_name = "NestedLoopJoin";
      join_fallback = plan->left_outer ? "outer-join" : "nested-loop-join";
      break;
    }
    case JoinAlgo::kHash:
    case JoinAlgo::kSortMerge: {
      std::vector<std::pair<ColId, ColId>> keys;
      std::vector<Predicate> residual;
      SplitJoinPredicates(plan->join_preds, plan->left->output,
                          plan->right->output, &keys, &residual);
      if (keys.empty()) {
        return Status::Internal("hash/merge join lowered without equi-join keys");
      }
      if (algo == JoinAlgo::kHash) {
        std::vector<Predicate> residual_copy;
        if (UseCompiled(ctx)) residual_copy = residual;
        auto hj = std::make_unique<HashJoinOp>(
            std::move(left), std::move(right), std::move(keys),
            std::move(residual), &ctx.query.columns(), ctx.io,
            plan->left_outer);
        if (!residual_copy.empty()) {
          // Residual conjuncts see the concatenated probe row; compile them
          // against the join's own layout.
          PredCompile pc = CompileAndVerify(residual_copy, hj->layout(), ctx,
                                            "HashJoin", "join-residual");
          Commit(ctx, &pc);
          if (pc.prog != nullptr) {
            hj->set_compiled_residual(std::move(pc.prog));
            join_label = "compiled";
          } else {
            join_fallback = pc.fallback;
          }
        } else if (UseCompiled(ctx)) {
          // Key matching runs in the native probe loop; there is no
          // bytecode for this operator at all.
          join_fallback = "join-core-interpreted";
        }
        join = std::move(hj);
        op_name = "HashJoin";
      } else {
        join = std::make_unique<SortMergeJoinOp>(
            std::move(left), std::move(right), std::move(keys),
            std::move(residual), &ctx.query.columns(), ctx.io);
        op_name = "SortMergeJoin";
        join_fallback = "sort-merge-join";
      }
      break;
    }
  }
  join = Tag(std::move(join), plan, op_name, ctx, join_label, join_fallback);
  // Project the concatenated row down to the plan's output layout.
  if (join->layout().columns() != plan->output.columns()) {
    join = Tag(std::make_unique<ProjectOp>(std::move(join), plan->output),
               plan, "Project", ctx);
  }
  return join;
}

Result<OperatorPtr> Lower(const PlanPtr& plan, const LowerCtx& ctx,
                          bool charge_scan) {
  switch (plan->kind) {
    case PlanNode::Kind::kScan:
      return LowerScan(plan, ctx, charge_scan);
    case PlanNode::Kind::kFilter: {
      if (UseCompiled(ctx) && plan->left->kind == PlanNode::Kind::kScan) {
        if (OperatorPtr fused = TryLowerFusedFilter(plan, ctx)) return fused;
      }
      AGGVIEW_ASSIGN_OR_RETURN(OperatorPtr child,
                               Lower(plan->left, ctx, true));
      OperatorPtr op = std::move(child);
      if (!plan->filter_preds.empty()) {
        auto filter =
            std::make_unique<FilterOp>(std::move(op), plan->filter_preds);
        const char* label = nullptr;
        const char* fallback = nullptr;
        if (UseCompiled(ctx)) {
          PredCompile pc = CompileAndVerify(plan->filter_preds,
                                            filter->layout(), ctx, "Filter",
                                            "filter");
          Commit(ctx, &pc);
          if (pc.prog != nullptr) {
            filter->set_compiled_preds(std::move(pc.prog));
            label = "compiled";
          } else {
            fallback = pc.fallback;
          }
        }
        op = Tag(std::move(filter), plan, "Filter", ctx, label, fallback);
      }
      if (op->layout().columns() != plan->output.columns()) {
        op = Tag(std::make_unique<ProjectOp>(std::move(op), plan->output),
                 plan, "Project", ctx);
      }
      return op;
    }
    case PlanNode::Kind::kJoin:
      return LowerJoin(plan, ctx);
    case PlanNode::Kind::kGroupBy: {
      OperatorPtr op;
      const char* fused_why = nullptr;
      if (UseCompiled(ctx)) op = TryLowerFusedAggregate(plan, ctx, &fused_why);
      if (op == nullptr) {
        AGGVIEW_ASSIGN_OR_RETURN(OperatorPtr child,
                                 Lower(plan->left, ctx, true));
        auto agg = std::make_unique<HashAggregateOp>(
            std::move(child), plan->group_by, &ctx.query.columns(), ctx.io);
        const char* label = nullptr;
        const char* fallback = fused_why;
        if (UseCompiled(ctx) && !plan->group_by.having.empty()) {
          PredCompile pc = CompileAndVerify(plan->group_by.having,
                                            agg->layout(), ctx,
                                            "HashAggregate", "having");
          Commit(ctx, &pc);
          if (pc.prog != nullptr) {
            agg->set_compiled_having(std::move(pc.prog));
            label = "compiled";
          } else {
            fallback = pc.fallback;
          }
        }
        op = Tag(std::move(agg), plan, "HashAggregate", ctx, label, fallback);
      }
      if (op->layout().columns() != plan->output.columns()) {
        op = Tag(std::make_unique<ProjectOp>(std::move(op), plan->output),
                 plan, "Project", ctx);
      }
      return op;
    }
    case PlanNode::Kind::kSort: {
      AGGVIEW_ASSIGN_OR_RETURN(OperatorPtr child,
                               Lower(plan->left, ctx, true));
      OperatorPtr op = Tag(std::make_unique<SortOp>(std::move(child),
                                                    plan->sort_keys,
                                                    &ctx.query.columns(),
                                                    ctx.io),
                           plan, "Sort", ctx, nullptr, "sort");
      return op;
    }
  }
  return Status::Internal("unknown plan node kind");
}

}  // namespace

Result<OperatorPtr> LowerPlan(const PlanPtr& plan, const Query& query,
                              const ExecContext& ctx) {
  // Compilation certificates describe one lowering; a re-execution of the
  // same prepared plan refills them rather than accumulating stale entries.
  if (ctx.audit != nullptr) ctx.audit->compilations.clear();
  LowerCtx lctx{query, ctx.io, ctx.stats, ctx,
                std::make_shared<ExecRuntime>(ctx.threads, ctx.morsel_rows,
                                              ctx.pool)};
  return Lower(plan, lctx, /*charge_scan=*/true);
}

}  // namespace aggview
