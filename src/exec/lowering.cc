#include "exec/lowering.h"

#include <algorithm>

#include "exec/compile/expr_compiler.h"
#include "exec/compile/fused_ops.h"
#include "obs/runtime_stats.h"

namespace aggview {

namespace {

/// Everything lowering threads through the recursion: the query, the IO
/// sink, the (optional) stats collector, and the execution options every
/// operator is configured with.
struct LowerCtx {
  const Query& query;
  IoAccountant* io;
  RuntimeStatsCollector* stats;
  ExecContext exec;
  /// Shared by every operator of this execution; carries the thread budget,
  /// morsel geometry and (lazily) the worker pool for parallel regions.
  std::shared_ptr<ExecRuntime> runtime;
};

/// Splits join predicates into equi-join key pairs (left col, right col) and
/// residual conjuncts.
void SplitJoinPredicates(const std::vector<Predicate>& preds,
                         const RowLayout& left, const RowLayout& right,
                         std::vector<std::pair<ColId, ColId>>* keys,
                         std::vector<Predicate>* residual) {
  for (const Predicate& p : preds) {
    ColId a, b;
    if (p.AsColumnEquality(&a, &b)) {
      if (left.Contains(a) && right.Contains(b)) {
        keys->emplace_back(a, b);
        continue;
      }
      if (left.Contains(b) && right.Contains(a)) {
        keys->emplace_back(b, a);
        continue;
      }
    }
    residual->push_back(p);
  }
}

/// Registers `op` as (part of) the lowering of `plan`, installs its stats
/// block, and configures its batch size. Operators are tagged bottom-up, so
/// the last tag for a plan node is its topmost operator (whose output is the
/// node's output).
///
/// `backend_label` feeds EXPLAIN ANALYZE's backend column: under the
/// compiled backend every operator is attributed either "compiled" (fused
/// kernel, or predicate/expression work running on bytecode) or "interpret"
/// (fell back to the Volcano interpreter). Under the interpreting backend
/// the label stays empty and EXPLAIN output is unchanged.
OperatorPtr Tag(OperatorPtr op, const PlanPtr& plan, const char* name,
                const LowerCtx& ctx, const char* backend_label = nullptr) {
  op->set_batch_size(ctx.exec.batch_size);
  op->set_exec(ctx.runtime);
  if (ctx.stats != nullptr) {
    OpStats* stats = ctx.stats->Register(plan.get(), name);
    if (ctx.exec.backend == ExecBackend::kCompiled) {
      stats->backend = backend_label != nullptr ? backend_label : "interpret";
    }
    op->set_stats(stats);
  }
  if (ctx.exec.verify != nullptr) op->set_verify(ctx.exec.verify, plan.get());
  return op;
}

bool UseCompiled(const LowerCtx& ctx) {
  return ctx.exec.backend == ExecBackend::kCompiled;
}

/// Compiles a conjunction against `layout`, or returns null when any
/// conjunct references a column the layout lacks — the caller then keeps
/// the interpreted evaluation path (which reports the malformed plan, or
/// evaluates layouts the compiler does not cover, e.g. a synthetic rowid
/// column in a scan's output).
std::shared_ptr<const PredicateProgram> TryCompilePreds(
    const std::vector<Predicate>& preds, const RowLayout& layout,
    const ColumnCatalog& columns) {
  Result<PredicateProgram> compiled =
      PredicateProgram::Compile(preds, layout, columns);
  if (!compiled.ok()) return nullptr;
  return std::make_shared<const PredicateProgram>(std::move(*compiled));
}

/// Registers an interior stats block for a plan node a fused kernel covers
/// (the node has no operator of its own, but EXPLAIN ANALYZE and the
/// dataflow verifier's per-node cardinality checks still see its counters).
OpStats* RegisterInterior(const PlanPtr& node, const char* name,
                          const LowerCtx& ctx) {
  if (ctx.stats == nullptr) return nullptr;
  OpStats* stats = ctx.stats->Register(node.get(), name);
  stats->backend = "compiled";
  return stats;
}

/// Attempts the scan->filter->aggregate fused kernel for a kGroupBy over a
/// kScan or kFilter(kScan) shape. Returns null when the shape, the layouts
/// or the predicates are outside the kernel's coverage (the caller falls
/// back to HashAggregateOp) — including parallel execution, which uses
/// thread-local aggregation over a fused scan instead.
OperatorPtr TryLowerFusedAggregate(const PlanPtr& plan, const LowerCtx& ctx) {
  if (ctx.runtime->parallel()) return nullptr;
  const PlanPtr& child = plan->left;
  const PlanPtr* filter_plan = nullptr;
  const PlanPtr* scan_plan = nullptr;
  if (child->kind == PlanNode::Kind::kScan) {
    scan_plan = &child;
  } else if (child->kind == PlanNode::Kind::kFilter &&
             child->left->kind == PlanNode::Kind::kScan) {
    filter_plan = &child;
    scan_plan = &child->left;
  } else {
    return nullptr;
  }
  const RangeVar& rv = ctx.query.range_var((*scan_plan)->rel_id);
  const TableDef& def = ctx.query.catalog().table(rv.table);
  if (def.data == nullptr) return nullptr;  // interpreted path reports it

  const ColumnCatalog& columns = ctx.query.columns();
  CompiledAggregateOp::Spec spec;
  spec.table = def.data.get();
  spec.table_layout = RowLayout(rv.columns);
  for (ColId g : plan->group_by.grouping) {
    int idx = spec.table_layout.IndexOf(g);
    if (idx < 0) return nullptr;  // grouping on a derived column (e.g. rowid)
    spec.group_idx.push_back(idx);
  }
  for (const AggregateCall& a : plan->group_by.aggregates) {
    std::vector<int> idxs;
    for (ColId arg : a.args) {
      int idx = spec.table_layout.IndexOf(arg);
      if (idx < 0) return nullptr;
      idxs.push_back(idx);
    }
    spec.arg_idx.push_back(std::move(idxs));
  }
  spec.scan_filter =
      TryCompilePreds((*scan_plan)->scan_filter, spec.table_layout, columns);
  spec.filter = TryCompilePreds(
      filter_plan != nullptr ? (*filter_plan)->filter_preds
                             : std::vector<Predicate>{},
      spec.table_layout, columns);
  RowLayout out_layout(plan->group_by.OutputColumns());
  spec.having = TryCompilePreds(plan->group_by.having, out_layout, columns);
  if (spec.scan_filter == nullptr || spec.filter == nullptr ||
      spec.having == nullptr) {
    return nullptr;
  }
  spec.group_by = plan->group_by;
  spec.input_row_width = child->output.RowWidth(columns);
  spec.charge_scan = true;

  auto fused =
      std::make_unique<CompiledAggregateOp>(std::move(spec), &columns, ctx.io);
  CompiledAggregateOp* raw = fused.get();
  OperatorPtr op =
      Tag(std::move(fused), plan, "CompiledAggregate", ctx, "compiled");
  raw->set_scan_stats(RegisterInterior(*scan_plan, "TableScan", ctx));
  if (filter_plan != nullptr) {
    raw->set_filter_stats(RegisterInterior(*filter_plan, "Filter", ctx));
  }
  return op;
}

Result<OperatorPtr> Lower(const PlanPtr& plan, const LowerCtx& ctx,
                          bool charge_scan);

Result<OperatorPtr> LowerScan(const PlanPtr& plan, const LowerCtx& ctx,
                              bool charge_scan) {
  const RangeVar& rv = ctx.query.range_var(plan->rel_id);
  const TableDef& def = ctx.query.catalog().table(rv.table);
  if (def.data == nullptr) {
    return Status::ExecutionError("table '" + def.name + "' has no data loaded");
  }
  RowLayout table_layout(rv.columns);
  if (UseCompiled(ctx)) {
    auto scan_prog =
        TryCompilePreds(plan->scan_filter, table_layout, ctx.query.columns());
    if (scan_prog != nullptr) {
      auto no_filter = TryCompilePreds(std::vector<Predicate>{}, table_layout,
                                       ctx.query.columns());
      OperatorPtr op = std::make_unique<FusedScanFilterOp>(
          def.data.get(), std::move(table_layout), std::move(scan_prog),
          std::move(no_filter), plan->output, ctx.io, charge_scan, rv.rowid);
      return Tag(std::move(op), plan, "TableScan", ctx, "compiled");
    }
  }
  OperatorPtr op = std::make_unique<TableScanOp>(
      def.data.get(), std::move(table_layout), plan->scan_filter, plan->output,
      ctx.io, charge_scan, rv.rowid);
  return Tag(std::move(op), plan, "TableScan", ctx);
}

/// Attempts the scan->filter->project fused kernel for a kFilter-over-kScan
/// shape: one operator covers both plan nodes. Returns null when a predicate
/// does not compile against the table layout (e.g. references the synthetic
/// rowid column) — the caller falls back to the operator-per-node pipeline.
OperatorPtr TryLowerFusedFilter(const PlanPtr& plan, const LowerCtx& ctx) {
  const PlanPtr& scan = plan->left;
  const RangeVar& rv = ctx.query.range_var(scan->rel_id);
  const TableDef& def = ctx.query.catalog().table(rv.table);
  if (def.data == nullptr) return nullptr;  // interpreted path reports it
  const ColumnCatalog& columns = ctx.query.columns();
  RowLayout table_layout(rv.columns);
  auto scan_prog = TryCompilePreds(scan->scan_filter, table_layout, columns);
  auto filter_prog =
      TryCompilePreds(plan->filter_preds, table_layout, columns);
  if (scan_prog == nullptr || filter_prog == nullptr) return nullptr;
  auto fused = std::make_unique<FusedScanFilterOp>(
      def.data.get(), std::move(table_layout), std::move(scan_prog),
      std::move(filter_prog), plan->output, ctx.io, /*charge_io=*/true,
      rv.rowid);
  FusedScanFilterOp* raw = fused.get();
  OperatorPtr op =
      Tag(std::move(fused), plan, "FusedScanFilter", ctx, "compiled");
  raw->set_scan_stats(RegisterInterior(scan, "TableScan", ctx));
  return op;
}

Result<OperatorPtr> LowerJoin(const PlanPtr& plan, const LowerCtx& ctx) {
  // Mirror the costing convention of PlanBuilder::Join: a BNL over a bare
  // base-table scan charges per-pass rescans of the full table instead of a
  // one-time scan plus materialization.
  bool inner_is_bare_scan = plan->right->kind == PlanNode::Kind::kScan &&
                            plan->right->scan_filter.empty() &&
                            plan->algo == JoinAlgo::kBlockNestedLoop;

  AGGVIEW_ASSIGN_OR_RETURN(OperatorPtr left,
                           Lower(plan->left, ctx, /*charge_scan=*/true));
  AGGVIEW_ASSIGN_OR_RETURN(
      OperatorPtr right,
      Lower(plan->right, ctx, /*charge_scan=*/!inner_is_bare_scan));

  OperatorPtr join;
  const char* op_name = nullptr;
  const char* join_label = nullptr;
  JoinAlgo algo = plan->algo;
  if (plan->left_outer && algo == JoinAlgo::kSortMerge) {
    algo = JoinAlgo::kHash;  // merge join has no outer mode; hash does
  }
  switch (algo) {
    case JoinAlgo::kBlockNestedLoop: {
      double pages_per_pass = 0.0;
      bool charge_materialize = true;
      if (inner_is_bare_scan) {
        const RangeVar& rv = ctx.query.range_var(plan->right->rel_id);
        const TableDef& def = ctx.query.catalog().table(rv.table);
        pages_per_pass =
            def.data != nullptr
                ? static_cast<double>(def.data->page_count())
                : static_cast<double>(PagesForRows(def.stats.row_count,
                                                   def.schema.RowWidth()));
        charge_materialize = false;
      }
      join = std::make_unique<NestedLoopJoinOp>(
          std::move(left), std::move(right), plan->join_preds,
          &ctx.query.columns(), ctx.io, pages_per_pass, charge_materialize,
          plan->left_outer);
      op_name = "NestedLoopJoin";
      break;
    }
    case JoinAlgo::kHash:
    case JoinAlgo::kSortMerge: {
      std::vector<std::pair<ColId, ColId>> keys;
      std::vector<Predicate> residual;
      SplitJoinPredicates(plan->join_preds, plan->left->output,
                          plan->right->output, &keys, &residual);
      if (keys.empty()) {
        return Status::Internal("hash/merge join lowered without equi-join keys");
      }
      if (algo == JoinAlgo::kHash) {
        std::vector<Predicate> residual_copy;
        if (UseCompiled(ctx)) residual_copy = residual;
        auto hj = std::make_unique<HashJoinOp>(
            std::move(left), std::move(right), std::move(keys),
            std::move(residual), &ctx.query.columns(), ctx.io,
            plan->left_outer);
        if (!residual_copy.empty()) {
          // Residual conjuncts see the concatenated probe row; compile them
          // against the join's own layout.
          auto prog = TryCompilePreds(residual_copy, hj->layout(),
                                      ctx.query.columns());
          if (prog != nullptr) {
            hj->set_compiled_residual(std::move(prog));
            join_label = "compiled";
          }
        }
        join = std::move(hj);
        op_name = "HashJoin";
      } else {
        join = std::make_unique<SortMergeJoinOp>(
            std::move(left), std::move(right), std::move(keys),
            std::move(residual), &ctx.query.columns(), ctx.io);
        op_name = "SortMergeJoin";
      }
      break;
    }
  }
  join = Tag(std::move(join), plan, op_name, ctx, join_label);
  // Project the concatenated row down to the plan's output layout.
  if (join->layout().columns() != plan->output.columns()) {
    join = Tag(std::make_unique<ProjectOp>(std::move(join), plan->output),
               plan, "Project", ctx);
  }
  return join;
}

Result<OperatorPtr> Lower(const PlanPtr& plan, const LowerCtx& ctx,
                          bool charge_scan) {
  switch (plan->kind) {
    case PlanNode::Kind::kScan:
      return LowerScan(plan, ctx, charge_scan);
    case PlanNode::Kind::kFilter: {
      if (UseCompiled(ctx) && plan->left->kind == PlanNode::Kind::kScan) {
        if (OperatorPtr fused = TryLowerFusedFilter(plan, ctx)) return fused;
      }
      AGGVIEW_ASSIGN_OR_RETURN(OperatorPtr child,
                               Lower(plan->left, ctx, true));
      OperatorPtr op = std::move(child);
      if (!plan->filter_preds.empty()) {
        auto filter =
            std::make_unique<FilterOp>(std::move(op), plan->filter_preds);
        const char* label = nullptr;
        if (UseCompiled(ctx)) {
          auto prog = TryCompilePreds(plan->filter_preds, filter->layout(),
                                      ctx.query.columns());
          if (prog != nullptr) {
            filter->set_compiled_preds(std::move(prog));
            label = "compiled";
          }
        }
        op = Tag(std::move(filter), plan, "Filter", ctx, label);
      }
      if (op->layout().columns() != plan->output.columns()) {
        op = Tag(std::make_unique<ProjectOp>(std::move(op), plan->output),
                 plan, "Project", ctx);
      }
      return op;
    }
    case PlanNode::Kind::kJoin:
      return LowerJoin(plan, ctx);
    case PlanNode::Kind::kGroupBy: {
      OperatorPtr op;
      if (UseCompiled(ctx)) op = TryLowerFusedAggregate(plan, ctx);
      if (op == nullptr) {
        AGGVIEW_ASSIGN_OR_RETURN(OperatorPtr child,
                                 Lower(plan->left, ctx, true));
        auto agg = std::make_unique<HashAggregateOp>(
            std::move(child), plan->group_by, &ctx.query.columns(), ctx.io);
        const char* label = nullptr;
        if (UseCompiled(ctx) && !plan->group_by.having.empty()) {
          auto prog = TryCompilePreds(plan->group_by.having, agg->layout(),
                                      ctx.query.columns());
          if (prog != nullptr) {
            agg->set_compiled_having(std::move(prog));
            label = "compiled";
          }
        }
        op = Tag(std::move(agg), plan, "HashAggregate", ctx, label);
      }
      if (op->layout().columns() != plan->output.columns()) {
        op = Tag(std::make_unique<ProjectOp>(std::move(op), plan->output),
                 plan, "Project", ctx);
      }
      return op;
    }
    case PlanNode::Kind::kSort: {
      AGGVIEW_ASSIGN_OR_RETURN(OperatorPtr child,
                               Lower(plan->left, ctx, true));
      OperatorPtr op = Tag(std::make_unique<SortOp>(std::move(child),
                                                    plan->sort_keys,
                                                    &ctx.query.columns(),
                                                    ctx.io),
                           plan, "Sort", ctx);
      return op;
    }
  }
  return Status::Internal("unknown plan node kind");
}

}  // namespace

Result<OperatorPtr> LowerPlan(const PlanPtr& plan, const Query& query,
                              const ExecContext& ctx) {
  LowerCtx lctx{query, ctx.io, ctx.stats, ctx,
                std::make_shared<ExecRuntime>(ctx.threads, ctx.morsel_rows,
                                              ctx.pool)};
  return Lower(plan, lctx, /*charge_scan=*/true);
}

}  // namespace aggview
