#include "exec/lowering.h"

#include <algorithm>

#include "obs/runtime_stats.h"

namespace aggview {

namespace {

/// Everything lowering threads through the recursion: the query, the IO
/// sink, the (optional) stats collector, and the execution options every
/// operator is configured with.
struct LowerCtx {
  const Query& query;
  IoAccountant* io;
  RuntimeStatsCollector* stats;
  ExecContext exec;
  /// Shared by every operator of this execution; carries the thread budget,
  /// morsel geometry and (lazily) the worker pool for parallel regions.
  std::shared_ptr<ExecRuntime> runtime;
};

/// Splits join predicates into equi-join key pairs (left col, right col) and
/// residual conjuncts.
void SplitJoinPredicates(const std::vector<Predicate>& preds,
                         const RowLayout& left, const RowLayout& right,
                         std::vector<std::pair<ColId, ColId>>* keys,
                         std::vector<Predicate>* residual) {
  for (const Predicate& p : preds) {
    ColId a, b;
    if (p.AsColumnEquality(&a, &b)) {
      if (left.Contains(a) && right.Contains(b)) {
        keys->emplace_back(a, b);
        continue;
      }
      if (left.Contains(b) && right.Contains(a)) {
        keys->emplace_back(b, a);
        continue;
      }
    }
    residual->push_back(p);
  }
}

/// Registers `op` as (part of) the lowering of `plan`, installs its stats
/// block, and configures its batch size. Operators are tagged bottom-up, so
/// the last tag for a plan node is its topmost operator (whose output is the
/// node's output).
OperatorPtr Tag(OperatorPtr op, const PlanPtr& plan, const char* name,
                const LowerCtx& ctx) {
  op->set_batch_size(ctx.exec.batch_size);
  op->set_exec(ctx.runtime);
  if (ctx.stats != nullptr) op->set_stats(ctx.stats->Register(plan.get(), name));
  if (ctx.exec.verify != nullptr) op->set_verify(ctx.exec.verify, plan.get());
  return op;
}

Result<OperatorPtr> Lower(const PlanPtr& plan, const LowerCtx& ctx,
                          bool charge_scan);

Result<OperatorPtr> LowerScan(const PlanPtr& plan, const LowerCtx& ctx,
                              bool charge_scan) {
  const RangeVar& rv = ctx.query.range_var(plan->rel_id);
  const TableDef& def = ctx.query.catalog().table(rv.table);
  if (def.data == nullptr) {
    return Status::ExecutionError("table '" + def.name + "' has no data loaded");
  }
  OperatorPtr op = std::make_unique<TableScanOp>(
      def.data.get(), RowLayout(rv.columns), plan->scan_filter, plan->output,
      ctx.io, charge_scan, rv.rowid);
  return Tag(std::move(op), plan, "TableScan", ctx);
}

Result<OperatorPtr> LowerJoin(const PlanPtr& plan, const LowerCtx& ctx) {
  // Mirror the costing convention of PlanBuilder::Join: a BNL over a bare
  // base-table scan charges per-pass rescans of the full table instead of a
  // one-time scan plus materialization.
  bool inner_is_bare_scan = plan->right->kind == PlanNode::Kind::kScan &&
                            plan->right->scan_filter.empty() &&
                            plan->algo == JoinAlgo::kBlockNestedLoop;

  AGGVIEW_ASSIGN_OR_RETURN(OperatorPtr left,
                           Lower(plan->left, ctx, /*charge_scan=*/true));
  AGGVIEW_ASSIGN_OR_RETURN(
      OperatorPtr right,
      Lower(plan->right, ctx, /*charge_scan=*/!inner_is_bare_scan));

  OperatorPtr join;
  const char* op_name = nullptr;
  JoinAlgo algo = plan->algo;
  if (plan->left_outer && algo == JoinAlgo::kSortMerge) {
    algo = JoinAlgo::kHash;  // merge join has no outer mode; hash does
  }
  switch (algo) {
    case JoinAlgo::kBlockNestedLoop: {
      double pages_per_pass = 0.0;
      bool charge_materialize = true;
      if (inner_is_bare_scan) {
        const RangeVar& rv = ctx.query.range_var(plan->right->rel_id);
        const TableDef& def = ctx.query.catalog().table(rv.table);
        pages_per_pass =
            def.data != nullptr
                ? static_cast<double>(def.data->page_count())
                : static_cast<double>(PagesForRows(def.stats.row_count,
                                                   def.schema.RowWidth()));
        charge_materialize = false;
      }
      join = std::make_unique<NestedLoopJoinOp>(
          std::move(left), std::move(right), plan->join_preds,
          &ctx.query.columns(), ctx.io, pages_per_pass, charge_materialize,
          plan->left_outer);
      op_name = "NestedLoopJoin";
      break;
    }
    case JoinAlgo::kHash:
    case JoinAlgo::kSortMerge: {
      std::vector<std::pair<ColId, ColId>> keys;
      std::vector<Predicate> residual;
      SplitJoinPredicates(plan->join_preds, plan->left->output,
                          plan->right->output, &keys, &residual);
      if (keys.empty()) {
        return Status::Internal("hash/merge join lowered without equi-join keys");
      }
      if (algo == JoinAlgo::kHash) {
        join = std::make_unique<HashJoinOp>(std::move(left), std::move(right),
                                            std::move(keys), std::move(residual),
                                            &ctx.query.columns(), ctx.io,
                                            plan->left_outer);
        op_name = "HashJoin";
      } else {
        join = std::make_unique<SortMergeJoinOp>(
            std::move(left), std::move(right), std::move(keys),
            std::move(residual), &ctx.query.columns(), ctx.io);
        op_name = "SortMergeJoin";
      }
      break;
    }
  }
  join = Tag(std::move(join), plan, op_name, ctx);
  // Project the concatenated row down to the plan's output layout.
  if (join->layout().columns() != plan->output.columns()) {
    join = Tag(std::make_unique<ProjectOp>(std::move(join), plan->output),
               plan, "Project", ctx);
  }
  return join;
}

Result<OperatorPtr> Lower(const PlanPtr& plan, const LowerCtx& ctx,
                          bool charge_scan) {
  switch (plan->kind) {
    case PlanNode::Kind::kScan:
      return LowerScan(plan, ctx, charge_scan);
    case PlanNode::Kind::kFilter: {
      AGGVIEW_ASSIGN_OR_RETURN(OperatorPtr child,
                               Lower(plan->left, ctx, true));
      OperatorPtr op = std::move(child);
      if (!plan->filter_preds.empty()) {
        op = Tag(std::make_unique<FilterOp>(std::move(op), plan->filter_preds),
                 plan, "Filter", ctx);
      }
      if (op->layout().columns() != plan->output.columns()) {
        op = Tag(std::make_unique<ProjectOp>(std::move(op), plan->output),
                 plan, "Project", ctx);
      }
      return op;
    }
    case PlanNode::Kind::kJoin:
      return LowerJoin(plan, ctx);
    case PlanNode::Kind::kGroupBy: {
      AGGVIEW_ASSIGN_OR_RETURN(OperatorPtr child,
                               Lower(plan->left, ctx, true));
      OperatorPtr op =
          Tag(std::make_unique<HashAggregateOp>(std::move(child),
                                                plan->group_by,
                                                &ctx.query.columns(), ctx.io),
              plan, "HashAggregate", ctx);
      if (op->layout().columns() != plan->output.columns()) {
        op = Tag(std::make_unique<ProjectOp>(std::move(op), plan->output),
                 plan, "Project", ctx);
      }
      return op;
    }
    case PlanNode::Kind::kSort: {
      AGGVIEW_ASSIGN_OR_RETURN(OperatorPtr child,
                               Lower(plan->left, ctx, true));
      OperatorPtr op = Tag(std::make_unique<SortOp>(std::move(child),
                                                    plan->sort_keys,
                                                    &ctx.query.columns(),
                                                    ctx.io),
                           plan, "Sort", ctx);
      return op;
    }
  }
  return Status::Internal("unknown plan node kind");
}

}  // namespace

Result<OperatorPtr> LowerPlan(const PlanPtr& plan, const Query& query,
                              const ExecContext& ctx) {
  LowerCtx lctx{query, ctx.io, ctx.stats, ctx,
                std::make_shared<ExecRuntime>(ctx.threads, ctx.morsel_rows,
                                              ctx.pool)};
  return Lower(plan, lctx, /*charge_scan=*/true);
}

}  // namespace aggview
