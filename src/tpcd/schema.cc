#include "tpcd/schema.h"

namespace aggview {

namespace {

TableDef MakeTable(const std::string& name, std::vector<ColumnSpec> columns,
                   std::vector<int> primary_key) {
  TableDef def;
  def.name = name;
  def.schema = Schema(std::move(columns));
  def.primary_key = std::move(primary_key);
  return def;
}

}  // namespace

Result<TpcdTables> CreateTpcdSchema(Catalog* catalog) {
  TpcdTables t;

  AGGVIEW_ASSIGN_OR_RETURN(
      t.region,
      catalog->AddTable(MakeTable(
          "region",
          {{"r_regionkey", DataType::kInt64}, {"r_name", DataType::kString}},
          {0})));

  AGGVIEW_ASSIGN_OR_RETURN(
      t.nation, catalog->AddTable(MakeTable("nation",
                                            {{"n_nationkey", DataType::kInt64},
                                             {"n_name", DataType::kString},
                                             {"n_regionkey", DataType::kInt64}},
                                            {0})));

  AGGVIEW_ASSIGN_OR_RETURN(
      t.supplier,
      catalog->AddTable(MakeTable("supplier",
                                  {{"s_suppkey", DataType::kInt64},
                                   {"s_name", DataType::kString},
                                   {"s_nationkey", DataType::kInt64},
                                   {"s_acctbal", DataType::kDouble}},
                                  {0})));

  AGGVIEW_ASSIGN_OR_RETURN(
      t.customer,
      catalog->AddTable(MakeTable("customer",
                                  {{"c_custkey", DataType::kInt64},
                                   {"c_name", DataType::kString},
                                   {"c_nationkey", DataType::kInt64},
                                   {"c_acctbal", DataType::kDouble},
                                   {"c_mktsegment", DataType::kString}},
                                  {0})));

  AGGVIEW_ASSIGN_OR_RETURN(
      t.part, catalog->AddTable(MakeTable("part",
                                          {{"p_partkey", DataType::kInt64},
                                           {"p_name", DataType::kString},
                                           {"p_brand", DataType::kString},
                                           {"p_type", DataType::kString},
                                           {"p_size", DataType::kInt64},
                                           {"p_retailprice", DataType::kDouble}},
                                          {0})));

  AGGVIEW_ASSIGN_OR_RETURN(
      t.partsupp,
      catalog->AddTable(MakeTable("partsupp",
                                  {{"ps_partkey", DataType::kInt64},
                                   {"ps_suppkey", DataType::kInt64},
                                   {"ps_availqty", DataType::kInt64},
                                   {"ps_supplycost", DataType::kDouble}},
                                  {0, 1})));

  AGGVIEW_ASSIGN_OR_RETURN(
      t.orders,
      catalog->AddTable(MakeTable("orders",
                                  {{"o_orderkey", DataType::kInt64},
                                   {"o_custkey", DataType::kInt64},
                                   {"o_orderstatus", DataType::kString},
                                   {"o_totalprice", DataType::kDouble},
                                   {"o_orderdate", DataType::kInt64},
                                   {"o_shippriority", DataType::kInt64}},
                                  {0})));

  AGGVIEW_ASSIGN_OR_RETURN(
      t.lineitem,
      catalog->AddTable(MakeTable("lineitem",
                                  {{"l_orderkey", DataType::kInt64},
                                   {"l_linenumber", DataType::kInt64},
                                   {"l_partkey", DataType::kInt64},
                                   {"l_suppkey", DataType::kInt64},
                                   {"l_quantity", DataType::kDouble},
                                   {"l_extendedprice", DataType::kDouble},
                                   {"l_discount", DataType::kDouble},
                                   {"l_shipdate", DataType::kInt64}},
                                  {0, 1})));

  auto fk = [&](TableId from, std::vector<int> from_cols, TableId to,
                std::vector<int> to_cols) {
    ForeignKey f;
    f.referencing_table = from;
    f.referencing_columns = std::move(from_cols);
    f.referenced_table = to;
    f.referenced_columns = std::move(to_cols);
    return catalog->AddForeignKey(std::move(f));
  };
  AGGVIEW_RETURN_NOT_OK(fk(t.nation, {2}, t.region, {0}));
  AGGVIEW_RETURN_NOT_OK(fk(t.supplier, {2}, t.nation, {0}));
  AGGVIEW_RETURN_NOT_OK(fk(t.customer, {2}, t.nation, {0}));
  AGGVIEW_RETURN_NOT_OK(fk(t.partsupp, {0}, t.part, {0}));
  AGGVIEW_RETURN_NOT_OK(fk(t.partsupp, {1}, t.supplier, {0}));
  AGGVIEW_RETURN_NOT_OK(fk(t.orders, {1}, t.customer, {0}));
  AGGVIEW_RETURN_NOT_OK(fk(t.lineitem, {0}, t.orders, {0}));
  AGGVIEW_RETURN_NOT_OK(fk(t.lineitem, {2}, t.part, {0}));
  AGGVIEW_RETURN_NOT_OK(fk(t.lineitem, {3}, t.supplier, {0}));
  return t;
}

}  // namespace aggview
