#include "tpcd/dbgen.h"

#include "common/random.h"
#include "storage/table.h"

namespace aggview {

namespace {

const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                           "HOUSEHOLD"};
const char* kBrands[] = {"Brand#11", "Brand#12", "Brand#21", "Brand#22",
                         "Brand#31", "Brand#32", "Brand#41", "Brand#51"};
const char* kTypes[] = {"ECONOMY ANODIZED STEEL", "STANDARD BRUSHED BRASS",
                        "PROMO POLISHED COPPER",  "SMALL PLATED NICKEL",
                        "MEDIUM BURNISHED TIN",   "LARGE BRUSHED STEEL"};
const char* kStatuses[] = {"O", "F", "P"};

/// ~7 years of day indexes, like the benchmark's 1992-1998 window.
constexpr int64_t kDateRange = 2556;

int64_t FkDraw(Rng* rng, int64_t n, double skew) {
  if (skew <= 0.0) return rng->Uniform(1, n);
  return rng->Zipf(n, skew);
}

void Finalize(Catalog* catalog, TableId id, std::shared_ptr<Table> data) {
  TableDef& def = catalog->mutable_table(id);
  def.stats = ComputeStats(*data);
  def.data = std::move(data);
}

}  // namespace

Status GenerateTpcdData(Catalog* catalog, const TpcdTables& tables,
                        const DbgenOptions& options) {
  Rng rng(options.seed);

  // region
  {
    auto data = std::make_shared<Table>(catalog->table(tables.region).schema);
    data->Reserve(options.regions());
    const char* names[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDEAST"};
    for (int64_t i = 1; i <= options.regions(); ++i) {
      data->AppendUnchecked(
          {Value::Int(i), Value::Str(names[(i - 1) % 5])});
    }
    Finalize(catalog, tables.region, std::move(data));
  }

  // nation
  {
    auto data = std::make_shared<Table>(catalog->table(tables.nation).schema);
    data->Reserve(options.nations());
    for (int64_t i = 1; i <= options.nations(); ++i) {
      data->AppendUnchecked({Value::Int(i), Value::Str("NATION_" + std::to_string(i)),
                             Value::Int(1 + (i - 1) % options.regions())});
    }
    Finalize(catalog, tables.nation, std::move(data));
  }

  // supplier
  {
    auto data = std::make_shared<Table>(catalog->table(tables.supplier).schema);
    data->Reserve(options.suppliers());
    for (int64_t i = 1; i <= options.suppliers(); ++i) {
      data->AppendUnchecked({Value::Int(i),
                             Value::Str("Supplier#" + std::to_string(i)),
                             Value::Int(rng.Uniform(1, options.nations())),
                             Value::Real(rng.UniformReal(-999.99, 9999.99))});
    }
    Finalize(catalog, tables.supplier, std::move(data));
  }

  // customer
  {
    auto data = std::make_shared<Table>(catalog->table(tables.customer).schema);
    data->Reserve(options.customers());
    for (int64_t i = 1; i <= options.customers(); ++i) {
      data->AppendUnchecked({Value::Int(i),
                             Value::Str("Customer#" + std::to_string(i)),
                             Value::Int(rng.Uniform(1, options.nations())),
                             Value::Real(rng.UniformReal(-999.99, 9999.99)),
                             Value::Str(kSegments[rng.Uniform(0, 4)])});
    }
    Finalize(catalog, tables.customer, std::move(data));
  }

  // part
  {
    auto data = std::make_shared<Table>(catalog->table(tables.part).schema);
    data->Reserve(options.parts());
    for (int64_t i = 1; i <= options.parts(); ++i) {
      data->AppendUnchecked(
          {Value::Int(i), Value::Str("Part#" + std::to_string(i)),
           Value::Str(kBrands[rng.Uniform(0, 7)]),
           Value::Str(kTypes[rng.Uniform(0, 5)]),
           Value::Int(rng.Uniform(1, 50)),
           Value::Real(900.0 + static_cast<double>(i % 1000))});
    }
    Finalize(catalog, tables.part, std::move(data));
  }

  // partsupp
  {
    auto data = std::make_shared<Table>(catalog->table(tables.partsupp).schema);
    data->Reserve(options.parts() * options.partsupp_per_part());
    int64_t ns = options.suppliers();
    for (int64_t p = 1; p <= options.parts(); ++p) {
      for (int64_t k = 0; k < options.partsupp_per_part(); ++k) {
        int64_t s = 1 + (p + k * (ns / 4 + 1)) % ns;
        data->AppendUnchecked({Value::Int(p), Value::Int(s),
                               Value::Int(rng.Uniform(1, 9999)),
                               Value::Real(rng.UniformReal(1.0, 1000.0))});
      }
    }
    Finalize(catalog, tables.partsupp, std::move(data));
  }

  // orders + lineitem
  {
    auto orders = std::make_shared<Table>(catalog->table(tables.orders).schema);
    auto lineitem =
        std::make_shared<Table>(catalog->table(tables.lineitem).schema);
    orders->Reserve(options.orders());
    // Lines per order are uniform in [1, max]; reserve the expected total.
    lineitem->Reserve(options.orders() * (options.max_lines_per_order() + 1) /
                      2);
    for (int64_t o = 1; o <= options.orders(); ++o) {
      int64_t orderdate = rng.Uniform(0, kDateRange - 1);
      int64_t lines = rng.Uniform(1, options.max_lines_per_order());
      double total = 0.0;
      for (int64_t l = 1; l <= lines; ++l) {
        int64_t part = FkDraw(&rng, options.parts(), options.skew);
        int64_t supp = FkDraw(&rng, options.suppliers(), options.skew);
        double qty = static_cast<double>(rng.Uniform(1, 50));
        double price = qty * (900.0 + static_cast<double>(part % 1000)) / 10.0;
        double discount = static_cast<double>(rng.Uniform(0, 10)) / 100.0;
        int64_t shipdate = std::min<int64_t>(orderdate + rng.Uniform(1, 120),
                                             kDateRange - 1);
        total += price * (1.0 - discount);
        lineitem->AppendUnchecked({Value::Int(o), Value::Int(l),
                                   Value::Int(part), Value::Int(supp),
                                   Value::Real(qty), Value::Real(price),
                                   Value::Real(discount), Value::Int(shipdate)});
      }
      orders->AppendUnchecked(
          {Value::Int(o), Value::Int(FkDraw(&rng, options.customers(), options.skew)),
           Value::Str(kStatuses[rng.Uniform(0, 2)]), Value::Real(total),
           Value::Int(orderdate), Value::Int(rng.Uniform(0, 1))});
    }
    Finalize(catalog, tables.orders, std::move(orders));
    Finalize(catalog, tables.lineitem, std::move(lineitem));
  }

  return Status::OK();
}

Result<EmpDeptTables> CreateEmpDeptSchema(Catalog* catalog) {
  EmpDeptTables t;
  {
    TableDef def;
    def.name = "emp";
    def.schema = Schema({{"eno", DataType::kInt64},
                         {"dno", DataType::kInt64},
                         {"sal", DataType::kDouble},
                         {"age", DataType::kInt64}});
    def.primary_key = {0};
    AGGVIEW_ASSIGN_OR_RETURN(t.emp, catalog->AddTable(std::move(def)));
  }
  {
    TableDef def;
    def.name = "dept";
    def.schema = Schema({{"dno", DataType::kInt64},
                         {"budget", DataType::kDouble}});
    def.primary_key = {0};
    AGGVIEW_ASSIGN_OR_RETURN(t.dept, catalog->AddTable(std::move(def)));
  }
  ForeignKey fk;
  fk.referencing_table = t.emp;
  fk.referencing_columns = {1};
  fk.referenced_table = t.dept;
  fk.referenced_columns = {0};
  AGGVIEW_RETURN_NOT_OK(catalog->AddForeignKey(std::move(fk)));
  return t;
}

Status GenerateEmpDeptData(Catalog* catalog, const EmpDeptTables& tables,
                           const EmpDeptOptions& options) {
  Rng rng(options.seed);

  auto dept = std::make_shared<Table>(catalog->table(tables.dept).schema);
  dept->Reserve(options.num_departments);
  for (int64_t d = 1; d <= options.num_departments; ++d) {
    double budget = rng.Chance(options.budget_below_1m_fraction)
                        ? rng.UniformReal(100'000.0, 999'999.0)
                        : rng.UniformReal(1'000'000.0, 5'000'000.0);
    dept->AppendUnchecked({Value::Int(d), Value::Real(budget)});
  }
  Finalize(catalog, tables.dept, std::move(dept));

  auto emp = std::make_shared<Table>(catalog->table(tables.emp).schema);
  emp->Reserve(options.num_employees);
  for (int64_t e = 1; e <= options.num_employees; ++e) {
    int64_t age = rng.Chance(options.young_fraction) ? rng.Uniform(18, 21)
                                                     : rng.Uniform(22, 65);
    emp->AppendUnchecked({Value::Int(e),
                          Value::Int(rng.Uniform(1, options.num_departments)),
                          Value::Real(rng.UniformReal(20'000.0, 200'000.0)),
                          Value::Int(age)});
  }
  Finalize(catalog, tables.emp, std::move(emp));
  return Status::OK();
}

}  // namespace aggview
