#ifndef AGGVIEW_TPCD_SCHEMA_H_
#define AGGVIEW_TPCD_SCHEMA_H_

#include <memory>

#include "catalog/catalog.h"

namespace aggview {

/// Table ids of the TPC-D-style schema registered by CreateTpcdSchema.
struct TpcdTables {
  TableId region = -1;
  TableId nation = -1;
  TableId supplier = -1;
  TableId customer = -1;
  TableId part = -1;
  TableId partsupp = -1;
  TableId orders = -1;
  TableId lineitem = -1;
};

/// Registers the eight TPC-D tables (schemas, primary keys, foreign keys)
/// into `catalog`. Dates are stored as integer day indexes. No data is
/// loaded; see dbgen.h.
Result<TpcdTables> CreateTpcdSchema(Catalog* catalog);

}  // namespace aggview

#endif  // AGGVIEW_TPCD_SCHEMA_H_
