#ifndef AGGVIEW_TPCD_QUERIES_H_
#define AGGVIEW_TPCD_QUERIES_H_

#include <string>
#include <vector>

namespace aggview {

/// SQL texts (in this library's SQL subset) of the decision-support query
/// patterns the paper motivates: TPC-D queries whose flattened form joins
/// base tables with aggregate views. Each returns a script for ParseAndBind.
namespace tpcd_queries {

/// Q15 pattern ("top supplier"): a revenue-per-supplier aggregate view joined
/// back to supplier, with a revenue threshold standing in for the MAX
/// correlation.
std::string TopSupplierRevenue();

/// Q17 pattern ("small-quantity-order revenue"): the per-part average
/// quantity view joined with lineitem and part — Kim-style flattening of the
/// correlated `l_quantity < avg(l_quantity)` subquery.
std::string SmallQuantityRevenue(const std::string& brand);

/// Q2 pattern ("minimum cost supplier"): the per-part minimum supply cost
/// view joined with partsupp/supplier/nation.
std::string MinCostSupplier();

/// Per-customer order statistics joined against the customer table — a
/// multi-view query exercising the Section 5.4 path (two aggregate views).
std::string CustomerOrderProfile();

/// Revenue per (supplier, account balance): the grouping key spans the
/// join, so the lazy plan aggregates wide joined rows — invariant-grouping
/// push-down territory (Section 4.1).
std::string SupplierBalanceRevenue();

/// Total quantity per part across the partsupp fan-out join — eager
/// aggregation (simple coalescing, Section 4.2) territory.
std::string PartQuantityProfile();

/// All of the above, with display names.
struct NamedQuery {
  std::string name;
  std::string sql;
};
std::vector<NamedQuery> AllQueries();

}  // namespace tpcd_queries

}  // namespace aggview

#endif  // AGGVIEW_TPCD_QUERIES_H_
