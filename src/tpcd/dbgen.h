#ifndef AGGVIEW_TPCD_DBGEN_H_
#define AGGVIEW_TPCD_DBGEN_H_

#include "tpcd/schema.h"

namespace aggview {

/// Generation knobs. `scale_factor` mirrors TPC-D sizing (SF 1.0 ≈ 6M
/// lineitems; the experiments run at SF 0.002–0.02). `skew` is the Zipf
/// theta of foreign-key draws (0 = uniform).
struct DbgenOptions {
  double scale_factor = 0.01;
  uint64_t seed = 42;
  double skew = 0.0;

  int64_t suppliers() const { return Scaled(10'000); }
  int64_t customers() const { return Scaled(150'000); }
  int64_t parts() const { return Scaled(200'000); }
  int64_t orders() const { return Scaled(1'500'000); }
  int64_t partsupp_per_part() const { return 4; }
  int64_t nations() const { return 25; }
  int64_t regions() const { return 5; }
  int64_t max_lines_per_order() const { return 7; }

 private:
  int64_t Scaled(int64_t base) const {
    int64_t n = static_cast<int64_t>(static_cast<double>(base) * scale_factor);
    return n < 1 ? 1 : n;
  }
};

/// Deterministically fills the eight TPC-D tables with synthetic data and
/// computes exact statistics. The value distributions follow the benchmark's
/// shape (uniform keys, date range of ~7 years, prices derived from keys)
/// without reproducing dbgen byte-for-byte — the experiments only depend on
/// cardinalities, key/FK structure, and selectivity knobs.
Status GenerateTpcdData(Catalog* catalog, const TpcdTables& tables,
                        const DbgenOptions& options);

/// The paper's running example schema (Examples 1 and 2): emp(eno, dno, sal,
/// age) and dept(dno, budget), with emp.dno a foreign key into dept.
struct EmpDeptTables {
  TableId emp = -1;
  TableId dept = -1;
};

Result<EmpDeptTables> CreateEmpDeptSchema(Catalog* catalog);

/// Data knobs for emp/dept aligned with the crossover discussion of
/// Example 1: `young_fraction` controls the selectivity of `age < 22`, and
/// `num_departments` the grouping cardinality.
struct EmpDeptOptions {
  int64_t num_employees = 10'000;
  int64_t num_departments = 100;
  double young_fraction = 0.05;
  uint64_t seed = 7;
  double budget_below_1m_fraction = 0.5;
};

Status GenerateEmpDeptData(Catalog* catalog, const EmpDeptTables& tables,
                           const EmpDeptOptions& options);

}  // namespace aggview

#endif  // AGGVIEW_TPCD_DBGEN_H_
