#include "tpcd/queries.h"

namespace aggview {
namespace tpcd_queries {

std::string TopSupplierRevenue() {
  return R"sql(
create view revenue (suppkey, total_rev) as
  select l.l_suppkey, sum(l.l_extendedprice)
  from lineitem l
  where l.l_shipdate >= 1000 and l.l_shipdate < 1090
  group by l.l_suppkey;
select s.s_name, r.total_rev
from supplier s, revenue r
where s.s_suppkey = r.suppkey and r.total_rev > 100000
)sql";
}

std::string SmallQuantityRevenue(const std::string& brand) {
  return R"sql(
create view avgqty (partkey, aq) as
  select l2.l_partkey, avg(l2.l_quantity)
  from lineitem l2
  group by l2.l_partkey;
select sum(l.l_extendedprice)
from lineitem l, part p, avgqty a
where p.p_partkey = l.l_partkey and a.partkey = l.l_partkey
  and p.p_brand = ')sql" +
         brand + R"sql(' and l.l_quantity < 0.5 * a.aq
)sql";
}

std::string MinCostSupplier() {
  return R"sql(
create view mincost (partkey, mc) as
  select ps2.ps_partkey, min(ps2.ps_supplycost)
  from partsupp ps2
  group by ps2.ps_partkey;
select s.s_name, p.p_partkey
from part p, supplier s, partsupp ps, mincost m
where p.p_partkey = ps.ps_partkey and s.s_suppkey = ps.ps_suppkey
  and m.partkey = p.p_partkey and ps.ps_supplycost = m.mc
  and p.p_size = 15
)sql";
}

std::string CustomerOrderProfile() {
  return R"sql(
create view ordagg (custkey, total) as
  select o.o_custkey, sum(o.o_totalprice)
  from orders o
  group by o.o_custkey;
create view custbal (nationkey, avgbal) as
  select c2.c_nationkey, avg(c2.c_acctbal)
  from customer c2
  group by c2.c_nationkey;
select c.c_name, oa.total
from customer c, ordagg oa, custbal cb
where c.c_custkey = oa.custkey and c.c_nationkey = cb.nationkey
  and c.c_acctbal > cb.avgbal and oa.total > 100000
)sql";
}

std::string SupplierBalanceRevenue() {
  return R"sql(
select l.l_suppkey, s.s_acctbal, sum(l.l_extendedprice)
from lineitem l, supplier s
where l.l_suppkey = s.s_suppkey
group by l.l_suppkey, s.s_acctbal
)sql";
}

std::string PartQuantityProfile() {
  return R"sql(
select l.l_partkey, sum(l.l_quantity), count(*)
from lineitem l, partsupp ps
where l.l_partkey = ps.ps_partkey
group by l.l_partkey
)sql";
}

std::vector<NamedQuery> AllQueries() {
  return {
      {"Q15-style top supplier revenue", TopSupplierRevenue()},
      {"Q17-style small-quantity revenue", SmallQuantityRevenue("Brand#21")},
      {"Q2-style minimum cost supplier", MinCostSupplier()},
      {"multi-view customer order profile", CustomerOrderProfile()},
      {"pushdown supplier balance revenue", SupplierBalanceRevenue()},
      {"coalesce part quantity profile", PartQuantityProfile()},
  };
}

}  // namespace tpcd_queries
}  // namespace aggview
