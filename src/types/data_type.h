#ifndef AGGVIEW_TYPES_DATA_TYPE_H_
#define AGGVIEW_TYPES_DATA_TYPE_H_

#include <cstdint>
#include <string>

namespace aggview {

/// Column data types. The paper's examples need integers (keys, ages),
/// decimals (salaries, prices) and strings (names); per the paper's
/// assumptions (Section 2) there are no NULLs.
enum class DataType {
  kInt64,
  kDouble,
  kString,
};

/// Returns "INT64" / "DOUBLE" / "STRING".
const char* DataTypeName(DataType type);

/// Width in bytes used for page-count arithmetic. Strings use a declared
/// fixed width stored in the column definition; this returns the default.
int64_t DataTypeWidth(DataType type);

/// True when values of `type` can be added / averaged.
bool IsNumeric(DataType type);

}  // namespace aggview

#endif  // AGGVIEW_TYPES_DATA_TYPE_H_
