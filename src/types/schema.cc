#include "types/schema.h"

namespace aggview {

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int64_t Schema::RowWidth() const {
  int64_t w = 0;
  for (const ColumnSpec& c : columns_) w += c.width;
  return w;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += DataTypeName(columns_[i].type);
  }
  return out;
}

}  // namespace aggview
