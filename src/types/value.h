#ifndef AGGVIEW_TYPES_VALUE_H_
#define AGGVIEW_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "types/data_type.h"

namespace aggview {

/// A single column value. Per the paper's Section 2 assumptions base tables
/// contain no NULLs; the null state exists for the outer-join extension
/// (footnote 3: flattening nested subqueries "may introduce outerjoins"),
/// whose padding rows carry NULLs into intermediate results.
///
/// Comparison across the two numeric types promotes to double, which is what
/// the expression evaluator relies on for predicates like `e.sal > b.asal`
/// where one side is an AVG (double) and the other an INT64 column.
///
/// NULL semantics: Compare() defines a total order with NULL first and
/// NULL == NULL (the grouping/sorting convention); *predicates* implement
/// the SQL convention separately — any comparison involving NULL is false
/// (see Predicate::Eval).
class Value {
 public:
  Value() : rep_(int64_t{0}) {}
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(double v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}

  static Value Int(int64_t v) { return Value(v); }
  static Value Real(double v) { return Value(v); }
  static Value Str(std::string v) { return Value(std::move(v)); }
  static Value Null() {
    Value v;
    v.rep_ = std::monostate{};
    return v;
  }

  DataType type() const {
    switch (rep_.index()) {
      case 0:
        return DataType::kInt64;
      case 1:
        return DataType::kDouble;
      default:
        return DataType::kString;
    }
  }

  bool is_int() const { return rep_.index() == 0; }
  bool is_double() const { return rep_.index() == 1; }
  bool is_string() const { return rep_.index() == 2; }
  bool is_null() const { return rep_.index() == 3; }

  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  /// Numeric view: INT64 and DOUBLE both convert. A string or NULL value has
  /// no numeric view and yields quiet NaN — a visible poison value rather
  /// than a crash; callers that can report errors should use
  /// CheckedNumeric() instead.
  double AsNumeric() const;

  /// Numeric view with an explicit error when the value is not numeric.
  Result<double> CheckedNumeric() const;

  /// Three-way comparison: <0, 0, >0. Numeric types compare by value with
  /// promotion; strings compare lexicographically. Comparing a string with a
  /// numeric value is a caller bug (the binder rejects such predicates), but
  /// instead of crashing the order falls back to by-type ranking
  /// (numerics < strings) so sorting/grouping stays a total order; callers
  /// that can report errors should use CheckedCompare() instead.
  int Compare(const Value& other) const;

  /// Compare with an explicit error on a string-vs-numeric mismatch.
  Result<int> CheckedCompare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// SQL-literal-ish rendering, e.g. 42, 3.5, 'abc'.
  std::string ToString() const;

  /// Hash compatible with operator== (numeric 3.0 and integer 3 hash alike).
  size_t Hash() const;

 private:
  std::variant<int64_t, double, std::string, std::monostate> rep_;
};

/// A row is a flat vector of values positionally aligned with some schema.
using Row = std::vector<Value>;

/// Hashes a whole row (for hash joins / hash aggregation).
size_t HashRow(const Row& row);

/// Hash/equality functors over rows for unordered containers.
struct RowHash {
  size_t operator()(const Row& r) const { return HashRow(r); }
};
struct RowEq {
  bool operator()(const Row& a, const Row& b) const;
};

}  // namespace aggview

#endif  // AGGVIEW_TYPES_VALUE_H_
