#ifndef AGGVIEW_TYPES_SCHEMA_H_
#define AGGVIEW_TYPES_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "types/data_type.h"

namespace aggview {

/// A named, typed column with an explicit byte width used by the page-count
/// arithmetic shared between the cost model and the storage accountant.
struct ColumnSpec {
  std::string name;
  DataType type = DataType::kInt64;
  int64_t width = 8;

  ColumnSpec() = default;
  ColumnSpec(std::string name_in, DataType type_in)
      : name(std::move(name_in)), type(type_in), width(DataTypeWidth(type_in)) {}
  ColumnSpec(std::string name_in, DataType type_in, int64_t width_in)
      : name(std::move(name_in)), type(type_in), width(width_in) {}
};

/// An ordered list of column specs; the physical layout of a Row.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnSpec> columns)
      : columns_(std::move(columns)) {}

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const ColumnSpec& column(int i) const { return columns_[static_cast<size_t>(i)]; }
  const std::vector<ColumnSpec>& columns() const { return columns_; }

  void AddColumn(ColumnSpec spec) { columns_.push_back(std::move(spec)); }

  /// Index of the column named `name`, or -1 when absent.
  int FindColumn(const std::string& name) const;

  /// Sum of column widths: the row width used for page-count estimates.
  int64_t RowWidth() const;

  /// "name:TYPE, name:TYPE, ..." for diagnostics.
  std::string ToString() const;

 private:
  std::vector<ColumnSpec> columns_;
};

}  // namespace aggview

#endif  // AGGVIEW_TYPES_SCHEMA_H_
