#include "types/value.h"

#include <cassert>
#include <cstdio>
#include <functional>

namespace aggview {

double Value::AsNumeric() const {
  if (is_int()) return static_cast<double>(AsInt());
  assert(is_double() && "AsNumeric on a string or null value");
  return AsDouble();
}

int Value::Compare(const Value& other) const {
  // Total order for grouping/sorting: NULL first, NULL == NULL.
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  if (is_string() || other.is_string()) {
    assert(is_string() && other.is_string() &&
           "comparing string with numeric value");
    return AsString().compare(other.AsString());
  }
  if (is_int() && other.is_int()) {
    int64_t a = AsInt(), b = other.AsInt();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  double a = AsNumeric(), b = other.AsNumeric();
  return a < b ? -1 : (a > b ? 1 : 0);
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", AsDouble());
    return buf;
  }
  return "'" + AsString() + "'";
}

size_t Value::Hash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ull;
  if (is_string()) return std::hash<std::string>{}(AsString());
  // Hash numerics through their double representation so that equal values of
  // different numeric types collide, matching operator==.
  double d = AsNumeric();
  if (d == 0.0) d = 0.0;  // normalize -0.0
  return std::hash<double>{}(d);
}

size_t HashRow(const Row& row) {
  size_t h = 1469598103934665603ull;
  for (const Value& v : row) {
    h ^= v.Hash();
    h *= 1099511628211ull;
  }
  return h;
}

bool RowEq::operator()(const Row& a, const Row& b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace aggview
