#include "types/value.h"

#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>

namespace aggview {

double Value::AsNumeric() const {
  if (is_int()) return static_cast<double>(AsInt());
  if (is_double()) return AsDouble();
  // No numeric view of a string or NULL: poison instead of crashing.
  return std::numeric_limits<double>::quiet_NaN();
}

Result<double> Value::CheckedNumeric() const {
  if (is_int()) return static_cast<double>(AsInt());
  if (is_double()) return AsDouble();
  return Status::InvalidArgument("no numeric view of " +
                                 std::string(is_null() ? "NULL" : "string") +
                                 " value " + ToString());
}

int Value::Compare(const Value& other) const {
  // Total order for grouping/sorting: NULL first, NULL == NULL.
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  if (is_string() || other.is_string()) {
    if (is_string() && other.is_string()) {
      int c = AsString().compare(other.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    // Mixed string/numeric comparison is a caller bug the binder should have
    // rejected; keep a deterministic total order (numerics < strings) rather
    // than crashing mid-execution.
    return is_string() ? 1 : -1;
  }
  if (is_int() && other.is_int()) {
    int64_t a = AsInt(), b = other.AsInt();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  double a = AsNumeric(), b = other.AsNumeric();
  return a < b ? -1 : (a > b ? 1 : 0);
}

Result<int> Value::CheckedCompare(const Value& other) const {
  if (!is_null() && !other.is_null() && (is_string() != other.is_string())) {
    return Status::InvalidArgument("cannot compare " + ToString() + " with " +
                                   other.ToString() +
                                   ": string vs numeric value");
  }
  return Compare(other);
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", AsDouble());
    return buf;
  }
  return "'" + AsString() + "'";
}

size_t Value::Hash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ull;
  if (is_string()) return std::hash<std::string>{}(AsString());
  // Hash numerics through their double representation so that equal values of
  // different numeric types collide, matching operator==.
  double d = AsNumeric();
  if (d == 0.0) d = 0.0;  // normalize -0.0
  return std::hash<double>{}(d);
}

size_t HashRow(const Row& row) {
  size_t h = 1469598103934665603ull;
  for (const Value& v : row) {
    h ^= v.Hash();
    h *= 1099511628211ull;
  }
  return h;
}

bool RowEq::operator()(const Row& a, const Row& b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace aggview
