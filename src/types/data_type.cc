#include "types/data_type.h"

namespace aggview {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

int64_t DataTypeWidth(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return 8;
    case DataType::kDouble:
      return 8;
    case DataType::kString:
      return 24;
  }
  return 8;
}

bool IsNumeric(DataType type) {
  return type == DataType::kInt64 || type == DataType::kDouble;
}

}  // namespace aggview
