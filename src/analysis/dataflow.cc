#include "analysis/dataflow.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>
#include <vector>

#include "catalog/catalog.h"
#include "common/string_util.h"
#include "expr/scalar_expr.h"
#include "obs/runtime_stats.h"

namespace aggview {

const char* NullabilityName(Nullability n) {
  switch (n) {
    case Nullability::kNever:
      return "never-null";
    case Nullability::kMaybe:
      return "maybe-null";
    case Nullability::kAlways:
      return "always-null";
  }
  return "?";
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Saturating product of cardinality bounds. 0 * inf is 0: a provably empty
/// side makes the join provably empty no matter how unbounded the other is.
double SatMul(double a, double b) {
  if (a == 0.0 || b == 0.0) return 0.0;
  return a * b;
}

/// Collects the columns a scalar expression references *outside* COALESCE.
/// A NULL in one of these forces the whole comparison side to NULL
/// (ArithExpr propagates NULL), and Predicate::Eval maps a NULL side to
/// false — which is what makes null-rejection inference sound. COALESCE
/// absorbs the NULL, so nothing under it is null-rejected.
void CollectNonCoalesceColumns(const ExprPtr& e, std::set<ColId>* out) {
  if (e == nullptr) return;
  switch (e->kind()) {
    case ScalarExpr::Kind::kColumnRef:
      out->insert(static_cast<const ColumnRefExpr&>(*e).id());
      break;
    case ScalarExpr::Kind::kArith: {
      const auto& a = static_cast<const ArithExpr&>(*e);
      CollectNonCoalesceColumns(a.lhs(), out);
      CollectNonCoalesceColumns(a.rhs(), out);
      break;
    }
    case ScalarExpr::Kind::kLiteral:
    case ScalarExpr::Kind::kCoalesce:
      break;
  }
}

std::set<ColId> NonCoalesceColumns(const Predicate& p) {
  std::set<ColId> out;
  CollectNonCoalesceColumns(p.lhs, &out);
  CollectNonCoalesceColumns(p.rhs, &out);
  return out;
}

/// Widens a facts entry to a full (-inf, +inf) numeric range so one-sided
/// predicate bounds have something to narrow.
void EnsureNumericRange(ColumnFacts* cf) {
  if (!cf->has_range) {
    cf->has_range = true;
    cf->min = -kInf;
    cf->max = kInf;
  }
}

/// Result of refining a conjunction into a facts map.
struct RefineResult {
  bool provably_empty = false;    // no row can satisfy the conjunction
  std::string dead_predicate;     // set when a conjunct references an
                                  // always-NULL column outside COALESCE
};

/// Applies one conjunction to `facts` in place — the heart of the transfer
/// functions. Per conjunct:
///  - a conjunct referencing an always-NULL column outside COALESCE is
///    statically false (Predicate::Eval maps NULL sides to false): the
///    output is provably empty and the conjunct is recorded as dead;
///  - surviving rows have non-NULL values in every column referenced
///    outside COALESCE: those columns become never-null;
///  - `col op literal` narrows the column's value domain (strict integer
///    comparisons narrow by a full unit); an empty domain proves emptiness;
///  - `colA = colB` intersects the two domains and caps both distinct
///    counts, but only when `join_equalities` is set — the estimator
///    applies the same refinement only at join nodes, and the obligation
///    "estimates lie inside provable bounds" needs the two analyses to
///    narrow in lockstep.
RefineResult ApplyPredicates(const std::vector<Predicate>& preds,
                             const ColumnCatalog& cat, bool join_equalities,
                             std::unordered_map<ColId, ColumnFacts>* facts) {
  RefineResult result;
  for (const Predicate& p : preds) {
    std::set<ColId> refs = NonCoalesceColumns(p);
    // Statically-false conjunct: an always-NULL column outside COALESCE.
    for (ColId c : refs) {
      auto it = facts->find(c);
      if (it != facts->end() && it->second.null == Nullability::kAlways) {
        result.provably_empty = true;
        if (result.dead_predicate.empty()) {
          result.dead_predicate = p.ToString(cat);
        }
      }
    }
    // Null-rejection: surviving rows are non-NULL in every referenced
    // column (sound even after the dead-predicate case: "no rows" trivially
    // satisfies never-null).
    for (ColId c : refs) {
      auto it = facts->find(c);
      if (it != facts->end()) it->second.null = Nullability::kNever;
    }

    ColId col;
    CompareOp op;
    Value lit;
    if (p.AsColumnVsLiteral(&col, &op, &lit)) {
      auto it = facts->find(col);
      if (it == facts->end()) continue;
      ColumnFacts& cf = it->second;
      bool integral = cat.type(col) == DataType::kInt64 && lit.is_int();
      if (lit.is_int() || lit.is_double()) {
        double v = lit.AsNumeric();
        switch (op) {
          case CompareOp::kEq:
            EnsureNumericRange(&cf);
            cf.min = std::max(cf.min, v);
            cf.max = std::min(cf.max, v);
            cf.max_distinct = std::min(cf.max_distinct, 1.0);
            break;
          case CompareOp::kLt:
            EnsureNumericRange(&cf);
            cf.max = std::min(cf.max, integral ? v - 1.0 : v);
            break;
          case CompareOp::kLe:
            EnsureNumericRange(&cf);
            cf.max = std::min(cf.max, v);
            break;
          case CompareOp::kGt:
            EnsureNumericRange(&cf);
            cf.min = std::max(cf.min, integral ? v + 1.0 : v);
            break;
          case CompareOp::kGe:
            EnsureNumericRange(&cf);
            cf.min = std::max(cf.min, v);
            break;
          case CompareOp::kNe:
            break;  // holes are not representable in an interval
        }
        if (cf.has_range && cf.min > cf.max) result.provably_empty = true;
      } else if (lit.is_string() && cat.type(col) == DataType::kString) {
        const std::string& s = lit.AsString();
        switch (op) {
          case CompareOp::kEq:
            if (cf.has_str_range) {
              if (s < cf.min_str || s > cf.max_str) result.provably_empty = true;
            }
            cf.has_str_range = true;
            cf.min_str = cf.max_str = s;
            cf.max_distinct = std::min(cf.max_distinct, 1.0);
            break;
          case CompareOp::kLt:
          case CompareOp::kLe:
            if (cf.has_str_range) {
              cf.max_str = std::min(cf.max_str, s);
              if (cf.min_str > cf.max_str) result.provably_empty = true;
            }
            break;
          case CompareOp::kGt:
          case CompareOp::kGe:
            if (cf.has_str_range) {
              cf.min_str = std::max(cf.min_str, s);
              if (cf.min_str > cf.max_str) result.provably_empty = true;
            }
            break;
          case CompareOp::kNe:
            break;
        }
      }
      continue;
    }

    ColId a, b;
    if (join_equalities && p.AsColumnEquality(&a, &b)) {
      auto ia = facts->find(a);
      auto ib = facts->find(b);
      if (ia == facts->end() || ib == facts->end()) continue;
      ColumnFacts& fa = ia->second;
      ColumnFacts& fb = ib->second;
      if (fa.has_range && fb.has_range) {
        double lo = std::max(fa.min, fb.min);
        double hi = std::min(fa.max, fb.max);
        fa.min = fb.min = lo;
        fa.max = fb.max = hi;
        if (lo > hi) result.provably_empty = true;
      }
      if (fa.has_str_range && fb.has_str_range) {
        std::string lo = std::max(fa.min_str, fb.min_str);
        std::string hi = std::min(fa.max_str, fb.max_str);
        fa.min_str = fb.min_str = lo;
        fa.max_str = fb.max_str = hi;
        if (lo > hi) result.provably_empty = true;
      }
      double d = std::min(fa.max_distinct, fb.max_distinct);
      fa.max_distinct = fb.max_distinct = d;
    }
  }
  return result;
}

/// The bottom-up interpreter. Memoized on node identity: plans are DAGs and
/// shared subplans are visited once.
class Interpreter {
 public:
  explicit Interpreter(const Query& query) : query_(query) {}

  std::unordered_map<const PlanNode*, NodeFacts> Run(const PlanPtr& plan) {
    Visit(plan);
    return std::move(memo_);
  }

 private:
  const NodeFacts& Visit(const PlanPtr& plan) {
    auto it = memo_.find(plan.get());
    if (it != memo_.end()) return it->second;
    NodeFacts f;
    switch (plan->kind) {
      case PlanNode::Kind::kScan:
        f = ScanFacts(*plan);
        break;
      case PlanNode::Kind::kFilter:
        f = FilterFacts(*plan);
        break;
      case PlanNode::Kind::kJoin:
        f = JoinFacts(*plan);
        break;
      case PlanNode::Kind::kGroupBy:
        f = GroupByFacts(*plan);
        break;
      case PlanNode::Kind::kSort:
        f = plan->left != nullptr ? Visit(plan->left) : NodeFacts{};
        break;
    }
    return memo_[plan.get()] = std::move(f);
  }

  NodeFacts ScanFacts(const PlanNode& n) {
    NodeFacts f;
    if (n.rel_id < 0 || n.rel_id >= query_.num_range_vars()) return f;
    const RangeVar& rv = query_.range_var(n.rel_id);
    const TableDef& def = query_.catalog().table(rv.table);
    const TableStats& stats = def.stats;
    double rows = static_cast<double>(std::max<int64_t>(stats.row_count, 0));
    // Positionally aligned per-column statistics; a catalog without them
    // yields top-lattice column facts (the bounds still hold).
    bool have_cols = stats.columns.size() == rv.columns.size();
    for (size_t i = 0; i < rv.columns.size(); ++i) {
      ColumnFacts cf;
      if (have_cols) {
        const ColumnStats& cs = stats.columns[i];
        cf.max_distinct = static_cast<double>(cs.distinct);
        if (cs.null_count == 0) {
          cf.null = Nullability::kNever;
        } else if (stats.row_count > 0 && cs.null_count >= stats.row_count) {
          cf.null = Nullability::kAlways;
        } else {
          cf.null = Nullability::kMaybe;
        }
        if (cs.has_range) {
          cf.has_range = true;
          cf.min = cs.min;
          cf.max = cs.max;
        }
        if (cs.has_str_range) {
          cf.has_str_range = true;
          cf.min_str = cs.min_str;
          cf.max_str = cs.max_str;
        }
      }
      f.cols[rv.columns[i]] = std::move(cf);
    }
    if (rv.rowid != kInvalidColId) {
      ColumnFacts cf;
      cf.null = Nullability::kNever;
      cf.max_distinct = rows;
      if (stats.row_count > 0) {
        cf.has_range = true;
        cf.min = 0.0;
        cf.max = rows - 1.0;
      }
      f.cols[rv.rowid] = std::move(cf);
    }
    if (n.scan_filter.empty()) {
      f.card = {rows, rows};  // an unfiltered scan emits exactly the table
    } else {
      f.card = {0.0, rows};
      RefineResult r =
          ApplyPredicates(n.scan_filter, query_.columns(),
                          /*join_equalities=*/false, &f.cols);
      if (r.provably_empty) f.card = {0.0, 0.0};
      f.dead_predicate = std::move(r.dead_predicate);
    }
    return f;
  }

  NodeFacts FilterFacts(const PlanNode& n) {
    if (n.left == nullptr) return NodeFacts{};
    NodeFacts f = Visit(n.left);  // copy
    f.dead_predicate.clear();
    if (n.filter_preds.empty()) return f;  // pure projection: exact pass-through
    f.card.lo = 0.0;
    RefineResult r = ApplyPredicates(n.filter_preds, query_.columns(),
                                     /*join_equalities=*/false, &f.cols);
    if (r.provably_empty) f.card = {0.0, 0.0};
    f.dead_predicate = std::move(r.dead_predicate);
    return f;
  }

  NodeFacts JoinFacts(const PlanNode& n) {
    if (n.left == nullptr || n.right == nullptr) return NodeFacts{};
    const NodeFacts& l = Visit(n.left);
    const NodeFacts& r = Visit(n.right);
    NodeFacts f;
    f.cols = l.cols;
    f.cols.insert(r.cols.begin(), r.cols.end());
    if (!n.left_outer) {
      // A cross product emits exactly |L| * |R| rows; any predicate can only
      // reject.
      f.card.lo = n.join_preds.empty() ? SatMul(l.card.lo, r.card.lo) : 0.0;
      f.card.hi = SatMul(l.card.hi, r.card.hi);
      RefineResult rr = ApplyPredicates(n.join_preds, query_.columns(),
                                        /*join_equalities=*/true, &f.cols);
      if (rr.provably_empty) f.card = {0.0, 0.0};
      f.dead_predicate = std::move(rr.dead_predicate);
      return f;
    }
    // Left outer join: every left row appears, padded when unmatched. Per
    // left row: max(matches, 1) <= max(|R|_hi, 1) output rows.
    f.card.lo = l.card.lo;
    f.card.hi = SatMul(l.card.hi, std::max(r.card.hi, 1.0));
    // Predicate refinements hold only on *matched* rows, so they apply to a
    // scratch copy; right columns adopt the refined facts (their non-NULL
    // values come from matches only) with padding folded into nullability,
    // while left columns keep the unrefined input facts (unmatched left rows
    // survive with arbitrary values).
    auto matched = f.cols;
    RefineResult rr = ApplyPredicates(n.join_preds, query_.columns(),
                                      /*join_equalities=*/true, &matched);
    f.dead_predicate = std::move(rr.dead_predicate);
    for (const auto& [col, rf] : r.cols) {
      if (rr.provably_empty) {
        // No match can exist: the right side is pure padding.
        ColumnFacts cf;
        cf.null = Nullability::kAlways;
        cf.max_distinct = 0.0;
        f.cols[col] = cf;
        continue;
      }
      ColumnFacts cf = matched[col];
      if (cf.null == Nullability::kNever) cf.null = Nullability::kMaybe;
      // (kAlways stays: padding only adds NULLs.)
      f.cols[col] = std::move(cf);
    }
    if (rr.provably_empty) {
      // Output is exactly the left input, padded.
      f.card = {l.card.lo, l.card.hi};
    }
    return f;
  }

  NodeFacts GroupByFacts(const PlanNode& n) {
    if (n.left == nullptr) return NodeFacts{};
    const NodeFacts& in = Visit(n.left);
    const GroupBySpec& spec = n.group_by;
    NodeFacts f;
    f.cols = in.cols;  // grouping columns keep the input facts
    bool scalar = spec.grouping.empty();

    double groups_hi;
    if (scalar) {
      groups_hi = 1.0;
    } else {
      // hi = min(input_hi, |domain of the grouping columns|): the product
      // over grouping columns of the distinct bound, itself capped by the
      // width of an integer column's value interval, plus one for the NULL
      // group of a nullable column.
      double key_space = 1.0;
      for (ColId g : spec.grouping) {
        double d = kUnboundedDistinct;
        const ColumnFacts* cf = in.Find(g);
        if (cf != nullptr) {
          d = cf->max_distinct;
          if (cf->has_range &&
              query_.columns().type(g) == DataType::kInt64) {
            double width = std::floor(cf->max) - std::ceil(cf->min) + 1.0;
            d = std::min(d, std::max(width, 0.0));
          }
          if (cf->null != Nullability::kNever) d += 1.0;
        }
        key_space = SatMul(key_space, d);
      }
      groups_hi = std::min(in.card.hi, key_space);
    }
    double groups_lo;
    if (scalar) {
      // A scalar aggregate emits exactly one row even over empty input.
      groups_lo = spec.having.empty() ? 1.0 : 0.0;
    } else {
      groups_lo =
          (in.card.lo >= 1.0 && spec.having.empty()) ? 1.0 : 0.0;
    }
    f.card = {groups_lo, scalar ? 1.0 : groups_hi};

    // Rows per group never exceed the input cardinality (and a group that
    // emits a non-NULL aggregate fed at least one row).
    double n_max = std::max(in.card.hi, 1.0);
    for (const AggregateCall& a : spec.aggregates) {
      if (a.output == kInvalidColId) continue;
      f.cols[a.output] = AggFacts(a, in, scalar, n_max, groups_hi);
    }
    if (!spec.having.empty()) {
      RefineResult r = ApplyPredicates(spec.having, query_.columns(),
                                       /*join_equalities=*/false, &f.cols);
      if (r.provably_empty) f.card = {0.0, 0.0};
      f.dead_predicate = std::move(r.dead_predicate);
    }
    return f;
  }

  ColumnFacts AggFacts(const AggregateCall& a, const NodeFacts& in,
                       bool scalar, double n_max, double groups_hi) const {
    ColumnFacts out;
    // One output row per group.
    out.max_distinct = scalar ? 1.0 : std::max(groups_hi, 1.0);
    const ColumnFacts* arg = a.args.empty() ? nullptr : in.Find(a.args[0]);
    Nullability argn = arg != nullptr ? arg->null : Nullability::kMaybe;
    // A value-aggregate (SUM/MIN/MAX/AVG/MEDIAN) is NULL exactly when its
    // group fed no non-NULL argument: impossible for a grouped aggregate
    // over a never-null argument (groups have >= 1 row), certain when the
    // argument is always NULL.
    auto value_agg_null = [&]() {
      if (argn == Nullability::kAlways) return Nullability::kAlways;
      if (argn == Nullability::kNever && (!scalar || in.card.lo >= 1.0)) {
        return Nullability::kNever;
      }
      return Nullability::kMaybe;
    };
    switch (a.kind) {
      case AggKind::kCountStar:
        out.null = Nullability::kNever;
        out.has_range = true;
        out.min = scalar ? in.card.lo : 1.0;
        out.max = scalar ? std::max(in.card.hi, 0.0) : n_max;
        break;
      case AggKind::kCount:
        out.null = Nullability::kNever;
        out.has_range = true;
        out.min = (argn == Nullability::kNever)
                      ? (scalar ? in.card.lo : 1.0)
                      : 0.0;
        out.max = scalar ? std::max(in.card.hi, 0.0) : n_max;
        break;
      case AggKind::kCountSum:
        // SUM with COUNT's empty-is-0 semantics: never NULL, and 0 is always
        // a possible value (empty scalar input, or all partial rows NULL).
        out.null = Nullability::kNever;
        if (arg != nullptr && arg->has_range) {
          out.has_range = true;
          out.min = std::min({0.0, arg->min, arg->min * n_max});
          out.max = std::max({0.0, arg->max, arg->max * n_max});
        }
        break;
      case AggKind::kSum:
        out.null = value_agg_null();
        if (arg != nullptr && arg->has_range) {
          out.has_range = true;
          out.min = std::min(arg->min, arg->min * n_max);
          out.max = std::max(arg->max, arg->max * n_max);
        }
        break;
      case AggKind::kMin:
      case AggKind::kMax:
        out.null = value_agg_null();
        if (arg != nullptr) {
          if (arg->has_range) {
            out.has_range = true;
            out.min = arg->min;
            out.max = arg->max;
          }
          if (arg->has_str_range) {
            out.has_str_range = true;
            out.min_str = arg->min_str;
            out.max_str = arg->max_str;
          }
          out.max_distinct = std::min(out.max_distinct, arg->max_distinct);
        }
        break;
      case AggKind::kAvg:
      case AggKind::kMedian:
        // Both lie inside the argument's convex hull (MEDIAN may average
        // two middle samples, so it inherits the range but not the
        // argument's distinct bound).
        out.null = value_agg_null();
        if (arg != nullptr && arg->has_range) {
          out.has_range = true;
          out.min = arg->min;
          out.max = arg->max;
        }
        break;
      case AggKind::kAvgFinal: {
        const ColumnFacts* cnt =
            a.args.size() >= 2 ? in.Find(a.args[1]) : nullptr;
        Nullability cn = cnt != nullptr ? cnt->null : Nullability::kMaybe;
        if (argn == Nullability::kAlways || cn == Nullability::kAlways) {
          out.null = Nullability::kAlways;
        } else if (argn == Nullability::kNever && cn == Nullability::kNever &&
                   (!scalar || in.card.lo >= 1.0)) {
          out.null = Nullability::kNever;
        } else {
          out.null = Nullability::kMaybe;
        }
        // No value domain: a ratio of sums needs relational reasoning the
        // interval domain cannot express.
        break;
      }
    }
    return out;
  }

  const Query& query_;
  std::unordered_map<const PlanNode*, NodeFacts> memo_;
};

/// Error naming the offending node, same convention as the analyzer's
/// NodeError.
Status DataflowError(const PlanPtr& plan, const Query& query,
                     const std::string& what) {
  return Status::Internal(what + "\nin node:\n" + PlanToString(plan, query));
}

bool IsCountFamily(AggKind k) {
  return k == AggKind::kCount || k == AggKind::kCountStar ||
         k == AggKind::kCountSum;
}

Status CheckNode(const PlanPtr& plan, const Query& query,
                 const DataflowAnalysis& analysis,
                 std::unordered_set<const PlanNode*>* visited) {
  if (plan == nullptr || !visited->insert(plan.get()).second) {
    return Status::OK();
  }
  if (plan->left != nullptr) {
    AGGVIEW_RETURN_NOT_OK(CheckNode(plan->left, query, analysis, visited));
  }
  if (plan->right != nullptr) {
    AGGVIEW_RETURN_NOT_OK(CheckNode(plan->right, query, analysis, visited));
  }
  const NodeFacts* f = analysis.Find(plan.get());
  if (f == nullptr) return Status::OK();

  // Obligation: the estimate is consistent with the provable bounds. The
  // estimator and the abstract interpreter read the same statistics, so an
  // estimate outside [lo, hi] is an estimator bug, not a modeling gap.
  if (!EstimateWithinBounds(plan->est.rows, f->card)) {
    return DataflowError(
        plan, query,
        StrFormat("estimator bug: estimated %.3f rows outside the provable "
                  "cardinality bounds [%.3f, %.3f]",
                  plan->est.rows, f->card.lo, f->card.hi));
  }

  // Obligation: no statically-false predicate (a conjunct over an
  // always-NULL column outside COALESCE evaluates to false on every row —
  // in an optimizer output that is a miscompiled pull-up or flattening).
  if (!f->dead_predicate.empty()) {
    return DataflowError(
        plan, query,
        "statically false predicate '" + f->dead_predicate +
            "': it references an always-NULL column outside COALESCE");
  }

  if (plan->kind == PlanNode::Kind::kGroupBy && plan->left != nullptr) {
    const NodeFacts* input = analysis.Find(plan->left.get());
    const ColumnCatalog& cat = query.columns();
    for (const AggregateCall& a : plan->group_by.aggregates) {
      if (a.output == kInvalidColId) continue;
      if (IsCountFamily(a.kind)) {
        // Obligation: COUNT-family outputs are non-null and >= 0 — both as
        // declared in the column catalog and as derived by the analysis.
        if (cat.nullable(a.output)) {
          return DataflowError(
              plan, query,
              "COUNT output '" + cat.name(a.output) +
                  "' is declared nullable; COUNT-family aggregates never "
                  "produce NULL");
        }
        const ColumnFacts* out = f->Find(a.output);
        if (out != nullptr) {
          if (out->null != Nullability::kNever) {
            return DataflowError(plan, query,
                                 "COUNT output '" + cat.name(a.output) +
                                     "' derives " +
                                     NullabilityName(out->null) +
                                     "; COUNT-family aggregates never "
                                     "produce NULL");
          }
          if (out->has_range && out->max < 0.0) {
            return DataflowError(
                plan, query,
                StrFormat("COUNT output '%s' derives a negative value domain "
                          "[%.3f, %.3f]",
                          cat.name(a.output).c_str(), out->min, out->max));
          }
        }
      }
      // Obligation: coalescing combine inputs that carry counts are
      // never-null. AggAccumulator::Add/Merge silently skip a row with a
      // NULL argument, so a NULL partial count would lose every row it
      // stands for (the COUNT-combine-as-SUM bug class).
      ColId count_input = kInvalidColId;
      if (a.kind == AggKind::kCountSum && !a.args.empty()) {
        count_input = a.args[0];
      } else if (a.kind == AggKind::kAvgFinal && a.args.size() >= 2) {
        count_input = a.args[1];
      }
      if (count_input != kInvalidColId && input != nullptr) {
        const ColumnFacts* cf = input->Find(count_input);
        Nullability n =
            cf != nullptr ? cf->null : Nullability::kMaybe;
        if (n != Nullability::kNever) {
          return DataflowError(
              plan, query,
              "coalescing combine input '" + cat.name(count_input) +
                  "' of " + a.ToString(cat) + " derives " +
                  NullabilityName(n) +
                  "; Merge would silently drop NULL partial counts");
        }
      }
    }
  }
  return Status::OK();
}

/// Finds the PlanPtr owning `target` inside `root` (for error rendering on
/// the runtime path, which carries raw node pointers).
PlanPtr FindNode(const PlanPtr& root, const PlanNode* target) {
  if (root == nullptr) return nullptr;
  if (root.get() == target) return root;
  if (PlanPtr p = FindNode(root->left, target)) return p;
  return FindNode(root->right, target);
}

}  // namespace

DataflowAnalysis DataflowAnalysis::Analyze(const PlanPtr& plan,
                                           const Query& query) {
  DataflowAnalysis a;
  if (plan != nullptr) a.facts_ = Interpreter(query).Run(plan);
  return a;
}

namespace {

/// Rebuilds the spine above any node whose estimate needs clamping (plans
/// are immutable and shared); untouched subtrees are reused as-is, and the
/// memo preserves DAG sharing in the rebuilt plan.
PlanPtr ClampNodeEstimates(const PlanPtr& node,
                           const DataflowAnalysis& analysis,
                           std::unordered_map<const PlanNode*, PlanPtr>* memo) {
  if (node == nullptr) return nullptr;
  auto it = memo->find(node.get());
  if (it != memo->end()) return it->second;
  PlanPtr left = ClampNodeEstimates(node->left, analysis, memo);
  PlanPtr right = ClampNodeEstimates(node->right, analysis, memo);
  double rows = node->est.rows;
  if (const NodeFacts* f = analysis.Find(node.get())) {
    if (rows < f->card.lo) rows = f->card.lo;
    if (rows > f->card.hi) rows = f->card.hi;
  }
  PlanPtr out = node;
  if (left != node->left || right != node->right || rows != node->est.rows) {
    auto clone = std::make_shared<PlanNode>(*node);
    clone->left = std::move(left);
    clone->right = std::move(right);
    clone->est.rows = rows;
    out = std::move(clone);
  }
  (*memo)[node.get()] = out;
  return out;
}

}  // namespace

PlanPtr ClampEstimatesToProvableBounds(const PlanPtr& plan,
                                       const Query& query) {
  if (plan == nullptr) return plan;
  DataflowAnalysis analysis = DataflowAnalysis::Analyze(plan, query);
  std::unordered_map<const PlanNode*, PlanPtr> memo;
  return ClampNodeEstimates(plan, analysis, &memo);
}

bool EstimateWithinBounds(double est_rows, const CardBounds& bounds) {
  if (!std::isfinite(est_rows)) return false;
  // Float slack: every estimator step is a monotone rounding of monotone
  // arithmetic over the same statistics the bounds are computed from, so
  // genuine violations are categorical, not epsilon-sized.
  double lo_slack = 1e-6 * std::abs(bounds.lo) + 1e-6;
  double hi_slack = 1e-6 * std::abs(bounds.hi) + 1e-6;
  if (est_rows < bounds.lo - lo_slack) return false;
  if (std::isfinite(bounds.hi) && est_rows > bounds.hi + hi_slack) {
    return false;
  }
  return true;
}

Status CheckDataflowObligations(const PlanPtr& plan, const Query& query,
                                const DataflowAnalysis& analysis) {
  std::unordered_set<const PlanNode*> visited;
  return CheckNode(plan, query, analysis, &visited);
}

Status CheckDataflowObligations(const PlanPtr& plan, const Query& query) {
  return CheckDataflowObligations(plan, query,
                                  DataflowAnalysis::Analyze(plan, query));
}

Status DataflowVerifier::CheckBatch(const PlanNode* node,
                                    const RowLayout& layout,
                                    const RowBatch& batch) const {
  const NodeFacts* f = analysis_.Find(node);
  if (f == nullptr || batch.empty()) return Status::OK();
  const std::vector<ColId>& cols = layout.columns();
  for (size_t ci = 0; ci < cols.size(); ++ci) {
    const ColumnFacts* cf = f->Find(cols[ci]);
    if (cf == nullptr) continue;
    bool check_null = cf->null != Nullability::kMaybe;
    bool check_range = cf->has_range || cf->has_str_range;
    if (!check_null && !check_range) continue;
    for (int r = 0; r < batch.size(); ++r) {
      const Row& row = batch.row(r);
      if (ci >= row.size()) break;
      const Value& v = row[ci];
      std::string violation;
      if (v.is_null()) {
        if (cf->null == Nullability::kNever) {
          violation = "NULL in a never-null column";
        }
      } else if (cf->null == Nullability::kAlways) {
        violation = "non-NULL value " + v.ToString() +
                    " in an always-null column";
      } else if (cf->has_range && (v.is_int() || v.is_double())) {
        double x = v.AsNumeric();
        // Tiny slack for float-accumulated aggregates (SUM/AVG): the domain
        // arithmetic and the accumulator round differently.
        double eps =
            1e-9 * (std::abs(x) + std::abs(cf->min) + std::abs(cf->max) + 1.0);
        if (x < cf->min - eps || x > cf->max + eps) {
          violation = StrFormat("value %s outside the derived domain "
                                "[%.6g, %.6g]",
                                v.ToString().c_str(), cf->min, cf->max);
        }
      } else if (cf->has_str_range && v.is_string()) {
        if (v.AsString() < cf->min_str || v.AsString() > cf->max_str) {
          violation = "value '" + v.AsString() +
                      "' outside the derived domain ['" + cf->min_str +
                      "', '" + cf->max_str + "']";
        }
      }
      if (!violation.empty()) {
        PlanPtr owner = FindNode(plan_, node);
        std::string where =
            owner != nullptr ? PlanToString(owner, *query_) : "(unknown node)";
        return Status::Internal(
            "dataflow runtime violation: column '" +
            query_->columns().name(cols[ci]) + "' (" +
            NullabilityName(cf->null) + "): " + violation + "\nin node:\n" +
            where);
      }
    }
    checks_.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status DataflowVerifier::CheckNodeCardinality(
    const PlanPtr& node, const RuntimeStatsCollector& stats) const {
  if (node == nullptr) return Status::OK();
  AGGVIEW_RETURN_NOT_OK(CheckNodeCardinality(node->left, stats));
  AGGVIEW_RETURN_NOT_OK(CheckNodeCardinality(node->right, stats));
  const NodeFacts* f = analysis_.Find(node.get());
  const OpStats* op = stats.ForNode(node.get());
  if (f == nullptr || op == nullptr) return Status::OK();
  double actual = static_cast<double>(op->rows_produced);
  if (actual < f->card.lo - 0.5 ||
      (std::isfinite(f->card.hi) && actual > f->card.hi + 0.5)) {
    return Status::Internal(
        StrFormat("dataflow runtime violation: %lld rows produced, outside "
                  "the provable cardinality bounds [%.3f, %.3f]",
                  static_cast<long long>(op->rows_produced), f->card.lo,
                  f->card.hi) +
        "\nin node:\n" + PlanToString(node, *query_));
  }
  checks_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status DataflowVerifier::CheckPlanCardinality(
    const RuntimeStatsCollector& stats) const {
  return CheckNodeCardinality(plan_, stats);
}

}  // namespace aggview
