#ifndef AGGVIEW_ANALYSIS_CERTIFICATE_H_
#define AGGVIEW_ANALYSIS_CERTIFICATE_H_

#include <set>
#include <string>
#include <vector>

#include "algebra/query.h"
#include "optimizer/plan.h"

namespace aggview {

/// Machine-checkable legality certificates. Every transformation that relies
/// on one of the paper's side conditions emits a certificate stating exactly
/// which condition it relied on and on what evidence; the analyzer
/// (analysis/analyzer.h) re-derives the condition from first principles —
/// catalog keys, predicate-implied functional dependencies, subplan
/// properties — and rejects the transformation when the claim does not hold.
/// Certificates are self-contained: they carry the block state at
/// transformation time so verification needs no replay.

/// One relation of a single-block claim. The verifier re-derives the
/// relation's columns and keys itself: from the catalog for a range variable,
/// from the subplan (via DerivePlanProperties) for a composite input.
struct BlockRelClaim {
  std::string name;
  /// Range-variable id; >= 0 means columns/keys come from the catalog.
  int scan_rel = -1;
  /// Composite input (an already-optimized subplan, e.g. an aggregate view);
  /// columns/keys are derived from the plan itself.
  PlanPtr composite;
};

/// Emitted by PullUpIntoView (Section 3, Definition 1). Claims that the
/// deferred group-by's grouping columns functionally determine a key of
/// every pulled relation within the extended block — i.e. each group
/// contains at most one tuple of each pulled relation, so deferring the
/// aggregation preserves the result.
struct PullUpCertificate {
  size_t view_idx = 0;
  std::set<int> pulled;
  /// Block state after the pull-up.
  std::vector<int> block_rels;
  std::vector<Predicate> block_predicates;
  std::vector<ColId> grouping_before;
  std::vector<ColId> grouping_after;

  /// Per pulled relation: the key columns appended to the grouping (empty
  /// when the key was elided because the join already pins a key).
  struct RelClaim {
    int rel = -1;
    std::vector<ColId> key_added;
    bool used_rowid = false;
  };
  std::vector<RelClaim> rels;

  /// Every query-global column this certificate's claims mention — the
  /// column skeleton of the transformation, consumed by the small-scope
  /// prover (src/verify/skeleton.h) to decide which base-table columns a
  /// bounded counterexample search must vary.
  std::set<ColId> ReferencedColumns() const;
};

/// Emitted when a group-by is moved past relations (invariant grouping,
/// Section 4.1): by ShrinkViewToInvariantSet at the query level and by the
/// enumerator's early invariant placement at the plan level. Claims that for
/// every removed relation (in some elimination order) IG1-IG3 hold: no
/// aggregate argument comes from it, predicates crossing to the retained
/// side touch only grouping columns there, and at most one of its tuples
/// matches each group (so neither values nor row multiplicity change).
struct InvariantCertificate {
  GroupBySpec group_by;
  std::vector<BlockRelClaim> removed;
  std::vector<BlockRelClaim> retained;
  std::vector<Predicate> predicates;

  /// Column skeleton of the claim; see PullUpCertificate::ReferencedColumns.
  std::set<ColId> ReferencedColumns() const;
};

/// Emitted by SplitForCoalescing (Section 4.2). Claims that every aggregate
/// of the original group-by is decomposable, takes its arguments from the
/// pre-aggregation's input, and that the partial/final rewriting is the
/// canonical combine form (SUM of partial SUMs, SUM of partial COUNTs, MIN
/// of MINs, AVG as ratio of partial SUM and COUNT).
struct CoalescingCertificate {
  GroupBySpec original;
  GroupBySpec partial;
  std::vector<AggregateCall> final_aggregates;
  std::set<ColId> below_cols;
  std::set<ColId> carry_cols;

  /// Column skeleton of the claim; see PullUpCertificate::ReferencedColumns.
  std::set<ColId> ReferencedColumns() const;
};

/// Emitted by the materialized-view rewriter (view/rewriter.h) when it
/// answers a block from a view's backing table. Claims that the replaced
/// block's relations biject onto the view definition's FROM list (preserving
/// catalog tables), the block predicates equal the definition's WHERE as a
/// multiset under that mapping, the kept grouping columns are a subset of
/// the view's grouping (so the residual group-by is a legal roll-up over
/// whole view groups — the backing key is exactly the grouping prefix), and
/// every replaced aggregate became its decomposition's combine over the
/// view's partial columns. The verifier re-derives all of this from the
/// stored definition SQL, independent of the rewriter's own matching.
struct ViewRewriteCertificate {
  std::string view_name;
  /// View content epoch at rewrite time (observability; freshness at
  /// execution time is the plan cache's dependency stamps' job).
  int64_t view_epoch = 0;
  /// Range variable scanning the backing table, added by the rewrite.
  int backing_rel = -1;
  /// Replaced range variables, in definition FROM order (the mapping).
  std::vector<int> replaced_rels;
  /// The block predicates the rewrite absorbed (incoming column space).
  std::vector<Predicate> replaced_predicates;
  /// Grouping columns kept by the residual group-by.
  std::vector<ColId> grouping;
  /// Pairwise: the original aggregate call and the combine it became.
  std::vector<AggregateCall> original_aggregates;
  std::vector<AggregateCall> combine_aggregates;

  /// Column skeleton of the claim; see PullUpCertificate::ReferencedColumns.
  std::set<ColId> ReferencedColumns() const;
};

/// Emitted by lowering for every predicate/expression program it compiles
/// under ExecBackend::kCompiled (exec/compile/verifier.h produces it). Unlike
/// the transformation certificates above it records a *machine-code* claim:
/// the bytecode program is well-formed (stack-balanced, forward jumps only,
/// operands in bounds, canonical lanes, documented NULL conventions) and a
/// faithful translation of its source tree (agreeing abstract nullability /
/// value domains, and identical results on every co-evaluated witness row).
/// A certificate with verified == false records a program the verifier
/// rejected — that program never executed; the operator fell back to the
/// interpreter and EXPLAIN ANALYZE shows the fallback reason.
struct CompilationCertificate {
  /// Operator the program was lowered for ("Filter", "TableScan", ...).
  std::string node;
  /// Which program of the operator ("scan-filter", "filter", "having",
  /// "join-residual").
  std::string kind;
  /// Rendering of the source predicate conjunction / expression tree.
  std::string source;
  /// Full bytecode listing (exec/compile/disasm.h), recorded even for
  /// rejected programs so the corruption is inspectable.
  std::string disassembly;
  /// Program shape: conjunct frames plus nested bytecode instructions, and
  /// the deepest abstract stack any nested program reaches.
  int instructions = 0;
  int max_stack_depth = 0;
  /// Witness rows co-evaluated against the source tree in stage 2.
  int witness_rows = 0;
  bool verified = false;
  /// Instruction-indexed verifier diagnostic when !verified.
  std::string rejection;
};

/// Audit trail of one optimization: every certificate the winning rewrite
/// emitted, for observability and post-hoc re-verification.
struct TransformationAudit {
  std::vector<PullUpCertificate> pullups;
  std::vector<InvariantCertificate> invariants;
  std::vector<CoalescingCertificate> coalescings;
  std::vector<ViewRewriteCertificate> view_rewrites;
  /// Bytecode certificates of the most recent lowering of the plan (refilled
  /// per execution when ExecContext::audit points here). Not counted by
  /// size(): that counts the optimizer's transformation claims, which are
  /// fixed at Sql() time, while compilations vary with the execution backend.
  std::vector<CompilationCertificate> compilations;

  int64_t size() const {
    return static_cast<int64_t>(pullups.size() + invariants.size() +
                                coalescings.size() + view_rewrites.size());
  }

  /// Union of the column skeletons of every certificate in the audit.
  std::set<ColId> ReferencedColumns() const;
};

}  // namespace aggview

#endif  // AGGVIEW_ANALYSIS_CERTIFICATE_H_
