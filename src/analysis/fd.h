#ifndef AGGVIEW_ANALYSIS_FD_H_
#define AGGVIEW_ANALYSIS_FD_H_

#include <set>
#include <vector>

#include "algebra/query.h"
#include "common/result.h"
#include "optimizer/plan.h"

namespace aggview {

/// A set of functional dependencies over query-global column ids, with the
/// attribute-closure operations the semantic analyzer needs to discharge the
/// paper's proof obligations (Section 3: the deferred group-by must group by
/// a key of every pulled relation; Section 4.1's IG3: at most one tuple of a
/// removed relation may match each group).
///
/// Constants (nullary FDs, from equality-with-literal predicates) and
/// equivalences (column equalities) are ordinary FDs with empty or singleton
/// left-hand sides; Closure() saturates over all of them.
class FdSet {
 public:
  /// Adds lhs -> rhs. An empty lhs marks every rhs column constant.
  void AddFd(std::set<ColId> lhs, std::set<ColId> rhs);

  /// Marks `col` constant ({} -> col).
  void AddConstant(ColId col);

  /// Adds a -> b and b -> a.
  void AddEquivalence(ColId a, ColId b);

  /// Declares `key` a key of the relation with columns `all_cols`
  /// (key -> all_cols).
  void AddKey(const std::vector<ColId>& key, const std::set<ColId>& all_cols);

  /// Extracts FDs from a conjunction: column equalities become equivalences,
  /// equality-with-literal comparisons become constants. Other comparisons
  /// contribute nothing.
  void AddPredicates(const std::vector<Predicate>& preds);

  /// Adds every FD of `other`.
  void Merge(const FdSet& other);

  /// The attribute closure of `start` under this FD set (always includes the
  /// constants).
  std::set<ColId> Closure(std::set<ColId> start) const;

  /// True when Closure(lhs) contains every column of `rhs`.
  bool Determines(const std::set<ColId>& lhs,
                  const std::set<ColId>& rhs) const;

  int num_fds() const { return static_cast<int>(fds_.size()); }

 private:
  struct Fd {
    std::set<ColId> lhs;
    std::set<ColId> rhs;
  };
  std::vector<Fd> fds_;
  std::set<ColId> constants_;
};

/// Properties the analyzer derives bottom-up for every physical plan node:
/// the output column set, the functional dependencies that hold over the
/// node's output stream, and the candidate keys found along the way. FDs may
/// mention projected-away columns; transitive closure through them is sound
/// for the projection.
struct PlanProperties {
  std::set<ColId> columns;
  FdSet fds;
  /// Derived candidate keys (not necessarily minimal). Empty when no key is
  /// known (e.g. a join that multiplies a keyless stream).
  std::vector<std::vector<ColId>> keys;

  /// True when `cols` functionally determine the whole output.
  bool IsKey(const std::set<ColId>& cols) const {
    return fds.Determines(cols, columns);
  }
};

/// Derives PlanProperties for `plan` independently of the optimizer's own
/// key bookkeeping: scans contribute declared catalog keys (and the rowid
/// key), filters and joins contribute predicate-derived constants and
/// equivalences, group-bys contribute grouping -> outputs. Left outer joins
/// conservatively drop predicate-derived FDs (they do not hold on padding
/// rows).
Result<PlanProperties> DerivePlanProperties(const PlanPtr& plan,
                                            const Query& query);

/// The declared keys of range variable `rel_id`, as query-global column ids:
/// the table's primary key, its unique keys, and the synthetic rowid key
/// when present.
std::vector<std::vector<ColId>> RangeVarKeys(const Query& query, int rel_id);

/// FdSet of one range variable: each declared key determines the full column
/// set.
FdSet RangeVarFds(const Query& query, int rel_id);

}  // namespace aggview

#endif  // AGGVIEW_ANALYSIS_FD_H_
