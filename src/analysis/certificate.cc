#include "analysis/certificate.h"

namespace aggview {

namespace {

void InsertAll(const std::vector<ColId>& cols, std::set<ColId>* out) {
  out->insert(cols.begin(), cols.end());
}

void InsertPredicates(const std::vector<Predicate>& preds,
                      std::set<ColId>* out) {
  for (const Predicate& p : preds) {
    std::set<ColId> cols = p.Columns();
    out->insert(cols.begin(), cols.end());
  }
}

void InsertGroupBy(const GroupBySpec& spec, std::set<ColId>* out) {
  InsertAll(spec.grouping, out);
  for (const AggregateCall& agg : spec.aggregates) {
    InsertAll(agg.args, out);
    if (agg.output != kInvalidColId) out->insert(agg.output);
  }
  InsertPredicates(spec.having, out);
}

}  // namespace

std::set<ColId> PullUpCertificate::ReferencedColumns() const {
  std::set<ColId> out;
  InsertPredicates(block_predicates, &out);
  InsertAll(grouping_before, &out);
  InsertAll(grouping_after, &out);
  for (const RelClaim& claim : rels) InsertAll(claim.key_added, &out);
  return out;
}

std::set<ColId> InvariantCertificate::ReferencedColumns() const {
  std::set<ColId> out;
  InsertGroupBy(group_by, &out);
  InsertPredicates(predicates, &out);
  return out;
}

std::set<ColId> CoalescingCertificate::ReferencedColumns() const {
  std::set<ColId> out;
  InsertGroupBy(original, &out);
  InsertGroupBy(partial, &out);
  for (const AggregateCall& agg : final_aggregates) {
    InsertAll(agg.args, &out);
    if (agg.output != kInvalidColId) out.insert(agg.output);
  }
  out.insert(below_cols.begin(), below_cols.end());
  out.insert(carry_cols.begin(), carry_cols.end());
  return out;
}

std::set<ColId> ViewRewriteCertificate::ReferencedColumns() const {
  std::set<ColId> out;
  InsertPredicates(replaced_predicates, &out);
  InsertAll(grouping, &out);
  for (const AggregateCall& agg : original_aggregates) {
    InsertAll(agg.args, &out);
    if (agg.output != kInvalidColId) out.insert(agg.output);
  }
  for (const AggregateCall& agg : combine_aggregates) {
    InsertAll(agg.args, &out);
    if (agg.output != kInvalidColId) out.insert(agg.output);
  }
  return out;
}

std::set<ColId> TransformationAudit::ReferencedColumns() const {
  std::set<ColId> out;
  for (const PullUpCertificate& c : pullups) {
    std::set<ColId> cols = c.ReferencedColumns();
    out.insert(cols.begin(), cols.end());
  }
  for (const InvariantCertificate& c : invariants) {
    std::set<ColId> cols = c.ReferencedColumns();
    out.insert(cols.begin(), cols.end());
  }
  for (const CoalescingCertificate& c : coalescings) {
    std::set<ColId> cols = c.ReferencedColumns();
    out.insert(cols.begin(), cols.end());
  }
  for (const ViewRewriteCertificate& c : view_rewrites) {
    std::set<ColId> cols = c.ReferencedColumns();
    out.insert(cols.begin(), cols.end());
  }
  return out;
}

}  // namespace aggview
