#include "analysis/fuzzer.h"

#include <cstdlib>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/certificate.h"
#include "analysis/dataflow.h"
#include "catalog/catalog.h"
#include "catalog/statistics.h"
#include "exec/executor.h"
#include "optimizer/aggview_optimizer.h"
#include "optimizer/plan_validator.h"
#include "optimizer/traditional.h"
#include "sql/binder.h"
#include "tpcd/dbgen.h"
#include "verify/prover.h"
#include "verify/skeleton.h"
#include "view/maintenance.h"
#include "view/matview.h"
#include "view/rewriter.h"

namespace aggview {

namespace {

std::string Lit(Rng* rng, int64_t lo, int64_t hi) {
  return std::to_string(rng->Uniform(lo, hi));
}

/// What an aggregate output measures, so top-block predicates compare it
/// against a column (or literal range) of the same scale.
enum class AggDomain { kSal, kAge, kCount };

struct AggOut {
  std::string col;  // output column name inside the view
  AggDomain domain = AggDomain::kSal;
};

struct ViewSpec {
  std::string name;
  std::string sql;  // the full CREATE VIEW statement
  std::vector<AggOut> aggs;
};

/// One random view: an emp block (optionally joined with dept or a second
/// emp), grouped by dno (optionally also age), with 1-2 aggregates and
/// optional WHERE/HAVING.
ViewSpec GenerateView(Rng* rng, int index) {
  ViewSpec view;
  view.name = "v" + std::to_string(index);
  std::string e = "ve" + std::to_string(index);

  std::string from = "emp " + e;
  std::vector<std::string> where;
  bool with_dept = rng->Chance(0.3);
  bool with_self = !with_dept && rng->Chance(0.15);
  std::string d = "vd" + std::to_string(index);
  std::string f = "vf" + std::to_string(index);
  if (with_dept) {
    from += ", dept " + d;
    where.push_back(e + ".dno = " + d + ".dno");
    if (rng->Chance(0.5)) {
      where.push_back(d + ".budget < " + Lit(rng, 300'000, 4'000'000));
    }
  }
  if (with_self) {
    from += ", emp " + f;
    where.push_back(e + ".dno = " + f + ".dno");
    if (rng->Chance(0.6)) {
      where.push_back(f + ".age > " + Lit(rng, 20, 50));
    }
  }
  if (rng->Chance(0.4)) where.push_back(e + ".age < " + Lit(rng, 19, 60));
  if (rng->Chance(0.25)) {
    where.push_back(e + ".sal > " + Lit(rng, 30'000, 150'000));
  }

  std::vector<std::string> out_cols = {"dno"};
  std::vector<std::string> select = {e + ".dno"};
  std::vector<std::string> group = {e + ".dno"};
  if (rng->Chance(0.2)) {
    out_cols.push_back("gage");
    select.push_back(e + ".age");
    group.push_back(e + ".age");
  }

  int num_aggs = static_cast<int>(rng->Uniform(1, 2));
  for (int a = 0; a < num_aggs; ++a) {
    AggOut out;
    out.col = "a" + std::to_string(a);
    std::string call;
    switch (rng->Uniform(0, 6)) {
      case 0:
        call = "avg(" + e + ".sal)";
        out.domain = AggDomain::kSal;
        break;
      case 1:
        call = "sum(" + e + ".sal)";
        out.domain = AggDomain::kSal;
        break;
      case 2:
        call = "min(" + e + ".sal)";
        out.domain = AggDomain::kSal;
        break;
      case 3:
        call = "max(" + e + ".age)";
        out.domain = AggDomain::kAge;
        break;
      case 4:
        call = "count(*)";
        out.domain = AggDomain::kCount;
        break;
      case 5:
        call = "count(" + e + ".sal)";
        out.domain = AggDomain::kCount;
        break;
      default:
        call = "median(" + e + ".sal)";
        out.domain = AggDomain::kSal;
        break;
    }
    out_cols.push_back(out.col);
    select.push_back(call);
    view.aggs.push_back(std::move(out));
  }

  std::string sql = "create view " + view.name + " (";
  for (size_t i = 0; i < out_cols.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += out_cols[i];
  }
  sql += ") as\n  select ";
  for (size_t i = 0; i < select.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += select[i];
  }
  sql += "\n  from " + from;
  if (!where.empty()) {
    sql += "\n  where ";
    for (size_t i = 0; i < where.size(); ++i) {
      if (i > 0) sql += " and ";
      sql += where[i];
    }
  }
  sql += "\n  group by ";
  for (size_t i = 0; i < group.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += group[i];
  }
  if (rng->Chance(0.2)) {
    sql += "\n  having count(*) > " + Lit(rng, 1, 3);
  }
  sql += ";\n";
  view.sql = std::move(sql);
  return view;
}

/// Reads AGGVIEW_FUZZ_SEED: unset/empty -> nullopt (normal sweep); otherwise
/// a strict base-10 uint64 naming the single per-query seed to replay.
Result<std::optional<uint64_t>> FuzzReplaySeedFromEnv() {
  const char* raw = std::getenv("AGGVIEW_FUZZ_SEED");
  if (raw == nullptr || *raw == '\0') return std::optional<uint64_t>{};
  uint64_t value = 0;
  for (const char* p = raw; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') {
      return Status::InvalidArgument(
          "AGGVIEW_FUZZ_SEED must be a base-10 unsigned integer, got: " +
          std::string(raw));
    }
    uint64_t digit = static_cast<uint64_t>(*p - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return Status::InvalidArgument("AGGVIEW_FUZZ_SEED overflows uint64: " +
                                     std::string(raw));
    }
    value = value * 10 + digit;
  }
  return std::optional<uint64_t>(value);
}

/// On a divergence the fuzzer does not shrink its own generated database
/// (dbgen keys are 1-based, violating the shrinker's canonical-label
/// invariant); instead it re-proves the failing plan pair on the small
/// scope, where any counterexample found is minimized and rendered as a
/// self-contained repro. Returns a note to append to the failure message.
std::string MinimizeDivergenceNote(Catalog* catalog, const Query& pre_query,
                                   const PlanPtr& pre_plan,
                                   const ExecContext& pre_ctx,
                                   const Query& post_query,
                                   const PlanPtr& post_plan,
                                   const ExecContext& post_ctx,
                                   const std::string& name) {
  std::vector<SkeletonSource> sources;
  sources.push_back(SkeletonSource{&pre_query, {}});
  if (&post_query != &pre_query) {
    sources.push_back(SkeletonSource{&post_query, {}});
  }
  auto skeleton = ExtractSkeleton(*catalog, sources);
  if (!skeleton.ok()) {
    return "\n(no minimized counterexample: skeleton extraction failed: " +
           skeleton.status().ToString() + ")";
  }
  ProverOptions prover_options;
  prover_options.bounds.max_rows = 2;
  prover_options.bounds.max_databases = 200'000;
  prover_options.name = name;
  ExecutionSpec pre{&pre_query, pre_plan, pre_ctx, "reference"};
  ExecutionSpec post{&post_query, post_plan, post_ctx, name};
  auto proof = ProveEquivalence(catalog, *skeleton, pre, post, prover_options);
  if (!proof.ok()) {
    return "\n(no minimized counterexample: prover failed: " +
           proof.status().ToString() + ")";
  }
  if (!proof->counterexample.has_value()) {
    return "\n(prover found no counterexample among " +
           std::to_string(proof->databases_checked) +
           " small-scope databases; the divergence may need more rows or "
           "specific values than the bounded search covers)";
  }
  const Counterexample& cx = *proof->counterexample;
  return "\nminimized counterexample (" + std::to_string(cx.db.total_rows()) +
         " rows):\n" + cx.repro;
}

}  // namespace

std::string GenerateAggViewSql(Rng* rng,
                               std::vector<std::string>* view_ddl) {
  int num_views = static_cast<int>(rng->Uniform(0, 2));
  std::vector<ViewSpec> views;
  std::string sql;
  for (int i = 0; i < num_views; ++i) {
    views.push_back(GenerateView(rng, i));
    sql += views.back().sql;
    if (view_ddl != nullptr) view_ddl->push_back(views.back().sql);
  }

  // Top block: emp e1 always, optional self-join / dept, every view joined
  // through dno.
  std::string from = "emp e1";
  std::vector<std::string> where;
  bool with_self = rng->Chance(0.25);
  bool with_dept = rng->Chance(0.25);
  if (with_self) {
    from += ", emp e2";
    where.push_back("e1.dno = e2.dno");
    if (rng->Chance(0.5)) where.push_back("e2.age > " + Lit(rng, 20, 50));
  }
  if (with_dept) {
    from += ", dept d";
    where.push_back("e1.dno = d.dno");
    if (rng->Chance(0.6)) {
      where.push_back("d.budget < " + Lit(rng, 300'000, 4'000'000));
    }
  }
  for (const ViewSpec& v : views) {
    from += ", " + v.name;
    where.push_back("e1.dno = " + v.name + ".dno");
    // Aggregate-output predicates: compare against a base column of the same
    // domain (the deferred-HAVING path of pull-up) or against a literal.
    for (const AggOut& agg : v.aggs) {
      if (!rng->Chance(0.55)) continue;
      std::string out = v.name + "." + agg.col;
      switch (agg.domain) {
        case AggDomain::kSal:
          where.push_back(rng->Chance(0.7) ? "e1.sal > " + out
                                           : out + " < " + Lit(rng, 40'000,
                                                               500'000));
          break;
        case AggDomain::kAge:
          where.push_back(rng->Chance(0.7) ? "e1.age < " + out
                                           : out + " > " + Lit(rng, 25, 60));
          break;
        case AggDomain::kCount:
          where.push_back(out + " > " + Lit(rng, 0, 4));
          break;
      }
    }
  }
  if (rng->Chance(0.5)) where.push_back("e1.age < " + Lit(rng, 19, 60));
  if (rng->Chance(0.2)) {
    where.push_back("e1.sal > " + Lit(rng, 30'000, 150'000));
  }

  std::vector<std::string> select;
  std::string tail;
  if (rng->Chance(0.4)) {
    // Aggregated top block: grouped by e1.dno, or scalar.
    bool scalar = rng->Chance(0.3);
    if (!scalar) select.push_back("e1.dno");
    select.push_back("count(*)");
    if (rng->Chance(0.5)) select.push_back("sum(e1.sal)");
    if (rng->Chance(0.3)) select.push_back("min(e1.age)");
    if (!scalar) {
      tail = "\ngroup by e1.dno";
      if (rng->Chance(0.35)) {
        tail += "\nhaving count(*) > " + Lit(rng, 1, 3);
      }
    }
  } else {
    if (rng->Chance(0.6)) select.push_back("e1.dno");
    if (rng->Chance(0.6)) select.push_back("e1.sal");
    for (const ViewSpec& v : views) {
      if (rng->Chance(0.5) && !v.aggs.empty()) {
        select.push_back(v.name + "." + v.aggs[0].col);
      }
    }
    if (select.empty()) select.push_back("e1.eno");
  }

  sql += "select ";
  for (size_t i = 0; i < select.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += select[i];
  }
  sql += "\nfrom " + from;
  if (!where.empty()) {
    sql += "\nwhere ";
    for (size_t i = 0; i < where.size(); ++i) {
      if (i > 0) sql += " and ";
      sql += where[i];
    }
  }
  sql += tail + "\n";
  return sql;
}

namespace {

/// The materialized-view leg of one fuzz query: creates every supported
/// inline view as a materialized view, checks that the rewriter answers the
/// query from the backing tables byte-identically, then applies a random
/// insert+delete delta to emp (incremental maintenance), refreshes whatever
/// went stale, and re-checks the *same* view-answering plan against a base
/// re-execution — so maintained backing content is compared against a full
/// recompute. Restores emp and drops the views before returning, on every
/// path.
Status MatViewDifferential(Catalog* catalog, TableId emp,
                           const std::string& sql,
                           const std::vector<std::string>& view_ddls,
                           const std::string& reference,
                           const OptimizedQuery& reference_opt,
                           const std::string& seed_note, Rng* rng,
                           FuzzReport* report) {
  auto fail = [&](const std::string& what, const Status& st) {
    return Status::Internal("materialized-view differential failure (" + what +
                            ") on query:\n" + sql + seed_note + "\n" +
                            st.ToString());
  };

  // Re-issue each inline definition as CREATE MATERIALIZED VIEW under a
  // fresh name ("v0" -> "mv0"; the inline views keep their names, so both
  // forms coexist). Definitions the matview layer rejects (HAVING, MEDIAN)
  // are expected skips, not failures.
  static const char kCreatePrefix[] = "create view ";
  std::vector<std::string> created;
  for (size_t vi = 0; vi < view_ddls.size(); ++vi) {
    std::string ddl = "create materialized view m" +
                      view_ddls[vi].substr(sizeof(kCreatePrefix) - 1);
    auto res = ExecuteMatViewStatement(catalog, ddl);
    if (res.ok()) {
      created.push_back("mv" + std::to_string(vi));
    } else {
      ++report->matview_skips;
    }
  }
  if (created.empty()) return Status::OK();

  std::vector<Row> snapshot = catalog->table(emp).data->rows();
  Status st = [&]() -> Status {
    // Phase 1: the rewriter must answer every materialized block, and the
    // view-backed execution must reproduce the reference bytes.
    AGGVIEW_ASSIGN_OR_RETURN(Query query, ParseAndBind(*catalog, sql));
    std::vector<ViewRewriteCertificate> certs;
    AGGVIEW_ASSIGN_OR_RETURN(
        int rewrites, RewriteWithMaterializedViews(*catalog, &query, &certs));
    if (rewrites < static_cast<int>(created.size())) {
      return Status::Internal(
          "rewriter answered " + std::to_string(rewrites) + " of " +
          std::to_string(created.size()) +
          " blocks whose definitions were materialized verbatim");
    }
    AGGVIEW_ASSIGN_OR_RETURN(
        OptimizedQuery opt,
        OptimizeQueryWithAggViews(query, TraditionalOptions()));
    for (ViewRewriteCertificate& cert : certs) {
      opt.audit.view_rewrites.push_back(std::move(cert));
    }
    // Backing-column statistics can prove bounds the estimator's heuristics
    // miss; AnalyzePlan requires estimates to respect them.
    opt.plan = ClampEstimatesToProvableBounds(opt.plan, opt.query);
    AGGVIEW_RETURN_NOT_OK(ValidatePlan(opt.plan, opt.query));
    AGGVIEW_RETURN_NOT_OK(AnalyzePlan(opt.plan, opt.query));
    AGGVIEW_RETURN_NOT_OK(VerifyAudit(opt.query, opt.audit));
    AGGVIEW_ASSIGN_OR_RETURN(
        QueryResult answered, ExecutePlan(opt.plan, opt.query, ExecContext{}));
    if (answered.Fingerprint() != reference) {
      return Status::Internal(
          "view-answered execution diverges from the reference");
    }
    report->matview_rewrite_checks += rewrites;

    // Phase 2: a random delta (inserts merging into existing groups plus
    // deletes, the retraction path), then REFRESH for whatever went stale.
    const int64_t nrows = catalog->table(emp).data->row_count();
    TableDelta delta;
    delta.table = emp;
    const int num_inserts = static_cast<int>(rng->Uniform(1, 3));
    for (int j = 0; j < num_inserts; ++j) {
      const Row& donor =
          snapshot[static_cast<size_t>(rng->Uniform(0, nrows - 1))];
      Value sal = rng->Chance(0.15)
                      ? Value::Null()
                      : Value::Real(static_cast<double>(
                            rng->Uniform(30'000, 150'000)));
      delta.inserts.push_back({Value::Int(1'000'000 + j), donor[1],
                               std::move(sal),
                               Value::Int(rng->Uniform(18, 65))});
    }
    std::set<int64_t> deletes;
    const int num_deletes = static_cast<int>(rng->Uniform(1, 3));
    for (int j = 0; j < num_deletes; ++j) {
      deletes.insert(rng->Uniform(0, nrows - 1));
    }
    delta.deletes.assign(deletes.begin(), deletes.end());
    AGGVIEW_RETURN_NOT_OK(ApplyTableDelta(catalog, delta, nullptr));
    for (const std::string& name : created) {
      const ViewDefinition* view = catalog->FindView(name);
      if (view != nullptr && !catalog->IsViewFresh(*view)) {
        AGGVIEW_RETURN_NOT_OK(RefreshMaterializedView(catalog, name));
      }
    }

    // The same plans re-executed over the mutated catalog: maintained (or
    // refreshed) backing content vs the base recompute, byte for byte.
    AGGVIEW_ASSIGN_OR_RETURN(
        QueryResult base_after,
        ExecutePlan(reference_opt.plan, reference_opt.query, ExecContext{}));
    AGGVIEW_ASSIGN_OR_RETURN(
        QueryResult view_after,
        ExecutePlan(opt.plan, opt.query, ExecContext{}));
    if (view_after.Fingerprint() != base_after.Fingerprint()) {
      return Status::Internal(
          "view-answered execution diverges from the base plan after an "
          "insert+delete delta and refresh");
    }
    ++report->matview_delta_checks;
    return Status::OK();
  }();

  // Restore emp exactly (data and stats) and drop the views, so the next
  // fuzz query sees the pristine database whatever happened above.
  {
    TableDef& def = catalog->mutable_table(emp);
    auto restored = std::make_shared<Table>(def.schema);
    restored->Reserve(static_cast<int64_t>(snapshot.size()));
    for (Row& r : snapshot) restored->AppendUnchecked(std::move(r));
    def.data = std::move(restored);
    def.stats = ComputeStats(*def.data);
  }
  for (const std::string& name : created) {
    Status dropped = catalog->DropView(name);
    if (st.ok() && !dropped.ok()) st = dropped;
  }
  if (!st.ok()) return fail("matview", st);
  return Status::OK();
}

/// Reads AGGVIEW_FUZZ_MATVIEW: any value other than unset/empty/"0" turns
/// the materialized-view leg on.
bool MatViewModeFromEnv() {
  const char* raw = std::getenv("AGGVIEW_FUZZ_MATVIEW");
  return raw != nullptr && *raw != '\0' && std::string(raw) != "0";
}

}  // namespace

Result<FuzzReport> RunDifferentialFuzz(const FuzzOptions& options) {
  Catalog catalog;
  AGGVIEW_ASSIGN_OR_RETURN(EmpDeptTables tables,
                           CreateEmpDeptSchema(&catalog));
  EmpDeptOptions data;
  data.num_employees = options.num_employees;
  data.num_departments = options.num_departments;
  data.young_fraction = 0.2;
  data.seed = options.seed * 131 + 7;
  AGGVIEW_RETURN_NOT_OK(GenerateEmpDeptData(&catalog, tables, data));

  // The three algorithm families of the paper plus an aggressive pull-up
  // ablation: traditional two-phase (group-by after all joins), greedy
  // conservative (early group-by placement, no pull-up), and the extended
  // two-phase optimizer (pull-up + push-down + greedy enumeration).
  std::vector<OptimizerOptions> configs;
  configs.push_back(TraditionalOptions());
  OptimizerOptions greedy;
  greedy.max_pullup = 0;
  greedy.shrink_views = false;
  configs.push_back(greedy);
  configs.push_back(OptimizerOptions{});
  OptimizerOptions deep_pull;
  deep_pull.max_pullup = 3;
  deep_pull.require_shared_predicate = false;
  configs.push_back(deep_pull);
  for (OptimizerOptions& c : configs) c.paranoid = options.paranoid;

  // Each query gets its own derived seed, so any failure is replayable in
  // isolation: set AGGVIEW_FUZZ_SEED to the seed printed in the failure
  // message and the run regenerates exactly that one query (same data).
  AGGVIEW_ASSIGN_OR_RETURN(std::optional<uint64_t> replay,
                           FuzzReplaySeedFromEnv());
  const int num_queries = replay.has_value() ? 1 : options.num_queries;
  const bool matview_mode = options.materialize_views || MatViewModeFromEnv();

  FuzzReport report;
  for (int q = 0; q < num_queries; ++q) {
    const uint64_t query_seed =
        replay.has_value()
            ? *replay
            : options.seed * 1000003ULL + static_cast<uint64_t>(q);
    Rng rng(query_seed);
    std::vector<std::string> view_ddls;
    std::string sql = GenerateAggViewSql(&rng, &view_ddls);
    const std::string seed_note =
        "\nfailing query seed: " + std::to_string(query_seed) +
        " (set AGGVIEW_FUZZ_SEED=" + std::to_string(query_seed) +
        " to replay this query alone)";
    auto bound = ParseAndBind(catalog, sql);
    if (!bound.ok()) {
      return Status::Internal("fuzzer generated unbindable SQL:\n" + sql +
                              seed_note + "\n" + bound.status().ToString());
    }
    if (!bound->views().empty()) ++report.queries_with_views;

    std::string reference;
    std::optional<OptimizedQuery> reference_opt;
    for (size_t i = 0; i < configs.size(); ++i) {
      auto fail = [&](const std::string& what, const Status& st) {
        return Status::Internal("differential fuzz failure (config " +
                                std::to_string(i) + ", " + what +
                                ") on query:\n" + sql + seed_note + "\n" +
                                st.ToString());
      };
      auto optimized = OptimizeQueryWithAggViews(*bound, configs[i]);
      if (!optimized.ok()) return fail("optimize", optimized.status());
      report.plans_checked += optimized->counters.plans_checked;
      report.certificates_verified += optimized->counters.certificates_verified;

      Status valid = ValidatePlan(optimized->plan, optimized->query);
      if (!valid.ok()) return fail("validate", valid);
      Status analyzed = AnalyzePlan(optimized->plan, optimized->query);
      if (!analyzed.ok()) return fail("analyze", analyzed);
      Status audited = VerifyAudit(optimized->query, optimized->audit);
      if (!audited.ok()) return fail("audit", audited);

      // Every execution below runs with runtime dataflow self-verification:
      // the verifier's static facts (nullability, value domains, cardinality
      // bounds) are checked against every produced batch and every node's
      // final row count — the fuzzer tests the abstract interpretation
      // itself against real execution.
      DataflowVerifier verifier(optimized->plan, optimized->query);
      auto result = ExecutePlan(optimized->plan, optimized->query,
                                ExecContext::Default().WithVerify(&verifier));
      if (!result.ok()) return fail("execute", result.status());
      ++report.plans_compared;
      if (i == 0) {
        reference = result->Fingerprint();
        // The batch engine must be invisible to query semantics: the same
        // plan re-executed at degenerate and default batch sizes has to
        // produce a byte-identical fingerprint (size 1 is the row-at-a-time
        // engine's behaviour; size 2 exercises every mid-batch boundary).
        for (int batch_size : options.cross_batch_sizes) {
          auto rerun = ExecutePlan(optimized->plan, optimized->query,
                                   ExecContext{}
                                       .WithBatchSize(batch_size)
                                       .WithVerify(&verifier));
          if (!rerun.ok()) {
            return fail("execute at batch_size=" + std::to_string(batch_size),
                        rerun.status());
          }
          if (rerun->Fingerprint() != reference) {
            std::string note = MinimizeDivergenceNote(
                &catalog, optimized->query, optimized->plan, ExecContext{},
                optimized->query, optimized->plan,
                ExecContext{}.WithBatchSize(batch_size),
                "fuzz_batch" + std::to_string(batch_size));
            return fail("batch_size=" + std::to_string(batch_size) +
                            " diverges from the reference execution",
                        Status::Internal("fingerprints differ" + note));
          }
          ++report.batch_size_checks;
        }
        // Morsel-driven parallelism must be equally invisible: the same
        // plan re-executed at every (threads × batch size) combination has
        // to reproduce the serial reference fingerprint bit for bit. The
        // fuzzer's literals are all integers, so even SUM/AVG merges are
        // exact and order-independent — any divergence is a real race or a
        // morsel-boundary bug, not float noise.
        for (int threads : options.cross_thread_counts) {
          for (int batch_size : options.cross_thread_batch_sizes) {
            auto rerun = ExecutePlan(optimized->plan, optimized->query,
                                     ExecContext{}
                                         .WithThreads(threads)
                                         .WithBatchSize(batch_size)
                                         .WithVerify(&verifier));
            if (!rerun.ok()) {
              return fail("execute at threads=" + std::to_string(threads) +
                              " batch_size=" + std::to_string(batch_size),
                          rerun.status());
            }
            if (rerun->Fingerprint() != reference) {
              std::string note = MinimizeDivergenceNote(
                  &catalog, optimized->query, optimized->plan, ExecContext{},
                  optimized->query, optimized->plan,
                  ExecContext{}.WithThreads(threads).WithBatchSize(batch_size),
                  "fuzz_threads" + std::to_string(threads));
              return fail("threads=" + std::to_string(threads) +
                              " batch_size=" + std::to_string(batch_size) +
                              " diverges from the serial reference",
                          Status::Internal("fingerprints differ" + note));
            }
            ++report.thread_checks;
          }
        }
        // The compiled backend must be equally invisible: the same plan
        // re-executed on bytecode predicates and fused pipeline kernels —
        // serial and morsel-parallel, degenerate and default batch geometry
        // — has to reproduce the interpreted reference fingerprint bit for
        // bit. The verifier stays installed, so fused kernels are also
        // checked against the statically derived dataflow facts.
        for (int threads : options.cross_backend_thread_counts) {
          for (int batch_size : options.cross_backend_batch_sizes) {
            TransformationAudit compile_audit;
            auto rerun = ExecutePlan(optimized->plan, optimized->query,
                                     ExecContext{}
                                         .WithBackend(ExecBackend::kCompiled)
                                         .WithThreads(threads)
                                         .WithBatchSize(batch_size)
                                         .WithVerify(&verifier)
                                         .WithAudit(&compile_audit));
            if (!rerun.ok()) {
              return fail("execute compiled at threads=" +
                              std::to_string(threads) +
                              " batch_size=" + std::to_string(batch_size),
                          rerun.status());
            }
            // Every bytecode program this lowering compiled must have passed
            // the static verifier — a rejection inside the fuzz corpus means
            // either a compiler bug (it emitted an unfaithful program) or a
            // verifier bug (it rejected a faithful one); both must surface.
            for (const CompilationCertificate& cert :
                 compile_audit.compilations) {
              if (!cert.verified) {
                return fail("bytecode verifier rejected a compiled program "
                            "(node " + cert.node + ", " + cert.kind + ")",
                            Status::Internal(cert.rejection));
              }
              ++report.bytecode_checks;
            }
            if (rerun->Fingerprint() != reference) {
              std::string note = MinimizeDivergenceNote(
                  &catalog, optimized->query, optimized->plan, ExecContext{},
                  optimized->query, optimized->plan,
                  ExecContext{}
                      .WithBackend(ExecBackend::kCompiled)
                      .WithThreads(threads)
                      .WithBatchSize(batch_size),
                  "fuzz_compiled_t" + std::to_string(threads) + "_b" +
                      std::to_string(batch_size));
              return fail("compiled backend at threads=" +
                              std::to_string(threads) +
                              " batch_size=" + std::to_string(batch_size) +
                              " diverges from the interpreted reference",
                          Status::Internal("fingerprints differ" + note));
            }
            ++report.backend_checks;
          }
        }
      } else if (result->Fingerprint() != reference) {
        std::string note =
            reference_opt.has_value()
                ? MinimizeDivergenceNote(
                      &catalog, reference_opt->query, reference_opt->plan,
                      ExecContext{}, optimized->query, optimized->plan,
                      ExecContext{}, "fuzz_config" + std::to_string(i))
                : std::string();
        return fail("results diverge from traditional plan",
                    Status::Internal("fingerprints differ" + note));
      }
      report.dataflow_checks += verifier.checks();
      // Keep the traditional plan and query alive past this iteration: a
      // later config's divergence re-proves this exact plan pair on the
      // small scope to produce a minimized counterexample. Moved last —
      // `verifier` holds pointers into the query.
      if (i == 0) reference_opt.emplace(std::move(*optimized));
    }
    if (matview_mode && !view_ddls.empty() && reference_opt.has_value()) {
      AGGVIEW_RETURN_NOT_OK(MatViewDifferential(
          &catalog, tables.emp, sql, view_ddls, reference, *reference_opt,
          seed_note, &rng, &report));
    }
    ++report.queries_run;
  }
  return report;
}

}  // namespace aggview
