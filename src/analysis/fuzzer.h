#ifndef AGGVIEW_ANALYSIS_FUZZER_H_
#define AGGVIEW_ANALYSIS_FUZZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"

namespace aggview {

/// Differential fuzzing of the optimizer stack (the dynamic complement of the
/// static analyzer): seeded random queries in the paper's canonical form are
/// optimized by every optimizer configuration, every plan is analyzed, every
/// plan is executed, and the result multisets are cross-checked. A plan that
/// passes the analyzer but computes a different bag than the traditional
/// plan is exactly the kind of bug the legality certificates exist to catch,
/// so any disagreement is reported as an error carrying the offending SQL.

/// Generates one random aggregate-view query over the emp/dept schema
/// (tpcd/dbgen.h), in canonical form: 0-2 aggregate views (single- or
/// multi-relation blocks, AVG/SUM/MIN/MAX/COUNT/COUNT(*)/MEDIAN, optional
/// HAVING), a top block joining base relations and views, literal and
/// aggregate-output predicates, and an optional top group-by (grouped or
/// scalar). All literals are integers, so results are exactly comparable
/// across plans. Deterministic in `rng`.
/// When `view_ddl` is non-null it receives each generated view's standalone
/// CREATE VIEW statement, in FROM order — the materialized-view fuzz mode
/// re-issues them as CREATE MATERIALIZED VIEW.
std::string GenerateAggViewSql(Rng* rng,
                               std::vector<std::string>* view_ddl = nullptr);

struct FuzzOptions {
  /// Base seed. Query q runs under the derived per-query seed
  /// `seed * 1000003 + q`, which every failure message prints; exporting
  /// AGGVIEW_FUZZ_SEED=<that seed> makes the next run regenerate exactly
  /// that one query (against the same database), so a failure is replayable
  /// without re-running the whole sweep.
  uint64_t seed = 1;
  /// Queries generated and cross-checked. Ignored (forced to 1) when
  /// AGGVIEW_FUZZ_SEED is set.
  int num_queries = 50;
  /// Database shape: small enough to execute hundreds of queries quickly,
  /// large enough for multi-tuple groups and empty-group edge cases.
  int64_t num_employees = 150;
  int64_t num_departments = 8;
  /// Optimize in paranoid mode: the semantic analyzer runs at every DP-table
  /// insertion and every transformation certificate is re-verified.
  bool paranoid = true;
  /// The reference (traditional) plan is re-executed at each of these batch
  /// sizes and every fingerprint must be byte-identical to the default-size
  /// run's — the batch engine must be invisible to query semantics. Size 1
  /// is the row-at-a-time engine's behaviour. Empty disables the check.
  std::vector<int> cross_batch_sizes = {1, 2, 1024};
  /// The reference plan is additionally re-executed at every (threads ×
  /// batch size) combination of these two lists, and every fingerprint must
  /// be byte-identical to the serial reference — morsel-driven parallelism
  /// must be invisible to query semantics at any thread count and any batch
  /// geometry. Either list empty disables the check.
  std::vector<int> cross_thread_counts = {1, 2, 8};
  std::vector<int> cross_thread_batch_sizes = {1, 1024};
  /// The reference plan is further re-executed under the compiled backend
  /// (ExecBackend::kCompiled — bytecode predicates plus fused pipeline
  /// kernels) at every (threads × batch size) combination of these lists,
  /// and every fingerprint must be byte-identical to the interpreted
  /// reference — the backend must be invisible to query semantics. Either
  /// list empty disables the check.
  std::vector<int> cross_backend_thread_counts = {1, 8};
  std::vector<int> cross_backend_batch_sizes = {1, 1024};
  /// Materialize the generated queries' view definitions and differentially
  /// test the whole materialized-view stack against the reference: each
  /// supported inline view (no HAVING, no MEDIAN — rejected ones count as
  /// skips) is re-issued as CREATE MATERIALIZED VIEW, the query is re-bound
  /// and rewritten to answer from the backing tables, and the execution must
  /// be byte-identical to the reference. Then a random insert+delete delta
  /// is applied to emp (exercising incremental maintenance), stale views are
  /// REFRESHed, and the same view-answering plan must again match a base
  /// re-execution. The base data is restored and the views dropped before
  /// the next query. Also enabled by AGGVIEW_FUZZ_MATVIEW=1.
  bool materialize_views = false;
};

/// What a fuzz run did, for test assertions and reporting.
struct FuzzReport {
  int queries_run = 0;
  int queries_with_views = 0;
  int plans_compared = 0;
  /// Reference-plan re-executions at a non-default batch size whose
  /// fingerprint matched the reference fingerprint.
  int batch_size_checks = 0;
  /// Reference-plan re-executions at a (threads, batch size) combination
  /// whose fingerprint matched the serial reference fingerprint.
  int thread_checks = 0;
  /// Reference-plan re-executions under the compiled backend whose
  /// fingerprint matched the interpreted reference fingerprint.
  int backend_checks = 0;
  /// Compiled bytecode programs of the backend-axis reruns that carried a
  /// passing verification certificate (exec/compile/verifier.h). A rejected
  /// certificate fails the fuzz run outright: inside the corpus every
  /// compiled program must verify — a rejection is a compiler bug (an
  /// unfaithful program) or a verifier bug (a faithful one rejected).
  int64_t bytecode_checks = 0;
  int64_t plans_checked = 0;        // analyzer invocations from dp_check
  int64_t certificates_verified = 0;
  /// Runtime dataflow facts checked by the self-verification mode: every
  /// execution runs with a DataflowVerifier installed, so every produced
  /// batch is checked against the statically derived nullability and value
  /// domains and every node's row count against the provable [lo, hi].
  int64_t dataflow_checks = 0;
  /// materialize_views mode: inline view blocks answered from freshly
  /// created backing tables with a reference-identical fingerprint.
  int matview_rewrite_checks = 0;
  /// materialize_views mode: queries whose view-answering plan still matched
  /// the base plan after an insert+delete delta and REFRESH of stale views.
  int matview_delta_checks = 0;
  /// materialize_views mode: generated view definitions the matview layer
  /// rejects by design (HAVING, MEDIAN).
  int matview_skips = 0;
};

/// Runs the differential fuzz loop. Fails on the first query where any
/// optimizer configuration yields a plan that fails validation/analysis,
/// fails to execute, or executes to a result multiset different from the
/// traditional plan's; the error message contains the SQL, the configuration
/// index, the replayable per-query seed, and the underlying diagnostic. On a
/// fingerprint divergence the failing plan pair is additionally re-proved on
/// the small scope (verify/prover.h) and any counterexample found there is
/// minimized and embedded in the error as a self-contained repro.
Result<FuzzReport> RunDifferentialFuzz(const FuzzOptions& options);

}  // namespace aggview

#endif  // AGGVIEW_ANALYSIS_FUZZER_H_
