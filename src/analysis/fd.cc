#include "analysis/fd.h"

#include <algorithm>

#include "algebra/logical_plan.h"

namespace aggview {

void FdSet::AddFd(std::set<ColId> lhs, std::set<ColId> rhs) {
  if (lhs.empty()) {
    constants_.insert(rhs.begin(), rhs.end());
    return;
  }
  fds_.push_back({std::move(lhs), std::move(rhs)});
}

void FdSet::AddConstant(ColId col) { constants_.insert(col); }

void FdSet::AddEquivalence(ColId a, ColId b) {
  AddFd({a}, {b});
  AddFd({b}, {a});
}

void FdSet::AddKey(const std::vector<ColId>& key,
                   const std::set<ColId>& all_cols) {
  if (key.empty()) return;
  AddFd(std::set<ColId>(key.begin(), key.end()), all_cols);
}

void FdSet::AddPredicates(const std::vector<Predicate>& preds) {
  for (const Predicate& p : preds) {
    ColId a, b;
    if (p.AsColumnEquality(&a, &b)) {
      AddEquivalence(a, b);
      continue;
    }
    ColId col;
    CompareOp op;
    Value v;
    if (p.AsColumnVsLiteral(&col, &op, &v) && op == CompareOp::kEq) {
      AddConstant(col);
    }
  }
}

void FdSet::Merge(const FdSet& other) {
  fds_.insert(fds_.end(), other.fds_.begin(), other.fds_.end());
  constants_.insert(other.constants_.begin(), other.constants_.end());
}

std::set<ColId> FdSet::Closure(std::set<ColId> start) const {
  start.insert(constants_.begin(), constants_.end());
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Fd& fd : fds_) {
      bool applies = std::all_of(fd.lhs.begin(), fd.lhs.end(), [&](ColId c) {
        return start.count(c) > 0;
      });
      if (!applies) continue;
      for (ColId c : fd.rhs) {
        if (start.insert(c).second) changed = true;
      }
    }
  }
  return start;
}

bool FdSet::Determines(const std::set<ColId>& lhs,
                       const std::set<ColId>& rhs) const {
  std::set<ColId> closure = Closure(lhs);
  return std::all_of(rhs.begin(), rhs.end(),
                     [&](ColId c) { return closure.count(c) > 0; });
}

std::vector<std::vector<ColId>> RangeVarKeys(const Query& query, int rel_id) {
  const RangeVar& rv = query.range_var(rel_id);
  const TableDef& def = query.catalog().table(rv.table);
  auto key_to_cols = [&](const std::vector<int>& key) {
    std::vector<ColId> out;
    out.reserve(key.size());
    for (int k : key) out.push_back(rv.columns[static_cast<size_t>(k)]);
    return out;
  };
  std::vector<std::vector<ColId>> keys;
  if (!def.primary_key.empty()) keys.push_back(key_to_cols(def.primary_key));
  for (const auto& uk : def.unique_keys) {
    if (!uk.empty()) keys.push_back(key_to_cols(uk));
  }
  if (rv.rowid != kInvalidColId) keys.push_back({rv.rowid});
  return keys;
}

FdSet RangeVarFds(const Query& query, int rel_id) {
  FdSet fds;
  std::set<ColId> cols = query.range_var(rel_id).ColumnSet();
  for (const std::vector<ColId>& key : RangeVarKeys(query, rel_id)) {
    fds.AddKey(key, cols);
  }
  return fds;
}

namespace {

/// Concatenations of one key per side, capped to keep the product small.
std::vector<std::vector<ColId>> CombineKeys(
    const std::vector<std::vector<ColId>>& left,
    const std::vector<std::vector<ColId>>& right) {
  constexpr size_t kMaxKeys = 8;
  std::vector<std::vector<ColId>> out;
  for (const auto& l : left) {
    for (const auto& r : right) {
      if (out.size() >= kMaxKeys) return out;
      std::vector<ColId> k = l;
      k.insert(k.end(), r.begin(), r.end());
      out.push_back(std::move(k));
    }
  }
  return out;
}

Result<PlanProperties> Derive(const PlanPtr& plan, const Query& query) {
  if (plan == nullptr) {
    return Status::InvalidArgument("cannot derive properties of a null plan");
  }
  PlanProperties props;
  props.columns.insert(plan->output.columns().begin(),
                       plan->output.columns().end());

  switch (plan->kind) {
    case PlanNode::Kind::kScan: {
      props.fds = RangeVarFds(query, plan->rel_id);
      props.keys = RangeVarKeys(query, plan->rel_id);
      props.fds.AddPredicates(plan->scan_filter);
      return props;
    }
    case PlanNode::Kind::kFilter: {
      AGGVIEW_ASSIGN_OR_RETURN(PlanProperties child,
                               Derive(plan->left, query));
      props.fds = std::move(child.fds);
      props.keys = std::move(child.keys);
      props.fds.AddPredicates(plan->filter_preds);
      return props;
    }
    case PlanNode::Kind::kJoin: {
      AGGVIEW_ASSIGN_OR_RETURN(PlanProperties left,
                               Derive(plan->left, query));
      AGGVIEW_ASSIGN_OR_RETURN(PlanProperties right,
                               Derive(plan->right, query));
      props.fds = std::move(left.fds);
      props.fds.Merge(right.fds);
      // Predicate-derived FDs do not hold on a left outer join's padding
      // rows (the right side is NULL there), so only inner joins keep them.
      if (!plan->left_outer) props.fds.AddPredicates(plan->join_preds);
      props.keys = CombineKeys(left.keys, right.keys);
      return props;
    }
    case PlanNode::Kind::kGroupBy: {
      AGGVIEW_ASSIGN_OR_RETURN(PlanProperties child,
                               Derive(plan->left, query));
      // Output rows are one representative per group: FDs of the input
      // survive the projection, and the grouping columns become a key.
      props.fds = std::move(child.fds);
      std::set<ColId> outputs(props.columns);
      for (ColId g : plan->group_by.grouping) outputs.insert(g);
      for (const AggregateCall& a : plan->group_by.aggregates) {
        outputs.insert(a.output);
      }
      std::set<ColId> grouping(plan->group_by.grouping.begin(),
                               plan->group_by.grouping.end());
      props.fds.AddFd(grouping, outputs);
      props.keys = {plan->group_by.grouping};
      props.fds.AddPredicates(plan->group_by.having);
      return props;
    }
    case PlanNode::Kind::kSort: {
      AGGVIEW_ASSIGN_OR_RETURN(PlanProperties child,
                               Derive(plan->left, query));
      props.fds = std::move(child.fds);
      props.keys = std::move(child.keys);
      return props;
    }
  }
  return Status::Internal("unknown plan node kind in FD derivation");
}

}  // namespace

Result<PlanProperties> DerivePlanProperties(const PlanPtr& plan,
                                            const Query& query) {
  return Derive(plan, query);
}

}  // namespace aggview
