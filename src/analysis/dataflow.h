#ifndef AGGVIEW_ANALYSIS_DATAFLOW_H_
#define AGGVIEW_ANALYSIS_DATAFLOW_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>

#include "algebra/query.h"
#include "common/result.h"
#include "exec/row_batch.h"
#include "optimizer/plan.h"

namespace aggview {

class RuntimeStatsCollector;

/// Abstract interpretation over physical plans (the dataflow verifier).
///
/// A bottom-up pass computes, for every plan node, an abstract state:
///
///  - per output column, a *nullability lattice* value (never / maybe /
///    always NULL), a *value domain* (a closed interval over the non-NULL
///    values, numeric or lexicographic, seeded from the catalog's exact
///    min/max statistics and refined through filter and join predicates),
///    and a sound upper bound on the column's distinct non-NULL values;
///  - per node, *cardinality bounds* [lo, hi] on the number of rows the
///    node can produce, via sound transfer functions (scans from table row
///    counts, filters zero the bound on provably-false predicates, inner
///    joins multiply, outer joins preserve the left input and introduce
///    NULLs on the right, group-bys are capped by the product of the
///    grouping columns' domains).
///
/// Everything derived here is a *theorem* about execution, not an estimate:
/// any run of the plan over data consistent with the catalog statistics
/// must produce a row count inside [lo, hi] and NULLs only in maybe/always
/// columns. Three consumers rely on that:
///
///  1. static obligations in AnalyzePlan (CheckDataflowObligations):
///     COUNT-family outputs are non-null and >= 0, coalescing combine
///     inputs are never-null where AggAccumulator::Merge requires it,
///     predicates are not statically dead, and every estimator estimate
///     lies inside the provable bounds (outside = a flagged estimator bug);
///  2. paranoid mode: AnalyzePlan (and with it this pass) runs on every
///     DP-table insertion of all three optimizers;
///  3. runtime self-verification (DataflowVerifier): a debug ExecContext
///     mode where the executor checks every produced batch and every
///     node's final row count against the static facts, which in turn lets
///     the differential fuzzer test the analysis itself against execution.
enum class Nullability {
  kNever,   // no row of this node carries NULL in the column
  kMaybe,   // unknown; NULLs permitted
  kAlways,  // every row carries NULL (outer-join padding of an empty side)
};

const char* NullabilityName(Nullability n);

/// Unbounded distinct-count sentinel.
inline constexpr double kUnboundedDistinct =
    std::numeric_limits<double>::infinity();

/// Abstract state of one column at one plan node.
struct ColumnFacts {
  Nullability null = Nullability::kMaybe;
  /// Closed numeric interval over the column's non-NULL values.
  bool has_range = false;
  double min = 0.0;
  double max = 0.0;
  /// Closed lexicographic interval for string columns.
  bool has_str_range = false;
  std::string min_str;
  std::string max_str;
  /// Sound upper bound on the number of distinct non-NULL values
  /// (kUnboundedDistinct when nothing is known).
  double max_distinct = kUnboundedDistinct;
};

/// Provable cardinality bounds of one plan node.
struct CardBounds {
  double lo = 0.0;
  double hi = std::numeric_limits<double>::infinity();
};

/// The abstract state of one plan node: cardinality bounds plus facts for
/// every column flowing through the node (not just the projected output, so
/// pre-projection operators of the same node are checkable too).
struct NodeFacts {
  CardBounds card;
  std::unordered_map<ColId, ColumnFacts> cols;
  /// Rendering of the first predicate of this node proved statically false
  /// because it references an always-NULL column outside COALESCE (empty
  /// when none). Surfaced as a static obligation failure.
  std::string dead_predicate;

  const ColumnFacts* Find(ColId c) const {
    auto it = cols.find(c);
    return it == cols.end() ? nullptr : &it->second;
  }
};

/// The result of the abstract interpretation: facts per plan node, keyed by
/// node identity (plans are DAGs — shared subplans are analyzed once).
/// Analysis is total: it never fails, it only loses precision (a node it
/// cannot model gets [0, inf) and maybe-NULL columns).
class DataflowAnalysis {
 public:
  static DataflowAnalysis Analyze(const PlanPtr& plan, const Query& query);

  const NodeFacts* Find(const PlanNode* node) const {
    auto it = facts_.find(node);
    return it == facts_.end() ? nullptr : &it->second;
  }

 private:
  std::unordered_map<const PlanNode*, NodeFacts> facts_;
};

/// Static obligations over the analysis (consumer 1). Errors name the
/// offending node (same convention as the analyzer's NodeError):
///  - every node's estimated row count lies inside the provable [lo, hi]
///    (an estimate outside the bounds is an estimator bug by construction);
///  - COUNT-family outputs are declared non-nullable, derive never-NULL,
///    and their domain proves >= 0;
///  - coalescing combine inputs that carry counts (the kCountSum argument
///    and the count side of kAvgFinal) derive never-NULL — a NULL there is
///    silently skipped by AggAccumulator::Add/Merge and loses rows;
///  - no predicate (scan filter, residual filter, join predicate, HAVING)
///    references an always-NULL column outside COALESCE: such a conjunct is
///    statically false and the plan is dead weight at best, a miscompiled
///    pull-up at worst.
Status CheckDataflowObligations(const PlanPtr& plan, const Query& query,
                                const DataflowAnalysis& analysis);

/// Convenience: analyze + check in one call.
Status CheckDataflowObligations(const PlanPtr& plan, const Query& query);

/// True when `est_rows` lies inside `bounds` up to float-rounding slack.
bool EstimateWithinBounds(double est_rows, const CardBounds& bounds);

/// Returns `plan` with every node's estimated row count clamped into its
/// provable [lo, hi] bounds (nodes are immutable, so the spine above any
/// clamped node is rebuilt; feasible subtrees are shared with the input).
/// The view-matching rewriter can make the provable bounds *tighter* than
/// the estimator's heuristics: backing-table column statistics flow through
/// the combine aggregates (a per-group partial sum has real min/max stats
/// where the base aggregate output has none), so the interpreter may prove
/// a view-output predicate empty while the estimator still applies a
/// default selectivity. Clamping restores the estimator-consistency
/// obligation above without touching any estimate that was already
/// feasible. Run on view-backed plans after optimization.
PlanPtr ClampEstimatesToProvableBounds(const PlanPtr& plan,
                                       const Query& query);

/// Runtime self-verification (consumer 3): owns the analysis of one plan
/// and checks actual execution against it. Installed via
/// ExecContext::WithVerify; the executor then
///  - checks every batch an operator produces (CheckBatch): NULLs only in
///    maybe/always columns, values inside the value domains;
///  - checks every node's total produced row count against [lo, hi] after
///    the drain (CheckPlanCardinality).
/// Thread-safe: the facts are immutable after construction and the check
/// counter is atomic (worker clones of a morsel-parallel pipeline all call
/// CheckBatch).
class DataflowVerifier {
 public:
  DataflowVerifier(const PlanPtr& plan, const Query& query)
      : plan_(plan),
        query_(&query),
        analysis_(DataflowAnalysis::Analyze(plan, query)) {}

  const DataflowAnalysis& analysis() const { return analysis_; }

  /// Verifies one produced batch of `node` (layout = the producing
  /// operator's output layout). Counts one check per (column, batch).
  Status CheckBatch(const PlanNode* node, const RowLayout& layout,
                    const RowBatch& batch) const;

  /// Verifies the per-node total row counts recorded in `stats` against the
  /// static bounds. Call after the plan fully drained.
  Status CheckPlanCardinality(const RuntimeStatsCollector& stats) const;

  /// Number of runtime facts checked so far (batch-column checks plus
  /// per-node cardinality checks).
  int64_t checks() const { return checks_.load(std::memory_order_relaxed); }

 private:
  Status CheckNodeCardinality(const PlanPtr& node,
                              const RuntimeStatsCollector& stats) const;

  PlanPtr plan_;
  const Query* query_;
  DataflowAnalysis analysis_;
  mutable std::atomic<int64_t> checks_{0};
};

}  // namespace aggview

#endif  // AGGVIEW_ANALYSIS_DATAFLOW_H_
