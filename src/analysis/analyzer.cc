#include "analysis/analyzer.h"

#include <algorithm>
#include <unordered_map>

#include "analysis/dataflow.h"
#include "common/string_util.h"
#include "optimizer/plan_validator.h"
#include "transform/decompose.h"
#include "view/definition_analysis.h"

namespace aggview {

namespace {

Status NodeError(const PlanPtr& plan, const Query& query,
                 const std::string& what) {
  return Status::Internal(what + "\nin node:\n" + PlanToString(plan, query));
}

/// Scalar expressions must be numeric-only below arithmetic; a column of one
/// type family never meets the other family in a comparison. This is the
/// static counterpart of Value::CheckedCompare: a plan that fails here would
/// otherwise produce type confusion at execution time.
Status CheckExprOperands(const ExprPtr& expr, const ColumnCatalog& cat) {
  if (expr == nullptr) return Status::Internal("null expression in predicate");
  if (expr->kind() == ScalarExpr::Kind::kArith) {
    const auto* arith = static_cast<const ArithExpr*>(expr.get());
    for (const ExprPtr& side : {arith->lhs(), arith->rhs()}) {
      AGGVIEW_RETURN_NOT_OK(CheckExprOperands(side, cat));
      if (!IsNumeric(side->ResultType(cat))) {
        return Status::Internal("arithmetic over non-numeric operand '" +
                                side->ToString(cat) + "'");
      }
    }
  } else if (expr->kind() == ScalarExpr::Kind::kCoalesce) {
    const auto* c = static_cast<const CoalesceExpr*>(expr.get());
    AGGVIEW_RETURN_NOT_OK(CheckExprOperands(c->inner(), cat));
    AGGVIEW_RETURN_NOT_OK(CheckExprOperands(c->fallback(), cat));
  }
  return Status::OK();
}

Status CheckPredicateTypes(const Predicate& pred, const ColumnCatalog& cat) {
  AGGVIEW_RETURN_NOT_OK(CheckExprOperands(pred.lhs, cat));
  AGGVIEW_RETURN_NOT_OK(CheckExprOperands(pred.rhs, cat));
  DataType lhs = pred.lhs->ResultType(cat);
  DataType rhs = pred.rhs->ResultType(cat);
  if (IsNumeric(lhs) != IsNumeric(rhs)) {
    return Status::Internal(StrFormat(
        "predicate '%s' compares %s with %s", pred.ToString(cat).c_str(),
        DataTypeName(lhs), DataTypeName(rhs)));
  }
  return Status::OK();
}

Status CheckConjunctionTypes(const std::vector<Predicate>& preds,
                             const ColumnCatalog& cat) {
  for (const Predicate& p : preds) {
    AGGVIEW_RETURN_NOT_OK(CheckPredicateTypes(p, cat));
  }
  return Status::OK();
}

Status CheckAggregateArity(const AggregateCall& call,
                           const ColumnCatalog& cat) {
  size_t expected;
  switch (call.kind) {
    case AggKind::kCountStar:
      expected = 0;
      break;
    case AggKind::kAvgFinal:
      expected = 2;
      break;
    default:
      expected = 1;
      break;
  }
  if (call.args.size() != expected) {
    return Status::Internal(StrFormat(
        "aggregate '%s' takes %zu argument(s), got %zu",
        call.ToString(cat).c_str(), expected, call.args.size()));
  }
  for (ColId arg : call.args) {
    if (call.kind != AggKind::kMin && call.kind != AggKind::kMax &&
        call.kind != AggKind::kCount && !IsNumeric(cat.type(arg))) {
      return Status::Internal(StrFormat(
          "aggregate '%s' over non-numeric argument '%s'",
          call.ToString(cat).c_str(), cat.name(arg).c_str()));
    }
  }
  return Status::OK();
}

/// Aggregate outputs must be pairwise distinct, never grouping columns, and
/// never their own arguments — a spec violating this aliases two unrelated
/// values into one column id and silently corrupts downstream references.
Status CheckGroupBySpec(const GroupBySpec& gb, const ColumnCatalog& cat) {
  std::set<ColId> grouping(gb.grouping.begin(), gb.grouping.end());
  std::set<ColId> outputs;
  for (const AggregateCall& a : gb.aggregates) {
    AGGVIEW_RETURN_NOT_OK(CheckAggregateArity(a, cat));
    if (a.output == kInvalidColId) {
      return Status::Internal("aggregate '" + a.ToString(cat) +
                              "' has no output column");
    }
    if (!outputs.insert(a.output).second) {
      return Status::Internal("two aggregates share output column '" +
                              cat.name(a.output) + "'");
    }
    if (grouping.count(a.output) > 0) {
      return Status::Internal("aggregate output '" + cat.name(a.output) +
                              "' is also a grouping column");
    }
    for (ColId arg : a.args) {
      if (outputs.count(arg) > 0) {
        return Status::Internal("aggregate argument '" + cat.name(arg) +
                                "' is an aggregate output of the same node");
      }
    }
  }
  // HAVING placement: only over the group-by's own outputs.
  std::set<ColId> visible = grouping;
  visible.insert(outputs.begin(), outputs.end());
  for (const Predicate& p : gb.having) {
    if (!p.BoundBy(visible)) {
      return Status::Internal("HAVING predicate '" + p.ToString(cat) +
                              "' references a non-output column");
    }
  }
  AGGVIEW_RETURN_NOT_OK(CheckConjunctionTypes(gb.having, cat));
  return Status::OK();
}

Status AnalyzeNode(const PlanPtr& plan, const Query& query) {
  if (plan == nullptr) return Status::Internal("null plan node");
  const ColumnCatalog& cat = query.columns();
  Status local = Status::OK();
  switch (plan->kind) {
    case PlanNode::Kind::kScan:
      local = CheckConjunctionTypes(plan->scan_filter, cat);
      break;
    case PlanNode::Kind::kFilter:
      AGGVIEW_RETURN_NOT_OK(AnalyzeNode(plan->left, query));
      local = CheckConjunctionTypes(plan->filter_preds, cat);
      break;
    case PlanNode::Kind::kJoin:
      AGGVIEW_RETURN_NOT_OK(AnalyzeNode(plan->left, query));
      AGGVIEW_RETURN_NOT_OK(AnalyzeNode(plan->right, query));
      local = CheckConjunctionTypes(plan->join_preds, cat);
      break;
    case PlanNode::Kind::kGroupBy:
      AGGVIEW_RETURN_NOT_OK(AnalyzeNode(plan->left, query));
      local = CheckGroupBySpec(plan->group_by, cat);
      break;
    case PlanNode::Kind::kSort:
      AGGVIEW_RETURN_NOT_OK(AnalyzeNode(plan->left, query));
      break;
  }
  if (!local.ok()) return NodeError(plan, query, local.message());
  return Status::OK();
}

}  // namespace

Status AnalyzePlan(const PlanPtr& plan, const Query& query,
                   const AnalysisOptions& options) {
  if (options.structural) {
    AGGVIEW_RETURN_NOT_OK(ValidatePlan(plan, query));
  }
  if (options.semantic) {
    AGGVIEW_RETURN_NOT_OK(AnalyzeNode(plan, query));
    // The derivation itself re-walks the tree and fails on malformed nodes;
    // its result also feeds the certificate verifiers.
    AGGVIEW_RETURN_NOT_OK(DerivePlanProperties(plan, query).status());
  }
  // Last, so type/shape errors surface with the more specific messages of
  // the passes above before the dataflow obligations see the plan.
  if (options.dataflow) {
    AGGVIEW_RETURN_NOT_OK(CheckDataflowObligations(plan, query));
  }
  return Status::OK();
}

Status VerifyPullUpCertificate(const Query& query,
                               const PullUpCertificate& cert) {
  const ColumnCatalog& cat = query.columns();

  // The grouping may only grow: every original grouping column survives.
  std::set<ColId> after(cert.grouping_after.begin(),
                        cert.grouping_after.end());
  for (ColId g : cert.grouping_before) {
    if (after.count(g) == 0) {
      return Status::Internal("pull-up dropped grouping column '" +
                              cat.name(g) + "'");
    }
  }

  // Independent FD model of the extended block: catalog keys of every block
  // relation plus the recorded conjunction.
  FdSet fds;
  for (int rel : cert.block_rels) {
    fds.Merge(RangeVarFds(query, rel));
  }
  fds.AddPredicates(cert.block_predicates);
  std::set<ColId> fixed = fds.Closure(after);

  std::set<int> claimed;
  for (const PullUpCertificate::RelClaim& claim : cert.rels) {
    claimed.insert(claim.rel);
    if (cert.pulled.count(claim.rel) == 0) {
      return Status::Internal(
          "pull-up certificate claims a relation that was not pulled");
    }
    const RangeVar& rv = query.range_var(claim.rel);
    // The added key columns (if any) must actually be grouping columns.
    for (ColId c : claim.key_added) {
      if (after.count(c) == 0) {
        return Status::Internal(StrFormat(
            "pull-up of '%s' claims key column '%s' was added to the "
            "grouping, but it is absent",
            rv.alias.c_str(), cat.name(c).c_str()));
      }
    }
    // Definition 1's obligation: the deferred grouping pins a key of the
    // pulled relation, so each group holds at most one of its tuples.
    bool covered = false;
    for (const std::vector<ColId>& key : RangeVarKeys(query, claim.rel)) {
      if (std::all_of(key.begin(), key.end(),
                      [&](ColId c) { return fixed.count(c) > 0; })) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      return Status::Internal(StrFormat(
          "pull-up of relation '%s' into view #%zu is illegal: the deferred "
          "grouping columns do not determine any key of '%s' under the "
          "block's predicates (Section 3, Definition 1)",
          rv.alias.c_str(), cert.view_idx, rv.alias.c_str()));
    }
  }
  for (int rel : cert.pulled) {
    if (claimed.count(rel) == 0) {
      return Status::Internal(
          "pull-up certificate is missing a claim for pulled relation '" +
          query.range_var(rel).alias + "'");
    }
  }
  return Status::OK();
}

namespace {

/// Columns and independently re-derived keys of one block relation claim.
struct RelFacts {
  std::string name;
  std::set<ColId> cols;
  std::vector<std::vector<ColId>> keys;
};

Result<RelFacts> FactsOf(const Query& query, const BlockRelClaim& claim) {
  RelFacts facts;
  facts.name = claim.name;
  if (claim.scan_rel >= 0) {
    facts.cols = query.range_var(claim.scan_rel).ColumnSet();
    facts.keys = RangeVarKeys(query, claim.scan_rel);
    if (facts.name.empty()) facts.name = query.range_var(claim.scan_rel).alias;
    return facts;
  }
  if (claim.composite == nullptr) {
    return Status::Internal("block relation claim '" + claim.name +
                            "' has neither a scan target nor a plan");
  }
  AGGVIEW_ASSIGN_OR_RETURN(PlanProperties props,
                           DerivePlanProperties(claim.composite, query));
  facts.cols = props.columns;
  // Keep only keys the closure actually certifies over the visible columns.
  for (const std::vector<ColId>& key : props.keys) {
    if (props.fds.Determines(std::set<ColId>(key.begin(), key.end()),
                             props.columns)) {
      facts.keys.push_back(key);
    }
  }
  return facts;
}

/// IG1-IG3 for one candidate against the given retained column set,
/// discharged with the analyzer's own FD machinery.
Status CheckRemovable(const Query& query, const InvariantCertificate& cert,
                      const RelFacts& rel,
                      const std::set<ColId>& retained_cols) {
  const ColumnCatalog& cat = query.columns();
  const GroupBySpec& gb = cert.group_by;

  // IG1: no aggregate argument from the removed relation.
  for (ColId arg : gb.AggArgSet()) {
    if (rel.cols.count(arg) > 0) {
      return Status::Internal(StrFormat(
          "invariant grouping removed relation '%s' but aggregate argument "
          "'%s' comes from it (IG1)",
          rel.name.c_str(), cat.name(arg).c_str()));
    }
  }

  std::set<ColId> grouping(gb.grouping.begin(), gb.grouping.end());

  // IG2: crossing predicates touch only grouping columns on the retained
  // side.
  for (const Predicate& p : cert.predicates) {
    std::set<ColId> cols = p.Columns();
    bool touches_rel = false, touches_retained = false;
    for (ColId c : cols) {
      if (rel.cols.count(c) > 0) touches_rel = true;
      if (retained_cols.count(c) > 0) touches_retained = true;
    }
    if (!touches_rel || !touches_retained) continue;
    for (ColId c : cols) {
      if (retained_cols.count(c) > 0 && grouping.count(c) == 0) {
        return Status::Internal(StrFormat(
            "invariant grouping removed relation '%s' but predicate '%s' "
            "reaches non-grouping retained column '%s' (IG2)",
            rel.name.c_str(), p.ToString(cat).c_str(), cat.name(c).c_str()));
      }
    }
  }

  // IG3: at most one removed-relation tuple per group. FD formulation: the
  // grouping columns (fixed within a group) plus predicate-implied constants
  // and equivalences must pin some key of the removed relation. There is no
  // waiver for duplicate-insensitive aggregates: MIN/MAX values survive
  // fan-out but the output row multiplicity does not, and bag semantics make
  // that multiplicity observable downstream.
  FdSet fds;
  fds.AddPredicates(cert.predicates);
  for (ColId g : gb.grouping) fds.AddConstant(g);
  std::set<ColId> fixed = fds.Closure({});
  for (const std::vector<ColId>& key : rel.keys) {
    if (!key.empty() && std::all_of(key.begin(), key.end(), [&](ColId c) {
          return fixed.count(c) > 0;
        })) {
      return Status::OK();
    }
  }
  return Status::Internal(StrFormat(
      "invariant grouping removed relation '%s' but its join is not pinned "
      "to one tuple per group: no key of '%s' is fixed by the grouping "
      "columns and predicates (IG3)",
      rel.name.c_str(), rel.name.c_str()));
}

}  // namespace

Status VerifyInvariantCertificate(const Query& query,
                                  const InvariantCertificate& cert) {
  std::vector<RelFacts> removed, retained;
  for (const BlockRelClaim& claim : cert.removed) {
    AGGVIEW_ASSIGN_OR_RETURN(RelFacts facts, FactsOf(query, claim));
    removed.push_back(std::move(facts));
  }
  for (const BlockRelClaim& claim : cert.retained) {
    AGGVIEW_ASSIGN_OR_RETURN(RelFacts facts, FactsOf(query, claim));
    retained.push_back(std::move(facts));
  }

  std::set<ColId> retained_cols;
  for (const RelFacts& r : retained) {
    retained_cols.insert(r.cols.begin(), r.cols.end());
  }

  // Search for a valid elimination order (the conditions weaken as the
  // retained side shrinks, so greedy progress suffices).
  std::vector<bool> done(removed.size(), false);
  size_t remaining = removed.size();
  Status last = Status::OK();
  while (remaining > 0) {
    bool progress = false;
    for (size_t i = 0; i < removed.size(); ++i) {
      if (done[i]) continue;
      std::set<ColId> others = retained_cols;
      for (size_t j = 0; j < removed.size(); ++j) {
        if (j != i && !done[j]) {
          others.insert(removed[j].cols.begin(), removed[j].cols.end());
        }
      }
      Status st = CheckRemovable(query, cert, removed[i], others);
      if (st.ok()) {
        done[i] = true;
        --remaining;
        progress = true;
      } else {
        last = st;
      }
    }
    if (!progress) return last;
  }
  return Status::OK();
}

Status VerifyCoalescingCertificate(const Query& query,
                                   const CoalescingCertificate& cert) {
  const ColumnCatalog& cat = query.columns();

  // The pre-aggregation must group by every original grouping column that is
  // available below, plus every carried column, and nothing from above.
  std::set<ColId> partial_grouping(cert.partial.grouping.begin(),
                                   cert.partial.grouping.end());
  for (ColId g : cert.partial.grouping) {
    if (cert.below_cols.count(g) == 0) {
      return Status::Internal("coalescing pre-aggregation groups by '" +
                              cat.name(g) +
                              "', which its input does not produce");
    }
  }
  for (ColId g : cert.original.grouping) {
    if (cert.below_cols.count(g) > 0 && partial_grouping.count(g) == 0) {
      return Status::Internal(
          "coalescing pre-aggregation dropped grouping column '" +
          cat.name(g) + "'");
    }
  }
  for (ColId c : cert.carry_cols) {
    if (cert.below_cols.count(c) > 0 && partial_grouping.count(c) == 0) {
      return Status::Internal(
          "coalescing pre-aggregation dropped carried column '" + cat.name(c) +
          "' still needed above");
    }
  }
  if (!cert.partial.having.empty()) {
    return Status::Internal(
        "coalescing pre-aggregation must not filter groups (HAVING belongs "
        "to the final group-by)");
  }

  // Replay the canonical combine mapping aggregate by aggregate.
  size_t pi = 0;  // index into cert.partial.aggregates
  if (cert.final_aggregates.size() != cert.original.aggregates.size()) {
    return Status::Internal(
        "coalescing changed the number of visible aggregates");
  }
  for (size_t i = 0; i < cert.original.aggregates.size(); ++i) {
    const AggregateCall& orig = cert.original.aggregates[i];
    const AggregateCall& fin = cert.final_aggregates[i];
    if (!IsDecomposable(orig.kind)) {
      return Status::Internal(StrFormat(
          "coalescing split the non-decomposable aggregate '%s' "
          "(Section 4.2's applicability condition)",
          orig.ToString(cat).c_str()));
    }
    for (ColId arg : orig.args) {
      if (cert.below_cols.count(arg) == 0) {
        return Status::Internal(StrFormat(
            "coalescing pre-aggregated '%s' but its argument '%s' is not "
            "available below",
            orig.ToString(cat).c_str(), cat.name(arg).c_str()));
      }
    }
    if (fin.output != orig.output) {
      return Status::Internal("coalescing changed the output column of '" +
                              orig.ToString(cat) + "'");
    }

    auto take_partial = [&]() -> const AggregateCall* {
      if (pi >= cert.partial.aggregates.size()) return nullptr;
      return &cert.partial.aggregates[pi++];
    };
    auto fail = [&](const char* why) {
      return Status::Internal(StrFormat(
          "coalescing of '%s' is not the canonical combine form: %s",
          orig.ToString(cat).c_str(), why));
    };

    switch (orig.kind) {
      case AggKind::kSum: {
        const AggregateCall* p = take_partial();
        if (p == nullptr || p->kind != orig.kind || p->args != orig.args) {
          return fail("partial aggregate mismatch");
        }
        if (fin.kind != AggKind::kSum || fin.args != std::vector<ColId>{p->output}) {
          return fail("final must be SUM of the partial");
        }
        break;
      }
      case AggKind::kCount:
      case AggKind::kCountStar:
      case AggKind::kCountSum: {
        const AggregateCall* p = take_partial();
        if (p == nullptr || p->kind != orig.kind || p->args != orig.args) {
          return fail("partial aggregate mismatch");
        }
        // The combine of counts must itself be count-like (kCountSum): a
        // plain SUM would turn a scalar COUNT over an empty join into NULL.
        if (fin.kind != AggKind::kCountSum ||
            fin.args != std::vector<ColId>{p->output}) {
          return fail("final must be the count-preserving SUM of the partial");
        }
        break;
      }
      case AggKind::kMin:
      case AggKind::kMax: {
        const AggregateCall* p = take_partial();
        if (p == nullptr || p->kind != orig.kind || p->args != orig.args) {
          return fail("partial aggregate mismatch");
        }
        if (fin.kind != orig.kind || fin.args != std::vector<ColId>{p->output}) {
          return fail("final must apply the same extremum to the partial");
        }
        break;
      }
      case AggKind::kAvg: {
        const AggregateCall* psum = take_partial();
        const AggregateCall* pcount = take_partial();
        if (psum == nullptr || pcount == nullptr ||
            psum->kind != AggKind::kSum || psum->args != orig.args ||
            pcount->kind != AggKind::kCount || pcount->args != orig.args) {
          // COUNT of the argument, not COUNT(*): AVG divides by the number
          // of non-NULL values, and COUNT(*) inflates the denominator when
          // a group contains NULL arguments.
          return fail("AVG needs partial SUM and COUNT of the argument");
        }
        if (fin.kind != AggKind::kAvgFinal ||
            fin.args != std::vector<ColId>{psum->output, pcount->output}) {
          return fail("final must divide the partial SUM by the COUNT");
        }
        break;
      }
      case AggKind::kAvgFinal: {
        const AggregateCall* psum = take_partial();
        const AggregateCall* pcount = take_partial();
        if (psum == nullptr || pcount == nullptr ||
            psum->kind != AggKind::kSum ||
            psum->args != std::vector<ColId>{orig.args[0]} ||
            pcount->kind != AggKind::kCountSum ||
            pcount->args != std::vector<ColId>{orig.args[1]}) {
          // Count side must pre-aggregate with kCountSum, not kSum: a plain
          // SUM over an empty scalar partial is NULL and would be silently
          // dropped by the AvgFinal combine.
          return fail(
              "re-split AVG needs a partial SUM of the sum and a "
              "count-preserving SUM of the count");
        }
        if (fin.kind != AggKind::kAvgFinal ||
            fin.args != std::vector<ColId>{psum->output, pcount->output}) {
          return fail("final must divide the partial sums");
        }
        break;
      }
      case AggKind::kMedian:
        return fail("MEDIAN is not decomposable");
    }
  }
  if (pi != cert.partial.aggregates.size()) {
    return Status::Internal(
        "coalescing pre-aggregation computes unclaimed partial aggregates");
  }
  return Status::OK();
}

Status VerifyViewRewriteCertificate(const Query& query,
                                    const ViewRewriteCertificate& cert) {
  auto fail = [&](const std::string& what) {
    return Status::Internal("view rewrite certificate ('" + cert.view_name +
                            "') rejected: " + what);
  };
  const Catalog& catalog = query.catalog();
  const ViewDefinition* view = catalog.FindView(cert.view_name);
  if (view == nullptr) return fail("no such materialized view");
  if (cert.backing_rel < 0 || cert.backing_rel >= query.num_range_vars()) {
    return fail("backing range variable out of range");
  }
  const RangeVar& brv = query.range_var(cert.backing_rel);
  if (brv.table != view->backing_table) {
    return fail("backing scan is not the view's backing table");
  }
  // The backing key must be exactly the grouping prefix — the property that
  // makes a residual roll-up aggregate whole view groups.
  const TableDef& backing = catalog.table(view->backing_table);
  if (static_cast<int>(backing.primary_key.size()) != view->num_grouping) {
    return fail("backing key is not the grouping prefix");
  }
  for (int k = 0; k < view->num_grouping; ++k) {
    if (backing.primary_key[static_cast<size_t>(k)] != k) {
      return fail("backing key is not the grouping prefix");
    }
  }

  // Re-derive the definition from its stored SQL, independent of whatever
  // the rewriter matched against.
  AGGVIEW_ASSIGN_OR_RETURN(
      DefAnalysis def,
      AnalyzeViewDefinition(catalog, view->name, view->definition_sql,
                            view->column_names));

  // The replaced relations must biject onto the definition FROM list,
  // preserving catalog tables (positional: cert.replaced_rels is in
  // definition order).
  if (cert.replaced_rels.size() != def.base_tables.size()) {
    return fail("replaced relation count does not match the definition");
  }
  std::unordered_map<ColId, ColId> colmap;  // definition -> incoming
  for (size_t p = 0; p < cert.replaced_rels.size(); ++p) {
    int rel = cert.replaced_rels[p];
    if (rel < 0 || rel >= query.num_range_vars()) {
      return fail("replaced relation out of range");
    }
    const RangeVar& iv = query.range_var(rel);
    if (iv.table != def.base_tables[p]) {
      return fail("replaced relation scans a different table than the "
                  "definition");
    }
    const RangeVar& dv = def.query.range_var(def.query.base_rels()[p]);
    for (size_t j = 0; j < dv.columns.size(); ++j) {
      colmap[dv.columns[j]] = iv.columns[j];
    }
  }

  // Predicate equality as canonicalized multisets.
  auto canon = [&](const Predicate& p) {
    std::string fwd = p.ToString(query.columns());
    Predicate flipped(p.rhs, FlipCompareOp(p.op), p.lhs);
    std::string rev = flipped.ToString(query.columns());
    return fwd < rev ? fwd : rev;
  };
  std::vector<std::string> def_preds;
  for (const Predicate& p : def.query.predicates()) {
    def_preds.push_back(canon(p.RemapColumns(colmap)));
  }
  std::vector<std::string> got_preds;
  for (const Predicate& p : cert.replaced_predicates) {
    got_preds.push_back(canon(p));
  }
  std::sort(def_preds.begin(), def_preds.end());
  std::sort(got_preds.begin(), got_preds.end());
  if (def_preds != got_preds) {
    return fail("absorbed predicates do not equal the definition's WHERE");
  }

  // Grouping containment + the reuse invariant: each kept grouping column
  // is one of the view's grouping keys and the backing scan produces it at
  // that key's position.
  for (ColId g : cert.grouping) {
    int key = -1;
    for (int k = 0; k < view->num_grouping; ++k) {
      int p = view->grouping_rel[static_cast<size_t>(k)];
      int c = view->grouping_col[static_cast<size_t>(k)];
      const RangeVar& iv =
          query.range_var(cert.replaced_rels[static_cast<size_t>(p)]);
      if (iv.columns[static_cast<size_t>(c)] == g) {
        key = k;
        break;
      }
    }
    if (key < 0) return fail("kept grouping column is not a view grouping key");
    if (brv.columns[static_cast<size_t>(key)] != g) {
      return fail("backing scan does not produce the kept grouping column");
    }
  }

  // Aggregates: each original call maps onto a stored slot (by kind and
  // argument) and became exactly its decomposition combine over that slot's
  // partial columns, keeping the output id.
  if (cert.original_aggregates.size() != cert.combine_aggregates.size()) {
    return fail("aggregate lists disagree in length");
  }
  for (size_t i = 0; i < cert.original_aggregates.size(); ++i) {
    const AggregateCall& orig = cert.original_aggregates[i];
    const AggregateCall& comb = cert.combine_aggregates[i];
    if (orig.output != comb.output) {
      return fail("combine does not keep the original output column");
    }
    Result<AggDecomposition> d = DecomposeAggregate(orig.kind);
    if (!d.ok()) return fail("original aggregate is not decomposable");
    if (comb.kind != d->combine) {
      return fail("combine kind is not the decomposition combine");
    }
    std::vector<int> storage;
    if (orig.kind == AggKind::kCountStar) {
      storage = {view->rows_col};
    } else {
      if (orig.args.size() != 1) return fail("original aggregate arity");
      // Locate the argument among the replaced relations.
      int rel_pos = -1;
      int col = -1;
      for (size_t p = 0; p < cert.replaced_rels.size() && rel_pos < 0; ++p) {
        const RangeVar& iv = query.range_var(cert.replaced_rels[p]);
        for (size_t j = 0; j < iv.columns.size(); ++j) {
          if (iv.columns[j] == orig.args[0]) {
            rel_pos = static_cast<int>(p);
            col = static_cast<int>(j);
            break;
          }
        }
      }
      if (rel_pos < 0) {
        return fail("aggregate argument is not a replaced base column");
      }
      const ViewAggSlot* slot = nullptr;
      for (const ViewAggSlot& s : view->slots) {
        if (s.kind == orig.kind && s.arg_rel == rel_pos && s.arg_col == col) {
          slot = &s;
          break;
        }
      }
      if (slot == nullptr) {
        return fail("no stored slot answers aggregate " +
                    orig.ToString(query.columns()));
      }
      storage = slot->storage;
    }
    if (comb.args.size() != storage.size()) {
      return fail("combine arity does not match the slot storage");
    }
    for (size_t j = 0; j < storage.size(); ++j) {
      if (comb.args[j] != brv.columns[static_cast<size_t>(storage[j])]) {
        return fail("combine argument is not the slot's partial column");
      }
    }
  }
  return Status::OK();
}

Status VerifyAudit(const Query& query, const TransformationAudit& audit) {
  for (const PullUpCertificate& cert : audit.pullups) {
    AGGVIEW_RETURN_NOT_OK(VerifyPullUpCertificate(query, cert));
  }
  for (const InvariantCertificate& cert : audit.invariants) {
    AGGVIEW_RETURN_NOT_OK(VerifyInvariantCertificate(query, cert));
  }
  for (const CoalescingCertificate& cert : audit.coalescings) {
    AGGVIEW_RETURN_NOT_OK(VerifyCoalescingCertificate(query, cert));
  }
  for (const ViewRewriteCertificate& cert : audit.view_rewrites) {
    AGGVIEW_RETURN_NOT_OK(VerifyViewRewriteCertificate(query, cert));
  }
  return Status::OK();
}

}  // namespace aggview
