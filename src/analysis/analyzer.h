#ifndef AGGVIEW_ANALYSIS_ANALYZER_H_
#define AGGVIEW_ANALYSIS_ANALYZER_H_

#include "analysis/certificate.h"
#include "analysis/fd.h"
#include "common/result.h"
#include "optimizer/plan.h"

namespace aggview {

/// Options of the semantic plan analyzer.
struct AnalysisOptions {
  /// Run the structural validator (plan_validator.h) first.
  bool structural = true;
  /// Run the semantic passes: predicate/aggregate type checking, group-by
  /// output disjointness, aggregate arity, HAVING placement, and bottom-up
  /// FD/key derivation.
  bool semantic = true;
  /// Run the dataflow verifier (dataflow.h) after the semantic passes:
  /// abstract interpretation deriving nullability, value domains and
  /// cardinality bounds, then CheckDataflowObligations. On by default, so
  /// paranoid mode (EnumeratorOptions::dp_check) re-proves the dataflow
  /// obligations at every DP-table insertion of all three optimizers.
  bool dataflow = true;
};

/// Static semantic analysis of a physical plan, beyond the structural
/// ValidatePlan:
///
///  - every predicate compares numeric with numeric or string with string,
///    and arithmetic is over numeric operands (a corrupt plan fails here
///    instead of crashing Value::Compare at execution);
///  - aggregate calls have the right arity for their kind;
///  - group-by outputs are disjoint: aggregate output columns are pairwise
///    distinct, never grouping columns, and never their own arguments;
///  - HAVING references only the group-by's outputs;
///  - functional dependencies and keys derive cleanly bottom-up (scans
///    contribute catalog keys, joins combine them, group-bys make their
///    grouping columns a key — Section 3's key-propagation obligations).
///
/// Errors name the offending node.
Status AnalyzePlan(const PlanPtr& plan, const Query& query,
                   const AnalysisOptions& options = {});

/// Re-derives Definition 1's side condition for a pull-up certificate: the
/// deferred grouping columns, closed under the extended block's
/// predicate-implied FDs, must contain a declared key (or the rowid) of
/// every pulled relation. Independent of the transformation's own key
/// bookkeeping: keys come from the catalog, FDs from the recorded
/// predicates.
Status VerifyPullUpCertificate(const Query& query,
                               const PullUpCertificate& cert);

/// Re-derives the invariant-grouping conditions (IG1-IG3, Section 4.1) for
/// every removed relation of the certificate, searching for a valid
/// elimination order. Keys of scanned relations come from the catalog; keys
/// of composite inputs are re-derived from their subplans via
/// DerivePlanProperties. IG3 is discharged through FD closure: the grouping
/// columns (fixed per group) plus predicate-implied constants and
/// equivalences must pin a key of the removed relation.
Status VerifyInvariantCertificate(const Query& query,
                                  const InvariantCertificate& cert);

/// Re-checks a coalescing split (Section 4.2): every original aggregate
/// decomposable with arguments available below, the partial group-by
/// covering the original grouping and carried columns, and the
/// partial/final rewriting being the canonical combine form.
Status VerifyCoalescingCertificate(const Query& query,
                                   const CoalescingCertificate& cert);

/// Re-derives a materialized-view rewrite's legality from the stored
/// definition SQL, independent of the rewriter's matching: the replaced
/// relations biject onto the definition FROM (preserving tables), the
/// absorbed predicates equal the definition's WHERE as a canonicalized
/// multiset under the mapping, every kept grouping column is a view grouping
/// key produced by the backing scan at that key's position (and the backing
/// key is exactly the grouping prefix, so the residual group-by rolls up
/// whole view groups), and every aggregate became its decomposition combine
/// over the matched slot's partial columns with the original output id.
Status VerifyViewRewriteCertificate(const Query& query,
                                    const ViewRewriteCertificate& cert);

/// Verifies every certificate in `audit` against `query`.
Status VerifyAudit(const Query& query, const TransformationAudit& audit);

}  // namespace aggview

#endif  // AGGVIEW_ANALYSIS_ANALYZER_H_
