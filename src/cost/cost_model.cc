#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>

#include "storage/io_accountant.h"

namespace aggview {

const char* JoinAlgoName(JoinAlgo algo) {
  switch (algo) {
    case JoinAlgo::kBlockNestedLoop:
      return "bnl";
    case JoinAlgo::kHash:
      return "hash";
    case JoinAlgo::kSortMerge:
      return "merge";
  }
  return "?";
}

double CostModel::Pages(double rows, int64_t row_width) {
  if (rows <= 0.0) return 0.0;
  double per_page = static_cast<double>(RowsPerPage(row_width));
  return std::max(1.0, std::ceil(rows / per_page));
}

double CostModel::ScanCost(double pages) { return pages; }

double CostModel::BnlLocalCost(double outer_pages, double inner_pages) {
  double block = static_cast<double>(kBufferPages - 2);
  double passes = std::max(1.0, std::ceil(outer_pages / block));
  return outer_pages + passes * inner_pages;
}

double CostModel::HashJoinLocalCost(double left_pages, double right_pages) {
  double cost = left_pages + right_pages;
  double smaller = std::min(left_pages, right_pages);
  if (smaller > static_cast<double>(kBufferPages)) {
    cost += 2.0 * (left_pages + right_pages);
  }
  return cost;
}

double CostModel::SortCost(double pages) {
  double b = static_cast<double>(kBufferPages);
  if (pages <= b) return 0.0;
  double runs = std::ceil(pages / b);
  double passes = std::ceil(std::log(runs) / std::log(b - 1.0));
  passes = std::max(passes, 1.0);
  return 2.0 * pages * passes;
}

double CostModel::SortMergeLocalCost(double left_pages, double right_pages) {
  return left_pages + right_pages + SortCost(left_pages) + SortCost(right_pages);
}

double CostModel::HashAggLocalCost(double input_pages) {
  if (input_pages <= static_cast<double>(kBufferPages)) return 0.0;
  return 2.0 * input_pages;
}

}  // namespace aggview
