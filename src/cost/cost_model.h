#ifndef AGGVIEW_COST_COST_MODEL_H_
#define AGGVIEW_COST_COST_MODEL_H_

#include <cstdint>

namespace aggview {

/// Physical join algorithms the optimizer chooses among.
enum class JoinAlgo {
  kBlockNestedLoop,  // any predicate
  kHash,             // equi-join only (Grace hash when out of core)
  kSortMerge,        // equi-join only
};

const char* JoinAlgoName(JoinAlgo algo);

/// IO-only cost model (paper Section 5: "The optimization algorithm that we
/// present minimizes IO cost"). All costs are in pages; the page geometry is
/// shared with the storage accountant (io_accountant.h), so estimated and
/// measured IO are directly comparable.
///
/// Conventions used when composing plan costs (see optimizer/plan.cc):
///  - A node's cost includes its children's costs plus its *local* cost.
///  - Every join and aggregation charges for reading its inputs (the
///    System-R convention of disk-resident intermediates), plus spill /
///    pass / sort extras. This is what makes the paper's trade-offs
///    measurable: an early group-by pays its own input read once but
///    shrinks every later join's input read.
///  - Block-nested-loop re-reads its inner input once per outer block; a
///    non-leaf inner is materialized first (one write of its pages).
///  - The executor charges the same formulas on actual cardinalities.
class CostModel {
 public:
  /// Pages occupied by `rows` rows of `row_width` bytes (fractional rows are
  /// allowed: estimates stay smooth for the DP comparisons).
  static double Pages(double rows, int64_t row_width);

  /// Full scan of a base table.
  static double ScanCost(double pages);

  /// One write (or read) pass over a materialized intermediate.
  static double MaterializeCost(double pages) { return pages; }

  /// Local cost of block-nested-loop: one read of the outer, plus one read
  /// of the inner per block of (B-2) outer pages (at least one pass).
  static double BnlLocalCost(double outer_pages, double inner_pages);

  /// Local cost of (Grace) hash join: one read of each input, plus a
  /// partition write + read of both when the smaller input exceeds memory.
  static double HashJoinLocalCost(double left_pages, double right_pages);

  /// External merge sort: 2 * P per pass; 0 when P fits in memory.
  static double SortCost(double pages);

  /// Local cost of sort-merge join: one read of each input plus the sorts.
  static double SortMergeLocalCost(double left_pages, double right_pages);

  /// Local cost of hash aggregation: free when the input fits in memory
  /// (the aggregate streams from the pipeline below), two extra passes when
  /// it spills. The asymmetry against joins (which always read their
  /// inputs) is deliberate: it reproduces the paper's two-sided trade —
  /// early aggregation wins by shrinking later join reads, and loses when
  /// its own input spills.
  static double HashAggLocalCost(double input_pages);
};

}  // namespace aggview

#endif  // AGGVIEW_COST_COST_MODEL_H_
