#include "transform/decompose.h"

namespace aggview {

Result<AggDecomposition> DecomposeAggregate(AggKind kind) {
  AggDecomposition d;
  switch (kind) {
    case AggKind::kSum:
      d.partials.push_back({AggKind::kSum, 0, "psum", /*name_uses_arg=*/true,
                            PartialValueType::kArgType, /*non_null=*/false});
      d.combine = AggKind::kSum;
      return d;
    case AggKind::kCount:
      // The combine is kCountSum, not kSum: it must keep COUNT's
      // empty-input semantics (scalar over zero rows = 0, not NULL).
      d.partials.push_back({AggKind::kCount, 0, "pcount",
                            /*name_uses_arg=*/false, PartialValueType::kInt64,
                            /*non_null=*/true});
      d.combine = AggKind::kCountSum;
      return d;
    case AggKind::kCountStar:
      d.partials.push_back({AggKind::kCountStar, -1, "pcount",
                            /*name_uses_arg=*/false, PartialValueType::kInt64,
                            /*non_null=*/true});
      d.combine = AggKind::kCountSum;
      return d;
    case AggKind::kCountSum:
      // Re-splitting an already-combined COUNT: pre-sum the partial counts
      // one level further.
      d.partials.push_back({AggKind::kCountSum, 0, "pcount",
                            /*name_uses_arg=*/false, PartialValueType::kInt64,
                            /*non_null=*/true});
      d.combine = AggKind::kCountSum;
      return d;
    case AggKind::kMin:
      d.partials.push_back({AggKind::kMin, 0, "pmin", /*name_uses_arg=*/true,
                            PartialValueType::kArgType, /*non_null=*/false});
      d.combine = AggKind::kMin;
      return d;
    case AggKind::kMax:
      d.partials.push_back({AggKind::kMax, 0, "pmax", /*name_uses_arg=*/true,
                            PartialValueType::kArgType, /*non_null=*/false});
      d.combine = AggKind::kMax;
      return d;
    case AggKind::kAvg:
      // COUNT(arg), not COUNT(*): AVG divides by the number of non-NULL
      // argument values, and psum NULL implies pcount 0 so the AvgFinal
      // combine's NULL-skip drops exactly the empty partials.
      d.partials.push_back({AggKind::kSum, 0, "psum", /*name_uses_arg=*/true,
                            PartialValueType::kDouble, /*non_null=*/false});
      d.partials.push_back({AggKind::kCount, 0, "pcount",
                            /*name_uses_arg=*/false, PartialValueType::kInt64,
                            /*non_null=*/true});
      d.combine = AggKind::kAvgFinal;
      return d;
    case AggKind::kAvgFinal:
      // Re-splitting an already-combined AVG: pre-aggregate the partial sums
      // and counts one level further. kCountSum on the count side keeps the
      // pre-aggregated count non-NULL even over an empty scalar partial.
      d.partials.push_back({AggKind::kSum, 0, "psum", /*name_uses_arg=*/false,
                            PartialValueType::kDouble, /*non_null=*/false});
      d.partials.push_back({AggKind::kCountSum, 1, "pcount",
                            /*name_uses_arg=*/false, PartialValueType::kInt64,
                            /*non_null=*/true});
      d.combine = AggKind::kAvgFinal;
      return d;
    case AggKind::kMedian:
      return Status::Internal("MEDIAN is not decomposable");
  }
  return Status::Internal("unknown aggregate kind");
}

DataType PartialColumnType(const PartialAggSpec& spec, DataType arg_type) {
  switch (spec.type) {
    case PartialValueType::kArgType:
      return arg_type;
    case PartialValueType::kDouble:
      return DataType::kDouble;
    case PartialValueType::kInt64:
      return DataType::kInt64;
  }
  return DataType::kInt64;
}

}  // namespace aggview
