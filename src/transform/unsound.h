#ifndef AGGVIEW_TRANSFORM_UNSOUND_H_
#define AGGVIEW_TRANSFORM_UNSOUND_H_

namespace aggview {

/// Test-only reinjection of the three optimizer soundness bugs PR 2's
/// differential fuzzer found and fixed. The prover's mutation harness
/// (tests/prover_mutation_test.cc) re-enables each one and asserts the
/// small-scope prover refutes it with a minimized counterexample — the
/// prover must be able to rediscover every bug the fuzzer ever found.
/// Production code never sets these; the default is kNone.
enum class UnsoundReinjection {
  kNone = 0,
  /// Bug 1: waive the IG3 key condition of invariant grouping when every
  /// aggregate is duplicate-insensitive (MIN/MAX). Wrong: removability is
  /// about *which* rows join, not how often — a removed relation can still
  /// filter rows, and moving the group-by past it changes MIN/MAX inputs.
  kMinMaxInvariantWaiver,
  /// Bug 2: trust the block-level removable set at every DP mask instead of
  /// re-running the elimination fixpoint for the mask's retained relations.
  /// Wrong: removability of one relation can depend on another relation
  /// being present (IG2's grouping-column cover), so the set is not
  /// downward-closed across masks.
  kTrustGlobalRemovable,
  /// Bug 3: combine partial COUNTs with a plain SUM instead of kCountSum.
  /// Wrong on the empty input: a scalar COUNT must yield 0, but SUM over
  /// zero partials yields NULL.
  kCountCombinePlainSum,
};

/// Sets the active reinjection (kNone restores soundness). Not thread-safe
/// with concurrent optimization — test harness use only.
void SetUnsoundReinjectionForTesting(UnsoundReinjection which);

UnsoundReinjection GetUnsoundReinjection();

/// True when `which` is the active reinjection.
bool UnsoundReinjectionActive(UnsoundReinjection which);

/// RAII scope for one reinjection; restores the previous value.
class ScopedUnsoundReinjection {
 public:
  explicit ScopedUnsoundReinjection(UnsoundReinjection which)
      : previous_(GetUnsoundReinjection()) {
    SetUnsoundReinjectionForTesting(which);
  }
  ~ScopedUnsoundReinjection() { SetUnsoundReinjectionForTesting(previous_); }

  ScopedUnsoundReinjection(const ScopedUnsoundReinjection&) = delete;
  ScopedUnsoundReinjection& operator=(const ScopedUnsoundReinjection&) = delete;

 private:
  UnsoundReinjection previous_;
};

}  // namespace aggview

#endif  // AGGVIEW_TRANSFORM_UNSOUND_H_
