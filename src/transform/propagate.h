#ifndef AGGVIEW_TRANSFORM_PROPAGATE_H_
#define AGGVIEW_TRANSFORM_PROPAGATE_H_

#include "algebra/query.h"
#include "common/result.h"

namespace aggview {

/// Predicate propagation across query blocks — the preprocessing the paper
/// cites as the state of the art it builds on (Section 1: "the techniques
/// for optimizing queries with aggregate views have been limited to
/// propagating predicates across query blocks [MFPR90, LMS94]").
///
/// Sound moves implemented:
///  1. A top-level conjunct comparing a view's *grouping* output with a
///     literal moves into the view's SPJ block (selections commute with
///     group-by on grouping columns). Fewer groups are built and the join
///     sees fewer rows.
///  2. A view HAVING conjunct bound by grouping columns alone likewise
///     moves into the view's SPJ block.
///  3. The same for the top-level group-by: HAVING conjuncts bound by G0's
///     grouping columns become top-level WHERE conjuncts.
///  4. Literal bounds transfer across top-level equi-joins: from
///     `a = b AND a < 5`, derive `b < 5` and push it to b's side when b is
///     a view grouping output or a base column (implication, so the
///     original conjunct is kept — this is the "magic"-style reduction).
///
/// Both optimizers run this first, so the comparison of Section 5 is against
/// the realistic [LMS94]-preprocessed baseline, exactly as the paper frames
/// it.
Result<Query> PropagatePredicates(const Query& query);

}  // namespace aggview

#endif  // AGGVIEW_TRANSFORM_PROPAGATE_H_
