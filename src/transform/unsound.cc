#include "transform/unsound.h"

#include <atomic>

namespace aggview {

namespace {
std::atomic<UnsoundReinjection> g_active{UnsoundReinjection::kNone};
}  // namespace

void SetUnsoundReinjectionForTesting(UnsoundReinjection which) {
  g_active.store(which, std::memory_order_release);
}

UnsoundReinjection GetUnsoundReinjection() {
  return g_active.load(std::memory_order_acquire);
}

bool UnsoundReinjectionActive(UnsoundReinjection which) {
  return GetUnsoundReinjection() == which;
}

}  // namespace aggview
