#include "transform/pushdown.h"

#include <algorithm>

#include "algebra/logical_plan.h"
#include "transform/unsound.h"

namespace aggview {

bool RelShape::CoversKey(const std::set<ColId>& fixed) const {
  for (const std::vector<ColId>& key : keys) {
    if (key.empty()) continue;
    bool covered = true;
    for (ColId k : key) {
      if (fixed.count(k) == 0) {
        covered = false;
        break;
      }
    }
    if (covered) return true;
  }
  return false;
}

bool CanMoveGroupByPastShape(const RelShape& rel,
                             const std::set<ColId>& retained_cols,
                             const std::vector<Predicate>& preds,
                             const GroupBySpec& gb) {
  // (IG1) Aggregate arguments must not come from `rel`.
  for (ColId arg : gb.AggArgSet()) {
    if (rel.cols.count(arg) > 0) return false;
  }

  std::set<ColId> grouping(gb.grouping.begin(), gb.grouping.end());

  // (IG2) Predicates crossing between `rel` and the retained side must
  // reference only grouping columns on the retained side.
  for (const Predicate& p : preds) {
    std::set<ColId> cols = p.Columns();
    bool touches_rel = false, touches_retained = false;
    for (ColId c : cols) {
      if (rel.cols.count(c) > 0) touches_rel = true;
      if (retained_cols.count(c) > 0) touches_retained = true;
    }
    if (!touches_rel || !touches_retained) continue;
    for (ColId c : cols) {
      if (retained_cols.count(c) > 0 && grouping.count(c) == 0) return false;
    }
  }

  // (IG3) At most one matching tuple of `rel` per group. This must hold
  // even when every aggregate is duplicate-insensitive (MIN/MAX): fan-out
  // past the group-by leaves the aggregate *values* intact but multiplies
  // the *row multiplicity* of the group-by output, which any downstream
  // duplicate-sensitive consumer (count(*), sum, bag projection) observes.
  // The differential fuzzer found exactly this divergence, so the former
  // MIN/MAX waiver is gone. The mutation harness reinjects it here to prove
  // the small-scope prover rediscovers the bug.
  if (UnsoundReinjectionActive(UnsoundReinjection::kMinMaxInvariantWaiver)) {
    bool all_duplicate_insensitive = !gb.aggregates.empty();
    for (const AggregateCall& agg : gb.aggregates) {
      if (!IsDuplicateInsensitive(agg.kind)) all_duplicate_insensitive = false;
    }
    if (all_duplicate_insensitive) return true;
  }
  std::set<ColId> fixed;
  // Equi-joins with retained grouping columns.
  for (const Predicate& p : preds) {
    ColId a, b;
    if (!p.AsColumnEquality(&a, &b)) continue;
    if (rel.cols.count(b) > 0 && grouping.count(a) > 0 &&
        retained_cols.count(a) > 0) {
      fixed.insert(b);
    }
    if (rel.cols.count(a) > 0 && grouping.count(b) > 0 &&
        retained_cols.count(b) > 0) {
      fixed.insert(a);
    }
  }
  // Equality-with-literal selections on `rel`.
  for (const Predicate& p : preds) {
    ColId col;
    CompareOp op;
    Value v;
    if (p.AsColumnVsLiteral(&col, &op, &v) && op == CompareOp::kEq &&
        rel.cols.count(col) > 0) {
      fixed.insert(col);
    }
  }
  // Grouping columns owned by `rel`.
  for (ColId g : grouping) {
    if (rel.cols.count(g) > 0) fixed.insert(g);
  }
  return rel.CoversKey(fixed);
}

std::set<size_t> RemovableShapes(const std::vector<RelShape>& rels,
                                 const std::vector<Predicate>& preds,
                                 const GroupBySpec& gb) {
  std::set<size_t> removable;
  std::set<size_t> block;
  for (size_t i = 0; i < rels.size(); ++i) block.insert(i);

  bool changed = true;
  while (changed && block.size() > 1) {
    changed = false;
    for (size_t candidate : block) {
      std::set<ColId> retained_cols;
      for (size_t other : block) {
        if (other == candidate) continue;
        retained_cols.insert(rels[other].cols.begin(),
                             rels[other].cols.end());
      }
      if (CanMoveGroupByPastShape(rels[candidate], retained_cols, preds, gb)) {
        block.erase(candidate);
        removable.insert(candidate);
        changed = true;
        break;
      }
    }
  }
  return removable;
}

RelShape ShapeOfRangeVar(const Query& query, int rel_id) {
  const RangeVar& rv = query.range_var(rel_id);
  const TableDef& def = query.catalog().table(rv.table);
  RelShape shape;
  shape.cols = rv.ColumnSet();
  auto key_to_cols = [&](const std::vector<int>& key) {
    std::vector<ColId> out;
    out.reserve(key.size());
    for (int k : key) out.push_back(rv.columns[static_cast<size_t>(k)]);
    return out;
  };
  if (!def.primary_key.empty()) shape.keys.push_back(key_to_cols(def.primary_key));
  for (const auto& uk : def.unique_keys) {
    if (!uk.empty()) shape.keys.push_back(key_to_cols(uk));
  }
  if (rv.rowid != kInvalidColId) shape.keys.push_back({rv.rowid});
  return shape;
}

InvariantAnalysis AnalyzeInvariantGrouping(const Query& query,
                                           const AggView& view) {
  std::vector<RelShape> shapes;
  shapes.reserve(view.spj.rels.size());
  for (int r : view.spj.rels) shapes.push_back(ShapeOfRangeVar(query, r));
  std::set<size_t> removable =
      RemovableShapes(shapes, view.spj.predicates, view.group_by);

  InvariantAnalysis out;
  for (size_t i = 0; i < view.spj.rels.size(); ++i) {
    if (removable.count(i) > 0) {
      out.removable.insert(view.spj.rels[i]);
    } else {
      out.minimal_invariant_set.insert(view.spj.rels[i]);
    }
  }
  return out;
}

Result<Query> ShrinkViewToInvariantSet(const Query& query, size_t view_idx,
                                       std::set<int>* moved,
                                       InvariantCertificate* cert) {
  if (view_idx >= query.views().size()) {
    return Status::InvalidArgument("view index out of range");
  }
  Query out = query;
  AggView& view = out.views()[view_idx];
  InvariantAnalysis analysis = AnalyzeInvariantGrouping(out, view);
  if (moved != nullptr) *moved = analysis.removable;
  if (cert != nullptr) {
    *cert = InvariantCertificate{};
    cert->group_by = view.group_by;
    cert->predicates = view.spj.predicates;
    for (int r : view.spj.rels) {
      BlockRelClaim claim;
      claim.name = out.range_var(r).alias;
      claim.scan_rel = r;
      if (analysis.removable.count(r) > 0) {
        cert->removed.push_back(std::move(claim));
      } else {
        cert->retained.push_back(std::move(claim));
      }
    }
  }
  if (analysis.removable.empty()) return out;

  const std::set<int>& keep = analysis.minimal_invariant_set;
  std::vector<int> keep_vec(keep.begin(), keep.end());
  std::set<ColId> keep_cols = out.ColumnsOfRels(keep_vec);

  // Relations: removable ones join the top block. Preserve the view's
  // original relation order for the retained ones.
  std::vector<int> new_rels;
  for (int r : view.spj.rels) {
    if (keep.count(r) > 0) {
      new_rels.push_back(r);
    } else {
      out.base_rels().push_back(r);
    }
  }
  view.spj.rels = std::move(new_rels);

  // Predicates: those bound by the retained relations stay; the rest move to
  // the top block (IG2 guarantees their retained-side columns are grouping
  // columns and hence remain visible as view outputs).
  std::vector<Predicate> staying;
  for (const Predicate& p : view.spj.predicates) {
    if (p.BoundBy(keep_cols)) {
      staying.push_back(p);
    } else {
      out.predicates().push_back(p);
    }
  }
  view.spj.predicates = std::move(staying);

  // Grouping columns owned by moved relations leave the group-by (they are
  // directly available at the top now).
  std::vector<ColId> new_grouping;
  for (ColId g : view.group_by.grouping) {
    if (keep_cols.count(g) > 0) new_grouping.push_back(g);
  }
  view.group_by.grouping = std::move(new_grouping);

  // HAVING conjuncts referencing moved columns become top-level predicates
  // (aggregate outputs and retained grouping columns are view outputs there).
  std::set<ColId> having_visible(view.group_by.grouping.begin(),
                                 view.group_by.grouping.end());
  for (const AggregateCall& a : view.group_by.aggregates) {
    having_visible.insert(a.output);
  }
  std::vector<Predicate> staying_having;
  for (const Predicate& p : view.group_by.having) {
    if (p.BoundBy(having_visible)) {
      staying_having.push_back(p);
    } else {
      out.predicates().push_back(p);
    }
  }
  view.group_by.having = std::move(staying_having);

  AGGVIEW_RETURN_NOT_OK(out.Validate());
  return out;
}

}  // namespace aggview
