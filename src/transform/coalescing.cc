#include "transform/coalescing.h"

#include "transform/unsound.h"

namespace aggview {

bool CoalescingApplicable(const GroupBySpec& spec,
                          const std::set<ColId>& below_cols) {
  for (const AggregateCall& a : spec.aggregates) {
    if (!IsDecomposable(a.kind)) return false;
    for (ColId arg : a.args) {
      if (below_cols.count(arg) == 0) return false;
    }
  }
  return true;
}

Result<CoalescingSplit> SplitForCoalescing(const GroupBySpec& spec,
                                           const std::set<ColId>& below_cols,
                                           const std::set<ColId>& carry_cols,
                                           ColumnCatalog* columns,
                                           CoalescingCertificate* cert) {
  if (!CoalescingApplicable(spec, below_cols)) {
    return Status::InvalidArgument(
        "simple coalescing requires decomposable aggregates over the "
        "pre-aggregated input");
  }

  CoalescingSplit split;

  // Pre-aggregation grouping: original grouping columns available below,
  // plus every below-column that later operators still need.
  std::set<ColId> partial_grouping_set;
  for (ColId g : spec.grouping) {
    if (below_cols.count(g) > 0 && partial_grouping_set.insert(g).second) {
      split.partial.grouping.push_back(g);
    }
  }
  for (ColId c : carry_cols) {
    if (below_cols.count(c) > 0 && partial_grouping_set.insert(c).second) {
      split.partial.grouping.push_back(c);
    }
  }

  for (const AggregateCall& original : spec.aggregates) {
    switch (original.kind) {
      case AggKind::kSum: {
        ColId partial = columns->Add("psum(" + columns->name(original.args[0]) + ")",
                                     columns->type(original.args[0]));
        split.partial.aggregates.push_back(
            {AggKind::kSum, original.args, partial});
        split.final_aggregates.push_back(
            {AggKind::kSum, {partial}, original.output});
        break;
      }
      case AggKind::kCount:
      case AggKind::kCountStar: {
        ColId partial = columns->Add("pcount", DataType::kInt64);
        columns->set_nullable(partial, false);
        split.partial.aggregates.push_back(
            {original.kind, original.args, partial});
        // kCountSum, not kSum: the combine must keep COUNT's empty-input
        // semantics (scalar over zero rows = 0, not NULL). The mutation
        // harness reinjects the old plain-SUM combine to prove the
        // small-scope prover rediscovers the bug.
        AggKind combine =
            UnsoundReinjectionActive(UnsoundReinjection::kCountCombinePlainSum)
                ? AggKind::kSum
                : AggKind::kCountSum;
        split.final_aggregates.push_back(
            {combine, {partial}, original.output});
        break;
      }
      case AggKind::kCountSum: {
        // Re-splitting an already-coalesced COUNT: pre-sum the partial
        // counts one level further.
        ColId partial = columns->Add("pcount", DataType::kInt64);
        columns->set_nullable(partial, false);
        split.partial.aggregates.push_back(
            {AggKind::kCountSum, original.args, partial});
        split.final_aggregates.push_back(
            {AggKind::kCountSum, {partial}, original.output});
        break;
      }
      case AggKind::kMin:
      case AggKind::kMax: {
        ColId partial = columns->Add(
            std::string("p") + AggKindName(original.kind) + "(" +
                columns->name(original.args[0]) + ")",
            columns->type(original.args[0]));
        split.partial.aggregates.push_back(
            {original.kind, original.args, partial});
        split.final_aggregates.push_back(
            {original.kind, {partial}, original.output});
        break;
      }
      case AggKind::kAvg: {
        ColId psum = columns->Add("psum(" + columns->name(original.args[0]) + ")",
                                  DataType::kDouble);
        ColId pcount = columns->Add("pcount", DataType::kInt64);
        columns->set_nullable(pcount, false);
        split.partial.aggregates.push_back(
            {AggKind::kSum, original.args, psum});
        // COUNT(arg), not COUNT(*): AVG divides by the number of non-NULL
        // argument values. With COUNT(*) a group containing NULL arguments
        // inflates the denominator (the small-scope prover found this on a
        // 2-row group {1, NULL}: true AVG 1, coalesced 1/2). COUNT(arg) also
        // keeps the pair consistent — psum NULL implies pcount 0, so the
        // AvgFinal combine's NULL-skip drops exactly the empty partials.
        split.partial.aggregates.push_back(
            {AggKind::kCount, original.args, pcount});
        split.final_aggregates.push_back(
            {AggKind::kAvgFinal, {psum, pcount}, original.output});
        break;
      }
      case AggKind::kAvgFinal: {
        // Re-splitting an already-coalesced AVG: pre-aggregate the partial
        // sums and counts one level further.
        ColId psum = columns->Add("psum", DataType::kDouble);
        ColId pcount = columns->Add("pcount", DataType::kInt64);
        columns->set_nullable(pcount, false);
        split.partial.aggregates.push_back(
            {AggKind::kSum, {original.args[0]}, psum});
        // kCountSum, not kSum, for the count side: the pre-aggregated count
        // must stay non-NULL even over an empty scalar partial, or the final
        // AvgFinal combine would silently skip it in Merge.
        split.partial.aggregates.push_back(
            {AggKind::kCountSum, {original.args[1]}, pcount});
        split.final_aggregates.push_back(
            {AggKind::kAvgFinal, {psum, pcount}, original.output});
        break;
      }
      case AggKind::kMedian:
        return Status::Internal("unreachable: MEDIAN is not decomposable");
    }
  }
  if (cert != nullptr) {
    *cert = CoalescingCertificate{};
    cert->original = spec;
    cert->partial = split.partial;
    cert->final_aggregates = split.final_aggregates;
    cert->below_cols = below_cols;
    cert->carry_cols = carry_cols;
  }
  return split;
}

}  // namespace aggview
