#include "transform/coalescing.h"

#include "transform/decompose.h"
#include "transform/unsound.h"

namespace aggview {

bool CoalescingApplicable(const GroupBySpec& spec,
                          const std::set<ColId>& below_cols) {
  for (const AggregateCall& a : spec.aggregates) {
    if (!IsDecomposable(a.kind)) return false;
    for (ColId arg : a.args) {
      if (below_cols.count(arg) == 0) return false;
    }
  }
  return true;
}

Result<CoalescingSplit> SplitForCoalescing(const GroupBySpec& spec,
                                           const std::set<ColId>& below_cols,
                                           const std::set<ColId>& carry_cols,
                                           ColumnCatalog* columns,
                                           CoalescingCertificate* cert) {
  if (!CoalescingApplicable(spec, below_cols)) {
    return Status::InvalidArgument(
        "simple coalescing requires decomposable aggregates over the "
        "pre-aggregated input");
  }

  CoalescingSplit split;

  // Pre-aggregation grouping: original grouping columns available below,
  // plus every below-column that later operators still need.
  std::set<ColId> partial_grouping_set;
  for (ColId g : spec.grouping) {
    if (below_cols.count(g) > 0 && partial_grouping_set.insert(g).second) {
      split.partial.grouping.push_back(g);
    }
  }
  for (ColId c : carry_cols) {
    if (below_cols.count(c) > 0 && partial_grouping_set.insert(c).second) {
      split.partial.grouping.push_back(c);
    }
  }

  // The per-kind split/merge rules live in transform/decompose.h, shared
  // with materialized-view storage and delta maintenance (view/), so every
  // consumer of the Section 4.2 decomposition provably applies one table.
  for (const AggregateCall& original : spec.aggregates) {
    AGGVIEW_ASSIGN_OR_RETURN(AggDecomposition d,
                             DecomposeAggregate(original.kind));
    std::vector<ColId> partial_cols;
    for (const PartialAggSpec& p : d.partials) {
      std::string name = p.prefix;
      if (p.name_uses_arg) {
        name += "(" + columns->name(original.args[static_cast<size_t>(p.arg)]) +
                ")";
      }
      DataType arg_type =
          p.arg >= 0 ? columns->type(original.args[static_cast<size_t>(p.arg)])
                     : DataType::kInt64;
      ColId partial = columns->Add(std::move(name),
                                   PartialColumnType(p, arg_type));
      if (p.non_null) columns->set_nullable(partial, false);
      std::vector<ColId> args;
      if (p.arg >= 0) args.push_back(original.args[static_cast<size_t>(p.arg)]);
      split.partial.aggregates.push_back({p.kind, std::move(args), partial});
      partial_cols.push_back(partial);
    }
    // The mutation harness reinjects the old plain-SUM COUNT combine (the
    // empty-scalar-is-NULL bug) to prove the small-scope prover rediscovers
    // it; the hook stays here, not in the shared rule table.
    AggKind combine = d.combine;
    if ((original.kind == AggKind::kCount ||
         original.kind == AggKind::kCountStar) &&
        UnsoundReinjectionActive(UnsoundReinjection::kCountCombinePlainSum)) {
      combine = AggKind::kSum;
    }
    split.final_aggregates.push_back(
        {combine, std::move(partial_cols), original.output});
  }
  if (cert != nullptr) {
    *cert = CoalescingCertificate{};
    cert->original = spec;
    cert->partial = split.partial;
    cert->final_aggregates = split.final_aggregates;
    cert->below_cols = below_cols;
    cert->carry_cols = carry_cols;
  }
  return split;
}

}  // namespace aggview
