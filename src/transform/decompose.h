#ifndef AGGVIEW_TRANSFORM_DECOMPOSE_H_
#define AGGVIEW_TRANSFORM_DECOMPOSE_H_

#include <vector>

#include "common/result.h"
#include "expr/aggregate.h"
#include "types/data_type.h"

namespace aggview {

/// The aggregate-decomposition rules of Section 4.2, shared by everything
/// that splits an aggregate into partials plus a final combine: simple
/// coalescing grouping (transform/coalescing.h) and materialized-view
/// partial storage + delta maintenance + compensating roll-up (view/). The
/// rules live here — in one table — so the three consumers provably agree on
/// how each AggKind splits and merges (the AVG → SUM+COUNT re-split, the
/// COUNT combine that must keep empty-input-is-0 semantics, and so on).

/// Type rule for one partial column.
enum class PartialValueType {
  /// Same type as the original call's argument (SUM/MIN/MAX partials).
  kArgType,
  /// Always double (the AVG numerator in coalescing's column layout).
  kDouble,
  /// Always int64 (count partials).
  kInt64,
};

/// One partial aggregate computed over each partition of a group.
struct PartialAggSpec {
  /// Aggregate computed over the partition's base rows.
  AggKind kind = AggKind::kCountStar;
  /// Index into the original call's args feeding this partial; -1 when the
  /// partial takes no argument (the COUNT(*) partial).
  int arg = -1;
  /// Display-name prefix for the partial's output column ("psum", "pcount",
  /// "pmin", "pmax").
  const char* prefix = "p";
  /// Whether the display name carries the argument ("psum(e.sal)") or is
  /// bare ("pcount").
  bool name_uses_arg = false;
  PartialValueType type = PartialValueType::kInt64;
  /// Declared non-nullable (count partials start from 0, never NULL).
  bool non_null = false;
};

/// A full decomposition: the partial aggregates (in the order the final
/// combine consumes them as arguments) and the combine kind.
struct AggDecomposition {
  std::vector<PartialAggSpec> partials;
  /// Final aggregate over the partial columns. kAvgFinal takes two inputs
  /// (partial sum, partial count); every other combine takes one.
  AggKind combine = AggKind::kCountStar;
};

/// Decomposition rule for `kind`. Fails for MEDIAN (the stand-in for
/// non-decomposable user aggregates; callers gate on IsDecomposable first).
Result<AggDecomposition> DecomposeAggregate(AggKind kind);

/// Resolves a PartialAggSpec's type rule against the original argument type.
/// `arg_type` is ignored for the fixed-type rules.
DataType PartialColumnType(const PartialAggSpec& spec, DataType arg_type);

}  // namespace aggview

#endif  // AGGVIEW_TRANSFORM_DECOMPOSE_H_
