#ifndef AGGVIEW_TRANSFORM_PUSHDOWN_H_
#define AGGVIEW_TRANSFORM_PUSHDOWN_H_

#include <set>
#include <vector>

#include "algebra/query.h"
#include "analysis/certificate.h"
#include "common/result.h"

namespace aggview {

/// Abstraction of a relation for group-by movement analysis: its output
/// columns and its keys (column sets whose values are unique per row). Base
/// tables contribute their declared primary/unique keys; composite inputs
/// (already-aggregated views) contribute their grouping columns.
struct RelShape {
  std::set<ColId> cols;
  std::vector<std::vector<ColId>> keys;

  bool CoversKey(const std::set<ColId>& fixed) const;
};

/// True when a group-by `gb` evaluated over (retained ⋈ rel) can be moved to
/// the retained side alone (invariant grouping, paper Section 4.1).
///
/// Sufficient conditions (cf. [CS94], [YL94]):
///  (IG1) no aggregate argument comes from `rel`;
///  (IG2) every predicate in `preds` connecting `rel` to the retained side
///        references only grouping columns on the retained side;
///  (IG3) at most one `rel` tuple matches each group: the columns of `rel`
///        fixed by equi-joins with retained grouping columns,
///        equality-with-literal selections, or membership in the grouping
///        columns must cover one of `rel`'s keys. This applies even to
///        duplicate-insensitive aggregates (MIN/MAX) — fan-out preserves
///        their values but multiplies the group-by's output rows, which
///        downstream bag semantics observe.
bool CanMoveGroupByPastShape(const RelShape& rel,
                             const std::set<ColId>& retained_cols,
                             const std::vector<Predicate>& preds,
                             const GroupBySpec& gb);

/// Fixpoint of CanMoveGroupByPastShape over `rels`: returns the indices of
/// relations the group-by can be moved past (in some order). The complement
/// is the paper's minimal invariant set V'.
std::set<size_t> RemovableShapes(const std::vector<RelShape>& rels,
                                 const std::vector<Predicate>& preds,
                                 const GroupBySpec& gb);

/// Invariant-grouping analysis of one aggregate view, in terms of the
/// query's range-variable ids.
struct InvariantAnalysis {
  std::set<int> minimal_invariant_set;  // the paper's V'
  std::set<int> removable;              // V - V'
};

/// Builds the RelShape of range variable `rel_id` (declared keys from the
/// catalog).
RelShape ShapeOfRangeVar(const Query& query, int rel_id);

/// View-level wrapper over the shape analysis.
InvariantAnalysis AnalyzeInvariantGrouping(const Query& query,
                                           const AggView& view);

/// Rewrites the query so that view `view_idx` retains only its minimal
/// invariant set: removable relations move to the top block (forming B' of
/// Section 5.3), their predicates move with them, grouping columns owned by
/// moved relations leave the view's group-by, and HAVING conjuncts that
/// reference moved columns become top-level predicates.
///
/// `moved` (optional) receives the ids of the relations that moved. `cert`
/// (optional) receives the invariant-grouping legality certificate — which
/// relations were claimed removable under which block state — for
/// independent re-verification by VerifyInvariantCertificate
/// (analysis/analyzer.h).
Result<Query> ShrinkViewToInvariantSet(const Query& query, size_t view_idx,
                                       std::set<int>* moved,
                                       InvariantCertificate* cert = nullptr);

}  // namespace aggview

#endif  // AGGVIEW_TRANSFORM_PUSHDOWN_H_
